(* Benchmark harness: one Bechamel test per experiment of EXPERIMENTS.md,
   preceded by the "paper-shape" tables each experiment regenerates.

   The paper (pure theory) has no measurement tables; Figures 1–4 and the
   lemmas define the shapes we reproduce: who gets a 1-2 pattern and who
   does not, how structures grow, and how the reduction blows up.

     dune exec bench/main.exe            tables + timing benches
     dune exec bench/main.exe -- fast    tables only *)

open Core

let section name = Format.printf "@.== %s ==@." name

(* --- E1: Figure 1 — chase(T∞, D_I) ------------------------------------- *)

let table_fig1 () =
  section "E1 (Fig 1): chase(T∞, D_I) growth and words";
  Format.printf "%8s %8s %10s %8s %12s@." "stages" "edges" "vertices"
    "words≤8" "1-2 pattern";
  List.iter
    (fun stages ->
      let g, a, b, _ = Separating.Tinf.chase ~stages () in
      let words = Greengraph.Pg.words_upto g ~a ~b ~max_len:8 in
      Format.printf "%8d %8d %10d %8d %12b@." stages (Greengraph.Graph.size g)
        (Greengraph.Graph.order g) (List.length words)
        (Greengraph.Graph.has_12_pattern g))
    [ 4; 8; 12; 16; 20 ]

(* --- E2/E3: Figures 2–4 — grids ----------------------------------------- *)

(* a tile corner is a vertex whose in-edges include an n-label and a
   w-label — each &·-firing of the grid rules creates exactly one *)
let tile_corners g =
  let is_dir d (e : Greengraph.Graph.edge) =
    match e.Greengraph.Graph.label with
    | Some i ->
        List.exists
          (fun gl -> gl.Separating.Labels.dir = d && Separating.Labels.grid_code gl = i)
          Separating.Labels.all_grid_labels
    | None -> false
  in
  List.length
    (List.filter
       (fun v ->
         let ins = Greengraph.Graph.in_edges g v in
         List.exists (is_dir Separating.Labels.N) ins
         && List.exists (is_dir Separating.Labels.W) ins)
       (Greengraph.Graph.vertices g))

let table_grids () =
  section "E2/E3 (Figs 2-4): gridding colliding αβ-paths with T□";
  Format.printf "%6s %6s %12s %8s %8s %8s@." "t" "t'" "1-2 pattern" "edges"
    "stages" "tiles";
  List.iter
    (fun (t, t') ->
      let pattern, stats, g = Separating.Theorem14.collision_outcome ~t ~t' () in
      Format.printf "%6d %6d %12b %8d %8d %8d@." t t' pattern
        (Greengraph.Graph.size g) stats.Greengraph.Rule.stages (tile_corners g))
    [ (1, 1); (1, 2); (2, 2); (2, 3); (3, 3); (2, 4); (3, 5); (4, 4) ];
  Format.printf "(single-path grids M_t, Fig 4:)@.";
  List.iter
    (fun t ->
      let pattern, _, g = Separating.Theorem14.single_path_outcome ~t () in
      Format.printf "%6d %6s %12b %8d@." t "-" pattern (Greengraph.Graph.size g))
    [ 1; 2; 3 ]

(* --- E4/E5: rainworms and the TM compiler ------------------------------- *)

let table_worms () =
  section "E4/E5 (Lemma 21): machines, creeping, compilation";
  Format.printf "%16s %10s %10s %10s %12s@." "machine" "TM halts" "worm"
    "cycles" "max config";
  let row name oracle tm_halts =
    let t = Rainworm.Sim.creep ~max_steps:60_000 oracle in
    Format.printf "%16s %10s %10s %10d %12d@." name tm_halts
      (if Rainworm.Sim.halted t then "halts" else "creeps")
      t.Rainworm.Sim.cycles t.Rainworm.Sim.max_length
  in
  row "creeper" (Rainworm.Machine.oracle Rainworm.Zoo.eternal_creeper) "-";
  row "stillborn" (Rainworm.Machine.oracle Rainworm.Zoo.stillborn) "-";
  List.iter
    (fun tm ->
      row tm.Rainworm.Turing.name
        (Rainworm.Tm_compiler.oracle tm)
        (if Rainworm.Turing.halts ~max_steps:5_000 tm then "yes" else "no"))
    [
      Rainworm.Zoo.tm_halt_now; Rainworm.Zoo.tm_write_k 3;
      Rainworm.Zoo.tm_right_forever; Rainworm.Zoo.tm_zigzag;
      Rainworm.Zoo.tm_bouncer 2;
    ]

(* --- E6/E7: Lemmas 25 and 24 --------------------------------------------- *)

let table_lemma24_25 () =
  section "E6 (Lemma 25) and E7 (Lemma 24 ⇐ / Lemma 26)";
  let wr = Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper in
  let g, a, b, _ = Reduction.Worm_rules.chase ~stages:30 wr in
  let configs =
    Rainworm.Sim.reachable_configs ~max_steps:28
      (Rainworm.Machine.oracle Rainworm.Zoo.eternal_creeper)
  in
  let ok =
    List.for_all
      (fun c ->
        Greengraph.Pg.in_words g ~a ~b (Reduction.Worm_rules.configuration_word wr c))
      configs
  in
  Format.printf "Lemma 25: %d configurations ⊆ words(chase(T_M, D_I)): %b@."
    (List.length configs) ok;
  let pattern, _, _ = Reduction.Worm_rules.fold_and_grid ~stages:60 wr ~fold:(0, 2) in
  Format.printf "Lemma 24 ⇒: folded slime trail grids a 1-2 pattern: %b@." pattern;
  Format.printf "%16s %8s %12s %10s %14s@." "halting machine" "edges"
    "1-2 pattern" "⊨ T_M" "⊨ T_M ∪ T□";
  List.iter
    (fun (name, machine) ->
      let wr, m, _ = Reduction.Finite_model.of_halting_machine machine in
      let gr = m.Reduction.Finite_model.graph in
      Format.printf "%16s %8d %12b %10b %14b@." name (Greengraph.Graph.size gr)
        (Greengraph.Graph.has_12_pattern gr)
        (Greengraph.Rule.models wr.Reduction.Worm_rules.rules gr)
        (Greengraph.Rule.models (Reduction.Worm_rules.with_grid wr) gr))
    [
      ("stillborn", Rainworm.Zoo.stillborn);
      ("halt-now", Rainworm.Tm_compiler.materialize Rainworm.Zoo.tm_halt_now);
      ( "write-2",
        Rainworm.Tm_compiler.materialize ~max_steps:100_000
          (Rainworm.Zoo.tm_write_k 2) );
    ]

(* --- E8: the abstraction ladder -------------------------------------------- *)

let table_compile_blowup () =
  section "E8 (Defs 8-9): compilation blowup L₂ → L₁ → CQs";
  Format.printf "%20s %8s %8s %6s %10s %10s@." "rule set" "L2" "L1" "s" "CQs"
    "atoms/CQ";
  List.iter
    (fun (name, rules) ->
      let p = Greengraph.Precompile.to_level0 rules in
      let atoms =
        match p.Greengraph.Precompile.queries with
        | (_, q) :: _ -> List.length (Cq.Query.body q)
        | [] -> 0
      in
      Format.printf "%20s %8d %8d %6d %10d %10d@." name (List.length rules)
        (List.length p.Greengraph.Precompile.swarm_rules)
        (Spider.Ctx.s p.Greengraph.Precompile.ctx)
        (List.length p.Greengraph.Precompile.queries)
        atoms)
    [
      ("T∞", Separating.Tinf.rules);
      ("T□", Separating.Tbox.rules);
      ("T∞ ∪ T□", Separating.Tbox.t_full);
      ( "T_M□ (creeper)",
        Reduction.Worm_rules.with_grid
          (Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper) );
    ]

(* --- E10: determinacy ------------------------------------------------------- *)

let path_query k =
  let edge = Relational.Symbol.make "E" 2 in
  let e x y =
    Relational.Atom.app2 edge (Relational.Term.var x) (Relational.Term.var y)
  in
  let name i = if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i in
  Cq.Query.make ~free:[ "x"; "y" ] (List.init k (fun i -> e (name i) (name (i + 1))))

(* shared hom-search workload: a directed path and a deliberately
   scrambled 7-atom path body — the ordering heuristic reconnects it, an
   unordered run explores the cross product *)
let long_path n =
  let s = Relational.Structure.create () in
  let vs = Array.init (n + 1) (fun _ -> Relational.Structure.fresh s) in
  for i = 0 to n - 1 do
    Relational.Structure.add2 s (Relational.Symbol.make "E" 2) vs.(i) vs.(i + 1)
  done;
  s

let scrambled_p7 =
  let q = path_query 7 in
  let atoms = Array.of_list (Cq.Query.body q) in
  List.map (fun i -> atoms.(i)) [ 0; 4; 2; 6; 1; 5; 3 ]

let table_determinacy () =
  section "E10 (Section IV): determinacy via the universal chase";
  Format.printf "%34s %22s@." "instance" "verdict";
  List.iter
    (fun (name, views, q0) ->
      let inst = Determinacy.Instance.make ~views ~q0 in
      Format.printf "%34s %22s@." name
        (match unrestricted_determinacy ~max_stages:24 inst with
        | Determinacy.Solver.Determined _ -> "determined"
        | Determinacy.Solver.Not_determined _ -> "not determined"
        | Determinacy.Solver.Unknown _ -> "unknown"))
    [
      ("{E} -> P2", [ ("e", path_query 1) ], path_query 2);
      ("{P2} -> E", [ ("p2", path_query 2) ], path_query 1);
      ("{P2,P3} -> P5", [ ("p2", path_query 2); ("p3", path_query 3) ], path_query 5);
      ("{P2,P3} -> E", [ ("p2", path_query 2); ("p3", path_query 3) ], path_query 1);
      ("{P3} -> P2", [ ("p3", path_query 3) ], path_query 2);
    ]

(* --- E11: Theorem 2 ---------------------------------------------------------- *)

let table_theorem2 () =
  section "E11 (Thm 2): Q0 separates D_y/D_n; views are EF-indistinguishable";
  let t = Ef.Theorem2.q_infinity () in
  Format.printf "%4s %8s %10s %10s %22s@." "i" "copies" "Q0(D_y)" "Q0(D_n)"
    "views split at round";
  List.iter
    (fun (i, copies) ->
      let r = Ef.Theorem2.report ~max_rounds:2 t ~i ~copies in
      Format.printf "%4d %8d %10b %10b %22s@." i copies r.Ef.Theorem2.q0_on_dy
        r.Ef.Theorem2.q0_on_dn
        (match r.Ef.Theorem2.view_distinguishing_rounds with
        | None -> "> 2"
        | Some l -> string_of_int l))
    [ (1, 1); (2, 1); (2, 2); (3, 2) ]

(* --- E12: §IX.A one-atom view difference -------------------------------------- *)

let table_attempt1 () =
  section "E12 (§IX.A): Grace's and Ruby's views differ by one atom";
  let t = Ef.Theorem2.q_infinity () in
  Format.printf "%8s %14s@." "chase_i" "view |Δ|";
  List.iter
    (fun i ->
      let _, _, diff = Ef.Theorem2.attempt1 t i in
      Format.printf "%8d %14d@." i diff)
    [ 1; 2; 3; 4; 5; 6 ]

(* --- E13: ablations ------------------------------------------------------------ *)

let table_ablations () =
  section "E13: design ablations (chase engines, hom ordering)";
  (* lazy vs semi-oblivious on T_Q of the composition instance *)
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
  let seed () = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  let d1 = seed () in
  let s1 = Tgd.Chase.run_stage ~max_stages:6 deps d1 in
  let d1' = seed () in
  let s1' = Tgd.Chase.run_seminaive ~max_stages:6 deps d1' in
  let d2 = seed () in
  let s2 = Tgd.Chase.run_oblivious ~max_stages:6 deps d2 in
  Format.printf "lazy stage chase:     %d firings, %d facts, %d triggers considered@."
    s1.Tgd.Chase.applications
    (Relational.Structure.size d1)
    s1.Tgd.Chase.triggers_considered;
  Format.printf "lazy seminaive chase: %d firings, %d facts, %d triggers considered (equal: %b)@."
    s1'.Tgd.Chase.applications
    (Relational.Structure.size d1')
    s1'.Tgd.Chase.triggers_considered
    (Relational.Structure.equal_sets d1 d1');
  Format.printf "oblivious chase:      %d firings, %d facts (fixpoint %b)@."
    s2.Tgd.Chase.applications
    (Relational.Structure.size d2)
    s2.Tgd.Chase.fixpoint;
  (* stage vs semi-naive on the graph-rule chase of E1 *)
  let _, _, _, st1 = Separating.Tinf.chase ~engine:`Stage ~stages:16 () in
  let _, _, _, st2 = Separating.Tinf.chase ~engine:`Seminaive ~stages:16 () in
  Format.printf
    "T∞ 16 stages, stage engine:     %d triggers considered, %d firings@."
    st1.Greengraph.Rule.triggers_considered st1.Greengraph.Rule.applications;
  Format.printf
    "T∞ 16 stages, seminaive engine: %d triggers considered, %d firings@."
    st2.Greengraph.Rule.triggers_considered st2.Greengraph.Rule.applications

(* --- bechamel timing benches -------------------------------------------------- *)

open Bechamel
open Toolkit

let benches =
  [
    Test.make ~name:"E1 fig1: chase(T∞) 12 stages"
      (Staged.stage (fun () -> Separating.Tinf.chase ~stages:12 ()));
    Test.make ~name:"E2 fig2: collide t=2,t'=3"
      (Staged.stage (fun () ->
           Separating.Theorem14.collision_outcome ~t:2 ~t':3 ()));
    Test.make ~name:"E3 fig4: single path t=2"
      (Staged.stage (fun () -> Separating.Theorem14.single_path_outcome ~t:2 ()));
    Test.make ~name:"E4 creep: 2000 steps"
      (Staged.stage (fun () ->
           Rainworm.Sim.creep ~max_steps:2000
             (Rainworm.Machine.oracle Rainworm.Zoo.eternal_creeper)));
    Test.make ~name:"E5a TM direct: zigzag 2000 steps"
      (Staged.stage (fun () ->
           let rec go n c =
             if n = 0 then c
             else
               match Rainworm.Turing.step Rainworm.Zoo.tm_zigzag c with
               | Ok c' -> go (n - 1) c'
               | Error _ -> c
           in
           go 2000 (Rainworm.Turing.initial_config Rainworm.Zoo.tm_zigzag)));
    Test.make ~name:"E5b TM via rainworm: zigzag 2000 steps"
      (Staged.stage (fun () ->
           Rainworm.Sim.creep ~max_steps:2000
             (Rainworm.Tm_compiler.oracle Rainworm.Zoo.tm_zigzag)));
    Test.make ~name:"E6 lemma25: chase T_M 20 stages"
      (Staged.stage
         (let wr = Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper in
          fun () -> Reduction.Worm_rules.chase ~stages:20 wr));
    Test.make ~name:"E7 finite model: stillborn"
      (Staged.stage (fun () ->
           Reduction.Finite_model.of_halting_machine Rainworm.Zoo.stillborn));
    Test.make ~name:"E8 compile: to_level0(T∞)"
      (Staged.stage (fun () ->
           Greengraph.Precompile.to_level0 Separating.Tinf.rules));
    Test.make ~name:"E9 spider ♣: one TGD firing (s=4)"
      (Staged.stage
         (let ctx = Spider.Ctx.create 4 in
          let b =
            Spider.Query.amp (Spider.Query.f ~upper:1 ()) (Spider.Query.f ())
          in
          let deps = Spider.Query.binary_to_tgds ctx b in
          fun () ->
            let st = Relational.Structure.create () in
            let a1 = Relational.Structure.fresh st in
            let a2 = Relational.Structure.fresh st in
            let sh = Relational.Structure.fresh st in
            ignore
              (Spider.Real.realize ctx st ~tail:a1 ~antenna:sh
                 (Spider.Ideal.green ~upper:1 ()));
            ignore
              (Spider.Real.realize ctx st ~tail:a2 ~antenna:sh
                 Spider.Ideal.full_green);
            Tgd.Chase.run ~max_stages:1 deps st));
    Test.make ~name:"E10 determinacy: {P2,P3} -> P5"
      (Staged.stage
         (let inst =
            Determinacy.Instance.make
              ~views:[ ("p2", path_query 2); ("p3", path_query 3) ]
              ~q0:(path_query 5)
          in
          fun () -> unrestricted_determinacy ~max_stages:24 inst));
    Test.make ~name:"E11 theorem2: report i=1"
      (Staged.stage
         (let t = Ef.Theorem2.q_infinity () in
          fun () -> Ef.Theorem2.report ~max_rounds:1 t ~i:1 ~copies:1));
    Test.make ~name:"E13a lazy chase: P2,P3 on A[P5], 4 stages"
      (Staged.stage
         (let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
          fun () ->
            let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
            Tgd.Chase.run ~max_stages:4 deps d));
    Test.make ~name:"E13b oblivious chase: same, 4 stages"
      (Staged.stage
         (let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
          fun () ->
            let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
            Tgd.Chase.run_oblivious ~max_stages:4 deps d));
    (let target = long_path 40 in
     Test.make ~name:"E13c hom search: scrambled P7, greedy ordering"
       (Staged.stage (fun () -> Relational.Hom.count target scrambled_p7)));
    (let target = long_path 40 in
     Test.make ~name:"E13d hom search: scrambled P7, no ordering"
       (Staged.stage (fun () ->
            Relational.Hom.count ~ordered:false target scrambled_p7)));
    Test.make ~name:"E13e chase(T∞) 16 stages: stage engine"
      (Staged.stage (fun () -> Separating.Tinf.chase ~engine:`Stage ~stages:16 ()));
    Test.make ~name:"E13f chase(T∞) 16 stages: seminaive engine"
      (Staged.stage (fun () ->
           Separating.Tinf.chase ~engine:`Seminaive ~stages:16 ()));
    Test.make ~name:"E13g grid (3,3): stage engine"
      (Staged.stage (fun () ->
           Separating.Theorem14.collision_outcome ~engine:`Stage ~t:3 ~t':3 ()));
    Test.make ~name:"E13h grid (3,3): seminaive engine"
      (Staged.stage (fun () ->
           Separating.Theorem14.collision_outcome ~engine:`Seminaive ~t:3 ~t':3 ()));
  ]

let run_benches () =
  section "timing (bechamel, monotonic clock; one test per experiment)";
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg
      Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"redspider" benches)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let ns =
          match Analyze.OLS.estimates o with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-45s %15s@." "experiment" "time/run";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Format.printf "%-45s %15s@." name pretty)
    rows

(* --- machine-readable chase benchmark (BENCH_chase.json) ----------------- *)

(* One row per (experiment, engine): wall-clock of a single run plus the
   engine's own counters, so the stage-vs-seminaive ablation is a diff of
   two adjacent rows.  [counters] is the obs-metrics delta of one run —
   the per-phase counter snapshot of the workload. *)
type chase_row = {
  experiment : string;
  engine_name : string;
  wall_s : float;
  b_stages : int;
  b_applications : int;
  b_considered : int;
  counters : (string * int) list;
}

(* Mean wall-clock per run: one warm-up, then repeat until ~250ms of
   samples accumulate (the small chases take microseconds — a single shot
   is all noise, and the ~10ms ones need dozens of reps for the mean to
   settle).  Timing goes through the monotonized obs clock;
   [Unix.gettimeofday] can step backwards (NTP) and a negative sample
   would corrupt the mean, so any residual negative delta is discarded. *)
let wall_clock f =
  let r = f () in
  let rec loop n elapsed =
    if n >= 400 || elapsed >= 0.25 then elapsed /. float_of_int n
    else
      let t0 = Obs.Clock.now_s () in
      let _ = f () in
      let dt = Obs.Clock.now_s () -. t0 in
      if dt < 0. then loop n elapsed else loop (n + 1) (elapsed +. dt)
  in
  (loop 0 0., r)

(* Obs-counter delta of a single run of [f], metrics switched on only for
   its duration (so the timed loops above stay uninstrumented). *)
let counted f =
  Obs.set_metrics true;
  let before = Obs.Metrics.snapshot () in
  let r = f () in
  let delta = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
  Obs.set_metrics false;
  (delta, r)

let graph_engine_name = function
  | `Stage -> "stage"
  | `Seminaive -> "seminaive"
  | `Par -> "par"

let chase_rows ~tinf_stages ~grid:(t, t') ~tgd_stages =
  let graph_row experiment engine run =
    let wall_s, (_ : Greengraph.Rule.stats) = wall_clock run in
    let counters, (s : Greengraph.Rule.stats) = counted run in
    {
      experiment;
      engine_name = graph_engine_name engine;
      wall_s;
      b_stages = s.Greengraph.Rule.stages;
      b_applications = s.Greengraph.Rule.applications;
      b_considered = s.Greengraph.Rule.triggers_considered;
      counters;
    }
  in
  let tgd_row experiment engine run =
    let wall_s, (_ : Tgd.Chase.stats) = wall_clock run in
    let counters, (s : Tgd.Chase.stats) = counted run in
    {
      experiment;
      engine_name = graph_engine_name engine;
      wall_s;
      b_stages = s.Tgd.Chase.stages;
      b_applications = s.Tgd.Chase.applications;
      b_considered = s.Tgd.Chase.triggers_considered;
      counters;
    }
  in
  List.concat_map
    (fun (engine : Greengraph.Rule.engine) ->
      [
        graph_row
          (Printf.sprintf "E1 tinf stages=%d" tinf_stages)
          engine
          (fun () ->
            let _, _, _, s = Separating.Tinf.chase ~engine ~stages:tinf_stages () in
            s);
        graph_row
          (Printf.sprintf "E2 grid (%d,%d)" t t')
          engine
          (fun () ->
            let _, s, _ =
              Separating.Theorem14.collision_outcome ~engine ~t ~t' ()
            in
            s);
        tgd_row
          (Printf.sprintf "E10 tgd {P2,P3}->P5 stages=%d" tgd_stages)
          engine
          (fun () ->
            let deps =
              Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ]
            in
            let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
            Tgd.Chase.run
              ~engine:(engine :> Tgd.Chase.engine)
              ~max_stages:tgd_stages deps d);
      ])
    [ `Stage; `Seminaive; `Par ]

let counters_json cs =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) cs)
  ^ "}"

let render_chase_json rows =
  let entry r =
    Printf.sprintf
      "  {\"experiment\": %S, \"engine\": %S, \"wall_s\": %.6f, \"stages\": \
       %d, \"applications\": %d, \"triggers_considered\": %d, \"counters\": \
       %s}"
      r.experiment r.engine_name r.wall_s r.b_stages r.b_applications
      r.b_considered (counters_json r.counters)
  in
  "[\n" ^ String.concat ",\n" (List.map entry rows) ^ "\n]\n"

let print_speedups rows =
  let by_experiment =
    List.sort_uniq compare (List.map (fun r -> r.experiment) rows)
  in
  List.iter
    (fun e ->
      let find en =
        List.find_opt (fun r -> r.experiment = e && r.engine_name = en) rows
      in
      match (find "stage", find "seminaive") with
      | Some st, Some sn when sn.wall_s > 0. ->
          let par =
            match find "par" with
            | Some p -> Printf.sprintf "  par %.4fs" p.wall_s
            | None -> ""
          in
          Format.printf
            "  %-32s stage %.4fs  seminaive %.4fs  speedup %.1fx%s@." e
            st.wall_s sn.wall_s
            (st.wall_s /. sn.wall_s)
            par
      | _ -> ())
    by_experiment

(* Differential-audit throughput: wall-clock the fixed-seed oracle run the
   CLI exposes as `redspider audit` and report cases/sec plus the
   budget-exceeded rate across its engine runs. *)
let emit_audit_json () =
  let seed = 42 and cases = 200 in
  let wall_s, _ = wall_clock (fun () -> Oracle.Diff.run_cases ~seed ~cases ()) in
  let counters, report =
    counted (fun () -> Oracle.Diff.run_cases ~seed ~cases ())
  in
  let rate =
    if report.Oracle.Diff.engine_runs = 0 then 0.
    else
      float_of_int report.Oracle.Diff.budget_exceeded
      /. float_of_int report.Oracle.Diff.engine_runs
  in
  let oc = open_out "BENCH_audit.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"cases\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"cases_per_s\": %.1f,\n\
    \  \"engine_runs\": %d,\n\
    \  \"budget_exceeded\": %d,\n\
    \  \"budget_exceeded_rate\": %.4f,\n\
    \  \"violations\": %d,\n\
    \  \"counters\": %s\n\
     }\n"
    seed cases wall_s
    (float_of_int cases /. wall_s)
    report.Oracle.Diff.engine_runs report.Oracle.Diff.budget_exceeded rate
    (List.length report.Oracle.Diff.violations)
    (counters_json counters);
  close_out oc;
  Format.printf "wrote BENCH_audit.json (%.0f cases/s, %.1f%% budget-exceeded)@."
    (float_of_int cases /. wall_s)
    (100. *. rate)

let emit_chase_json () =
  let rows = chase_rows ~tinf_stages:20 ~grid:(4, 4) ~tgd_stages:6 in
  let oc = open_out "BENCH_chase.json" in
  output_string oc (render_chase_json rows);
  close_out oc;
  Format.printf "wrote BENCH_chase.json (%d rows)@." (List.length rows);
  print_speedups rows

(* Hom-engine effort benchmark (BENCH_hom.json): the E10 chase under all
   four TGD engines, plus the scrambled-P7 search under the compiled and
   the interpreted evaluator — wall-clock and the homomorphism-effort
   counters of one run (candidates scanned, unify attempts, backtracks,
   plan compilations) per row. *)
let hom_rows () =
  let row workload run =
    let wall_s, _ = wall_clock run in
    let delta, _ = counted run in
    let get k = Option.value ~default:0 (List.assoc_opt k delta) in
    Printf.sprintf
      "  {\"workload\": %S, \"wall_s\": %.6f, \"candidates_scanned\": %d, \
       \"unify_attempts\": %d, \"backtracks\": %d, \"plan_compilations\": %d}"
      workload wall_s
      (get "hom.candidates_scanned")
      (get "hom.unify_attempts")
      (get "hom.backtracks")
      (get "plan.compilations")
  in
  let e10 engine () =
    let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
    let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
    ignore (Tgd.Chase.run ~engine ~max_stages:6 deps d)
  in
  let target = long_path 40 in
  [
    row "E10 chase engine=stage" (e10 `Stage);
    row "E10 chase engine=seminaive" (e10 `Seminaive);
    row "E10 chase engine=oblivious" (e10 `Oblivious);
    row "E10 chase engine=par" (e10 `Par);
    row "P7 hom count: compiled" (fun () ->
        ignore (Relational.Hom.count target scrambled_p7));
    row "P7 hom count: interpreted" (fun () ->
        ignore (Relational.Hom.count ~compiled:false target scrambled_p7));
  ]

let emit_hom_json () =
  let rows = hom_rows () in
  let oc = open_out "BENCH_hom.json" in
  output_string oc ("[\n" ^ String.concat ",\n" rows ^ "\n]\n");
  close_out oc;
  Format.printf "wrote BENCH_hom.json (%d rows)@." (List.length rows)

(* --- wall-clock regression gate (dune build @bench-smoke) ----------------- *)

(* Hand-rolled scanner for the JSON this harness renders (one row per
   line, string keys, no escapes in values) — no JSON dependency. *)
let scan_field line key =
  let pat = Printf.sprintf "\"%s\": " key in
  let n = String.length line and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      if start < n && line.[start] = '"' then
        String.index_from_opt line (start + 1) '"'
        |> Option.map (fun stop ->
               String.sub line (start + 1) (stop - start - 1))
      else
        let stop = ref start in
        while
          !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
        do
          incr stop
        done;
        Some (String.trim (String.sub line start (!stop - start)))

let scan_baseline path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         ( scan_field line "experiment",
           scan_field line "engine",
           scan_field line "wall_s" )
       with
       | Some e, Some en, Some w ->
           rows := ((e, en), float_of_string w) :: !rows
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  List.rev !rows

(* Re-run the BENCH_chase.json workloads and fail (exit 1) if any row
   got more than [threshold]x slower than the checked-in baseline.  Rows
   without a baseline (new engines) are reported but not gated. *)
let regress baseline_path =
  let threshold = 2.0 in
  let baseline = scan_baseline baseline_path in
  let rows = chase_rows ~tinf_stages:20 ~grid:(4, 4) ~tgd_stages:6 in
  let failures = ref 0 in
  Format.printf "%-34s %-10s %12s %12s %8s@." "experiment" "engine" "baseline"
    "current" "ratio";
  List.iter
    (fun r ->
      match List.assoc_opt (r.experiment, r.engine_name) baseline with
      | None ->
          Format.printf "%-34s %-10s %12s %10.4fs %8s@." r.experiment
            r.engine_name "-" r.wall_s "new"
      | Some base ->
          let ratio = if base > 0. then r.wall_s /. base else 0. in
          let verdict = if ratio > threshold then (incr failures; "FAIL") else "ok" in
          Format.printf "%-34s %-10s %10.4fs %10.4fs %7.2fx %s@." r.experiment
            r.engine_name base r.wall_s ratio verdict)
    rows;
  if !failures > 0 then begin
    Format.printf "bench-smoke: %d row(s) regressed beyond %.1fx@." !failures
      threshold;
    exit 1
  end
  else Format.printf "bench-smoke: no wall-clock regression beyond %.1fx@." threshold

(* The par gate (`regress --engine par`): the parallel engine must be no
   slower than semi-naive on the grid(4,4) and E10 workloads it claims to
   win.  Noise-damped twice over: five alternating measurements per
   engine (each a ~250ms [wall_clock] average), compared on the minima —
   a scheduler hiccup inflates one sample, not the minimum of five — and
   a 10% grace band on top, because the E2 margin (~10%) is about one
   noise quantum on a loaded box.  A real regression (par falling back
   behind semi-naive, historically a ~55% gap) clears the band easily;
   the checked-in BENCH_chase.json rows still record par strictly
   fastest. *)
let par_gate () =
  let grid engine () =
    ignore (Separating.Theorem14.collision_outcome ~engine ~t:4 ~t':4 ())
  in
  let e10 engine () =
    let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
    let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
    ignore (Tgd.Chase.run ~engine ~max_stages:6 deps d)
  in
  let min5 f g =
    let rec go k (mf, mg) =
      if k = 0 then (mf, mg)
      else
        let wf, () = wall_clock f in
        let wg, () = wall_clock g in
        go (k - 1) (Float.min mf wf, Float.min mg wg)
    in
    go 5 (infinity, infinity)
  in
  let failures = ref 0 in
  let gate name (semi, par) =
    let verdict =
      if par <= semi *. 1.10 then "ok"
      else begin
        incr failures;
        "FAIL"
      end
    in
    Format.printf "par-gate %-24s seminaive %.4fs  par %.4fs  %s@." name semi
      par verdict
  in
  gate "E2 grid (4,4)" (min5 (grid `Seminaive) (grid `Par));
  gate "E10 tgd stages=6" (min5 (e10 `Seminaive) (e10 `Par));
  if !failures > 0 then begin
    Format.printf "bench-smoke: par engine slower than seminaive on %d row(s)@."
      !failures;
    exit 1
  end
  else Format.printf "bench-smoke: par <= seminaive on every gated row@."

(* --- E21: incremental maintenance vs from-scratch re-chase --------------- *)

(* The two standing edit workloads.  Each returns a pair of thunks
   [(incremental, scratch)] where one call of either performs the same
   logical work — insert a single fresh base fact at the instance's
   tail, restore the fixpoint, retract it, restore the fixpoint again —
   so their wall-clocks compare directly.  [incremental] maintains one
   long-lived instance through [Maint.apply_edit]; [scratch] re-chases
   a fresh copy of the edited base for every edit, which is what a
   daemon without maintenance state would have to do for each mutate
   job.  A tail edit is the common case an IVM layer exists for — a
   cascade local to the edit, against a full re-derivation; cutting a
   load-bearing base fact (the fold edge, a mid-path edge) tears off a
   large cone and is the worst case the smoke and test_incr exercise
   instead.

   E10 runs the terminating {p2} restriction of its view set (the full
   {p2,p3} pair diverges — see test_incr.ml) over a scaled green path;
   the grid extends the tail of the second αβ-path of the Theorem 14
   (4,4) collision under the T-box rules. *)
let incr_e10_pair ~engine =
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2) ] in
  (* the canonical E10 seed is a 5-edge path — small enough that the
     edit's support bookkeeping drowns the cascade in constants — so
     the bench scales the same machinery to a 96-edge green path: the
     view is linear in the base, the cascade stays tail-local *)
  let gedge = Relational.Symbol.green (Relational.Symbol.make "E" 2) in
  let n = 96 in
  let mk_path extended =
    let d = Relational.Structure.create () in
    let vs = Array.init (n + 2) (fun _ -> Relational.Structure.fresh d) in
    let edges = if extended then n + 1 else n in
    for i = 0 to edges - 1 do
      Relational.Structure.add2 d gedge vs.(i) vs.(i + 1)
    done;
    (d, Relational.Fact.make gedge [| vs.(n); vs.(n + 1) |])
  in
  let base, tail = mk_path false in
  let m, _ =
    Tgd.Chase.Maint.create ~engine deps (Relational.Structure.copy base)
  in
  let incremental () =
    ignore (Tgd.Chase.Maint.apply_edit m [ Tgd.Chase.Maint.Insert tail ]);
    ignore (Tgd.Chase.Maint.apply_edit m [ Tgd.Chase.Maint.Retract tail ])
  in
  let scratch () =
    let engine = (engine :> Tgd.Chase.engine) in
    let d, _ = mk_path true in
    ignore (Tgd.Chase.run ~engine deps d);
    let d', _ = mk_path false in
    ignore (Tgd.Chase.run ~engine deps d')
  in
  (incremental, scratch)

let incr_grid_pair ~(engine : [ `Par | `Seminaive ]) =
  let module G = Greengraph.Graph in
  let module R = Greengraph.Rule in
  let base, _, _ = Separating.Paths.collision ~t:4 ~t':4 in
  let rules = Separating.Tbox.rules in
  (* extend the tail of the second αβ-path by a fresh vertex under the
     same label — the derived cone stays local to the new tail *)
  let edges = G.edges base in
  let e = List.nth edges (List.length edges - 1) in
  let lab =
    match e.G.label with
    | Some i -> Greengraph.Label.l i
    | None -> Greengraph.Label.empty
  in
  let held = G.copy base in
  let w = G.fresh held in
  let m, _ = R.Maint.create rules held in
  let incremental () =
    ignore (R.Maint.apply_edit m [ R.Maint.Insert (lab, e.G.dst, w) ]);
    ignore (R.Maint.apply_edit m [ R.Maint.Retract (lab, e.G.dst, w) ])
  in
  let scratch () =
    let engine = (engine :> R.engine) in
    let g = G.copy base in
    let w' = G.fresh g in
    ignore (G.add_edge g lab e.G.dst w');
    ignore (R.chase ~engine rules g);
    let g' = G.copy base in
    ignore (R.chase ~engine rules g')
  in
  (incremental, scratch)

let incr_workload_names =
  [ "E10 tgd {p2} tail-edge edit"; "E2 grid (4,4) tail-extension edit" ]

let incr_workloads ~engine =
  List.combine incr_workload_names
    [ incr_e10_pair ~engine; incr_grid_pair ~engine ]

let render_incr_json rows =
  let b = Buffer.create 512 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i (name, scratch, incremental) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"experiment\": %S, \"engine\": \"seminaive\", \"mode\": \
            \"scratch\", \"wall_s\": %.6f},\n"
           name scratch);
      Buffer.add_string b
        (Printf.sprintf
           "  {\"experiment\": %S, \"engine\": \"seminaive\", \"mode\": \
            \"incr\", \"wall_s\": %.6f, \"speedup\": %.2f}"
           name incremental (scratch /. incremental)))
    rows;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let emit_incr_json () =
  section "E21: incremental maintenance vs from-scratch re-chase";
  let rows =
    List.map
      (fun (name, (incremental, scratch)) ->
        let w_inc, () = wall_clock incremental in
        let w_scr, () = wall_clock scratch in
        Format.printf "%-32s scratch %.4fms  incr %.4fms  %6.1fx@." name
          (w_scr *. 1e3) (w_inc *. 1e3) (w_scr /. w_inc);
        (name, w_scr, w_inc))
      (incr_workloads ~engine:`Seminaive)
  in
  let oc = open_out "BENCH_incr.json" in
  output_string oc (render_incr_json rows);
  close_out oc;
  Format.printf "wrote BENCH_incr.json (%d rows)@." (2 * List.length rows)

(* E21 gate (dune build @bench-smoke, via `regress --incr`): a single-
   fact edit through the maintenance path must beat from-scratch
   re-chase by at least 5x on both standing workloads.  Same shape as
   the par gate: min-of-5 alternating measurements so a scheduler
   hiccup inflates one sample, not the minimum, and a 10% grace band on
   the floor.  The margin is not tight — the checked-in BENCH_incr.json
   records well over 5x on both rows — so the band only absorbs noise,
   never a real regression. *)
let incr_gate () =
  let min5 f g =
    let rec go k (mf, mg) =
      if k = 0 then (mf, mg)
      else
        let wf, () = wall_clock f in
        let wg, () = wall_clock g in
        go (k - 1) (Float.min mf wf, Float.min mg wg)
    in
    go 5 (infinity, infinity)
  in
  let failures = ref 0 in
  let gate name (scr, inc) =
    let verdict =
      if inc *. 5.0 <= scr *. 1.10 then "ok"
      else begin
        incr failures;
        "FAIL"
      end
    in
    Format.printf "incr-gate %-32s scratch %.4fs  incr %.4fs  %5.1fx  %s@."
      name scr inc (scr /. inc) verdict
  in
  List.iter
    (fun (name, (incremental, scratch)) ->
      gate name (min5 scratch incremental))
    (incr_workloads ~engine:`Seminaive);
  if !failures > 0 then begin
    Format.printf
      "bench-smoke: incremental edit not 5x faster than scratch on %d row(s)@."
      !failures;
    exit 1
  end
  else Format.printf "bench-smoke: incremental edit >= 5x on every gated row@."

(* E21 smoke (dune runtest via @incr-smoke): a deterministic
   correctness pass, no timing.  On each standing workload, run the
   cut+regrow cycle through Maint and require (a) a clean support audit
   after every edit, (b) the maintained state back at its pre-edit size
   — the regrow must re-fire the killed derivations with their original
   vertices, not grow a second grid.  Then shape-check the checked-in
   BENCH_incr.json: both workloads present in both modes, every
   recorded speedup at or above the 5x floor the gate enforces. *)
let incr_smoke baseline_path =
  let failures = ref 0 in
  let check name ok =
    Format.printf "incr-smoke %-44s %s@." name (if ok then "ok" else "FAIL");
    if not ok then incr failures
  in
  (* E10 tgd cycle *)
  (let deps = Tgd.Dep.t_q [ ("p2", path_query 2) ] in
   let base = fst (Tgd.Greenred.green_canonical (path_query 5)) in
   let gedge = Relational.Symbol.green (Relational.Symbol.make "E" 2) in
   let greens =
     List.sort Relational.Fact.compare
       (Relational.Structure.facts_with_sym base gedge)
   in
   let mid = List.nth greens (List.length greens / 2) in
   let m, s0 =
     Tgd.Chase.Maint.create deps (Relational.Structure.copy base)
   in
   check "E10 initial chase reached fixpoint" s0.Tgd.Chase.fixpoint;
   let size0 = Relational.Structure.size (Tgd.Chase.Maint.structure m) in
   let st = Tgd.Chase.Maint.apply_edit m [ Tgd.Chase.Maint.Retract mid ] in
   check "E10 cut retracted the base fact" (st.Tgd.Chase.Maint.e_retracted = 1);
   check "E10 audit clean after cut" (Tgd.Chase.Maint.check m = []);
   ignore (Tgd.Chase.Maint.apply_edit m [ Tgd.Chase.Maint.Insert mid ]);
   check "E10 audit clean after regrow" (Tgd.Chase.Maint.check m = []);
   check "E10 regrow restored the pre-edit size"
     (Relational.Structure.size (Tgd.Chase.Maint.structure m) = size0));
  (* grid (4,4) graph cycle *)
  (let module G = Greengraph.Graph in
   let module R = Greengraph.Rule in
   let base, _, _ = Separating.Paths.collision ~t:4 ~t':4 in
   let rules = Separating.Tbox.rules in
   let e = List.hd (G.edges base) in
   let lab =
     match e.G.label with
     | Some i -> Greengraph.Label.l i
     | None -> Greengraph.Label.empty
   in
   let m, s0 = R.Maint.create rules (G.copy base) in
   check "grid initial chase reached fixpoint" s0.R.fixpoint;
   let size0 = G.size (R.Maint.graph m) in
   let st = R.Maint.apply_edit m [ R.Maint.Retract (lab, e.G.src, e.G.dst) ] in
   check "grid cut tore the grid off the fold edge" (st.R.Maint.e_killed >= 50);
   check "grid audit clean after cut" (R.Maint.check m = []);
   ignore (R.Maint.apply_edit m [ R.Maint.Insert (lab, e.G.src, e.G.dst) ]);
   check "grid audit clean after regrow" (R.Maint.check m = []);
   check "grid regrow restored the pre-edit size"
     (G.size (R.Maint.graph m) = size0);
   check "grid models the T-box at fixpoint" (R.models rules (R.Maint.graph m)));
  (* shape of the checked-in baseline *)
  (let ic = open_in baseline_path in
   let rows = ref [] in
   (try
      while true do
        let line = input_line ic in
        match
          ( scan_field line "experiment",
            scan_field line "mode",
            scan_field line "wall_s" )
        with
        | Some e, Some mo, Some w ->
            rows :=
              (e, mo, float_of_string w, scan_field line "speedup") :: !rows
        | _ -> ()
      done
    with End_of_file -> close_in ic);
   List.iter
     (fun name ->
       let mode m = List.exists (fun (e, mo, _, _) -> e = name && mo = m) !rows in
       check (name ^ ": scratch row present") (mode "scratch");
       check (name ^ ": incr row present") (mode "incr"))
     incr_workload_names;
   List.iter
     (fun (e, mo, _, speedup) ->
       if mo = "incr" then
         check
           (e ^ ": recorded speedup >= 5x")
           (match speedup with
           | Some s -> float_of_string s >= 5.0
           | None -> false))
     !rows);
  if !failures > 0 then begin
    Format.printf "incr-smoke: %d check(s) failed@." !failures;
    exit 1
  end
  else Format.printf "incr-smoke: all checks passed@."

(* E19: the par-pipeline ablation — plan ordering (fixed / cost / auto,
   where auto adds the generic-join evaluator on cyclic bodies) × firing
   (sequential / staged two-phase) on the E10 chase at jobs=1, the bench
   box's single-shard fast path; then the scheduling axis (round-robin
   vs work-stealing) at jobs=2, where a pool actually runs. *)
let emit_ablation () =
  section "E19: par pipeline ablation (E10 tgd {P2,P3}->P5, 6 stages)";
  let e10 ?jobs tuning () =
    let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
    let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
    ignore (Tgd.Chase.run ~engine:`Par ?jobs ~tuning ~max_stages:6 deps d)
  in
  Format.printf "%-8s %-8s %12s@." "plan" "firing" "time/run";
  List.iter
    (fun (pm, pn) ->
      List.iter
        (fun (fm, fn) ->
          let tuning =
            {
              Tgd.Chase.plan_mode = pm;
              Tgd.Chase.par_fire = fm;
              Tgd.Chase.stealing = true;
            }
          in
          let w, () = wall_clock (e10 tuning) in
          Format.printf "%-8s %-8s %10.4fms@." pn fn (w *. 1e3))
        [ (`Seq, "seq"); (`Staged, "staged") ])
    [
      (Relational.Hom.Plan.Fixed, "fixed");
      (Relational.Hom.Plan.Cost, "cost");
      (Relational.Hom.Plan.Auto, "auto");
    ];
  Format.printf "@.%-12s %12s  (jobs=2: pooled scans, staged firing)@."
    "scheduling" "time/run";
  List.iter
    (fun (st, sn) ->
      let tuning =
        {
          Tgd.Chase.default_tuning with
          Tgd.Chase.par_fire = `Staged;
          Tgd.Chase.stealing = st;
        }
      in
      let w, () = wall_clock (e10 ~jobs:2 tuning) in
      Format.printf "%-12s %10.4fms@." sn (w *. 1e3))
    [ (false, "round-robin"); (true, "stealing") ]

(* Instrumentation-overhead measurement (EXPERIMENTS.md E16, E18): the E1
   and grid(4,4) workloads timed with the obs switches off, with metrics
   on, and with metrics+tracing on — all in one process, so the
   comparison isolates the hooks from build/layout noise; then the same
   workloads ungoverned vs under an armed governor.  Best-of-[reps] per
   cell. *)
let emit_overhead () =
  let workloads =
    [
      ("E1 tinf stages=20", fun () -> ignore (Separating.Tinf.chase ~stages:20 ()));
      ( "E2 grid (4,4)",
        fun () -> ignore (Separating.Theorem14.collision_outcome ~t:4 ~t':4 ()) );
    ]
  in
  let best f =
    let reps = 7 in
    let rec go k best =
      if k = 0 then best
      else
        let w, () = wall_clock f in
        go (k - 1) (Float.min best w)
    in
    go reps infinity
  in
  let modes =
    [
      ("off", false, false); ("metrics", true, false); ("metrics+trace", true, true);
    ]
  in
  Format.printf "%-22s %14s %14s %10s@." "workload" "mode" "time/run" "vs off";
  List.iter
    (fun (name, run) ->
      let base = ref nan in
      List.iter
        (fun (mode, m, t) ->
          Obs.set_metrics m;
          Obs.set_tracing t;
          (* clear the span buffer between runs: a real traced run exports
             once, it does not retain thousands of iterations of events *)
          let run = if t then fun () -> run (); Obs.Trace.clear () else run in
          let w = best run in
          Obs.disable_all ();
          Obs.Trace.clear ();
          if Float.is_nan !base then base := w;
          Format.printf "%-22s %14s %12.4fms %+9.2f%%@." name mode (w *. 1e3)
            (100. *. ((w /. !base) -. 1.)))
        modes)
    workloads;
  (* Governor overhead (EXPERIMENTS.md E18): the same workloads run
     ungoverned (the [unlimited] fast path — physical-equality skip, one
     bool read per poll site) and with an armed governor carrying a real
     cancel token.  The [idle] governor (no budgets, no deadline, the
     never token) pays only the stage-boundary checks — that row is the
     one the <3% contract applies to; [armed] additionally turns on
     hot-path cancellation polling, the price of Ctrl-C responsiveness. *)
  let idle = Resilience.Governor.make () in
  let armed =
    Resilience.Governor.make ~cancel:(Resilience.Governor.Cancel.create ()) ()
  in
  let gov_workloads =
    [
      ( "E1 tinf stages=20",
        fun g -> ignore (Separating.Tinf.chase ?governor:g ~stages:20 ()) );
      ( "E2 grid (4,4)",
        fun g ->
          ignore (Separating.Theorem14.collision_outcome ?governor:g ~t:4 ~t':4 ())
      );
    ]
  in
  Format.printf "@.%-22s %14s %14s %10s@." "workload" "governor" "time/run"
    "vs none";
  List.iter
    (fun (name, run) ->
      let w_off = best (fun () -> run None) in
      let row label w =
        Format.printf "%-22s %14s %12.4fms %+9.2f%%@." name label (w *. 1e3)
          (100. *. ((w /. w_off) -. 1.))
      in
      row "none" w_off;
      row "idle" (best (fun () -> run (Some idle)));
      row "armed" (best (fun () -> run (Some armed))))
    gov_workloads

(* --- daemon saturation benchmark (BENCH_serve.json, E20) ---------------- *)

(* Drive a live redspiderd with N concurrent client domains and measure
   end-to-end job latency (submit → terminal) per job class plus total
   throughput.  One client in four keeps a divergent rainworm-style chase
   in flight, so the numbers are taken with preemption active: the
   divergent job is suspended and resumed across quanta while the short
   jobs complete around it. *)

module SJ = Serve.Json

let serve_paths () =
  let tag = Printf.sprintf "redspiderd-bench-%d" (Unix.getpid ()) in
  ( Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock"),
    Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".store") )

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Run [f socket] against a fresh in-process daemon (own domain), then
   drain it and clean the store up.  The result cache defaults OFF so
   the saturation rows measure the scheduler, not the cache — the
   duplicate-heavy row turns it on explicitly. *)
let with_daemon ~workers ~quantum ?(cache = 0) f =
  let socket, store_dir = serve_paths () in
  rm_rf store_dir;
  let cfg =
    {
      Serve.Server.socket;
      tcp_port = None;
      workers;
      quantum = { Serve.Runner.stages = quantum; seconds = 0. };
      store_dir;
      cache_capacity = cache;
      cache_persist = true;
      read_deadline_s = 60.;
      max_frame = 1 lsl 20;
      log = false;
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.serve cfg) in
  let rec await n =
    if not (Sys.file_exists socket) then
      if n = 0 then failwith "daemon did not come up"
      else begin
        Unix.sleepf 0.02;
        await (n - 1)
      end
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      (match Serve.Client.connect ~socket () with
      | Ok c ->
          ignore (Serve.Client.drain c);
          Serve.Client.close c
      | Error _ -> ());
      Domain.join daemon;
      rm_rf store_dir)
    (fun () -> f socket)

(* The three wire job classes of the saturation mix. *)
let divergent_chase stages =
  Serve.Job.Chase
    {
      views =
        [
          ("p2", "p2(x,y) :- E(x,m), E(m,y)");
          ("p3", "p3(x,y) :- E(x,m), E(m,n), E(n,y)");
        ];
      q0 = "q0(x,y) :- E(x,a), E(a,b), E(b,c), E(c,y)";
      max_stages = stages;
      engine = `Seminaive;
    }

let short_chase =
  Serve.Job.Chase
    {
      views = [ ("p2", "p2(x,y) :- E(x,m), E(m,y)") ];
      q0 = "q0(x,y) :- E(x,a), E(a,b), E(b,y)";
      max_stages = 8;
      engine = `Seminaive;
    }

let worm_job machine steps = Serve.Job.Worm { machine; steps }

let class_of_spec = function
  | Serve.Job.Chase { max_stages; _ } when max_stages > 8 -> "chase-divergent"
  | Serve.Job.Chase _ -> "chase-short"
  | Serve.Job.Worm _ -> "worm"
  | Serve.Job.Determinacy _ -> "determinacy"
  | Serve.Job.Audit _ -> "audit"
  | Serve.Job.Mutate _ -> "mutate"

(* One client: submit its job list sequentially over one connection,
   waiting each job to a terminal state; returns
   (class, latency_s, slices, ok) per job. *)
let client_session socket specs =
  match Serve.Client.connect ~socket () with
  | Error m -> failwith ("client connect: " ^ m)
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close conn)
        (fun () ->
          List.map
            (fun spec ->
              let t0 = Obs.Clock.now_s () in
              let job =
                Result.bind (Serve.Client.submit conn spec) (fun id ->
                    Serve.Client.wait_terminal ~poll_s:10. conn id)
              in
              let dt = Obs.Clock.now_s () -. t0 in
              match job with
              | Error m -> failwith ("client job: " ^ m)
              | Ok j ->
                  let slices =
                    Option.value ~default:0 (SJ.mem_int "slices" j)
                  in
                  let ok = SJ.mem_str "state" j = Some "done" in
                  (class_of_spec spec, dt, slices, ok))
            specs)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float n)) - 1))

(* The full saturation run: [clients] concurrent sessions, a divergent
   chase in every fourth session.  Returns the JSON report. *)
let serve_saturation ~clients ~workers ~quantum ~divergent_stages () =
  let mix i =
    if i mod 4 = 0 then
      [ divergent_chase divergent_stages; worm_job "halt-now" 50; short_chase ]
    else
      [ worm_job "creeper" 100; short_chase; worm_job "halt-now" 50 ]
  in
  with_daemon ~workers ~quantum (fun socket ->
      let t0 = Obs.Clock.now_s () in
      let sessions =
        Array.init clients (fun i ->
            Domain.spawn (fun () -> client_session socket (mix i)))
      in
      let results =
        Array.to_list (Array.map Domain.join sessions) |> List.concat
      in
      let wall_s = Obs.Clock.now_s () -. t0 in
      let classes =
        List.sort_uniq compare (List.map (fun (c, _, _, _) -> c) results)
      in
      let rows =
        List.map
          (fun cls ->
            let lat =
              List.filter_map
                (fun (c, dt, _, _) -> if c = cls then Some dt else None)
                results
            in
            let sorted = Array.of_list (List.sort compare lat) in
            let n = Array.length sorted in
            let mean = Array.fold_left ( +. ) 0. sorted /. float (max 1 n) in
            SJ.Obj
              [
                ("class", SJ.String cls);
                ("jobs", SJ.Int n);
                ("p50_ms", SJ.Float (1000. *. percentile sorted 0.50));
                ("p95_ms", SJ.Float (1000. *. percentile sorted 0.95));
                ("mean_ms", SJ.Float (1000. *. mean));
              ])
          classes
      in
      let total = List.length results in
      let failed =
        List.length (List.filter (fun (_, _, _, ok) -> not ok) results)
      in
      let max_slices =
        List.fold_left
          (fun m (c, _, s, _) -> if c = "chase-divergent" then max m s else m)
          0 results
      in
      SJ.Obj
        [
          ("experiment", SJ.String "E20");
          ("clients", SJ.Int clients);
          ("workers", SJ.Int workers);
          ("quantum_stages", SJ.Int quantum);
          ("divergent_stages", SJ.Int divergent_stages);
          ("jobs_total", SJ.Int total);
          ("jobs_failed", SJ.Int failed);
          ("wall_s", SJ.Float wall_s);
          ("jobs_per_s", SJ.Float (float total /. wall_s));
          ("divergent_max_slices", SJ.Int max_slices);
          ("rows", SJ.List rows);
        ])

(* The duplicate-heavy row: every client submits the same moderately
   expensive chase several times in one pipelined batch.  With the cache
   on, one submission executes and the rest are answered by coalescing
   or by the entry; with it off, every duplicate re-chases.  Returns
   (jobs_per_s, cache counters JSON). *)
let serve_dup ~clients ~jobs_per_client ~workers ~quantum ~stages ~cache () =
  with_daemon ~workers ~quantum ~cache (fun socket ->
      let t0 = Obs.Clock.now_s () in
      let sessions =
        Array.init clients (fun _ ->
            Domain.spawn (fun () ->
                match Serve.Client.connect ~socket () with
                | Error m -> failwith ("dup client connect: " ^ m)
                | Ok conn ->
                    Fun.protect
                      ~finally:(fun () -> Serve.Client.close conn)
                      (fun () ->
                        let ids =
                          match
                            Serve.Client.submit_many conn
                              (List.init jobs_per_client (fun _ ->
                                   divergent_chase stages))
                          with
                          | Ok ids -> ids
                          | Error m -> failwith ("dup submit: " ^ m)
                        in
                        List.iter
                          (fun id ->
                            match
                              Serve.Client.wait_terminal ~poll_s:10. conn id
                            with
                            | Ok j when SJ.mem_str "state" j = Some "done" -> ()
                            | Ok _ -> failwith "dup job did not finish done"
                            | Error m -> failwith ("dup wait: " ^ m))
                          ids)))
      in
      Array.iter Domain.join sessions;
      let wall_s = Obs.Clock.now_s () -. t0 in
      let counters =
        match Serve.Client.connect ~socket () with
        | Error _ -> SJ.Obj []
        | Ok conn ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close conn)
              (fun () ->
                match Serve.Client.stats conn with
                | Ok stats ->
                    Option.value ~default:(SJ.Obj []) (SJ.member "cache" stats)
                | Error _ -> SJ.Obj [])
      in
      (float (clients * jobs_per_client) /. wall_s, counters))

let dup_row ~clients ~jobs_per_client ~workers ~quantum ~stages () =
  let cached_jps, counters =
    serve_dup ~clients ~jobs_per_client ~workers ~quantum ~stages ~cache:512 ()
  in
  let uncached_jps, _ =
    serve_dup ~clients ~jobs_per_client ~workers ~quantum ~stages ~cache:0 ()
  in
  SJ.Obj
    [
      ("clients", SJ.Int clients);
      ("jobs_per_client", SJ.Int jobs_per_client);
      ("stages", SJ.Int stages);
      ("cached_jobs_per_s", SJ.Float cached_jps);
      ("uncached_jobs_per_s", SJ.Float uncached_jps);
      ("speedup", SJ.Float (cached_jps /. uncached_jps));
      ("cache", counters);
    ]

let emit_serve_json () =
  let report =
    serve_saturation ~clients:8 ~workers:4 ~quantum:3 ~divergent_stages:12 ()
  in
  let dup =
    dup_row ~clients:8 ~jobs_per_client:6 ~workers:4 ~quantum:3 ~stages:12 ()
  in
  let report =
    match report with
    | SJ.Obj kvs -> SJ.Obj (kvs @ [ ("dup", dup) ])
    | other -> other
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (SJ.to_string report ^ "\n");
  close_out oc;
  let num k = Option.value ~default:0. (SJ.mem_float k report) in
  Format.printf
    "wrote BENCH_serve.json (%.1f jobs/s over %d clients, divergent job \
     preempted %d times, duplicate row %.1fx cached speedup)@."
    (num "jobs_per_s")
    (Option.value ~default:0 (SJ.mem_int "clients" report))
    (Option.value ~default:0 (SJ.mem_int "divergent_max_slices" report) - 1)
    (Option.value ~default:0.
       (Option.bind (SJ.member "dup" report) (SJ.mem_float "speedup")))

(* The @serve-smoke gate: a small live saturation (still 8 clients, the
   acceptance floor) that must complete every job with preemption
   active, plus a shape check of the checked-in BENCH_serve.json. *)
let serve_smoke baseline =
  let report =
    serve_saturation ~clients:8 ~workers:4 ~quantum:2 ~divergent_stages:9 ()
  in
  let geti k = Option.value ~default:(-1) (SJ.mem_int k report) in
  if geti "jobs_failed" <> 0 then begin
    Format.printf "serve smoke: %d job(s) failed@." (geti "jobs_failed");
    exit 1
  end;
  if geti "divergent_max_slices" < 2 then begin
    Format.printf
      "serve smoke: divergent chase ran in %d slice(s); preemption inactive@."
      (geti "divergent_max_slices");
    exit 1
  end;
  (match
     let ic = open_in baseline in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () -> really_input_string ic (in_channel_length ic))
   with
  | exception Sys_error m ->
      Format.printf "serve smoke: %s@." m;
      exit 1
  | raw -> (
      match SJ.parse (String.trim raw) with
      | Error m ->
          Format.printf "serve smoke: %s is not JSON: %s@." baseline m;
          exit 1
      | Ok base ->
          let need k =
            if SJ.member k base = None then begin
              Format.printf "serve smoke: %s lacks %s@." baseline k;
              exit 1
            end
          in
          List.iter need
            [ "clients"; "jobs_per_s"; "divergent_max_slices"; "rows"; "dup" ];
          if
            Option.value ~default:0 (SJ.mem_int "clients" base) < 8
            || Option.value ~default:0 (SJ.mem_int "divergent_max_slices" base)
               < 2
          then begin
            Format.printf
              "serve smoke: %s does not witness 8 clients with preemption@."
              baseline;
            exit 1
          end;
          let dup = SJ.member "dup" base in
          if
            Option.value ~default:0.
              (Option.bind dup (SJ.mem_float "speedup"))
            < 3.
            || Option.bind dup (fun d ->
                   Option.bind (SJ.member "cache" d) (SJ.mem_int "hits"))
               = None
          then begin
            Format.printf
              "serve smoke: %s duplicate row lacks the 3x cached speedup (or \
               its cache counters)@."
              baseline;
            exit 1
          end));
  Format.printf
    "serve smoke: %d jobs over 8 clients, %.1f jobs/s, divergent job \
     suspended %d time(s)@."
    (geti "jobs_total")
    (Option.value ~default:0. (SJ.mem_float "jobs_per_s" report))
    (geti "divergent_max_slices" - 1)

(* The `regress --serve` gate: cached duplicate-heavy traffic must move
   at least 3x the jobs/s of the same traffic uncached.  Live daemon
   timing is noisy, so like the par gate it takes the best of 5
   alternating measurements per mode and allows a 10% band on the 3x
   floor. *)
let serve_gate () =
  let run cache =
    fst
      (serve_dup ~clients:4 ~jobs_per_client:6 ~workers:4 ~quantum:3 ~stages:9
         ~cache ())
  in
  let best_cached = ref 0. and best_uncached = ref 0. in
  for _ = 1 to 5 do
    best_uncached := Float.max !best_uncached (run 0);
    best_cached := Float.max !best_cached (run 512)
  done;
  let speedup = !best_cached /. !best_uncached in
  Format.printf
    "serve-gate duplicate-heavy      cached %.1f jobs/s  uncached %.1f jobs/s \
     (%.2fx)@."
    !best_cached !best_uncached speedup;
  if !best_cached *. 1.10 < 3. *. !best_uncached then begin
    Format.printf
      "bench-smoke: result cache below the 3x duplicate-traffic floor@.";
    exit 1
  end
  else Format.printf "bench-smoke: cache >= 3x on duplicate-heavy traffic@."

(* The @cache-smoke gate: deterministic result-cache semantics against a
   live daemon — no timing, so it can ride `dune runtest`.  Checks the
   counter arithmetic exactly: a resubmission is a hit, a pipelined
   duplicate batch is one miss plus followers (hit or coalesced,
   depending on arrival timing — their sum is invariant), and every
   duplicate carries the bit-identical digest. *)
let cache_smoke () =
  let fail fmt = Format.kasprintf (fun m -> print_endline m; exit 1) fmt in
  with_daemon ~workers:2 ~quantum:2 ~cache:64 (fun socket ->
      match Serve.Client.connect ~socket () with
      | Error m -> fail "cache smoke: connect: %s" m
      | Ok conn ->
          Fun.protect
            ~finally:(fun () -> Serve.Client.close conn)
            (fun () ->
              let wait id =
                match Serve.Client.wait_terminal ~poll_s:10. conn id with
                | Ok j -> j
                | Error m -> fail "cache smoke: wait: %s" m
              in
              let digest j =
                Option.value ~default:""
                  (Option.bind (SJ.member "result" j) (SJ.mem_str "digest"))
              in
              let slices j = Option.value ~default:(-1) (SJ.mem_int "slices" j) in
              let submit spec =
                match Serve.Client.submit conn spec with
                | Ok id -> id
                | Error m -> fail "cache smoke: submit: %s" m
              in
              (* resubmission of a finished chase: hit, zero slices,
                 identical digest *)
              let j1 = wait (submit (divergent_chase 9)) in
              if slices j1 < 1 then fail "cache smoke: first run did not execute";
              let j2 = wait (submit (divergent_chase 9)) in
              if slices j2 <> 0 then
                fail "cache smoke: resubmission executed (%d slices)" (slices j2);
              if digest j2 <> digest j1 || digest j1 = "" then
                fail "cache smoke: resubmission digest differs";
              (* pipelined duplicates: one executes, all bit-identical *)
              let ids =
                match
                  Serve.Client.submit_many conn
                    (List.init 4 (fun _ -> Serve.Job.Worm { machine = "halt-now"; steps = 50 }))
                with
                | Ok ids -> ids
                | Error m -> fail "cache smoke: submit_many: %s" m
              in
              let js = List.map wait ids in
              let wd = digest (List.hd js) in
              if wd = "" then fail "cache smoke: worm digest empty";
              List.iter
                (fun j ->
                  if digest j <> wd then
                    fail "cache smoke: duplicate worm digest differs")
                js;
              if List.length (List.filter (fun j -> slices j > 0) js) <> 1 then
                fail "cache smoke: duplicate batch executed more than once";
              (* the counters add up: 2 misses (chase primary + worm
                 primary), and 4 duplicates answered without running *)
              match Serve.Client.stats conn with
              | Error m -> fail "cache smoke: stats: %s" m
              | Ok stats ->
                  let c k =
                    Option.value ~default:(-1)
                      (Option.bind (SJ.member "cache" stats) (SJ.mem_int k))
                  in
                  if c "misses" <> 2 then
                    fail "cache smoke: expected 2 misses, saw %d" (c "misses");
                  if c "hits" + c "coalesced" <> 4 then
                    fail "cache smoke: expected 4 cache-answered duplicates, saw %d"
                      (c "hits" + c "coalesced");
                  if SJ.member "sched" stats = None then
                    fail "cache smoke: stats reply lacks the sched block";
                  Format.printf
                    "cache smoke: 2 misses, %d hits + %d coalesced, every \
                     duplicate bit-identical@."
                    (c "hits") (c "coalesced")))

(* The @campaign-smoke gate (E23): chaos-proven exactly-once shard
   accounting.  Three legs, all deterministic in their seeds:

   1. the in-process chaos gate — per seed, an uninterrupted reference
      campaign vs. the same campaign with the failpoint ladder armed
      (workers killed mid-shard, completions dropped, ledger appends
      torn), interrupted twice and resumed twice; coverage counters and
      the counterexample corpus must come back byte-identical, with 0
      shards lost and 0 duplicated;
   2. the ledger drill — torn appends at p=0.6, every one followed by a
      full recovery load;
   3. the daemon leg — the same campaign run as redspiderd audit jobs
      under socket chaos (connects failing, polls dropping their
      socket), compared byte-for-byte against an in-process reference.

   The combined injected-fault count must reach the 200-fault floor the
   experiment claims, so a quiet regression in fault delivery (sites
   unwired, probabilities never drawn) also fails the gate. *)
let campaign_smoke () =
  let fail fmt = Format.kasprintf (fun m -> print_endline m; exit 1) fmt in
  let module FP = Resilience.Failpoint in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "redspider-campaign-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* leg 1: kill/vanish/torn-ledger chaos, interrupted and resumed *)
      let g = Campaign.Chaos.gate ~dir () in
      List.iter print_endline g.Campaign.Chaos.g_failures;
      if g.Campaign.Chaos.g_failures <> [] then
        fail "campaign smoke: chaos gate failed (%d invariant violations)"
          (List.length g.Campaign.Chaos.g_failures);
      (* leg 2: dense torn-append recovery *)
      let drill_injected, drill_failures =
        Campaign.Chaos.ledger_drill
          ~path:(Filename.concat dir "drill.ledger")
          ~seed:13 ()
      in
      List.iter print_endline drill_failures;
      if drill_failures <> [] then
        fail "campaign smoke: ledger drill failed (%d violations)"
          (List.length drill_failures);
      (* leg 3: the same shards as daemon audit jobs, under socket chaos *)
      let mk ~ledger ~mode =
        {
          (Campaign.Supervisor.default_config ~ledger) with
          Campaign.Supervisor.families = [ Oracle.Shard.Audit; Oracle.Shard.Incr ];
          seed = 7;
          cases = 12;
          shard_cases = 4;
          budget = { Oracle.Diff.default_budget with Oracle.Diff.max_stages = 3 };
          jobs = 3;
          mode;
          lease_s = 1.0;
          max_attempts = 30;
          backoff_base_s = 0.01;
          backoff_cap_s = 0.05;
        }
      in
      FP.clear ();
      let reference =
        match
          Campaign.Supervisor.run
            (mk ~ledger:(Filename.concat dir "pool.ledger")
               ~mode:Campaign.Supervisor.Pool)
        with
        | Ok s -> s
        | Error m -> fail "campaign smoke: pool reference: %s" m
      in
      let daemon_injected =
        with_daemon ~workers:3 ~quantum:4 (fun socket ->
            FP.configure_exn ~seed:5 "campaign.sock=0.25,client.connect=0.25";
            let r =
              Campaign.Supervisor.run
                (mk ~ledger:(Filename.concat dir "daemon.ledger")
                   ~mode:(Campaign.Supervisor.Daemon { socket }))
            in
            let injected = FP.injected_total () in
            FP.clear ();
            (match r with
            | Error m -> fail "campaign smoke: daemon campaign: %s" m
            | Ok s ->
                List.iter print_endline
                  (Campaign.Chaos.compare_summaries ~seed:7 reference s);
                if
                  Campaign.Supervisor.canonical s
                  <> Campaign.Supervisor.canonical reference
                then
                  fail
                    "campaign smoke: daemon campaign diverged from the \
                     in-process reference";
                let a = s.Campaign.Supervisor.s_accounting in
                if a.Campaign.Ledger.a_lost > 0 || a.Campaign.Ledger.a_duplicated > 0
                then
                  fail "campaign smoke: daemon accounting %d lost / %d duplicated"
                    a.Campaign.Ledger.a_lost a.Campaign.Ledger.a_duplicated);
            injected)
      in
      let total = g.Campaign.Chaos.g_injected + drill_injected + daemon_injected in
      if total < 200 then
        fail
          "campaign smoke: only %d faults injected (gate %d + drill %d + \
           daemon %d); the experiment claims a 200-fault floor"
          total g.Campaign.Chaos.g_injected drill_injected daemon_injected;
      Format.printf
        "campaign smoke: %d faults injected (gate %d over seeds %s, drill %d, \
         daemon %d); coverage + corpus byte-identical, 0 shards lost, 0 \
         duplicated@."
        total g.Campaign.Chaos.g_injected
        (String.concat "," (List.map string_of_int g.Campaign.Chaos.g_seeds))
        drill_injected daemon_injected)

(* Quick equivalence + JSON sanity pass, wired into `dune runtest` (prints
   to stdout only, so the test stays hermetic). *)
let smoke () =
  let g1, _, _, s1 = Separating.Tinf.chase ~engine:`Stage ~stages:8 () in
  let g2, _, _, s2 = Separating.Tinf.chase ~engine:`Seminaive ~stages:8 () in
  assert (Greengraph.Graph.equal g1 g2);
  assert (s1.Greengraph.Rule.applications = s2.Greengraph.Rule.applications);
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
  let d1 = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  let d2 = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  let t1 = Tgd.Chase.run_stage ~max_stages:4 deps d1 in
  let t2 = Tgd.Chase.run_seminaive ~max_stages:4 deps d2 in
  assert (Relational.Structure.equal_sets d1 d2);
  assert (t1.Tgd.Chase.applications = t2.Tgd.Chase.applications);
  let rows = chase_rows ~tinf_stages:10 ~grid:(2, 2) ~tgd_stages:3 in
  print_string (render_chase_json rows);
  Format.printf "bench smoke: engines agree on all workloads@."

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "" in
  match mode with
  | "json" ->
      emit_chase_json ();
      emit_hom_json ();
      emit_audit_json ()
  | "regress" ->
      (* `regress [--engine par] [--incr] [--serve] [baseline]`: the
         baseline gate always runs; `--engine par` adds the
         par-vs-seminaive wall-clock gate, `--incr` the
         incremental-vs-scratch one, `--serve` the daemon result-cache
         jobs/s one. *)
      let rest =
        Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2))
      in
      let gate_par = List.mem "--engine" rest && List.mem "par" rest in
      let gate_incr = List.mem "--incr" rest in
      let gate_serve = List.mem "--serve" rest in
      let baseline =
        match
          List.filter
            (fun a ->
              a <> "--engine" && a <> "par" && a <> "--incr" && a <> "--serve")
            rest
        with
        | b :: _ -> b
        | [] -> "BENCH_chase.json"
      in
      regress baseline;
      if gate_par then par_gate ();
      if gate_incr then incr_gate ();
      if gate_serve then serve_gate ()
  | "ablation" -> emit_ablation ()
  | "overhead" -> emit_overhead ()
  | "incr" -> emit_incr_json ()
  | "incr-smoke" ->
      incr_smoke
        (if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_incr.json")
  | "serve" -> emit_serve_json ()
  | "serve-smoke" ->
      serve_smoke
        (if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_serve.json")
  | "cache-smoke" -> cache_smoke ()
  | "campaign-smoke" -> campaign_smoke ()
  | "smoke" -> smoke ()
  | _ ->
      let fast = mode = "fast" in
      Format.printf "Red Spider Meets a Rainworm — experiment harness@.";
      table_fig1 ();
      table_grids ();
      table_worms ();
      table_lemma24_25 ();
      table_compile_blowup ();
      table_determinacy ();
      table_theorem2 ();
      table_attempt1 ();
      table_ablations ();
      if not fast then run_benches ();
      Format.printf "@.done.@."
