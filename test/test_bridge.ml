(* Cross-validation: the dedicated swarm and green-graph engines agree
   with the generic TGD machinery run over the bridge encodings. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f = Spider.Query.f

(* --- roundtrips ---------------------------------------------------------- *)

let test_swarm_roundtrip () =
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:2 ()) y x);
  let g' = Swarm.Bridge.of_structure ~s:3 (Swarm.Bridge.to_structure g) in
  check "swarm roundtrip" true (Swarm.Graph.equal g g')

let test_greengraph_roundtrip () =
  let g, _, _ = Greengraph.Graph.d_i () in
  ignore (Greengraph.Graph.add_edge g (Some 7) 0 1);
  let g' = Greengraph.Bridge.of_structure (Greengraph.Bridge.to_structure g) in
  check "green graph roundtrip" true (Greengraph.Graph.equal g g')

let test_roundtrip_property =
  QCheck.Test.make ~name:"green-graph bridge roundtrip (random)" ~count:40
    QCheck.(list_of_size (Gen.int_range 1 10)
      (triple (int_bound 5) (int_bound 5) (option (int_range 5 20))))
    (fun edges ->
      let g = Greengraph.Graph.create () in
      List.iter (fun (x, y, lab) -> ignore (Greengraph.Graph.add_edge g lab x y)) edges;
      Greengraph.Graph.equal g
        (Greengraph.Bridge.of_structure (Greengraph.Bridge.to_structure g)))

(* --- green graphs: dedicated vs generic chase ------------------------------ *)

let generic_collision_outcome ~t ~t' =
  let g, _, _ = Separating.Paths.collision ~t ~t' in
  let st = Greengraph.Bridge.to_structure g in
  let deps = Greengraph.Bridge.tgds_of_rules Separating.Tbox.rules in
  let has_pattern st =
    Greengraph.Graph.has_12_pattern (Greengraph.Bridge.of_structure st)
  in
  let stats = Tgd.Chase.run ~max_stages:40 ~stop:has_pattern deps st in
  (has_pattern st, stats)

let test_generic_chase_agrees_unequal () =
  let pattern, _ = generic_collision_outcome ~t:2 ~t':3 in
  check "generic chase finds the pattern" true pattern

let test_generic_chase_agrees_equal () =
  let pattern, stats = generic_collision_outcome ~t:2 ~t':2 in
  check "generic chase stays clean" false pattern;
  check "generic chase converges" true stats.Tgd.Chase.fixpoint

let test_models_agree () =
  (* a finished equal-collision grid is a model for both engines *)
  let _, _, g = Separating.Theorem14.collision_outcome ~t:2 ~t':2 () in
  check "dedicated models" true (Greengraph.Rule.models Separating.Tbox.rules g);
  check "generic models" true
    (Tgd.Chase.models
       (Greengraph.Bridge.tgds_of_rules Separating.Tbox.rules)
       (Greengraph.Bridge.to_structure g))

let test_violations_agree () =
  (* an unfinished structure violates both ways *)
  let g, _, _ = Separating.Paths.collision ~t:1 ~t':2 in
  check "dedicated violation" false (Greengraph.Rule.models Separating.Tbox.rules g);
  check "generic violation" false
    (Tgd.Chase.models
       (Greengraph.Bridge.tgds_of_rules Separating.Tbox.rules)
       (Greengraph.Bridge.to_structure g))

(* --- swarms: dedicated vs generic ------------------------------------------ *)

let test_swarm_bootstrap_generic () =
  (* footnote 10 through the generic chase over the bridge *)
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  let st = Swarm.Bridge.to_structure g in
  let deps = Swarm.Bridge.tgds_of_rules Greengraph.Precompile.base_rules in
  let has_red st =
    Swarm.Graph.has_full_red (Swarm.Bridge.of_structure ~s:4 st)
  in
  let _ = Tgd.Chase.run ~max_stages:5 ~stop:has_red deps st in
  check "full red spider via generic chase" true (has_red st)

let test_swarm_models_agree () =
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g and y' = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:1 ()) x y');
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:2 ()) x' y');
  let deps = Swarm.Bridge.tgds_of_rule rule in
  check "dedicated: model" true (Swarm.Rule.models [ rule ] g);
  check "generic: model" true (Tgd.Chase.models deps (Swarm.Bridge.to_structure g));
  (* drop a witness: both engines see the violation *)
  let g2 = Swarm.Graph.create () in
  ignore (Swarm.Graph.add_edge g2 (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g2 (Spider.Ideal.green ~upper:2 ()) x' y);
  check "dedicated: violation" false (Swarm.Rule.models [ rule ] g2);
  check "generic: violation" false
    (Tgd.Chase.models deps (Swarm.Bridge.to_structure g2))

let test_tgds_per_rule_count () =
  (* Definition 7's conjunction ranges over subset choices and colors:
     f^{1}_{1} &· f^{2}_{2} has 2⁴ subset choices × 2 colors, kept only
     when ♣ applies — which it always does for subsets *)
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  check_int "32 TGDs" 32 (List.length (Swarm.Bridge.tgds_of_rule rule));
  let rule2 = Swarm.Rule.amp (f ()) (f ()) in
  check_int "2 TGDs for the full query" 2 (List.length (Swarm.Bridge.tgds_of_rule rule2))

let () =
  Alcotest.run "bridge"
    [
      ( "roundtrips",
        [
          Alcotest.test_case "swarm" `Quick test_swarm_roundtrip;
          Alcotest.test_case "green graph" `Quick test_greengraph_roundtrip;
        ] );
      ( "greengraph",
        [
          Alcotest.test_case "generic chase: unequal collision" `Quick
            test_generic_chase_agrees_unequal;
          Alcotest.test_case "generic chase: equal collision" `Quick
            test_generic_chase_agrees_equal;
          Alcotest.test_case "model checks agree" `Quick test_models_agree;
          Alcotest.test_case "violations agree" `Quick test_violations_agree;
        ] );
      ( "swarm",
        [
          Alcotest.test_case "footnote 10 via generic chase" `Quick
            test_swarm_bootstrap_generic;
          Alcotest.test_case "model checks agree" `Quick test_swarm_models_agree;
          Alcotest.test_case "TGD counts" `Quick test_tgds_per_rule_count;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ test_roundtrip_property ] );
    ]
