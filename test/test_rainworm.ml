(* Tests for rainworm machines (Section VIII.A–B): instruction forms,
   configuration validity (Definition 19, Lemma 20), creeping semantics,
   and the TM → rainworm compiler (Lemma 21). *)

open Rainworm

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- instructions ----------------------------------------------------- *)

let test_forms () =
  let open Instruction in
  let forms =
    [
      (d1 (), F1);
      (d2 ~b:"b", F2);
      (d3 ~q:"q", F3);
      (d4 ~b':"b" ~q:"p" ~q':"r" ~b:"c", F4);
      (d4' ~b:"b" ~q':"p" ~q:"r" ~b':"c", F4');
      (d5 ~q:"p" ~q':"r", F5);
      (d5' ~q:"p" ~q':"r", F5');
      (d6 ~q:"p" ~b:"b" ~q':"r", F6);
      (d6' ~q:"p" ~b:"b" ~q':"r", F6');
      (d7 ~q':"p" ~b:"b" ~b':"c" ~q:"r", F7);
      (d7' ~q:"p" ~b':"b" ~b:"c" ~q':"r", F7');
      (d8 ~q:"p" ~b:"b", F8);
    ]
  in
  List.iter
    (fun (i, f) ->
      check "classified" true (classify i = Some f);
      check "parity-sound" true (parity_sound i))
    forms

let test_bad_instruction () =
  (* γ0 q → β1 q' mixes parities: no ♦-form *)
  Alcotest.check_raises "invalid form rejected"
    (Invalid_argument
       "Instruction.make: γ0 [p]̄₀ → β1 [r]γ₀ fits no ♦-form")
    (fun () ->
      ignore (Instruction.make [ Sym.Gamma0; Sym.Q0bar "p" ] [ Sym.Beta1; Sym.Qg0 "r" ]))

let test_machine_partial_function () =
  Alcotest.check_raises "duplicate lhs rejected"
    (Invalid_argument "Machine.make: ∆ is not a partial function (duplicate lhs)")
    (fun () ->
      ignore
        (Machine.make ~name:"dup"
           [ Instruction.d2 ~b:"b"; Instruction.d2 ~b:"c" ]))

(* --- configurations --------------------------------------------------- *)

let test_initial_config_valid () =
  check "initial valid" true (Config.is_valid Config.initial)

let test_config_conditions () =
  (* after ♦1: α γ1 η0 *)
  let w = [ Sym.Alpha; Sym.Gamma1; Sym.Eta0 ] in
  check "post-♦1 valid" true (Config.is_valid w);
  (* two states: invalid *)
  check "two states invalid" false
    (Config.is_valid [ Sym.Alpha; Sym.Eta1; Sym.A0 "b"; Sym.Eta0 ]);
  (* parity violation: α then β0 (both even) *)
  check "parity violation" false
    (Config.is_valid [ Sym.Alpha; Sym.Beta0; Sym.Gamma1; Sym.Eta0 ]);
  (* β in the worm region: invalid *)
  check "beta after gamma invalid" false
    (Config.is_valid [ Sym.Alpha; Sym.Gamma1; Sym.Beta0; Sym.Gamma1; Sym.Eta0 ])

let test_slime_split () =
  let w =
    [ Sym.Alpha; Sym.Beta1; Sym.Beta0; Sym.Gamma1; Sym.A0 "b"; Sym.Eta1 ]
  in
  check_int "slime length" 3 (List.length (Config.slime w));
  check_int "worm length" 3 (List.length (Config.worm w))

(* --- creeping: the eternal creeper ------------------------------------ *)

let test_eternal_creeper_runs () =
  let t = Sim.creep_machine ~max_steps:2000 ~validate:true Zoo.eternal_creeper in
  check "still creeping" false (Sim.halted t);
  check "made cycles" true (t.Sim.cycles > 5)

let test_eternal_creeper_growth () =
  (* the rainworm grows one symbol per cycle and the slime grows one
     symbol per cycle (Section VIII.A narrative) *)
  let t10 = Sim.creep_machine ~max_cycles:10 ~max_steps:100000 Zoo.eternal_creeper in
  let t20 = Sim.creep_machine ~max_cycles:20 ~max_steps:100000 Zoo.eternal_creeper in
  let slime_len t = List.length (Config.slime (Sim.final_config t)) in
  check_int "slime grows 1 per cycle" 10 (slime_len t20 - slime_len t10)

let test_creeper_configs_valid () =
  (* Lemma 20: every reachable word is an RM configuration *)
  let o = Machine.oracle Zoo.eternal_creeper in
  let configs = Sim.reachable_configs ~max_steps:500 o in
  check "some configs" true (List.length configs > 100);
  List.iter (fun w -> check "valid (Lemma 20)" true (Config.is_valid w)) configs

let test_determinism () =
  (* Lemma 22(2): at most one v with w ⤳ v — check via the Thue view *)
  let thue = Machine.to_thue Zoo.eternal_creeper in
  let o = Machine.oracle Zoo.eternal_creeper in
  let configs = Sim.reachable_configs ~max_steps:300 o in
  List.iter
    (fun w -> check "deterministic" true (Thue.System.deterministic_at thue w))
    configs

let test_thue_agrees_with_sim () =
  (* the dedicated stepper and the generic Thue rewriting agree *)
  let thue = Machine.to_thue Zoo.eternal_creeper in
  let o = Machine.oracle Zoo.eternal_creeper in
  let rec go n w =
    if n = 0 then ()
    else
      match Sim.step o w, Thue.System.step thue w with
      | Some w1, Some (_, w2) ->
          check "same step" true (w1 = w2);
          go (n - 1) w1
      | None, None -> ()
      | _ -> Alcotest.fail "stepper and Thue disagree on applicability"
  in
  go 200 Config.initial

let test_stillborn_halts () =
  let t = Sim.creep_machine ~max_steps:100 Zoo.stillborn in
  check "halted" true (Sim.halted t);
  check_int "no full cycle" 0 t.Sim.cycles

(* --- Turing machines -------------------------------------------------- *)

let test_tm_direct () =
  let steps, outcome = Turing.run Zoo.tm_halt_now in
  check_int "halt-now: 0 steps" 0 steps;
  (match outcome with
  | Turing.Halted (Turing.No_transition, _) -> ()
  | _ -> Alcotest.fail "expected halt");
  let steps, _ = Turing.run (Zoo.tm_write_k 5) in
  check_int "write-5: 5 steps" 5 steps;
  check "right-forever diverges" false (Turing.halts ~max_steps:500 Zoo.tm_right_forever)

let test_tm_bouncer () =
  let k = 4 in
  let steps, outcome = Turing.run (Zoo.tm_bouncer k) in
  (match outcome with
  | Turing.Halted (Turing.No_transition, c) ->
      check "bounced enough" true (steps > 3 * k);
      (* tape: w then k+? x's *)
      let tape = Turing.tape_list (Zoo.tm_bouncer k) c in
      check "wall written" true (List.hd tape = "w")
  | _ -> Alcotest.fail "bouncer should halt")

(* --- TM → rainworm compilation (Lemma 21) ----------------------------- *)

let compiled_halts ?(max_steps = 200_000) tm =
  let t = Sim.creep ~max_steps ~validate:true (Tm_compiler.oracle tm) in
  (Sim.halted t, t)

let test_compiled_halt_now () =
  let halted, t = compiled_halts Zoo.tm_halt_now in
  check "worm halts" true halted;
  check "few cycles" true (t.Sim.cycles <= 4)

let test_compiled_write_k () =
  let halted, t = compiled_halts (Zoo.tm_write_k 6) in
  check "worm halts" true halted;
  check "enough cycles to simulate 6 steps" true (t.Sim.cycles >= 6)

let test_compiled_diverges () =
  let tm = Zoo.tm_right_forever in
  let t = Sim.creep ~max_steps:20_000 ~validate:true (Tm_compiler.oracle tm) in
  check "worm still creeping" false (Sim.halted t);
  check "many cycles" true (t.Sim.cycles > 20)

let test_compiled_zigzag_diverges () =
  let t = Sim.creep ~max_steps:20_000 ~validate:true (Tm_compiler.oracle Zoo.tm_zigzag) in
  check "zigzag worm creeps" false (Sim.halted t)

let test_compiled_bouncer_halts () =
  let halted, _ = compiled_halts ~max_steps:1_000_000 (Zoo.tm_bouncer 3) in
  check "bouncer worm halts" true halted

(* Lock-step tape equivalence: at halt, the simulated tape in the worm
   matches the direct TM's final tape. *)
let test_tape_equivalence () =
  List.iter
    (fun (tm, max_steps) ->
      let _, outcome = Turing.run tm in
      match outcome with
      | Turing.Running _ -> Alcotest.fail "test TM must halt"
      | Turing.Halted (_, tm_final) ->
          let direct = Turing.tape_list tm tm_final in
          let t = Sim.creep ~max_steps (Tm_compiler.oracle tm) in
          check "worm halted too" true (Sim.halted t);
          let worm_tape = Tm_compiler.decode_tape (Sim.final_config t) in
          let worm_syms = List.map fst worm_tape in
          (* the worm tape may have extra trailing blanks *)
          let rec prefix a b =
            match a, b with
            | [], _ -> true
            | x :: a', y :: b' -> x = y && prefix a' b'
            | _ :: _, [] -> false
          in
          let blank_tail l n = List.filteri (fun i _ -> i >= n) l
                               |> List.for_all (fun x -> x = tm.Turing.blank) in
          check
            (Printf.sprintf "tape match (%s)" tm.Turing.name)
            true
            (prefix direct worm_syms && blank_tail worm_syms (List.length direct)))
    [ (Zoo.tm_write_k 4, 100_000); (Zoo.tm_bouncer 2, 400_000) ]

let test_materialize () =
  let m = Tm_compiler.materialize ~max_steps:5_000 Zoo.tm_right_forever in
  check "materialized machine nonempty" true (Machine.size m > 5);
  (* the materialized machine behaves like the oracle on the same budget *)
  let t1 = Sim.creep ~max_steps:5_000 (Tm_compiler.oracle Zoo.tm_right_forever) in
  let t2 = Sim.creep_machine ~max_steps:5_000 m in
  check "same final config" true (Sim.final_config t1 = Sim.final_config t2)

(* Property: random 2-state/2-symbol TMs transfer their halting behavior
   through the compiler.  TMs whose verdict is not definite within the
   small direct budget are skipped; halting TMs must yield halting worms
   within a generous cycle budget, diverging ones creeping worms. *)
let gen_random_tm =
  QCheck.Gen.(
    let dir = map (fun b -> if b then Turing.Left else Turing.Right) bool in
    let sym = oneofl [ "_"; "x" ] in
    let state = oneofl [ "q0"; "q1" ] in
    (* each (state, symbol) pair independently gets a transition or not *)
    let entry q a =
      opt (map2 (fun (q', a') d -> ((q, a), (q', a', d))) (pair state sym) dir)
    in
    let* t1 = entry "q0" "_" in
    let* t2 = entry "q0" "x" in
    let* t3 = entry "q1" "_" in
    let* t4 = entry "q1" "x" in
    let transitions = List.filter_map Fun.id [ t1; t2; t3; t4 ] in
    return (Turing.make ~name:"rand" ~blank:"_" ~start:"q0" transitions))

let test_random_tm_halting_transfers =
  QCheck.Test.make ~name:"random TMs: halting transfers through compilation"
    ~count:60
    (QCheck.make gen_random_tm)
    (fun tm ->
      match Turing.run ~max_steps:60 tm with
      | _, Turing.Running _ -> QCheck.assume_fail ()
      | _, Turing.Halted (Turing.Fell_off_left, _) ->
          (* left crashes also stop the worm (missing ♦5 rule) *)
          let t = Sim.creep ~max_steps:200_000 (Tm_compiler.oracle tm) in
          Sim.halted t
      | _, Turing.Halted (Turing.No_transition, _) ->
          let t = Sim.creep ~max_steps:200_000 (Tm_compiler.oracle tm) in
          Sim.halted t)

let test_random_tm_divergence_transfers =
  QCheck.Test.make ~name:"random TMs: divergence transfers through compilation"
    ~count:30
    (QCheck.make gen_random_tm)
    (fun tm ->
      (* a TM still running after many direct steps is (for this tiny
         state space) diverging; its worm must still be creeping *)
      match Turing.run ~max_steps:5_000 tm with
      | _, Turing.Running _ ->
          let t = Sim.creep ~max_steps:100_000 (Tm_compiler.oracle tm) in
          (not (Sim.halted t)) && t.Sim.cycles > 10
      | _ -> QCheck.assume_fail ())

(* Property: for random small step budgets, configurations reached by the
   compiled zigzag worm are always valid (Lemma 20 under compilation). *)
let test_compiled_validity_property =
  QCheck.Test.make ~name:"compiled worm configurations valid (Lemma 20)" ~count:20
    QCheck.(int_range 10 2000)
    (fun budget ->
      let t = Sim.creep ~max_steps:budget (Tm_compiler.oracle Zoo.tm_zigzag) in
      Config.is_valid (Sim.final_config t))

let () =
  Alcotest.run "rainworm"
    [
      ( "instructions",
        [
          Alcotest.test_case "all ♦-forms" `Quick test_forms;
          Alcotest.test_case "invalid form rejected" `Quick test_bad_instruction;
          Alcotest.test_case "partial function enforced" `Quick
            test_machine_partial_function;
        ] );
      ( "configurations",
        [
          Alcotest.test_case "initial valid" `Quick test_initial_config_valid;
          Alcotest.test_case "Definition 19 conditions" `Quick test_config_conditions;
          Alcotest.test_case "slime/worm split" `Quick test_slime_split;
        ] );
      ( "creeping",
        [
          Alcotest.test_case "eternal creeper creeps" `Quick test_eternal_creeper_runs;
          Alcotest.test_case "growth is linear" `Quick test_eternal_creeper_growth;
          Alcotest.test_case "Lemma 20 on reachable configs" `Quick
            test_creeper_configs_valid;
          Alcotest.test_case "Lemma 22(2): determinism" `Quick test_determinism;
          Alcotest.test_case "Thue view agrees" `Quick test_thue_agrees_with_sim;
          Alcotest.test_case "stillborn halts" `Quick test_stillborn_halts;
        ] );
      ( "turing",
        [
          Alcotest.test_case "direct interpreter" `Quick test_tm_direct;
          Alcotest.test_case "bouncer" `Quick test_tm_bouncer;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "halt-now compiles to halting worm" `Quick
            test_compiled_halt_now;
          Alcotest.test_case "write-k compiles to halting worm" `Quick
            test_compiled_write_k;
          Alcotest.test_case "right-forever compiles to eternal worm" `Quick
            test_compiled_diverges;
          Alcotest.test_case "zigzag compiles to eternal worm" `Quick
            test_compiled_zigzag_diverges;
          Alcotest.test_case "bouncer compiles to halting worm" `Quick
            test_compiled_bouncer_halts;
          Alcotest.test_case "tape equivalence at halt" `Quick test_tape_equivalence;
          Alcotest.test_case "materialize" `Quick test_materialize;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_compiled_validity_property;
            test_random_tm_halting_transfers;
            test_random_tm_divergence_transfers;
          ] );
    ]
