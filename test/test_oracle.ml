(* The oracle itself, and the bugs it exists to catch.

   Besides exercising the generator/auditor/differential-runner stack on
   clean code, the decisive test here re-introduces the pre-fix
   [Containment.fold_step] (the |image| + |constants| double-count) through
   the harness's [?fold] hook and checks that the audit run flags it — the
   harness must be able to catch the very regression this PR fixes. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let v = Term.var
let c = Term.cst
let e x y = Atom.app2 edge x y

(* --- the generator ------------------------------------------------------- *)

let test_prng_deterministic () =
  let draw () =
    let r = Oracle.Gen.case_rng ~seed:42 ~case:7 in
    List.init 16 (fun _ -> Oracle.Gen.int r 1000)
  in
  check "same (seed, case) gives the same stream" true (draw () = draw ());
  let other = Oracle.Gen.case_rng ~seed:42 ~case:8 in
  check "different case gives a different stream" true
    (draw () <> List.init 16 (fun _ -> Oracle.Gen.int other 1000))

let test_build_deterministic () =
  let r1 = Oracle.Gen.case_rng ~seed:3 ~case:0 in
  let r2 = Oracle.Gen.case_rng ~seed:3 ~case:0 in
  let i1 = Oracle.Gen.instance r1 and i2 = Oracle.Gen.instance r2 in
  check "same recipe" true (i1.Oracle.Gen.facts = i2.Oracle.Gen.facts);
  check "same realization" true
    (Structure.equal_sets (Oracle.Gen.build i1) (Oracle.Gen.build i2))

(* --- the auditor: it passes on honest structures, fails on corrupted
   recomputation inputs --------------------------------------------------- *)

let test_audit_clean_structure () =
  for case = 0 to 24 do
    let r = Oracle.Gen.case_rng ~seed:11 ~case in
    let d = Oracle.Gen.build (Oracle.Gen.instance r) in
    check_int
      (Printf.sprintf "no violations on generated structure %d" case)
      0
      (List.length (Oracle.Audit.structure d))
  done

let test_audit_clean_graph () =
  for case = 0 to 24 do
    let r = Oracle.Gen.case_rng ~seed:12 ~case in
    let g = Oracle.Gen.build_graph (Oracle.Gen.graph_case r) in
    check_int
      (Printf.sprintf "no violations on generated graph %d" case)
      0
      (List.length (Oracle.Audit.graph g))
  done

(* --- satellite fix: folding a variable onto a constant ------------------- *)

(* q() :- E(x,c), E(c,c) folds by x ↦ c; before the fix the fold was
   invisible because |image| + |constants| counted c's element twice. *)
let folding_query () =
  Cq.Query.make ~free:[] [ e (v "x") (c "c"); e (c "c") (c "c") ]

let test_fold_onto_constant () =
  let q = folding_query () in
  let core = Cq.Containment.core q in
  check_int "core folds down to the single constant loop" 1
    (List.length (Cq.Query.body core));
  check "core is equivalent to the input" true (Cq.Containment.equivalent q core);
  check "independent witness agrees the core is minimal" true
    (Option.is_none (Oracle.Audit.fold_witness core));
  check "and that the input was not" true
    (Option.is_some (Oracle.Audit.fold_witness q))

(* The pre-fix [fold_step], kept verbatim as the regression specimen:
   the image is counted as |image of variables| + |constants| (double
   counting any variable mapped onto a constant's element), and the
   rewrite knows only variable representatives. *)
let legacy_fold_step q =
  let canon, elem = Cq.Query.canonical q in
  let init =
    List.fold_left
      (fun acc x ->
        match elem x with Some e -> Term.Var_map.add x e acc | None -> acc)
      Term.Var_map.empty (Cq.Query.free q)
  in
  let n_elems = Structure.card canon in
  let n_csts = List.length (Structure.constants canon) in
  let result = ref None in
  (try
     Hom.iter_all ~init canon (Cq.Query.body q) (fun binding ->
         let image =
           Term.Var_map.fold
             (fun _ e acc -> if List.mem e acc then acc else e :: acc)
             binding []
         in
         if List.length image + n_csts < n_elems then begin
           result := Some binding;
           raise Exit
         end)
   with Exit -> ());
  match !result with
  | None -> None
  | Some binding ->
      let repr = Hashtbl.create 16 in
      Term.Var_map.iter
        (fun x e -> if not (Hashtbl.mem repr e) then Hashtbl.replace repr e x)
        binding;
      List.iter
        (fun x ->
          match Term.Var_map.find_opt x binding with
          | Some e -> Hashtbl.replace repr e x
          | None -> ())
        (Cq.Query.free q);
      let subst =
        Term.Var_map.mapi
          (fun x e ->
            match Hashtbl.find_opt repr e with
            | Some y -> Term.Var y
            | None -> Term.Var x)
          binding
      in
      let body =
        List.sort_uniq Atom.compare
          (List.map (Atom.substitute subst) (Cq.Query.body q))
      in
      Some (Cq.Query.make ~free:(Cq.Query.free q) body)

let test_legacy_fold_misses () =
  check "the legacy fold misses the var-onto-constant fold" true
    (Option.is_none (legacy_fold_step (folding_query ())));
  check "the fixed fold finds it" true
    (Option.is_some (Cq.Containment.fold_step (folding_query ())))

(* --- containment vs direct evaluation ------------------------------------ *)

let test_containment_fixtures () =
  let q_loop = Cq.Query.make ~free:[] [ e (v "x") (v "y"); e (v "y") (v "x") ] in
  let q_edge = Cq.Query.make ~free:[] [ e (v "x") (v "y") ] in
  check "2-loop ⊆ edge" true (Cq.Containment.contained_in q_loop q_edge);
  check "edge ⊄ 2-loop" false (Cq.Containment.contained_in q_edge q_loop)

let test_cq_checks_clean () =
  for case = 0 to 49 do
    let r = Oracle.Gen.case_rng ~seed:5 ~case in
    let inst = Oracle.Gen.instance r in
    let d = Oracle.Gen.build inst in
    match Oracle.Diff.cq_checks r inst.Oracle.Gen.signature d with
    | [] -> ()
    | vs -> Alcotest.failf "case %d: %s" case (String.concat "; " vs)
  done

(* --- the differential runner --------------------------------------------- *)

let test_engines_bit_identical () =
  for case = 0 to 39 do
    let r = Oracle.Gen.case_rng ~seed:9 ~case in
    let inst = Oracle.Gen.instance r in
    match Oracle.Diff.diff_tgd Oracle.Diff.default_budget inst with
    | [], runs, _ ->
        let st = List.nth runs 0 and sn = List.nth runs 1 in
        check
          (Printf.sprintf "case %d: equal structures, fresh ids included" case)
          true
          (Structure.delta_since st.Oracle.Diff.result 0
          = Structure.delta_since sn.Oracle.Diff.result 0)
    | vs, _, _ -> Alcotest.failf "case %d: %s" case (String.concat "; " vs)
  done

let test_find_violation_deterministic () =
  let d = Structure.create () in
  let a = Structure.fresh d and b = Structure.fresh d in
  Structure.add2 d edge a b;
  let sat =
    Tgd.Dep.make ~name:"sat" ~body:[ e (v "x") (v "y") ]
      ~head:[ e (v "x") (v "y") ] ()
  in
  let viol1 =
    Tgd.Dep.make ~name:"viol1" ~body:[ e (v "x") (v "y") ]
      ~head:[ e (v "y") (v "y") ] ()
  in
  let viol2 =
    Tgd.Dep.make ~name:"viol2" ~body:[ e (v "x") (v "y") ]
      ~head:[ e (v "y") (v "x") ] ()
  in
  let deps = [ sat; viol1; viol2 ] in
  check "not a model" false (Tgd.Chase.models deps d);
  (match Tgd.Chase.find_violation deps d with
  | Some (dep, fb) ->
      check "first violated dependency in list order" true
        (Tgd.Dep.name dep = "viol1");
      (* viol1's frontier is {y} — the only variable shared by body and
         head — so the witness binds just y *)
      ignore a;
      check "witness is the least active frontier binding" true
        (Term.Var_map.bindings fb = [ ("y", b) ])
  | None -> Alcotest.fail "no violation found");
  (* same answer when asked again: the probe has no hidden state *)
  (match Tgd.Chase.find_violation deps d with
  | Some (dep, _) -> check "deterministic" true (Tgd.Dep.name dep = "viol1")
  | None -> Alcotest.fail "no violation on the second probe");
  let stats = Tgd.Chase.run ~max_stages:8 deps d in
  check "fixpoint reached" true stats.Tgd.Chase.fixpoint;
  check "fixpoint is a model" true (Tgd.Chase.models deps d);
  check "no violation at the fixpoint" true
    (Option.is_none (Tgd.Chase.find_violation deps d))

let test_body_matches_dominate_considered () =
  for case = 0 to 19 do
    let r = Oracle.Gen.case_rng ~seed:21 ~case in
    let inst = Oracle.Gen.instance r in
    let run =
      Oracle.Diff.run_tgd Oracle.Diff.default_budget `Stage inst
    in
    check
      (Printf.sprintf "case %d: matches ≥ considered ≥ applications" case)
      true
      (run.Oracle.Diff.stats.Tgd.Chase.body_matches
       >= run.Oracle.Diff.stats.Tgd.Chase.triggers_considered
      && run.Oracle.Diff.stats.Tgd.Chase.triggers_considered
         >= run.Oracle.Diff.stats.Tgd.Chase.applications)
  done

(* --- the harness end to end ----------------------------------------------- *)

let test_harness_clean () =
  let report = Oracle.Diff.run_cases ~seed:42 ~cases:60 () in
  check_int "no violations on clean code" 0
    (List.length report.Oracle.Diff.violations);
  (* 5 TGD runs (stage, seminaive, oblivious, par, par+staged firing)
     plus 3 graph runs per case *)
  check_int "eight engine runs per case" (8 * 60)
    report.Oracle.Diff.engine_runs

let test_harness_catches_legacy_fold () =
  let report =
    Oracle.Diff.run_cases ~fold:legacy_fold_step ~seed:42 ~cases:200 ()
  in
  check "re-introducing the fold_step bug is caught" true
    (report.Oracle.Diff.violations <> [])

let () =
  Alcotest.run "oracle"
    [
      ( "gen",
        [
          Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
          Alcotest.test_case "build determinism" `Quick test_build_deterministic;
        ] );
      ( "audit",
        [
          Alcotest.test_case "structures" `Quick test_audit_clean_structure;
          Alcotest.test_case "graphs" `Quick test_audit_clean_graph;
        ] );
      ( "cores",
        [
          Alcotest.test_case "fold onto constant" `Quick test_fold_onto_constant;
          Alcotest.test_case "legacy fold misses it" `Quick
            test_legacy_fold_misses;
          Alcotest.test_case "containment fixtures" `Quick
            test_containment_fixtures;
          Alcotest.test_case "random cq cross-checks" `Quick test_cq_checks_clean;
        ] );
      ( "diff",
        [
          Alcotest.test_case "engines bit-identical" `Quick
            test_engines_bit_identical;
          Alcotest.test_case "find_violation deterministic" `Quick
            test_find_violation_deterministic;
          Alcotest.test_case "stat dominance" `Quick
            test_body_matches_dominate_considered;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean run" `Quick test_harness_clean;
          Alcotest.test_case "catches the fold_step regression" `Quick
            test_harness_catches_legacy_fold;
        ] );
    ]
