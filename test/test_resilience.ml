(* The resilience layer: governor semantics, failpoint determinism,
   checkpoint atomicity, and the run-until-k + resume ≡ uninterrupted
   contract on both the TGD chase (the E10 workload) and the graph chase
   (the grid(4,4) collision), plus the end-to-end fault campaign. *)

open Relational
module G = Resilience.Governor
module FP = Resilience.Failpoint
module CK = Resilience.Checkpoint

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let path_query k =
  let name i =
    if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i
  in
  Cq.Query.make ~free:[ "x"; "y" ]
    (List.init k (fun i -> e (name i) (name (i + 1))))

(* The E10 bench workload: T_Q for {p2, p3} chased from green(path 5). *)
let e10_deps () = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ]
let e10_seed () = fst (Tgd.Greenred.green_canonical (path_query 5))

(* --- governor ----------------------------------------------------------- *)

let test_governor_basics () =
  check "unlimited is unlimited" true (G.is_unlimited G.unlimited);
  check "made governor is not" false (G.is_unlimited (G.make ()));
  let g = G.make ~deadline:(Obs.Clock.now_s () -. 1.) () in
  check "deadline passed" true (G.deadline_passed g);
  check "interrupted = deadline" true (G.interrupted g = Some G.Deadline);
  let c = G.Cancel.create () in
  let g = G.make ~deadline:(Obs.Clock.now_s () -. 1.) ~cancel:c () in
  G.Cancel.trip c;
  check "cancellation wins over the deadline" true
    (G.interrupted g = Some G.Cancelled);
  G.Cancel.reset c;
  check "reset untrips" true (G.interrupted g = Some G.Deadline);
  let g = G.make ~max_elems:10 ~max_facts:100 () in
  check "within budget" true (G.over_budget g ~elems:10 ~facts:100 = None);
  check "element budget" true
    (G.over_budget g ~elems:11 ~facts:0 = Some (G.Budget G.Elems));
  check "fact budget" true
    (G.over_budget g ~elems:0 ~facts:101 = Some (G.Budget G.Facts))

let test_exit_codes () =
  check_int "fixpoint" 0 (G.exit_code G.Fixpoint);
  check_int "budget" 3 (G.exit_code (G.Budget G.Stages));
  check_int "deadline" 3 (G.exit_code G.Deadline);
  check_int "cancelled" 4 (G.exit_code G.Cancelled);
  check_int "faulted" 1 (G.exit_code (G.Faulted "arena.grow"))

let test_cancel_polling () =
  let c = G.Cancel.create () in
  G.Cancel.poll ();
  (* no-op when disarmed *)
  let raised =
    G.Cancel.with_polling c (fun () ->
        G.Cancel.poll ();
        (* not tripped yet: returns *)
        G.Cancel.trip c;
        try
          G.Cancel.poll ();
          false
        with G.Cancel.Cancelled -> true)
  in
  check "poll raised after trip" true raised;
  (* disarmed again outside the scope: polling a tripped token is a
     no-op (the dynamic extent ended) *)
  G.Cancel.poll ();
  (* the armed state is domain-local: another domain polling while this
     one holds a tripped token armed must NOT observe it *)
  G.Cancel.with_polling c (fun () ->
      let other =
        Domain.spawn (fun () ->
            try
              G.Cancel.poll ();
              true
            with G.Cancel.Cancelled -> false)
      in
      check "other domain unaffected by this domain's armed token" true
        (Domain.join other))

(* --- failpoints --------------------------------------------------------- *)

let schedule spec seed n =
  FP.configure_exn ~seed spec;
  let s = List.init n (fun _ -> FP.fire "par.shard") in
  FP.clear ();
  s

let test_failpoint_determinism () =
  let a = schedule "par.shard=0.5" 7 64 in
  let b = schedule "par.shard=0.5" 7 64 in
  let c = schedule "par.shard=0.5" 8 64 in
  check "same (seed, spec) replays the schedule" true (a = b);
  check "different seed, different schedule" false (a = c);
  check "some fired" true (List.mem true a);
  check "some did not" true (List.mem false a)

let test_failpoint_spec () =
  check "bad probability rejected" true
    (match FP.configure "par.shard=1.5" with Error _ -> true | Ok () -> false);
  check "garbage rejected" true
    (match FP.configure "par.shard=x" with Error _ -> true | Ok () -> false);
  FP.configure_exn "arena.grow";
  check "bare name fires always" true (FP.fire "arena.grow");
  check "unarmed site never fires" false (FP.fire "par.shard");
  check "armed" true (FP.active ());
  FP.clear ();
  check "cleared" false (FP.active ());
  check "cleared sites do not fire" false (FP.fire "arena.grow")

(* --- checkpoint files --------------------------------------------------- *)

(* Temp files are now unique per (pid, counter) — [path ^ ".tmp.<pid>.<n>"]
   — so leak checks scan for any sibling with the temp prefix instead of
   probing one fixed name. *)
let tmp_siblings path =
  let dir = Filename.dirname path and base = Filename.basename path in
  let prefix = base ^ ".tmp" in
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun f -> String.starts_with ~prefix f)

let with_tmp f =
  let path = Filename.temp_file "redspider-test" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun f ->
          try Sys.remove (Filename.concat (Filename.dirname path) f)
          with Sys_error _ -> ())
        (tmp_siblings path);
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_tmp (fun path ->
      let d = e10_seed () in
      let journal = Structure.delta_since d 0 in
      check "save ok" true (CK.save ~kind:"t" path d = Ok ());
      match (CK.load ~kind:"t" path : (Structure.t, string) result) with
      | Error m -> Alcotest.failf "load failed: %s" m
      | Ok d' ->
          check "facts survive" true (Structure.equal_sets d d');
          check "journal order survives" true
            (Structure.delta_since d' 0 = journal);
          check "kind mismatch is a clean error" true
            (match (CK.load ~kind:"u" path : (Structure.t, string) result) with
            | Error _ -> true
            | Ok _ -> false))

let test_checkpoint_truncation () =
  with_tmp (fun path ->
      check "save ok" true (CK.save ~kind:"t" path [ 1; 2; 3 ] = Ok ());
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full - 4)));
      check "truncated file is a clean error" true
        (match (CK.load ~kind:"t" path : (int list, string) result) with
        | Error _ -> true
        | Ok _ -> false))

let test_checkpoint_torn_write () =
  with_tmp (fun path ->
      check "first save ok" true (CK.save ~kind:"t" path [ 1; 2; 3 ] = Ok ());
      FP.configure_exn "checkpoint.write";
      let second = CK.save ~kind:"t" path [ 4; 5; 6 ] in
      FP.clear ();
      check "faulted save reports" true
        (match second with Error _ -> true | Ok () -> false);
      check "no temp file left behind" true (tmp_siblings path = []);
      check "previous checkpoint intact" true
        (CK.load ~kind:"t" path = Ok [ 1; 2; 3 ]))

(* A stale temp file from a crashed writer (or another process) must not
   break the next publish, and must not be mistaken for ours and
   deleted. *)
let test_checkpoint_stale_tmp () =
  with_tmp (fun path ->
      let stale = path ^ ".tmp.99999.0" in
      Out_channel.with_open_bin stale (fun oc ->
          Out_channel.output_string oc "garbage");
      check "save ok despite stale temp" true
        (CK.save ~kind:"t" path [ 7; 8 ] = Ok ());
      check "published value readable" true
        (CK.load ~kind:"t" path = Ok [ 7; 8 ]);
      check "stale temp untouched" true (Sys.file_exists stale))

(* The header's payload length is validated against the bytes actually
   present, so a corrupt length can neither over-allocate nor feed
   [Marshal] a short buffer. *)
let rewrite_length path f =
  let full = In_channel.with_open_bin path In_channel.input_all in
  let nl = String.index full '\n' in
  let header = String.sub full 0 nl in
  let payload = String.sub full (nl + 1) (String.length full - nl - 1) in
  let parts = String.split_on_char ' ' header in
  let n = List.nth parts (List.length parts - 1) in
  let forged = f (int_of_string n) (String.length payload) in
  let header' =
    String.concat " "
      (List.mapi
         (fun i p -> if i = List.length parts - 1 then forged else p)
         parts)
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (header' ^ "\n" ^ payload))

let test_checkpoint_bad_length () =
  with_tmp (fun path ->
      check "save ok" true (CK.save ~kind:"t" path [ 1; 2; 3 ] = Ok ());
      rewrite_length path (fun _ _ -> string_of_int max_int);
      check "oversized length is a clean error, not an allocation" true
        (match (CK.load ~kind:"t" path : (int list, string) result) with
        | Error _ -> true
        | Ok _ -> false);
      check "save again ok" true (CK.save ~kind:"t" path [ 1; 2; 3 ] = Ok ());
      rewrite_length path (fun _ _ -> "-1");
      check "negative length is a clean error" true
        (match (CK.load ~kind:"t" path : (int list, string) result) with
        | Error _ -> true
        | Ok _ -> false);
      check "save again ok" true (CK.save ~kind:"t" path [ 1; 2; 3 ] = Ok ());
      rewrite_length path (fun _ have -> string_of_int (have + 1));
      check "length past end-of-file is a clean error" true
        (match (CK.load ~kind:"t" path : (int list, string) result) with
        | Error _ -> true
        | Ok _ -> false))

(* Two domains saving to the same path concurrently: unique temp names
   mean neither torn output nor a stolen rename — the survivor is one of
   the two committed values, intact. *)
let test_checkpoint_concurrent_save () =
  with_tmp (fun path ->
      let save v () = CK.save ~kind:"t" path (List.init 2000 (fun i -> i * v)) in
      let other = Domain.spawn (save 3) in
      let mine = save 5 () in
      let theirs = Domain.join other in
      check "both saves succeed" true (mine = Ok () && theirs = Ok ());
      check "no temp files left behind" true (tmp_siblings path = []);
      match (CK.load ~kind:"t" path : (int list, string) result) with
      | Error m -> Alcotest.failf "load after concurrent save: %s" m
      | Ok l ->
          check "survivor is one committed value, not a mix" true
            (l = List.init 2000 (fun i -> i * 3)
            || l = List.init 2000 (fun i -> i * 5)))

(* --- governed chase ----------------------------------------------------- *)

let run_e10 ?governor ?on_fire ~max_stages engine =
  let d = e10_seed () in
  let stats = Tgd.Chase.run ~engine ?governor ?on_fire ~max_stages (e10_deps ()) d in
  (stats, d)

let test_governed_prefix () =
  let full_stats, full = run_e10 ~max_stages:6 `Seminaive in
  let g = G.make ~max_stages:3 () in
  let cut_stats, cut = run_e10 ~governor:g ~max_stages:6 `Seminaive in
  check "cut by the governor's stage fuel" true
    (cut_stats.Tgd.Chase.outcome = G.Budget G.Stages);
  check_int "exactly three stages" 3 cut_stats.Tgd.Chase.stages;
  let jf = Structure.delta_since full 0 in
  let jc = Structure.delta_since cut 0 in
  check "governed run is a journal prefix of the ungoverned one" true
    (List.length jc < List.length jf
    && jc = List.filteri (fun i _ -> i < List.length jc) jf);
  check "full run kept going" true
    (full_stats.Tgd.Chase.stages = 6)

let test_cancelled_before_start () =
  let c = G.Cancel.create () in
  G.Cancel.trip c;
  let g = G.make ~cancel:c () in
  let stats, _ = run_e10 ~governor:g ~max_stages:6 `Seminaive in
  check "tripped token cancels at the first boundary" true
    (stats.Tgd.Chase.outcome = G.Cancelled);
  check_int "no stage ran" 0 stats.Tgd.Chase.stages

let test_arena_fault_reported () =
  FP.configure_exn "arena.grow";
  let stats, _ = run_e10 ~max_stages:6 `Seminaive in
  FP.clear ();
  check "arena fault surfaces as the structured verdict" true
    (stats.Tgd.Chase.outcome = G.Faulted "arena.grow");
  check "fixpoint flag agrees" false stats.Tgd.Chase.fixpoint

let test_par_fault_bit_identical () =
  let baseline_stats, baseline = run_e10 ~max_stages:5 `Seminaive in
  FP.configure_exn ~seed:3 "par.shard=0.8";
  let par_stats, par = run_e10 ~max_stages:5 `Par in
  let injected = FP.injected_total () in
  FP.clear ();
  check "faults were actually injected" true (injected > 0);
  check "retry/degrade keeps the runs bit-identical" true
    (Structure.delta_since baseline 0 = Structure.delta_since par 0);
  check "stats agree" true
    (baseline_stats.Tgd.Chase.applications = par_stats.Tgd.Chase.applications
    && baseline_stats.Tgd.Chase.stages = par_stats.Tgd.Chase.stages
    && baseline_stats.Tgd.Chase.triggers_considered
       = par_stats.Tgd.Chase.triggers_considered
    && baseline_stats.Tgd.Chase.outcome = par_stats.Tgd.Chase.outcome)

(* --- run-until-k + resume ≡ uninterrupted ------------------------------- *)

let record () =
  let firings = ref [] in
  let on_fire ~stage dep fb =
    firings := (stage, Tgd.Dep.name dep, Term.Var_map.bindings fb) :: !firings
  in
  (firings, on_fire)

let test_e10_resume_bit_identical () =
  let full_fs, on_fire = record () in
  let full_stats, full = run_e10 ~on_fire ~max_stages:6 `Seminaive in
  List.iter
    (fun k ->
      let fs, on_fire = record () in
      let d = e10_seed () in
      let snap = ref None in
      let _ =
        Tgd.Chase.run ~engine:`Seminaive ~on_fire ~max_stages:k
          ~snapshot_every:1
          ~on_snapshot:(fun s -> snap := Some s)
          (e10_deps ()) d
      in
      let snap = CK.clone (Option.get !snap) in
      let stats, d' =
        Tgd.Chase.resume ~on_fire ~max_stages:6 (e10_deps ()) snap
      in
      check
        (Printf.sprintf "k=%d: journal identical after resume" k)
        true
        (Structure.delta_since d' 0 = Structure.delta_since full 0);
      check
        (Printf.sprintf "k=%d: firing sequence identical" k)
        true (!fs = !full_fs);
      check
        (Printf.sprintf "k=%d: stats identical" k)
        true
        (stats = full_stats))
    [ 1; 2; 3; 5 ]

let test_e10_resume_through_file () =
  let full_stats, full = run_e10 ~max_stages:6 `Seminaive in
  with_tmp (fun path ->
      let d = e10_seed () in
      let _ =
        Tgd.Chase.run ~engine:`Seminaive ~max_stages:3 ~snapshot_every:1
          ~on_snapshot:(fun s ->
            match CK.save ~kind:"tgd-chase" path s with
            | Ok () -> ()
            | Error m -> Alcotest.failf "checkpoint write failed: %s" m)
          (e10_deps ()) d
      in
      match
        (CK.load ~kind:"tgd-chase" path
          : (Tgd.Chase.snapshot, string) result)
      with
      | Error m -> Alcotest.failf "checkpoint load failed: %s" m
      | Ok snap ->
          let stats, d' = Tgd.Chase.resume ~max_stages:6 (e10_deps ()) snap in
          check "journal identical through the file" true
            (Structure.delta_since d' 0 = Structure.delta_since full 0);
          check "stats identical through the file" true (stats = full_stats))

let test_resume_rejects_other_deps () =
  let d = e10_seed () in
  let snap = ref None in
  let _ =
    Tgd.Chase.run ~engine:`Seminaive ~max_stages:2 ~snapshot_every:1
      ~on_snapshot:(fun s -> snap := Some s)
      (e10_deps ()) d
  in
  let other = Tgd.Dep.t_q [ ("p2", path_query 2) ] in
  check "resume with different deps raises" true
    (try
       ignore (Tgd.Chase.resume ~max_stages:6 other (Option.get !snap));
       false
     with Invalid_argument _ -> true)

let test_grid_resume_bit_identical () =
  let module R = Greengraph.Rule in
  let module GG = Greengraph.Graph in
  let chase ?on_snapshot ?from ~max_stages g =
    R.chase ~engine:`Seminaive ~max_stages ~stop:GG.has_12_pattern
      ?snapshot_every:(Option.map (fun _ -> 1) on_snapshot)
      ?on_snapshot ?from Separating.Tbox.rules g
  in
  let g_full, _, _ = Separating.Paths.collision ~t:4 ~t':4 in
  let full_stats = chase ~max_stages:64 g_full in
  check "grid(4,4) needs several stages" true (full_stats.R.stages >= 2);
  let k = full_stats.R.stages / 2 in
  let g_cut, _, _ = Separating.Paths.collision ~t:4 ~t':4 in
  let snap = ref None in
  let _ = chase ~on_snapshot:(fun s -> snap := Some s) ~max_stages:k g_cut in
  let snap = CK.clone (Option.get !snap) in
  let stats, g' = R.resume ~max_stages:64 ~stop:GG.has_12_pattern
      Separating.Tbox.rules snap
  in
  check "edge journal identical after resume" true
    (GG.delta_since g' 0 = GG.delta_since g_full 0);
  check "fresh vertices identical" true (GG.vertices g' = GG.vertices g_full);
  check "stats identical" true (stats = full_stats)

(* --- the campaign ------------------------------------------------------- *)

let test_campaign_clean () =
  let r = Oracle.Fault.run_campaign ~seed:11 ~cases:30 () in
  check_int "no silent corruption" 0 (List.length r.Oracle.Fault.corruptions);
  check "faults were injected" true (r.Oracle.Fault.injected > 0);
  check "some runs recovered bit-identically" true
    (r.Oracle.Fault.recovered > 0);
  check "checkpoint round-trips verified" true
    (r.Oracle.Fault.checkpoint_roundtrips > 0);
  check "torn writes observed and survived" true
    (r.Oracle.Fault.checkpoint_write_faults > 0)

let () =
  Alcotest.run "resilience"
    [
      ( "governor",
        [
          Alcotest.test_case "basics" `Quick test_governor_basics;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "cancel polling" `Quick test_cancel_polling;
        ] );
      ( "failpoints",
        [
          Alcotest.test_case "determinism" `Quick test_failpoint_determinism;
          Alcotest.test_case "spec parsing" `Quick test_failpoint_spec;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "truncation" `Quick test_checkpoint_truncation;
          Alcotest.test_case "torn write" `Quick test_checkpoint_torn_write;
          Alcotest.test_case "stale temp" `Quick test_checkpoint_stale_tmp;
          Alcotest.test_case "bad header length" `Quick
            test_checkpoint_bad_length;
          Alcotest.test_case "concurrent save" `Quick
            test_checkpoint_concurrent_save;
        ] );
      ( "governed chase",
        [
          Alcotest.test_case "prefix bit-identity" `Quick test_governed_prefix;
          Alcotest.test_case "cancelled before start" `Quick
            test_cancelled_before_start;
          Alcotest.test_case "arena fault reported" `Quick
            test_arena_fault_reported;
          Alcotest.test_case "par fault bit-identical" `Quick
            test_par_fault_bit_identical;
        ] );
      ( "resume",
        [
          Alcotest.test_case "E10 run-until-k" `Quick
            test_e10_resume_bit_identical;
          Alcotest.test_case "E10 through a file" `Quick
            test_e10_resume_through_file;
          Alcotest.test_case "deps signature check" `Quick
            test_resume_rejects_other_deps;
          Alcotest.test_case "grid(4,4)" `Quick test_grid_resume_bit_identical;
        ] );
      ( "campaign",
        [ Alcotest.test_case "30 cases, 0 corruptions" `Quick test_campaign_clean ] );
    ]
