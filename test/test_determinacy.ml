(* Tests for the determinacy solvers and the known (un)decidable cases
   cited in Section I: path-query instances of [A11]/[P11] and classic
   non-determined pairs. *)

open Relational

let check = Alcotest.(check bool)

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let path_query k =
  let name i = if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i in
  Cq.Query.make ~free:[ "x"; "y" ] (List.init k (fun i -> e (name i) (name (i + 1))))

let det inst = Determinacy.Solver.unrestricted ~max_stages:24 inst

let is_determined = function Determinacy.Solver.Determined _ -> true | _ -> false
let is_not_determined = function
  | Determinacy.Solver.Not_determined _ -> true
  | _ -> false

(* --- unrestricted semi-decision ---------------------------------------- *)

let test_identity () =
  let inst = Determinacy.Instance.make ~views:[ ("e", path_query 1) ] ~q0:(path_query 1) in
  check "E determines E" true (is_determined (det inst))

let test_composition () =
  (* P2 and P3 determine P5 = P2 ∘ P3 *)
  let inst =
    Determinacy.Instance.make
      ~views:[ ("p2", path_query 2); ("p3", path_query 3) ]
      ~q0:(path_query 5)
  in
  check "P2,P3 determine P5" true (is_determined (det inst))

let test_p2_does_not_determine_edge () =
  let inst = Determinacy.Instance.make ~views:[ ("p2", path_query 2) ] ~q0:(path_query 1) in
  check "P2 does not determine E" true (is_not_determined (det inst))

let test_p2_p3_do_not_determine_edge () =
  (* P2 and P3 do NOT determine E: a single-edge database and the empty
     database have identical (empty) views but different E.  The chase
     reaches its fixpoint without producing the red edge. *)
  let inst =
    Determinacy.Instance.make
      ~views:[ ("p2", path_query 2); ("p3", path_query 3) ]
      ~q0:(path_query 1)
  in
  check "P2,P3 do not determine E" true (is_not_determined (det inst))

let test_p3_alone_does_not_determine_p2 () =
  let inst = Determinacy.Instance.make ~views:[ ("p3", path_query 3) ] ~q0:(path_query 2) in
  check "P3 does not determine P2" true (is_not_determined (det inst))

let test_projection_not_determined () =
  (* the view ∃y E(x,y) (one free variable) does not determine E *)
  let proj = Cq.Query.make ~free:[ "x" ] [ e "x" "y" ] in
  let inst = Determinacy.Instance.make ~views:[ ("dom", proj) ] ~q0:(path_query 1) in
  check "projection loses E" true (is_not_determined (det inst))

let test_two_projections_vs_product () =
  (* R(x), S(y) as views; Q0(x,y) = R(x) ∧ S(y) is determined *)
  let r = Symbol.make "R" 1 and s = Symbol.make "S" 1 in
  let qr = Cq.Query.make ~free:[ "x" ] [ Atom.make r [ v "x" ] ] in
  let qs = Cq.Query.make ~free:[ "y" ] [ Atom.make s [ v "y" ] ] in
  let q0 =
    Cq.Query.make ~free:[ "x"; "y" ] [ Atom.make r [ v "x" ]; Atom.make s [ v "y" ] ]
  in
  let inst = Determinacy.Instance.make ~views:[ ("r", qr); ("s", qs) ] ~q0 in
  check "product determined" true (is_determined (det inst))

(* --- finite case --------------------------------------------------------- *)

let test_finite_follows_unrestricted () =
  (* unrestricted determinacy implies finite determinacy: the composition
     instance is settled by the chase certificate *)
  let inst =
    Determinacy.Instance.make
      ~views:[ ("p2", path_query 2); ("p3", path_query 3) ]
      ~q0:(path_query 5)
  in
  check "finite: determined" true
    (is_determined (Determinacy.Solver.finite inst))

let test_finite_counterexample_found () =
  let inst = Determinacy.Instance.make ~views:[ ("p2", path_query 2) ] ~q0:(path_query 1) in
  match Determinacy.Solver.finite ~max_stages:4 inst with
  | Determinacy.Solver.Not_determined d ->
      check "certified" true (Determinacy.Solver.certify_counterexample inst d)
  | Determinacy.Solver.Determined _ -> Alcotest.fail "should not be determined"
  | Determinacy.Solver.Unknown why -> Alcotest.failf "no counterexample: %s" why

let test_certify_rejects_bogus () =
  let inst = Determinacy.Instance.make ~views:[ ("e", path_query 1) ] ~q0:(path_query 1) in
  let d = Structure.create () in
  let a = Structure.fresh d and b = Structure.fresh d in
  Structure.add2 d (Symbol.green edge) a b;
  (* green edge without red: violates T_Q, so not a counterexample *)
  check "bogus rejected" false (Determinacy.Solver.certify_counterexample inst d)

(* --- EF games ------------------------------------------------------------ *)

let linear_order n =
  let s = Structure.create () in
  let lt = Symbol.make "<" 2 in
  let vs = Array.init n (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Structure.add2 s lt vs.(i) vs.(j)
    done
  done;
  s

let test_ef_equal_structures () =
  let a = linear_order 3 in
  check "L3 ≡ L3 (3 rounds)" true (Ef.Game.equivalent ~rounds:3 a (Structure.copy a))

let test_ef_linear_orders () =
  (* L_m ≡_k L_n iff m = n or m,n ≥ 2^k - 1: classic *)
  check "L1 vs L2 differ at 2 rounds" true
    (not (Ef.Game.equivalent ~rounds:2 (linear_order 1) (linear_order 2)));
  check "L1 vs L2 agree at 1 round" true
    (Ef.Game.equivalent ~rounds:1 (linear_order 1) (linear_order 2));
  check "L3 vs L4 agree at 2 rounds" true
    (Ef.Game.equivalent ~rounds:2 (linear_order 3) (linear_order 4));
  check "L3 vs L4 differ at 3 rounds" true
    (not (Ef.Game.equivalent ~rounds:3 (linear_order 3) (linear_order 4)))

let test_ef_cardinality () =
  (* pure sets: indistinguishable up to min cardinality rounds *)
  let set n =
    let s = Structure.create () in
    let p = Symbol.make "P" 1 in
    for _ = 1 to n do
      Structure.add s p [| Structure.fresh s |]
    done;
    s
  in
  check "3 vs 5 agree at 3" true (Ef.Game.equivalent ~rounds:3 (set 3) (set 5));
  check "3 vs 5 differ at 4" true (not (Ef.Game.equivalent ~rounds:4 (set 3) (set 5)))

let test_ef_constants_matter () =
  (* same shape, different constant placement: distinguishable without
     any rounds *)
  let mk at_start =
    let s = Structure.create () in
    let c = Structure.constant s "c" in
    let x = Structure.fresh s in
    if at_start then Structure.add2 s edge c x else Structure.add2 s edge x c;
    s
  in
  check "constants pebbled implicitly" true
    (not (Ef.Game.equivalent ~rounds:1 (mk true) (mk false)))

let test_distinguishing_rounds () =
  Alcotest.(check (option int))
    "L3 vs L4" (Some 3)
    (Ef.Game.distinguishing_rounds ~max_rounds:4 (linear_order 3) (linear_order 4));
  Alcotest.(check (option int))
    "L3 vs L3" None
    (Ef.Game.distinguishing_rounds ~max_rounds:3 (linear_order 3) (linear_order 3))

(* --- Theorem 2 ------------------------------------------------------------ *)

let test_theorem2_shape () =
  let t = Ef.Theorem2.q_infinity () in
  Alcotest.(check int) "9 queries" 9 (List.length t.Ef.Theorem2.queries);
  Alcotest.(check int) "s = 10" 10 (Spider.Ctx.s t.Ef.Theorem2.ctx)

let test_theorem2_q0_separates () =
  let t = Ef.Theorem2.q_infinity () in
  let d_y, d_n = Ef.Theorem2.d_pair t ~i:2 ~copies:1 in
  check "D_y ⊨ Q0" true (Cq.Eval.holds t.Ef.Theorem2.q0 d_y);
  check "D_n ⊭ Q0" false (Cq.Eval.holds t.Ef.Theorem2.q0 d_n)

let test_theorem2_views_indistinguishable () =
  let t = Ef.Theorem2.q_infinity () in
  let r = Ef.Theorem2.report ~max_rounds:1 t ~i:2 ~copies:1 in
  check "Q0 separates" true
    (r.Ef.Theorem2.q0_on_dy && not r.Ef.Theorem2.q0_on_dn);
  check "views 1-round indistinguishable" true
    (r.Ef.Theorem2.view_distinguishing_rounds = None)

let test_theorem2_views_2rounds () =
  let t = Ef.Theorem2.q_infinity () in
  let r = Ef.Theorem2.report ~max_rounds:2 t ~i:2 ~copies:1 in
  check "views 2-round indistinguishable" true
    (r.Ef.Theorem2.view_distinguishing_rounds = None)

(* --- cross-validation: game solver vs rank-l types -------------------------- *)

let test_types_agree_on_orders () =
  List.iter
    (fun (m, n, l) ->
      let a = linear_order m and b = linear_order n in
      Alcotest.(check bool)
        (Printf.sprintf "L%d vs L%d at rank %d" m n l)
        (Ef.Game.equivalent ~rounds:l a b)
        (Ef.Types.equivalent ~rank:l a b))
    [ (1, 2, 1); (1, 2, 2); (3, 4, 2); (3, 4, 3); (2, 2, 3); (4, 5, 2) ]

let test_types_agree_random_property =
  QCheck.Test.make ~name:"rank-l types ⟺ EF game (random digraphs)" ~count:25
    QCheck.(
      triple (int_range 1 2)
        (list_of_size (Gen.int_range 0 5) (pair (int_bound 3) (int_bound 3)))
        (list_of_size (Gen.int_range 0 5) (pair (int_bound 3) (int_bound 3))))
    (fun (l, ea, eb) ->
      let build edges =
        let s = Structure.create () in
        let vs = Array.init 4 (fun _ -> Structure.fresh s) in
        List.iter (fun (i, j) -> Structure.add2 s edge vs.(i) vs.(j)) edges;
        s
      in
      let a = build ea and b = build eb in
      Ef.Game.equivalent ~rounds:l a b = Ef.Types.equivalent ~rank:l a b)

let test_ef_symmetry_property =
  QCheck.Test.make ~name:"EF equivalence is symmetric" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (m, n) ->
      let a = linear_order m and b = linear_order n in
      Ef.Game.equivalent ~rounds:2 a b = Ef.Game.equivalent ~rounds:2 b a)

let test_ef_monotone_property =
  QCheck.Test.make ~name:"EF equivalence is antitone in rounds" ~count:20
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (m, n) ->
      let a = linear_order m and b = linear_order n in
      (* if equivalent at l, then equivalent at l-1 *)
      (not (Ef.Game.equivalent ~rounds:2 a b)) || Ef.Game.equivalent ~rounds:1 a b)

let () =
  Alcotest.run "determinacy-ef"
    [
      ( "unrestricted",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "composition" `Quick test_composition;
          Alcotest.test_case "P2 loses E" `Quick test_p2_does_not_determine_edge;
          Alcotest.test_case "P2,P3 do not determine E" `Quick
            test_p2_p3_do_not_determine_edge;
          Alcotest.test_case "P3 loses P2" `Quick test_p3_alone_does_not_determine_p2;
          Alcotest.test_case "projection loses E" `Quick test_projection_not_determined;
          Alcotest.test_case "product determined" `Quick test_two_projections_vs_product;
        ] );
      ( "finite",
        [
          Alcotest.test_case "follows unrestricted" `Quick test_finite_follows_unrestricted;
          Alcotest.test_case "counterexample search" `Quick test_finite_counterexample_found;
          Alcotest.test_case "certification" `Quick test_certify_rejects_bogus;
        ] );
      ( "ef-game",
        [
          Alcotest.test_case "reflexive" `Quick test_ef_equal_structures;
          Alcotest.test_case "linear orders" `Quick test_ef_linear_orders;
          Alcotest.test_case "cardinality" `Quick test_ef_cardinality;
          Alcotest.test_case "constants" `Quick test_ef_constants_matter;
          Alcotest.test_case "distinguishing rounds" `Quick test_distinguishing_rounds;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "Q∞ shape" `Quick test_theorem2_shape;
          Alcotest.test_case "Q0 separates D_y/D_n" `Quick test_theorem2_q0_separates;
          Alcotest.test_case "views 1-round indistinguishable" `Quick
            test_theorem2_views_indistinguishable;
          Alcotest.test_case "views 2-round indistinguishable" `Slow
            test_theorem2_views_2rounds;
        ] );
      ( "rank-types",
        [ Alcotest.test_case "agree with the game on orders" `Quick
            test_types_agree_on_orders ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_ef_symmetry_property; test_ef_monotone_property;
            test_types_agree_random_property;
          ] );
    ]
