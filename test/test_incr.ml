(* Incremental view maintenance: after every edit script the maintained
   structure must be a universal model of the edited base — hom-equivalent
   (base elements pinned) to a from-scratch chase of the same base, with
   [models] true and the internal support audit clean.  Exercised on hand
   cases, the standing workloads (Tinf, E10, the grid collision) and a
   seeded oracle campaign of random edit scripts, for both delta engines,
   including retractions that kill and re-derive through nulls. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let gedge = Symbol.green edge
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let path_query k =
  let name i =
    if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i
  in
  Cq.Query.make ~free:[ "x"; "y" ]
    (List.init k (fun i -> e (name i) (name (i + 1))))

(* --- harness ------------------------------------------------------------ *)

(* Hom-equivalence with the elements of the pristine base pinned: the
   maintained structure and the from-scratch chase share base element
   ids, so a universal-model check may (and must) hold base points
   fixed. *)
let equiv ~base a b =
  let init =
    List.filter_map
      (fun el ->
        if Structure.elem_stage a el <> None && Structure.elem_stage b el <> None
        then Some (el, el)
        else None)
      (Structure.elems base)
  in
  Hom.exists_between ~init a b && Hom.exists_between ~init b a

(* From-scratch baseline: the ops applied directly to a copy of the
   pristine base, then chased with the same engine. *)
let scratch ~engine deps base ops =
  let d = Structure.copy base in
  List.iter
    (function
      | Tgd.Chase.Maint.Insert f -> ignore (Structure.add_fact d f)
      | Tgd.Chase.Maint.Retract f -> ignore (Structure.retract_fact d f))
    ops;
  ignore (Tgd.Chase.run ~engine:(engine :> Tgd.Chase.engine) deps d);
  d

let check_edit ?(msg = "edit") ~engine deps base scripts =
  let m, _ = Tgd.Chase.Maint.create ~engine deps (Structure.copy base) in
  List.iteri
    (fun i ops ->
      let _ = Tgd.Chase.Maint.apply_edit m ops in
      let d = Tgd.Chase.Maint.structure m in
      let s =
        scratch ~engine deps base
          (List.concat (List.filteri (fun j _ -> j <= i) scripts))
      in
      let tag = Printf.sprintf "%s #%d" msg i in
      Alcotest.(check (list string)) (tag ^ ": audit") []
        (Tgd.Chase.Maint.check m);
      check (tag ^ ": models") true (Tgd.Chase.models deps d);
      check (tag ^ ": hom-equivalent to scratch") true (equiv ~base d s))
    scripts

(* --- hand cases: the path view ------------------------------------------ *)

let deps2 = Tgd.Dep.t_q [ ("p2", path_query 2) ]

(* A green n-path with [spare] extra base elements pre-allocated for
   later insertions — allocating them up front keeps their ids clear of
   the chase's nulls on both the maintained and the scratch side.  Note
   T_q on cycles diverges (each round's nulls extend new paths), so the
   scripts below only ever extend or cut paths. *)
let path_base ?(spare = 0) n =
  let d = Structure.create () in
  let vs = Array.init (n + 1 + spare) (fun _ -> Structure.fresh d) in
  for i = 0 to n - 1 do
    Structure.add2 d gedge vs.(i) vs.(i + 1)
  done;
  (d, vs)

let test_insert_only engine () =
  let base, vs = path_base ~spare:2 3 in
  check_edit ~msg:"extend the path" ~engine deps2 base
    [
      [ Insert (Fact.make gedge [| vs.(3); vs.(4) |]) ];
      [ Insert (Fact.make gedge [| vs.(4); vs.(5) |]) ];
    ]

let test_retract_only engine () =
  let base, vs = path_base 4 in
  check_edit ~msg:"cut the path" ~engine deps2 base
    [
      [ Retract (Fact.make gedge [| vs.(1); vs.(2) |]) ];
      [ Retract (Fact.make gedge [| vs.(0); vs.(1) |]) ];
    ]

let test_mixed engine () =
  let base, vs = path_base ~spare:1 4 in
  check_edit ~msg:"mixed script" ~engine deps2 base
    [
      [
        Retract (Fact.make gedge [| vs.(2); vs.(3) |]);
        Insert (Fact.make gedge [| vs.(4); vs.(5) |]);
      ];
      (* resurrection: retract then re-insert in a later script *)
      [ Insert (Fact.make gedge [| vs.(2); vs.(3) |]) ];
    ]

(* Retraction through nulls: on a green 5-path, T_q({p2}) fires red
   2-paths through fresh nulls, and the red pairs re-derive green edges
   through further nulls.  Cutting a middle base edge must kill the
   derived spines hanging off it — a cascade through two layers of
   nulls — and leave exactly a universal model of the two remaining
   sub-paths. *)
let test_retract_through_nulls engine () =
  let base, vs = path_base 5 in
  let m, s0 = Tgd.Chase.Maint.create ~engine deps2 (Structure.copy base) in
  check "initial chase reached fixpoint" true s0.fixpoint;
  check "chase derived through nulls" true
    (Structure.size (Tgd.Chase.Maint.structure m) > 5);
  let cut = Fact.make gedge [| vs.(2); vs.(3) |] in
  let st = Tgd.Chase.Maint.apply_edit m [ Retract cut ] in
  check "cascade killed derived facts" true (st.e_killed >= 1);
  Alcotest.(check (list string)) "audit clean" []
    (Tgd.Chase.Maint.check m);
  let d = Tgd.Chase.Maint.structure m in
  check "models after the cut" true (Tgd.Chase.models deps2 d);
  let s = scratch ~engine deps2 base [ Retract cut ] in
  check "equivalent to scratch" true (equiv ~base d s)

(* --- maintained views: certain answers bit-identical ---------------------- *)

(* The view level is where bit-identity genuinely holds: certain answers
   are tuples over base elements, immune to null renaming. *)
let test_mview engine () =
  (* views = {p2} only: T_{p2,p3} diverges (p2's nulls build 2-paths
     that p3 extends, and so on), while T_{p2} fixpoints on paths.  The
     certain answers of q0 = p4 are still non-trivial — they need red
     4-paths composed across two chase nulls. *)
  let inst =
    Determinacy.Instance.make ~views:[ ("p2", path_query 2) ] ~q0:(path_query 4)
  in
  let base = Structure.create () in
  let vs = Array.init 7 (fun _ -> Structure.fresh base) in
  for i = 0 to 4 do
    Structure.add2 base edge vs.(i) vs.(i + 1)
  done;
  let mv, s0 = Determinacy.Mview.create ~engine inst base in
  check "initial chase reached fixpoint" true s0.fixpoint;
  let scratch_answers ops =
    let d = Structure.copy base in
    List.iter
      (function
        | Determinacy.Mview.Insert f -> ignore (Structure.add_fact d f)
        | Determinacy.Mview.Retract f -> ignore (Structure.retract_fact d f))
      ops;
    let mv', _ = Determinacy.Mview.create ~engine inst d in
    Determinacy.Mview.certain_answers_q0 mv'
  in
  let scripts =
    [
      [ Determinacy.Mview.Insert (Fact.make edge [| vs.(5); vs.(6) |]) ];
      [ Determinacy.Mview.Retract (Fact.make edge [| vs.(2); vs.(3) |]) ];
      [ Determinacy.Mview.Insert (Fact.make edge [| vs.(2); vs.(3) |]) ];
    ]
  in
  let applied = ref [] in
  List.iteri
    (fun i ops ->
      let _ = Determinacy.Mview.apply_edit mv ops in
      applied := !applied @ ops;
      let got = Determinacy.Mview.certain_answers_q0 mv in
      let want = scratch_answers !applied in
      check
        (Printf.sprintf "certain answers bit-identical after edit #%d" i)
        true
        (Cq.Eval.Tuple_set.equal got want);
      Alcotest.(check (list string))
        (Printf.sprintf "audit clean after edit #%d" i)
        []
        (Tgd.Chase.Maint.check (Determinacy.Mview.maint mv)))
    scripts;
  (* the q0 = p4 answers over the final 6-path: exactly (v_i, v_{i+4}) *)
  let final = Determinacy.Mview.certain_answers_q0 mv in
  check_int "expected answer count" 3 (Cq.Eval.Tuple_set.cardinal final)

(* --- graph mirror ------------------------------------------------------- *)

module G = Greengraph.Graph
module R = Greengraph.Rule
module L = Greengraph.Label

let graph_equiv ~base a b =
  let init = List.map (fun v -> (v, v)) (G.vertices base) in
  let sa = Greengraph.Bridge.to_structure a
  and sb = Greengraph.Bridge.to_structure b in
  let init =
    List.filter
      (fun (v, _) ->
        Structure.elem_stage sa v <> None && Structure.elem_stage sb v <> None)
      init
  in
  Hom.exists_between ~init sa sb && Hom.exists_between ~init sb sa

let graph_scratch ~engine rules base ops =
  let g = G.copy base in
  List.iter
    (function
      | R.Maint.Insert (l, s, d) -> ignore (G.add_edge g l s d)
      | R.Maint.Retract (l, s, d) -> ignore (G.remove_edge g l s d))
    ops;
  ignore (R.chase ~engine rules g);
  g

let check_graph_edit ?(msg = "gedit") ~engine rules base scripts =
  let m, _ = R.Maint.create rules (G.copy base) in
  List.iteri
    (fun i ops ->
      let _ = R.Maint.apply_edit m ops in
      let g = R.Maint.graph m in
      let s =
        graph_scratch ~engine rules base
          (List.concat (List.filteri (fun j _ -> j <= i) scripts))
      in
      let tag = Printf.sprintf "%s #%d" msg i in
      Alcotest.(check (list string)) (tag ^ ": audit") [] (R.Maint.check m);
      check (tag ^ ": models") true (R.models rules g);
      check (tag ^ ": hom-equivalent to scratch") true
        (graph_equiv ~base g s))
    scripts

let test_graph_edits engine () =
  let base, a, b = G.d_i () in
  let x = G.fresh base in
  ignore (G.add_edge base (L.l 1) a x);
  let rules =
    [ R.amp (L.empty, L.empty) (L.l 1, L.l 2); R.amp (L.l 1, L.l 1) (L.l 5, L.l 5) ]
  in
  check_graph_edit ~msg:"graph edits" ~engine rules base
    [
      [ R.Maint.Insert (L.l 1, b, x) ];
      [ R.Maint.Retract (L.empty, a, b) ];
      [ R.Maint.Insert (L.empty, a, b) ];
    ]

let test_graph_retract_through_fresh engine () =
  let base, a, b = G.d_i () in
  let rules = [ R.amp (L.empty, L.empty) (L.l 1, L.l 2) ] in
  let m, s0 = R.Maint.create rules (G.copy base) in
  check "initial chase fired" true (s0.R.applications >= 1);
  let st = R.Maint.apply_edit m [ R.Maint.Retract (L.empty, a, b) ] in
  check "cascade killed product edges" true (st.R.Maint.e_killed >= 2);
  check_int "graph back to empty base" 0 (G.size (R.Maint.graph m));
  Alcotest.(check (list string)) "audit clean" [] (R.Maint.check m);
  let s = graph_scratch ~engine rules base [ R.Maint.Retract (L.empty, a, b) ] in
  check "equivalent to scratch" true (graph_equiv ~base (R.Maint.graph m) s)

(* --- the standing workloads --------------------------------------------- *)

(* E10: T_q over the green canonical 5-path.  The full E10 view set
   {p2, p3} diverges (each view's nulls feed the other's body), so the
   maintained twin runs its terminating restriction {p2} — the same
   seed, the same machinery, a genuine fixpoint to maintain. *)
let test_e10_workload engine () =
  let base = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  let spare = Structure.fresh base in
  let greens =
    List.sort Fact.compare (Structure.facts_with_sym base gedge)
  in
  let mid = List.nth greens (List.length greens / 2) in
  let last = List.nth greens (List.length greens - 1) in
  let tail = (Fact.args last).(1) in
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2) ] in
  check_edit ~msg:"E10" ~engine deps base
    [
      [ Tgd.Chase.Maint.Retract mid ];
      [ Tgd.Chase.Maint.Insert mid ];
      [ Tgd.Chase.Maint.Insert (Fact.make gedge [| tail; spare |]) ];
    ]

(* The grid collision workloads: T□ over the fold of two αβ-paths
   (Theorem 14's finite-leads mechanism).  Cutting a fold edge tears the
   grid hanging off it; restoring it regrows an equivalent one.  The
   cut+regrow hom check is exponential in the regrown grid's fresh
   vertices, so the full cycle is certified at (3,3) (542 edges) while
   (4,4) (998 edges, 18 stages) gets a fully-checked cut plus invariant
   checks on the regrow. *)
let first_edge g =
  let e = List.hd (G.edges g) in
  let lab = match e.G.label with Some i -> L.l i | None -> L.empty in
  (lab, e.G.src, e.G.dst)

let test_grid33_workload engine () =
  let base, _, _ = Separating.Paths.collision ~t:3 ~t':3 in
  let l, s, d = first_edge base in
  check_graph_edit ~msg:"grid(3,3)" ~engine Separating.Tbox.rules base
    [ [ R.Maint.Retract (l, s, d) ]; [ R.Maint.Insert (l, s, d) ] ]

let test_grid44_workload engine () =
  let base, _, _ = Separating.Paths.collision ~t:4 ~t':4 in
  let rules = Separating.Tbox.rules in
  let l, s, d = first_edge base in
  let m, s0 = R.Maint.create rules (G.copy base) in
  check "initial chase reached fixpoint" true s0.R.fixpoint;
  (* the cut, fully checked *)
  let st = R.Maint.apply_edit m [ R.Maint.Retract (l, s, d) ] in
  check "cut tore grid off the fold edge" true (st.R.Maint.e_killed >= 50);
  Alcotest.(check (list string)) "audit after cut" [] (R.Maint.check m);
  let scr = graph_scratch ~engine rules base [ R.Maint.Retract (l, s, d) ] in
  check "cut models" true (R.models rules (R.Maint.graph m));
  check "cut equivalent to scratch" true
    (graph_equiv ~base (R.Maint.graph m) scr);
  (* the regrow: size, pattern and audit against a fresh chase *)
  let st2 = R.Maint.apply_edit m [ R.Maint.Insert (l, s, d) ] in
  check "regrow reached fixpoint" true st2.R.Maint.e_run.R.fixpoint;
  Alcotest.(check (list string)) "audit after regrow" [] (R.Maint.check m);
  let g = R.Maint.graph m in
  let scr2 = graph_scratch ~engine rules base [] in
  check "regrow models" true (R.models rules g);
  check_int "regrown grid size" (G.size scr2) (G.size g);
  check "regrown 1-2 pattern agrees" (G.has_12_pattern scr2)
    (G.has_12_pattern g)

(* E1: chase(T∞, D_I) has no fixpoint — Figure 1's point — so its
   incremental property is the continuation: a capped maintained run
   resumed with [continue_] must be bit-identical (same edges, same
   ids) to a single longer capped run, stage for stage. *)
let test_e1_continuation () =
  let g, _, _ = G.d_i () in
  let m, s0 = R.Maint.create ~max_stages:6 Separating.Tinf.rules g in
  check "capped run is pending" true
    ((not s0.R.fixpoint) && R.Maint.pending m);
  let s1 = R.Maint.continue_ ~max_stages:6 m in
  check "still short of fixpoint" false s1.R.fixpoint;
  let scratch, _, _, s2 = Separating.Tinf.chase ~stages:12 () in
  check_int "same stage count" s2.R.stages s1.R.stages;
  let edges g =
    List.sort compare
      (List.map (fun (e : G.edge) -> (e.G.label, e.G.src, e.G.dst)) (G.edges g))
  in
  check "bit-identical to the 12-stage run" true
    (edges (R.Maint.graph m) = edges scratch)

(* --- the oracle campaign ------------------------------------------------- *)

(* ≥200 seeded edit scripts across random TGD and graph instances, both
   engines, zero violations (ISSUE 8's acceptance bar). *)
let test_oracle_campaign () =
  let r = Oracle.Incr.run_cases ~seed:42 ~cases:60 () in
  check "campaign diffed at least 200 scripts" true (r.Oracle.Incr.scripts >= 200);
  List.iter
    (fun (case, vs) ->
      List.iter (fun v -> Alcotest.failf "case %d: %s" case v) vs)
    r.Oracle.Incr.violations

(* --- suite -------------------------------------------------------------- *)

let engines = [ ("seminaive", `Seminaive); ("par", `Par) ]

let per_engine mk =
  List.map (fun (nm, eng) -> (nm, mk eng)) engines

let cases name mk =
  List.map
    (fun (nm, t) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name nm) `Quick t)
    (per_engine mk)

let () =
  Alcotest.run "incr"
    [
      ( "tgd",
        cases "insert only" test_insert_only
        @ cases "retract only" test_retract_only
        @ cases "mixed" test_mixed
        @ cases "retract through nulls" test_retract_through_nulls );
      ("mview", cases "certain answers" test_mview);
      ( "graph",
        cases "graph edits" test_graph_edits
        @ cases "retract through fresh" test_graph_retract_through_fresh );
      ( "workloads",
        cases "E10" test_e10_workload
        @ cases "grid(3,3)" test_grid33_workload
        @ cases "grid(4,4)" test_grid44_workload
        @ [ Alcotest.test_case "E1 continuation" `Quick test_e1_continuation ] );
      ( "oracle",
        [ Alcotest.test_case "campaign: 200 scripts, 0 violations" `Quick
            test_oracle_campaign ] );
    ]
