(* End-to-end integration across the abstraction ladder (Lemma 12):

   the Level-0 chase of T_Q, Q = Compile(Precompile(T∞)), starting from a
   real full green spider, decompiles stage by stage to exactly the swarm
   the dedicated Level-1 chase of Precompile(T∞) builds — and that swarm's
   green-graph part matches the Level-2 chase of T∞. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let swarm_labels g =
  List.map
    (fun (e : Swarm.Graph.edge) -> Spider.Ideal.code e.Swarm.Graph.label)
    (Swarm.Graph.edges g)
  |> List.sort compare

let green_labels g =
  List.filter_map
    (fun (e : Greengraph.Graph.edge) -> e.Greengraph.Graph.label)
    (Greengraph.Graph.edges g)
  |> List.sort compare

let level0_swarm stages =
  let p = Greengraph.Precompile.to_level0 Separating.Tinf.rules in
  let ctx = p.Greengraph.Precompile.ctx in
  let st = Relational.Structure.create () in
  let a = Relational.Structure.fresh ~name:"a" st in
  let b = Relational.Structure.fresh ~name:"b" st in
  ignore (Spider.Real.realize ctx st ~tail:a ~antenna:b Spider.Ideal.full_green);
  let _ = Tgd.Chase.run ~max_stages:stages p.Greengraph.Precompile.tgds st in
  (Swarm.Compile.decompile ctx st, p)

let level1_swarm stages =
  let p = Greengraph.Precompile.to_level0 Separating.Tinf.rules in
  let sw, _, _ = Swarm.Graph.seed () in
  let _ =
    Swarm.Rule.chase ~max_stages:stages p.Greengraph.Precompile.swarm_rules sw
  in
  sw

let test_level0_equals_level1 () =
  List.iter
    (fun stages ->
      let sw0, _ = level0_swarm stages in
      let sw1 = level1_swarm stages in
      check
        (Printf.sprintf "stage %d: same swarm labels" stages)
        true
        (swarm_labels sw0 = swarm_labels sw1);
      check_int
        (Printf.sprintf "stage %d: same vertex count" stages)
        (Swarm.Graph.order sw1) (Swarm.Graph.order sw0))
    [ 1; 2; 4; 6; 8 ]

let test_level1_green_part_matches_level2 () =
  (* the green upper-only edges of the Level-1 chase are exactly the
     Level-2 chase of T∞ — modulo the red by-products of Remark 10 *)
  let stages = 8 in
  let sw1 = level1_swarm stages in
  let gg_from_swarm = Greengraph.Graph.of_swarm sw1 in
  let gg2, _, _ = Greengraph.Graph.d_i () in
  let _ = Greengraph.Rule.chase ~max_stages:stages Separating.Tinf.rules gg2 in
  (* every Level-2 label multiset is contained in the swarm's green part:
     the swarm needs two stages per green-graph stage (Remark 10), so
     compare against a deeper swarm *)
  let sw_deep = level1_swarm (2 * stages) in
  let deep_green = green_labels (Greengraph.Graph.of_swarm sw_deep) in
  let l2 = green_labels gg2 in
  let rec multiset_sub small big =
    match small, big with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys ->
        if x = y then multiset_sub xs ys
        else if y < x then multiset_sub small ys
        else false
  in
  check "Level-2 labels ⊆ deep Level-1 green part" true
    (multiset_sub l2 deep_green);
  ignore gg_from_swarm

let test_level0_spider_census () =
  (* the spiders of chase_8 are exactly those of Section IX's analysis:
     green I, Iα, Iη0, Iη1, Iβ0, Iβ1 and red H with lower 5..10 families *)
  let sw0, _ = level0_swarm 8 in
  let labels = swarm_labels sw0 in
  let greens = List.filter (fun c -> c.[0] = 'G') labels in
  let reds = List.filter (fun c -> c.[0] = 'R') labels in
  check "green seed present" true (List.mem "Go_o" greens);
  check "green α-edge present" true (List.mem "G6_o" greens);
  check "some red edges" true (List.length reds > 10);
  (* the full red spider never appears: T∞ does not lead to it *)
  check "no full red spider" false (List.mem "Ro_o" reds)

let test_decompile_stable_under_more_stages () =
  (* decompilation is deterministic and monotone in stages *)
  let sw4, _ = level0_swarm 4 in
  let sw6, _ = level0_swarm 6 in
  let rec multiset_sub small big =
    match small, big with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys ->
        if x = y then multiset_sub xs ys
        else if y < x then multiset_sub small ys
        else false
  in
  check "monotone growth" true (multiset_sub (swarm_labels sw4) (swarm_labels sw6))

let () =
  Alcotest.run "endtoend"
    [
      ( "lemma12",
        [
          Alcotest.test_case "Level 0 chase = Level 1 chase (decompiled)" `Quick
            test_level0_equals_level1;
          Alcotest.test_case "Level 1 green part ⊇ Level 2 chase" `Quick
            test_level1_green_part_matches_level2;
          Alcotest.test_case "spider census of chase_8" `Quick
            test_level0_spider_census;
          Alcotest.test_case "decompile monotone" `Quick
            test_decompile_stable_under_more_stages;
        ] );
    ]
