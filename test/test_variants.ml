(* Tests for the chase variants (lazy vs semi-oblivious), the §IX.A
   one-atom-difference observation, and the binary-counter stress
   machine. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

(* --- lazy vs semi-oblivious chase ---------------------------------------- *)

let test_oblivious_ignores_satisfaction () =
  (* on a 2-cycle, the lazy chase of E(x,y) ⇒ ∃z E(y,z) is inert, the
     semi-oblivious one fires once per frontier tuple *)
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let mk () =
    let s = Structure.create () in
    let a = Structure.fresh s and b = Structure.fresh s in
    Structure.add2 s edge a b;
    Structure.add2 s edge b a;
    s
  in
  let lazy_s = mk () in
  let st1 = Tgd.Chase.run [ dep ] lazy_s in
  check "lazy: fixpoint, inert" true (st1.Tgd.Chase.fixpoint && Structure.size lazy_s = 2);
  let obl_s = mk () in
  let st2 = Tgd.Chase.run_oblivious ~max_stages:1 [ dep ] obl_s in
  check_int "oblivious: two firings" 2 st2.Tgd.Chase.applications;
  check_int "oblivious: grew" 4 (Structure.size obl_s)

let test_oblivious_fires_once_per_trigger () =
  (* across stages a trigger never refires *)
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let st = Tgd.Chase.run_oblivious ~max_stages:4 [ dep ] s in
  (* stage 1 fires y=b; stage 2 fires y=fresh1; ... one per stage *)
  check_int "one firing per stage" 4 st.Tgd.Chase.applications;
  check_int "grew linearly" 5 (Structure.size s)

let test_oblivious_agrees_on_verdict () =
  (* determinacy verdicts agree when the lazy chase converges: the
     oblivious chase is a superset, so red(Q0) still appears *)
  let p2 = Cq.Query.make ~free:[ "x"; "y" ] [ e "x" "m"; e "m" "y" ] in
  let p3 = Cq.Query.make ~free:[ "x"; "y" ] [ e "x" "m"; e "m" "n"; e "n" "y" ] in
  let p5 =
    Cq.Query.make ~free:[ "x"; "y" ]
      [ e "x" "a"; e "a" "b"; e "b" "c"; e "c" "d"; e "d" "y" ]
  in
  let queries = [ ("p2", p2); ("p3", p3) ] in
  let d, tuple = Tgd.Greenred.green_canonical p5 in
  let red_p5 = Cq.Query.paint Symbol.Red p5 in
  let found d = Cq.Eval.holds_at red_p5 d tuple in
  let _ = Tgd.Chase.run_oblivious ~max_stages:4 ~stop:found (Tgd.Dep.t_q queries) d in
  check "oblivious chase also certifies determinacy" true (found d)

(* --- §IX.A: the one-atom difference --------------------------------------- *)

let test_attempt1_one_atom () =
  let t = Ef.Theorem2.q_infinity () in
  List.iter
    (fun i ->
      let _, _, diff = Ef.Theorem2.attempt1 t i in
      check_int (Printf.sprintf "chase_%d views differ by one atom" i) 1 diff)
    [ 1; 2; 3; 4; 5 ]

(* --- the binary counter stress machine ------------------------------------- *)

let test_binary_counter_direct () =
  (* after enough steps the tape holds w then a binary number *)
  let tm = Rainworm.Zoo.tm_binary_counter in
  check "diverges" false (Rainworm.Turing.halts ~max_steps:2_000 tm);
  let _, outcome = Rainworm.Turing.run ~max_steps:2_000 tm in
  match outcome with
  | Rainworm.Turing.Running c ->
      let tape = Rainworm.Turing.tape_list tm c in
      check "wall first" true (List.hd tape = "w");
      check "binary digits" true
        (List.for_all (fun x -> x = "0" || x = "1" || x = "_" || x = "w") tape)
  | Rainworm.Turing.Halted _ -> Alcotest.fail "must diverge"

let test_binary_counter_compiled () =
  let t =
    Rainworm.Sim.creep ~max_steps:60_000 ~validate:true
      (Rainworm.Tm_compiler.oracle Rainworm.Zoo.tm_binary_counter)
  in
  check "worm creeps" false (Rainworm.Sim.halted t);
  check "many cycles" true (t.Rainworm.Sim.cycles > 50);
  (* the simulated tape inside the worm is consistent: decode and check
     the digits *)
  let tape = Rainworm.Tm_compiler.decode_tape (Rainworm.Sim.final_config t) in
  check "decoded tape nonempty" true (List.length tape > 3);
  check "decoded symbols are digits"
    true
    (List.for_all
       (fun (sym, _) -> List.mem sym [ "0"; "1"; "_"; "w" ])
       tape)

let test_binary_counter_lockstep () =
  (* run TM directly for the number of simulated steps the worm performed
     and compare the tape digit strings at a cycle boundary *)
  let tm = Rainworm.Zoo.tm_binary_counter in
  let worm =
    Rainworm.Sim.creep ~max_cycles:40 ~max_steps:200_000
      (Rainworm.Tm_compiler.oracle tm)
  in
  let worm_tape =
    Rainworm.Tm_compiler.decode_tape (Rainworm.Sim.final_config worm)
  in
  (* find the mark: it identifies how many TM steps happened *)
  check "mark present" true
    (List.exists
       (fun (_, m) -> m <> Rainworm.Tm_compiler.No_mark)
       worm_tape)

(* --- backward analysis (Lemmas 22–23) --------------------------------------- *)

let test_predecessor_bound () =
  (* Lemma 22(3): fan-in bounded by c_M, checked along a real run *)
  let m = Rainworm.Zoo.eternal_creeper in
  let configs =
    Rainworm.Sim.reachable_configs ~max_steps:200 (Rainworm.Machine.oracle m)
  in
  List.iter
    (fun w ->
      check "fan-in ≤ c_M" true
        (List.length (Rainworm.Analysis.predecessors m w)
        <= Rainworm.Analysis.c_m m))
    configs

let test_predecessors_invert_step () =
  let m = Rainworm.Zoo.eternal_creeper in
  let o = Rainworm.Machine.oracle m in
  let rec walk n w =
    if n = 0 then ()
    else
      match Rainworm.Sim.step o w with
      | None -> ()
      | Some w' ->
          check "w ∈ preds(step w)" true
            (List.mem w (Rainworm.Analysis.predecessors m w'));
          walk (n - 1) w'
  in
  walk 100 Rainworm.Config.initial

let test_lemma23_closure () =
  (* the backward closure of a halting machine's u_M contains exactly the
     forward-reachable configurations, and is finite *)
  let m = Rainworm.Zoo.stillborn in
  match Rainworm.Analysis.halting_analysis m with
  | None -> Alcotest.fail "stillborn halts"
  | Some (u_m, k_m, closure) ->
      check "k_M small" true (k_m < 20);
      check "closure finite and small" true (List.length closure < 100);
      let forward =
        Rainworm.Sim.reachable_configs ~max_steps:(k_m + 1)
          (Rainworm.Machine.oracle m)
      in
      (* Lemma 23(1): forward-reachable ⊆ backward closure of u_M *)
      List.iter
        (fun w -> check "forward ⊆ backward closure" true (List.mem w closure))
        forward;
      (* Lemma 23(2): closure members satisfy Definition 19(1–3) when they
         are configurations on the tree path; u_M itself is valid *)
      check "u_M valid" true (Rainworm.Config.is_valid u_m)

let () =
  Alcotest.run "variants"
    [
      ( "oblivious-chase",
        [
          Alcotest.test_case "ignores head satisfaction" `Quick
            test_oblivious_ignores_satisfaction;
          Alcotest.test_case "fires once per trigger" `Quick
            test_oblivious_fires_once_per_trigger;
          Alcotest.test_case "agrees on determinacy" `Quick
            test_oblivious_agrees_on_verdict;
        ] );
      ( "attempt1",
        [ Alcotest.test_case "views differ by one atom (§IX.A)" `Quick
            test_attempt1_one_atom ] );
      ( "binary-counter",
        [
          Alcotest.test_case "direct" `Quick test_binary_counter_direct;
          Alcotest.test_case "compiled" `Quick test_binary_counter_compiled;
          Alcotest.test_case "lockstep mark" `Quick test_binary_counter_lockstep;
        ] );
      ( "backward-analysis",
        [
          Alcotest.test_case "fan-in ≤ c_M (Lemma 22(3))" `Quick
            test_predecessor_bound;
          Alcotest.test_case "predecessors invert step" `Quick
            test_predecessors_invert_step;
          Alcotest.test_case "finite closure (Lemma 23)" `Quick test_lemma23_closure;
        ] );
    ]
