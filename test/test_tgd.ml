(* Tests for TGDs, the chase and the green-red machinery of Section IV. *)

open Relational

let edge = Symbol.make "E" 2
let red_edge = Symbol.red edge
let green_edge = Symbol.green edge

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let test_frontier () =
  let dep =
    Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] ()
  in
  check "frontier is y" true
    (Term.Var_set.equal (Tgd.Dep.frontier dep) (Term.Var_set.singleton "y"));
  check "existential is z" true
    (Term.Var_set.equal (Tgd.Dep.existentials dep) (Term.Var_set.singleton "z"))

(* E(x,y) ⇒ ∃z E(y,z): chase of a single edge diverges (infinite path);
   bounded chase grows by one edge per stage. *)
let test_chase_growth () =
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let stats = Tgd.Chase.run ~max_stages:5 [ dep ] s in
  check "not fixpoint" false stats.Tgd.Chase.fixpoint;
  check_int "6 edges after 5 stages" 6 (Structure.size s)

let test_chase_lazy () =
  (* on a cycle the head is always already satisfied: chase does nothing *)
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  Structure.add2 s edge b a;
  let stats = Tgd.Chase.run [ dep ] s in
  check "fixpoint at once" true stats.Tgd.Chase.fixpoint;
  check_int "no facts added" 2 (Structure.size s);
  check "models" true (Tgd.Chase.models [ dep ] s)

let test_chase_provenance () =
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  ignore (Tgd.Chase.run ~max_stages:3 [ dep ] s);
  let stages =
    Structure.fold_facts s (fun f acc -> Option.get (Structure.fact_stage s f) :: acc) []
    |> List.sort_uniq compare
  in
  check "stages 0..3 present" true (stages = [ 0; 1; 2; 3 ])

let test_chase_stop () =
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let stats =
    Tgd.Chase.run ~max_stages:100 ~stop:(fun d -> Structure.size d >= 4) [ dep ] s
  in
  check "stopped early" true (stats.Tgd.Chase.stages <= 4)

let test_chase_two_heads () =
  (* E(x,y) ⇒ ∃z E(y,z) ∧ E(z,y): creates two facts per firing *)
  let dep =
    Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z"; e "z" "y" ] ()
  in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let stats = Tgd.Chase.run ~max_stages:1 [ dep ] s in
  check_int "one firing" 1 stats.Tgd.Chase.applications;
  check_int "3 facts" 3 (Structure.size s);
  (* now the fixpoint is reached: the back-and-forth pair satisfies both
     trigger positions *)
  let stats2 = Tgd.Chase.run ~max_stages:10 [ dep ] s in
  check "fixpoint" true stats2.Tgd.Chase.fixpoint

let test_trigger_dedup () =
  (* two body matches with the same frontier must fire once *)
  let dep =
    Tgd.Dep.make ~body:[ e "x" "y"; e "x" "y2" ] ~head:[ e "y" "w" ] ()
  in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s and c = Structure.fresh s in
  Structure.add2 s edge a b;
  Structure.add2 s edge a c;
  let stats = Tgd.Chase.run ~max_stages:1 [ dep ] s in
  (* frontier = {y}; matches give y=b and y=c: two firings, not four *)
  check_int "two firings" 2 stats.Tgd.Chase.applications

(* --- Green-red TGDs (Definition 3) ---------------------------------- *)

let q_edge = Cq.Query.make ~free:[ "x"; "y" ] [ e "x" "y" ]

let test_greenred_tgd_shape () =
  let dep = Tgd.Dep.of_query `G_to_R q_edge in
  check "body green" true
    (List.for_all (fun a -> Symbol.is_green (Atom.sym a)) (Tgd.Dep.body dep));
  check "head red" true
    (List.for_all (fun a -> Symbol.is_red (Atom.sym a)) (Tgd.Dep.head dep));
  (* free variables of the query are the frontier *)
  check "frontier = free vars" true
    (Term.Var_set.equal (Tgd.Dep.frontier dep)
       (Term.Var_set.of_list [ "x"; "y" ]))

let test_greenred_existential_renaming () =
  let q = Cq.Query.make ~free:[ "x" ] [ e "x" "y" ] in
  let dep = Tgd.Dep.of_query `G_to_R q in
  (* y is existential in the head, renamed apart: frontier is just x *)
  check "frontier = {x}" true
    (Term.Var_set.equal (Tgd.Dep.frontier dep) (Term.Var_set.singleton "x"))

let test_lemma4 () =
  (* Lemma 4: D ⊨ T_Q iff (G(Q))(D) = (R(Q))(D) for each Q ∈ Q.
     Build D where views agree, and one where they don't. *)
  let queries = [ ("e", q_edge) ] in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s green_edge a b;
  Structure.add2 s red_edge a b;
  check "views agree -> models T_Q" true (Tgd.Greenred.condition_tq queries s);
  check "views agree (direct)" true (Tgd.Greenred.condition_views_agree queries s);
  let s2 = Structure.create () in
  let a2 = Structure.fresh s2 and b2 = Structure.fresh s2 in
  Structure.add2 s2 green_edge a2 b2;
  check "missing red -> violates" false (Tgd.Greenred.condition_tq queries s2);
  check "views disagree (direct)" false (Tgd.Greenred.condition_views_agree queries s2)

let test_lemma4_equivalence_property =
  (* On random two-colored graphs the two sides of Lemma 4 coincide.
     NB the query has free variables x y: views record tuples. *)
  QCheck.Test.make ~name:"Lemma 4: T_Q ⟺ views agree" ~count:60
    QCheck.(pair (int_bound 3) (list_of_size Gen.(int_bound 8)
      (triple bool (int_bound 3) (int_bound 3))))
    (fun (n, edges) ->
      let queries = [ ("e", q_edge) ] in
      let s = Structure.create () in
      let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
      List.iter
        (fun (g, i, j) ->
          let sym = if g then green_edge else red_edge in
          Structure.add2 s sym vs.(i mod (n+1)) vs.(j mod (n+1)))
        edges;
      Tgd.Greenred.condition_tq queries s
      = Tgd.Greenred.condition_views_agree queries s)

let test_observation6 () =
  (* chase with T_Q from a green structure: daltonisation maps back *)
  let q2 =
    Cq.Query.make ~free:[ "x" ] [ e "x" "y"; e "y" "z" ]
  in
  let queries = [ ("p2", q2) ] in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s and c = Structure.fresh s in
  Structure.add2 s green_edge a b;
  Structure.add2 s green_edge b c;
  let original = Structure.copy s in
  ignore (Tgd.Chase.run ~max_stages:4 (Tgd.Dep.t_q queries) s);
  check "chase grew" true (Structure.size s > Structure.size original);
  check "Observation 6" true
    (Tgd.Greenred.observation6_check ~original ~chased:s)

let test_unrestricted_determinacy_positive () =
  (* Q = {edge}, Q0 = edge: trivially determined. *)
  let queries = [ ("e", q_edge) ] in
  match Tgd.Greenred.unrestricted_determinacy queries q_edge with
  | `Determined _ -> ()
  | `Not_determined _ | `Unknown _ -> Alcotest.fail "expected Determined"

let test_unrestricted_determinacy_negative () =
  (* Q = {path2}, Q0 = edge: the 2-path view does not determine the edge
     relation. *)
  let p2 = Cq.Query.make ~free:[ "x"; "y" ] [ e "x" "m"; e "m" "y" ] in
  let queries = [ ("p2", p2) ] in
  match Tgd.Greenred.unrestricted_determinacy ~max_stages:20 queries q_edge with
  | `Not_determined _ -> ()
  | `Determined _ -> Alcotest.fail "expected Not_determined"
  | `Unknown _ -> Alcotest.fail "chase did not converge"

let test_unrestricted_determinacy_composed () =
  (* Q = {edge}, Q0 = path2: determined (compose the view with itself). *)
  let p2 = Cq.Query.make ~free:[ "x"; "y" ] [ e "x" "m"; e "m" "y" ] in
  let queries = [ ("e", q_edge) ] in
  match Tgd.Greenred.unrestricted_determinacy queries p2 with
  | `Determined _ -> ()
  | `Not_determined _ | `Unknown _ -> Alcotest.fail "expected Determined"

let () =
  Alcotest.run "tgd"
    [
      ( "dep",
        [
          Alcotest.test_case "frontier and existentials" `Quick test_frontier;
          Alcotest.test_case "green-red shape" `Quick test_greenred_tgd_shape;
          Alcotest.test_case "existential renaming" `Quick
            test_greenred_existential_renaming;
        ] );
      ( "chase",
        [
          Alcotest.test_case "growth" `Quick test_chase_growth;
          Alcotest.test_case "lazy" `Quick test_chase_lazy;
          Alcotest.test_case "provenance" `Quick test_chase_provenance;
          Alcotest.test_case "stop condition" `Quick test_chase_stop;
          Alcotest.test_case "two-atom head" `Quick test_chase_two_heads;
          Alcotest.test_case "trigger dedup" `Quick test_trigger_dedup;
        ] );
      ( "greenred",
        [
          Alcotest.test_case "Lemma 4 (hand instances)" `Quick test_lemma4;
          Alcotest.test_case "Observation 6" `Quick test_observation6;
          Alcotest.test_case "determinacy: identity" `Quick
            test_unrestricted_determinacy_positive;
          Alcotest.test_case "determinacy: p2 view loses edge" `Quick
            test_unrestricted_determinacy_negative;
          Alcotest.test_case "determinacy: composition" `Quick
            test_unrestricted_determinacy_composed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ test_lemma4_equivalence_property ] );
    ]
