(* Tests for the Appendix A machinery (minimal models, Lemma 34, the
   Definition 36 precompile operation and Lemma 32(ii)), the view-rewriting
   engine, the generic semi-Thue module and the labelled-graph functor. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f = Spider.Query.f

(* --- minimal models (Definition 31) ------------------------------------ *)

(* A model of {f^∅_5 &· f^∅_6} from the seed: the seed edge plus the
   demanded red witnesses, plus an unreachable junk edge that minimality
   must drop. *)
let test_minimal_model_drops_junk () =
  let rule = Swarm.Rule.amp (f ~lower:5 ()) (f ~lower:6 ()) in
  let g, a, _b = Swarm.Graph.seed () in
  (* chase to a bounded depth, then add junk *)
  let _ = Swarm.Rule.chase ~max_stages:2 [ rule ] g in
  let junk_src = Swarm.Graph.fresh g and junk_dst = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) junk_src junk_dst);
  let m = Swarm.Minimal.minimal_model [ rule ] g in
  check "junk dropped" false
    (List.exists
       (fun (e : Swarm.Graph.edge) -> e.Swarm.Graph.src = junk_src)
       (Swarm.Graph.edges m));
  check "seed kept" true
    (List.exists
       (fun (e : Swarm.Graph.edge) ->
         Spider.Ideal.equal e.Swarm.Graph.label Spider.Ideal.full_green
         && e.Swarm.Graph.src = a)
       (Swarm.Graph.edges m))

let test_lemma34 () =
  (* lower rules: in a minimal model, red ⟺ lower *)
  let rules =
    [
      Swarm.Rule.amp (f ~lower:5 ()) (f ~lower:6 ());
      Swarm.Rule.slash (f ~lower:7 ()) (f ~upper:5 ~lower:8 ());
    ]
  in
  check "rules are lower" true (List.for_all Swarm.Rule.is_lower rules);
  let g, _, _ = Swarm.Graph.seed () in
  let _ = Swarm.Rule.chase ~max_stages:3 rules g in
  let m = Swarm.Minimal.minimal_model rules g in
  check "Lemma 34 invariant" true (Swarm.Minimal.lemma34_holds m);
  check "model nonempty" true (Swarm.Graph.size m > 1)

let test_minimal_requires_seed () =
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:5 ()) x y);
  Alcotest.check_raises "no seed"
    (Invalid_argument "Minimal.minimal_model: no H(I,_,_) seed") (fun () ->
      ignore (Swarm.Minimal.minimal_model [] g))

(* --- Definition 36 / Lemma 32(ii) --------------------------------------- *)

let test_lemma32_on_finite_model () =
  (* The §VIII.E countermodel M̄ is a green-graph model of T_M□ without a
     1-2 pattern; Definition 36's one red stage must turn it into a swarm
     model of Precompile(T_M□), with no full red spider. *)
  let wr, m, _ = Reduction.Finite_model.of_halting_machine Rainworm.Zoo.stillborn in
  let rules = Reduction.Worm_rules.with_grid wr in
  let d = m.Reduction.Finite_model.graph in
  check "precondition: model, no pattern" true
    (Greengraph.Rule.models rules d && not (Greengraph.Graph.has_12_pattern d));
  let sw = Greengraph.Precompile.precompile_graph rules d in
  check "no full red spider (Lemma 32(ii))" false (Swarm.Graph.has_full_red sw);
  check "swarm models Precompile(T) (Lemma 32(ii))" true
    (Swarm.Rule.models (Greengraph.Precompile.precompile rules) sw)

(* --- view-based rewriting ------------------------------------------------- *)

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let path_query k =
  let name i = if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i in
  Cq.Query.make ~free:[ "x"; "y" ] (List.init k (fun i -> e (name i) (name (i + 1))))

let test_rewriting_composition () =
  let views = [ ("p2", path_query 2); ("p3", path_query 3) ] in
  match Determinacy.Rewriting.conjunctive ~views (path_query 5) with
  | Determinacy.Rewriting.Rewriting plan ->
      (* the universal plan mentions every view answer over A[P5]; its
         expansion must be exactly P5 *)
      check "some view atoms" true (List.length (Cq.Query.body plan) <= 7);
      let expansion = Determinacy.Rewriting.expand ~views plan in
      check "expansion equivalent to P5" true
        (Cq.Containment.equivalent expansion (path_query 5))
  | Determinacy.Rewriting.No_conjunctive_rewriting ->
      Alcotest.fail "expected a rewriting"

let test_rewriting_trivial () =
  let views = [ ("e", path_query 1) ] in
  match Determinacy.Rewriting.conjunctive ~views (path_query 3) with
  | Determinacy.Rewriting.Rewriting plan ->
      check_int "three view atoms" 3 (List.length (Cq.Query.body plan))
  | Determinacy.Rewriting.No_conjunctive_rewriting -> Alcotest.fail "expected"

let test_rewriting_impossible () =
  (* P2 does not determine E, so no rewriting can exist *)
  let views = [ ("p2", path_query 2) ] in
  check "no rewriting of E over P2" true
    (Determinacy.Rewriting.conjunctive ~views (path_query 1)
    = Determinacy.Rewriting.No_conjunctive_rewriting)

let test_rewriting_inexact_plan () =
  (* P4 over {P3}: the universal plan exists but its expansion is not
     equivalent *)
  let views = [ ("p3", path_query 3) ] in
  check "no rewriting of P4 over P3" true
    (Determinacy.Rewriting.conjunctive ~views (path_query 4)
    = Determinacy.Rewriting.No_conjunctive_rewriting)

let test_expand_unknown_view () =
  let views = [ ("p2", path_query 2) ] in
  let bogus =
    Cq.Query.make ~free:[ "x"; "y" ]
      [ Atom.app2 (Symbol.make "p9" 2) (v "x") (v "y") ]
  in
  Alcotest.check_raises "unknown view"
    (Invalid_argument "Rewriting.expand: unknown view p9") (fun () ->
      ignore (Determinacy.Rewriting.expand ~views bogus))

(* --- semi-Thue systems ------------------------------------------------------ *)

let test_thue_basics () =
  let sys = Thue.System.make [ Thue.System.rule [ 'a'; 'b' ] [ 'b'; 'a' ] ] in
  let trace, stopped = Thue.System.run ~max_steps:10 sys [ 'a'; 'a'; 'b' ] in
  check "bubble sort terminates" true stopped;
  check "sorted" true (List.rev trace |> List.hd = [ 'b'; 'a'; 'a' ]);
  check "reachable" true
    (Thue.System.reachable ~max_steps:10 sys ~from:[ 'a'; 'b' ] ~target:[ 'b'; 'a' ])

let test_thue_partial_function () =
  check "distinct lhs" true
    (Thue.System.partial_function
       [ Thue.System.rule [ 1 ] [ 2 ]; Thue.System.rule [ 2 ] [ 1 ] ]);
  check "duplicate lhs" false
    (Thue.System.partial_function
       [ Thue.System.rule [ 1 ] [ 2 ]; Thue.System.rule [ 1 ] [ 3 ] ])

let test_thue_rewrites_positions () =
  let sys = Thue.System.make [ Thue.System.rule [ 'a' ] [ 'b' ] ] in
  check_int "three redexes" 3
    (List.length (Thue.System.rewrites sys [ 'a'; 'a'; 'a' ]))

(* --- labelled graphs --------------------------------------------------------- *)

let test_lgraph_map_vertices () =
  let g = Greengraph.Graph.create () in
  let x = Greengraph.Graph.fresh g and y = Greengraph.Graph.fresh g in
  let z = Greengraph.Graph.fresh g in
  ignore (Greengraph.Graph.add_edge g (Some 6) x y);
  ignore (Greengraph.Graph.add_edge g (Some 6) x z);
  let q = Greengraph.Graph.map_vertices (fun v -> if v = z then y else v) g in
  check_int "edges merged" 1 (Greengraph.Graph.size q);
  check_int "vertices merged" 2 (Greengraph.Graph.order q)

(* tiny substring helper (no astring dependency) *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_lgraph_dot () =
  let g = Greengraph.Graph.create () in
  let x = Greengraph.Graph.fresh ~name:"a" g and y = Greengraph.Graph.fresh g in
  ignore (Greengraph.Graph.add_edge g (Some 6) x y);
  let dot = Fmt.str "%a" (fun ppf -> Greengraph.Graph.pp_dot ppf) g in
  check "digraph header" true (contains dot "digraph g");
  check "edge present" true (contains dot "n0 -> n1")

(* --- hom-search ablation flag stays sound ----------------------------------- *)

let test_hom_unordered_agrees () =
  let s = Structure.create () in
  let vs = Array.init 6 (fun _ -> Structure.fresh s) in
  for i = 0 to 4 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  let q = Cq.Query.body (path_query 3) in
  check_int "ordered = unordered" (Hom.count s q) (Hom.count ~ordered:false s q)

let () =
  Alcotest.run "extensions"
    [
      ( "minimal-models",
        [
          Alcotest.test_case "junk dropped" `Quick test_minimal_model_drops_junk;
          Alcotest.test_case "Lemma 34" `Quick test_lemma34;
          Alcotest.test_case "seed required" `Quick test_minimal_requires_seed;
        ] );
      ( "lemma32",
        [ Alcotest.test_case "Definition 36 on M̄" `Quick test_lemma32_on_finite_model ] );
      ( "rewriting",
        [
          Alcotest.test_case "composition P2∘P3 = P5" `Quick test_rewriting_composition;
          Alcotest.test_case "trivial over E" `Quick test_rewriting_trivial;
          Alcotest.test_case "impossible (not determined)" `Quick
            test_rewriting_impossible;
          Alcotest.test_case "inexact plan rejected" `Quick test_rewriting_inexact_plan;
          Alcotest.test_case "unknown view" `Quick test_expand_unknown_view;
        ] );
      ( "thue",
        [
          Alcotest.test_case "basics" `Quick test_thue_basics;
          Alcotest.test_case "partial function" `Quick test_thue_partial_function;
          Alcotest.test_case "redex positions" `Quick test_thue_rewrites_positions;
        ] );
      ( "lgraph",
        [
          Alcotest.test_case "map_vertices" `Quick test_lgraph_map_vertices;
          Alcotest.test_case "dot export" `Quick test_lgraph_dot;
          Alcotest.test_case "hom ordering ablation" `Quick test_hom_unordered_agrees;
        ] );
    ]
