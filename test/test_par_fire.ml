(* Parallel-firing bit-identity.  The par engine — at jobs 1, 2 and 3,
   with staged (two-phase, partition-then-canonical-merge) firing both
   auto-selected and forced on, and under "par.shard"/"par.fire"
   failpoints — must produce the same structure, journal, firing
   sequence and stats record as the sequential semi-naive reference.
   The fault cases additionally pin the retry-then-degrade ladder:
   a probability-1 site must tick both resilience counters while
   leaving the run bit-identical. *)

open Relational
module FP = Resilience.Failpoint

let check = Alcotest.(check bool)

let counter name =
  match List.assoc_opt name (Obs.Metrics.snapshot ()) with
  | Some v -> v
  | None -> 0

let staged =
  { Tgd.Chase.default_tuning with Tgd.Chase.par_fire = `Staged }

(* --- TGD chase ------------------------------------------------------------ *)

let run_tgd ?tuning ?jobs engine inst =
  let d = Oracle.Gen.build inst in
  let stop d = Structure.card d > 100 || Structure.size d > 300 in
  let firings = ref [] in
  let on_fire ~stage dep fb =
    firings := (stage, Tgd.Dep.name dep, Term.Var_map.bindings fb) :: !firings
  in
  let stats =
    Tgd.Chase.run ~engine ?jobs ?tuning ~max_stages:6 ~stop ~on_fire
      inst.Oracle.Gen.deps d
  in
  (d, stats, List.rev !firings)

let same_tgd_run what (d1, s1, f1) (d2, s2, f2) =
  check (what ^ ": structures equal") true (Structure.equal_sets d1 d2);
  check
    (what ^ ": journals equal")
    true
    (Structure.delta_since d1 0 = Structure.delta_since d2 0);
  check (what ^ ": firing sequences equal") true (f1 = f2);
  check (what ^ ": stats equal") true (s1 = s2)

let test_tgd_jobs () =
  for case = 0 to 19 do
    let r = Oracle.Gen.case_rng ~seed:23 ~case in
    let inst = Oracle.Gen.instance r in
    let base = run_tgd `Seminaive inst in
    List.iter
      (fun jobs ->
        same_tgd_run
          (Printf.sprintf "case %d jobs %d" case jobs)
          base
          (run_tgd ~jobs `Par inst);
        same_tgd_run
          (Printf.sprintf "case %d jobs %d staged" case jobs)
          base
          (run_tgd ~tuning:staged ~jobs `Par inst))
      [ 1; 2; 3 ]
  done

(* A probability-1 failpoint faults the first attempt and the retry, so
   every armed stage walks the whole ladder: retried once, then degraded
   to the sequential rung — and the run must stay bit-identical.
   "par.fire" only draws when a stage actually has triggers to fire, so
   the counter assertions are aggregated over the case loop rather than
   per case. *)
let test_tgd_faulted () =
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      FP.clear ())
    (fun () ->
      List.iter
        (fun site ->
          let retries0 = counter "resilience.par_retries" in
          let degraded0 = counter "resilience.par_degraded" in
          for case = 0 to 9 do
            let r = Oracle.Gen.case_rng ~seed:29 ~case in
            let inst = Oracle.Gen.instance r in
            FP.clear ();
            let base = run_tgd `Seminaive inst in
            FP.configure_exn ~seed:(100 + case) site;
            let faulted = run_tgd ~jobs:2 `Par inst in
            FP.clear ();
            same_tgd_run (Printf.sprintf "case %d under %s" case site) base
              faulted
          done;
          check (site ^ ": ladder retried") true
            (counter "resilience.par_retries" > retries0);
          check (site ^ ": ladder degraded") true
            (counter "resilience.par_degraded" > degraded0))
        [ "par.shard"; "par.fire" ])

(* --- green-graph chase ---------------------------------------------------- *)

let run_graph ?jobs engine gc =
  let module G = Greengraph.Graph in
  let g = Oracle.Gen.build_graph gc in
  let stop g = G.size g > 300 || G.order g > 100 in
  let stats =
    Greengraph.Rule.chase ~engine ?jobs ~max_stages:6 ~stop
      gc.Oracle.Gen.rules g
  in
  (g, stats)

let same_graph_run what (g1, s1) (g2, s2) =
  let module G = Greengraph.Graph in
  check (what ^ ": graphs equal") true (G.equal g1 g2);
  check
    (what ^ ": edge journals equal")
    true
    (G.delta_since g1 0 = G.delta_since g2 0);
  check (what ^ ": stats equal") true (s1 = s2)

let test_graph_jobs () =
  for case = 0 to 19 do
    let r = Oracle.Gen.case_rng ~seed:31 ~case in
    let gc = Oracle.Gen.graph_case r in
    let base = run_graph `Seminaive gc in
    List.iter
      (fun jobs ->
        same_graph_run
          (Printf.sprintf "graph case %d jobs %d" case jobs)
          base
          (run_graph ~jobs `Par gc))
      [ 1; 3 ]
  done

let test_graph_faulted () =
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      FP.clear ())
    (fun () ->
      let retries0 = counter "resilience.par_retries" in
      let degraded0 = counter "resilience.par_degraded" in
      for case = 0 to 9 do
        let r = Oracle.Gen.case_rng ~seed:37 ~case in
        let gc = Oracle.Gen.graph_case r in
        FP.clear ();
        let base = run_graph `Seminaive gc in
        FP.configure_exn ~seed:(200 + case) "par.shard";
        let faulted = run_graph ~jobs:2 `Par gc in
        FP.clear ();
        same_graph_run
          (Printf.sprintf "graph case %d under par.shard" case)
          base faulted
      done;
      check "graph ladder retried" true
        (counter "resilience.par_retries" > retries0);
      check "graph ladder degraded" true
        (counter "resilience.par_degraded" > degraded0))

let () =
  Alcotest.run "par_fire"
    [
      ( "tgd",
        [
          Alcotest.test_case "jobs 1/2/3 bit-identical" `Quick test_tgd_jobs;
          Alcotest.test_case "faulted ladders bit-identical" `Quick
            test_tgd_faulted;
        ] );
      ( "graph",
        [
          Alcotest.test_case "jobs 1/3 bit-identical" `Quick test_graph_jobs;
          Alcotest.test_case "faulted ladder bit-identical" `Quick
            test_graph_faulted;
        ] );
    ]
