(* Tests for the relational substrate: structures, homomorphisms,
   painting/daltonisation. *)

open Relational

let edge = Symbol.make "E" 2
let node = Symbol.make "N" 1

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A directed path 0 -> 1 -> ... -> n. *)
let path n =
  let s = Structure.create () in
  let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  (s, vs)

(* A directed cycle of length n. *)
let cycle n =
  let s = Structure.create () in
  let vs = Array.init n (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    Structure.add2 s edge vs.(i) vs.((i + 1) mod n)
  done;
  (s, vs)

let test_structure_basics () =
  let s = Structure.create () in
  let a = Structure.fresh ~name:"a" s in
  let b = Structure.fresh s in
  Structure.add2 s edge a b;
  Structure.add2 s edge a b;
  check_int "no duplicate facts" 1 (Structure.size s);
  check_int "two elements" 2 (Structure.card s);
  check "mem" true (Structure.mem s (Fact.app2 edge a b));
  check "not mem" false (Structure.mem s (Fact.app2 edge b a));
  Alcotest.(check string) "name" "a" (Structure.name s a);
  check_int "by sym" 1 (List.length (Structure.facts_with_sym s edge));
  check_int "by elem" 1 (List.length (Structure.facts_with_elem s a))

let test_constants () =
  let s = Structure.create () in
  let c1 = Structure.constant s "c" in
  let c2 = Structure.constant s "c" in
  check_int "constants are shared" c1 c2;
  check "is_constant" true (Structure.is_constant s c1);
  Alcotest.(check (option string)) "constant_name" (Some "c")
    (Structure.constant_name s c1)

let test_copy_independent () =
  let s, vs = path 3 in
  let s' = Structure.copy s in
  Structure.add2 s' edge vs.(3) vs.(0);
  check_int "copy grew" 4 (Structure.size s');
  check_int "original untouched" 3 (Structure.size s)

let test_filter_restrict () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s (Symbol.green edge) a b;
  Structure.add2 s (Symbol.red edge) b a;
  let g = Structure.restrict_color Symbol.Green s in
  let r = Structure.restrict_color Symbol.Red s in
  check_int "green part" 1 (Structure.size g);
  check_int "red part" 1 (Structure.size r);
  check "green fact survives" true (Structure.mem g (Fact.app2 (Symbol.green edge) a b))

let test_dalt () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s (Symbol.green edge) a b;
  Structure.add2 s (Symbol.red edge) a b;
  let d = Structure.dalt s in
  (* both colored atoms collapse onto the same uncolored atom *)
  check_int "dalt collapses" 1 (Structure.size d);
  check "dalt fact" true (Structure.mem d (Fact.app2 edge a b))

let test_quotient () =
  let s, vs = path 2 in
  (* identify endpoints: 0 -> 1 -> 0 becomes a 2-cycle *)
  let f e = if e = vs.(2) then vs.(0) else e in
  let q = Structure.quotient f s in
  check "quotient has back edge" true (Structure.mem q (Fact.app2 edge vs.(1) vs.(0)));
  check_int "quotient facts" 2 (Structure.size q)

let test_disjoint_union () =
  let s1, _ = path 2 in
  let s2, _ = cycle 3 in
  let u, _ = Structure.disjoint_union [ s1; s2 ] in
  check_int "facts add up" 5 (Structure.size u);
  check_int "elements add up" 6 (Structure.card u)

let test_disjoint_union_shares_constants () =
  let s1 = Structure.create () in
  let a1 = Structure.constant s1 "a" in
  Structure.add2 s1 edge a1 (Structure.fresh s1);
  let s2 = Structure.create () in
  let a2 = Structure.constant s2 "a" in
  Structure.add2 s2 edge a2 (Structure.fresh s2);
  let u, _ = Structure.disjoint_union [ s1; s2 ] in
  (* the constant a is shared, so 3 elements, both edges from the same a *)
  check_int "constant merged" 3 (Structure.card u);
  let a = Structure.constant u "a" in
  check_int "both edges at a" 2 (List.length (Structure.facts_with_elem u a))

let test_hom_path_to_cycle () =
  (* a path maps into a cycle, a cycle does not map into a path *)
  let p, _ = path 5 in
  let c, _ = cycle 3 in
  check "path -> cycle" true (Hom.exists_between p c);
  check "cycle -/-> path" false (Hom.exists_between c p)

let test_hom_cycle_divisibility () =
  (* C_m -> C_n iff n divides m (directed cycles) *)
  let test m n expected =
    let cm, _ = cycle m and cn, _ = cycle n in
    check (Printf.sprintf "C%d -> C%d" m n) expected (Hom.exists_between cm cn)
  in
  test 6 3 true;
  test 6 2 true;
  test 4 3 false;
  test 3 6 false;
  test 5 5 true

let test_hom_respects_constants () =
  let s1 = Structure.create () in
  let a1 = Structure.constant s1 "a" in
  let x = Structure.fresh s1 in
  Structure.add2 s1 edge a1 x;
  let s2 = Structure.create () in
  let a2 = Structure.constant s2 "a" in
  let y = Structure.fresh s2 in
  (* edge goes INTO the constant: no hom fixing a *)
  Structure.add2 s2 edge y a2;
  check "constants block hom" false (Hom.exists_between s1 s2);
  Structure.add2 s2 edge a2 y;
  check "now ok" true (Hom.exists_between s1 s2)

let test_hom_unary () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  Structure.add s node [| a |];
  (* query: N(x) ∧ E(x,y) has a match; N(y) ∧ E(x,y) does not *)
  let q1 = [ Atom.make node [ Term.var "x" ]; Atom.app2 edge (Term.var "x") (Term.var "y") ] in
  let q2 = [ Atom.make node [ Term.var "y" ]; Atom.app2 edge (Term.var "x") (Term.var "y") ] in
  check "q1 matches" true (Hom.exists s q1);
  check "q2 does not" false (Hom.exists s q2)

let test_hom_count () =
  let c, _ = cycle 4 in
  (* edges can map onto any of the 4 edges *)
  let q = [ Atom.app2 edge (Term.var "x") (Term.var "y") ] in
  check_int "4 edge images" 4 (Hom.count c q)

let test_identity_hom_property =
  QCheck.Test.make ~name:"identity homomorphism always exists" ~count:50
    QCheck.(pair (int_bound 8) (list_of_size Gen.(int_bound 20) (pair (int_bound 8) (int_bound 8))))
    (fun (n, edges) ->
      let s = Structure.create () in
      let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
      List.iter (fun (i, j) -> Structure.add2 s edge vs.(i mod (n+1)) vs.(j mod (n+1))) edges;
      Hom.exists_between s s)

let test_hom_into_superstructure_property =
  QCheck.Test.make ~name:"substructure maps into superstructure" ~count:50
    QCheck.(pair (int_bound 6) (list_of_size Gen.(int_bound 15) (pair (int_bound 6) (int_bound 6))))
    (fun (n, edges) ->
      let s = Structure.create () in
      let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
      List.iter (fun (i, j) -> Structure.add2 s edge vs.(i mod (n+1)) vs.(j mod (n+1))) edges;
      let bigger = Structure.copy s in
      Structure.add2 bigger edge (Structure.fresh bigger) vs.(0);
      Hom.exists_between s bigger)

let test_paint_roundtrip_property =
  QCheck.Test.make ~name:"dalt after paint is identity on symbols" ~count:100
    QCheck.(pair string (int_bound 4))
    (fun (name, arity) ->
      QCheck.assume (name <> "");
      let s = Symbol.make name arity in
      Symbol.equal s (Symbol.dalt (Symbol.green s))
      && Symbol.equal s (Symbol.dalt (Symbol.red s))
      && Symbol.is_green (Symbol.green s)
      && Symbol.is_red (Symbol.red s))

let () =
  Alcotest.run "relational"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure_basics;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "copy is independent" `Quick test_copy_independent;
          Alcotest.test_case "filter and color restriction" `Quick test_filter_restrict;
          Alcotest.test_case "daltonisation" `Quick test_dalt;
          Alcotest.test_case "quotient" `Quick test_quotient;
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "disjoint union shares constants" `Quick
            test_disjoint_union_shares_constants;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "path to cycle" `Quick test_hom_path_to_cycle;
          Alcotest.test_case "cycle divisibility" `Quick test_hom_cycle_divisibility;
          Alcotest.test_case "constants respected" `Quick test_hom_respects_constants;
          Alcotest.test_case "unary predicates" `Quick test_hom_unary;
          Alcotest.test_case "counting" `Quick test_hom_count;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_identity_hom_property;
            test_hom_into_superstructure_property;
            test_paint_roundtrip_property;
          ] );
    ]
