(* Tests for the undecidability reduction (Section VIII): ∆ → T_M
   (Lemma 25), the fold-and-grid mechanism (Lemma 24 "⇒"), the finite
   model construction of Section VIII.E (Lemmas 24 "⇐" and 26), and the
   end-to-end pipeline of Theorem 5. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let creeper = Rainworm.Zoo.eternal_creeper

(* --- T_M construction --------------------------------------------------- *)

let test_rule_counts () =
  let wr = Reduction.Worm_rules.of_machine creeper in
  (* 2 base rules + one per instruction except ♦1 *)
  check_int "rules" (2 + Rainworm.Machine.size creeper - 1)
    (List.length wr.Reduction.Worm_rules.rules)

let test_connector_assignment () =
  (* ♦-forms with odd first lhs symbol become /· rules, even become &· *)
  let wr = Reduction.Worm_rules.of_machine creeper in
  let amp_count =
    List.length
      (List.filter
         (fun (r : Greengraph.Rule.t) -> r.Greengraph.Rule.conn = Greengraph.Rule.Amp)
         wr.Reduction.Worm_rules.rules)
  in
  (* creeper: base init1(&), init2(/); ♦2(&), ♦3(/), ♦4(/), ♦4'(&), ♦5(/),
     ♦5'(&), ♦6(/), ♦6'(&), ♦7(/), ♦7'(&), ♦8(/): 6 amp, 7 slash *)
  check_int "amp rules" 6 amp_count;
  check_int "slash rules" 7
    (List.length wr.Reduction.Worm_rules.rules - amp_count)

let test_labeling_parity () =
  let lb = Reduction.Labeling.create () in
  List.iter
    (fun s ->
      check
        (Fmt.str "parity of %a" Rainworm.Sym.pp s)
        (Rainworm.Sym.is_even s)
        (Reduction.Labeling.code lb s mod 2 = 0))
    [
      Rainworm.Sym.Alpha; Rainworm.Sym.Beta0; Rainworm.Sym.Beta1;
      Rainworm.Sym.Eta0; Rainworm.Sym.Eta1; Rainworm.Sym.Eta11;
      Rainworm.Sym.Gamma0; Rainworm.Sym.Gamma1; Rainworm.Sym.Omega0;
      Rainworm.Sym.A0 "x"; Rainworm.Sym.A1 "x"; Rainworm.Sym.Q0 "q";
      Rainworm.Sym.Q1 "q"; Rainworm.Sym.Q0bar "q"; Rainworm.Sym.Q1bar "q";
      Rainworm.Sym.Qg0 "q"; Rainworm.Sym.Qg1 "q";
    ]

let test_labeling_stable () =
  let lb = Reduction.Labeling.create () in
  let c1 = Reduction.Labeling.code lb (Rainworm.Sym.A0 "x") in
  let _ = Reduction.Labeling.code lb (Rainworm.Sym.A0 "y") in
  check_int "stable codes" c1 (Reduction.Labeling.code lb (Rainworm.Sym.A0 "x"))

(* --- Lemma 25 ------------------------------------------------------------ *)

let test_lemma25 () =
  (* every reachable configuration of the creeper is a word of
     chase(T_M, D_I) *)
  let wr = Reduction.Worm_rules.of_machine creeper in
  let g, a, b, _ = Reduction.Worm_rules.chase ~stages:30 wr in
  let configs =
    Rainworm.Sim.reachable_configs ~max_steps:28 (Rainworm.Machine.oracle creeper)
  in
  check "enough configs" true (List.length configs > 20);
  List.iteri
    (fun i c ->
      let w = Reduction.Worm_rules.configuration_word wr c in
      if not (Greengraph.Pg.in_words g ~a ~b w) then
        Alcotest.failf "config %d not in words (Lemma 25)" i)
    configs

let test_lemma25_negative () =
  (* a word that is no reachable configuration is not in words of a short
     chase: e.g. α γ1 γ1 ... (invalid parity) or a config of a different
     machine *)
  let wr = Reduction.Worm_rules.of_machine creeper in
  let g, a, b, _ = Reduction.Worm_rules.chase ~stages:20 wr in
  let bogus =
    [ Separating.Labels.alpha; Separating.Labels.gamma1; Separating.Labels.gamma1 ]
  in
  check "bogus not a word" false (Greengraph.Pg.in_words g ~a ~b bogus)

let test_chase_spine_grows () =
  (* the creeping worm leaves an ever-longer αβ slime trail in the chase *)
  let wr = Reduction.Worm_rules.of_machine creeper in
  let g1, a1, _, _ = Reduction.Worm_rules.chase ~stages:30 wr in
  let g2, a2, _, _ = Reduction.Worm_rules.chase ~stages:60 wr in
  let s1 = List.length (Reduction.Worm_rules.alpha_beta_spine g1 ~a:a1) in
  let s2 = List.length (Reduction.Worm_rules.alpha_beta_spine g2 ~a:a2) in
  check "spine grows" true (s2 > s1)

(* --- Lemma 24 "⇒": fold and grid ----------------------------------------- *)

let test_fold_gives_pattern () =
  let wr = Reduction.Worm_rules.of_machine creeper in
  let pattern, _, _ = Reduction.Worm_rules.fold_and_grid ~stages:60 wr ~fold:(0, 2) in
  check "1-2 pattern after folding" true pattern

(* --- Lemma 24 "⇐" / Lemma 26: the finite model ---------------------------- *)

let finite_model_checks name machine =
  let wr, m, gstats = Reduction.Finite_model.of_halting_machine machine in
  let g = m.Reduction.Finite_model.graph in
  check (name ^ ": no 1-2 pattern") false (Greengraph.Graph.has_12_pattern g);
  check (name ^ ": grid chase converged") true gstats.Greengraph.Rule.fixpoint;
  check (name ^ ": M̄ ⊨ T_M (Lemma 26)") true
    (Greengraph.Rule.models wr.Reduction.Worm_rules.rules g);
  check (name ^ ": M̄ ⊨ T_M ∪ T□ (Lemma 24 ⇐)") true
    (Greengraph.Rule.models (Reduction.Worm_rules.with_grid wr) g);
  (* Lemma 26, second claim: every β-edge comes from the initial path *)
  let beta_edges =
    List.filter
      (fun (e : Greengraph.Graph.edge) ->
        e.Greengraph.Graph.label = Some Separating.Labels.beta0
        || e.Greengraph.Graph.label = Some Separating.Labels.beta1)
      (Greengraph.Graph.edges g)
  in
  check (name ^ ": β-edges bounded by |u_M|") true (List.length beta_edges < 64)

let test_finite_model_stillborn () = finite_model_checks "stillborn" Rainworm.Zoo.stillborn

let test_finite_model_halt_now () =
  let m = Rainworm.Tm_compiler.materialize ~max_steps:10_000 Rainworm.Zoo.tm_halt_now in
  finite_model_checks "halt-now" m

let test_finite_model_write_k () =
  let m = Rainworm.Tm_compiler.materialize ~max_steps:100_000 (Rainworm.Zoo.tm_write_k 2) in
  finite_model_checks "write-2" m

let test_lemma40_words_creep_to_um () =
  (* Appendix C, Lemma 40(1): every word of the pre-grid model M creeps
     forward to exactly u_M *)
  List.iter
    (fun (name, machine) ->
      let trace = Rainworm.Sim.creep_machine ~max_steps:100_000 machine in
      match trace.Rainworm.Sim.outcome with
      | Rainworm.Sim.Running _ -> Alcotest.fail "machine must halt"
      | Rainworm.Sim.Halted final ->
          let wr = Reduction.Worm_rules.of_machine machine in
          let m =
            Reduction.Finite_model.build wr ~final_config:final
              ~k_m:trace.Rainworm.Sim.steps
          in
          let n =
            Reduction.Finite_model.check_lemma40 ~max_len:14 wr m
              ~final_config:final
          in
          check (name ^ ": some words checked") true (n >= 1))
    [
      ("stillborn", Rainworm.Zoo.stillborn);
      ("halt-now", Rainworm.Tm_compiler.materialize Rainworm.Zoo.tm_halt_now);
    ]

let test_finite_model_contains_di () =
  let _, m, _ = Reduction.Finite_model.of_halting_machine Rainworm.Zoo.stillborn in
  check "contains H∅(a,b)" true
    (List.exists
       (fun (e : Greengraph.Graph.edge) ->
         e.Greengraph.Graph.label = None
         && e.Greengraph.Graph.src = m.Reduction.Finite_model.a
         && e.Greengraph.Graph.dst = m.Reduction.Finite_model.b)
       (Greengraph.Graph.edges m.Reduction.Finite_model.graph))

(* --- Theorem 5 end-to-end -------------------------------------------------- *)

let test_pipeline_shape () =
  let p = Reduction.Pipeline.of_machine creeper in
  let sh = Reduction.Pipeline.shape p in
  check_int "green rules = T_M + T□" (13 + 41) sh.Reduction.Pipeline.green_rule_count;
  check_int "swarm rules = 3 + 2 per green rule" (3 + (2 * 54))
    sh.Reduction.Pipeline.swarm_rule_count;
  check_int "one CQ per swarm rule" sh.Reduction.Pipeline.swarm_rule_count
    sh.Reduction.Pipeline.query_count;
  check_int "two TGDs per CQ" (2 * sh.Reduction.Pipeline.query_count)
    sh.Reduction.Pipeline.tgd_count;
  (* s = 2(k+1)+2 for k swarm-rule-generating green rules *)
  check_int "s" ((2 * (54 + 1)) + 2) sh.Reduction.Pipeline.s;
  check "Q0 is boolean" true (Cq.Query.arity p.Reduction.Pipeline.q0 = 0)

let test_pipeline_queries_wellformed () =
  let p = Reduction.Pipeline.of_machine Rainworm.Zoo.stillborn in
  List.iter
    (fun (_, q) ->
      (* every compiled CQ has at least tail+antenna free variables and a
         nonempty body over the spider signature *)
      check "free vars" true (Cq.Query.arity q >= 2);
      check "body nonempty" true (Cq.Query.body q <> []))
    p.Reduction.Pipeline.level0.Greengraph.Precompile.queries

(* --- halting ⟺ not finitely-leads, at Level 2 ------------------------------ *)

let test_lemma24_both_directions () =
  (* creeping forever: folding any two spine vertices grids a pattern —
     and the plain chase stays clean (unrestricted side) *)
  let wr = Reduction.Worm_rules.of_machine creeper in
  let g, _, _, _ = Reduction.Worm_rules.chase ~with_tbox:true ~stages:12 wr in
  check "chase prefix clean (does not lead, unrestricted)" false
    (Greengraph.Graph.has_12_pattern g);
  (* halting: the finite model certifies "does not finitely lead" *)
  let wr2, m2, _ = Reduction.Finite_model.of_halting_machine Rainworm.Zoo.stillborn in
  check "finite countermodel exists for halting worm" true
    (Greengraph.Rule.models (Reduction.Worm_rules.with_grid wr2)
       m2.Reduction.Finite_model.graph
    && not (Greengraph.Graph.has_12_pattern m2.Reduction.Finite_model.graph))

let test_fold_property =
  QCheck.Test.make ~name:"folding distinct spine vertices yields the pattern"
    ~count:6
    QCheck.(pair (int_bound 1) (int_range 2 3))
    (fun (i, j) ->
      QCheck.assume (i < j);
      let wr = Reduction.Worm_rules.of_machine creeper in
      let pattern, _, _ =
        Reduction.Worm_rules.fold_and_grid ~stages:90 wr ~fold:(i, j)
      in
      pattern)

let () =
  Alcotest.run "reduction"
    [
      ( "construction",
        [
          Alcotest.test_case "rule counts" `Quick test_rule_counts;
          Alcotest.test_case "connector assignment" `Quick test_connector_assignment;
          Alcotest.test_case "labeling parity" `Quick test_labeling_parity;
          Alcotest.test_case "labeling stable" `Quick test_labeling_stable;
        ] );
      ( "lemma25",
        [
          Alcotest.test_case "configurations are chase words" `Quick test_lemma25;
          Alcotest.test_case "bogus words rejected" `Quick test_lemma25_negative;
          Alcotest.test_case "spine grows with creeping" `Quick test_chase_spine_grows;
        ] );
      ( "lemma24",
        [
          Alcotest.test_case "fold gives pattern (⇒)" `Quick test_fold_gives_pattern;
          Alcotest.test_case "finite model: stillborn (⇐)" `Quick
            test_finite_model_stillborn;
          Alcotest.test_case "finite model: halt-now TM (⇐)" `Quick
            test_finite_model_halt_now;
          Alcotest.test_case "finite model: write-2 TM (⇐)" `Slow
            test_finite_model_write_k;
          Alcotest.test_case "Lemma 40: words creep to u_M" `Quick
            test_lemma40_words_creep_to_um;
          Alcotest.test_case "finite model contains D_I" `Quick
            test_finite_model_contains_di;
          Alcotest.test_case "both directions" `Quick test_lemma24_both_directions;
        ] );
      ( "theorem5",
        [
          Alcotest.test_case "pipeline shape" `Quick test_pipeline_shape;
          Alcotest.test_case "queries well-formed" `Quick
            test_pipeline_queries_wellformed;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ test_fold_property ] );
    ]
