(* Property suite holding the compiled Hom.Plan evaluator to the
   interpreted reference (hom.mli promises bit-identity: same bindings,
   same order, same effort counters), plus the parallel chase engine's
   bit-identity to semi-naive. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let node = Symbol.make "N" 1
let v = Term.var
let c = Term.cst

(* enumerate as concrete association lists so polymorphic equality sees
   binding contents, order of enumeration included *)
let enumerate ?init ?delta ~compiled d atoms =
  let out = ref [] in
  Hom.iter_all ~compiled ?init ?delta d atoms (fun b ->
      out := Term.Var_map.bindings b :: !out);
  List.rev !out

let hom_counters () =
  List.filter
    (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "hom.")
    (Obs.Metrics.snapshot ())

(* compiled and interpreted must agree on the binding sequence AND on the
   hom.* effort counters *)
let agree ?init ?delta what d atoms =
  Obs.set_metrics true;
  let before = hom_counters () in
  let compiled = enumerate ?init ?delta ~compiled:true d atoms in
  let mid = hom_counters () in
  let interp = enumerate ?init ?delta ~compiled:false d atoms in
  let after = hom_counters () in
  Obs.set_metrics false;
  check (what ^ ": same bindings in the same order") true (compiled = interp);
  check
    (what ^ ": same effort counters")
    true
    (Obs.Metrics.diff before mid = Obs.Metrics.diff mid after)

(* --- handcrafted shapes --------------------------------------------------- *)

let test_repeated_atoms () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  let d = Structure.fresh s in
  Structure.add2 s edge a b;
  Structure.add2 s edge b d;
  Structure.add2 s edge a d;
  let atom = Atom.app2 edge (v "x") (v "y") in
  (* physically equal repeated atoms each keep their occurrence *)
  agree "duplicate atom" s [ atom; atom ];
  agree "triangle with a repeat" s
    [ Atom.app2 edge (v "x") (v "y"); Atom.app2 edge (v "y") (v "z"); atom ];
  check_int "duplicate atom matches once per edge" 3
    (Hom.count s [ atom; atom ])

let test_constants_in_body () =
  let s = Structure.create () in
  let cc = Structure.constant s "c" in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge cc a;
  Structure.add2 s edge a b;
  Structure.add2 s edge b cc;
  Structure.add s node [| cc |];
  agree "constant as source" s [ Atom.app2 edge (c "c") (v "x") ];
  agree "constant mid-body" s
    [ Atom.app2 edge (v "x") (v "y"); Atom.app2 edge (v "y") (c "c") ];
  agree "ground atom" s [ Atom.app2 edge (c "c") (c "c") ];
  agree "constant-only unary" s [ Atom.make node [ c "c" ] ];
  check "absent ground atom finds nothing" true
    (Hom.find s [ Atom.app2 edge (c "c") (c "c") ] = None)

let test_init_seeding () =
  let s = Structure.create () in
  let vs = Array.init 4 (fun _ -> Structure.fresh s) in
  for i = 0 to 2 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  let body = [ Atom.app2 edge (v "x") (v "y"); Atom.app2 edge (v "y") (v "z") ] in
  let init = Term.Var_map.singleton "y" vs.(1) in
  agree ~init "bound middle variable" s body;
  (* init variables outside the body pass through untouched *)
  let init = Term.Var_map.add "w" vs.(3) init in
  agree ~init "pass-through init variable" s body;
  check "exists agrees" true
    (Hom.exists ~compiled:true ~init s body
    = Hom.exists ~compiled:false ~init s body);
  check "find agrees" true
    (Option.map Term.Var_map.bindings (Hom.find ~compiled:true ~init s body)
    = Option.map Term.Var_map.bindings (Hom.find ~compiled:false ~init s body))

let test_delta_handcrafted () =
  let s = Structure.create () in
  let vs = Array.init 5 (fun _ -> Structure.fresh s) in
  for i = 0 to 3 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  let wm = Structure.watermark s in
  Structure.add2 s edge vs.(4) vs.(0);
  Structure.add2 s edge vs.(0) vs.(2);
  let delta = Structure.delta_since s wm in
  let body = [ Atom.app2 edge (v "x") (v "y"); Atom.app2 edge (v "y") (v "z") ] in
  agree ~delta "delta-restricted pair" s body;
  let atom = Atom.app2 edge (v "x") (v "y") in
  agree ~delta "delta with a duplicate atom" s [ atom; atom ];
  agree ~delta "delta with empty body (nothing)" s [];
  check "delta enumeration nonempty" true
    (enumerate ~delta ~compiled:true s body <> [])

(* --- generated cases ------------------------------------------------------ *)

(* Chase the generated instance a little so the structure has chase-built
   shape (fresh elements, multi-stage journal), then hold the compiled
   evaluator to the interpreted one on every TGD body: full enumeration,
   frontier-seeded enumeration, and delta mode over the journal tail. *)
let test_generated_agreement () =
  for case = 0 to 79 do
    let r = Oracle.Gen.case_rng ~seed:7 ~case in
    let inst = Oracle.Gen.instance r in
    let d = Oracle.Gen.build inst in
    let stop d = Structure.card d > 80 || Structure.size d > 200 in
    let wm = Structure.watermark d in
    ignore (Tgd.Chase.run ~max_stages:4 ~stop inst.Oracle.Gen.deps d);
    let delta = Structure.delta_since d wm in
    List.iteri
      (fun i dep ->
        let body = Tgd.Dep.body dep in
        let what = Printf.sprintf "case %d dep %d" case i in
        agree what d body;
        agree ~delta (what ^ " (delta)") d body;
        (* seed one frontier variable with each element of some match *)
        match Hom.find ~compiled:false d body with
        | None -> ()
        | Some b ->
            Term.Var_map.iter
              (fun x e ->
                agree
                  ~init:(Term.Var_map.singleton x e)
                  (Printf.sprintf "%s (init %s)" what x)
                  d body)
              b)
      inst.Oracle.Gen.deps;
    (* generated CQ bodies add constant-in-body coverage beyond the deps *)
    let q = Oracle.Gen.query r inst.Oracle.Gen.signature in
    agree (Printf.sprintf "case %d cq" case) d (Cq.Query.body q)
  done

(* plan slot round-trips: binding_of_slots ∘ iter_slots = iter *)
let test_slot_round_trip () =
  let s = Structure.create () in
  let cc = Structure.constant s "c" in
  let a = Structure.fresh s in
  Structure.add2 s edge cc a;
  Structure.add2 s edge a a;
  let body = [ Atom.app2 edge (v "x") (v "y"); Atom.app2 edge (v "y") (c "c") ] in
  let plan = Hom.Plan.compile body in
  check_int "two slots" 2 (Hom.Plan.nslots plan);
  check "slots cover the variables" true
    (Hom.Plan.slot plan "x" <> None && Hom.Plan.slot plan "y" <> None);
  let via_slots = ref [] in
  Hom.Plan.iter_slots plan s (fun slots ->
      via_slots :=
        Term.Var_map.bindings (Hom.Plan.binding_of_slots plan slots)
        :: !via_slots);
  let direct = ref [] in
  Hom.Plan.iter plan s (fun b -> direct := Term.Var_map.bindings b :: !direct);
  check "slot and binding views agree" true (!via_slots = !direct)

(* --- cost-ordered and generic-join plans ---------------------------------- *)

(* Cost modes promise the same *set* of bindings as the interpreted
   reference, not the enumeration order or the effort counters (the
   whole point is visiting candidates in a cheaper order). *)
let plan_bindings ?init ~mode d atoms =
  let plan = Hom.Plan.compile ~mode atoms in
  let out = ref [] in
  Hom.Plan.iter ?init plan d (fun b -> out := Term.Var_map.bindings b :: !out);
  List.rev !out

let same_set what reference got =
  check
    (what ^ ": same binding set")
    true
    (List.sort_uniq compare reference = List.sort_uniq compare got)

let modes = [ (Hom.Plan.Cost, "cost"); (Hom.Plan.Auto, "auto") ]

(* Seeded cyclic bodies: [Auto] selects the generic-join evaluator on
   these (the body graph is cyclic), [Cost] the reordered backtracker;
   both must emit exactly the reference set, unseeded and under every
   single-variable seeding. *)
let test_cost_modes_cyclic () =
  let s = Structure.create () in
  let vs = Array.init 7 (fun _ -> Structure.fresh s) in
  (* two triangles sharing an edge, a 4-cycle, and some chaff *)
  List.iter
    (fun (i, j) -> Structure.add2 s edge vs.(i) vs.(j))
    [
      (0, 1); (1, 2); (2, 0);
      (1, 3); (3, 2);
      (3, 4); (4, 5); (5, 6); (6, 3);
      (0, 4); (2, 5);
    ];
  let triangle =
    [
      Atom.app2 edge (v "x") (v "y");
      Atom.app2 edge (v "y") (v "z");
      Atom.app2 edge (v "z") (v "x");
    ]
  in
  let square =
    [
      Atom.app2 edge (v "x") (v "y");
      Atom.app2 edge (v "y") (v "z");
      Atom.app2 edge (v "z") (v "w");
      Atom.app2 edge (v "w") (v "x");
    ]
  in
  List.iter
    (fun (body, what) ->
      let reference = enumerate ~compiled:false s body in
      List.iter
        (fun (mode, mname) ->
          same_set (what ^ " " ^ mname) reference (plan_bindings ~mode s body);
          (* seeded: pin each variable of some reference match in turn *)
          match reference with
          | [] -> ()
          | b :: _ ->
              List.iter
                (fun (x, e) ->
                  let init = Term.Var_map.singleton x e in
                  let seeded_ref =
                    enumerate ~init ~compiled:false s body
                  in
                  same_set
                    (Printf.sprintf "%s %s (seed %s)" what mname x)
                    seeded_ref
                    (plan_bindings ~init ~mode s body))
                b)
        modes)
    [ (triangle, "triangle"); (square, "square") ]

(* For fixed cardinalities the cost ordering is deterministic (ties break
   to the lowest original atom index), so two enumerations of the same
   frozen structure agree element-for-element, order included. *)
let test_cost_order_deterministic () =
  for case = 0 to 19 do
    let r = Oracle.Gen.case_rng ~seed:13 ~case in
    let inst = Oracle.Gen.instance r in
    let d = Oracle.Gen.build inst in
    let stop d = Structure.card d > 80 || Structure.size d > 200 in
    ignore (Tgd.Chase.run ~max_stages:3 ~stop inst.Oracle.Gen.deps d);
    List.iteri
      (fun i dep ->
        let body = Tgd.Dep.body dep in
        let what = Printf.sprintf "case %d dep %d" case i in
        List.iter
          (fun (mode, mname) ->
            let e1 = plan_bindings ~mode d body in
            let e2 = plan_bindings ~mode d body in
            check
              (Printf.sprintf "%s %s: deterministic enumeration" what mname)
              true (e1 = e2);
            same_set
              (Printf.sprintf "%s %s" what mname)
              (enumerate ~compiled:false d body)
              e1)
          modes)
      inst.Oracle.Gen.deps
  done

(* --- the parallel chase --------------------------------------------------- *)

let test_par_bit_identity () =
  for case = 0 to 39 do
    let r = Oracle.Gen.case_rng ~seed:11 ~case in
    let inst = Oracle.Gen.instance r in
    let stop d = Structure.card d > 100 || Structure.size d > 300 in
    let run engine jobs =
      let d = Oracle.Gen.build inst in
      let firings = ref [] in
      let on_fire ~stage dep fb =
        firings :=
          (stage, Tgd.Dep.name dep, Term.Var_map.bindings fb) :: !firings
      in
      let stats =
        Tgd.Chase.run ~engine ?jobs ~max_stages:6 ~stop ~on_fire
          inst.Oracle.Gen.deps d
      in
      (d, stats, List.rev !firings)
    in
    let d1, s1, f1 = run `Seminaive None in
    (* jobs:3 exercises sharding + merge even on a single-core box *)
    let d2, s2, f2 = run `Par (Some 3) in
    check
      (Printf.sprintf "case %d: par structure = seminaive" case)
      true
      (Structure.equal_sets d1 d2);
    check
      (Printf.sprintf "case %d: par journal = seminaive" case)
      true
      (Structure.delta_since d1 0 = Structure.delta_since d2 0);
    check
      (Printf.sprintf "case %d: par firings = seminaive" case)
      true (f1 = f2);
    check
      (Printf.sprintf "case %d: par stats = seminaive" case)
      true (s1 = s2)
  done

let () =
  Alcotest.run "plan"
    [
      ( "compiled = interpreted",
        [
          Alcotest.test_case "repeated atoms" `Quick test_repeated_atoms;
          Alcotest.test_case "constants in body" `Quick test_constants_in_body;
          Alcotest.test_case "init seeding" `Quick test_init_seeding;
          Alcotest.test_case "delta mode" `Quick test_delta_handcrafted;
          Alcotest.test_case "generated cases" `Quick test_generated_agreement;
          Alcotest.test_case "slot round trip" `Quick test_slot_round_trip;
        ] );
      ( "cost and generic-join plans",
        [
          Alcotest.test_case "cyclic bodies, seeded" `Quick
            test_cost_modes_cyclic;
          Alcotest.test_case "deterministic ordering" `Quick
            test_cost_order_deterministic;
        ] );
      ( "parallel chase",
        [
          Alcotest.test_case "bit-identical to seminaive" `Quick
            test_par_bit_identity;
        ] );
    ]
