(* Depth coverage: n-ary relations through the whole CQ/TGD stack,
   chase provenance and late fragments (§IX's chase^L), converging
   green-graph rule sets, violation reporting, and simulator edges. *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- ternary relations through the stack ----------------------------------- *)

let r3 = Symbol.make "R" 3
let v = Term.var

let test_ternary_hom () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s and c = Structure.fresh s in
  Structure.add s r3 [| a; b; c |];
  Structure.add s r3 [| b; c; a |];
  Structure.add s r3 [| c; a; b |];
  (* rotating pattern: one match per starting fact *)
  let q = [ Atom.make r3 [ v "x"; v "y"; v "z" ]; Atom.make r3 [ v "y"; v "z"; v "x" ] ] in
  check_int "three rotations" 3 (Hom.count s q);
  (* diagonal pattern: no match *)
  let diag = [ Atom.make r3 [ v "x"; v "x"; v "x" ] ] in
  check "no diagonal" false (Hom.exists s diag)

let test_ternary_cq_eval () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s and c = Structure.fresh s in
  Structure.add s r3 [| a; b; c |];
  Structure.add s r3 [| a; c; b |];
  let q = Cq.Query.make ~free:[ "x" ] [ Atom.make r3 [ v "x"; v "y"; v "z" ] ] in
  check_int "one projection" 1 (Cq.Eval.count_answers q s);
  let q2 =
    Cq.Query.make ~free:[ "y"; "z" ] [ Atom.make r3 [ v "x"; v "y"; v "z" ] ]
  in
  check_int "two tails" 2 (Cq.Eval.count_answers q2 s)

let test_ternary_tgd_chase () =
  (* R(x,y,z) ⇒ ∃w R(y,z,w): rotating growth *)
  let dep =
    Tgd.Dep.make
      ~body:[ Atom.make r3 [ v "x"; v "y"; v "z" ] ]
      ~head:[ Atom.make r3 [ v "y"; v "z"; v "w" ] ]
      ()
  in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s and c = Structure.fresh s in
  Structure.add s r3 [| a; b; c |];
  let stats = Tgd.Chase.run ~max_stages:3 [ dep ] s in
  check_int "three firings" 3 stats.Tgd.Chase.applications;
  check_int "four facts" 4 (Structure.size s)

let test_ternary_containment () =
  let q1 = Cq.Query.boolean [ Atom.make r3 [ v "x"; v "y"; v "z" ] ] in
  let q2 = Cq.Query.boolean [ Atom.make r3 [ v "x"; v "x"; v "z" ] ] in
  check "specific ⊆ general" true (Cq.Containment.contained_in q2 q1);
  check "general ⊄ specific" false (Cq.Containment.contained_in q1 q2)

(* --- chase provenance and late fragments (§IX's chase^L) -------------------- *)

let edge = Symbol.make "E" 2
let e x y = Atom.app2 edge (v x) (v y)

let test_late_fragment_partition () =
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let _ = Tgd.Chase.run ~max_stages:6 [ dep ] s in
  let late =
    Structure.filter
      (fun f ->
        match Structure.fact_stage s f with Some st -> st > 3 | None -> false)
      s
  in
  let early =
    Structure.filter
      (fun f ->
        match Structure.fact_stage s f with Some st -> st <= 3 | None -> true)
      s
  in
  check_int "partition" (Structure.size s) (Structure.size late + Structure.size early);
  check_int "late = stages 4..6" 3 (Structure.size late);
  (* every late fact mentions an element born at stage ≥ 3 *)
  Structure.iter_facts late (fun f ->
      check "late facts touch late elements" true
        (List.exists
           (fun el ->
             match Structure.elem_stage s el with
             | Some st -> st >= 3
             | None -> false)
           (Fact.elements f)))

let test_elem_stage () =
  let dep = Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] () in
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let _ = Tgd.Chase.run ~max_stages:2 [ dep ] s in
  check "original elements at stage 0" true
    (Structure.elem_stage s a = Some 0 && Structure.elem_stage s b = Some 0);
  let late_elems =
    List.filter (fun el -> Structure.elem_stage s el = Some 2) (Structure.elems s)
  in
  check_int "one element born at stage 2" 1 (List.length late_elems)

(* --- green graphs: convergence and violation reporting ----------------------- *)

let test_converging_rules_do_not_lead () =
  let rules = [ Greengraph.Rule.amp (None, None) (Some 5, Some 6) ] in
  match Greengraph.Rule.leads_to_red_spider ~max_stages:10 rules with
  | `Does_not_lead (stats, g) ->
      check "fixpoint" true stats.Greengraph.Rule.fixpoint;
      check "no pattern" false (Greengraph.Graph.has_12_pattern g)
  | `Leads _ -> Alcotest.fail "must not lead"
  | `Unknown _ -> Alcotest.fail "should converge"

let test_find_violation () =
  let r = Greengraph.Rule.amp ~name:"r" (None, None) (Some 5, Some 6) in
  let g, _, _ = Greengraph.Graph.d_i () in
  (match Greengraph.Rule.find_violation [ r ] g with
  | Some (rv, _) -> Alcotest.(check string) "violating rule" "r" rv.Greengraph.Rule.name
  | None -> Alcotest.fail "D_I alone violates the rule");
  let _ = Greengraph.Rule.chase ~max_stages:5 [ r ] g in
  check "no violation after chase" true
    (Option.is_none (Greengraph.Rule.find_violation [ r ] g))

let test_swarm_leads_does_not_lead () =
  (* a lower-rule-only system converges without a red full spider *)
  let rules =
    [ Swarm.Rule.amp (Spider.Query.f ~lower:5 ()) (Spider.Query.f ~lower:6 ()) ]
  in
  match Swarm.Rule.leads_to_red_spider ~max_stages:10 rules with
  | `Does_not_lead _ -> ()
  | `Leads _ -> Alcotest.fail "lower rules cannot produce the full red spider"
  | `Unknown _ -> Alcotest.fail "should converge"

(* --- simulator edges ---------------------------------------------------------- *)

let test_creep_max_cycles () =
  let t =
    Rainworm.Sim.creep_machine ~max_cycles:5 ~max_steps:100_000
      Rainworm.Zoo.eternal_creeper
  in
  check_int "stopped at 5 cycles" 5 t.Rainworm.Sim.cycles;
  check "still running" false (Rainworm.Sim.halted t)

let test_creep_from_custom_config () =
  (* resume creeping from a mid-run configuration *)
  let o = Rainworm.Machine.oracle Rainworm.Zoo.eternal_creeper in
  let t1 = Rainworm.Sim.creep ~max_steps:20 o in
  let t2 =
    Rainworm.Sim.creep ~from:(Rainworm.Sim.final_config t1) ~max_steps:20 o
  in
  let t_full = Rainworm.Sim.creep ~max_steps:40 o in
  check "resumption = straight run" true
    (Rainworm.Sim.final_config t2 = Rainworm.Sim.final_config t_full)

let test_turing_fell_off_left () =
  let tm =
    Rainworm.Turing.make ~name:"leftcrash" ~blank:"_" ~start:"q0"
      [ (("q0", "_"), ("q0", "x", Rainworm.Turing.Left)) ]
  in
  match Rainworm.Turing.run ~max_steps:10 tm with
  | _, Rainworm.Turing.Halted (Rainworm.Turing.Fell_off_left, _) -> ()
  | _ -> Alcotest.fail "expected a left crash"

(* --- structure odds and ends --------------------------------------------------- *)

let test_structure_like_and_reserve () =
  let s = Structure.create () in
  let c = Structure.constant s "k" in
  let x = Structure.fresh s in
  Structure.add2 s edge c x;
  let l = Structure.like s in
  check_int "constants shared" c (Structure.constant l "k");
  check_int "no facts" 0 (Structure.size l);
  let y = Structure.fresh l in
  check "fresh avoids reserved ids" true (y > x)

let test_quotient_rejects_constant_merge () =
  let s = Structure.create () in
  let c = Structure.constant s "k" in
  let x = Structure.fresh s in
  Structure.add2 s edge c x;
  Alcotest.check_raises "constant not fixed"
    (Invalid_argument "Structure.quotient: constant not fixed") (fun () ->
      ignore (Structure.quotient (fun e -> if e = c then x else e) s))

let () =
  Alcotest.run "coverage"
    [
      ( "ternary",
        [
          Alcotest.test_case "hom search" `Quick test_ternary_hom;
          Alcotest.test_case "evaluation" `Quick test_ternary_cq_eval;
          Alcotest.test_case "chase" `Quick test_ternary_tgd_chase;
          Alcotest.test_case "containment" `Quick test_ternary_containment;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "late fragment partition" `Quick
            test_late_fragment_partition;
          Alcotest.test_case "element stages" `Quick test_elem_stage;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "converging rules do not lead" `Quick
            test_converging_rules_do_not_lead;
          Alcotest.test_case "violation reporting" `Quick test_find_violation;
          Alcotest.test_case "lower rules at Level 1" `Quick
            test_swarm_leads_does_not_lead;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "max_cycles" `Quick test_creep_max_cycles;
          Alcotest.test_case "resume from config" `Quick test_creep_from_custom_config;
          Alcotest.test_case "left crash" `Quick test_turing_fell_off_left;
        ] );
      ( "structure",
        [
          Alcotest.test_case "like and reserve" `Quick test_structure_like_and_reserve;
          Alcotest.test_case "quotient guards constants" `Quick
            test_quotient_rejects_constant_merge;
        ] );
    ]
