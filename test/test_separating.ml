(* Tests for the separating example (Section VII, Theorem 14): T∞'s
   infinite path (Figure 1), T□'s grids (Figures 2–4), and the
   leads-to-red-spider semantics across abstraction levels. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- T∞ / Figure 1 ----------------------------------------------------- *)

let test_tinf_first_steps () =
  (* the hand trace of Step 1: b1 with Hα(a,b1), Hη1(a,b1); then a1 with
     Hη0(a1,b), Hβ1(a1,b1); then b2 with Hη1(a,b2), Hβ0(a1,b2) *)
  let g, a, b = Greengraph.Graph.d_i () in
  let stats = Greengraph.Rule.chase ~max_stages:1 Separating.Tinf.rules g in
  check_int "stage 1 edges" 3 (Greengraph.Graph.size g);
  let alpha_edges = Greengraph.Graph.with_label g (Some Separating.Labels.alpha) in
  (match alpha_edges with
  | [ e ] ->
      check "α from a" true (e.Greengraph.Graph.src = a);
      check "α not to b" true (e.Greengraph.Graph.dst <> b)
  | _ -> Alcotest.fail "expected one α edge");
  ignore stats;
  let _ = Greengraph.Rule.chase ~max_stages:2 Separating.Tinf.rules g in
  check "η0 into b appears" true
    (List.exists
       (fun (e : Greengraph.Graph.edge) ->
         e.Greengraph.Graph.label = Some Separating.Labels.eta0
         && e.Greengraph.Graph.dst = b)
       (Greengraph.Graph.edges g))

let test_tinf_no_12_pattern () =
  let g, _, _, _ = Separating.Tinf.chase ~stages:15 () in
  check "no 1-2 pattern (Step 1)" false (Greengraph.Graph.has_12_pattern g)

let test_tinf_words () =
  (* words(chase(T∞,D_I)) = {α(β1β0)^k η1} ∪ {α(β1β0)^k β1 η0} *)
  let g, a, b, _ = Separating.Tinf.chase ~stages:14 () in
  for k = 0 to 3 do
    check
      (Printf.sprintf "α(β1β0)^%dη1 ∈ words" k)
      true
      (Greengraph.Pg.in_words g ~a ~b (Separating.Tinf.word_family_1 k));
    check
      (Printf.sprintf "α(β1β0)^%dβ1η0 ∈ words" k)
      true
      (Greengraph.Pg.in_words g ~a ~b (Separating.Tinf.word_family_2 k))
  done;
  (* non-members *)
  check "αβ0... ∉ words" false
    (Greengraph.Pg.in_words g ~a ~b
       [ Separating.Labels.alpha; Separating.Labels.beta0 ]);
  check "bare α ∉ words" false
    (Greengraph.Pg.in_words g ~a ~b [ Separating.Labels.alpha ])

let test_tinf_words_exactly () =
  (* Bounded completeness.  Strictly by Definition 15, a word may loop
     back through [a] before finishing (e.g. αη1·αβ1η0), so the language
     is (F1)*·(F1 ∪ F2) with F1 = α(β1β0)^kη1 and F2 = α(β1β0)^kβ1η0; the
     paper's Example lists the loop-free members. *)
  let rec strip_prefix p w =
    match p, w with
    | [], rest -> Some rest
    | x :: p', y :: w' -> if x = y then strip_prefix p' w' else None
    | _ :: _, [] -> None
  in
  let ks = [ 0; 1; 2; 3 ] in
  let rec in_language w =
    List.exists
      (fun k ->
        w = Separating.Tinf.word_family_1 k || w = Separating.Tinf.word_family_2 k)
      ks
    || List.exists
         (fun k ->
           match strip_prefix (Separating.Tinf.word_family_1 k) w with
           | Some ([] as _rest) -> false (* already covered above *)
           | Some rest -> in_language rest
           | None -> false)
         ks
  in
  let g, a, b, _ = Separating.Tinf.chase ~stages:14 () in
  let words = Greengraph.Pg.words_upto g ~a ~b ~max_len:8 in
  check "some words found" true (List.length words >= 4);
  List.iter
    (fun w ->
      if not (in_language w) then
        Alcotest.failf "unexpected word %a" Greengraph.Pg.pp_word w)
    words

let test_tinf_growth_linear () =
  (* the chase grows a bounded number of edges per stage — the structure
     is an infinite quasi-path, not a tree *)
  let _, _, _, stats10 = Separating.Tinf.chase ~stages:10 () in
  let _, _, _, stats20 = Separating.Tinf.chase ~stages:20 () in
  let g10, _, _, _ = Separating.Tinf.chase ~stages:10 () in
  let g20, _, _, _ = Separating.Tinf.chase ~stages:20 () in
  ignore stats10;
  ignore stats20;
  let d1 = Greengraph.Graph.size g20 - Greengraph.Graph.size g10 in
  check "linear growth" true (d1 <= 10 * 6)

(* --- T□ / Figures 2–4 --------------------------------------------------- *)

let test_tbox_has_41_rules () = check_int "41 rules" 41 Separating.Tbox.size

let test_collision_unequal_gives_pattern () =
  List.iter
    (fun (t, t') ->
      let pattern, _, _ = Separating.Theorem14.collision_outcome ~t ~t' () in
      check (Printf.sprintf "t=%d t'=%d → 1-2 pattern" t t') true pattern)
    [ (1, 2); (2, 3); (3, 5); (2, 6) ]

let test_collision_equal_no_pattern () =
  List.iter
    (fun t ->
      let pattern, stats, g = Separating.Theorem14.collision_outcome ~t ~t':t () in
      check (Printf.sprintf "t=t'=%d → no pattern" t) false pattern;
      check "chase converged" true stats.Greengraph.Rule.fixpoint;
      (* the final structure is a model of T□ (grid complete) *)
      check "models T□" true (Greengraph.Rule.models Separating.Tbox.rules g))
    [ 1; 2; 4 ]

let test_single_path_no_pattern () =
  (* Figure 4: the grids M_t are harmless *)
  List.iter
    (fun t ->
      let pattern, stats, g = Separating.Theorem14.single_path_outcome ~t () in
      check (Printf.sprintf "M_%d has no pattern" t) false pattern;
      check "converged" true stats.Greengraph.Rule.fixpoint;
      check "models T□ (Lemma 18(2) fragment)" true
        (Greengraph.Rule.models Separating.Tbox.rules g))
    [ 1; 2; 3 ]

let test_chase_t_prefix_clean () =
  (* Theorem 14, "does not lead" side: bounded prefix of chase(T, D_I) *)
  let clean, _ = Separating.Theorem14.chase_prefix_clean ~stages:7 () in
  check "no 1-2 pattern in chase prefix" true clean

let test_grid_corner_labels () =
  (* in the unequal case the pattern labels are exactly 1 = ⟨n,α,d̄,b̄⟩ and
     2 = ⟨w,α,d̄,b̄⟩ *)
  let _, _, g = Separating.Theorem14.collision_outcome ~t:2 ~t':3 () in
  match Greengraph.Graph.find_12_pattern g with
  | None -> Alcotest.fail "expected pattern"
  | Some (e1, e2) ->
      check "labels" true
        (e1.Greengraph.Graph.label = Some 1 && e2.Greengraph.Graph.label = Some 2)

(* --- cross-level agreement (Lemma 12 behaviorally) ---------------------- *)

(* a tiny rule set that leads to the red spider in one step *)
let leads_rules = [ Greengraph.Rule.amp (None, None) (Some 1, Some 2) ]

let test_leads_level2 () =
  match Greengraph.Rule.leads_to_red_spider ~max_stages:4 leads_rules with
  | `Leads _ -> ()
  | `Does_not_lead _ | `Unknown _ -> Alcotest.fail "expected Leads"

let test_leads_level1 () =
  (* Precompile(leads_rules) leads to the full red spider at Level 1 *)
  let swarm_rules = Greengraph.Precompile.precompile leads_rules in
  match Swarm.Rule.leads_to_red_spider ~max_stages:8 swarm_rules with
  | `Leads _ -> ()
  | `Does_not_lead _ | `Unknown _ -> Alcotest.fail "expected Leads at Level 1"

let test_leads_level0 () =
  (* Compile(Precompile(leads_rules)): the TGD chase from a full green
     spider produces a full red spider at Level 0 *)
  let p = Greengraph.Precompile.to_level0 leads_rules in
  let ctx = p.Greengraph.Precompile.ctx in
  let st = Relational.Structure.create () in
  let a = Relational.Structure.fresh ~name:"a" st in
  let b = Relational.Structure.fresh ~name:"b" st in
  ignore (Spider.Real.realize ctx st ~tail:a ~antenna:b Spider.Ideal.full_green);
  let has_full_red st =
    List.exists
      (fun (r : Spider.Real.t) ->
        Spider.Ideal.equal r.Spider.Real.ideal Spider.Ideal.full_red)
      (Spider.Real.find_all ctx st)
  in
  let _ =
    Tgd.Chase.run ~max_stages:8 ~stop:has_full_red p.Greengraph.Precompile.tgds st
  in
  check "full red spider at Level 0" true (has_full_red st)

let test_does_not_lead_all_levels () =
  (* T∞ does not lead within the budget at Levels 2 and 1 *)
  (match Greengraph.Rule.leads_to_red_spider ~max_stages:6 Separating.Tinf.rules with
  | `Leads _ -> Alcotest.fail "T∞ must not lead"
  | `Does_not_lead _ | `Unknown _ -> ());
  let swarm_rules = Greengraph.Precompile.precompile Separating.Tinf.rules in
  match Swarm.Rule.leads_to_red_spider ~max_stages:3 swarm_rules with
  | `Leads _ -> Alcotest.fail "Precompile(T∞) must not lead"
  | `Does_not_lead _ | `Unknown _ -> ()

let test_lemma18_on_chase_prefix () =
  (* Step 3's model M, bounded: freeze a chase(T∞, D_I) prefix (with its η
     and ∅ edges), then grid it with T□ alone to the fixpoint.  The result
     contains the grids M_t of Figure 4 hanging off the real chase — and
     per Lemma 18 it has no 1-2 pattern and models T□. *)
  let g, _, _, _ = Separating.Tinf.chase ~stages:9 () in
  let stats =
    Greengraph.Rule.chase ~max_stages:200 ~stop:Greengraph.Graph.has_12_pattern
      Separating.Tbox.rules g
  in
  check "grid chase converged" true stats.Greengraph.Rule.fixpoint;
  check "no 1-2 pattern (Lemma 18(1))" false (Greengraph.Graph.has_12_pattern g);
  check "models T□ (Lemma 18(2))" true
    (Greengraph.Rule.models Separating.Tbox.rules g)

(* --- properties --------------------------------------------------------- *)

let test_collision_property =
  QCheck.Test.make ~name:"1-2 pattern iff colliding paths have unequal lengths"
    ~count:12
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (t, t') ->
      let pattern, _, _ =
        Separating.Theorem14.collision_outcome ~max_stages:40 ~t ~t' ()
      in
      pattern = (t <> t'))

let () =
  Alcotest.run "separating"
    [
      ( "tinf",
        [
          Alcotest.test_case "first chase steps (Fig 1)" `Quick test_tinf_first_steps;
          Alcotest.test_case "no 1-2 pattern" `Quick test_tinf_no_12_pattern;
          Alcotest.test_case "word families" `Quick test_tinf_words;
          Alcotest.test_case "words complete (bounded)" `Quick test_tinf_words_exactly;
          Alcotest.test_case "linear growth" `Quick test_tinf_growth_linear;
        ] );
      ( "tbox",
        [
          Alcotest.test_case "41 rules" `Quick test_tbox_has_41_rules;
          Alcotest.test_case "unequal collision → pattern (Fig 3)" `Quick
            test_collision_unequal_gives_pattern;
          Alcotest.test_case "equal collision → clean" `Quick
            test_collision_equal_no_pattern;
          Alcotest.test_case "single path → clean (Fig 4)" `Quick
            test_single_path_no_pattern;
          Alcotest.test_case "chase(T,D_I) prefix clean" `Quick
            test_chase_t_prefix_clean;
          Alcotest.test_case "corner labels are 1,2" `Quick test_grid_corner_labels;
          Alcotest.test_case "Lemma 18 on the chase prefix" `Quick
            test_lemma18_on_chase_prefix;
        ] );
      ( "levels",
        [
          Alcotest.test_case "leads at Level 2" `Quick test_leads_level2;
          Alcotest.test_case "leads at Level 1" `Quick test_leads_level1;
          Alcotest.test_case "leads at Level 0" `Quick test_leads_level0;
          Alcotest.test_case "T∞ does not lead" `Quick test_does_not_lead_all_levels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ test_collision_property ] );
    ]
