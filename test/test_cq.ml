(* Tests for conjunctive queries: canonical structures, evaluation,
   containment, cores and view instances. *)

open Relational

let edge = Symbol.make "E" 2

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

(* path query: x -E-> m1 -E-> ... -E-> y with k edges, free x y *)
let path_query k =
  let name i = if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i in
  let body = List.init k (fun i -> e (name i) (name (i + 1))) in
  Cq.Query.make ~free:[ "x"; "y" ] body

let path_structure n =
  let s = Structure.create () in
  let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  (s, vs)

let cycle_structure n =
  let s = Structure.create () in
  let vs = Array.init n (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    Structure.add2 s edge vs.(i) vs.((i + 1) mod n)
  done;
  (s, vs)

let test_canonical () =
  let q = path_query 2 in
  let canon, elem = Cq.Query.canonical q in
  check_int "3 elements" 3 (Structure.card canon);
  check_int "2 facts" 2 (Structure.size canon);
  check "free var mapped" true (Option.is_some (elem "x"))

let test_canonical_constants () =
  let q =
    Cq.Query.make ~free:[ "x" ]
      [ Atom.app2 edge (v "x") (Term.cst "a") ]
  in
  let canon, _ = Cq.Query.canonical q in
  check_int "constant element" 2 (Structure.card canon);
  check "has constant" true (Option.is_some (Structure.constant_opt canon "a"))

let test_of_structure_roundtrip () =
  let s, vs = path_structure 2 in
  let q = Cq.Query.of_structure ~free:[ vs.(0) ] s in
  check_int "arity 1" 1 (Cq.Query.arity q);
  (* the query should hold on its own canonical structure *)
  let canon, _ = Cq.Query.canonical q in
  check "self-satisfiable" true (Cq.Eval.holds q canon)

let test_answers_path () =
  let s, _ = path_structure 4 in
  (* pairs at distance 2 on a 5-vertex path: (0,2) (1,3) (2,4) *)
  let answers = Cq.Eval.answers (path_query 2) s in
  check_int "3 answers" 3 (Cq.Eval.Tuple_set.cardinal answers)

let test_answers_cycle () =
  let s, _ = cycle_structure 3 in
  (* on a 3-cycle, every vertex reaches exactly one vertex in 2 steps *)
  let answers = Cq.Eval.answers (path_query 2) s in
  check_int "3 answers" 3 (Cq.Eval.Tuple_set.cardinal answers)

let test_holds_at () =
  let s, vs = path_structure 3 in
  let q = path_query 3 in
  check "endpoints" true (Cq.Eval.holds_at q s [| vs.(0); vs.(3) |]);
  check "wrong pair" false (Cq.Eval.holds_at q s [| vs.(0); vs.(2) |])

let test_boolean_queries () =
  let s, _ = cycle_structure 3 in
  let q3 = Cq.Query.close (path_query 3) in
  let q_loop =
    Cq.Query.boolean [ e "x" "x" ]
  in
  check "3-path exists in C3" true (Cq.Eval.holds q3 s);
  check "no self-loop in C3" false (Cq.Eval.holds q_loop s)

let test_containment_paths () =
  (* longer path query is contained in shorter?  No: containment is by hom
     from the containee's canonical structure.  For boolean path queries
     over one edge relation: P_{k} ⊆ P_{j} iff a hom from A[P_j] to A[P_k]
     exists fixing frees; with free endpoints, neither contains the other
     for k ≠ j; closed versions: longer ⊆ shorter. *)
  let p2 = Cq.Query.close (path_query 2) in
  let p4 = Cq.Query.close (path_query 4) in
  check "P4 ⊆ P2 (boolean)" true (Cq.Containment.contained_in p4 p2);
  check "P2 ⊄ P4 (boolean)" false (Cq.Containment.contained_in p2 p4)

let test_containment_free_vars () =
  let p2 = path_query 2 in
  let p4 = path_query 4 in
  check "free endpoints: P4 ⊄ P2" false (Cq.Containment.contained_in p4 p2);
  check "free endpoints: P2 ⊄ P4" false (Cq.Containment.contained_in p2 p4);
  check "reflexive" true (Cq.Containment.contained_in p2 p2)

let test_equivalent_renaming () =
  let q1 = path_query 2 in
  let q2 = Cq.Query.rename_vars (fun s -> s ^ "_r") q1 in
  let q2 = Cq.Query.make ~free:(List.map (fun s -> s ^ "_r") [ "x"; "y" ]) (Cq.Query.body q2) in
  check "renaming preserves equivalence" true (Cq.Containment.equivalent q1 q2)

let test_core_folds_redundancy () =
  (* E(x,y) ∧ E(x,y') with y,y' existential: folds to E(x,y) *)
  let q =
    Cq.Query.make ~free:[ "x" ] [ e "x" "y"; e "x" "y2" ]
  in
  let c = Cq.Containment.core q in
  check_int "core has one atom" 1 (List.length (Cq.Query.body c));
  check "core equivalent" true (Cq.Containment.equivalent q c)

let test_core_keeps_cycle () =
  (* a triangle (boolean) is a core *)
  let q =
    Cq.Query.boolean [ e "a" "b"; e "b" "c"; e "c" "a" ]
  in
  check "triangle is core" true (Cq.Containment.is_core q);
  (* triangle + pendant edge folds the pendant away *)
  let q' =
    Cq.Query.boolean [ e "a" "b"; e "b" "c"; e "c" "a"; e "a" "d" ]
  in
  let c = Cq.Containment.core q' in
  check_int "pendant folded" 3 (List.length (Cq.Query.body c))

let test_view_structure () =
  let s, _ = path_structure 3 in
  let queries = [ ("p1", path_query 1); ("p2", path_query 2) ] in
  let view = Cq.Eval.view_structure queries s in
  let p1 = Symbol.make "p1" 2 and p2 = Symbol.make "p2" 2 in
  check_int "p1 tuples" 3 (List.length (Structure.facts_with_sym view p1));
  check_int "p2 tuples" 2 (List.length (Structure.facts_with_sym view p2))

let test_same_views () =
  let s1, _ = cycle_structure 3 in
  let s2, _ = cycle_structure 3 in
  (* same views only makes sense on a shared domain; use the same structure *)
  let queries = [ ("p2", path_query 2) ] in
  check "identical structure" true (Cq.Eval.same_views queries s1 s1);
  ignore s2

let test_answers_monotone_property =
  QCheck.Test.make ~name:"CQ answers are monotone under fact addition" ~count:40
    QCheck.(pair (int_bound 5) (list_of_size Gen.(int_bound 12) (pair (int_bound 5) (int_bound 5))))
    (fun (n, edges) ->
      let s = Structure.create () in
      let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
      List.iter (fun (i, j) -> Structure.add2 s edge vs.(i mod (n+1)) vs.(j mod (n+1))) edges;
      let q = path_query 2 in
      let before = Cq.Eval.answers q s in
      Structure.add2 s edge vs.(0) vs.(n);
      let after = Cq.Eval.answers q s in
      Cq.Eval.Tuple_set.subset before after)

let test_core_equivalent_property =
  QCheck.Test.make ~name:"core is equivalent to the original query" ~count:30
    QCheck.(list_of_size Gen.(1 -- 6) (pair (int_bound 4) (int_bound 4)))
    (fun edges ->
      let atoms =
        List.map (fun (i, j) -> e (Printf.sprintf "v%d" i) (Printf.sprintf "v%d" j)) edges
      in
      let q = Cq.Query.boolean atoms in
      let c = Cq.Containment.core q in
      Cq.Containment.equivalent q c)

(* --- parser ------------------------------------------------------------ *)

let test_parse_basic () =
  match Cq.Parse.named_query "p2(x, y) :- E(x, m), E(m, y)" with
  | Ok (name, q) ->
      Alcotest.(check string) "name" "p2" name;
      check_int "arity" 2 (Cq.Query.arity q);
      check "equivalent to path 2" true (Cq.Containment.equivalent q (path_query 2))
  | Error m -> Alcotest.failf "parse error: %s" m

let test_parse_boolean () =
  match Cq.Parse.query ":- E(x, x)" with
  | Ok q ->
      check_int "boolean" 0 (Cq.Query.arity q);
      let s, vs = cycle_structure 1 in
      ignore vs;
      check "self-loop found" true (Cq.Eval.holds q s)
  | Error m -> Alcotest.failf "parse error: %s" m

let test_parse_constants () =
  match Cq.Parse.query "q(x) :- Visited(x, 'paris')" with
  | Ok q ->
      check "has constant" true (List.mem "paris" (Cq.Query.constants q))
  | Error m -> Alcotest.failf "parse error: %s" m

let test_parse_program () =
  let src = {|
% two path views
p2(x,y) :- E(x,m), E(m,y)
p3(x,y) :- E(x,m), E(m,n), E(n,y)
|} in
  match Cq.Parse.program src with
  | Ok views ->
      check_int "two views" 2 (List.length views);
      Alcotest.(check string) "first name" "p2" (fst (List.hd views))
  | Error m -> Alcotest.failf "parse error: %s" m

let test_parse_errors () =
  let bad s =
    match Cq.Parse.query s with Ok _ -> false | Error _ -> true
  in
  check "unbound head var" true (bad "q(z) :- E(x, y)");
  check "head constant" true (bad "q('a') :- E(x, y)");
  check "unterminated quote" true (bad "q(x) :- E(x, 'bad)");
  check "garbage" true (bad "q(x) :- E(x y)");
  check "missing turnstile" true (bad "q(x) E(x, y)");
  check "roundtrip ok" false (bad "q(x,y) :- E(x,y)")

let test_parse_pp_roundtrip_property =
  (* parse (pp-free rendering) of simple generated path queries *)
  QCheck.Test.make ~name:"parse of generated path rules" ~count:30
    QCheck.(int_range 1 6)
    (fun k ->
      let body =
        String.concat ", "
          (List.init k (fun i ->
               Printf.sprintf "E(v%d, v%d)" i (i + 1)))
      in
      let s = Printf.sprintf "q(v0, v%d) :- %s" k body in
      match Cq.Parse.query s with
      | Ok q -> Cq.Containment.equivalent q (path_query k)
      | Error _ -> false)

let () =
  Alcotest.run "cq"
    [
      ( "canonical",
        [
          Alcotest.test_case "canonical structure" `Quick test_canonical;
          Alcotest.test_case "constants" `Quick test_canonical_constants;
          Alcotest.test_case "of_structure roundtrip" `Quick test_of_structure_roundtrip;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "answers on path" `Quick test_answers_path;
          Alcotest.test_case "answers on cycle" `Quick test_answers_cycle;
          Alcotest.test_case "holds_at" `Quick test_holds_at;
          Alcotest.test_case "boolean queries" `Quick test_boolean_queries;
          Alcotest.test_case "view structure" `Quick test_view_structure;
          Alcotest.test_case "same views" `Quick test_same_views;
        ] );
      ( "containment",
        [
          Alcotest.test_case "boolean paths" `Quick test_containment_paths;
          Alcotest.test_case "free endpoints" `Quick test_containment_free_vars;
          Alcotest.test_case "renaming equivalence" `Quick test_equivalent_renaming;
          Alcotest.test_case "core folds redundancy" `Quick test_core_folds_redundancy;
          Alcotest.test_case "core keeps cycle" `Quick test_core_keeps_cycle;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic rule" `Quick test_parse_basic;
          Alcotest.test_case "boolean rule" `Quick test_parse_boolean;
          Alcotest.test_case "constants" `Quick test_parse_constants;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_answers_monotone_property; test_core_equivalent_property;
            test_parse_pp_roundtrip_property;
          ] );
    ]
