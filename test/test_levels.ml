(* Tests for the abstraction ladder (Section VI, Appendix A): swarms (L₁),
   green graphs (L₂), compile/decompile (Lemmas 27, 30), Precompile
   (Remark 10), and the red-spider bootstrap of footnote 10. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f = Spider.Query.f

(* --- swarm semantics --------------------------------------------------- *)

let test_swarm_rule_fires () =
  (* the footnote-10 bootstrap, step 1: I^1 and I^2 sharing antennas plus
     rule f^1_1 &· f^2_2 produce H_1, H_2 *)
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  let stats = Swarm.Rule.chase ~max_stages:1 [ rule ] g in
  check_int "one firing" 1 stats.Swarm.Rule.applications;
  check_int "4 edges" 4 (Swarm.Graph.size g);
  check "H_1 present" true
    (Swarm.Graph.with_label g (Spider.Ideal.red ~lower:1 ()) <> []);
  check "H_2 present" true
    (Swarm.Graph.with_label g (Spider.Ideal.red ~lower:2 ()) <> []);
  (* the new red edges share their target (fresh antenna) *)
  (match
     ( Swarm.Graph.with_label g (Spider.Ideal.red ~lower:1 ()),
       Swarm.Graph.with_label g (Spider.Ideal.red ~lower:2 ()) )
   with
  | [ e1 ], [ e2 ] ->
      check "shared antenna" true (e1.Swarm.Graph.dst = e2.Swarm.Graph.dst);
      check "anchored at x" true (e1.Swarm.Graph.src = x);
      check "anchored at x'" true (e2.Swarm.Graph.src = x')
  | _ -> Alcotest.fail "expected exactly one edge of each label")

let test_swarm_rule_lazy () =
  (* a swarm already containing the witnesses is a model: no firing *)
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g and y' = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:1 ()) x y');
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:2 ()) x' y');
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  check "model" true (Swarm.Rule.models [ rule ] g);
  let stats = Swarm.Rule.chase ~max_stages:3 [ rule ] g in
  check "fixpoint immediately" true stats.Swarm.Rule.fixpoint;
  check_int "no new edges" 4 (Swarm.Graph.size g)

(* Footnote 10 at Level 1: from a swarm 1-2 pattern, the three base rules
   of Precompile produce the full red spider in three steps. *)
let test_footnote10_level1 () =
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  let stats =
    Swarm.Rule.chase ~max_stages:5 ~stop:Swarm.Graph.has_full_red
      Greengraph.Precompile.base_rules g
  in
  check "full red spider reached" true (Swarm.Graph.has_full_red g);
  check "in three stages" true (stats.Swarm.Rule.stages <= 3)

(* Footnote 10 at Level 0, through Compile: the same bootstrap holds for
   the TGDs of the compiled binary queries. *)
let test_footnote10_level0 () =
  let ctx = Spider.Ctx.create 4 in
  let st = Relational.Structure.create () in
  let x = Relational.Structure.fresh st and x' = Relational.Structure.fresh st in
  let y = Relational.Structure.fresh st in
  ignore (Spider.Real.realize ctx st ~tail:x ~antenna:y (Spider.Ideal.green ~upper:1 ()));
  ignore (Spider.Real.realize ctx st ~tail:x' ~antenna:y (Spider.Ideal.green ~upper:2 ()));
  let tgds =
    Spider.Query.tgds_of_binaries ctx
      (Swarm.Rule.compile_set Greengraph.Precompile.base_rules)
  in
  let has_full_red st =
    List.exists
      (fun (r : Spider.Real.t) ->
        Spider.Ideal.equal r.Spider.Real.ideal Spider.Ideal.full_red)
      (Spider.Real.find_all ctx st)
  in
  let _ = Tgd.Chase.run ~max_stages:5 ~stop:has_full_red tgds st in
  check "full red spider at Level 0" true (has_full_red st)

(* --- compile / decompile ----------------------------------------------- *)

let mk_model_swarm () =
  (* the 4-edge model of {f^1_1 &· f^2_2} used in several tests *)
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g and y' = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:1 ()) x y');
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.red ~lower:2 ()) x' y');
  g

let test_lemma30_roundtrip () =
  (* decompile(compile(D)) = D *)
  let ctx = Spider.Ctx.create 3 in
  let g = mk_model_swarm () in
  let st = Swarm.Compile.compile ctx g in
  let g' = Swarm.Compile.decompile ctx st in
  check "Lemma 30" true (Swarm.Graph.equal g g')

let test_lemma30_random =
  QCheck.Test.make ~name:"Lemma 30 on random swarms" ~count:30
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (triple (int_bound 5) (int_bound 5)
           (pair (oneofl [ None; Some 1; Some 2; Some 3 ])
              (oneofl [ None; Some 1; Some 2; Some 3 ]))))
    (fun edges ->
      let ctx = Spider.Ctx.create 3 in
      let g = Swarm.Graph.create () in
      let colors = [ Relational.Symbol.Green; Relational.Symbol.Red ] in
      List.iteri
        (fun i (src, dst, (u, l)) ->
          let base = List.nth colors (i mod 2) in
          ignore
            (Swarm.Graph.add_edge g (Spider.Ideal.make ?upper:u ?lower:l base) src dst))
        edges;
      let st = Swarm.Compile.compile ctx g in
      Swarm.Graph.equal g (Swarm.Compile.decompile ctx st))

let test_lemma27_model_transfer () =
  (* D ⊨ T at Level 1 ⟹ compile(D) ⊨ Compile(T) at Level 0 *)
  let ctx = Spider.Ctx.create 3 in
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  let g = mk_model_swarm () in
  check "swarm is a model" true (Swarm.Rule.models [ rule ] g);
  let st = Swarm.Compile.compile ctx g in
  let tgds = Spider.Query.tgds_of_binaries ctx [ Swarm.Rule.compile rule ] in
  check "compiled structure is a model (Lemma 27)" true (Tgd.Chase.models tgds st)

let test_lemma27_negative () =
  (* dropping the witnesses breaks both sides coherently *)
  let ctx = Spider.Ctx.create 3 in
  let rule = Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ()) in
  let g = Swarm.Graph.create () in
  let x = Swarm.Graph.fresh g and x' = Swarm.Graph.fresh g in
  let y = Swarm.Graph.fresh g in
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:1 ()) x y);
  ignore (Swarm.Graph.add_edge g (Spider.Ideal.green ~upper:2 ()) x' y);
  check "swarm not a model" false (Swarm.Rule.models [ rule ] g);
  let st = Swarm.Compile.compile ctx g in
  let tgds = Spider.Query.tgds_of_binaries ctx [ Swarm.Rule.compile rule ] in
  check "compiled structure not a model" false (Tgd.Chase.models tgds st)

(* --- green graphs ------------------------------------------------------ *)

let test_12_pattern () =
  let g = Greengraph.Graph.create () in
  let a = Greengraph.Graph.fresh g
  and a' = Greengraph.Graph.fresh g
  and b = Greengraph.Graph.fresh g in
  check "no pattern yet" false (Greengraph.Graph.has_12_pattern g);
  ignore (Greengraph.Graph.add_edge g (Some 1) a b);
  ignore (Greengraph.Graph.add_edge g (Some 2) a' b);
  check "pattern found" true (Greengraph.Graph.has_12_pattern g);
  check "witness" true (Option.is_some (Greengraph.Graph.find_12_pattern g))

let test_green_rule_equivalence_both_directions () =
  (* rule ∅&··∅ ] 5&··6 fires right-to-left too *)
  let r = Greengraph.Rule.amp (None, None) (Some 5, Some 6) in
  let g = Greengraph.Graph.create () in
  let x = Greengraph.Graph.fresh g and x' = Greengraph.Graph.fresh g in
  let y = Greengraph.Graph.fresh g in
  ignore (Greengraph.Graph.add_edge g (Some 5) x y);
  ignore (Greengraph.Graph.add_edge g (Some 6) x' y);
  let stats = Greengraph.Rule.chase ~max_stages:1 [ r ] g in
  check "fired" true (stats.Greengraph.Rule.applications >= 1);
  check "∅ edge from x" true
    (List.exists
       (fun (e : Greengraph.Graph.edge) ->
         e.Greengraph.Graph.label = None && e.Greengraph.Graph.src = x)
       (Greengraph.Graph.edges g))

let test_reserved_labels_rejected () =
  Alcotest.check_raises "label 3 rejected"
    (Invalid_argument "green-graph label 3 is reserved") (fun () ->
      ignore (Greengraph.Rule.amp (Some 3, None) (Some 5, Some 6)))

(* Remark 10: the two swarm rules produced by Precompile for a green rule
   simulate one green-graph rewriting in two steps (plus red by-products). *)
let test_remark10_simulation () =
  let r = Greengraph.Rule.amp ~name:"r" (Some 5, Some 6) (Some 7, Some 8) in
  (* green graph: lhs pair at shared target *)
  let gg = Greengraph.Graph.create () in
  let x = Greengraph.Graph.fresh gg and x' = Greengraph.Graph.fresh gg in
  let y = Greengraph.Graph.fresh gg in
  ignore (Greengraph.Graph.add_edge gg (Some 5) x y);
  ignore (Greengraph.Graph.add_edge gg (Some 6) x' y);
  let gg2 = Greengraph.Graph.copy gg in
  ignore (Greengraph.Rule.chase ~max_stages:1 [ r ] gg2);
  (* swarm side: precompiled rules on the swarm view *)
  let sw = Greengraph.Graph.to_swarm gg in
  let rules = Greengraph.Precompile.precompile [ r ] in
  ignore (Swarm.Rule.chase ~max_stages:2 rules sw);
  (* after two swarm stages the rhs pair (7,8) exists in the deprecompiled
     green graph, anchored at x and x' *)
  let back = Greengraph.Graph.of_swarm sw in
  let has lab src =
    List.exists
      (fun (e : Greengraph.Graph.edge) ->
        e.Greengraph.Graph.label = lab && e.Greengraph.Graph.src = src)
      (Greengraph.Graph.edges back)
  in
  check "I^7 at x" true (has (Some 7) x);
  check "I^8 at x'" true (has (Some 8) x');
  (* and the red by-products exist in the swarm *)
  check "red by-product H_5" true
    (Swarm.Graph.with_label sw (Spider.Ideal.red ~lower:5 ()) <> []);
  (* matching the green-graph chase *)
  let gg_has lab src =
    List.exists
      (fun (e : Greengraph.Graph.edge) ->
        e.Greengraph.Graph.label = lab && e.Greengraph.Graph.src = src)
      (Greengraph.Graph.edges gg2)
  in
  check "green chase also has I^7 at x" true (gg_has (Some 7) x)

let test_precompile_shape () =
  let r1 = Greengraph.Rule.amp (Some 5, Some 6) (Some 7, Some 8) in
  let r2 = Greengraph.Rule.slash (Some 5, None) (Some 6, Some 8) in
  let rules = Greengraph.Precompile.precompile [ r1; r2 ] in
  (* 3 base + 2 per rule *)
  check_int "rule count" (3 + 4) (List.length rules);
  check_int "required s" ((2 * 3) + 2) (Greengraph.Precompile.required_s [ r1; r2 ])

let test_pipeline_to_level0 () =
  let r = Greengraph.Rule.amp (Some 5, Some 6) (Some 7, Some 8) in
  let p = Greengraph.Precompile.to_level0 [ r ] in
  check_int "five binaries" 5 (List.length p.Greengraph.Precompile.binaries);
  check_int "ten TGDs" 10 (List.length p.Greengraph.Precompile.tgds);
  check_int "five queries" 5 (List.length p.Greengraph.Precompile.queries)

(* --- parity glasses ----------------------------------------------------- *)

let test_pg_words () =
  (* a tiny green graph: H∅(a,b), H5(a,c) [even: kept a→c],
     H7(d,c) [odd: reversed to c→d] — word 5.7 from a to d *)
  let g = Greengraph.Graph.create () in
  let a = Greengraph.Graph.fresh ~name:"a" g in
  let b = Greengraph.Graph.fresh ~name:"b" g in
  let c = Greengraph.Graph.fresh g and d = Greengraph.Graph.fresh g in
  ignore (Greengraph.Graph.add_edge g None a b);
  ignore (Greengraph.Graph.add_edge g (Some 6) a c);
  ignore (Greengraph.Graph.add_edge g (Some 7) d c);
  check "6.7 path a→d" true (Greengraph.Pg.in_paths g ~s:a ~t:d [ 6; 7 ]);
  check "∅ edges dropped" false (Greengraph.Pg.in_paths g ~s:a ~t:b []);
  check "prefix condition" false (Greengraph.Pg.in_paths g ~s:a ~t:c [ 6; 7 ])

let test_pg_prefix_rejection () =
  (* a loop back to a: word w accepted, but w.w rejected because the
     proper prefix w already hits the target *)
  let g = Greengraph.Graph.create () in
  let a = Greengraph.Graph.fresh g in
  let m = Greengraph.Graph.fresh g in
  ignore (Greengraph.Graph.add_edge g (Some 6) a m);
  ignore (Greengraph.Graph.add_edge g (Some 8) m a);
  check "6.8 in paths(a,a)" true (Greengraph.Pg.in_paths g ~s:a ~t:a [ 6; 8 ]);
  check "6.8.6.8 rejected" false
    (Greengraph.Pg.in_paths g ~s:a ~t:a [ 6; 8; 6; 8 ])

let test_alpha_beta_word () =
  check "αβ word" true
    (Greengraph.Pg.is_alpha_beta_word ~alpha:6 ~beta0:8 ~beta1:7 [ 6; 7; 8; 7; 8 ]);
  check "not αβ word" false
    (Greengraph.Pg.is_alpha_beta_word ~alpha:6 ~beta0:8 ~beta1:7 [ 6; 8 ])

let () =
  Alcotest.run "levels"
    [
      ( "swarm",
        [
          Alcotest.test_case "rule fires" `Quick test_swarm_rule_fires;
          Alcotest.test_case "rule lazy on models" `Quick test_swarm_rule_lazy;
          Alcotest.test_case "footnote 10 at Level 1" `Quick test_footnote10_level1;
          Alcotest.test_case "footnote 10 at Level 0" `Quick test_footnote10_level0;
        ] );
      ( "compile",
        [
          Alcotest.test_case "Lemma 30 roundtrip" `Quick test_lemma30_roundtrip;
          Alcotest.test_case "Lemma 27 transfer" `Quick test_lemma27_model_transfer;
          Alcotest.test_case "Lemma 27 negative" `Quick test_lemma27_negative;
        ] );
      ( "greengraph",
        [
          Alcotest.test_case "1-2 pattern" `Quick test_12_pattern;
          Alcotest.test_case "equivalence both directions" `Quick
            test_green_rule_equivalence_both_directions;
          Alcotest.test_case "reserved labels" `Quick test_reserved_labels_rejected;
          Alcotest.test_case "Remark 10 simulation" `Quick test_remark10_simulation;
          Alcotest.test_case "precompile shape" `Quick test_precompile_shape;
          Alcotest.test_case "pipeline to Level 0" `Quick test_pipeline_to_level0;
        ] );
      ( "parity-glasses",
        [
          Alcotest.test_case "words" `Quick test_pg_words;
          Alcotest.test_case "prefix rejection" `Quick test_pg_prefix_rejection;
          Alcotest.test_case "αβ words" `Quick test_alpha_beta_word;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ test_lemma30_random ] );
    ]
