(* redspiderd: the wire JSON codec, job manifests, the on-disk store,
   and a live daemon — submit/wait round-trips, quantum preemption with
   bit-identical resume, concurrent clients, graceful drain, and
   daemon-restart recovery from the job store. *)

open Serve

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te\x01f");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ]);
      ]
  in
  check "print/parse round-trips" true (Json.parse (Json.to_string v) = Ok v);
  check "unicode escape decodes to UTF-8" true
    (Json.parse {|"éA"|} = Ok (Json.String "\xc3\xa9A"));
  check "whitespace tolerated" true
    (Json.parse " { \"a\" : [ 1 , 2 ] } "
    = Ok (Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]));
  check "trailing garbage rejected" true
    (match Json.parse "{} x" with Error _ -> true | Ok _ -> false);
  check "truncated rejected" true
    (match Json.parse "{\"a\": [1," with Error _ -> true | Ok _ -> false);
  check "floats survive" true
    (match Json.parse "[0.25, 2e3]" with
    | Ok (Json.List [ Json.Float a; Json.Float b ]) -> a = 0.25 && b = 2000.
    | _ -> false)

let test_json_surrogates () =
  (* a surrogate pair decodes to ONE 4-byte UTF-8 code point (U+1F600),
     not to two 3-byte encodings of the surrogate halves *)
  check "surrogate pair recombines" true
    (Json.parse {|"\ud83d\ude00"|} = Ok (Json.String "\xf0\x9f\x98\x80"));
  check "first astral scalar U+10000 decodes" true
    (Json.parse {|"\ud800\udc00"|} = Ok (Json.String "\xf0\x90\x80\x80"));
  check "last scalar U+10FFFF decodes" true
    (Json.parse {|"\udbff\udfff"|} = Ok (Json.String "\xf4\x8f\xbf\xbf"));
  (* the printer passes raw UTF-8 through, so parse·print·parse is the
     identity on non-BMP text *)
  let v = Json.Obj [ ("emoji", Json.String "\xf0\x9f\x98\x80 ok") ] in
  check "non-BMP print/parse round-trips" true
    (Json.parse (Json.to_string v) = Ok v);
  (* surrogate halves on their own are malformed JSON *)
  List.iter
    (fun s ->
      check (Printf.sprintf "%s rejected" s) true
        (match Json.parse s with Error _ -> true | Ok _ -> false))
    [
      {|"\ud83d"|} (* lone high *);
      {|"\ude00"|} (* lone low *);
      {|"\ud83dx"|} (* high chased by a raw char *);
      {|"\ud83d\n"|} (* high chased by a non-u escape *);
      {|"\ud83d\ud83d"|} (* high chased by another high *);
      {|"\ud83dA"|} (* high chased by a BMP scalar *);
    ]

let divergent_views =
  [
    ("p2", "p2(x,y) :- E(x,m), E(m,y)");
    ("p3", "p3(x,y) :- E(x,m), E(m,n), E(n,y)");
  ]

let divergent_q0 = "q0(x,y) :- E(x,a), E(a,b), E(b,c), E(c,y)"

let divergent_spec stages =
  Job.Chase
    { views = divergent_views; q0 = divergent_q0; max_stages = stages;
      engine = `Seminaive }

let test_spec_roundtrip () =
  let specs =
    [
      divergent_spec 9;
      Job.Determinacy
        { views = divergent_views; q0 = divergent_q0; max_stages = 16;
          engine = `Par };
      Job.Worm { machine = "creeper"; steps = 77 };
      Job.Audit { seed = 5; cases = 12; max_stages = 3; family = "incr"; from_case = 4 };
      Job.Mutate
        {
          instance = "i1";
          views = divergent_views;
          q0 = divergent_q0;
          ops =
            [
              { Job.add = false; rel = "E"; args = [ 0; 1 ] };
              { Job.add = true; rel = "E"; args = [ 4; -1 ] };
            ];
          max_stages = 16;
          engine = `Par;
        };
    ]
  in
  List.iter
    (fun spec ->
      check "spec json round-trips" true
        (Job.spec_of_json (Job.spec_to_json spec) = Ok spec))
    specs;
  check "unknown kind rejected" true
    (match Job.spec_of_json (Json.Obj [ ("kind", Json.String "frobnicate") ]) with
    | Error _ -> true
    | Ok _ -> false);
  check "malformed rule rejected at validate" true
    (match
       Job.validate
         (Job.Chase
            { views = [ ("v", "not a rule") ]; q0 = divergent_q0;
              max_stages = 4; engine = `Seminaive })
     with
    | Error _ -> true
    | Ok () -> false);
  check "unknown machine rejected at validate" true
    (match Job.validate (Job.Worm { machine = "nope"; steps = 5 }) with
    | Error _ -> true
    | Ok () -> false);
  check "anonymous mutate instance rejected at validate" true
    (match
       Job.validate
         (Job.Mutate
            { instance = ""; views = divergent_views; q0 = divergent_q0;
              ops = []; max_stages = 4; engine = `Seminaive })
     with
    | Error _ -> true
    | Ok () -> false);
  check "non-incremental mutate engine rejected at validate" true
    (match
       Job.validate
         (Job.Mutate
            { instance = "i"; views = divergent_views; q0 = divergent_q0;
              ops = []; max_stages = 4; engine = `Oblivious })
     with
    | Error _ -> true
    | Ok () -> false)

let test_manifest_roundtrip () =
  let job = Job.make ~seq:7 ~quantum:2 (divergent_spec 9) in
  job.Job.state <-
    Job.Done
      {
        Job.outcome = "fixpoint";
        exit_code = 0;
        digest = "abc";
        detail = [ ("stages", Json.Int 3) ];
      };
  job.Job.slices <- 4;
  job.Job.stages_done <- 9;
  job.Job.applications <- 123;
  match Job.manifest_of_json (Job.manifest_json job) with
  | Error m -> Alcotest.failf "manifest: %s" m
  | Ok j' ->
      check_str "id survives" job.Job.id j'.Job.id;
      check_int "seq survives" job.Job.seq j'.Job.seq;
      check "spec survives" true (j'.Job.spec = job.Job.spec);
      check "state survives" true (j'.Job.state = job.Job.state);
      check_int "slices survive" job.Job.slices j'.Job.slices;
      check_int "stages survive" job.Job.stages_done j'.Job.stages_done;
      check "quantum override survives" true
        (j'.Job.quantum_override = Some 2)

(* --- store -------------------------------------------------------------- *)

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let counter = ref 0

let fresh_dir () =
  incr counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "redspider-test-store-%d-%d" (Unix.getpid ()) !counter)
  in
  rm_rf d;
  d

let test_store_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Store.open_ dir in
      let mk seq spec = Job.make ~seq spec in
      let jobs =
        [
          mk 2 (Job.Worm { machine = "creeper"; steps = 10 });
          mk 1 (divergent_spec 9);
          mk 3 (Job.Audit { seed = 1; cases = 2; max_stages = 2; family = "audit"; from_case = 0 });
        ]
      in
      List.iter
        (fun j ->
          check "manifest saved" true (Store.save_manifest store j = Ok ()))
        jobs;
      (* one corrupt manifest must not take recovery down *)
      Out_channel.with_open_bin (Filename.concat dir "zz9999.job") (fun oc ->
          Out_channel.output_string oc "{ not json");
      let loaded, bad = Store.load_all store in
      check_int "all good manifests load" 3 (List.length loaded);
      check_int "the corrupt one is reported" 1 (List.length bad);
      check "sorted by seq" true
        (List.map (fun (j : Job.t) -> j.Job.seq) loaded = [ 1; 2; 3 ]);
      check_int "next_seq is max+1" 4 (Store.next_seq loaded);
      check "no checkpoint yet" false (Store.has_checkpoint store "j000001");
      Store.remove_checkpoint store "j000001" (* no-op, must not raise *);
      (* the orphan sweep: a checkpoint without a live owner goes, one
         with a live owner stays *)
      let plant id =
        Out_channel.with_open_bin (Store.ckpt_path store id) (fun oc ->
            Out_channel.output_string oc "snapshot bytes")
      in
      plant "j000001";
      plant "j999999" (* no manifest at all *);
      let swept =
        List.sort compare
          (Store.sweep_checkpoints store ~keep:(fun id -> id = "j000001"))
      in
      check "only the orphan is swept" true (swept = [ "j999999" ]);
      check "kept checkpoint survives the sweep" true
        (Store.has_checkpoint store "j000001");
      check "orphan checkpoint is gone" false
        (Store.has_checkpoint store "j999999"))

(* --- live daemon harness ------------------------------------------------ *)

let fresh_socket () =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rs-t-%d-%d.sock" (Unix.getpid ()) !counter)

let start_daemon ~socket ~store_dir ~workers ~quantum ?(cache = 512)
    ?(cache_persist = true) ?(read_deadline_s = 60.) ?(max_frame = 1 lsl 20)
    () =
  let cfg =
    {
      Server.socket;
      tcp_port = None;
      workers;
      quantum = { Runner.stages = quantum; seconds = 0. };
      store_dir;
      cache_capacity = cache;
      cache_persist;
      read_deadline_s;
      max_frame;
      log = false;
    }
  in
  let d = Domain.spawn (fun () -> Server.serve cfg) in
  let rec await n =
    if not (Sys.file_exists socket) then
      if n = 0 then Alcotest.fail "daemon did not come up"
      else begin
        Unix.sleepf 0.02;
        await (n - 1)
      end
  in
  await 250;
  d

let connect socket =
  match Client.connect ~socket () with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let drain_and_join socket daemon =
  (match Client.connect ~socket () with
  | Ok c ->
      ignore (Client.drain c);
      Client.close c
  | Error _ -> ());
  Domain.join daemon

let with_daemon ?(workers = 2) ?(quantum = 2) ?(cache = 512) ?store_dir f =
  let socket = fresh_socket () in
  let store_dir = match store_dir with Some d -> d | None -> fresh_dir () in
  let daemon = start_daemon ~socket ~store_dir ~workers ~quantum ~cache () in
  Fun.protect
    ~finally:(fun () ->
      drain_and_join socket daemon;
      rm_rf store_dir)
    (fun () -> f socket)

let ok_or_fail what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let job_field j k = Json.mem_str k j
let job_int j k = Option.value ~default:(-1) (Json.mem_int k j)

let job_digest j =
  Option.value ~default:""
    (Option.bind (Json.member "result" j) (Json.mem_str "digest"))

(* The uninterrupted governed reference run, in-process. *)
let uninterrupted stages =
  let views, q0 =
    ok_or_fail "parse" (Job.parse_rules divergent_views divergent_q0)
  in
  let deps = Tgd.Dep.t_q views in
  let d = fst (Tgd.Greenred.green_canonical q0) in
  let stats = Tgd.Chase.run ~engine:`Seminaive ~max_stages:stages deps d in
  (stats, Job.structure_digest d)

(* --- live tests --------------------------------------------------------- *)

let test_submit_wait () =
  with_daemon (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          ignore (ok_or_fail "ping" (Client.ping conn));
          let worm =
            ok_or_fail "submit worm"
              (Client.submit conn (Job.Worm { machine = "halt-now"; steps = 50 }))
          in
          let audit =
            ok_or_fail "submit audit"
              (Client.submit conn (Job.Audit { seed = 42; cases = 5; max_stages = 3; family = "audit"; from_case = 0 }))
          in
          let jw = ok_or_fail "wait worm" (Client.wait_terminal conn worm) in
          let ja = ok_or_fail "wait audit" (Client.wait_terminal conn audit) in
          check "worm done" true (job_field jw "state" = Some "done");
          check "worm halted at fixpoint" true
            (Option.bind (Json.member "result" jw) (Json.mem_str "outcome")
            = Some "fixpoint");
          check "audit done" true (job_field ja "state" = Some "done");
          let stats = ok_or_fail "stats" (Client.stats conn) in
          check "stats counts jobs" true
            (Option.bind (Json.member "counts" stats) (Json.mem_int "done")
            = Some 2);
          check "stats carries metrics" true
            (Json.member "metrics" stats <> None);
          (* submit-side validation is synchronous *)
          check "bad rule refused at submit" true
            (match
               Client.submit conn
                 (Job.Chase
                    { views = [ ("v", "nonsense") ]; q0 = divergent_q0;
                      max_stages = 4; engine = `Seminaive })
             with
            | Error _ -> true
            | Ok _ -> false)))

let test_preemption_bit_identity () =
  let stages = 9 in
  let ref_stats, ref_digest = uninterrupted stages in
  with_daemon ~workers:2 ~quantum:2 (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let id =
            ok_or_fail "submit" (Client.submit conn (divergent_spec stages))
          in
          (* short jobs keep completing around the preempted chase *)
          let shorts =
            List.init 3 (fun _ ->
                ok_or_fail "submit short"
                  (Client.submit conn (Job.Worm { machine = "halt-now"; steps = 50 })))
          in
          let j = ok_or_fail "wait" (Client.wait_terminal conn id) in
          check "divergent job done" true (job_field j "state" = Some "done");
          check "preempted into several slices" true (job_int j "slices" >= 3);
          check_int "all stages ran" stages (job_int j "stages_done");
          check_str "resumed structure digest = uninterrupted digest"
            ref_digest (job_digest j);
          check_int "applications agree with the uninterrupted run"
            ref_stats.Tgd.Chase.applications
            (job_int j "applications");
          (* the three shorts are identical submissions: exactly one
             executes (one slice); the others are answered by the cache
             — coalesced behind it or served from its entry — at zero
             slices, with the identical result *)
          let short_digests =
            List.map
              (fun sid ->
                let js =
                  ok_or_fail "wait short" (Client.wait_terminal conn sid)
                in
                check "short job done" true (job_field js "state" = Some "done");
                check "short job took at most one slice" true
                  (job_int js "slices" <= 1);
                job_digest js)
              shorts
          in
          (match short_digests with
          | d :: rest ->
              check "duplicate shorts all carry the identical digest" true
                (List.for_all (String.equal d) rest)
          | [] -> ())))

let test_concurrent_clients () =
  with_daemon ~workers:4 ~quantum:2 (fun socket ->
      let session i =
        let conn = connect socket in
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let spec =
              if i mod 2 = 0 then Job.Worm { machine = "creeper"; steps = 60 }
              else
                Job.Chase
                  { views = [ ("p2", "p2(x,y) :- E(x,m), E(m,y)") ];
                    q0 = "q0(x,y) :- E(x,a), E(a,b), E(b,y)";
                    max_stages = 8; engine = `Seminaive }
            in
            let id = ok_or_fail "submit" (Client.submit conn spec) in
            let j = ok_or_fail "wait" (Client.wait_terminal conn id) in
            job_field j "state" = Some "done")
      in
      let doms = Array.init 8 (fun i -> Domain.spawn (fun () -> session i)) in
      let oks = Array.map Domain.join doms in
      check "8 concurrent clients all served" true
        (Array.for_all (fun b -> b) oks))

let test_drain_restart_recovery () =
  let stages = 12 in
  let _, ref_digest = uninterrupted stages in
  let store_dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf store_dir)
    (fun () ->
      (* first daemon: get the divergent job preempted at least once,
         then drain mid-job *)
      let socket = fresh_socket () in
      let daemon =
        start_daemon ~socket ~store_dir ~workers:2 ~quantum:1 ()
      in
      let conn = connect socket in
      let id = ok_or_fail "submit" (Client.submit conn (divergent_spec stages)) in
      let rec await_progress n =
        if n = 0 then Alcotest.fail "job never progressed"
        else
          let j =
            ok_or_fail "status"
              (Result.bind (Client.status conn id) Client.job_of_reply)
          in
          if job_int j "slices" < 1 then begin
            Unix.sleepf 0.02;
            await_progress (n - 1)
          end
      in
      await_progress 500;
      ignore (ok_or_fail "drain" (Client.drain conn));
      Client.close conn;
      Domain.join daemon;
      check "socket removed on drain" false (Sys.file_exists socket);
      (* the job survived as durable state *)
      let store = Store.open_ store_dir in
      let loaded, bad = Store.load_all store in
      check_int "no manifest corrupted by drain" 0 (List.length bad);
      check "job manifest persisted" true
        (List.exists (fun (j : Job.t) -> j.Job.id = id) loaded);
      let persisted =
        List.find (fun (j : Job.t) -> j.Job.id = id) loaded
      in
      check "job is resumable, not terminal" false (Job.terminal persisted);
      (* second daemon on the same store finishes it *)
      let socket2 = fresh_socket () in
      let daemon2 =
        start_daemon ~socket:socket2 ~store_dir ~workers:2 ~quantum:4 ()
      in
      Fun.protect
        ~finally:(fun () -> drain_and_join socket2 daemon2)
        (fun () ->
          let conn2 = connect socket2 in
          Fun.protect
            ~finally:(fun () -> Client.close conn2)
            (fun () ->
              let j = ok_or_fail "wait" (Client.wait_terminal conn2 id) in
              check "recovered job completes" true
                (job_field j "state" = Some "done");
              check_int "absolute stage count preserved" stages
                (job_int j "stages_done");
              check_str "digest across daemon restart = uninterrupted"
                ref_digest (job_digest j)));
      (* the suspend checkpoint must not outlive the finished job: after
         the second daemon completed it and drained, the store holds
         manifests only *)
      let leaked =
        List.filter
          (fun f -> Filename.check_suffix f ".ckpt")
          (Array.to_list (Sys.readdir store_dir))
      in
      check_int "no checkpoint leaked across drain + restart + completion" 0
        (List.length leaked))

(* --- mutate jobs -------------------------------------------------------- *)

(* A terminating multi-stage workload: composing the path views makes the
   initial chase take several stages, so a 1-stage quantum preempts it. *)
let mutate_views =
  [
    ("p2", "p2(x,y) :- E(x,m), E(m,y)");
    ("p4", "p4(x,y) :- p2(x,m), p2(m,y)");
  ]

let mutate_q0 = "q0(x,y) :- E(x,a), E(a,b), E(b,c), E(c,y)"

let mutate_spec ~instance ops =
  Job.Mutate
    { instance; views = mutate_views; q0 = mutate_q0; ops; max_stages = 64;
      engine = `Seminaive }

let test_mutate_jobs () =
  (* the in-process reference: the same maintained instance, the same
     edits in submission order — the daemon result must be bit-identical
     (same digest), because the maintenance path is deterministic *)
  let views, q0 = ok_or_fail "parse" (Job.parse_rules mutate_views mutate_q0) in
  let deps = Tgd.Dep.t_q views in
  let base = fst (Tgd.Greenred.green_canonical q0) in
  let m, _ = Tgd.Chase.Maint.create ~engine:`Seminaive ~jobs:1 deps base in
  let ge = Relational.Symbol.make ~color:Relational.Symbol.Green "E" 2 in
  let edge =
    List.hd
      (List.sort Relational.Fact.compare
         (Relational.Structure.facts_with_sym (Tgd.Chase.Maint.structure m) ge))
  in
  let a = (Relational.Fact.args edge).(0)
  and b = (Relational.Fact.args edge).(1) in
  let digest_after ops =
    ignore (Tgd.Chase.Maint.apply_edit m ops);
    check "reference maintenance is at fixpoint" false
      (Tgd.Chase.Maint.pending m);
    Job.structure_digest (Tgd.Chase.Maint.structure m)
  in
  let d1 = digest_after [ Tgd.Chase.Maint.Retract edge ] in
  let d2 = digest_after [ Tgd.Chase.Maint.Insert edge ] in
  with_daemon ~workers:2 ~quantum:1 (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* both jobs drive the same held instance; the scheduler must
             serialize them in submission order even with 2 workers *)
          let j1 =
            ok_or_fail "submit mutate 1"
              (Client.submit conn
                 (mutate_spec ~instance:"i1"
                    [ { Job.add = false; rel = "E"; args = [ a; b ] } ]))
          in
          let j2 =
            ok_or_fail "submit mutate 2"
              (Client.submit conn
                 (mutate_spec ~instance:"i1"
                    [ { Job.add = true; rel = "E"; args = [ a; b ] } ]))
          in
          let r1 = ok_or_fail "wait mutate 1" (Client.wait_terminal conn j1) in
          let r2 = ok_or_fail "wait mutate 2" (Client.wait_terminal conn j2) in
          check "mutate 1 done" true (job_field r1 "state" = Some "done");
          check "mutate 2 done" true (job_field r2 "state" = Some "done");
          let applied r =
            Option.bind (Json.member "result" r) (Json.mem_bool "applied")
          in
          check "edit 1 went through the maintenance path" true
            (applied r1 = Some true);
          check "edit 2 went through the maintenance path" true
            (applied r2 = Some true);
          (* quantum 1 on a multi-stage initial chase: preempted, and the
             suspended state lived in daemon memory, not in a .ckpt *)
          check "first mutate preempted into several slices" true
            (job_int r1 "slices" >= 2);
          check_str "maintained digest after edit 1 = reference"
            d1 (job_digest r1);
          check_str "maintained digest after edit 2 = reference"
            d2 (job_digest r2);
          (* the second job rode the held instance: its stage counter
             continues the instance's absolute numbering instead of
             restarting at a fresh create (and its digest above encodes
             job 1's retraction in the journal history, which a
             re-chase from scratch could not reproduce) *)
          check "second mutate continued the held instance's stages" true
            (job_int r2 "stages_done" >= job_int r1 "stages_done")))

(* --- result cache ------------------------------------------------------- *)

let cache_int stats k =
  Option.value ~default:(-1)
    (Option.bind (Json.member "cache" stats) (Json.mem_int k))

let test_cache_hit_and_coalesce () =
  let stages = 9 in
  let ref_stats, ref_digest = uninterrupted stages in
  with_daemon ~workers:2 ~quantum:2 (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (* one pipelined batch of identical chases: one primary
             executes (preempted several times at quantum 2), the rest
             coalesce behind it or hit its entry — all four must carry
             the bit-identical result *)
          let ids =
            ok_or_fail "submit batch"
              (Client.submit_many conn
                 (List.init 4 (fun _ -> divergent_spec stages)))
          in
          let js =
            List.map
              (fun id -> ok_or_fail "wait" (Client.wait_terminal conn id))
              ids
          in
          List.iter
            (fun j ->
              check "duplicate done" true (job_field j "state" = Some "done");
              check_str "digest = uninterrupted reference" ref_digest
                (job_digest j);
              check_int "stage counter replayed" stages (job_int j "stages_done");
              check_int "applications replayed"
                ref_stats.Tgd.Chase.applications
                (job_int j "applications"))
            js;
          let executed = List.filter (fun j -> job_int j "slices" > 0) js in
          check_int "exactly one of four duplicates executed" 1
            (List.length executed);
          check "the one that executed was preempted" true
            (List.for_all (fun j -> job_int j "slices" >= 3) executed);
          let stats = ok_or_fail "stats" (Client.stats conn) in
          check "at least the primary missed" true (cache_int stats "misses" >= 1);
          check_int "three duplicates answered without running" 3
            (cache_int stats "hits" + cache_int stats "coalesced");
          check "entry table populated" true (cache_int stats "entries" >= 1);
          (* the key excludes the engine: the engines are proven
             bit-identical, so a [`Par] submission is served by the
             [`Seminaive] entry *)
          let id_par =
            ok_or_fail "submit par duplicate"
              (Client.submit conn
                 (Job.Chase
                    { views = divergent_views; q0 = divergent_q0;
                      max_stages = stages; engine = `Par }))
          in
          let j_par =
            ok_or_fail "wait par duplicate" (Client.wait_terminal conn id_par)
          in
          check_int "cross-engine duplicate served at zero slices" 0
            (job_int j_par "slices");
          check_str "cross-engine duplicate digest identical" ref_digest
            (job_digest j_par)))

let test_mutate_read_invalidation () =
  (* pick a base edge of the canonical instance, exactly as the daemon
     will build it (bit-identity makes the element ids line up) *)
  let views, q0 = ok_or_fail "parse" (Job.parse_rules mutate_views mutate_q0) in
  let deps = Tgd.Dep.t_q views in
  let base = fst (Tgd.Greenred.green_canonical q0) in
  let m, _ = Tgd.Chase.Maint.create ~engine:`Seminaive ~jobs:1 deps base in
  let ge = Relational.Symbol.make ~color:Relational.Symbol.Green "E" 2 in
  let edge =
    List.hd
      (List.sort Relational.Fact.compare
         (Relational.Structure.facts_with_sym (Tgd.Chase.Maint.structure m) ge))
  in
  let a = (Relational.Fact.args edge).(0)
  and b = (Relational.Fact.args edge).(1) in
  with_daemon ~workers:2 ~quantum:4 (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let run spec =
            let id = ok_or_fail "submit" (Client.submit conn spec) in
            let j = ok_or_fail "wait" (Client.wait_terminal conn id) in
            check "job done" true (job_field j "state" = Some "done");
            j
          in
          let read = mutate_spec ~instance:"m" [] in
          let r0 = run read in
          let d0 = job_digest r0 in
          check "first read executed" true (job_int r0 "slices" >= 1);
          (* identical read, instance untouched: cache hit *)
          let r1 = run read in
          check_int "unedited re-read served at zero slices" 0
            (job_int r1 "slices");
          check_str "unedited re-read digest identical" d0 (job_digest r1);
          (* commit an edit: the instance version moves on *)
          let re =
            run
              (mutate_spec ~instance:"m"
                 [ { Job.add = false; rel = "E"; args = [ a; b ] } ])
          in
          check "edit went through the maintenance path" true
            (Option.bind (Json.member "result" re) (Json.mem_bool "applied")
            = Some true);
          (* the same read after the edit must MISS — never the stale
             digest — and observe the retraction in the journal *)
          let r2 = run read in
          check "post-edit re-read executed (stale entry not served)" true
            (job_int r2 "slices" >= 1);
          check "post-edit digest differs from the stale entry" true
            (job_digest r2 <> d0)))

let test_cache_persistence_restart () =
  let stages = 12 in
  let _, ref_digest = uninterrupted stages in
  let store_dir = fresh_dir () in
  let res_count () =
    List.length
      (List.filter
         (fun f -> Filename.check_suffix f ".res")
         (Array.to_list (Sys.readdir store_dir)))
  in
  Fun.protect
    ~finally:(fun () -> rm_rf store_dir)
    (fun () ->
      (* daemon 1: a finished worm persists its entry; a duplicate chase
         pair is drained with the primary suspended mid-flight and the
         follower still parked *)
      let socket = fresh_socket () in
      let daemon = start_daemon ~socket ~store_dir ~workers:2 ~quantum:1 () in
      let conn = connect socket in
      let worm_spec = Job.Worm { machine = "halt-now"; steps = 50 } in
      let wid = ok_or_fail "submit worm" (Client.submit conn worm_spec) in
      let jw = ok_or_fail "wait worm" (Client.wait_terminal conn wid) in
      check "worm done before drain" true (job_field jw "state" = Some "done");
      let worm_digest = job_digest jw in
      let ids =
        ok_or_fail "submit duplicate chases"
          (Client.submit_many conn (List.init 2 (fun _ -> divergent_spec stages)))
      in
      let primary_id = List.hd ids in
      let rec await_progress n =
        if n = 0 then Alcotest.fail "chase never progressed"
        else
          let j =
            ok_or_fail "status"
              (Result.bind (Client.status conn primary_id) Client.job_of_reply)
          in
          if job_int j "slices" < 1 then begin
            Unix.sleepf 0.02;
            await_progress (n - 1)
          end
      in
      await_progress 500;
      ignore (ok_or_fail "drain" (Client.drain conn));
      Client.close conn;
      Domain.join daemon;
      check "a result entry file was persisted" true (res_count () >= 1);
      let n_res = res_count () in
      (* daemon 2 on the same store *)
      let socket2 = fresh_socket () in
      let daemon2 =
        start_daemon ~socket:socket2 ~store_dir ~workers:2 ~quantum:4 ()
      in
      Fun.protect
        ~finally:(fun () -> drain_and_join socket2 daemon2)
        (fun () ->
          let conn2 = connect socket2 in
          Fun.protect
            ~finally:(fun () -> Client.close conn2)
            (fun () ->
              (* resubmitting the finished worm hits the entry loaded
                 from disk: zero slices, identical digest *)
              let wid2 = ok_or_fail "resubmit worm" (Client.submit conn2 worm_spec) in
              let jw2 =
                ok_or_fail "wait worm hit" (Client.wait_terminal conn2 wid2)
              in
              check_int "persisted entry serves at zero slices" 0
                (job_int jw2 "slices");
              check_str "persisted entry digest identical" worm_digest
                (job_digest jw2);
              (* the drained duplicate pair reforms across the restart:
                 the primary resumes from its checkpoint, the follower is
                 completed by replication — one execution, two identical
                 results *)
              let jds =
                List.map
                  (fun id ->
                    ok_or_fail "wait chase" (Client.wait_terminal conn2 id))
                  ids
              in
              List.iter
                (fun j ->
                  check "recovered duplicate done" true
                    (job_field j "state" = Some "done");
                  check_str "recovered duplicate digest = uninterrupted"
                    ref_digest (job_digest j))
                jds;
              check_int "the reformed pair executed exactly once" 1
                (List.length
                   (List.filter (fun j -> job_int j "slices" > 0) jds))));
      (* the chase pair adds exactly one entry file; serving hits adds
         none, and nothing is orphaned *)
      check_int "entry files accounted for, no orphans" (n_res + 1)
        (res_count ());
      let leaked =
        List.filter
          (fun f -> Filename.check_suffix f ".ckpt")
          (Array.to_list (Sys.readdir store_dir))
      in
      check_int "no checkpoint leaked" 0 (List.length leaked))

(* --- decoder fuzz ------------------------------------------------------- *)

(* Seeded fuzz over malformed, truncated, mutated and oversized frames:
   [Json.parse] must return [Ok]/[Error] on every input — no exception
   may escape, and adversarial nesting must hit the depth cap instead of
   the OCaml stack. *)
let test_json_fuzz () =
  let state = ref 0x2545F4914F6CDD1DL in
  let next () =
    let open Int64 in
    state := add !state 0x9e3779b97f4a7c15L;
    let z = mul (logxor !state (shift_right_logical !state 30)) 0xbf58476d1ce4e5b9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
    to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)
  in
  let rand n = if n <= 0 then 0 else next () mod n in
  let valid =
    Json.to_string (Job.manifest_json (Job.make ~seq:7 ~quantum:2 (divergent_spec 9)))
  in
  let no_exn what s =
    match Json.parse s with
    | Ok _ | Error _ -> ()
    | exception e ->
        Alcotest.failf "%s: exception escaped the decoder: %s (input %S)" what
          (Printexc.to_string e)
          (if String.length s > 80 then String.sub s 0 80 ^ "…" else s)
  in
  (* pure noise *)
  for _ = 1 to 2_000 do
    let s = String.init (rand 64) (fun _ -> Char.chr (rand 256)) in
    no_exn "noise" s
  done;
  (* truncations of a real manifest frame *)
  for _ = 1 to 1_000 do
    no_exn "truncated" (String.sub valid 0 (rand (String.length valid)))
  done;
  (* single-byte mutations of a real frame *)
  for _ = 1 to 2_000 do
    let b = Bytes.of_string valid in
    Bytes.set b (rand (Bytes.length b)) (Char.chr (rand 256));
    no_exn "mutated" (Bytes.to_string b)
  done;
  (* adversarial nesting: far past any sane frame, must be a normal
     parse error, not a stack overflow *)
  List.iter
    (fun n ->
      let s = String.make n '[' in
      no_exn "deep-nesting" s;
      check (Printf.sprintf "%d-deep nesting rejected" n) true
        (match Json.parse s with Error _ -> true | Ok _ -> false);
      no_exn "deep-nesting-obj" (String.concat "" (List.init n (fun _ -> "{\"a\":"))))
    [ 600; 10_000; 200_000 ];
  (* oversized atom: a multi-megabyte string token parses (the frame
     limit is the daemon's job, not the decoder's) without incident *)
  let big = "\"" ^ String.make (2 * 1024 * 1024) 'x' ^ "\"" in
  check "oversized string atom parses" true
    (match Json.parse big with Ok (Json.String _) -> true | _ -> false);
  (* moderate nesting within the cap still parses *)
  let nested =
    String.make 100 '[' ^ "1" ^ String.make 100 ']'
  in
  check "100-deep nesting parses" true
    (match Json.parse nested with Ok _ -> true | _ -> false)

(* Garbage on a live daemon socket: every bad line gets a structured
   error reply, and the connection stays usable for a well-formed ping
   afterwards. *)
let test_daemon_garbage () =
  with_daemon ~workers:1 ~quantum:2 (fun socket ->
      let conn = connect socket in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          List.iter
            (fun garbage ->
              output_string conn.Client.oc garbage;
              output_char conn.Client.oc '\n';
              flush conn.Client.oc;
              let line = input_line conn.Client.ic in
              match Json.parse line with
              | Ok reply ->
                  check "garbage gets a structured error" true
                    (Json.mem_bool "ok" reply = Some false)
              | Error m -> Alcotest.failf "error reply not JSON: %s" m)
            [ "not json"; "{\"op\": \"ping\""; "[1,2,"; "\xff\xfe\x00" ];
          check "connection survives garbage" true
            (match Client.ping conn with Ok _ -> true | Error _ -> false)))

(* --- connection hardening ----------------------------------------------- *)

(* An idle client is dropped at the read deadline with a structured
   error; a client the daemon owes a reply (a registered waiter) is
   exempt, and an active client is never touched. *)
let test_read_deadline () =
  let socket = fresh_socket () in
  let store_dir = fresh_dir () in
  let daemon =
    start_daemon ~socket ~store_dir ~workers:1 ~quantum:1
      ~read_deadline_s:0.3 ()
  in
  Fun.protect
    ~finally:(fun () ->
      drain_and_join socket daemon;
      rm_rf store_dir)
    (fun () ->
      let idle = connect socket in
      let active = connect socket in
      let waiter = connect socket in
      (* the waiter blocks on a job that cannot finish: an effectively
         unbounded divergent chase on the daemon's only worker *)
      let id = ok_or_fail "submit" (Client.submit active (divergent_spec 100_000)) in
      let waiter_dom =
        Domain.spawn (fun () -> Client.wait waiter id (* no timeout *))
      in
      (* keep [active] chatty well past the deadline; [idle] says nothing *)
      for _ = 1 to 8 do
        Unix.sleepf 0.1;
        ignore (ok_or_fail "active ping" (Client.ping active))
      done;
      (* the idle client was sent the structured error, then dropped *)
      (match Json.parse (input_line idle.Client.ic) with
      | Ok reply ->
          check "idle client told why" true
            (match Json.mem_str "error" reply with
            | Some m -> Json.mem_bool "ok" reply = Some false
                        && String.length m >= 13
                        && String.sub m 0 13 = "read deadline"
            | None -> false)
      | Error m -> Alcotest.failf "deadline error not JSON: %s" m);
      check "idle client connection closed" true
        (match input_line idle.Client.ic with
        | _ -> false
        | exception End_of_file -> true);
      Client.close idle;
      (* the waiter outlived the deadline because the daemon owes it a
         reply; cancelling the job delivers that reply on the old
         connection *)
      ignore (ok_or_fail "cancel" (Client.cancel active id));
      (match Domain.join waiter_dom with
      | Ok reply ->
          check "waiter survived the deadline and got the job" true
            (match Client.job_of_reply reply with
            | Ok j -> Json.mem_str "state" j = Some "cancelled"
            | Error _ -> false)
      | Error m -> Alcotest.failf "waiter dropped: %s" m);
      Client.close waiter;
      Client.close active)

(* A frame above --max-frame gets a structured error and the socket is
   closed, before any parse is attempted. *)
let test_max_frame () =
  let socket = fresh_socket () in
  let store_dir = fresh_dir () in
  let daemon =
    start_daemon ~socket ~store_dir ~workers:1 ~quantum:2 ~max_frame:4096 ()
  in
  Fun.protect
    ~finally:(fun () ->
      drain_and_join socket daemon;
      rm_rf store_dir)
    (fun () ->
      let conn = connect socket in
      (* 8 KiB of an unterminated frame against a 4 KiB limit *)
      output_string conn.Client.oc (String.make 8192 'x');
      flush conn.Client.oc;
      (match Json.parse (input_line conn.Client.ic) with
      | Ok reply ->
          check "oversized frame gets a structured error" true
            (match Json.mem_str "error" reply with
            | Some m -> Json.mem_bool "ok" reply = Some false
                        && String.length m >= 15
                        && String.sub m 0 15 = "frame too large"
            | None -> false)
      | Error m -> Alcotest.failf "max-frame error not JSON: %s" m);
      check "oversized client connection closed" true
        (match input_line conn.Client.ic with
        | _ -> false
        | exception End_of_file -> true);
      Client.close conn;
      (* a fresh client under the limit is served normally *)
      let conn2 = connect socket in
      check "daemon healthy after oversized frame" true
        (match Client.ping conn2 with Ok _ -> true | Error _ -> false);
      Client.close conn2)

(* --- client retry -------------------------------------------------------- *)

(* connect_retry rides out a daemon that comes up late; a dead socket
   exhausts the deadline with a bounded number of jittered attempts. *)
let test_connect_retry () =
  let gone = fresh_socket () in
  let t0 = Unix.gettimeofday () in
  (match Client.connect_retry ~deadline_s:0.4 ~base_s:0.02 ~cap_s:0.1 ~seed:7
           ~socket:gone () with
  | Ok _ -> Alcotest.fail "connected to a nonexistent socket"
  | Error m ->
      check "deadline exhausted with attempt count" true
        (let held = Unix.gettimeofday () -. t0 in
         held >= 0.4 && held < 5.
         &&
         (* the message names the attempts, e.g. "gave up after 9 attempts" *)
         let has_sub s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         has_sub m "gave up after"));
  (* daemon comes up 0.3s late; with_retry keeps reconnecting until the
     ping lands *)
  let socket = fresh_socket () in
  let store_dir = fresh_dir () in
  let starter =
    Domain.spawn (fun () ->
        Unix.sleepf 0.3;
        start_daemon ~socket ~store_dir ~workers:1 ~quantum:2 ())
  in
  let reply =
    Client.with_retry ~deadline_s:10. ~base_s:0.02 ~cap_s:0.1 ~seed:7 ~socket
      (fun conn -> Client.ping conn)
  in
  let daemon = Domain.join starter in
  Fun.protect
    ~finally:(fun () ->
      drain_and_join socket daemon;
      rm_rf store_dir)
    (fun () ->
      check "with_retry outlasted the late daemon start" true
        (match reply with Ok _ -> true | Error _ -> false))

(* --- store sweeps -------------------------------------------------------- *)

(* Orphaned result segments and torn temp files are swept on recovery:
   a cache-backed [.res] survives a restart, an orphan does not, and
   neither [.res] orphans nor [.tmp.*] debris outlive drain + crash +
   restart. *)
let test_store_sweeps () =
  let store_dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf store_dir)
    (fun () ->
      (* daemon 1 persists one real cache entry *)
      let socket = fresh_socket () in
      let daemon = start_daemon ~socket ~store_dir ~workers:1 ~quantum:2 () in
      let conn = connect socket in
      let wid =
        ok_or_fail "submit"
          (Client.submit conn (Job.Worm { machine = "halt-now"; steps = 50 }))
      in
      ignore (ok_or_fail "wait" (Client.wait_terminal conn wid));
      ignore (ok_or_fail "drain" (Client.drain conn));
      Client.close conn;
      Domain.join daemon;
      let files () = List.sort compare (Array.to_list (Sys.readdir store_dir)) in
      let with_suffix sfx =
        List.filter (fun f -> Filename.check_suffix f sfx) (files ())
      in
      check_int "one persisted cache entry" 1 (List.length (with_suffix ".res"));
      let real_res = List.hd (with_suffix ".res") in
      (* simulate a crash mid-write: an orphan result segment (its digest
         is in no manifest and no cache) plus torn write_atomic temps *)
      let plant name content =
        let oc = open_out (Filename.concat store_dir name) in
        output_string oc content;
        close_out oc
      in
      plant "deadbeef0123.res" "{\"torn\": true";
      plant "j000042.ckpt.tmp.1234" "half a checkpoint";
      plant "deadbeef0123.res.tmp.99" "half a result";
      (* daemon 2, cache persistence ON: the real entry is re-adopted,
         the orphan and the temps are swept *)
      let socket2 = fresh_socket () in
      let daemon2 =
        start_daemon ~socket:socket2 ~store_dir ~workers:1 ~quantum:2 ()
      in
      (match Client.connect ~socket:socket2 () with
      | Ok c ->
          ignore (ok_or_fail "drain 2" (Client.drain c));
          Client.close c
      | Error m -> Alcotest.failf "connect 2: %s" m);
      Domain.join daemon2;
      check "cache-backed result survives recovery" true
        (List.mem real_res (files ()));
      check "orphan result swept on recovery" false
        (List.mem "deadbeef0123.res" (files ()));
      check_int "no temp debris survives recovery" 0
        (List.length
           (List.filter
              (fun f ->
                let has_sub s sub =
                  let n = String.length s and m = String.length sub in
                  let rec go i =
                    i + m <= n && (String.sub s i m = sub || go (i + 1))
                  in
                  go 0
                in
                has_sub f ".tmp.")
              (files ())));
      (* daemon 3, cache disabled: nothing backs the entry now, so even
         the real segment is swept — no .res outlives its cache *)
      let socket3 = fresh_socket () in
      let daemon3 =
        start_daemon ~socket:socket3 ~store_dir ~workers:1 ~quantum:2 ~cache:0
          ()
      in
      (match Client.connect ~socket:socket3 () with
      | Ok c ->
          ignore (ok_or_fail "drain 3" (Client.drain c));
          Client.close c
      | Error m -> Alcotest.failf "connect 3: %s" m);
      Domain.join daemon3;
      check_int "cache off: every result segment swept" 0
        (List.length (with_suffix ".res")))

let () =
  Alcotest.run "serve"
    [
      ( "codec",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogates;
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "manifest round-trip" `Quick
            test_manifest_roundtrip;
          Alcotest.test_case "decoder fuzz" `Quick test_json_fuzz;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "orphan + temp sweeps" `Quick test_store_sweeps;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "garbage frames on a live socket" `Quick
            test_daemon_garbage;
          Alcotest.test_case "read deadline drops idle, spares waiters" `Quick
            test_read_deadline;
          Alcotest.test_case "max frame closes with an error" `Quick
            test_max_frame;
          Alcotest.test_case "connect/request retry with backoff" `Quick
            test_connect_retry;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit/wait" `Quick test_submit_wait;
          Alcotest.test_case "preemption bit-identity" `Quick
            test_preemption_bit_identity;
          Alcotest.test_case "8 concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "drain + restart recovery" `Quick
            test_drain_restart_recovery;
          Alcotest.test_case "mutate jobs on a held instance" `Quick
            test_mutate_jobs;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit + coalesce bit-identity" `Quick
            test_cache_hit_and_coalesce;
          Alcotest.test_case "mutate-read strict invalidation" `Quick
            test_mutate_read_invalidation;
          Alcotest.test_case "persistence across restart" `Quick
            test_cache_persistence_restart;
        ] );
    ]
