(* Tests for the observability layer (lib/obs) and the three bugfixes it
   ships with:

     - Hom.find no longer early-exits via an exported exception, so a
       callback's own exceptions surface unchanged through iter_all;
     - Hom.order_atoms removes the selected atom positionally, so
       physically-shared duplicate atoms keep every occurrence;
     - bench timing goes through Obs.Clock, whose monotonize wrapper
       clamps backwards clock steps (no negative deltas).

   Plus the overhead/invariance contract: with the switches off,
   instrumentation changes no chase/hom results or stats; with tracing
   on, a chased E1 emits well-formed Chrome trace-event JSON. *)

open Relational

let edge = Symbol.make "E" 2

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let path n =
  let s = Structure.create () in
  let vs = Array.init (n + 1) (fun _ -> Structure.fresh s) in
  for i = 0 to n - 1 do
    Structure.add2 s edge vs.(i) vs.(i + 1)
  done;
  s

let atom_e x y = Atom.app2 edge (Term.var x) (Term.var y)

(* Every test must leave the global switches off. *)
let with_obs ~metrics ~tracing f =
  Obs.set_metrics metrics;
  Obs.set_tracing tracing;
  Fun.protect ~finally:Obs.disable_all f

(* --- clock ------------------------------------------------------------- *)

let test_clock_monotonize () =
  (* a raw clock that steps backwards mid-sequence *)
  let samples = ref [ 10.0; 10.5; 9.0; 9.5; 11.0 ] in
  let raw () =
    match !samples with
    | [] -> 12.0
    | t :: rest ->
        samples := rest;
        t
  in
  let clock = Obs.Clock.monotonize raw in
  let out = List.init 5 (fun _ -> clock ()) in
  Alcotest.(check (list (float 1e-9)))
    "backwards steps clamped to the running maximum"
    [ 10.0; 10.5; 10.5; 10.5; 11.0 ] out;
  (* deltas of a monotonized clock are never negative *)
  let rec deltas = function
    | a :: (b :: _ as rest) -> (b -. a) :: deltas rest
    | _ -> []
  in
  check "no negative delta" true (List.for_all (fun d -> d >= 0.) (deltas out))

let test_clock_now_monotone () =
  let t0 = Obs.Clock.now_s () in
  let t1 = Obs.Clock.now_s () in
  check "now_s non-decreasing" true (t1 >= t0)

(* --- order_atoms multiset preservation (satellite 2) ------------------- *)

let test_order_atoms_duplicates () =
  (* one physical atom, listed twice: both occurrences must survive *)
  let a = atom_e "x" "y" in
  check_int "shared duplicate kept" 2 (List.length (Hom.order_atoms [ a; a ]));
  let b = atom_e "y" "z" in
  let ordered = Hom.order_atoms [ a; b; a ] in
  check_int "triple with shared dup" 3 (List.length ordered);
  (* the result is a permutation: same multiset of (physical) atoms *)
  check_int "two copies of a" 2
    (List.length (List.filter (fun x -> x == a) ordered));
  check_int "one copy of b" 1
    (List.length (List.filter (fun x -> x == b) ordered))

let test_order_atoms_duplicate_matching () =
  (* the duplicated body must still enumerate the same homomorphisms *)
  let s = path 5 in
  let a = atom_e "x" "y" in
  let n_single = Hom.count s [ a ] in
  let n_dup = Hom.count s [ a; a ] in
  check_int "H ∧ H ≡ H" n_single n_dup;
  check_int "path5 edges" 5 n_single

(* --- iter_all / find early exit (satellite 1) -------------------------- *)

exception Probe

let test_iter_all_callback_exceptions () =
  let s = path 5 in
  let atoms = [ atom_e "x" "y" ] in
  (* the documented protocol: raise Exit from the callback to stop *)
  let seen = ref 0 in
  (try
     Hom.iter_all s atoms (fun _ ->
         incr seen;
         raise Exit)
   with Exit -> ());
  check_int "Exit stops after the first binding" 1 !seen;
  (* any other exception must surface unchanged, not be misread *)
  let raised =
    try
      Hom.iter_all s atoms (fun _ -> raise Probe);
      false
    with Probe -> true
  in
  check "callback exception surfaces unchanged" true raised

let test_find_still_works () =
  let s = path 5 in
  check "find on match" true
    (Option.is_some (Hom.find s [ atom_e "x" "y"; atom_e "y" "z" ]));
  check "find on no match" true
    (Option.is_none (Hom.find s [ atom_e "x" "x" ]));
  (* a callback that itself calls find (which early-exits internally)
     must not perturb the enclosing enumeration *)
  let n = ref 0 in
  Hom.iter_all s [ atom_e "x" "y" ] (fun _ ->
      assert (Option.is_some (Hom.find s [ atom_e "u" "v" ]));
      incr n);
  check_int "nested find does not leak its early exit" 5 !n

(* --- metrics ------------------------------------------------------------ *)

let test_metrics_registry () =
  let c = Obs.Metrics.counter "test.counter" in
  let h = Obs.Metrics.histogram "test.hist" in
  (* disabled: updates dropped *)
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 7;
  check_int "disabled incr is a no-op" 0 (Obs.Metrics.value c);
  with_obs ~metrics:true ~tracing:false (fun () ->
      let before = Obs.Metrics.snapshot () in
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.observe h 7;
      check_int "enabled updates land" 5 (Obs.Metrics.value c);
      let d = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
      check_int "diff reports the delta" 5 (List.assoc "test.counter" d));
  check "registry is idempotent per name" true
    (Obs.Metrics.counter "test.counter" == c);
  check "json renders" true
    (String.length (Obs.Metrics.to_json ()) > 0)

let test_hom_counters_flow () =
  with_obs ~metrics:true ~tracing:false (fun () ->
      let before = Obs.Metrics.snapshot () in
      let s = path 5 in
      ignore (Hom.count s [ atom_e "x" "y"; atom_e "y" "z" ]);
      let d = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
      check "unify attempts counted" true
        (List.assoc "hom.unify_attempts" d > 0);
      check "candidates counted" true
        (List.assoc "hom.candidates_scanned" d > 0))

(* --- disabled-mode invariance ------------------------------------------- *)

let path_query k =
  let name i =
    if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i
  in
  Cq.Query.make ~free:[ "x"; "y" ]
    (List.init k (fun i -> atom_e (name i) (name (i + 1))))

let chase_workload () =
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
  let d = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  let stats = Tgd.Chase.run ~max_stages:4 deps d in
  (d, stats)

let test_instrumentation_invariance () =
  let d_off, s_off = chase_workload () in
  let d_on, s_on =
    with_obs ~metrics:true ~tracing:true (fun () -> chase_workload ())
  in
  check "same structure with obs on" true (Structure.equal_sets d_off d_on);
  check_int "same applications" s_off.Tgd.Chase.applications
    s_on.Tgd.Chase.applications;
  check_int "same triggers considered" s_off.Tgd.Chase.triggers_considered
    s_on.Tgd.Chase.triggers_considered;
  check_int "same body matches" s_off.Tgd.Chase.body_matches
    s_on.Tgd.Chase.body_matches;
  (* and the graph engine on E1 *)
  let g_off, _, _, t_off = Separating.Tinf.chase ~stages:8 () in
  let g_on, _, _, t_on =
    with_obs ~metrics:true ~tracing:true (fun () ->
        Separating.Tinf.chase ~stages:8 ())
  in
  check "same E1 graph with obs on" true (Greengraph.Graph.equal g_off g_on);
  check_int "same E1 firings" t_off.Greengraph.Rule.applications
    t_on.Greengraph.Rule.applications

(* --- trace export -------------------------------------------------------- *)

(* A tiny validator for the JSON subset the exporter emits: values are
   objects / arrays / strings / numbers / true / false.  Returns the index
   after the parsed value or raises. *)
let rec skip_json s i =
  let n = String.length s in
  let rec ws i = if i < n && (s.[i] = ' ' || s.[i] = '\n' || s.[i] = '\t') then ws (i + 1) else i in
  let i = ws i in
  if i >= n then failwith "eof";
  match s.[i] with
  | '{' ->
      let rec members i first =
        let i = ws i in
        if i < n && s.[i] = '}' then i + 1
        else
          let i = if first then i else if s.[i] = ',' then ws (i + 1) else failwith "expected ," in
          let i = skip_json s i in
          let i = ws i in
          if i < n && s.[i] = ':' then members_tail (skip_json s (i + 1))
          else failwith "expected :"
      and members_tail i =
        let i = ws i in
        if i < n && s.[i] = '}' then i + 1
        else if i < n && s.[i] = ',' then
          let i = skip_json s (ws (i + 1)) in
          let i = ws i in
          if i < n && s.[i] = ':' then members_tail (skip_json s (i + 1))
          else failwith "expected :"
        else failwith "expected , or }"
      in
      members (i + 1) true
  | '[' ->
      let rec elems i first =
        let i = ws i in
        if i < n && s.[i] = ']' then i + 1
        else
          let i =
            if first then i
            else if s.[i] = ',' then ws (i + 1)
            else failwith "expected , or ]"
          in
          elems (skip_json s i) false
      in
      elems (i + 1) true
  | '"' ->
      let rec str i =
        if i >= n then failwith "unterminated string"
        else if s.[i] = '\\' then str (i + 2)
        else if s.[i] = '"' then i + 1
        else str (i + 1)
      in
      str (i + 1)
  | 't' -> i + 4
  | 'f' -> i + 5
  | c when c = '-' || (c >= '0' && c <= '9') ->
      let rec num i =
        if
          i < n
          && (s.[i] = '-' || s.[i] = '+' || s.[i] = '.' || s.[i] = 'e'
             || s.[i] = 'E'
             || (s.[i] >= '0' && s.[i] <= '9'))
        then num (i + 1)
        else i
      in
      num i
  | c -> failwith (Printf.sprintf "unexpected %c" c)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let json_well_formed s =
  match skip_json s 0 with
  | i ->
      (* nothing but whitespace may follow the top-level value *)
      String.for_all (fun c -> c = ' ' || c = '\n' || c = '\t')
        (String.sub s i (String.length s - i))
  | exception _ -> false

let test_traced_e1_run () =
  Obs.Trace.clear ();
  with_obs ~metrics:false ~tracing:true (fun () ->
      ignore (Separating.Tinf.chase ~stages:6 ()));
  check "spans were recorded" true (Obs.Trace.events () > 0);
  let json = Obs.Trace.to_json () in
  check "trace JSON is well-formed" true (json_well_formed json);
  check "has complete events" true
    (String.length json > 0 && json.[0] = '['
    && contains ~sub:"\"ph\": \"X\"" json
    && contains ~sub:"graph.stage" json
    && contains ~sub:"graph.chase(seminaive)" json);
  (* the exporter writes exactly this string *)
  let file = Filename.temp_file "redspider" ".trace.json" in
  Obs.Trace.export file;
  let ic = open_in_bin file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  Alcotest.(check string) "export writes to_json" json contents;
  Obs.Trace.clear ()

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonize clamps" `Quick test_clock_monotonize;
          Alcotest.test_case "now_s monotone" `Quick test_clock_now_monotone;
        ] );
      ( "hom fixes",
        [
          Alcotest.test_case "order_atoms keeps duplicates" `Quick
            test_order_atoms_duplicates;
          Alcotest.test_case "duplicate body matches" `Quick
            test_order_atoms_duplicate_matching;
          Alcotest.test_case "iter_all callback exceptions" `Quick
            test_iter_all_callback_exceptions;
          Alcotest.test_case "find early exit is internal" `Quick
            test_find_still_works;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "hom counters flow" `Quick test_hom_counters_flow;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "disabled obs changes nothing" `Quick
            test_instrumentation_invariance;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "traced E1 emits valid JSON" `Quick
            test_traced_e1_run;
        ] );
    ]
