(* lib/campaign: the durable shard ledger (torn-append recovery,
   first-complete-wins replay, accounting), shard determinism under
   splitting, and the supervisor — pool campaigns reproducing the
   monolithic oracle runs bit-for-bit, deterministic interrupt/resume,
   and quarantine of poison shards.  The chaos ladder and the daemon
   leg live in the @campaign-smoke gate (bench/main.ml). *)

module FP = Resilience.Failpoint
module Shard = Oracle.Shard
module Ledger = Campaign.Ledger
module Supervisor = Campaign.Supervisor

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let counter = ref 0

let fresh_path name =
  incr counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "rs-camp-%d-%d-%s" (Unix.getpid ()) !counter name)

let small_budget =
  { Oracle.Diff.max_stages = 3; Oracle.Diff.max_elems = 60; Oracle.Diff.max_facts = 150 }

let header =
  {
    Ledger.h_families = [ Shard.Audit; Shard.Incr ];
    h_seed = 9;
    h_cases = 10;
    h_shard_cases = 4;
    h_max_attempts = 3;
  }

let outcome family ~seed ~lo ~n = Shard.run ~budget:small_budget family ~seed ~lo ~n

(* --- ledger ------------------------------------------------------------- *)

let test_sid_and_plan () =
  List.iter
    (fun f ->
      let s = Ledger.sid f ~seed:7 ~lo:12 in
      check "sid round-trips" true (Ledger.parse_sid s = Some (f, 7, 12)))
    Shard.all_families;
  check "garbage sid rejected" true (Ledger.parse_sid "nope" = None);
  let plan = Ledger.plan header in
  (* 10 cases at 4/shard = shards of 4, 4, 2 — per family *)
  check_int "plan covers both families" 6 (List.length plan);
  check "last shard is short" true
    (List.mem (Shard.Audit, 8, 2) plan && List.mem (Shard.Incr, 8, 2) plan);
  let covered f =
    List.filter (fun (g, _, _) -> g = f) plan
    |> List.concat_map (fun (_, lo, n) -> List.init n (fun i -> lo + i))
    |> List.sort_uniq compare
  in
  check "plan partitions the case space" true
    (covered Shard.Audit = List.init 10 Fun.id
    && covered Shard.Incr = List.init 10 Fun.id)

let test_ledger_roundtrip () =
  FP.clear ();
  let path = fresh_path "roundtrip.ledger" in
  let o = outcome Shard.Audit ~seed:9 ~lo:0 ~n:2 in
  let records =
    [
      Ledger.Lease { sid = "audit:9:0"; attempt = 1; worker = "w0"; deadline_s = 1.5 };
      Ledger.Fail { sid = "audit:9:0"; attempt = 1; error = "boom" };
      Ledger.Reclaim { sid = "audit:9:0"; attempt = 2; reason = "lease expired" };
      Ledger.Complete { sid = "audit:9:0"; attempt = 3; outcome = o };
      Ledger.Quarantine
        { sid = "incr:9:4"; attempts = 3; poison_case = Some 5; desc = [ "bad"; "worse" ] };
    ]
  in
  (match Ledger.create ~path header with
  | Error m -> Alcotest.failf "create: %s" m
  | Ok led ->
      List.iter
        (fun r ->
          match Ledger.append led r with
          | Ok () -> ()
          | Error m -> Alcotest.failf "append: %s" m)
        records);
  check "create refuses an existing ledger" true
    (match Ledger.create ~path header with Error _ -> true | Ok _ -> false);
  (match Ledger.load ~path with
  | Error m -> Alcotest.failf "load: %s" m
  | Ok led2 ->
      check "records round-trip through disk" true
        (Ledger.records led2 = Ledger.Create header :: records);
      check_int "clean ledger skips nothing" 0 (Ledger.skipped led2);
      match Ledger.replay led2 with
      | Error m -> Alcotest.failf "replay: %s" m
      | Ok rp ->
          check "replay keeps the completed outcome" true
            (rp.Ledger.rp_completed = [ ("audit:9:0", o) ]);
          check "replay counts fail + reclaim attempts" true
            (List.assoc_opt "audit:9:0" rp.Ledger.rp_attempts = Some 2);
          check "replay keeps the quarantine" true
            (List.assoc_opt "incr:9:4" rp.Ledger.rp_quarantined
            = Some (Some 5, [ "bad"; "worse" ])));
  (* a torn trailing line (half a record) is skipped, not fatal *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"kind\": \"complete\", \"sid\": \"audit";
  close_out oc;
  (match Ledger.load ~path with
  | Error m -> Alcotest.failf "load after tear: %s" m
  | Ok led3 ->
      check_int "torn trailing line skipped" 1 (Ledger.skipped led3);
      check "records before the tear survive" true
        (Ledger.records led3 = Ledger.Create header :: records));
  Sys.remove path

let test_ledger_duplicate_accounting () =
  FP.clear ();
  let path = fresh_path "dup.ledger" in
  let o1 = outcome Shard.Audit ~seed:9 ~lo:0 ~n:2 in
  (match Ledger.create ~path header with
  | Error m -> Alcotest.failf "create: %s" m
  | Ok led ->
      List.iter
        (fun r -> ignore (Ledger.append led r))
        [
          Ledger.Complete { sid = "audit:9:0"; attempt = 1; outcome = o1 };
          Ledger.Complete { sid = "audit:9:0"; attempt = 2; outcome = o1 };
        ];
      match Ledger.account led with
      | Error m -> Alcotest.failf "account: %s" m
      | Ok a ->
          check_int "6 planned shards" 6 a.Ledger.a_shards;
          check_int "one shard completed" 1 a.Ledger.a_completed;
          check_int "double-complete shows up as a duplicate" 1
            a.Ledger.a_duplicated;
          check_int "the rest are lost (campaign unfinished)" 5
            a.Ledger.a_lost);
  Sys.remove path

(* --- shard determinism --------------------------------------------------- *)

(* The invariance the exactly-once argument rests on: a shard's outcome
   does not depend on how the case space was split, and summed shard
   counters reproduce the monolithic oracle run bit-for-bit. *)
let test_shard_split_invariance () =
  FP.clear ();
  List.iter
    (fun family ->
      let full = outcome family ~seed:9 ~lo:0 ~n:8 in
      let again = outcome family ~seed:9 ~lo:0 ~n:8 in
      check "re-run is bit-identical" true (full = again);
      let left = outcome family ~seed:9 ~lo:0 ~n:3 in
      let right = outcome family ~seed:9 ~lo:3 ~n:5 in
      check "split counters sum to the monolithic run" true
        (Shard.counters_add left.Shard.o_counters right.Shard.o_counters
        = full.Shard.o_counters);
      check "split corpus concatenates to the monolithic run" true
        (Shard.sort_corpus (left.Shard.o_corpus @ right.Shard.o_corpus)
        = full.Shard.o_corpus))
    Shard.all_families

let test_shard_matches_oracle () =
  FP.clear ();
  (* the audit family's counters are the Diff.run_cases report *)
  let o = outcome Shard.Audit ~seed:9 ~lo:0 ~n:8 in
  let r = Oracle.Diff.run_cases ~budget:small_budget ~seed:9 ~cases:8 () in
  let c k = Option.value ~default:(-1) (List.assoc_opt k o.Shard.o_counters) in
  check_int "engine_runs" r.Oracle.Diff.engine_runs (c "engine_runs");
  check_int "budget_exceeded" r.Oracle.Diff.budget_exceeded (c "budget_exceeded");
  check_int "incomparable" r.Oracle.Diff.incomparable (c "incomparable");
  check_int "violations" (List.length r.Oracle.Diff.violations) (c "violations");
  (* and a shifted shard is the tail of a longer monolithic report *)
  let shifted = outcome Shard.Audit ~seed:9 ~lo:5 ~n:3 in
  let tail =
    Oracle.Diff.run_cases ~budget:small_budget ~from_case:5 ~seed:9 ~cases:3 ()
  in
  check_int "shifted shard = from_case oracle run" tail.Oracle.Diff.engine_runs
    (Option.value ~default:(-1)
       (List.assoc_opt "engine_runs" shifted.Shard.o_counters))

(* --- supervisor ---------------------------------------------------------- *)

let base_config ~ledger =
  {
    (Supervisor.default_config ~ledger) with
    Supervisor.families = [ Shard.Audit; Shard.Incr ];
    seed = 9;
    cases = 10;
    shard_cases = 4;
    budget = small_budget;
    jobs = 3;
    lease_s = 2.0;
    max_attempts = 4;
    backoff_base_s = 0.002;
    backoff_cap_s = 0.02;
  }

let run_ok ?resume ?stop_after_completes cfg =
  match Supervisor.run ?resume ?stop_after_completes cfg with
  | Ok s -> s
  | Error m -> Alcotest.failf "campaign: %s" m

let test_pool_campaign () =
  FP.clear ();
  let ledger = fresh_path "pool.ledger" in
  let s = run_ok (base_config ~ledger) in
  check "campaign ran to completion" false s.Supervisor.s_interrupted;
  check_int "all shards completed" 6 s.Supervisor.s_completed;
  check_int "nothing quarantined" 0 s.Supervisor.s_quarantined;
  let a = s.Supervisor.s_accounting in
  check_int "0 lost" 0 a.Ledger.a_lost;
  check_int "0 duplicated" 0 a.Ledger.a_duplicated;
  (* coverage = the monolithic per-family runs, bit-for-bit *)
  List.iter
    (fun family ->
      let mono = outcome family ~seed:9 ~lo:0 ~n:10 in
      check
        (Printf.sprintf "%s coverage matches the monolithic run"
           (Shard.family_name family))
        true
        (List.assoc_opt (Shard.family_name family) s.Supervisor.s_coverage
        = Some mono.Shard.o_counters))
    [ Shard.Audit; Shard.Incr ];
  Sys.remove ledger

let test_faults_campaign () =
  FP.clear ();
  let ledger = fresh_path "faults.ledger" in
  let cfg =
    { (base_config ~ledger) with Supervisor.families = [ Shard.Faults ]; cases = 6;
      shard_cases = 2 }
  in
  let s = run_ok cfg in
  check "faults campaign completes" false s.Supervisor.s_interrupted;
  check_int "faults shards all completed" 3 s.Supervisor.s_completed;
  let mono = outcome Shard.Faults ~seed:9 ~lo:0 ~n:6 in
  check "faults coverage matches the monolithic campaign" true
    (List.assoc_opt "faults" s.Supervisor.s_coverage = Some mono.Shard.o_counters);
  check "faults campaign leaves the registry disarmed" false (FP.active ());
  (* the guard: a faults campaign under an armed ladder is refused *)
  FP.configure_exn ~seed:1 "shard.case=0.5";
  check "faults family refused while failpoints are armed" true
    (match Supervisor.run { cfg with Supervisor.ledger_path = fresh_path "refused.ledger" } with
    | Error _ -> true
    | Ok _ -> false);
  FP.clear ();
  Sys.remove ledger

let test_resume_bit_identity () =
  FP.clear ();
  let reference = run_ok (base_config ~ledger:(fresh_path "ref.ledger")) in
  let ledger = fresh_path "interrupted.ledger" in
  let cfg = base_config ~ledger in
  (* crash twice: each aborted run drops whatever was still in flight *)
  let s1 = run_ok ~stop_after_completes:2 cfg in
  check "first run interrupted" true s1.Supervisor.s_interrupted;
  check "first segment completed something" true (s1.Supervisor.s_completed >= 2);
  let s2 = run_ok ~resume:true ~stop_after_completes:2 cfg in
  check "second run interrupted" true s2.Supervisor.s_interrupted;
  check "resume does not forget completed shards" true
    (s2.Supervisor.s_completed >= s1.Supervisor.s_completed);
  let s3 = run_ok ~resume:true cfg in
  check "final resume runs to completion" false s3.Supervisor.s_interrupted;
  check_int "all shards accounted" 6 s3.Supervisor.s_completed;
  let a = s3.Supervisor.s_accounting in
  check_int "0 lost after interrupts" 0 a.Ledger.a_lost;
  check_int "0 duplicated after interrupts" 0 a.Ledger.a_duplicated;
  check "interrupted+resumed coverage/corpus byte-identical to reference" true
    (Supervisor.canonical s3 = Supervisor.canonical reference);
  (* resuming a finished campaign is a no-op with the same summary *)
  let s4 = run_ok ~resume:true cfg in
  check "resume of a finished campaign is stable" true
    (Supervisor.canonical s4 = Supervisor.canonical reference);
  check "a mismatched config is refused at resume" true
    (match Supervisor.run ~resume:true { cfg with Supervisor.seed = 10 } with
    | Error _ -> true
    | Ok _ -> false);
  Sys.remove ledger

let test_quarantine () =
  let ledger = fresh_path "quarantine.ledger" in
  let cfg =
    {
      (base_config ~ledger) with
      Supervisor.families = [ Shard.Audit ];
      cases = 4;
      shard_cases = 2;
      jobs = 2;
      max_attempts = 2;
    }
  in
  (* every case dies at the shard.case probe: both shards exhaust their
     attempts; the quarantine probe (which skips the probe site) then
     finds every case clean, so the verdict is injected/environmental *)
  FP.configure_exn ~seed:3 "shard.case=1.0";
  let s = run_ok cfg in
  FP.clear ();
  check "campaign resolves despite ever-failing shards" false
    s.Supervisor.s_interrupted;
  check_int "nothing completed" 0 s.Supervisor.s_completed;
  check_int "both shards quarantined" 2 s.Supervisor.s_quarantined;
  check "retries happened before quarantine" true (s.Supervisor.s_retried >= 2);
  let quarantine_entries =
    List.filter
      (fun (_, e) -> e.Shard.e_kind = "quarantine")
      s.Supervisor.s_corpus
  in
  check_int "corpus records both quarantines" 2 (List.length quarantine_entries);
  check "probes-clean verdict names injected faults" true
    (List.for_all
       (fun (_, e) ->
         List.exists
           (fun line ->
             let n = String.length line in
             let rec has i =
               i + 8 <= n && (String.sub line i 8 = "injected" || has (i + 1))
             in
             has 0)
           e.Shard.e_desc)
       quarantine_entries);
  (* resume with the ladder disarmed: quarantined shards stay
     quarantined — they are not silently retried *)
  let s2 = run_ok ~resume:true cfg in
  check_int "quarantine survives resume" 2 s2.Supervisor.s_quarantined;
  check_int "resume does not re-run quarantined shards" 0
    s2.Supervisor.s_completed;
  let a = s2.Supervisor.s_accounting in
  check_int "quarantined shards are accounted, not lost" 0 a.Ledger.a_lost;
  Sys.remove ledger

let () =
  Alcotest.run "campaign"
    [
      ( "ledger",
        [
          Alcotest.test_case "sid + plan" `Quick test_sid_and_plan;
          Alcotest.test_case "round-trip + torn-line recovery" `Quick
            test_ledger_roundtrip;
          Alcotest.test_case "duplicate + lost accounting" `Quick
            test_ledger_duplicate_accounting;
        ] );
      ( "shard",
        [
          Alcotest.test_case "split invariance" `Quick
            test_shard_split_invariance;
          Alcotest.test_case "matches the monolithic oracle" `Quick
            test_shard_matches_oracle;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "pool campaign = monolithic run" `Quick
            test_pool_campaign;
          Alcotest.test_case "faults family, serialized" `Quick
            test_faults_campaign;
          Alcotest.test_case "interrupt twice, resume bit-identically" `Quick
            test_resume_bit_identity;
          Alcotest.test_case "poison shards quarantined" `Quick test_quarantine;
        ] );
    ]
