(* Engine equivalence: the semi-naive chase must be observably identical
   to the stage chase — equal structures (fresh ids included) and equal
   application counts — on fixtures and random instances, together with
   the delta machinery it rests on (fact journals, pin index, hom delta
   enumeration). *)

open Relational

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let edge = Symbol.make "E" 2
let v = Term.var
let e x y = Atom.app2 edge (v x) (v y)

let path_query k =
  let name i =
    if i = 0 then "x" else if i = k then "y" else Printf.sprintf "m%d" i
  in
  Cq.Query.make ~free:[ "x"; "y" ]
    (List.init k (fun i -> e (name i) (name (i + 1))))

(* --- the delta journal -------------------------------------------------- *)

let test_delta_journal () =
  let s = Structure.create () in
  let a = Structure.fresh s and b = Structure.fresh s in
  Structure.add2 s edge a b;
  let wm = Structure.watermark s in
  Structure.add2 s edge b a;
  Structure.add2 s edge a a;
  (* duplicate: not journalled *)
  Structure.add2 s edge b a;
  let delta = Structure.delta_since s wm in
  check_int "two new facts" 2 (List.length delta);
  check "delta in insertion order" true
    (delta
    = [ Fact.make edge [| b; a |]; Fact.make edge [| a; a |] ]);
  check "full journal from zero" true
    (List.length (Structure.delta_since s 0) = Structure.size s)

let test_graph_delta_journal () =
  let module G = Greengraph.Graph in
  let g, _, _ = G.d_i () in
  let wm = G.watermark g in
  let x = G.fresh g and y = G.fresh g in
  ignore (G.add_edge g (Greengraph.Label.l 1) x y);
  ignore (G.add_edge g (Greengraph.Label.l 1) x y);
  (* duplicate *)
  check_int "one new edge" 1 (List.length (G.delta_since g wm));
  check_int "journal covers everything" (G.size g)
    (List.length (G.delta_since g 0))

(* --- the (symbol, position, element) pin index --------------------------- *)

let pin_index_property =
  QCheck.Test.make ~name:"pin index agrees with a naive filter" ~count:100
    QCheck.(list_of_size Gen.(int_bound 12) (pair (int_bound 4) (int_bound 4)))
    (fun edges ->
      let s = Structure.create () in
      let vs = Array.init 5 (fun _ -> Structure.fresh s) in
      List.iter (fun (i, j) -> Structure.add2 s edge vs.(i) vs.(j)) edges;
      let naive pos el =
        List.filter
          (fun f -> Fact.sym f = edge && (Fact.args f).(pos) = el)
          (Structure.facts s)
      in
      List.for_all
        (fun pos ->
          Array.for_all
            (fun el ->
              let indexed = Structure.facts_with_pin s edge pos el in
              Structure.pin_count s edge pos el = List.length (naive pos el)
              && List.sort compare indexed = List.sort compare (naive pos el))
            vs)
        [ 0; 1 ])

(* --- delta-restricted hom enumeration ------------------------------------ *)

(* homs(old ∪ delta) = homs(old) ⊎ delta-homs: the delta mode produces
   exactly the homomorphisms whose image touches a new fact, each once. *)
let hom_delta_property =
  QCheck.Test.make ~name:"iter_all ~delta splits homs(old ∪ new)" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_bound 8) (pair (int_bound 3) (int_bound 3)))
        (list_of_size Gen.(int_bound 5) (pair (int_bound 3) (int_bound 3))))
    (fun (old_edges, new_edges) ->
      let atoms = [ e "x" "y"; e "y" "z" ] in
      let make_s edges =
        let s = Structure.create () in
        let vs = Array.init 4 (fun _ -> Structure.fresh s) in
        List.iter (fun (i, j) -> Structure.add2 s edge vs.(i) vs.(j)) edges;
        (s, vs)
      in
      let old_s, _ = make_s old_edges in
      let full_s, vs = make_s old_edges in
      let delta =
        List.filter_map
          (fun (i, j) ->
            let f = Fact.make edge [| vs.(i); vs.(j) |] in
            if Structure.add_fact full_s f then Some f else None)
          new_edges
      in
      let collect ?delta s =
        let out = ref [] in
        Hom.iter_all ?delta s atoms (fun b ->
            out := Term.Var_map.bindings b :: !out);
        List.sort_uniq compare !out
      in
      let homs_old = collect old_s in
      let homs_delta = collect ~delta full_s in
      let homs_full = collect full_s in
      (* disjoint… *)
      List.for_all (fun b -> not (List.mem b homs_old)) homs_delta
      (* …and jointly exhaustive *)
      && List.sort_uniq compare (homs_old @ homs_delta) = homs_full)

(* --- TGD chase: stage ≡ seminaive ---------------------------------------- *)

let tq_fixture () =
  let deps = Tgd.Dep.t_q [ ("p2", path_query 2); ("p3", path_query 3) ] in
  let seed () = fst (Tgd.Greenred.green_canonical (path_query 5)) in
  (deps, seed)

let test_tgd_engines_fixture () =
  let deps, seed = tq_fixture () in
  let d1 = seed () and d2 = seed () in
  let s1 = Tgd.Chase.run_stage ~max_stages:5 deps d1 in
  let s2 = Tgd.Chase.run_seminaive ~max_stages:5 deps d2 in
  check "equal structures" true (Structure.equal_sets d1 d2);
  check_int "equal applications" s1.Tgd.Chase.applications
    s2.Tgd.Chase.applications;
  check_int "equal stages" s1.Tgd.Chase.stages s2.Tgd.Chase.stages;
  check "seminaive considers fewer triggers" true
    (s2.Tgd.Chase.triggers_considered <= s1.Tgd.Chase.triggers_considered)

(* Random TGD sets over one binary symbol, random seed structures, short
   stage budgets: the two engines must build the very same structure. *)
let dep_templates =
  [
    Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z" ] ();
    Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "x" ] ();
    Tgd.Dep.make ~body:[ e "x" "y"; e "y" "z" ] ~head:[ e "x" "z" ] ();
    Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "z"; e "z" "y" ] ();
    Tgd.Dep.make ~body:[ e "x" "y"; e "x" "z" ] ~head:[ e "y" "w" ] ();
    Tgd.Dep.make ~body:[ e "x" "x" ] ~head:[ e "x" "z"; e "z" "z" ] ();
  ]

let tgd_engines_random_property =
  QCheck.Test.make ~name:"random TGDs: stage ≡ seminaive" ~count:40
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 4) (int_bound 5))
        (list_of_size Gen.(int_bound 8) (pair (int_bound 3) (int_bound 3))))
    (fun (dep_picks, edges) ->
      let deps =
        List.map (fun i -> List.nth dep_templates (i mod 6)) dep_picks
      in
      let seed () =
        let s = Structure.create () in
        let vs = Array.init 4 (fun _ -> Structure.fresh s) in
        List.iter (fun (i, j) -> Structure.add2 s edge vs.(i) vs.(j)) edges;
        s
      in
      let d1 = seed () and d2 = seed () in
      let s1 = Tgd.Chase.run_stage ~max_stages:3 deps d1 in
      let s2 = Tgd.Chase.run_seminaive ~max_stages:3 deps d2 in
      Structure.equal_sets d1 d2
      && s1.Tgd.Chase.applications = s2.Tgd.Chase.applications
      && s1.Tgd.Chase.stages = s2.Tgd.Chase.stages
      && s1.Tgd.Chase.fixpoint = s2.Tgd.Chase.fixpoint)

(* After a semi-naive run reaches its fixpoint, the global trigger scan
   must agree: no active triggers, [models] true, [find_violation] none.
   On a budget-cut run all three must agree with each other either way. *)
let models_agree_property =
  QCheck.Test.make ~name:"models/find_violation vs incremental triggers"
    ~count:40
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 3) (int_bound 5))
        (list_of_size Gen.(int_bound 6) (pair (int_bound 2) (int_bound 2))))
    (fun (dep_picks, edges) ->
      let deps =
        List.map (fun i -> List.nth dep_templates (i mod 6)) dep_picks
      in
      let d = Structure.create () in
      let vs = Array.init 3 (fun _ -> Structure.fresh d) in
      List.iter (fun (i, j) -> Structure.add2 d edge vs.(i) vs.(j)) edges;
      let stats = Tgd.Chase.run_seminaive ~max_stages:3 deps d in
      let active = Tgd.Chase.active_triggers deps d in
      let m = Tgd.Chase.models deps d in
      let viol = Tgd.Chase.find_violation deps d in
      m = (active = [])
      && m = (viol = None)
      && (not stats.Tgd.Chase.fixpoint || m))

let test_models_after_fixpoint () =
  (* symmetric closure terminates; the incremental run must end in a model *)
  let deps = [ Tgd.Dep.make ~body:[ e "x" "y" ] ~head:[ e "y" "x" ] () ] in
  let d = Structure.create () in
  let a = Structure.fresh d and b = Structure.fresh d and c = Structure.fresh d in
  Structure.add2 d edge a b;
  Structure.add2 d edge b c;
  let stats = Tgd.Chase.run_seminaive deps d in
  check "fixpoint" true stats.Tgd.Chase.fixpoint;
  check "models" true (Tgd.Chase.models deps d);
  check "no violation" true (Tgd.Chase.find_violation deps d = None);
  check "no active triggers" true (Tgd.Chase.active_triggers deps d = [])

(* --- graph-rule chase: stage ≡ seminaive --------------------------------- *)

let test_graph_engines_tinf () =
  List.iter
    (fun stages ->
      let g1, _, _, s1 = Separating.Tinf.chase ~engine:`Stage ~stages () in
      let g2, _, _, s2 = Separating.Tinf.chase ~engine:`Seminaive ~stages () in
      check "equal graphs" true (Greengraph.Graph.equal g1 g2);
      check_int "equal applications" s1.Greengraph.Rule.applications
        s2.Greengraph.Rule.applications)
    [ 6; 10; 14 ]

let test_graph_engines_collision () =
  let p1, s1, g1 =
    Separating.Theorem14.collision_outcome ~engine:`Stage ~t:3 ~t':4 ()
  in
  let p2, s2, g2 =
    Separating.Theorem14.collision_outcome ~engine:`Seminaive ~t:3 ~t':4 ()
  in
  check "same 1-2 verdict" true (p1 = p2);
  check "equal graphs" true (Greengraph.Graph.equal g1 g2);
  check_int "equal applications" s1.Greengraph.Rule.applications
    s2.Greengraph.Rule.applications;
  check "seminaive considers fewer" true
    (s2.Greengraph.Rule.triggers_considered
    <= s1.Greengraph.Rule.triggers_considered)

let test_graph_engines_worm () =
  let wr = Reduction.Worm_rules.of_machine Rainworm.Zoo.eternal_creeper in
  let g1, _, _, s1 = Reduction.Worm_rules.chase ~engine:`Stage ~stages:15 wr in
  let g2, _, _, s2 =
    Reduction.Worm_rules.chase ~engine:`Seminaive ~stages:15 wr
  in
  check "equal graphs" true (Greengraph.Graph.equal g1 g2);
  check_int "equal applications" s1.Greengraph.Rule.applications
    s2.Greengraph.Rule.applications

let () =
  Alcotest.run "seminaive"
    [
      ( "delta",
        [
          Alcotest.test_case "structure journal" `Quick test_delta_journal;
          Alcotest.test_case "graph journal" `Quick test_graph_delta_journal;
        ] );
      ( "tgd",
        [
          Alcotest.test_case "T_Q fixture" `Quick test_tgd_engines_fixture;
          Alcotest.test_case "models after fixpoint" `Quick
            test_models_after_fixpoint;
        ] );
      ( "graph",
        [
          Alcotest.test_case "T∞" `Quick test_graph_engines_tinf;
          Alcotest.test_case "collision grid" `Quick test_graph_engines_collision;
          Alcotest.test_case "worm rules" `Quick test_graph_engines_worm;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            pin_index_property;
            hom_delta_property;
            tgd_engines_random_property;
            models_agree_property;
          ] );
    ]
