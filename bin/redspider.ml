(* redspider — command-line driver for the reproduction.

     redspider tinf --stages 12         chase T∞ and print the words
     redspider collide -t 3 -u 5        grid two colliding αβ-paths
     redspider worm NAME --steps 200    creep a zoo machine
     redspider reduce NAME              build the Theorem 5 instance
     redspider finite-model NAME        Section VIII.E countermodel
     redspider theorem2 -i 2            the FO non-rewritability report
     redspider chase -v ... -q ...      governed chase with checkpoint/resume
     redspider faults --cases 200       seeded fault-injection campaign *)

open Core
open Cmdliner

let zoo_machines =
  [
    ("creeper", `M Rainworm.Zoo.eternal_creeper);
    ("stillborn", `M Rainworm.Zoo.stillborn);
    ("halt-now", `Tm Rainworm.Zoo.tm_halt_now);
    ("write-3", `Tm (Rainworm.Zoo.tm_write_k 3));
    ("right-forever", `Tm Rainworm.Zoo.tm_right_forever);
    ("zigzag", `Tm Rainworm.Zoo.tm_zigzag);
    ("bouncer-2", `Tm (Rainworm.Zoo.tm_bouncer 2));
  ]

let machine_conv =
  let parse s =
    match List.assoc_opt s zoo_machines with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown machine %s (try: %s)" s
               (String.concat ", " (List.map fst zoo_machines))))
  in
  let print ppf _ = Format.fprintf ppf "<machine>" in
  Arg.conv (parse, print)

let materialize = function
  | `M m -> m
  | `Tm tm -> Rainworm.Tm_compiler.materialize ~max_steps:200_000 tm

(* --- observability ------------------------------------------------------ *)

(* Every subcommand accepts --trace FILE and --metrics.  The term's value
   is (); evaluating it flips the obs switches before the command body
   runs and registers an at_exit hook that exports the trace and prints
   the metrics summary — so instrumentation also covers commands that
   call [exit] themselves (e.g. audit on violation). *)
let obs_term =
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record hierarchical spans of the chase/hom/worm hot paths and \
             write them to $(docv) as Chrome trace-event JSON \
             (chrome://tracing, ui.perfetto.dev).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Count hot-path events (triggers, firings, unify attempts, …) \
             and print the counter/histogram summary on exit.")
  in
  let setup trace metrics =
    if metrics then Obs.set_metrics true;
    (match trace with Some _ -> Obs.set_tracing true | None -> ());
    if metrics || trace <> None then
      at_exit (fun () ->
          (match trace with
          | Some file ->
              Obs.Trace.export file;
              Format.printf "wrote %s (%d trace events)@." file
                (Obs.Trace.events ())
          | None -> ());
          if metrics then
            Format.printf "@.== metrics ==@.%a@." Obs.Metrics.pp_summary ())
  in
  Term.(const setup $ trace $ metrics)

(* --- resilience --------------------------------------------------------- *)

(* One process-wide cancellation token.  The first SIGINT/SIGTERM trips
   it: governed runs unwind at the next poll, the engine writes its final
   boundary checkpoint, the at_exit hook flushes traces/metrics, and the
   command exits through the documented taxonomy (code 4).  A second
   signal exits immediately. *)
let the_cancel = Resilience.Governor.Cancel.create ()

let install_signals () =
  let handle _ =
    if Resilience.Governor.Cancel.tripped the_cancel then exit 4
    else Resilience.Governor.Cancel.trip the_cancel
  in
  try
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
  with Invalid_argument _ | Sys_error _ -> ()

(* Every governed subcommand accepts --deadline and a failpoint spec; the
   term's value is the governor carrying the process cancel token. *)
let resilience_term =
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SEC"
          ~doc:
            "Wall-clock deadline in seconds.  Checked at stage              boundaries: the run ends with its work so far and exit code              3.")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm failpoints, e.g. 'par.shard=0.25,arena.grow=0.01' (a              bare name fires always).  Overrides the              $(b,REDSPIDER_FAILPOINTS) environment variable.")
  in
  let failpoint_seed =
    Arg.(
      value & opt int 0
      & info [ "failpoint-seed" ] ~docv:"N"
          ~doc:"Seed of the failpoint decision stream.")
  in
  let setup deadline failpoints failpoint_seed =
    install_signals ();
    (match
       match failpoints with
       | Some _ -> failpoints
       | None -> Sys.getenv_opt "REDSPIDER_FAILPOINTS"
     with
    | None -> ()
    | Some spec -> (
        match Resilience.Failpoint.configure ~seed:failpoint_seed spec with
        | Ok () -> ()
        | Error m ->
            Format.eprintf "error: bad failpoint spec: %s@." m;
            exit 2));
    Resilience.Governor.make ?deadline_in:deadline ~cancel:the_cancel ()
  in
  Term.(const setup $ deadline $ failpoints $ failpoint_seed)

(* The documented exit-code taxonomy, shown in every subcommand's man
   page. *)
let exits =
  Cmd.Exit.info 0 ~doc:"on success (fixpoint reached, no violations)."
  :: Cmd.Exit.info 1
       ~doc:
         "on an audit violation, a fault-campaign corruption, or an           injected fault that aborted the run."
  :: Cmd.Exit.info 2 ~doc:"on command-line or query parse errors."
  :: Cmd.Exit.info 3
       ~doc:"when a resource budget or the wall-clock deadline cut the run."
  :: Cmd.Exit.info 4 ~doc:"when cancelled by SIGINT/SIGTERM."
  :: Cmd.Exit.defaults

(* Exploratory commands treat their own stage/step fuel as the job
   description (exit 0); only an external interruption or a fault routes
   through the taxonomy. *)
let governed_exit (outcome : Resilience.Governor.outcome) =
  match outcome with
  | Resilience.Governor.Deadline | Resilience.Governor.Cancelled
  | Resilience.Governor.Faulted _ ->
      exit (Resilience.Governor.exit_code outcome)
  | Resilience.Governor.Fixpoint | Resilience.Governor.Budget _ -> ()

(* --- chase engine selection -------------------------------------------- *)

let engine_arg =
  let e =
    Arg.enum
      [
        ("stage", `Stage); ("seminaive", `Seminaive);
        ("oblivious", `Oblivious); ("par", `Par);
      ]
  in
  Arg.(
    value
    & opt e `Seminaive
    & info [ "engine" ]
        ~doc:
          "Chase engine: $(b,stage) (full rescan per stage), \
           $(b,seminaive) (delta-restricted, the default), $(b,par) \
           (semi-naive with parallel trigger discovery) or \
           $(b,oblivious) (TGD chase only)." )

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for $(b,--engine par) (default: the runtime's \
           recommended domain count).")

(* The graph-rule chase has no oblivious variant. *)
let graph_engine = function
  | `Oblivious ->
      Format.eprintf "error: --engine oblivious applies only to the TGD chase@.";
      exit 2
  | (`Stage | `Seminaive | `Par) as e -> e

let oracle = function
  | `M m -> Rainworm.Machine.oracle m
  | `Tm tm -> Rainworm.Tm_compiler.oracle tm

(* --- tinf -------------------------------------------------------------- *)

let tinf () governor stages engine jobs =
  let engine = graph_engine engine in
  let g, a, b, stats = Separating.Tinf.chase ~engine ?jobs ~governor ~stages () in
  Format.printf "chase(T∞, D_I): %d edges, %d vertices (%a)@."
    (Greengraph.Graph.size g)
    (Greengraph.Graph.order g)
    Greengraph.Rule.pp_stats stats;
  List.iter
    (fun w -> Format.printf "  %a@." Greengraph.Pg.pp_word w)
    (List.sort compare (Greengraph.Pg.words_upto g ~a ~b ~max_len:(stages / 2)));
  Format.printf "1-2 pattern: %b@." (Greengraph.Graph.has_12_pattern g);
  governed_exit stats.Greengraph.Rule.outcome

let tinf_cmd =
  let stages =
    Arg.(value & opt int 12 & info [ "stages" ] ~doc:"Chase stage budget.")
  in
  Cmd.v
    (Cmd.info "tinf" ~exits
       ~doc:"Chase T∞ from D_I and print its words (Figure 1).")
    Term.(const tinf $ obs_term $ resilience_term $ stages $ engine_arg $ jobs_arg)

(* --- collide ----------------------------------------------------------- *)

let collide () governor t u engine jobs =
  let engine = graph_engine engine in
  let pattern, stats, g =
    Separating.Theorem14.collision_outcome ~engine ?jobs ~governor ~t ~t':u ()
  in
  Format.printf
    "αβ-paths of lengths %d and %d sharing both endpoints, gridded by T□:@." t u;
  Format.printf "  1-2 pattern: %b (%d edges; %a)@." pattern
    (Greengraph.Graph.size g) Greengraph.Rule.pp_stats stats;
  governed_exit stats.Greengraph.Rule.outcome

let collide_cmd =
  let t = Arg.(value & opt int 3 & info [ "t" ] ~doc:"First path length.") in
  let u = Arg.(value & opt int 5 & info [ "u" ] ~doc:"Second path length.") in
  Cmd.v
    (Cmd.info "collide" ~exits
       ~doc:"Grid two colliding αβ-paths with T□ (Figures 2–4).")
    Term.(const collide $ obs_term $ resilience_term $ t $ u $ engine_arg $ jobs_arg)

(* --- worm -------------------------------------------------------------- *)

let worm () governor m steps =
  let o = oracle m in
  let trace =
    Rainworm.Sim.creep ~max_steps:steps ~keep_history:true ~governor o
  in
  List.iteri
    (fun i c -> if i <= 20 then Format.printf "%4d: %a@." i Rainworm.Sym.pp_word c)
    trace.Rainworm.Sim.history;
  Format.printf "status after %d steps: %s, %d cycles, max length %d@."
    trace.Rainworm.Sim.steps
    (if Rainworm.Sim.halted trace then "halted" else "creeping")
    trace.Rainworm.Sim.cycles trace.Rainworm.Sim.max_length;
  governed_exit trace.Rainworm.Sim.verdict

let worm_cmd =
  let m = Arg.(required & pos 0 (some machine_conv) None & info [] ~docv:"MACHINE") in
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Rewriting step budget.")
  in
  Cmd.v (Cmd.info "worm" ~exits ~doc:"Creep a rainworm machine from the zoo.")
    Term.(const worm $ obs_term $ resilience_term $ m $ steps)

(* --- reduce ------------------------------------------------------------ *)

let reduce () m =
  let machine = materialize m in
  let _inst, p = reduce_machine machine in
  Format.printf "Theorem 5 instance for %s:@." (Rainworm.Machine.name machine);
  Format.printf "  %a@." Reduction.Pipeline.pp_shape (Reduction.Pipeline.shape p);
  Format.printf
    "  Q finitely determines Q0 = ∃*dalt(I) iff the rainworm creeps forever.@."

let reduce_cmd =
  let m = Arg.(required & pos 0 (some machine_conv) None & info [] ~docv:"MACHINE") in
  Cmd.v
    (Cmd.info "reduce" ~exits ~doc:"Build the CQfDP instance of Theorem 5 for a machine.")
    Term.(const reduce $ obs_term $ m)

(* --- finite-model ------------------------------------------------------ *)

let finite_model () m =
  let machine = materialize m in
  let wr, fm, stats = Reduction.Finite_model.of_halting_machine machine in
  let g = fm.Reduction.Finite_model.graph in
  Format.printf "Section VIII.E model for halting machine %s:@."
    (Rainworm.Machine.name machine);
  Format.printf "  %d edges, %d vertices; grid chase fixpoint: %b@."
    (Greengraph.Graph.size g) (Greengraph.Graph.order g)
    stats.Greengraph.Rule.fixpoint;
  Format.printf "  1-2 pattern: %b;  ⊨ T_M: %b;  ⊨ T_M ∪ T□: %b@."
    (Greengraph.Graph.has_12_pattern g)
    (Greengraph.Rule.models wr.Reduction.Worm_rules.rules g)
    (Greengraph.Rule.models (Reduction.Worm_rules.with_grid wr) g)

let finite_model_cmd =
  let m = Arg.(required & pos 0 (some machine_conv) None & info [] ~docv:"MACHINE") in
  Cmd.v
    (Cmd.info "finite-model" ~exits
       ~doc:"Build and check the finite countermodel for a halting machine.")
    Term.(const finite_model $ obs_term $ m)

(* --- theorem2 ----------------------------------------------------------- *)

let theorem2 () i copies rounds =
  let t = Ef.Theorem2.q_infinity () in
  let r = Ef.Theorem2.report ~max_rounds:rounds t ~i ~copies in
  Format.printf "Theorem 2 report (i = %d, copies = %d):@." i copies;
  Format.printf "  Q0(D_y) = %b, Q0(D_n) = %b@." r.Ef.Theorem2.q0_on_dy
    r.Ef.Theorem2.q0_on_dn;
  Format.printf "  views distinguishable within %d EF rounds: %s@." rounds
    (match r.Ef.Theorem2.view_distinguishing_rounds with
    | None -> "no"
    | Some l -> Printf.sprintf "yes, at %d" l)

let theorem2_cmd =
  let i = Arg.(value & opt int 2 & info [ "i" ] ~doc:"Chase depth.") in
  let copies = Arg.(value & opt int 1 & info [ "copies" ] ~doc:"Late-fragment copies.") in
  let rounds = Arg.(value & opt int 2 & info [ "rounds" ] ~doc:"EF round budget.") in
  Cmd.v
    (Cmd.info "theorem2" ~exits ~doc:"FO non-rewritability report (Section IX).")
    Term.(const theorem2 $ obs_term $ i $ copies $ rounds)

(* --- analyze ------------------------------------------------------------- *)

let analyze () m =
  let machine = materialize m in
  Format.printf "machine %s: %d instructions, c_M = %d@."
    (Rainworm.Machine.name machine)
    (Rainworm.Machine.size machine)
    (Rainworm.Analysis.c_m machine);
  match Rainworm.Analysis.halting_analysis machine with
  | None -> Format.printf "does not halt within the budget: eternal creeper@."
  | Some (u_m, k_m, closure) ->
      Format.printf "halts after k_M = %d steps@." k_m;
      Format.printf "final configuration u_M: %a@." Rainworm.Sym.pp_word u_m;
      Format.printf "|{w : w ⤳* u_M}| = %d (finite, Lemma 23)@."
        (List.length closure)

let analyze_cmd =
  let m = Arg.(required & pos 0 (some machine_conv) None & info [] ~docv:"MACHINE") in
  Cmd.v
    (Cmd.info "analyze" ~exits
       ~doc:"Backward analysis of a machine (Lemmas 22-23).")
    Term.(const analyze $ obs_term $ m)

(* --- audit --------------------------------------------------------------- *)

let audit () seed cases max_stages max_elems max_facts =
  let budget =
    { Oracle.Diff.max_stages; max_elems; max_facts }
  in
  let report = Oracle.Diff.run_cases ~budget ~seed ~cases () in
  Format.printf "%a@." Oracle.Diff.pp_report report;
  if report.Oracle.Diff.violations <> [] then exit 1

let audit_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let cases =
    Arg.(value & opt int 200 & info [ "cases" ] ~doc:"Number of generated cases.")
  in
  let max_stages =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_stages
      & info [ "max-stages" ] ~doc:"Chase fuel per run.")
  in
  let max_elems =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_elems
      & info [ "max-elems" ] ~doc:"Element budget per run.")
  in
  let max_facts =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_facts
      & info [ "max-facts" ] ~doc:"Fact (edge) budget per run.")
  in
  Cmd.v
    (Cmd.info "audit" ~exits
       ~doc:
         "Differential audit: generate random instances, chase them under \
          every engine, diff the results bit-for-bit and audit all \
          incremental indices against ground-truth recomputation. Exits \
          nonzero on any violation.")
    Term.(const audit $ obs_term $ seed $ cases $ max_stages $ max_elems $ max_facts)

(* --- chase (with checkpoint/resume) -------------------------------------- *)

let parse_named s =
  match Cq.Parse.named_query s with
  | Ok nq -> nq
  | Error m ->
      Format.eprintf "parse error: %s@." m;
      exit 2

let chase () governor view_specs q0_spec stages engine jobs checkpoint
    checkpoint_every resume_from =
  let views = List.map parse_named view_specs in
  let _, q0 = parse_named q0_spec in
  let deps = Tgd.Dep.t_q views in
  let on_snapshot =
    Option.map
      (fun path snap ->
        match Resilience.Checkpoint.save ~kind:"tgd-chase" path snap with
        | Ok () -> ()
        | Error m -> Format.eprintf "warning: checkpoint not written: %s@." m)
      checkpoint
  in
  let stats, d =
    match resume_from with
    | Some path -> (
        match Resilience.Checkpoint.load ~kind:"tgd-chase" path with
        | Error m ->
            Format.eprintf "error: %s@." m;
            exit 2
        | Ok snap ->
            Tgd.Chase.resume ?jobs ~governor ~max_stages:stages
              ~snapshot_every:checkpoint_every ?on_snapshot deps snap)
    | None ->
        let d = fst (Tgd.Greenred.green_canonical q0) in
        let stats =
          Tgd.Chase.run ~engine ?jobs ~governor ~max_stages:stages
            ~snapshot_every:checkpoint_every ?on_snapshot deps d
        in
        (stats, d)
  in
  Format.printf "chase(T_Q, green(Q0)): %d facts over %d elements (%a)@."
    (Relational.Structure.size d)
    (Relational.Structure.card d)
    Tgd.Chase.pp_stats stats;
  List.iter
    (fun fp -> Format.printf "failpoint %a@." Resilience.Failpoint.pp_summary fp)
    (Resilience.Failpoint.summary ());
  exit (Resilience.Governor.exit_code stats.Tgd.Chase.outcome)

let chase_cmd =
  let views =
    Arg.(
      non_empty & opt_all string []
      & info [ "view"; "v" ] ~docv:"RULE"
          ~doc:"A view of T_Q, e.g. 'p2(x,y) :- E(x,m), E(m,y)'. Repeatable.")
  in
  let q0 =
    Arg.(
      required & opt (some string) None
      & info [ "q0"; "q" ] ~docv:"RULE"
          ~doc:"The query whose green canonical structure seeds the chase.")
  in
  let stages =
    Arg.(value & opt int 64 & info [ "stages" ] ~doc:"Chase stage budget.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write a resumable snapshot to $(docv) (atomically: temp file              + rename) at checkpoint intervals and at the end of the run.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint every $(docv) completed stages (default 1).")
  in
  let resume_from =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume the chase from a checkpoint instead of the canonical              structure; the engine is the snapshot's, and --stages counts              absolute stages, so prefix + resume replays the              uninterrupted run bit-for-bit.")
  in
  Cmd.v
    (Cmd.info "chase" ~exits
       ~doc:
         "Chase T_Q from the green canonical structure of Q0, with           governed budgets and checkpoint/resume.  Exit code 0 means           fixpoint; 3 means the stage budget or deadline cut the run.")
    Term.(
      const chase $ obs_term $ resilience_term $ views $ q0 $ stages
      $ engine_arg $ jobs_arg $ checkpoint $ checkpoint_every $ resume_from)

(* --- faults -------------------------------------------------------------- *)

let faults () seed cases spec max_stages max_elems max_facts =
  install_signals ();
  let budget = { Oracle.Diff.max_stages; max_elems; max_facts } in
  let report = Oracle.Fault.run_campaign ~budget ~spec ~seed ~cases () in
  Format.printf "%a@." Oracle.Fault.pp_report report;
  if report.Oracle.Fault.corruptions <> [] then exit 1

let faults_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~doc:"Number of generated cases to replay.")
  in
  let spec =
    Arg.(
      value
      & opt string Oracle.Fault.default_spec
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:"Failpoint spec armed for the faulted runs.")
  in
  let max_stages =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_stages
      & info [ "max-stages" ] ~doc:"Chase fuel per run.")
  in
  let max_elems =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_elems
      & info [ "max-elems" ] ~doc:"Element budget per run.")
  in
  let max_facts =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_facts
      & info [ "max-facts" ] ~doc:"Fact budget per run.")
  in
  Cmd.v
    (Cmd.info "faults" ~exits
       ~doc:
         "Seeded fault-injection campaign (E18): replay generated           instances with failpoints armed and verify every fault is           either recovered bit-identically or cleanly reported, and           every checkpoint write is atomic.  Exits 1 on any silent           corruption.")
    Term.(
      const faults $ obs_term $ seed $ cases $ spec $ max_stages $ max_elems
      $ max_facts)

(* --- campaign ------------------------------------------------------------ *)

let campaign () ledger families seed cases shard jobs resume daemon_socket
    lease max_attempts backoff_base backoff_cap max_stages max_elems max_facts
    failpoints failpoint_seed verbose =
  install_signals ();
  (match failpoints with
  | None -> ()
  | Some spec -> (
      match Resilience.Failpoint.configure ~seed:failpoint_seed spec with
      | Ok () -> ()
      | Error m ->
          Format.eprintf "error: bad failpoint spec: %s@." m;
          exit 2));
  let families =
    List.map
      (fun name ->
        match Oracle.Shard.family_of_name name with
        | Some f -> f
        | None ->
            Format.eprintf "error: unknown family %s (audit, faults, incr)@."
              name;
            exit 2)
      families
  in
  let cfg =
    {
      (Campaign.Supervisor.default_config ~ledger) with
      Campaign.Supervisor.families =
        (if families = [] then [ Oracle.Shard.Audit ] else families);
      seed;
      cases;
      shard_cases = shard;
      budget = { Oracle.Diff.max_stages; max_elems; max_facts };
      jobs = max 1 jobs;
      mode =
        (match daemon_socket with
        | Some socket -> Campaign.Supervisor.Daemon { socket }
        | None -> Campaign.Supervisor.Pool);
      lease_s = lease;
      max_attempts = max 1 max_attempts;
      backoff_base_s = backoff_base;
      backoff_cap_s = backoff_cap;
      should_stop =
        (fun () -> Resilience.Governor.Cancel.tripped the_cancel);
      log = verbose;
    }
  in
  match Campaign.Supervisor.run ~resume cfg with
  | Error m ->
      Format.eprintf "error: %s@." m;
      exit 2
  | Ok s ->
      Format.printf "%a@." Campaign.Supervisor.pp_summary s;
      if s.Campaign.Supervisor.s_interrupted then exit 4;
      let a = s.Campaign.Supervisor.s_accounting in
      if a.Campaign.Ledger.a_lost > 0 || a.Campaign.Ledger.a_duplicated > 0
      then begin
        Format.eprintf "error: accounting violated (%d lost, %d duplicated)@."
          a.Campaign.Ledger.a_lost a.Campaign.Ledger.a_duplicated;
        exit 1
      end;
      let bad (_, e) =
        e.Oracle.Shard.e_kind = "violation"
        || e.Oracle.Shard.e_kind = "corruption"
      in
      if
        List.exists bad s.Campaign.Supervisor.s_corpus
        || s.Campaign.Supervisor.s_quarantined > 0
      then exit 1

let campaign_cmd =
  let ledger =
    Arg.(
      required
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Durable campaign ledger (JSON lines, written atomically).              Created fresh, or replayed with $(b,--resume).")
  in
  let families =
    Arg.(
      value & opt_all string []
      & info [ "family"; "f" ] ~docv:"FAMILY"
          ~doc:
            "Oracle family to shard: audit, faults or incr (repeatable;              default audit).  The faults family runs strictly alone and              only in the in-process pool.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~doc:"Cases per family, split into shards.")
  in
  let shard =
    Arg.(
      value & opt int 25
      & info [ "shard" ] ~docv:"CASES" ~doc:"Cases per shard (seed range).")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains (or daemon connections).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the ledger and continue: completed shards are never              re-run, quarantined shards stay quarantined, and the final              coverage counters are bit-identical to an uninterrupted run.")
  in
  let daemon_socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "daemon-socket" ] ~docv:"PATH"
          ~doc:
            "Run shards as audit jobs on the redspiderd at $(docv) instead              of the in-process pool.")
  in
  let lease =
    Arg.(
      value & opt float 5.0
      & info [ "lease" ] ~docv:"SEC"
          ~doc:
            "Shard lease deadline; a worker heartbeats per case, and an              expired lease is reclaimed and re-dispatched.")
  in
  let max_attempts =
    Arg.(
      value & opt int 8
      & info [ "max-attempts" ] ~docv:"K"
          ~doc:"Failures before a shard is quarantined as poison.")
  in
  let backoff_base =
    Arg.(
      value & opt float 0.02
      & info [ "backoff-base" ] ~docv:"SEC"
          ~doc:"Base of the jittered exponential retry backoff.")
  in
  let backoff_cap =
    Arg.(
      value & opt float 0.5
      & info [ "backoff-cap" ] ~docv:"SEC" ~doc:"Cap of the retry backoff.")
  in
  let max_stages =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_stages
      & info [ "max-stages" ] ~doc:"Chase fuel per run.")
  in
  let max_elems =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_elems
      & info [ "max-elems" ] ~doc:"Element budget per run.")
  in
  let max_facts =
    Arg.(
      value
      & opt int Oracle.Diff.default_budget.Oracle.Diff.max_facts
      & info [ "max-facts" ] ~doc:"Fact budget per run.")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm failpoints for the whole campaign, e.g.              'shard.case=0.2,campaign.vanish=0.3,campaign.ledger=0.5' — the              chaos ladder the supervisor must survive with exactly-once              accounting.")
  in
  let failpoint_seed =
    Arg.(
      value & opt int 0
      & info [ "failpoint-seed" ] ~docv:"N"
          ~doc:"Seed of the failpoint decision stream.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log shard events to stderr.")
  in
  Cmd.v
    (Cmd.info "campaign" ~exits
       ~doc:
         "Run a crash-tolerant sharded oracle campaign: seed-range shards           tracked in a durable ledger, leased to workers with deadlines,           reclaimed on expiry, retried with jittered backoff and           quarantined (auto-shrunk) when poison.  $(b,--resume) continues           an interrupted campaign with exactly-once shard accounting;           exit 1 means a violation, corruption or quarantined shard, 4           means interrupted.")
    Term.(
      const campaign $ obs_term $ ledger $ families $ seed $ cases $ shard
      $ jobs $ resume $ daemon_socket $ lease $ max_attempts $ backoff_base
      $ backoff_cap $ max_stages $ max_elems $ max_facts $ failpoints
      $ failpoint_seed $ verbose)

(* --- determinacy --------------------------------------------------------- *)

let determinacy () governor view_specs q0_spec stages engine jobs =
  let views = List.map parse_named view_specs in
  let _, q0 = parse_named q0_spec in
  let inst = Determinacy.Instance.make ~views ~q0 in
  Format.printf "%a@." Determinacy.Instance.pp inst;
  Format.printf "engine:       %a@." Tgd.Chase.pp_engine engine;
  Format.printf "unrestricted: %a@."
    Determinacy.Solver.pp_verdict
    (Determinacy.Solver.unrestricted ~engine ?jobs ~governor ~max_stages:stages
       inst);
  Format.printf "finite:       %a@."
    Determinacy.Solver.pp_verdict
    (Determinacy.Solver.finite ~engine ?jobs ~governor inst);
  (match Determinacy.Rewriting.conjunctive ~views q0 with
  | Determinacy.Rewriting.Rewriting plan ->
      Format.printf "rewriting:    %a@." Cq.Query.pp plan
  | Determinacy.Rewriting.No_conjunctive_rewriting ->
      Format.printf "rewriting:    no conjunctive rewriting@.");
  if Resilience.Governor.Cancel.tripped the_cancel then exit 4

let determinacy_cmd =
  let views =
    Arg.(
      non_empty & opt_all string []
      & info [ "view"; "v" ] ~docv:"RULE"
          ~doc:"A view, e.g. 'p2(x,y) :- E(x,m), E(m,y)'. Repeatable.")
  in
  let q0 =
    Arg.(
      required & opt (some string) None
      & info [ "q0"; "q" ] ~docv:"RULE" ~doc:"The query to determine.")
  in
  let stages =
    Arg.(value & opt int 32 & info [ "stages" ] ~doc:"Chase stage budget.")
  in
  Cmd.v
    (Cmd.info "determinacy" ~exits
       ~doc:"Decide (boundedly) whether views determine a query.")
    Term.(
      const determinacy $ obs_term $ resilience_term $ views $ q0 $ stages
      $ engine_arg $ jobs_arg)

(* --- serve / client ----------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/redspiderd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path of the daemon.")

let tcp_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp-port" ] ~docv:"PORT"
        ~doc:"Additionally listen on loopback TCP port $(docv).")

let serve () socket tcp_port workers quantum quantum_seconds store cache_capacity
    no_cache_persist read_deadline max_frame verbose =
  let cfg =
    {
      Serve.Server.socket;
      tcp_port;
      workers = max 1 workers;
      quantum = { Serve.Runner.stages = max 1 quantum; seconds = quantum_seconds };
      store_dir = store;
      cache_capacity = max 0 cache_capacity;
      cache_persist = not no_cache_persist;
      read_deadline_s = read_deadline;
      max_frame = max 1024 max_frame;
      log = verbose;
    }
  in
  Serve.Server.serve cfg

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains (max concurrently running job slices).")
  in
  let quantum =
    Arg.(
      value & opt int 4
      & info [ "quantum" ] ~docv:"STAGES"
          ~doc:
            "Preemption quantum: chase stages a job may run per slice              before it is checkpointed and re-queued.")
  in
  let quantum_seconds =
    Arg.(
      value & opt float 0.
      & info [ "quantum-seconds" ] ~docv:"SEC"
          ~doc:
            "Optional wall-clock sub-deadline per slice (0 disables; the              stage quantum remains the progress guarantee).")
  in
  let store =
    Arg.(
      value
      & opt string "/tmp/redspiderd"
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Job store directory: manifests and suspend checkpoints,              rescanned on restart for crash recovery.")
  in
  let cache_capacity =
    Arg.(
      value & opt int 512
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:
            "Result-cache entries (digest-keyed; duplicates coalesce              behind an in-flight primary).  0 disables caching.")
  in
  let no_cache_persist =
    Arg.(
      value & flag
      & info [ "no-cache-persist" ]
          ~doc:
            "Keep the result cache in memory only instead of persisting              pure entries to the job store.")
  in
  let read_deadline =
    Arg.(
      value & opt float 60.
      & info [ "read-deadline" ] ~docv:"SEC"
          ~doc:
            "Drop a client that stays idle past $(docv) seconds while the              daemon owes it no reply (half-open peers; 0 disables).")
  in
  let max_frame =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Maximum in-flight bytes of one request line; a client              exceeding it gets a structured error and is disconnected.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log scheduling to stderr.")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:
         "Run redspiderd: accept chase/determinacy/worm/audit jobs as           newline-delimited JSON over a Unix (and optionally loopback           TCP) socket, execute them preemptively on persistent worker           domains under a continuous batched scheduler — a divergent           chase is suspended to a checkpoint at every quantum and           resumed later, bit-identically, and duplicate submissions are           answered from a digest-keyed result cache — and drain           gracefully on SIGTERM.")
    Term.(
      const serve $ obs_term $ socket_arg $ tcp_port_arg $ workers $ quantum
      $ quantum_seconds $ store $ cache_capacity $ no_cache_persist
      $ read_deadline $ max_frame $ verbose)

(* One-shot client: print the daemon's JSON reply line and exit through
   the taxonomy (a waited-for job propagates its own exit code). *)
let client () socket tcp_port op id views q0 stages engine machine steps seed
    cases family from_case job_quantum timeout instance edits =
  let conn =
    let tcp = Option.map (fun p -> ("127.0.0.1", p)) tcp_port in
    match Serve.Client.connect ?tcp ~socket () with
    | Ok c -> c
    | Error m ->
        Format.eprintf "error: %s@." m;
        exit 2
  in
  let fail m =
    Format.eprintf "error: %s@." m;
    exit 2
  in
  let need_id () =
    match id with Some id -> id | None -> fail "this op needs a job id"
  in
  let print_reply reply = print_endline (Serve.Json.to_string reply) in
  let job_exit reply =
    match
      Option.bind (Serve.Json.member "job" reply) (Serve.Json.mem_int "exit_code")
    with
    | Some c -> exit c
    | None -> ()
  in
  let spec_of_op kind =
    match kind with
    | "submit-chase" | "submit-determinacy" ->
        let q0 = match q0 with Some q -> q | None -> fail "missing --q0" in
        if views = [] then fail "missing --view";
        let views = List.mapi (fun i r -> (Printf.sprintf "v%d" i, r)) views in
        if kind = "submit-chase" then
          Serve.Job.Chase { views; q0; max_stages = stages; engine }
        else Serve.Job.Determinacy { views; q0; max_stages = stages; engine }
    | "submit-worm" ->
        let machine =
          match machine with Some m -> m | None -> fail "missing --machine"
        in
        Serve.Job.Worm { machine; steps }
    | "submit-mutate" ->
        let q0 = match q0 with Some q -> q | None -> fail "missing --q0" in
        let instance =
          match instance with
          | Some i -> i
          | None -> fail "missing --instance"
        in
        if views = [] then fail "missing --view";
        if edits = [] then fail "missing --edit";
        let views = List.mapi (fun i r -> (Printf.sprintf "v%d" i, r)) views in
        (* --edit insert:rel:1,2 | retract:rel:1,-1 (negative = fresh) *)
        let parse_edit s =
          match String.split_on_char ':' s with
          | [ verb; rel; args ] -> (
              let add =
                match verb with
                | "insert" -> true
                | "retract" -> false
                | _ -> fail (Printf.sprintf "bad edit verb in %S" s)
              in
              match
                List.map int_of_string (String.split_on_char ',' args)
              with
              | args -> { Serve.Job.add; rel; args }
              | exception _ -> fail (Printf.sprintf "bad edit args in %S" s))
          | _ -> fail (Printf.sprintf "bad edit %S (verb:rel:a,b)" s)
        in
        Serve.Job.Mutate
          {
            instance;
            views;
            q0;
            ops = List.map parse_edit edits;
            max_stages = stages;
            engine;
          }
    | _ -> Serve.Job.Audit { seed; cases; max_stages = stages; family; from_case }
  in
  let result =
    match op with
    | "ping" -> Serve.Client.ping conn
    | "jobs" -> Serve.Client.jobs conn
    | "stats" -> Serve.Client.stats conn
    | "drain" -> Serve.Client.drain conn
    | "status" -> Serve.Client.status conn (need_id ())
    | "cancel" -> Serve.Client.cancel conn (need_id ())
    | "wait" -> (
        match Serve.Client.wait_terminal ?poll_s:timeout conn (need_id ()) with
        | Error m -> Error m
        | Ok job ->
            let reply = Serve.Json.Obj [ ("ok", Serve.Json.Bool true); ("job", job) ] in
            print_reply reply;
            job_exit reply;
            exit 0)
    | ( "submit-chase" | "submit-determinacy" | "submit-worm" | "submit-audit"
      | "submit-mutate" ) as kind -> (
        let spec = spec_of_op kind in
        match Serve.Client.submit conn ?quantum:job_quantum spec with
        | Error m -> Error m
        | Ok id -> Ok (Serve.Json.Obj [ ("ok", Serve.Json.Bool true); ("id", Serve.Json.String id) ]))
    | op -> fail (Printf.sprintf "unknown op %s" op)
  in
  Serve.Client.close conn;
  match result with
  | Ok reply ->
      print_reply reply;
      job_exit reply
  | Error m ->
      Format.eprintf "error: %s@." m;
      exit 1

let client_cmd =
  let op =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "One of: ping, submit-chase, submit-determinacy, submit-worm,              submit-audit, submit-mutate, status, wait, cancel, jobs,              stats, drain.")
  in
  let id = Arg.(value & pos 1 (some string) None & info [] ~docv:"JOB") in
  let views =
    Arg.(
      value & opt_all string []
      & info [ "view"; "v" ] ~docv:"RULE" ~doc:"A view rule (repeatable).")
  in
  let q0 =
    Arg.(
      value
      & opt (some string) None
      & info [ "q0"; "q" ] ~docv:"RULE" ~doc:"The query rule.")
  in
  let stages =
    Arg.(value & opt int 64 & info [ "stages" ] ~doc:"Job stage budget.")
  in
  let machine =
    Arg.(
      value
      & opt (some string) None
      & info [ "machine" ] ~docv:"NAME" ~doc:"Zoo machine of a worm job.")
  in
  let steps =
    Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Worm step budget.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Audit seed.") in
  let cases =
    Arg.(value & opt int 50 & info [ "cases" ] ~doc:"Audit case count.")
  in
  let family =
    Arg.(
      value & opt string "audit"
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:"Oracle family of an audit job: audit or incr.")
  in
  let from_case =
    Arg.(
      value & opt int 0
      & info [ "from-case" ] ~docv:"N"
          ~doc:"First case index of the audit shard (campaign sharding).")
  in
  let job_quantum =
    Arg.(
      value
      & opt (some int) None
      & info [ "quantum" ] ~docv:"STAGES"
          ~doc:"Per-job preemption quantum override.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SEC" ~doc:"Poll interval for wait.")
  in
  let instance =
    Arg.(
      value
      & opt (some string) None
      & info [ "instance" ] ~docv:"NAME"
          ~doc:"Held-instance name of a mutate job.")
  in
  let edits =
    Arg.(
      value & opt_all string []
      & info [ "edit"; "e" ] ~docv:"EDIT"
          ~doc:
            "An edit op (repeatable, in order): insert:REL:A,B or              retract:REL:A,B — negative element ids allocate fresh              elements, shared across the instance.")
  in
  Cmd.v
    (Cmd.info "client" ~exits
       ~doc:
         "Talk to a running redspiderd: submit jobs, query status, wait           for results, cancel, or drain the daemon.")
    Term.(
      const client $ obs_term $ socket_arg $ tcp_port_arg $ op $ id $ views
      $ q0 $ stages $ engine_arg $ machine $ steps $ seed $ cases $ family
      $ from_case $ job_quantum $ timeout $ instance $ edits)

let () =
  let doc = "Red Spider Meets a Rainworm — PODS 2016, executable" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "redspider" ~doc)
          [
            tinf_cmd; collide_cmd; worm_cmd; reduce_cmd; finite_model_cmd;
            theorem2_cmd; determinacy_cmd; chase_cmd; analyze_cmd; audit_cmd;
            faults_cmd; campaign_cmd; serve_cmd; client_cmd;
          ]))
