(** The chaos gate for campaign exactly-once accounting.

    Extends the PR-5 failpoint ladder with three campaign sites —
    ["shard.case"] (kill a worker mid-shard), ["campaign.vanish"]
    (worker completes but drops the completion; only lease expiry
    recovers the shard) and ["campaign.ledger"] (torn ledger append) —
    and requires that a campaign interrupted twice and resumed twice
    under the armed ladder reproduce the uninterrupted run's per-family
    coverage counters and counterexample corpus {e byte-identically}
    ({!Supervisor.canonical}), with ledger accounting showing 0 lost
    and 0 duplicated shards.

    Unlike E18's per-case schedules, the ladder here is deliberately
    not replayable — worker domains race on the global failpoint
    stream — because the gate asserts invariants that must hold under
    {e any} fault schedule, not a recorded one. *)

val default_spec : string

type report = {
  g_seeds : int list;
  g_injected : int;  (** faults injected across all chaotic runs *)
  g_shards : int;  (** per campaign *)
  g_corpus : int;  (** corpus entries in the reference runs *)
  g_failures : string list;  (** invariant violations; empty = pass *)
}

(** Mismatch descriptions between two summaries' canonical
    coverage/corpus renderings; empty when byte-identical. *)
val compare_summaries :
  seed:int -> Supervisor.summary -> Supervisor.summary -> string list

(** Run the gate: per seed, one clean reference campaign and one
    chaotic interrupted-twice/resumed-twice campaign over the audit and
    incr families, compared byte-for-byte.  Ledgers are written under
    [dir] (caller creates and cleans it). *)
val gate :
  ?spec:string ->
  ?seeds:int list ->
  ?jobs:int ->
  ?cases:int ->
  ?shard_cases:int ->
  ?budget:Oracle.Diff.budget ->
  ?lease_s:float ->
  ?stop_after:int ->
  dir:string ->
  unit ->
  report

(** Hammer {!Ledger.append} under a high-probability torn-write site:
    after every append a fresh {!Ledger.load} must succeed, skip at
    most one line, and yield a prefix of the in-memory records.
    Returns (injected tears, failure descriptions — empty = pass). *)
val ledger_drill :
  ?appends:int -> path:string -> seed:int -> unit -> int * string list
