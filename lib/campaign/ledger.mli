(** The durable campaign ledger: one JSON record per line, republished
    atomically on every append via {!Resilience.Checkpoint.write_atomic}
    (unique temp + fsync + rename + directory fsync).  Ledgers are
    small — one record per shard {e event}, never per case — so the
    whole-file rewrite is noise next to the oracle work it accounts,
    and it makes the appender self-healing: a torn write (emulated by
    the ["campaign.ledger"] failpoint) is repaired by the next
    successful append, and recovery skips unparseable trailing lines
    instead of refusing the ledger.

    Exactly-once accounting rests on two facts: replay keeps only the
    {e first} [Complete] per shard id (later ones are counted as
    duplicates — the chaos gate requires that count to be 0 because the
    supervisor never re-dispatches a completed shard), and shard
    outcomes are deterministic in [(family, seed, range)], so a re-run
    forced by a lost completion reproduces bit-identical counters —
    "exactly once in effect" even when the work ran twice. *)

(** The campaign spec, stored as the ledger's first record; resuming
    validates the configured spec against it. *)
type header = {
  h_families : Oracle.Shard.family list;
  h_seed : int;
  h_cases : int;  (** cases per family *)
  h_shard_cases : int;  (** cases per shard (last shard may be short) *)
  h_max_attempts : int;  (** K: failures before quarantine *)
}

type record =
  | Create of header
  | Lease of { sid : string; attempt : int; worker : string; deadline_s : float }
  | Complete of { sid : string; attempt : int; outcome : Oracle.Shard.outcome }
  | Fail of { sid : string; attempt : int; error : string }
  | Reclaim of { sid : string; attempt : int; reason : string }
      (** a lease expired (vanished worker) or was abandoned at resume *)
  | Quarantine of {
      sid : string;
      attempts : int;
      poison_case : int option;  (** first reproducibly-crashing case *)
      desc : string list;  (** minimized description, via {!Oracle.Shard.minimize} *)
    }

type t

(** The shard id ["family:seed:lo"]. *)
val sid : Oracle.Shard.family -> seed:int -> lo:int -> string

val parse_sid : string -> (Oracle.Shard.family * int * int) option

(** All shards of a campaign, in canonical order: [(family, lo, n)]. *)
val plan : header -> (Oracle.Shard.family * int * int) list

(** Create a fresh ledger holding the [Create] record.  Refuses an
    existing path (resume instead — an accidental restart must not
    clobber a campaign).  The create bypasses the ["campaign.ledger"]
    failpoint: the header must be durable, or a crash before the first
    successful append would strand the resume with no header. *)
val create : path:string -> header -> (t, string) result

(** Load an existing ledger, skipping unparseable lines (torn trailing
    writes); fails only when no [Create] header survives. *)
val load : path:string -> (t, string) result

(** Append one record.  The record always enters the in-memory ledger;
    [Error] means disk publication failed (injected torn write) and the
    next successful append will republish it. *)
val append : t -> record -> (unit, string) result

val records : t -> record list

(** Unparseable lines dropped by {!load}. *)
val skipped : t -> int

type replay = {
  rp_header : header;
  rp_completed : (string * Oracle.Shard.outcome) list;
      (** first [Complete] per sid, in ledger order *)
  rp_attempts : (string * int) list;
      (** per sid, [Fail] + [Reclaim] records so far *)
  rp_quarantined : (string * (int option * string list)) list;
  rp_duplicated : int;  (** [Complete] records beyond a sid's first *)
}

val replay : t -> (replay, string) result

type accounting = {
  a_shards : int;  (** planned shards *)
  a_completed : int;
  a_quarantined : int;
  a_duplicated : int;  (** must be 0: no shard counted twice *)
  a_lost : int;  (** must be 0 at campaign end: no shard dropped *)
}

val account : t -> (accounting, string) result
val pp_header : Format.formatter -> header -> unit
val pp_accounting : Format.formatter -> accounting -> unit
