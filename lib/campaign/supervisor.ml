(* The campaign supervisor.

   One supervisor thread owns the ledger (single writer — workers never
   touch it) and a lease table; worker domains pull shards from a work
   queue and push outcomes back.  Crash tolerance is the ledger's:
   every shard event is a durable record, and [run ~resume:true]
   rebuilds completed/quarantined/attempt state by replay, so an
   interrupted campaign continues with nothing lost and nothing
   re-counted.  Exactly-once is "in effect", not "in execution": a
   shard whose completion vanished (worker killed, lease expired,
   ledger record torn away) re-runs, and determinism in
   [(family, seed, range)] makes the re-run's counters bit-identical,
   while replay's first-complete-wins keeps the accounting single. *)

module Shard = Oracle.Shard
module FP = Resilience.Failpoint
module J = Serve.Json

type mode = Pool | Daemon of { socket : string }

type config = {
  ledger_path : string;
  families : Shard.family list;
  seed : int;
  cases : int;
  shard_cases : int;
  budget : Oracle.Diff.budget;
  jobs : int;
  mode : mode;
  lease_s : float;
  max_attempts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  should_stop : unit -> bool;
  log : bool;
}

let default_config ~ledger =
  {
    ledger_path = ledger;
    families = [ Shard.Audit ];
    seed = 42;
    cases = 50;
    shard_cases = 10;
    budget = Oracle.Diff.default_budget;
    jobs = 2;
    mode = Pool;
    lease_s = 5.;
    max_attempts = 8;
    backoff_base_s = 0.02;
    backoff_cap_s = 0.5;
    should_stop = (fun () -> false);
    log = false;
  }

type summary = {
  s_coverage : (string * (string * int) list) list;
  s_corpus : (string * Shard.entry) list;
  s_shards : int;
  s_completed : int;
  s_quarantined : int;
  s_reclaimed : int;
  s_retried : int;
  s_append_errors : int;
  s_interrupted : bool;
  s_accounting : Ledger.accounting;
}

(* The canonical text rendering of what must be bit-identical across
   interrupted/resumed/uninterrupted schedules: per-family coverage
   counters and the counterexample corpus — never scheduling noise like
   retry or reclaim counts. *)
let canonical s =
  let b = Buffer.create 256 in
  List.iter
    (fun (fam, counters) ->
      Buffer.add_string b fam;
      Buffer.add_string b ":";
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%d" k v))
        counters;
      Buffer.add_char b '\n')
    s.s_coverage;
  List.iter
    (fun (fam, (e : Shard.entry)) ->
      Buffer.add_string b
        (Printf.sprintf "%s case %d %s: %s\n" fam e.Shard.e_case e.Shard.e_kind
           (String.concat " | " e.Shard.e_desc)))
    s.s_corpus;
  Buffer.contents b

let pp_summary ppf s =
  Fmt.pf ppf "@[<v>campaign: %d shards, %d completed, %d quarantined (%a)%s@,%a@]"
    s.s_shards s.s_completed s.s_quarantined Ledger.pp_accounting s.s_accounting
    (if s.s_interrupted then " [interrupted]" else "")
    Fmt.lines
    (String.trim (canonical s))

(* --- internal plumbing -------------------------------------------------- *)

type task = { t_family : Shard.family; t_lo : int; t_n : int; t_attempt : int }

type done_msg = { d_task : task; d_result : (Shard.outcome, string) result }

type lease = { mutable l_deadline : float; l_attempt : int }

let jitter_state seed = ref (Int64.of_int ((seed * 0x9e37) lxor 0x7f4a7c15))

let jitter_next st =
  let open Int64 in
  st := add !st 0x9e3779b97f4a7c15L;
  let z = mul (logxor !st (shift_right_logical !st 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  to_float (shift_right_logical (logxor z (shift_right_logical z 31)) 11)
  /. 9007199254740992.

let now_s = Obs.Clock.now_s

(* Decode a daemon audit result back into a shard outcome.  The shard
   identity comes from the task, not from the wire echo. *)
let outcome_of_result task result =
  let ( let* ) = Option.bind in
  let decoded =
    let* counters =
      match J.member "counters" result with
      | Some (J.Obj kvs) ->
          List.fold_left
            (fun acc (k, v) ->
              let* acc = acc in
              let* v = J.to_int v in
              Some ((k, v) :: acc))
            (Some []) kvs
          |> Option.map List.rev
      | _ -> None
    in
    let* corpus = J.mem_list "corpus" result in
    let* corpus =
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          let* e_case = J.mem_int "case" e in
          let* e_kind = J.mem_str "kind" e in
          let* e_desc = J.mem_string_list "desc" e in
          Some ({ Shard.e_case; e_kind; e_desc } :: acc))
        (Some []) corpus
      |> Option.map List.rev
    in
    Some (counters, corpus)
  in
  match decoded with
  | None -> Error "audit result carried no shard counters"
  | Some (counters, corpus) ->
      Ok
        {
          Shard.o_family = task.t_family;
          o_seed = 0 (* filled by caller *);
          o_lo = task.t_lo;
          o_n = task.t_n;
          o_counters = Shard.counters_add [] counters;
          o_corpus = Shard.sort_corpus corpus;
        }

(* --- the run ------------------------------------------------------------ *)

let exec (cfg : config) ledger (rp : Ledger.replay) ~stop_after_completes =
  let header = rp.Ledger.rp_header in
  let seed = header.Ledger.h_seed in
  let plan = Ledger.plan header in
  let logf fmt =
    if cfg.log then Printf.eprintf ("campaign: " ^^ fmt ^^ "\n%!")
    else Printf.ifprintf stderr fmt
  in

  (* replayed state *)
  let completed : (string, Shard.outcome) Hashtbl.t = Hashtbl.create 64 in
  let quarantined : (string, int option * string list) Hashtbl.t =
    Hashtbl.create 8
  in
  let attempts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (s, o) -> Hashtbl.replace completed s o) rp.Ledger.rp_completed;
  List.iter
    (fun (s, q) -> Hashtbl.replace quarantined s q)
    rp.Ledger.rp_quarantined;
  List.iter (fun (s, n) -> Hashtbl.replace attempts s n) rp.Ledger.rp_attempts;
  let failures sid = Option.value ~default:0 (Hashtbl.find_opt attempts sid) in

  let pending =
    ref
      (List.filter_map
         (fun (f, lo, n) ->
           let sid = Ledger.sid f ~seed ~lo in
           if Hashtbl.mem completed sid || Hashtbl.mem quarantined sid then None
           else
             Some { t_family = f; t_lo = lo; t_n = n; t_attempt = failures sid + 1 })
         plan)
  in
  let delayed = ref [] in

  (* worker plumbing *)
  let mu = Mutex.create () and cond = Condition.create () in
  let work : task Queue.t = Queue.create () in
  let dones : done_msg Queue.t = Queue.create () in
  let wstop = ref false in
  let leases : (string, lease) Hashtbl.t = Hashtbl.create 16 in
  let sid_of t = Ledger.sid t.t_family ~seed ~lo:t.t_lo in

  let heartbeat sid =
    Mutex.lock mu;
    (match Hashtbl.find_opt leases sid with
    | Some l -> l.l_deadline <- now_s () +. cfg.lease_s
    | None -> ());
    Mutex.unlock mu
  in

  let run_local task =
    let sid = sid_of task in
    try
      Ok
        (Shard.run ~budget:cfg.budget
           ~on_case:(fun _ -> heartbeat sid)
           task.t_family ~seed ~lo:task.t_lo ~n:task.t_n)
    with e -> Error (Printexc.to_string e)
  in

  let run_remote socket task =
    let sid = sid_of task in
    let spec =
      Serve.Job.Audit
        {
          seed;
          cases = task.t_n;
          max_stages = cfg.budget.Oracle.Diff.max_stages;
          family = Shard.family_name task.t_family;
          from_case = task.t_lo;
        }
    in
    (* the whole exchange retries — reconnect included — because the
       daemon's digest-keyed result cache makes resubmission idempotent;
       backoff stays under the lease so heartbeats keep the lease alive *)
    Serve.Client.with_retry ~socket
      ~deadline_s:(Float.max 10. (4. *. cfg.lease_s))
      ~base_s:0.02
      ~cap_s:(Float.max 0.05 (cfg.lease_s /. 8.))
      ~seed:(seed + task.t_lo)
      (fun conn ->
        match Serve.Client.submit conn spec with
        | Error _ as e -> e
        | Ok id ->
            let rec poll () =
              heartbeat sid;
              if FP.fire "campaign.sock" then Error "injected socket drop"
              else
                match
                  Serve.Client.wait conn
                    ~timeout_s:(Float.max 0.05 (cfg.lease_s /. 4.))
                    id
                with
                | Error _ as e -> e
                | Ok reply -> (
                    match Serve.Client.job_of_reply reply with
                    | Error _ as e -> e
                    | Ok j -> (
                        match J.mem_str "state" j with
                        | Some "done" -> (
                            match J.member "result" j with
                            | None -> Error "done job without result"
                            | Some r ->
                                Result.map
                                  (fun (o : Shard.outcome) ->
                                    { o with Shard.o_seed = seed })
                                  (outcome_of_result task r))
                        | Some "faulted" ->
                            Error
                              (Option.value ~default:"job faulted"
                                 (J.mem_str "error" j))
                        | Some "cancelled" -> Error "job cancelled"
                        | _ ->
                            if J.mem_bool "draining" reply = Some true then
                              Error "daemon draining"
                            else poll ()))
            in
            poll ())
  in

  let worker () =
    let rec go () =
      Mutex.lock mu;
      while Queue.is_empty work && not !wstop do
        Condition.wait cond mu
      done;
      if !wstop then Mutex.unlock mu (* abandon queued work: crash semantics *)
      else begin
        let task = Queue.pop work in
        Mutex.unlock mu;
        let result =
          match cfg.mode with
          | Pool -> run_local task
          | Daemon { socket } -> run_remote socket task
        in
        (* chaos: a vanishing worker computed the shard, then dropped the
           completion on the floor — only lease expiry can recover it *)
        let vanish =
          match result with Ok _ -> FP.fire "campaign.vanish" | Error _ -> false
        in
        if not vanish then begin
          Mutex.lock mu;
          Queue.add { d_task = task; d_result = result } dones;
          Mutex.unlock mu
        end;
        go ()
      end
    in
    go ()
  in

  (* supervisor-side accounting *)
  let reclaimed = ref 0 and retried = ref 0 and append_errors = ref 0 in
  let completes_this_run = ref 0 in
  let interrupted = ref false in
  let jst = jitter_state seed in
  let append r =
    match Ledger.append ledger r with
    | Ok () -> ()
    | Error e ->
        incr append_errors;
        logf "ledger append: %s" e
  in

  let quarantine task err =
    let sid = sid_of task in
    let rec probe case =
      if case >= task.t_lo + task.t_n then None
      else
        match Shard.try_case ~budget:cfg.budget task.t_family ~seed ~case with
        | Ok () -> probe (case + 1)
        | Error e -> Some (case, e)
    in
    let poison_case, desc =
      match probe task.t_lo with
      | Some (case, e) ->
          ( Some case,
            (Printf.sprintf "case %d: %s" case e)
            :: Shard.minimize ~budget:cfg.budget task.t_family ~seed ~case )
      | None ->
          ( None,
            [
              Printf.sprintf
                "failed %d attempts (last: %s); probes clean — injected \
                 faults or environment"
                cfg.max_attempts err;
            ] )
    in
    Hashtbl.replace quarantined sid (poison_case, desc);
    append
      (Ledger.Quarantine { sid; attempts = cfg.max_attempts; poison_case; desc });
    logf "quarantined %s" sid
  in

  let retry_or_quarantine task err =
    let sid = sid_of task in
    let n = failures sid in
    if n >= cfg.max_attempts then quarantine task err
    else begin
      incr retried;
      let back =
        Float.min cfg.backoff_cap_s
          (cfg.backoff_base_s *. (2. ** float_of_int (n - 1)))
      in
      let delay = back *. (0.5 +. (0.5 *. jitter_next jst)) in
      delayed :=
        (now_s () +. delay, { task with t_attempt = n + 1 }) :: !delayed
    end
  in

  let process_done d =
    let sid = sid_of d.d_task in
    Mutex.lock mu;
    Hashtbl.remove leases sid;
    Mutex.unlock mu;
    match d.d_result with
    | Ok outcome ->
        if not (Hashtbl.mem completed sid) then begin
          Hashtbl.add completed sid outcome;
          append
            (Ledger.Complete { sid; attempt = d.d_task.t_attempt; outcome });
          incr completes_this_run
        end
    | Error e ->
        Hashtbl.replace attempts sid (failures sid + 1);
        append (Ledger.Fail { sid; attempt = d.d_task.t_attempt; error = e });
        logf "%s attempt %d failed: %s" sid d.d_task.t_attempt e;
        retry_or_quarantine d.d_task e
  in

  let sweep_leases () =
    let now = now_s () in
    Mutex.lock mu;
    let expired =
      Hashtbl.fold
        (fun sid l acc -> if now > l.l_deadline then (sid, l) :: acc else acc)
        leases []
    in
    List.iter (fun (sid, _) -> Hashtbl.remove leases sid) expired;
    Mutex.unlock mu;
    List.iter
      (fun (sid, (l : lease)) ->
        incr reclaimed;
        append
          (Ledger.Reclaim
             { sid; attempt = l.l_attempt; reason = "lease expired" });
        Hashtbl.replace attempts sid (failures sid + 1);
        logf "reclaimed expired lease %s" sid;
        match
          List.find_opt
            (fun (f, lo, _) -> Ledger.sid f ~seed ~lo = sid)
            plan
        with
        | Some (f, lo, n) ->
            retry_or_quarantine
              { t_family = f; t_lo = lo; t_n = n; t_attempt = l.l_attempt }
              "lease expired"
        | None -> ())
      expired
  in

  let faults_inflight () =
    Hashtbl.fold
      (fun sid _ acc ->
        acc
        ||
        match Ledger.parse_sid sid with
        | Some (Shard.Faults, _, _) -> true
        | _ -> false)
      leases false
  in

  let dispatch () =
    let now = now_s () in
    let ready, still = List.partition (fun (t, _) -> t <= now) !delayed in
    delayed := still;
    pending := !pending @ List.map snd ready;
    let continue = ref true in
    while !continue do
      Mutex.lock mu;
      let inflight = Hashtbl.length leases in
      let faults_busy = faults_inflight () in
      Mutex.unlock mu;
      if inflight >= cfg.jobs then continue := false
      else begin
        (* faults shards own the process-global failpoint registry, so
           they run strictly alone: dispatched only into an idle pool,
           and nothing else dispatches while one is leased *)
        let dispatchable t =
          match t.t_family with
          | Shard.Faults -> inflight = 0
          | _ -> not faults_busy
        in
        match List.find_opt dispatchable !pending with
        | None -> continue := false
        | Some task ->
            pending := List.filter (fun t -> t != task) !pending;
            let sid = sid_of task in
            let deadline = now_s () +. cfg.lease_s in
            Mutex.lock mu;
            Hashtbl.replace leases sid
              { l_deadline = deadline; l_attempt = task.t_attempt };
            Queue.add task work;
            Condition.signal cond;
            Mutex.unlock mu;
            append
              (Ledger.Lease
                 {
                   sid;
                   attempt = task.t_attempt;
                   worker =
                     (match cfg.mode with
                     | Pool -> "pool"
                     | Daemon _ -> "daemon");
                   deadline_s = deadline;
                 })
      end
    done
  in

  let total = List.length plan in
  let finished () = Hashtbl.length completed + Hashtbl.length quarantined in
  let domains = List.init (max 1 cfg.jobs) (fun _ -> Domain.spawn worker) in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mu;
      wstop := true;
      Condition.broadcast cond;
      Mutex.unlock mu;
      List.iter Domain.join domains)
    (fun () ->
      let running = ref true in
      while !running do
        (* drain completions; an abort mid-drain drops the rest, exactly
           as a crash would *)
        Mutex.lock mu;
        let ds = ref [] in
        while not (Queue.is_empty dones) do
          ds := Queue.pop dones :: !ds
        done;
        Mutex.unlock mu;
        List.iter
          (fun d ->
            if !running then begin
              process_done d;
              match stop_after_completes with
              | Some k when !completes_this_run >= k ->
                  interrupted := true;
                  running := false
              | _ -> ()
            end)
          (List.rev !ds);
        if !running && cfg.should_stop () then begin
          interrupted := true;
          running := false
        end;
        if !running then begin
          sweep_leases ();
          dispatch ();
          if finished () >= total then running := false
          else Unix.sleepf 0.004
        end
      done);

  (* summary over the full (replayed + this-run) state *)
  let coverage =
    List.filter_map
      (fun f ->
        if List.mem f header.Ledger.h_families then
          Some
            ( Shard.family_name f,
              Hashtbl.fold
                (fun _ (o : Shard.outcome) acc ->
                  if o.Shard.o_family = f then
                    Shard.counters_add acc o.Shard.o_counters
                  else acc)
                completed [] )
        else None)
      Shard.all_families
  in
  let corpus =
    let from_completed =
      Hashtbl.fold
        (fun _ (o : Shard.outcome) acc ->
          List.map (fun e -> (Shard.family_name o.Shard.o_family, e)) o.Shard.o_corpus
          @ acc)
        completed []
    in
    let from_quarantine =
      Hashtbl.fold
        (fun sid (poison, desc) acc ->
          match Ledger.parse_sid sid with
          | Some (f, _, lo) ->
              ( Shard.family_name f,
                {
                  Shard.e_case = Option.value ~default:lo poison;
                  e_kind = "quarantine";
                  e_desc = desc;
                } )
              :: acc
          | None -> acc)
        quarantined []
    in
    List.sort
      (fun (fa, (a : Shard.entry)) (fb, b) ->
        compare (fa, a.Shard.e_case, a.Shard.e_kind) (fb, b.Shard.e_case, b.Shard.e_kind))
      (from_completed @ from_quarantine)
  in
  match Ledger.account ledger with
  | Error e -> Error e
  | Ok acct ->
      Ok
        {
          s_coverage = coverage;
          s_corpus = corpus;
          s_shards = total;
          s_completed = Hashtbl.length completed;
          s_quarantined = Hashtbl.length quarantined;
          s_reclaimed = !reclaimed;
          s_retried = !retried;
          s_append_errors = !append_errors;
          s_interrupted = !interrupted;
          s_accounting = acct;
        }

let run ?(resume = false) ?stop_after_completes (cfg : config) =
  let header =
    {
      Ledger.h_families = cfg.families;
      h_seed = cfg.seed;
      h_cases = cfg.cases;
      h_shard_cases = cfg.shard_cases;
      h_max_attempts = cfg.max_attempts;
    }
  in
  if cfg.families = [] then Error "no families configured"
  else if cfg.cases <= 0 || cfg.shard_cases <= 0 then
    Error "cases and shard_cases must be positive"
  else if List.mem Shard.Faults cfg.families && FP.active () then
    (* the faults oracle reconfigures the registry the chaos ladder is
       using; running both would corrupt either's schedule *)
    Error "faults family cannot run while failpoints are armed"
  else if
    List.mem Shard.Faults cfg.families
    && match cfg.mode with Daemon _ -> true | Pool -> false
  then Error "faults family cannot run in daemon mode"
  else if resume then
    match Ledger.load ~path:cfg.ledger_path with
    | Error e -> Error e
    | Ok ledger -> (
        match Ledger.replay ledger with
        | Error e -> Error e
        | Ok rp ->
            if rp.Ledger.rp_header <> header then
              Error
                (Format.asprintf
                   "ledger header does not match the configured campaign@.  \
                    ledger:     %a@.  configured: %a"
                   Ledger.pp_header rp.Ledger.rp_header Ledger.pp_header
                   header)
            else exec cfg ledger rp ~stop_after_completes)
  else
    match Ledger.create ~path:cfg.ledger_path header with
    | Error e -> Error e
    | Ok ledger ->
        exec cfg ledger
          {
            Ledger.rp_header = header;
            rp_completed = [];
            rp_attempts = [];
            rp_quarantined = [];
            rp_duplicated = 0;
          }
          ~stop_after_completes
