(** The crash-tolerant campaign supervisor.

    Splits a seeded oracle campaign into seed-range shards
    ({!Oracle.Shard}), tracks every shard event in the durable
    {!Ledger}, leases shards to workers with deadlines refreshed by a
    per-case heartbeat, reclaims expired leases (a killed or vanished
    worker), retries failed shards with capped jittered exponential
    backoff, and after [max_attempts] failures quarantines a poison
    shard — probing its cases individually and shrinking a reproducible
    crasher via {!Oracle.Shard.minimize} — instead of retrying forever.

    One supervisor thread is the ledger's single writer; workers (pool
    domains, or daemon connections in [Daemon] mode) never touch it.
    [run ~resume:true] replays the ledger and continues with per-family
    coverage counters intact; determinism of shards in
    [(family, seed, range)] plus replay's first-complete-wins makes
    every shard count {e exactly once in effect} no matter how often
    faults force re-execution. *)

(** Where shards execute: on in-process domains, or as audit jobs
    submitted to a redspiderd socket (so one campaign can span daemon
    restarts and processes).  Daemon shards run under the daemon's
    default element/fact budgets — keep [budget] at the default (with
    any [max_stages]) when comparing coverage across modes. *)
type mode = Pool | Daemon of { socket : string }

type config = {
  ledger_path : string;
  families : Oracle.Shard.family list;
  seed : int;
  cases : int;  (** per family *)
  shard_cases : int;
  budget : Oracle.Diff.budget;
  jobs : int;  (** worker domains / daemon connections *)
  mode : mode;
  lease_s : float;  (** lease deadline; refreshed per completed case *)
  max_attempts : int;  (** K failures before quarantine *)
  backoff_base_s : float;
  backoff_cap_s : float;
  should_stop : unit -> bool;  (** polled between rounds; SIGINT hook *)
  log : bool;
}

val default_config : ledger:string -> config

type summary = {
  s_coverage : (string * (string * int) list) list;
      (** per-family summed coverage counters, canonically sorted *)
  s_corpus : (string * Oracle.Shard.entry) list;
      (** the counterexample corpus: violations, corruptions and
          quarantine records, canonically sorted *)
  s_shards : int;
  s_completed : int;
  s_quarantined : int;
  s_reclaimed : int;  (** expired leases, this run *)
  s_retried : int;  (** re-dispatches after failures, this run *)
  s_append_errors : int;  (** ledger appends that failed (torn) this run *)
  s_interrupted : bool;  (** stopped before every shard resolved *)
  s_accounting : Ledger.accounting;
}

(** The canonical byte rendering of coverage + corpus — exactly the
    part that must be bit-identical between an uninterrupted run and
    any interrupted/resumed/fault-ridden schedule of the same
    campaign.  Scheduling noise (retries, reclaims) is excluded. *)
val canonical : summary -> string

val pp_summary : Format.formatter -> summary -> unit

(** Run (or, with [resume], continue) the campaign.  Refuses a faults
    family when failpoints are armed or in daemon mode (that family
    owns the process-global registry, so it also runs strictly alone
    within the pool).  [stop_after_completes] aborts the run after
    processing that many completions — dropping whatever else is in
    flight, exactly as a crash would — and is how tests and the chaos
    gate simulate interruption. *)
val run :
  ?resume:bool ->
  ?stop_after_completes:int ->
  config ->
  (summary, string) result
