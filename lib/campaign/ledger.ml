(* The campaign ledger: one JSON record per line, published with the
   PR-5 atomic-write discipline.  Appends rewrite the whole file via
   [Checkpoint.write_atomic] — campaign ledgers are small (one line per
   shard event, not per case), so O(n²) bytes over a campaign's life is
   noise next to the oracle work, and a rewriting appender is
   self-healing: the next successful append republishes any record a
   torn write lost from disk.

   The ["campaign.ledger"] failpoint emulates the torn append of a
   naive in-place writer (previous content plus half of the new record,
   no trailing newline) so recovery's skip-bad-trailing-line path stays
   exercised even though the atomic writer cannot tear. *)

module J = Serve.Json
module FP = Resilience.Failpoint
module Shard = Oracle.Shard

type header = {
  h_families : Shard.family list;
  h_seed : int;
  h_cases : int;
  h_shard_cases : int;
  h_max_attempts : int;
}

type record =
  | Create of header
  | Lease of { sid : string; attempt : int; worker : string; deadline_s : float }
  | Complete of { sid : string; attempt : int; outcome : Shard.outcome }
  | Fail of { sid : string; attempt : int; error : string }
  | Reclaim of { sid : string; attempt : int; reason : string }
  | Quarantine of {
      sid : string;
      attempts : int;
      poison_case : int option;
      desc : string list;
    }

type t = { path : string; mutable rev_records : record list; skipped : int }

(* --- shard naming ------------------------------------------------------ *)

let sid family ~seed ~lo = Printf.sprintf "%s:%d:%d" (Shard.family_name family) seed lo

let parse_sid s =
  match String.split_on_char ':' s with
  | [ fam; seed; lo ] -> (
      match
        (Shard.family_of_name fam, int_of_string_opt seed, int_of_string_opt lo)
      with
      | Some f, Some seed, Some lo -> Some (f, seed, lo)
      | _ -> None)
  | _ -> None

let plan h =
  List.concat_map
    (fun f ->
      let rec shards lo acc =
        if lo >= h.h_cases then List.rev acc
        else
          let n = min h.h_shard_cases (h.h_cases - lo) in
          shards (lo + n) ((f, lo, n) :: acc)
      in
      shards 0 [])
    h.h_families

(* --- JSON codec -------------------------------------------------------- *)

let strings ss = J.List (List.map (fun s -> J.String s) ss)

let header_to_json h =
  J.Obj
    [
      ("r", J.String "create");
      ("families", strings (List.map Shard.family_name h.h_families));
      ("seed", J.Int h.h_seed);
      ("cases", J.Int h.h_cases);
      ("shard_cases", J.Int h.h_shard_cases);
      ("max_attempts", J.Int h.h_max_attempts);
    ]

let outcome_to_json (o : Shard.outcome) =
  J.Obj
    [
      ("family", J.String (Shard.family_name o.Shard.o_family));
      ("seed", J.Int o.Shard.o_seed);
      ("lo", J.Int o.Shard.o_lo);
      ("n", J.Int o.Shard.o_n);
      ("counters", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) o.Shard.o_counters));
      ( "corpus",
        J.List
          (List.map
             (fun (e : Shard.entry) ->
               J.Obj
                 [
                   ("case", J.Int e.Shard.e_case);
                   ("kind", J.String e.Shard.e_kind);
                   ("desc", strings e.Shard.e_desc);
                 ])
             o.Shard.o_corpus) );
    ]

let record_to_json = function
  | Create h -> header_to_json h
  | Lease { sid; attempt; worker; deadline_s } ->
      J.Obj
        [
          ("r", J.String "lease");
          ("sid", J.String sid);
          ("attempt", J.Int attempt);
          ("worker", J.String worker);
          ("deadline", J.Float deadline_s);
        ]
  | Complete { sid; attempt; outcome } ->
      J.Obj
        [
          ("r", J.String "complete");
          ("sid", J.String sid);
          ("attempt", J.Int attempt);
          ("outcome", outcome_to_json outcome);
        ]
  | Fail { sid; attempt; error } ->
      J.Obj
        [
          ("r", J.String "fail");
          ("sid", J.String sid);
          ("attempt", J.Int attempt);
          ("error", J.String error);
        ]
  | Reclaim { sid; attempt; reason } ->
      J.Obj
        [
          ("r", J.String "reclaim");
          ("sid", J.String sid);
          ("attempt", J.Int attempt);
          ("reason", J.String reason);
        ]
  | Quarantine { sid; attempts; poison_case; desc } ->
      J.Obj
        [
          ("r", J.String "quarantine");
          ("sid", J.String sid);
          ("attempts", J.Int attempts);
          ( "poison_case",
            match poison_case with Some c -> J.Int c | None -> J.Null );
          ("desc", strings desc);
        ]

let ( let* ) = Option.bind

let header_of_json j =
  let* fams = J.mem_string_list "families" j in
  let* families =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* f = Shard.family_of_name name in
        Some (f :: acc))
      (Some []) fams
    |> Option.map List.rev
  in
  let* h_seed = J.mem_int "seed" j in
  let* h_cases = J.mem_int "cases" j in
  let* h_shard_cases = J.mem_int "shard_cases" j in
  let* h_max_attempts = J.mem_int "max_attempts" j in
  Some { h_families = families; h_seed; h_cases; h_shard_cases; h_max_attempts }

let outcome_of_json j =
  let* fam = J.mem_str "family" j in
  let* o_family = Shard.family_of_name fam in
  let* o_seed = J.mem_int "seed" j in
  let* o_lo = J.mem_int "lo" j in
  let* o_n = J.mem_int "n" j in
  let* counters = J.member "counters" j in
  let* o_counters =
    match counters with
    | J.Obj kvs ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* v = J.to_int v in
            Some ((k, v) :: acc))
          (Some []) kvs
        |> Option.map List.rev
    | _ -> None
  in
  let* corpus = J.mem_list "corpus" j in
  let* o_corpus =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e_case = J.mem_int "case" e in
        let* e_kind = J.mem_str "kind" e in
        let* e_desc = J.mem_string_list "desc" e in
        Some ({ Shard.e_case; e_kind; e_desc } :: acc))
      (Some []) corpus
    |> Option.map List.rev
  in
  Some { Shard.o_family; o_seed; o_lo; o_n; o_counters; o_corpus }

let record_of_json j =
  let* r = J.mem_str "r" j in
  match r with
  | "create" ->
      let* h = header_of_json j in
      Some (Create h)
  | "lease" ->
      let* sid = J.mem_str "sid" j in
      let* attempt = J.mem_int "attempt" j in
      let* worker = J.mem_str "worker" j in
      let* deadline_s = J.mem_float "deadline" j in
      Some (Lease { sid; attempt; worker; deadline_s })
  | "complete" ->
      let* sid = J.mem_str "sid" j in
      let* attempt = J.mem_int "attempt" j in
      let* oj = J.member "outcome" j in
      let* outcome = outcome_of_json oj in
      Some (Complete { sid; attempt; outcome })
  | "fail" ->
      let* sid = J.mem_str "sid" j in
      let* attempt = J.mem_int "attempt" j in
      let* error = J.mem_str "error" j in
      Some (Fail { sid; attempt; error })
  | "reclaim" ->
      let* sid = J.mem_str "sid" j in
      let* attempt = J.mem_int "attempt" j in
      let* reason = J.mem_str "reason" j in
      Some (Reclaim { sid; attempt; reason })
  | "quarantine" ->
      let* sid = J.mem_str "sid" j in
      let* attempts = J.mem_int "attempts" j in
      let poison_case =
        match J.member "poison_case" j with
        | Some (J.Int c) -> Some c
        | _ -> None
      in
      let* desc = J.mem_string_list "desc" j in
      Some (Quarantine { sid; attempts; poison_case; desc })
  | _ -> None

(* --- persistence ------------------------------------------------------- *)

let render rev_records =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string b (J.to_string (record_to_json r));
      Buffer.add_char b '\n')
    (List.rev rev_records);
  Buffer.contents b

let torn_write path content fragment =
  (* best-effort non-atomic write: what a naive appender leaves behind
     when killed mid-record *)
  try
    let oc = open_out path in
    output_string oc content;
    output_string oc fragment;
    close_out oc
  with Sys_error _ -> ()

let append t record =
  t.rev_records <- record :: t.rev_records;
  if FP.fire "campaign.ledger" then begin
    let line = J.to_string (record_to_json record) in
    let frag = String.sub line 0 (String.length line / 2) in
    torn_write t.path (render (List.tl t.rev_records)) frag;
    Error "fault injected at campaign.ledger: append torn mid-record"
  end
  else Resilience.Checkpoint.write_atomic t.path (render t.rev_records)

let create ~path header =
  if Sys.file_exists path then
    Error (Printf.sprintf "ledger %s already exists (resume instead?)" path)
  else
    let t = { path; rev_records = [ Create header ]; skipped = 0 } in
    (* bypass the "campaign.ledger" failpoint: the Create header must be
       durable or a crash before the first successful append would
       strand a resume with no header at all *)
    match Resilience.Checkpoint.write_atomic path (render t.rev_records) with
    | Ok () -> Ok t
    | Error e -> Error e

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content ->
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> String.trim l <> "")
      in
      let skipped = ref 0 in
      let records =
        List.filter_map
          (fun line ->
            match J.parse line with
            | Ok j -> (
                match record_of_json j with
                | Some r -> Some r
                | None ->
                    incr skipped;
                    None)
            | Error _ ->
                incr skipped;
                None)
          lines
      in
      (match records with
      | Create _ :: _ ->
          Ok { path; rev_records = List.rev records; skipped = !skipped }
      | _ -> Error (Printf.sprintf "ledger %s has no create header" path))

let records t = List.rev t.rev_records
let skipped t = t.skipped

(* --- replay ------------------------------------------------------------ *)

type replay = {
  rp_header : header;
  rp_completed : (string * Shard.outcome) list;
  rp_attempts : (string * int) list;
  rp_quarantined : (string * (int option * string list)) list;
  rp_duplicated : int;
}

let replay t =
  match records t with
  | Create rp_header :: rest ->
      let completed = Hashtbl.create 32 in
      let order = ref [] in
      let attempts = Hashtbl.create 32 in
      let quarantined = ref [] in
      let duplicated = ref 0 in
      List.iter
        (fun r ->
          match r with
          | Create _ -> ()
          | Lease _ -> ()
          | Complete { sid; outcome; _ } ->
              if Hashtbl.mem completed sid then incr duplicated
              else begin
                Hashtbl.add completed sid outcome;
                order := sid :: !order
              end
          | Fail { sid; _ } | Reclaim { sid; _ } ->
              Hashtbl.replace attempts sid
                (1 + Option.value ~default:0 (Hashtbl.find_opt attempts sid))
          | Quarantine { sid; poison_case; desc; _ } ->
              quarantined := (sid, (poison_case, desc)) :: !quarantined)
        rest;
      Ok
        {
          rp_header;
          rp_completed =
            List.rev_map (fun sid -> (sid, Hashtbl.find completed sid)) !order;
          rp_attempts =
            Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) attempts [];
          rp_quarantined = List.rev !quarantined;
          rp_duplicated = !duplicated;
        }
  | _ -> Error "ledger has no create header"

type accounting = {
  a_shards : int;
  a_completed : int;
  a_quarantined : int;
  a_duplicated : int;
  a_lost : int;
}

let account t =
  match replay t with
  | Error e -> Error e
  | Ok rp ->
      let h = rp.rp_header in
      let planned = plan h in
      let lost =
        List.filter
          (fun (f, lo, _) ->
            let s = sid f ~seed:h.h_seed ~lo in
            (not (List.mem_assoc s rp.rp_completed))
            && not (List.mem_assoc s rp.rp_quarantined))
          planned
      in
      Ok
        {
          a_shards = List.length planned;
          a_completed = List.length rp.rp_completed;
          a_quarantined = List.length rp.rp_quarantined;
          a_duplicated = rp.rp_duplicated;
          a_lost = List.length lost;
        }

let pp_header ppf h =
  Fmt.pf ppf "families=[%a] seed=%d cases=%d shard_cases=%d max_attempts=%d"
    Fmt.(list ~sep:(any ",") Shard.pp_family)
    h.h_families h.h_seed h.h_cases h.h_shard_cases h.h_max_attempts

let pp_accounting ppf a =
  Fmt.pf ppf "%d shards: %d completed, %d quarantined, %d duplicated, %d lost"
    a.a_shards a.a_completed a.a_quarantined a.a_duplicated a.a_lost
