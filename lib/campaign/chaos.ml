(* The chaos gate: proves the campaign's exactly-once accounting under
   the extended PR-5 failpoint ladder.

   Per seed, an uninterrupted reference campaign runs with the registry
   clear; then the ladder is armed (["shard.case"] kills workers
   mid-shard, ["campaign.vanish"] drops completions so only lease
   expiry recovers them, ["campaign.ledger"] tears ledger appends) and
   the same campaign runs interrupted twice (abort-after-k-completes,
   which drops unprocessed completions exactly as a crash would) and
   resumed twice before finishing.  The gate then requires the chaotic
   run's canonical coverage + corpus to be byte-identical to the
   reference and its ledger accounting to show 0 lost / 0 duplicated.

   Unlike E18's per-case fault schedules, the ladder here is NOT
   replayable: worker domains race on the global failpoint stream, so
   which probe draws which decision varies run to run.  That is the
   point — the gate asserts invariants that must hold under any fault
   schedule, not a recorded one.

   A separate ledger drill hammers append/load with torn writes at high
   probability to exercise recovery's skip-bad-trailing-line path far
   more densely than a campaign's natural append rate. *)

module FP = Resilience.Failpoint
module Shard = Oracle.Shard

let default_spec = "shard.case=0.12,campaign.vanish=0.25,campaign.ledger=0.6"

type report = {
  g_seeds : int list;
  g_injected : int;
  g_shards : int;  (** per campaign *)
  g_corpus : int;  (** corpus entries in the reference runs *)
  g_failures : string list;  (** invariant violations; empty = pass *)
}

let compare_summaries ~seed (a : Supervisor.summary) (b : Supervisor.summary) =
  let ca = Supervisor.canonical a and cb = Supervisor.canonical b in
  if ca = cb then []
  else
    [
      Printf.sprintf
        "seed %d: resumed coverage/corpus diverged from reference\n--- \
         reference:\n%s--- resumed:\n%s"
        seed ca cb;
    ]

let check_accounting ~seed ~what (s : Supervisor.summary) =
  let a = s.Supervisor.s_accounting in
  let err fmt = Printf.ksprintf (fun m -> Some m) fmt in
  List.filter_map
    (fun x -> x)
    [
      (if a.Ledger.a_lost > 0 then
         err "seed %d: %s lost %d shard(s)" seed what a.Ledger.a_lost
       else None);
      (if a.Ledger.a_duplicated > 0 then
         err "seed %d: %s duplicated %d shard(s)" seed what
           a.Ledger.a_duplicated
       else None);
    ]

let gate ?(spec = default_spec) ?(seeds = [ 11; 23; 42 ]) ?(jobs = 3)
    ?(cases = 10) ?(shard_cases = 3) ?budget ?(lease_s = 1.0)
    ?(stop_after = 2) ~dir () =
  let budget =
    Option.value budget
      ~default:
        {
          Oracle.Diff.max_stages = 3;
          Oracle.Diff.max_elems = 60;
          Oracle.Diff.max_facts = 150;
        }
  in
  let cfg ~ledger ~seed =
    {
      (Supervisor.default_config ~ledger) with
      Supervisor.families = [ Shard.Audit; Shard.Incr ];
      seed;
      cases;
      shard_cases;
      budget;
      jobs;
      lease_s;
      max_attempts = 30;
      backoff_base_s = 0.01;
      backoff_cap_s = 0.05;
    }
  in
  let injected = ref 0 in
  let failures = ref [] in
  let corpus = ref 0 in
  let shards = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun seed ->
      (* 1. the uninterrupted reference, registry clear *)
      FP.clear ();
      let ref_ledger = Filename.concat dir (Printf.sprintf "ref-%d.ledger" seed) in
      let chaos_ledger =
        Filename.concat dir (Printf.sprintf "chaos-%d.ledger" seed)
      in
      match Supervisor.run (cfg ~ledger:ref_ledger ~seed) with
      | Error e -> fail "seed %d: reference campaign failed: %s" seed e
      | Ok reference -> (
          shards := reference.Supervisor.s_shards;
          corpus := !corpus + List.length reference.Supervisor.s_corpus;
          List.iter
            (fun m -> failures := m :: !failures)
            (check_accounting ~seed ~what:"reference" reference);
          (* 2. the same campaign under the ladder: interrupted twice,
             resumed twice, then run to completion *)
          FP.configure_exn ~seed spec;
          let chaos_cfg = cfg ~ledger:chaos_ledger ~seed in
          let final =
            match
              Supervisor.run ~stop_after_completes:stop_after chaos_cfg
            with
            | Error e -> Error e
            | Ok _ -> (
                match
                  Supervisor.run ~resume:true
                    ~stop_after_completes:stop_after chaos_cfg
                with
                | Error e -> Error e
                | Ok _ -> Supervisor.run ~resume:true chaos_cfg)
          in
          injected := !injected + FP.injected_total ();
          FP.clear ();
          match final with
          | Error e -> fail "seed %d: chaotic campaign failed: %s" seed e
          | Ok resumed ->
              if resumed.Supervisor.s_interrupted then
                fail "seed %d: final resume did not run to completion" seed;
              List.iter
                (fun m -> failures := m :: !failures)
                (check_accounting ~seed ~what:"chaotic run" resumed);
              List.iter
                (fun m -> failures := m :: !failures)
                (compare_summaries ~seed reference resumed)))
    seeds;
  {
    g_seeds = seeds;
    g_injected = !injected;
    g_shards = !shards;
    g_corpus = !corpus;
    g_failures = List.rev !failures;
  }

(* Hammer the ledger with torn appends: after every append — torn or
   not — a fresh [load] must succeed, count at most one skipped line,
   and yield a prefix of the in-memory record sequence.  Returns the
   number of injected tears (with failure descriptions, empty = pass). *)
let ledger_drill ?(appends = 250) ~path ~seed () =
  FP.clear ();
  FP.configure_exn ~seed "campaign.ledger=0.6";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let header =
    {
      Ledger.h_families = [ Shard.Audit ];
      h_seed = seed;
      h_cases = 1;
      h_shard_cases = 1;
      h_max_attempts = 1;
    }
  in
  (match Ledger.create ~path header with
  | Error e -> fail "create: %s" e
  | Ok led ->
      for i = 1 to appends do
        let r =
          if i mod 2 = 0 then
            Ledger.Fail { sid = "audit:1:0"; attempt = i; error = "drill" }
          else
            Ledger.Lease
              {
                sid = "audit:1:0";
                attempt = i;
                worker = "drill";
                deadline_s = float_of_int i;
              }
        in
        (match Ledger.append led r with Ok () -> () | Error _ -> ());
        let mem = Ledger.records led in
        match Ledger.load ~path with
        | Error e -> fail "append %d: reload failed: %s" i e
        | Ok led2 ->
            if Ledger.skipped led2 > 1 then
              fail "append %d: %d skipped lines (expected <= 1)" i
                (Ledger.skipped led2);
            let disk = Ledger.records led2 in
            let k = List.length disk in
            if k < List.length mem - 1 then
              fail "append %d: disk lost %d records (at most 1 may lag)" i
                (List.length mem - k);
            if disk <> List.filteri (fun j _ -> j < k) mem then
              fail "append %d: disk records are not a prefix of memory" i
      done);
  let injected = FP.injected_total () in
  FP.clear ();
  (injected, List.rev !failures)
