(* The interned fact arena: the flat hot-path representation of a
   structure's fact set.

   Predicate symbols are interned to dense ids on first use; each added
   fact gets the next dense fact id and its arguments are appended to one
   growable [int array].  A fact is then three integers away: its symbol
   id, its offset into the argument store, and the arguments themselves —
   no boxed [Fact.t] traversal, no [Symbol.t] comparison, no hashing on
   the join inner loop.

   The boxed [Fact.t] is still kept per id (the public [Structure] API
   speaks [Fact.t], and the delta journal is the id range itself), but
   the homomorphism evaluator never touches it. *)

let c_facts = Obs.Metrics.counter "arena.facts"

type t = {
  sym_ids : int Symbol.Tbl.t;        (* symbol -> dense id *)
  mutable sym_objs : Symbol.t array; (* dense id -> symbol *)
  mutable n_syms : int;
  offsets : Intvec.t;                (* fact id -> offset into [data] *)
  sym_of : Intvec.t;                 (* fact id -> symbol id *)
  data : Intvec.t;                   (* flat argument store *)
  mutable fact_objs : Fact.t array;  (* fact id -> boxed fact *)
  mutable n_facts : int;
}

(* Filler for uninitialized [fact_objs] slots; never observable. *)
let dummy_fact = Fact.make (Symbol.make "\000arena" 0) [||]

let create () =
  {
    sym_ids = Symbol.Tbl.create 32;
    sym_objs = Array.make 8 (Fact.sym dummy_fact);
    n_syms = 0;
    offsets = Intvec.create ~capacity:64 ();
    sym_of = Intvec.create ~capacity:64 ();
    data = Intvec.create ~capacity:256 ();
    fact_objs = Array.make 64 dummy_fact;
    n_facts = 0;
  }

let n_syms t = t.n_syms
let n_facts t = t.n_facts

(* The dense id of [sym], allocated on first use. *)
let intern t sym =
  match Symbol.Tbl.find_opt t.sym_ids sym with
  | Some i -> i
  | None ->
      let i = t.n_syms in
      if i >= Array.length t.sym_objs then begin
        let a = Array.make (2 * Array.length t.sym_objs) sym in
        Array.blit t.sym_objs 0 a 0 t.n_syms;
        t.sym_objs <- a
      end;
      t.sym_objs.(i) <- sym;
      Symbol.Tbl.replace t.sym_ids sym i;
      t.n_syms <- i + 1;
      i

(* The dense id of [sym] if it has been interned, [-1] otherwise.  A
   symbol without an id has no facts, so a [-1] pool is empty. *)
let find_sym t sym =
  match Symbol.Tbl.find_opt t.sym_ids sym with Some i -> i | None -> -1

let sym_obj t i = t.sym_objs.(i)

(* Append [f] (already known to be fresh) and return its dense id. *)
let append t f =
  let id = t.n_facts in
  if id >= Array.length t.fact_objs then begin
    (* the arena-exhaustion failpoint: growth "fails" before any state
       is touched, surfacing as a [Faulted] chase outcome *)
    Resilience.Failpoint.hit "arena.grow";
    let a = Array.make (2 * Array.length t.fact_objs) dummy_fact in
    Array.blit t.fact_objs 0 a 0 t.n_facts;
    t.fact_objs <- a
  end;
  t.fact_objs.(id) <- f;
  Intvec.push t.sym_of (intern t (Fact.sym f));
  Intvec.push t.offsets (Intvec.length t.data);
  Array.iter (fun e -> Intvec.push t.data e) (Fact.args f);
  t.n_facts <- id + 1;
  if !Obs.metrics_on then Obs.Metrics.incr c_facts;
  id

let fact t id = t.fact_objs.(id)
let sym t id = Intvec.unsafe_get t.sym_of id

(* Argument [pos] of fact [id], read straight off the flat store. *)
let arg t id pos = Intvec.unsafe_get t.data (Intvec.unsafe_get t.offsets id + pos)

(* Per-worker staging buffers for parallel firing.

   A worker cannot append to the arena (ids, journal order and the
   indexes are all sequential state), so the parallel fire phase instead
   *stages* each head atom it would add into a private flat buffer:
   [trigger; atom; arity; args...] records appended to one [Intvec].
   Arguments are either resolved elements ([>= 0]) or the fire-plan's
   negative placeholder codes for not-yet-allocated fresh elements and
   constants — allocation order is a sequential resource, so placeholders
   are resolved only at the canonical merge.

   Workers own disjoint contiguous trigger ranges, and each buffer stages
   its range in ascending trigger order, so concatenating the buffers in
   worker order replays the exact canonical firing sequence; the merge
   then re-checks each trigger and materializes or drops its staged
   atoms.  No arena state is shared with the workers, which is the whole
   bit-identity argument: only the sequential merge allocates. *)
module Staging = struct
  type s = { buf : Intvec.t }

  let create () = { buf = Intvec.create ~capacity:256 () }

  let stage s ~trigger ~atom args =
    Intvec.push s.buf trigger;
    Intvec.push s.buf atom;
    Intvec.push s.buf (Array.length args);
    Array.iter (fun v -> Intvec.push s.buf v) args

  (* [iter s f] decodes the records in staging order; the args array is
     fresh per record and safe to keep. *)
  let iter s f =
    let n = Intvec.length s.buf in
    let k = ref 0 in
    while !k < n do
      let trigger = Intvec.unsafe_get s.buf !k in
      let atom = Intvec.unsafe_get s.buf (!k + 1) in
      let arity = Intvec.unsafe_get s.buf (!k + 2) in
      let args = Array.init arity (fun p -> Intvec.unsafe_get s.buf (!k + 3 + p)) in
      k := !k + 3 + arity;
      f ~trigger ~atom args
    done
end
