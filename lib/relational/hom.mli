(** Homomorphism search (Section II.A).

    One backtracking engine matches a conjunction of atoms against a
    structure; it powers CQ evaluation, TGD trigger detection, containment
    tests and core computation.  Atoms are visited in a
    connectivity-greedy order and candidate facts are drawn from the
    structure's element index whenever an argument is already bound.

    Two evaluators share that strategy: the interpreted reference
    ([compiled:false]) over boxed facts and persistent bindings, and the
    default compiled one ({!Plan}) — an array-of-slots program over the
    structure's dense-id arena, fixed once per body.  They enumerate the
    same bindings in the same order and tick the same counters. *)

(** A variable binding: query variables to structure elements. *)
type binding = int Term.Var_map.t

(** The connectivity-greedy atom ordering (exposed for tests/benches).
    [bound] seeds the already-bound variables (the semi-naive pivot's).
    The result is a permutation of the input: repeated atoms — even
    physically equal ones — each keep their occurrence. *)
val order_atoms : ?bound:Term.Var_set.t -> Atom.t list -> Atom.t list

(** [iter_all ?compiled ?ordered ?init target atoms f] calls [f] on every
    homomorphism from [atoms] into [target] extending [init].  Raise
    [Exit] from [f] to stop early.  [ordered:false] disables the atom
    ordering (ablation); [compiled:false] selects the interpreted
    reference evaluator (they are bit-identical — the property suite in
    [test_plan.ml] holds the compiled path to the interpreted one).

    [~delta] restricts the enumeration to homomorphisms whose image uses
    at least one fact of [delta] (each produced exactly once): for each
    atom in turn, that atom is pinned to a delta fact and the rest is
    matched against the full structure — semi-naive evaluation's delta
    rules.  With [~delta] and an empty atom list, nothing is produced. *)
val iter_all :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  ?delta:Fact.t list ->
  Structure.t ->
  Atom.t list ->
  (binding -> unit) ->
  unit

(** First homomorphism found, if any.  The early exit is internal (a
    [ref] plus a locally-caught [Exit]); no exception escapes this
    module. *)
val find :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  binding option

val exists :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  bool

(** Number of homomorphisms (beware of blowup). *)
val count :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  int

(** {1 Compiled join plans}

    A plan fixes a body's atom order and binding-slot layout once; the
    evaluator is then a backtracking scan over the structure's dense fact
    ids and [Intvec] pin buckets, with a mutable [int array] of slots in
    place of persistent maps.  The chase compiles each TGD body once per
    run and re-evaluates the plan every stage. *)
module Plan : sig
  type t

  (** A family of per-pivot delta plans sharing one slot table, so a full
      match is the same slot array whichever pivot produced it — the
      dedup key of semi-naive evaluation and the sort key of the parallel
      merge. *)
  type family

  (** [compile ?ordered ?bound atoms] fixes the evaluation order (with
      [bound] seeding {!order_atoms}) and interns the body's variables to
      dense slots. *)
  val compile : ?ordered:bool -> ?bound:Term.Var_set.t -> Atom.t list -> t

  (** One rest-plan per pivot occurrence, mirroring the interpreted delta
      decomposition. *)
  val compile_family : ?ordered:bool -> Atom.t list -> family

  (** Number of variable slots; emitted arrays have this length. *)
  val nslots : t -> int

  (** The slot of a variable name, if the body mentions it. *)
  val slot : t -> string -> int option

  val var_name : t -> int -> string
  val family_nslots : family -> int
  val family_slot : family -> string -> int option

  (** [iter_slots ?init plan target emit] — the raw evaluator.  [init]
      seeds slots (pairs [(slot, element)]).  [emit] receives the live
      slot array: copy it before storing.  Raise [Exit] to stop early. *)
  val iter_slots :
    ?init:(int * int) list -> t -> Structure.t -> (int array -> unit) -> unit

  (** As {!iter_slots} but over name bindings, extending [init] exactly
      as the interpreted [iter_all] does (unmentioned variables pass
      through). *)
  val iter : ?init:binding -> t -> Structure.t -> (binding -> unit) -> unit

  (** First match as a fresh slot-array copy, if any. *)
  val find_slots :
    ?init:(int * int) list -> t -> Structure.t -> int array option

  val exists_slots : ?init:(int * int) list -> t -> Structure.t -> bool

  (** [exists ?init plan target] — is there a match extending [init]?
      The precompiled counterpart of {!Hom.exists} (condition ­ of the
      chase runs through this). *)
  val exists : ?init:binding -> t -> Structure.t -> bool

  (** [iter_family ?init ?dedup fam target delta emit] — semi-naive
      evaluation: each pivot against its delta facts (in delta order),
      the rest-plan against the full structure.  [dedup] (default [true])
      emits each full match once; pass [false] when a later merge
      deduplicates (the parallel shards). *)
  val iter_family :
    ?init:(int * int) list ->
    ?dedup:bool ->
    family ->
    Structure.t ->
    Fact.t list ->
    (int array -> unit) ->
    unit

  val iter_family_bindings :
    ?init:binding -> family -> Structure.t -> Fact.t list -> (binding -> unit) -> unit

  (** Rebuild a name binding from an emitted slot array. *)
  val binding_of_slots : ?init:binding -> t -> int array -> binding

  val family_binding_of_slots : ?init:binding -> family -> int array -> binding
end

(** {1 Structure-to-structure homomorphisms}

    A structure is read as a conjunction of atoms — elements become
    variables, constants stay constants (and must map to their namesakes). *)

(** [between ?init src target] finds a homomorphism [src → target]
    extending the initial element pairs; the result maps each element of
    [src] to its image. *)
val between : ?init:(int * int) list -> Structure.t -> Structure.t -> (int -> int option) option

val exists_between : ?init:(int * int) list -> Structure.t -> Structure.t -> bool
