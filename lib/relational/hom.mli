(** Homomorphism search (Section II.A).

    One backtracking engine matches a conjunction of atoms against a
    structure; it powers CQ evaluation, TGD trigger detection, containment
    tests and core computation.  Atoms are visited in a
    connectivity-greedy order and candidate facts are drawn from the
    structure's element index whenever an argument is already bound.

    Two evaluators share that strategy: the interpreted reference
    ([compiled:false]) over boxed facts and persistent bindings, and the
    default compiled one ({!Plan}) — an array-of-slots program over the
    structure's dense-id arena, fixed once per body.  They enumerate the
    same bindings in the same order and tick the same counters. *)

(** A variable binding: query variables to structure elements. *)
type binding = int Term.Var_map.t

(** The connectivity-greedy atom ordering (exposed for tests/benches).
    [bound] seeds the already-bound variables (the semi-naive pivot's).
    The result is a permutation of the input: repeated atoms — even
    physically equal ones — each keep their occurrence. *)
val order_atoms : ?bound:Term.Var_set.t -> Atom.t list -> Atom.t list

(** [iter_all ?compiled ?ordered ?init target atoms f] calls [f] on every
    homomorphism from [atoms] into [target] extending [init].  Raise
    [Exit] from [f] to stop early.  [ordered:false] disables the atom
    ordering (ablation); [compiled:false] selects the interpreted
    reference evaluator (they are bit-identical — the property suite in
    [test_plan.ml] holds the compiled path to the interpreted one).

    [~delta] restricts the enumeration to homomorphisms whose image uses
    at least one fact of [delta] (each produced exactly once): for each
    atom in turn, that atom is pinned to a delta fact and the rest is
    matched against the full structure — semi-naive evaluation's delta
    rules.  With [~delta] and an empty atom list, nothing is produced. *)
val iter_all :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  ?delta:Fact.t list ->
  Structure.t ->
  Atom.t list ->
  (binding -> unit) ->
  unit

(** First homomorphism found, if any.  The early exit is internal (a
    [ref] plus a locally-caught [Exit]); no exception escapes this
    module. *)
val find :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  binding option

val exists :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  bool

(** Number of homomorphisms (beware of blowup). *)
val count :
  ?compiled:bool ->
  ?ordered:bool ->
  ?init:binding ->
  Structure.t ->
  Atom.t list ->
  int

(** {1 Compiled join plans}

    A plan fixes a body's atom order and binding-slot layout once; the
    evaluator is then a backtracking scan over the structure's dense fact
    ids and [Intvec] pin buckets, with a mutable [int array] of slots in
    place of persistent maps.  The chase compiles each TGD body once per
    run and re-evaluates the plan every stage. *)
module Plan : sig
  type t

  (** A family of per-pivot delta plans sharing one slot table, so a full
      match is the same slot array whichever pivot produced it — the
      dedup key of semi-naive evaluation and the sort key of the parallel
      merge. *)
  type family

  (** Atom-ordering strategy.  [Fixed] (the default) freezes the
      connectivity-greedy order at compile time — bit-identical to the
      interpreted reference, bindings, order and counters included.
      [Cost] re-orders at every evaluation entry from live cardinalities
      (pin buckets, symbol buckets; ties to the lowest original index, so
      the ordering is deterministic for fixed cardinalities).  [Auto] is
      [Cost] plus a generic-join (worst-case-optimal) evaluator on cyclic
      bodies.  Cost modes preserve the emitted {e set} of bindings, not
      the enumeration order or the [hom.*] effort counters — compare fact
      sets/journals/firings across modes, never counters. *)
  type mode = Fixed | Cost | Auto

  (** [compile ?ordered ?bound ?mode atoms] fixes the evaluation order
      under [Fixed] (with [bound] seeding {!order_atoms}) and interns the
      body's variables to dense slots; cost modes defer ordering to
      evaluation entry. *)
  val compile :
    ?ordered:bool -> ?bound:Term.Var_set.t -> ?mode:mode -> Atom.t list -> t

  (** One rest-plan per pivot occurrence, mirroring the interpreted delta
      decomposition. *)
  val compile_family : ?ordered:bool -> ?mode:mode -> Atom.t list -> family

  (** Number of variable slots; emitted arrays have this length. *)
  val nslots : t -> int

  (** The slot of a variable name, if the body mentions it. *)
  val slot : t -> string -> int option

  val var_name : t -> int -> string
  val family_nslots : family -> int
  val family_slot : family -> string -> int option

  (** [iter_slots ?init plan target emit] — the raw evaluator.  [init]
      seeds slots (pairs [(slot, element)]).  [emit] receives the live
      slot array: copy it before storing.  Raise [Exit] to stop early. *)
  val iter_slots :
    ?init:(int * int) list -> t -> Structure.t -> (int array -> unit) -> unit

  (** As {!iter_slots} but over name bindings, extending [init] exactly
      as the interpreted [iter_all] does (unmentioned variables pass
      through). *)
  val iter : ?init:binding -> t -> Structure.t -> (binding -> unit) -> unit

  (** First match as a fresh slot-array copy, if any. *)
  val find_slots :
    ?init:(int * int) list -> t -> Structure.t -> int array option

  val exists_slots : ?init:(int * int) list -> t -> Structure.t -> bool

  (** [exists ?init plan target] — is there a match extending [init]?
      The precompiled counterpart of {!Hom.exists} (condition ­ of the
      chase runs through this). *)
  val exists : ?init:binding -> t -> Structure.t -> bool

  (** [exists_delta ~min_id ?init plan target] — is there a match
      extending the [init] slot seeds whose image uses at least one fact
      with id [>= min_id]?  Exact, and near-free when few facts are newer
      than [min_id]: each atom in turn plays the delta pivot over the
      binary-searched new tail of its best pin bucket.  The chase's
      apply-time head re-check runs through this — a trigger that
      survived discovery was unwitnessed at apply start and witnesses are
      monotone, so only witnesses using a fact added since then can
      exist. *)
  val exists_delta :
    min_id:int -> ?init:(int * int) list -> t -> Structure.t -> bool

  (** [exists_since ~min_id ~cutoff ?init plan target] — the apply-time
      re-check.  Valid ONLY under the caller's invariant that no match
      lies wholly inside the [< min_id] id prefix (the chase has it: the
      trigger survived discovery against exactly that structure, and
      witnesses are monotone); the answer then equals {!exists_slots}.
      One resolve pass dispatches between the near-free empty-tail case,
      the delta-pivot scan of {!exists_delta} (summed tails
      [<= cutoff]), and the plain pin-driven search — all exact under
      the invariant, so [cutoff] only moves wall-clock. *)
  val exists_since :
    min_id:int ->
    cutoff:int ->
    ?init:(int * int) list ->
    t ->
    Structure.t ->
    bool

  (** [delta_weight ~min_id ?init plan target] — how many pivot
      candidates would {!exists_delta} scan?  (The sum over atoms of the
      new tail of each atom's best pin bucket.)  [0] means
      [exists_delta] is trivially false.  Callers holding an invariant
      that no match over the [< min_id] facts exists (the chase's
      apply-time re-check) can switch to the pin-driven {!exists_slots}
      when the weight is large — exact under that invariant, and cheaper
      than scanning long delta tails. *)
  val delta_weight :
    min_id:int -> ?init:(int * int) list -> t -> Structure.t -> int

  (** [iter_family ?init ?dedup fam target delta emit] — semi-naive
      evaluation: each pivot against its delta facts (in delta order),
      the rest-plan against the full structure.  [dedup] (default [true])
      emits each full match once; pass [false] when a later merge
      deduplicates (the parallel shards). *)
  val iter_family :
    ?init:(int * int) list ->
    ?dedup:bool ->
    family ->
    Structure.t ->
    Fact.t list ->
    (int array -> unit) ->
    unit

  val iter_family_bindings :
    ?init:binding -> family -> Structure.t -> Fact.t list -> (binding -> unit) -> unit

  (** A stage delta as a dense per-symbol index: interned symbol id (see
      {!Structure.id_sym}) to ascending fact ids.  Built once per stage
      and shared across every dependency's family evaluation. *)
  type delta_index = Intvec.t array

  (** [delta_index_of target ~lo ~hi] indexes the fact-id interval
      [\[lo, hi)] by symbol. *)
  val delta_index_of : Structure.t -> lo:int -> hi:int -> delta_index

  (** The id-level counterpart of {!iter_family}: same pivot
      decomposition, same dedup, but pivot candidates come off the
      {!delta_index} bucket, optionally restricted to pivot ids in
      [\[lo, hi)] (the parallel collector's chunks). *)
  val iter_family_ids :
    ?init:(int * int) list ->
    ?dedup:bool ->
    ?lo:int ->
    ?hi:int ->
    family ->
    Structure.t ->
    delta_index ->
    (int array -> unit) ->
    unit

  (** Rebuild a name binding from an emitted slot array. *)
  val binding_of_slots : ?init:binding -> t -> int array -> binding

  val family_binding_of_slots : ?init:binding -> family -> int array -> binding
end

(** {1 Structure-to-structure homomorphisms}

    A structure is read as a conjunction of atoms — elements become
    variables, constants stay constants (and must map to their namesakes). *)

(** [between ?init src target] finds a homomorphism [src → target]
    extending the initial element pairs; the result maps each element of
    [src] to its image. *)
val between : ?init:(int * int) list -> Structure.t -> Structure.t -> (int -> int option) option

val exists_between : ?init:(int * int) list -> Structure.t -> Structure.t -> bool
