(** Homomorphism search (Section II.A).

    One backtracking engine matches a conjunction of atoms against a
    structure; it powers CQ evaluation, TGD trigger detection, containment
    tests and core computation.  Atoms are visited in a
    connectivity-greedy order and candidate facts are drawn from the
    structure's element index whenever an argument is already bound. *)

(** A variable binding: query variables to structure elements. *)
type binding = int Term.Var_map.t

(** The connectivity-greedy atom ordering (exposed for tests/benches).
    [bound] seeds the already-bound variables (the semi-naive pivot's).
    The result is a permutation of the input: repeated atoms — even
    physically equal ones — each keep their occurrence. *)
val order_atoms : ?bound:Term.Var_set.t -> Atom.t list -> Atom.t list

(** [iter_all ?ordered ?init target atoms f] calls [f] on every
    homomorphism from [atoms] into [target] extending [init].  Raise
    [Exit] from [f] to stop early.  [ordered:false] disables the atom
    ordering (ablation).

    [~delta] restricts the enumeration to homomorphisms whose image uses
    at least one fact of [delta] (each produced exactly once): for each
    atom in turn, that atom is pinned to a delta fact and the rest is
    matched against the full structure — semi-naive evaluation's delta
    rules.  With [~delta] and an empty atom list, nothing is produced. *)
val iter_all :
  ?ordered:bool ->
  ?init:binding ->
  ?delta:Fact.t list ->
  Structure.t ->
  Atom.t list ->
  (binding -> unit) ->
  unit

(** First homomorphism found, if any.  The early exit is internal (a
    [ref] plus a locally-caught [Exit]); no exception escapes this
    module. *)
val find : ?ordered:bool -> ?init:binding -> Structure.t -> Atom.t list -> binding option

val exists : ?ordered:bool -> ?init:binding -> Structure.t -> Atom.t list -> bool

(** Number of homomorphisms (beware of blowup). *)
val count : ?ordered:bool -> ?init:binding -> Structure.t -> Atom.t list -> int

(** {1 Structure-to-structure homomorphisms}

    A structure is read as a conjunction of atoms — elements become
    variables, constants stay constants (and must map to their namesakes). *)

(** [between ?init src target] finds a homomorphism [src → target]
    extending the initial element pairs; the result maps each element of
    [src] to its image. *)
val between : ?init:(int * int) list -> Structure.t -> Structure.t -> (int -> int option) option

val exists_between : ?init:(int * int) list -> Structure.t -> Structure.t -> bool
