(** Atomic formulas: a predicate symbol applied to terms.

    Atoms form conjunctive-query bodies and both sides of TGDs; their
    ground counterparts over structure elements are {!Fact.t}. *)

type t

(** [make sym args] applies [sym] to [args].
    @raise Invalid_argument on arity mismatch. *)
val make : Symbol.t -> Term.t list -> t

(** [app2 sym a b] is the binary atom [sym(a, b)] — the dominant shape in
    this paper (spider legs, swarm edges, green-graph edges). *)
val app2 : Symbol.t -> Term.t -> Term.t -> t

val sym : t -> Symbol.t
val args : t -> Term.t list

val compare : t -> t -> int
val equal : t -> t -> bool

(** The set of variable names occurring in the atom. *)
val vars : t -> Term.Var_set.t

(** The variables of a conjunction. *)
val vars_of_list : t list -> Term.Var_set.t

(** The constant names occurring in the atom. *)
val constants : t -> string list

(** [substitute subst a] replaces variables by terms; constants are
    untouched, unmapped variables stay. *)
val substitute : Term.t Term.Var_map.t -> t -> t

(** [rename f a] renames every variable through [f]. *)
val rename : (string -> string) -> t -> t

(** Paint the predicate symbol (Section IV.A). *)
val paint : Symbol.color -> t -> t

(** Erase the predicate symbol's color. *)
val dalt : t -> t

val pp : Format.formatter -> t -> unit

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
