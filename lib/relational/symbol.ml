(* Predicate symbols of a relational signature.

   Following Section IV.A of the paper, a symbol over the two-colored
   signature [Σ̄] is a plain symbol painted either green or red; constants
   are never colored.  We represent the color as an optional tag so the
   same type serves for Σ (no tag) and Σ̄ (tagged). *)

type color = Green | Red

let color_equal a b =
  match a, b with
  | Green, Green | Red, Red -> true
  | Green, Red | Red, Green -> false

let color_compare a b =
  match a, b with
  | Green, Green | Red, Red -> 0
  | Green, Red -> -1
  | Red, Green -> 1

let opposite = function Green -> Red | Red -> Green

let pp_color ppf c =
  Fmt.string ppf (match c with Green -> "G" | Red -> "R")

type t = { name : string; arity : int; color : color option }

let make ?color name arity =
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  { name; arity; color }

let name t = t.name
let arity t = t.arity
let color t = t.color

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let c = Int.compare a.arity b.arity in
    if c <> 0 then c
    else Option.compare color_compare a.color b.color

let equal a b = compare a b = 0

let hash t =
  Hashtbl.hash (t.name, t.arity, t.color)

(* Painting and daltonisation (Section IV.A). *)

let paint c t = { t with color = Some c }
let green t = paint Green t
let red t = paint Red t

(* [dalt] erases the color, turning a Σ̄ symbol back into a Σ symbol. *)
let dalt t = { t with color = None }

let is_green t = match t.color with Some Green -> true | Some Red | None -> false
let is_red t = match t.color with Some Red -> true | Some Green | None -> false
let is_plain t = Option.is_none t.color

let pp ppf t =
  match t.color with
  | None -> Fmt.pf ppf "%s/%d" t.name t.arity
  | Some c -> Fmt.pf ppf "%a:%s/%d" pp_color c t.name t.arity

let pp_short ppf t =
  match t.color with
  | None -> Fmt.string ppf t.name
  | Some c -> Fmt.pf ppf "%a:%s" pp_color c t.name

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
