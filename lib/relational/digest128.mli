(** Streaming 128-bit digests for journals and rulesets.

    A fast non-cryptographic two-lane mixer with a streaming feed: the
    digest is a pure function of the sequence of [feed_*] calls, however
    the feed is split across calls, so incremental feeds (structure
    journals growing under the chase) and from-scratch refeeds agree.
    State is three scalars — Marshal-safe inside engine snapshots. *)

type t

val create : unit -> t

(** O(1) structural copy; the copy feeds independently. *)
val copy : t -> t

(** Reset to the initial state. *)
val reset : t -> unit

val feed_int : t -> int -> unit
val feed_int64 : t -> int64 -> unit

(** Length-prefixed, so consecutive string feeds are unambiguous. *)
val feed_string : t -> string -> unit

(** Finalize a snapshot of the state as 32 hex digits; the live state
    stays feedable.  [salt] folds trailing ints (cardinalities, params)
    into the result without disturbing the incremental feed. *)
val hex : ?salt:int list -> t -> string

(** One-shot digest of a string list. *)
val of_strings : string list -> string
