(* A minimal fork-join pool over OCaml 5 domains, for parallel trigger
   discovery.  [run ~jobs n f] evaluates [f 0 … f (n-1)] — possibly
   concurrently — and returns the results in index order, so callers see
   a deterministic shape regardless of scheduling.

   Tasks are distributed round-robin: worker [w] runs the indices
   congruent to [w] modulo the worker count.  Workers must not mutate
   shared state; the chase engines only read the structure during
   discovery and merge results sequentially afterwards.

   With [jobs <= 1] (or a single task) everything runs inline on the
   calling domain — no spawn, no synchronization — which is also the
   shape this code takes on single-core containers. *)

let c_shards = Obs.Metrics.counter "par.shards"

(* The runtime's estimate of useful parallelism (includes the caller). *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

let run ~jobs n f =
  if n <= 0 then [||]
  else
    let jobs = max 1 (min jobs n) in
    if !Obs.metrics_on then Obs.Metrics.add c_shards jobs;
    if jobs = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      let worker w () =
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (f !i);
          i := !i + jobs
        done
      in
      (* The caller is worker 0; [jobs - 1] helper domains take the rest.
         Every domain is joined before any exception is re-raised, so no
         domain outlives the call. *)
      let doms =
        Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      let err = ref None in
      (try worker 0 () with e -> err := Some e);
      Array.iter
        (fun d ->
          try Domain.join d
          with e -> if Option.is_none !err then err := Some e)
        doms;
      (match !err with Some e -> raise e | None -> ());
      Array.map (function Some r -> r | None -> assert false) results
    end
