(* A minimal fork-join pool over OCaml 5 domains, for parallel trigger
   discovery.  [run ~jobs n f] evaluates [f 0 … f (n-1)] — possibly
   concurrently — and returns the results in index order, so callers see
   a deterministic shape regardless of scheduling.

   Tasks are distributed round-robin: worker [w] runs the indices
   congruent to [w] modulo the worker count.  Workers must not mutate
   shared state; the chase engines only read the structure during
   discovery and merge results sequentially afterwards.

   With [jobs <= 1] (or a single task) everything runs inline on the
   calling domain — no spawn, no synchronization — which is also the
   shape this code takes on single-core containers. *)

let c_shards = Obs.Metrics.counter "par.shards"
let c_steals = Obs.Metrics.counter "par.steals"

(* The runtime's estimate of useful parallelism (includes the caller). *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* Spawn [jobs - 1] helper domains (the caller is worker 0), run [worker]
   on each, and join every domain before re-raising any exception, so no
   domain outlives the call. *)
let fork_join jobs worker =
  let doms = Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
  let err = ref None in
  (try worker 0 () with e -> err := Some e);
  Array.iter
    (fun d ->
      try Domain.join d with e -> if Option.is_none !err then err := Some e)
    doms;
  match !err with Some e -> raise e | None -> ()

let run ~jobs n f =
  if n <= 0 then [||]
  else
    let jobs = max 1 (min jobs n) in
    if !Obs.metrics_on then Obs.Metrics.add c_shards jobs;
    if jobs = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      let worker w () =
        let i = ref w in
        while !i < n do
          results.(!i) <- Some (f !i);
          i := !i + jobs
        done
      in
      (* The caller is worker 0; [jobs - 1] helper domains take the rest. *)
      fork_join jobs worker;
      Array.map (function Some r -> r | None -> assert false) results
    end

(* Work-stealing variant: each worker owns a contiguous range of task
   indices behind an atomic cursor; a worker that drains its own range
   claims tasks from the other ranges with the same fetch-and-add, so a
   skewed task (one giant delta bucket, one expensive rule direction)
   no longer serializes the pool the way static round-robin does.  Every
   index is claimed exactly once, results land in index order, and the
   caller merges canonically afterwards — scheduling stays unobservable.

   [steals], when given, receives the number of tasks executed by a
   worker other than the range owner (also ticked on [par.steals]). *)
let run_stealing ?steals ~jobs n f =
  if n <= 0 then [||]
  else
    let jobs = max 1 (min jobs n) in
    if !Obs.metrics_on then Obs.Metrics.add c_shards jobs;
    if jobs = 1 then Array.init n f
    else begin
      let results = Array.make n None in
      (* Worker w owns [lo.(w), lo.(w + 1)); remainders go to the low
         ranges so sizes differ by at most one. *)
      let base = n / jobs and rem = n mod jobs in
      let lo = Array.init (jobs + 1) (fun w -> (w * base) + min w rem) in
      let next = Array.init jobs (fun w -> Atomic.make lo.(w)) in
      let stolen = Atomic.make 0 in
      let worker w () =
        let drain v =
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next.(v) 1 in
            if i < lo.(v + 1) then begin
              results.(i) <- Some (f i);
              if v <> w then Atomic.incr stolen
            end
            else continue := false
          done
        in
        drain w;
        for k = 1 to jobs - 1 do
          drain ((w + k) mod jobs)
        done
      in
      fork_join jobs worker;
      let st = Atomic.get stolen in
      if !Obs.metrics_on then Obs.Metrics.add c_steals st;
      (match steals with Some r -> r := !r + st | None -> ());
      Array.map (function Some r -> r | None -> assert false) results
    end
