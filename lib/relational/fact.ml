(* Ground atoms of a finite structure: a predicate symbol applied to
   structure elements (represented as integers). *)

type t = { sym : Symbol.t; args : int array }

let make sym args =
  if Array.length args <> Symbol.arity sym then
    invalid_arg
      (Fmt.str "Fact.make: %a applied to %d arguments" Symbol.pp sym
         (Array.length args));
  { sym; args }

let app2 sym a b = make sym [| a; b |]

let sym t = t.sym
let args t = t.args
let arg t i = t.args.(i)

let compare a b =
  let c = Symbol.compare a.sym b.sym in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Int.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (Symbol.hash t.sym, t.args)

let elements t = Array.to_list t.args

let map_elements f t = { t with args = Array.map f t.args }

let paint c t = { t with sym = Symbol.paint c t.sym }
let dalt t = { t with sym = Symbol.dalt t.sym }

let color t = Symbol.color t.sym

let pp ?(elem = Fmt.int) () ppf t =
  Fmt.pf ppf "%a(%a)" Symbol.pp_short t.sym
    (Fmt.array ~sep:(Fmt.any ",") elem)
    t.args

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end)
