(* Finite relational structures (Section II.A).

   Elements are integers allocated by the structure.  Constants of the
   signature are interpreted as dedicated elements, shared by name: a
   homomorphism must send the interpretation of [c] in one structure to the
   interpretation of [c] in the other.

   The structure is mutable — the chase (Section II.C) extends a structure
   in place — and carries provenance: each fact and element remembers the
   chase stage at which it appeared, which Section IX's "late fragments"
   [chase^L] need. *)

(* The (symbol id, argument position, element) fact index: the unit of
   selectivity for the homomorphism engine.  Buckets are [Intvec.t]s of
   dense fact ids in insertion order, so their length is a field read and
   scans are cache-linear.

   The hash is a proper avalanche mix of the three coordinates.  The old
   table hashed [Hashtbl.hash (Symbol.hash s, p, e)] — generic hashing of
   a tuple of already-hashed small ints, which folds the three values
   through a byte-serializing hash that loses most of their entropy and
   collides badly once pins number in the tens of thousands.  Here the
   coordinates are combined with distinct odd multipliers and finished
   with an xmx avalanche, so nearby (sym, pos, elem) triples spread over
   the whole table. *)
module Pin_tbl = Hashtbl.Make (struct
  type t = int * int * int

  let equal ((s1, p1, e1) : t) (s2, p2, e2) = s1 = s2 && p1 = p2 && e1 = e2

  (* xxhash-style 32-bit primes and an xmx finalizer; OCaml native ints
     wrap silently, which is exactly what a mixer wants. *)
  let hash ((s, p, e) : t) =
    let h = (s * 0x9E3779B1) lxor (p * 0x85EBCA77) lxor (e * 0xC2B2AE3D) in
    let h = (h lxor (h lsr 33)) * 0x2545F4914F6CDD1D in
    h lxor (h lsr 29)
end)

let empty_ids = Intvec.create ~capacity:1 ()

type t = {
  mutable next : int;                        (* next fresh element id *)
  consts : (string, int) Hashtbl.t;          (* constant name -> element *)
  const_of : (int, string) Hashtbl.t;        (* element -> constant name *)
  names : (int, string) Hashtbl.t;           (* optional debug labels *)
  facts : int Fact.Tbl.t;                    (* fact -> stage added *)
  ids : int Fact.Tbl.t;                      (* live fact -> arena id *)
  arena : Fact_arena.t;                      (* interned flat fact store *)
  mutable by_sym : Intvec.t array;           (* sym id -> fact ids *)
  by_elem : (int, Fact.t list ref) Hashtbl.t;
  by_pin : Intvec.t Pin_tbl.t;               (* (sym id, pos, elem) -> ids *)
  dom : (int, int) Hashtbl.t;                (* element -> birth stage *)
  elem_refs : (int, int) Hashtbl.t;          (* element -> live facts using it *)
  dead : (int, unit) Hashtbl.t;              (* retracted arena ids *)
  mutable retracted : (int * Fact.t) list;   (* retraction journal, newest first *)
  mutable nretracted : int;
  mutable stage : int;                       (* current provenance stage *)
  mutable nfacts : int;                      (* live fact count *)
  dg : Digest128.t;                          (* incremental journal digest *)
  mutable dg_wm : int;                       (* journal ids fed so far *)
  mutable dg_valid : bool;                   (* false: refeed from id 0 *)
}

let create () =
  {
    next = 0;
    consts = Hashtbl.create 16;
    const_of = Hashtbl.create 16;
    names = Hashtbl.create 64;
    facts = Fact.Tbl.create 256;
    ids = Fact.Tbl.create 256;
    arena = Fact_arena.create ();
    by_sym = Array.make 8 empty_ids;
    by_elem = Hashtbl.create 256;
    by_pin = Pin_tbl.create 256;
    dom = Hashtbl.create 256;
    elem_refs = Hashtbl.create 256;
    dead = Hashtbl.create 16;
    retracted = [];
    nretracted = 0;
    stage = 0;
    nfacts = 0;
    dg = Digest128.create ();
    dg_wm = 0;
    dg_valid = true;
  }

let set_stage t s = t.stage <- s
let stage t = t.stage

let register_elem t e =
  if not (Hashtbl.mem t.dom e) then Hashtbl.replace t.dom e t.stage

(* Import an externally-allocated element id, keeping [fresh] clear of it. *)
let reserve t e =
  register_elem t e;
  if e >= t.next then t.next <- e + 1

let fresh ?name t =
  let e = t.next in
  t.next <- t.next + 1;
  register_elem t e;
  (match name with Some n -> Hashtbl.replace t.names e n | None -> ());
  e

let constant t c =
  match Hashtbl.find_opt t.consts c with
  | Some e -> e
  | None ->
      let e = fresh ~name:c t in
      Hashtbl.replace t.consts c e;
      Hashtbl.replace t.const_of e c;
      e

let constant_opt t c = Hashtbl.find_opt t.consts c
let constant_name t e = Hashtbl.find_opt t.const_of e
let is_constant t e = Hashtbl.mem t.const_of e

let name t e =
  match Hashtbl.find_opt t.names e with
  | Some n -> n
  | None -> Printf.sprintf "e%d" e

let set_name t e n = Hashtbl.replace t.names e n

let mem t f = Fact.Tbl.mem t.facts f

let add_fact t f =
  if Fact.Tbl.mem t.facts f then false
  else begin
    Fact.Tbl.replace t.facts f t.stage;
    t.nfacts <- t.nfacts + 1;
    (* the arena assigns the dense id; its id order IS the journal.  A
       re-added fact (inserted after a retraction) gets a *new* id: the
       journal is append-only, so the resurrection lands in the current
       delta and semi-naive discovery sees it like any other new fact. *)
    let id = Fact_arena.append t.arena f in
    Fact.Tbl.replace t.ids f id;
    let sid = Fact_arena.sym t.arena id in
    if sid >= Array.length t.by_sym then begin
      let a = Array.make (2 * max (sid + 1) (Array.length t.by_sym)) empty_ids in
      Array.blit t.by_sym 0 a 0 (Array.length t.by_sym);
      t.by_sym <- a
    end;
    let svec =
      if t.by_sym.(sid) == empty_ids then begin
        let v = Intvec.create () in
        t.by_sym.(sid) <- v;
        v
      end
      else t.by_sym.(sid)
    in
    Intvec.push svec id;
    let seen = Hashtbl.create 4 in
    Array.iteri
      (fun i e ->
        register_elem t e;
        let key = (sid, i, e) in
        let b =
          match Pin_tbl.find_opt t.by_pin key with
          | Some b -> b
          | None ->
              let b = Intvec.create () in
              Pin_tbl.replace t.by_pin key b;
              b
        in
        Intvec.push b id;
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          Hashtbl.replace t.elem_refs e
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.elem_refs e));
          let r =
            match Hashtbl.find_opt t.by_elem e with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace t.by_elem e r;
                r
          in
          r := f :: !r
        end)
      (Fact.args f);
    true
  end

(* Retract a live fact: physical, order-preserving removal from every
   index the homomorphism engine reads.  The arena keeps the dead entry —
   the journal is append-only and fact ids are never reused — but the id
   leaves its [by_sym] and [by_pin] buckets (a sorted shift, so bucket
   order, [lower_bound] tails and newest-first enumeration are exactly
   what a structure that never held the fact would present) and the fact
   leaves [facts]/[by_elem].  The retraction is recorded in its own
   journal, newest first.

   Elements are reference-counted by live facts: a non-constant element
   whose count reaches zero and whose birth stage is past the base stage
   (a chase-created null) leaves the domain — re-adding a fact over it
   later re-registers it.  Base-stage elements stay: they belong to the
   instance, facts or not. *)
let retract_fact t f =
  match Fact.Tbl.find_opt t.ids f with
  | None -> false
  | Some id ->
      Fact.Tbl.remove t.facts f;
      Fact.Tbl.remove t.ids f;
      t.nfacts <- t.nfacts - 1;
      (* A retraction below the digest watermark falsifies the fed prefix;
         the next digest refeeds the whole journal (still streamed, no
         intermediate string).  At or above the watermark the entry was
         never fed — skipping dead ids at feed time suffices. *)
      if id < t.dg_wm then t.dg_valid <- false;
      Hashtbl.replace t.dead id ();
      t.retracted <- (id, f) :: t.retracted;
      t.nretracted <- t.nretracted + 1;
      let sid = Fact_arena.sym t.arena id in
      ignore (Intvec.remove_sorted t.by_sym.(sid) id);
      let seen = Hashtbl.create 4 in
      Array.iteri
        (fun i e ->
          (match Pin_tbl.find_opt t.by_pin (sid, i, e) with
          | Some b -> ignore (Intvec.remove_sorted b id)
          | None -> ());
          if not (Hashtbl.mem seen e) then begin
            Hashtbl.replace seen e ();
            (match Hashtbl.find_opt t.by_elem e with
            | Some r -> r := List.filter (fun g -> not (Fact.equal g f)) !r
            | None -> ());
            let refs =
              Option.value ~default:1 (Hashtbl.find_opt t.elem_refs e) - 1
            in
            if refs <= 0 then begin
              Hashtbl.remove t.elem_refs e;
              if
                (not (Hashtbl.mem t.const_of e))
                && Option.value ~default:0 (Hashtbl.find_opt t.dom e) > 0
              then begin
                Hashtbl.remove t.dom e;
                Hashtbl.remove t.by_elem e
              end
            end
            else Hashtbl.replace t.elem_refs e refs
          end)
        (Fact.args f);
      true

let live_id t id = not (Hashtbl.mem t.dead id)
let retraction_count t = t.nretracted

(* The retraction journal, oldest first: (arena id, fact) pairs. *)
let retractions t = List.rev t.retracted

let add t sym args = ignore (add_fact t (Fact.make sym args))
let add2 t sym a b = ignore (add_fact t (Fact.app2 sym a b))

let fact_stage t f = Fact.Tbl.find_opt t.facts f
let fact_id t f = Fact.Tbl.find_opt t.ids f
let elem_stage t e = Hashtbl.find_opt t.dom e

let card t = Hashtbl.length t.dom
let size t = t.nfacts

let iter_facts t f = Fact.Tbl.iter (fun fact _ -> f fact) t.facts
let fold_facts t f acc = Fact.Tbl.fold (fun fact _ acc -> f fact acc) t.facts acc
let facts t = fold_facts t (fun f acc -> f :: acc) []

let iter_elems t f = Hashtbl.iter (fun e _ -> f e) t.dom
let elems t = Hashtbl.fold (fun e _ acc -> e :: acc) t.dom []

(* {2 The dense-id hot-path view}

   The homomorphism evaluator works on fact ids, interned symbol ids and
   the flat argument arena — never on boxed [Fact.t]s.  Buckets are
   returned as shared [Intvec.t]s; callers must not mutate them. *)

(* Dense-id bound: every live id is below this.  With retractions the
   arena length and the live count diverge; the hot path iterates ids via
   the buckets (which hold live ids only), so the bound is the arena's. *)
let nfacts t = Fact_arena.n_facts t.arena

(* The interned id of [sym], or [-1] when the structure has no fact with
   it (an un-interned symbol has an empty pool by construction). *)
let sym_id t sym = Fact_arena.find_sym t.arena sym

let id_fact t id = Fact_arena.fact t.arena id
let id_sym t id = Fact_arena.sym t.arena id
let id_arg t id pos = Fact_arena.arg t.arena id pos

(* Number of interned symbol ids: every [id_sym] is below this, so it
   sizes dense sym-id-indexed tables (the chase's per-stage delta index). *)
let n_sym_ids t = Fact_arena.n_syms t.arena

let ids_with_sym t sid =
  if sid < 0 || sid >= Array.length t.by_sym then empty_ids else t.by_sym.(sid)

let ids_with_pin t sid pos e =
  match Pin_tbl.find_opt t.by_pin (sid, pos, e) with
  | Some b -> b
  | None -> empty_ids

let pin_count_id t sid pos e = Intvec.length (ids_with_pin t sid pos e)

(* {2 The boxed list view, derived from the id view} *)

(* Newest-first, the order the cons-built buckets used to present. *)
let facts_of_ids t ids =
  Intvec.fold_left (fun acc id -> id_fact t id :: acc) [] ids

let facts_with_sym t sym = facts_of_ids t (ids_with_sym t (sym_id t sym))

let facts_with_elem t e =
  match Hashtbl.find_opt t.by_elem e with Some r -> !r | None -> []

let facts_with_pin t sym pos e =
  let sid = sym_id t sym in
  if sid < 0 then [] else facts_of_ids t (ids_with_pin t sid pos e)

let pin_count t sym pos e =
  let sid = sym_id t sym in
  if sid < 0 then 0 else pin_count_id t sid pos e

(* The delta journal: the arena's id order is insertion order and the
   arena length is the journal length, so a watermark is the journal
   length at some past moment and a delta is an id interval.  Retraction
   never rewrites the journal — dead ids simply stop being enumerated —
   so watermarks taken before an edit stay valid across it. *)
let watermark t = Fact_arena.n_facts t.arena

let delta_since t wm =
  let rec go id acc =
    if id < wm then acc
    else
      go (id - 1) (if Hashtbl.mem t.dead id then acc else id_fact t id :: acc)
  in
  go (Fact_arena.n_facts t.arena - 1) []

(* Delta as an id interval [wm, journal length): what the sharded
   parallel scan partitions.  Dead ids inside the interval are skipped by
   the bucket-driven scans (a dead id is in no bucket); raw-range
   consumers must check {!live_id}. *)
let delta_ids t wm = (wm, Fact_arena.n_facts t.arena)

(* {2 Incremental journal digest}

   The canonical digest of the structure's build history: the live facts
   in journal order, plus the element count.  Symbols are fed by content
   (name, color, arity) — never by interned id, which depends on the
   order symbols were first seen and so differs between an incremental
   run and a from-scratch one — while elements are fed by id, because
   fresh-element identity is exactly what the bit-identity witness is
   meant to observe.

   The feed is lazy and incremental: [digest_hex] feeds only the journal
   suffix since the last call.  The split points always fall between
   facts, so the streamed state is identical to a single from-scratch
   feed (see {!Digest128}).  A retraction below the fed watermark resets
   the state and refeeds — still streaming, no O(journal) string. *)

let feed_fact dg f =
  let sym = Fact.sym f in
  Digest128.feed_string dg (Symbol.name sym);
  Digest128.feed_int dg
    (match Symbol.color sym with
    | None -> 0
    | Some Symbol.Green -> 1
    | Some Symbol.Red -> 2);
  let args = Fact.args f in
  Digest128.feed_int dg (Array.length args);
  Array.iter (fun e -> Digest128.feed_int dg e) args

let digest_hex t =
  if not t.dg_valid then begin
    Digest128.reset t.dg;
    t.dg_wm <- 0;
    t.dg_valid <- true
  end;
  let n = Fact_arena.n_facts t.arena in
  for id = t.dg_wm to n - 1 do
    if not (Hashtbl.mem t.dead id) then feed_fact t.dg (id_fact t id)
  done;
  t.dg_wm <- n;
  Digest128.hex ~salt:[ card t ] t.dg

let symbols t =
  let acc = ref [] in
  for sid = Fact_arena.n_syms t.arena - 1 downto 0 do
    if Intvec.length (ids_with_sym t sid) > 0 then
      acc := Fact_arena.sym_obj t.arena sid :: !acc
  done;
  !acc

let constants t = Hashtbl.fold (fun c _ acc -> c :: acc) t.consts []

(* Deep copy: the copy allocates elements with the same identifiers and
   shares nothing mutable with the original. *)
let copy t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter (fun c e -> Hashtbl.replace u.consts c e) t.consts;
  Hashtbl.iter (fun e c -> Hashtbl.replace u.const_of e c) t.const_of;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Hashtbl.iter (fun e s -> Hashtbl.replace u.dom e s) t.dom;
  u.stage <- t.stage;
  Fact.Tbl.iter
    (fun f s ->
      let saved = u.stage in
      u.stage <- s;
      ignore (add_fact u f);
      u.stage <- saved)
    t.facts;
  u.stage <- t.stage;
  u

(* [like t] is an empty structure sharing [t]'s constants (same element
   ids) and element allocator position, so facts built from [t]'s elements
   can be added to it directly. *)
let like t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun c e ->
      Hashtbl.replace u.consts c e;
      Hashtbl.replace u.const_of e c;
      Hashtbl.replace u.dom e 0)
    t.consts;
  u

(* [filter keep t] is the substructure of [t] containing the facts
   satisfying [keep].  Constants survive; elements only appearing in
   dropped facts are dropped (unless constants). *)
let filter keep t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun c e ->
      Hashtbl.replace u.consts c e;
      Hashtbl.replace u.const_of e c;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Fact.Tbl.iter
    (fun f s ->
      if keep f then begin
        let saved = u.stage in
        u.stage <- s;
        ignore (add_fact u f);
        u.stage <- saved
      end)
    t.facts;
  u

(* Color restriction D|G / D|R and daltonisation (Section IV.A). *)
let restrict_color c t = filter (fun f -> Fact.color f = Some c) t

let map_facts f t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun cst e ->
      Hashtbl.replace u.consts cst e;
      Hashtbl.replace u.const_of e cst;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Fact.Tbl.iter
    (fun fact s ->
      let saved = u.stage in
      u.stage <- s;
      ignore (add_fact u (f fact));
      u.stage <- saved)
    t.facts;
  u

let dalt t = map_facts Fact.dalt t
let paint c t = map_facts (Fact.paint c) t

(* [quotient f t] renames every element [e] to [f e], merging elements that
   share an image.  Constants must be fixed points of [f]. *)
let quotient f t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun cst e ->
      if f e <> e then invalid_arg "Structure.quotient: constant not fixed";
      Hashtbl.replace u.consts cst e;
      Hashtbl.replace u.const_of e cst;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Fact.Tbl.iter (fun fact _ -> ignore (add_fact u (Fact.map_elements f fact))) t.facts;
  u

(* [union_into ~into src] adds every fact of [src] to [into], identifying
   constants by name and renaming the remaining elements of [src] to fresh
   elements of [into].  Returns the renaming used. *)
let union_into ~into src =
  let map = Hashtbl.create 64 in
  let rename e =
    match Hashtbl.find_opt map e with
    | Some e' -> e'
    | None ->
        let e' =
          match constant_name src e with
          | Some c -> constant into c
          | None -> fresh ?name:(Hashtbl.find_opt src.names e) into
        in
        Hashtbl.replace map e e';
        e'
  in
  iter_elems src (fun e -> ignore (rename e));
  iter_facts src (fun f -> ignore (add_fact into (Fact.map_elements rename f)));
  fun e -> Hashtbl.find_opt map e

(* Disjoint union of a list of structures; constants are shared by name,
   as required for Section IX's D_y / D_n constructions. *)
let disjoint_union parts =
  let u = create () in
  let maps = List.map (fun p -> union_into ~into:u p) parts in
  (u, maps)

let equal_sets a b =
  size a = size b && fold_facts a (fun f ok -> ok && mem b f) true

let pp ppf t =
  let facts = List.sort Fact.compare (facts t) in
  let elem ppf e = Fmt.string ppf (name t e) in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut (Fact.pp ~elem ())) facts

let pp_stats ppf t =
  Fmt.pf ppf "%d elements, %d facts" (card t) (size t)
