(* Finite relational structures (Section II.A).

   Elements are integers allocated by the structure.  Constants of the
   signature are interpreted as dedicated elements, shared by name: a
   homomorphism must send the interpretation of [c] in one structure to the
   interpretation of [c] in the other.

   The structure is mutable — the chase (Section II.C) extends a structure
   in place — and carries provenance: each fact and element remembers the
   chase stage at which it appeared, which Section IX's "late fragments"
   [chase^L] need. *)

(* The (symbol, argument position, element) fact index: the unit of
   selectivity for the homomorphism engine.  Buckets carry their length so
   the most selective pin can be chosen in O(#pins). *)
module Pin_tbl = Hashtbl.Make (struct
  type t = Symbol.t * int * int

  let equal (s1, p1, e1) (s2, p2, e2) =
    p1 = p2 && e1 = e2 && Symbol.equal s1 s2

  let hash (s, p, e) = Hashtbl.hash (Symbol.hash s, p, e)
end)

type bucket = { mutable n : int; mutable bfacts : Fact.t list }

type t = {
  mutable next : int;                        (* next fresh element id *)
  consts : (string, int) Hashtbl.t;          (* constant name -> element *)
  const_of : (int, string) Hashtbl.t;        (* element -> constant name *)
  names : (int, string) Hashtbl.t;           (* optional debug labels *)
  facts : int Fact.Tbl.t;                    (* fact -> stage added *)
  by_sym : Fact.t list ref Symbol.Tbl.t;
  by_elem : (int, Fact.t list ref) Hashtbl.t;
  by_pin : bucket Pin_tbl.t;                 (* (sym, pos, elem) -> facts *)
  mutable journal_rev : Fact.t list;         (* delta journal, newest first *)
  dom : (int, int) Hashtbl.t;                (* element -> birth stage *)
  mutable stage : int;                       (* current provenance stage *)
  mutable nfacts : int;
}

let create () =
  {
    next = 0;
    consts = Hashtbl.create 16;
    const_of = Hashtbl.create 16;
    names = Hashtbl.create 64;
    facts = Fact.Tbl.create 256;
    by_sym = Symbol.Tbl.create 32;
    by_elem = Hashtbl.create 256;
    by_pin = Pin_tbl.create 256;
    journal_rev = [];
    dom = Hashtbl.create 256;
    stage = 0;
    nfacts = 0;
  }

let set_stage t s = t.stage <- s
let stage t = t.stage

let register_elem t e =
  if not (Hashtbl.mem t.dom e) then Hashtbl.replace t.dom e t.stage

(* Import an externally-allocated element id, keeping [fresh] clear of it. *)
let reserve t e =
  register_elem t e;
  if e >= t.next then t.next <- e + 1

let fresh ?name t =
  let e = t.next in
  t.next <- t.next + 1;
  register_elem t e;
  (match name with Some n -> Hashtbl.replace t.names e n | None -> ());
  e

let constant t c =
  match Hashtbl.find_opt t.consts c with
  | Some e -> e
  | None ->
      let e = fresh ~name:c t in
      Hashtbl.replace t.consts c e;
      Hashtbl.replace t.const_of e c;
      e

let constant_opt t c = Hashtbl.find_opt t.consts c
let constant_name t e = Hashtbl.find_opt t.const_of e
let is_constant t e = Hashtbl.mem t.const_of e

let name t e =
  match Hashtbl.find_opt t.names e with
  | Some n -> n
  | None -> Printf.sprintf "e%d" e

let set_name t e n = Hashtbl.replace t.names e n

let mem t f = Fact.Tbl.mem t.facts f

let add_fact t f =
  if Fact.Tbl.mem t.facts f then false
  else begin
    Fact.Tbl.replace t.facts f t.stage;
    t.nfacts <- t.nfacts + 1;
    t.journal_rev <- f :: t.journal_rev;
    let bucket =
      match Symbol.Tbl.find_opt t.by_sym (Fact.sym f) with
      | Some r -> r
      | None ->
          let r = ref [] in
          Symbol.Tbl.replace t.by_sym (Fact.sym f) r;
          r
    in
    bucket := f :: !bucket;
    let sym = Fact.sym f in
    let seen = Hashtbl.create 4 in
    Array.iteri
      (fun i e ->
        register_elem t e;
        let key = (sym, i, e) in
        let b =
          match Pin_tbl.find_opt t.by_pin key with
          | Some b -> b
          | None ->
              let b = { n = 0; bfacts = [] } in
              Pin_tbl.replace t.by_pin key b;
              b
        in
        b.n <- b.n + 1;
        b.bfacts <- f :: b.bfacts;
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          let r =
            match Hashtbl.find_opt t.by_elem e with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace t.by_elem e r;
                r
          in
          r := f :: !r
        end)
      (Fact.args f);
    true
  end

let add t sym args = ignore (add_fact t (Fact.make sym args))
let add2 t sym a b = ignore (add_fact t (Fact.app2 sym a b))

let fact_stage t f = Fact.Tbl.find_opt t.facts f
let elem_stage t e = Hashtbl.find_opt t.dom e

let card t = Hashtbl.length t.dom
let size t = t.nfacts

let iter_facts t f = Fact.Tbl.iter (fun fact _ -> f fact) t.facts
let fold_facts t f acc = Fact.Tbl.fold (fun fact _ acc -> f fact acc) t.facts acc
let facts t = fold_facts t (fun f acc -> f :: acc) []

let iter_elems t f = Hashtbl.iter (fun e _ -> f e) t.dom
let elems t = Hashtbl.fold (fun e _ acc -> e :: acc) t.dom []

let facts_with_sym t sym =
  match Symbol.Tbl.find_opt t.by_sym sym with Some r -> !r | None -> []

let facts_with_elem t e =
  match Hashtbl.find_opt t.by_elem e with Some r -> !r | None -> []

let facts_with_pin t sym pos e =
  match Pin_tbl.find_opt t.by_pin (sym, pos, e) with
  | Some b -> b.bfacts
  | None -> []

let pin_count t sym pos e =
  match Pin_tbl.find_opt t.by_pin (sym, pos, e) with Some b -> b.n | None -> 0

(* The delta journal: every successful [add_fact] is recorded in order, and
   [nfacts] doubles as the journal length, so a watermark is just the fact
   count at some past moment. *)
let watermark t = t.nfacts

let delta_since t wm =
  let rec take acc k l =
    if k <= 0 then acc
    else match l with [] -> acc | f :: rest -> take (f :: acc) (k - 1) rest
  in
  take [] (t.nfacts - wm) t.journal_rev

let symbols t =
  Symbol.Tbl.fold (fun s r acc -> if !r = [] then acc else s :: acc) t.by_sym []

let constants t = Hashtbl.fold (fun c _ acc -> c :: acc) t.consts []

(* Deep copy: the copy allocates elements with the same identifiers and
   shares nothing mutable with the original. *)
let copy t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter (fun c e -> Hashtbl.replace u.consts c e) t.consts;
  Hashtbl.iter (fun e c -> Hashtbl.replace u.const_of e c) t.const_of;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Hashtbl.iter (fun e s -> Hashtbl.replace u.dom e s) t.dom;
  u.stage <- t.stage;
  Fact.Tbl.iter
    (fun f s ->
      let saved = u.stage in
      u.stage <- s;
      ignore (add_fact u f);
      u.stage <- saved)
    t.facts;
  u.stage <- t.stage;
  u

(* [like t] is an empty structure sharing [t]'s constants (same element
   ids) and element allocator position, so facts built from [t]'s elements
   can be added to it directly. *)
let like t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun c e ->
      Hashtbl.replace u.consts c e;
      Hashtbl.replace u.const_of e c;
      Hashtbl.replace u.dom e 0)
    t.consts;
  u

(* [filter keep t] is the substructure of [t] containing the facts
   satisfying [keep].  Constants survive; elements only appearing in
   dropped facts are dropped (unless constants). *)
let filter keep t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun c e ->
      Hashtbl.replace u.consts c e;
      Hashtbl.replace u.const_of e c;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Fact.Tbl.iter
    (fun f s ->
      if keep f then begin
        let saved = u.stage in
        u.stage <- s;
        ignore (add_fact u f);
        u.stage <- saved
      end)
    t.facts;
  u

(* Color restriction D|G / D|R and daltonisation (Section IV.A). *)
let restrict_color c t = filter (fun f -> Fact.color f = Some c) t

let map_facts f t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun cst e ->
      Hashtbl.replace u.consts cst e;
      Hashtbl.replace u.const_of e cst;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Hashtbl.iter (fun e n -> Hashtbl.replace u.names e n) t.names;
  Fact.Tbl.iter
    (fun fact s ->
      let saved = u.stage in
      u.stage <- s;
      ignore (add_fact u (f fact));
      u.stage <- saved)
    t.facts;
  u

let dalt t = map_facts Fact.dalt t
let paint c t = map_facts (Fact.paint c) t

(* [quotient f t] renames every element [e] to [f e], merging elements that
   share an image.  Constants must be fixed points of [f]. *)
let quotient f t =
  let u = create () in
  u.next <- t.next;
  Hashtbl.iter
    (fun cst e ->
      if f e <> e then invalid_arg "Structure.quotient: constant not fixed";
      Hashtbl.replace u.consts cst e;
      Hashtbl.replace u.const_of e cst;
      Hashtbl.replace u.dom e 0)
    t.consts;
  Fact.Tbl.iter (fun fact _ -> ignore (add_fact u (Fact.map_elements f fact))) t.facts;
  u

(* [union_into ~into src] adds every fact of [src] to [into], identifying
   constants by name and renaming the remaining elements of [src] to fresh
   elements of [into].  Returns the renaming used. *)
let union_into ~into src =
  let map = Hashtbl.create 64 in
  let rename e =
    match Hashtbl.find_opt map e with
    | Some e' -> e'
    | None ->
        let e' =
          match constant_name src e with
          | Some c -> constant into c
          | None -> fresh ?name:(Hashtbl.find_opt src.names e) into
        in
        Hashtbl.replace map e e';
        e'
  in
  iter_elems src (fun e -> ignore (rename e));
  iter_facts src (fun f -> ignore (add_fact into (Fact.map_elements rename f)));
  fun e -> Hashtbl.find_opt map e

(* Disjoint union of a list of structures; constants are shared by name,
   as required for Section IX's D_y / D_n constructions. *)
let disjoint_union parts =
  let u = create () in
  let maps = List.map (fun p -> union_into ~into:u p) parts in
  (u, maps)

let equal_sets a b =
  size a = size b && fold_facts a (fun f ok -> ok && mem b f) true

let pp ppf t =
  let facts = List.sort Fact.compare (facts t) in
  let elem ppf e = Fmt.string ppf (name t e) in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut (Fact.pp ~elem ())) facts

let pp_stats ppf t =
  Fmt.pf ppf "%d elements, %d facts" (card t) (size t)
