(* Atomic formulas: a predicate symbol applied to terms.

   Atoms appear in conjunctive-query bodies and on both sides of TGDs.
   Ground atoms over structure elements are [Fact.t]. *)

type t = { sym : Symbol.t; args : Term.t list }

let make sym args =
  if List.length args <> Symbol.arity sym then
    invalid_arg
      (Fmt.str "Atom.make: %a applied to %d arguments" Symbol.pp sym
         (List.length args));
  { sym; args }

(* Convenience constructor for binary atoms, which dominate this paper's
   constructions (spider legs, swarm edges, green-graph edges). *)
let app2 sym a b = make sym [ a; b ]

let sym t = t.sym
let args t = t.args

let compare a b =
  let c = Symbol.compare a.sym b.sym in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = compare a b = 0

let vars t =
  List.fold_left
    (fun acc arg ->
      match arg with Term.Var x -> Term.Var_set.add x acc | Term.Cst _ -> acc)
    Term.Var_set.empty t.args

let vars_of_list atoms =
  List.fold_left (fun acc a -> Term.Var_set.union acc (vars a)) Term.Var_set.empty atoms

let constants t =
  List.filter_map (function Term.Cst c -> Some c | Term.Var _ -> None) t.args

(* Apply a renaming/substitution on variables; constants are untouched. *)
let substitute subst t =
  let apply = function
    | Term.Var x as v -> (
        match Term.Var_map.find_opt x subst with Some u -> u | None -> v)
    | Term.Cst _ as c -> c
  in
  { t with args = List.map apply t.args }

let rename f t =
  let apply = function
    | Term.Var x -> Term.Var (f x)
    | Term.Cst _ as c -> c
  in
  { t with args = List.map apply t.args }

let paint c t = { t with sym = Symbol.paint c t.sym }
let dalt t = { t with sym = Symbol.dalt t.sym }

let pp ppf t =
  Fmt.pf ppf "%a(%a)" Symbol.pp_short t.sym
    (Fmt.list ~sep:Fmt.comma Term.pp)
    t.args

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
