(* Terms of conjunctive queries and TGDs: variables and constants.

   Constants are shared with structures: a structure over a signature with
   constant [c] always interprets [c] as a dedicated element, and
   homomorphisms must send a constant to its interpretation (Section II.A). *)

type t =
  | Var of string
  | Cst of string

let var x = Var x
let cst c = Cst c

let is_var = function Var _ -> true | Cst _ -> false
let is_cst = function Cst _ -> true | Var _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> String.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var x -> Fmt.pf ppf "?%s" x
  | Cst c -> Fmt.string ppf c

module Ord = struct
  type nonrec t = t
  let compare = compare
end

(* Sets and maps over plain variable names, used for free-variable
   bookkeeping throughout the query and TGD layers. *)
module Var_set = Set.Make (String)
module Var_map = Map.Make (String)

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
