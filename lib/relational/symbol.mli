(** Predicate symbols, with the green/red painting of Section IV.A.

    A symbol over the two-colored signature [Σ̄] is a plain symbol of [Σ]
    tagged with a color; constants are never colored.  Symbols compare by
    name, arity and color. *)

(** The two colors of Section IV. *)
type color = Green | Red

val color_equal : color -> color -> bool
val color_compare : color -> color -> int

(** [opposite c] flips the color — the chase of green-red TGDs alternates
    colors at every application. *)
val opposite : color -> color

val pp_color : Format.formatter -> color -> unit

type t

(** [make ?color name arity] is a predicate symbol.
    @raise Invalid_argument on negative arity. *)
val make : ?color:color -> string -> int -> t

val name : t -> string
val arity : t -> int
val color : t -> color option

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** [paint c s] is [s] painted [c], forgetting any previous color. *)
val paint : color -> t -> t

(** [green s] = [paint Green s]. *)
val green : t -> t

(** [red s] = [paint Red s]. *)
val red : t -> t

(** [dalt s] erases the color — the "daltonisation" of Section IV.A. *)
val dalt : t -> t

val is_green : t -> bool
val is_red : t -> bool
val is_plain : t -> bool

(** Full rendering, e.g. [G:E/2]. *)
val pp : Format.formatter -> t -> unit

(** Name-only rendering, e.g. [G:E]. *)
val pp_short : Format.formatter -> t -> unit

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
