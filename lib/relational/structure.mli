(** Finite relational structures (Section II.A).

    Elements are integers allocated by the structure; constants of the
    signature are interpreted as dedicated elements shared by name.  The
    structure is mutable — the chase extends it in place — and carries
    provenance: every fact and element remembers the chase stage at which
    it appeared (Section IX's late fragments [chase^L] are carved out of
    this provenance). *)

type t

(** A fresh empty structure. *)
val create : unit -> t

(** {1 Provenance stages} *)

(** Set the current stage; facts and elements added afterwards are stamped
    with it.  The chase sets stage [i] while computing [chase_i]. *)
val set_stage : t -> int -> unit

val stage : t -> int

(** The stage at which a fact was added, if present. *)
val fact_stage : t -> Fact.t -> int option

(** The dense (journal) id of a live fact, if present.  A fact retracted
    and re-added carries the id of its latest insertion. *)
val fact_id : t -> Fact.t -> int option

(** The stage at which an element was created, if present. *)
val elem_stage : t -> int -> int option

(** {1 Elements and constants} *)

(** Allocate a fresh element, with an optional debug name. *)
val fresh : ?name:string -> t -> int

(** Import an externally-allocated element id, keeping [fresh] clear of
    it (used when mirroring graph vertices into structures). *)
val reserve : t -> int -> unit

(** The interpretation of constant [c], allocated on first use. *)
val constant : t -> string -> int

val constant_opt : t -> string -> int option

(** The constant interpreted by this element, if any. *)
val constant_name : t -> int -> string option

val is_constant : t -> int -> bool

(** A printable name for the element ([e<id>] by default). *)
val name : t -> int -> string

val set_name : t -> int -> string -> unit

(** All constant names of the structure. *)
val constants : t -> string list

(** {1 Facts} *)

val mem : t -> Fact.t -> bool

(** [add_fact t f] adds [f]; returns [false] if it was already present. *)
val add_fact : t -> Fact.t -> bool

(** [add t sym args] adds [sym(args)], ignoring duplication. *)
val add : t -> Symbol.t -> int array -> unit

(** Binary convenience. *)
val add2 : t -> Symbol.t -> int -> int -> unit

(** [retract_fact t f] removes a live fact: its id leaves every index
    bucket (a sorted in-place shift, so bucket order and [lower_bound]
    tails stay exact) and the fact leaves the live set, while the
    append-only journal keeps the dead entry so old watermarks stay
    valid.  The retraction is recorded in the retraction journal.
    Non-constant elements born after the base stage whose last live fact
    disappears leave the domain.  Returns [false] if [f] was not
    present.  Re-adding [f] later assigns a fresh journal id, so the
    resurrection lands in the current delta. *)
val retract_fact : t -> Fact.t -> bool

(** [live_id t id] — is journal entry [id] still a live fact? *)
val live_id : t -> int -> bool

(** The retraction journal, oldest first: (journal id, fact) pairs. *)
val retractions : t -> (int * Fact.t) list

(** Length of the retraction journal. *)
val retraction_count : t -> int

(** Number of elements. *)
val card : t -> int

(** Number of facts. *)
val size : t -> int

val iter_facts : t -> (Fact.t -> unit) -> unit
val fold_facts : t -> (Fact.t -> 'a -> 'a) -> 'a -> 'a
val facts : t -> Fact.t list
val iter_elems : t -> (int -> unit) -> unit
val elems : t -> int list

(** All facts with the given (exact, color included) symbol. *)
val facts_with_sym : t -> Symbol.t -> Fact.t list

(** All facts mentioning the element. *)
val facts_with_elem : t -> int -> Fact.t list

(** [facts_with_pin t sym pos e] — the facts [sym(…)] whose argument at
    [pos] is [e]: the unit of selectivity for the homomorphism engine. *)
val facts_with_pin : t -> Symbol.t -> int -> int -> Fact.t list

(** Bucket size of [facts_with_pin], in O(1). *)
val pin_count : t -> Symbol.t -> int -> int -> int

(** {1 The dense-id hot path}

    Facts carry dense ids (their insertion index) and symbols are
    interned to dense ids per structure; arguments live in a flat int
    arena.  The compiled join plans of {!Hom.Plan} work exclusively on
    this view.  Returned buckets are the live index vectors — treat them
    as read-only. *)

(** The dense-id bound: every (live or dead) id is in
    [0 .. nfacts - 1].  Equals {!size} until the first retraction;
    afterwards it is the journal length, which only grows. *)
val nfacts : t -> int

(** The interned id of [sym], or [-1] if no fact uses it. *)
val sym_id : t -> Symbol.t -> int

(** The boxed fact with dense id [id]. *)
val id_fact : t -> int -> Fact.t

(** The interned symbol id of fact [id]. *)
val id_sym : t -> int -> int

(** Number of interned symbol ids — every {!id_sym} is below this; sizes
    dense sym-id-indexed tables. *)
val n_sym_ids : t -> int

(** [id_arg t id pos] — argument [pos] of fact [id], off the flat arena. *)
val id_arg : t -> int -> int -> int

(** All fact ids with interned symbol [sid], insertion order ([-1] and
    unknown ids give the shared empty vector). *)
val ids_with_sym : t -> int -> Intvec.t

(** [ids_with_pin t sid pos e] — fact ids of the [(sid, pos, e)] pin
    bucket, insertion order. *)
val ids_with_pin : t -> int -> int -> int -> Intvec.t

(** Bucket size of [ids_with_pin], in O(1). *)
val pin_count_id : t -> int -> int -> int -> int

(** [delta_ids t wm] — the delta since watermark [wm] as the id interval
    [\[wm, nfacts)], ready for sharding. *)
val delta_ids : t -> int -> int * int

(** {1 Delta journal}

    Every added fact is journalled in insertion order; a watermark marks a
    point in that journal.  The semi-naive chase matches each stage's TGD
    bodies only against the facts added since the previous stage. *)

(** The current journal position: the journal length (equals {!size}
    until the first retraction).  Watermarks taken before an edit stay
    valid across retractions — the journal is append-only. *)
val watermark : t -> int

(** [delta_since t wm] — the live facts journalled since [watermark t]
    returned [wm], oldest first.  Retracted entries are skipped. *)
val delta_since : t -> int -> Fact.t list

(** The symbols with at least one fact. *)
val symbols : t -> Symbol.t list

(** The canonical 128-bit digest of the structure's build history: the
    live facts in journal order (symbols by content, elements by id) plus
    the element count.  History-sensitive — a retract-then-re-add leaves
    a different journal than never touching the fact, which is what the
    engine bit-identity witness observes.  Incremental: each call feeds
    only the journal suffix since the previous call, O(delta) amortized;
    a retraction below the fed watermark triggers a streamed full refeed.
    Copies ({!copy}, {!filter}, …) rebuild their own journal in their own
    order and digest accordingly. *)
val digest_hex : t -> string

(** {1 Whole-structure operations} *)

(** Deep copy sharing nothing mutable. *)
val copy : t -> t

(** [like t] is an empty structure sharing [t]'s constants (same element
    ids) and allocator position. *)
val like : t -> t

(** [filter keep t] is the substructure of facts satisfying [keep];
    constants survive, provenance is preserved. *)
val filter : (Fact.t -> bool) -> t -> t

(** [restrict_color c t] is D↾G or D↾R (Section IV.A). *)
val restrict_color : Symbol.color -> t -> t

(** [map_facts f t] rebuilds the structure with each fact transformed. *)
val map_facts : (Fact.t -> Fact.t) -> t -> t

(** Daltonisation: erase all colors (Section IV.A). *)
val dalt : t -> t

(** Paint every fact. *)
val paint : Symbol.color -> t -> t

(** [quotient f t] renames every element through [f], merging elements
    that share an image.
    @raise Invalid_argument if a constant is not a fixed point of [f]. *)
val quotient : (int -> int) -> t -> t

(** [union_into ~into src] adds a renamed-apart copy of [src] to [into],
    identifying constants by name; returns the renaming. *)
val union_into : into:t -> t -> int -> int option

(** Disjoint union of structures; constants are shared by name (the
    Section IX constructions rely on this).  Also returns the per-part
    renamings. *)
val disjoint_union : t list -> t * (int -> int option) list

(** Equality as fact sets (same element identities). *)
val equal_sets : t -> t -> bool

val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> t -> unit
