(* Streaming 128-bit structure/ruleset digests.

   The serve layer keys its result cache — and witnesses engine
   bit-identity — by a digest of the chase journal.  The original witness
   rendered the whole journal through [Format.asprintf] into a [Buffer]
   and MD5'd the string: an O(journal) allocation per digest call, paid on
   every job completion.  This module replaces the text render with a
   streamed feed: the caller pushes ints and strings directly into two
   64-bit mixing lanes, and may keep feeding the same state incrementally
   as the journal grows (the structure remembers its feed watermark).

   The mixer is xxhash-flavoured — per-word odd-multiplier rounds with
   rotations, finished by an xmx avalanche over both lanes with the fed
   word count folded in.  It is a fast non-cryptographic mix: collisions
   are astronomically unlikely for the cache's working sets, but nothing
   here resists an adversary.  Determinism is the contract that matters:
   the digest is a pure function of the sequence of [feed_*] calls, so
   two runs that feed the same values in the same order — a preempted and
   an uninterrupted chase, an incremental feed and a from-scratch refeed —
   produce the same hex, regardless of where the feed was split across
   calls.

   The state is three scalars (two boxed int64s and an int), so it
   marshals inside engine snapshots and copies in O(1). *)

type t = { mutable a : int64; mutable b : int64; mutable n : int }

let p1 = 0x9E3779B185EBCA87L
let p2 = 0xC2B2AE3D27D4EB4FL
let p3 = 0x165667B19E3779F9L

let create () = { a = 0x7365696467657131L; b = 0x1c65776f726d5f64L; n = 0 }
let copy t = { a = t.a; b = t.b; n = t.n }

let reset t =
  let u = create () in
  t.a <- u.a;
  t.b <- u.b;
  t.n <- u.n

let rotl x r =
  Int64.logor (Int64.shift_left x r) (Int64.shift_right_logical x (64 - r))

let feed_int64 t w =
  t.a <- Int64.mul (rotl (Int64.add t.a (Int64.mul w p2)) 31) p1;
  t.b <- Int64.mul (rotl (Int64.logxor t.b w) 29) p3;
  t.n <- t.n + 1

let feed_int t i = feed_int64 t (Int64.of_int i)

(* A string feed is the length followed by its bytes packed into
   little-endian words (last word zero-padded).  The length prefix keeps
   consecutive string feeds unambiguous ("ab","c" vs "a","bc"). *)
let feed_string t s =
  let len = String.length s in
  feed_int t len;
  let i = ref 0 in
  while !i < len do
    let w = ref 0L in
    for k = 0 to 7 do
      if !i + k < len then
        w :=
          Int64.logor !w
            (Int64.shift_left
               (Int64.of_int (Char.code (String.unsafe_get s (!i + k))))
               (8 * k))
    done;
    feed_int64 t !w;
    i := !i + 8
  done

let avalanche x =
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 33)) p2 in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 29)) p3 in
  Int64.logxor x (Int64.shift_right_logical x 32)

(* Finalize a snapshot of the state — the live state stays feedable.
   [salt] folds trailing values (cardinalities, params) into the result
   without disturbing the incremental feed. *)
let hex ?(salt = []) t =
  let u = copy t in
  List.iter (fun i -> feed_int u i) salt;
  let a = avalanche (Int64.add u.a (Int64.mul (Int64.of_int u.n) p3)) in
  let b = avalanche (Int64.logxor u.b a) in
  Printf.sprintf "%016Lx%016Lx" a b

(* One-shot convenience: digest a list of strings. *)
let of_strings ss =
  let t = create () in
  List.iter (feed_string t) ss;
  hex t
