(** Ground atoms of a finite structure: a predicate symbol applied to
    structure elements (integers). *)

type t

(** [make sym args] is the fact [sym(args)].
    @raise Invalid_argument on arity mismatch. *)
val make : Symbol.t -> int array -> t

(** Binary convenience constructor. *)
val app2 : Symbol.t -> int -> int -> t

val sym : t -> Symbol.t
val args : t -> int array

(** [arg f i] is the [i]-th argument (0-based). *)
val arg : t -> int -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

(** The elements occurring in the fact, in argument order (duplicates
    kept). *)
val elements : t -> int list

(** [map_elements f t] renames every element through [f]. *)
val map_elements : (int -> int) -> t -> t

(** Paint / unpaint the predicate symbol (Section IV.A). *)
val paint : Symbol.color -> t -> t

val dalt : t -> t

(** The color of the fact's symbol, if any. *)
val color : t -> Symbol.color option

val pp : ?elem:(Format.formatter -> int -> unit) -> unit -> Format.formatter -> t -> unit

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
