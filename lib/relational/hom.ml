(* Homomorphism search (Section II.A).

   The engine matches a conjunction of atoms (the pattern) against a
   structure, extending an optional initial binding.  This single engine
   powers conjunctive-query evaluation, TGD trigger detection, containment
   tests and core computation.

   The search is plain backtracking over a connectivity-greedy atom order;
   candidate facts for an atom with at least one bound argument are drawn
   from the structure's per-element index, otherwise from the per-symbol
   index. *)

type binding = int Term.Var_map.t

let c_candidates = Obs.Metrics.counter "hom.candidates_scanned"
let c_unify = Obs.Metrics.counter "hom.unify_attempts"
let c_backtracks = Obs.Metrics.counter "hom.backtracks"

(* Order atoms so that each atom (after the first) shares a variable with an
   earlier one when possible; ties broken towards atoms with constants,
   which are the most selective.  [bound] seeds the variables considered
   already bound (the delta pivot's variables in semi-naive mode).

   The selected atom is removed *positionally*: a CQ body may repeat an
   atom (possibly the same physical value), and each occurrence must keep
   its slot in the match order. *)
let order_atoms ?(bound = Term.Var_set.empty) atoms =
  match atoms with
  | [] -> []
  | _ ->
      let score bound a =
        let vs = Atom.vars a in
        let shared = Term.Var_set.cardinal (Term.Var_set.inter vs bound) in
        let csts = List.length (Atom.constants a) in
        (shared * 4) + csts
      in
      (* index of the first best-scoring atom, mirroring the fold's
         strict-improvement tie-break *)
      let best_index bound = function
        | [] -> invalid_arg "Hom.order_atoms: empty"
        | a :: rest ->
            let rec go i best_i best_s = function
              | [] -> best_i
              | a :: rest ->
                  let s = score bound a in
                  if s > best_s then go (i + 1) i s rest
                  else go (i + 1) best_i best_s rest
            in
            go 1 0 (score bound a) rest
      in
      let rec remove_nth i = function
        | [] -> []
        | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest
      in
      let rec go bound remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            let i = best_index bound remaining in
            let a = List.nth remaining i in
            let remaining = remove_nth i remaining in
            go (Term.Var_set.union bound (Atom.vars a)) remaining (a :: acc)
      in
      go bound atoms []

(* Try to extend [binding] so that [atom] maps onto [fact]. *)
let unify atom fact binding =
  let args = Array.of_list (Atom.args atom) in
  let fargs = Fact.args fact in
  let n = Array.length args in
  if n <> Array.length fargs then None
  else
    let rec go i binding =
      if i >= n then Some binding
      else
        match args.(i) with
        | Term.Cst _ ->
            (* constants were resolved before candidate enumeration *)
            go (i + 1) binding
        | Term.Var x -> (
            match Term.Var_map.find_opt x binding with
            | Some e -> if e = fargs.(i) then go (i + 1) binding else None
            | None -> go (i + 1) (Term.Var_map.add x fargs.(i) binding))
    in
    go 0 binding

(* Resolve the constant arguments of [atom] against [target]; [None] if the
   target lacks one of the constants. *)
let resolved_constants target atom =
  let rec go i acc = function
    | [] -> Some (List.rev acc)
    | Term.Cst c :: rest -> (
        match Structure.constant_opt target c with
        | None -> None
        | Some e -> go (i + 1) ((i, e) :: acc) rest)
    | Term.Var _ :: rest -> go (i + 1) acc rest
  in
  go 0 [] (Atom.args atom)

let candidates target atom binding =
  match resolved_constants target atom with
  | None -> []
  | Some pinned ->
      (* Pick one pinned position — a constant or a bound variable — and use
         the element index; fall back to the symbol index. *)
      let bound_positions =
        List.mapi
          (fun i t ->
            match t with
            | Term.Var x -> (
                match Term.Var_map.find_opt x binding with
                | Some e -> Some (i, e)
                | None -> None)
            | Term.Cst _ -> None)
          (Atom.args atom)
        |> List.filter_map Fun.id
      in
      let pins = pinned @ bound_positions in
      let sym = Atom.sym atom in
      match pins with
      | [] ->
          let pool = Structure.facts_with_sym target sym in
          if !Obs.metrics_on then
            Obs.Metrics.add c_candidates (List.length pool);
          pool
      | first :: rest ->
          (* Use the most selective pin — the smallest (sym, pos, elem)
             bucket — then filter by the remaining pins. *)
          let count (i, e) = Structure.pin_count target sym i e in
          let best, best_n =
            List.fold_left
              (fun (bp, bn) p ->
                let n = count p in
                if n < bn then (p, n) else (bp, bn))
              (first, count first) rest
          in
          if best_n = 0 then []
          else
            let bi, be = best in
            let pool = Structure.facts_with_pin target sym bi be in
            if !Obs.metrics_on then Obs.Metrics.add c_candidates best_n;
            List.filter
              (fun f -> List.for_all (fun (i, e) -> Fact.arg f i = e) pins)
              pool

(* Enumerate every homomorphism from [atoms] into [target] extending
   [init]; [f] is called on each complete binding.  Raise [Exit] from [f]
   to stop the enumeration.  [ordered:false] disables the
   connectivity-greedy atom ordering (exposed for the ablation bench).

   [~delta] switches to the semi-naive mode: only the homomorphisms whose
   image uses at least one fact of [delta] are produced (each exactly
   once).  For each atom in turn, that atom is pinned to a delta fact and
   the remaining atoms are matched against the full structure — the
   standard delta-rule decomposition of semi-naive Datalog evaluation. *)
let iter_all ?(ordered = true) ?(init = Term.Var_map.empty) ?delta target atoms
    f =
  let rec go sink atoms binding =
    match atoms with
    | [] -> sink binding
    | atom :: rest ->
        let cands = candidates target atom binding in
        List.iter
          (fun fact ->
            match unify atom fact binding with
            | Some binding' ->
                if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                go sink rest binding'
            | None ->
                if !Obs.metrics_on then begin
                  Obs.Metrics.incr c_unify;
                  Obs.Metrics.incr c_backtracks
                end)
          cands
  in
  match delta with
  | None -> go f (if ordered then order_atoms atoms else atoms) init
  | Some delta_facts ->
      (* Index the delta by symbol once. *)
      let by_sym = Symbol.Tbl.create 16 in
      List.iter
        (fun fact ->
          let s = Fact.sym fact in
          match Symbol.Tbl.find_opt by_sym s with
          | Some r -> r := fact :: !r
          | None -> Symbol.Tbl.replace by_sym s (ref [ fact ]))
        delta_facts;
      (* The same homomorphism can be reached through several pivots;
         deduplicate on the full binding. *)
      let seen = Hashtbl.create 64 in
      let emit binding =
        let key = Term.Var_map.bindings binding in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          f binding
        end
      in
      List.iteri
        (fun j pivot ->
          match Symbol.Tbl.find_opt by_sym (Atom.sym pivot) with
          | None -> ()
          | Some dfacts -> (
              match resolved_constants target pivot with
              | None -> ()
              | Some pinned ->
                  let rest = List.filteri (fun k _ -> k <> j) atoms in
                  let rest =
                    if ordered then order_atoms ~bound:(Atom.vars pivot) rest
                    else rest
                  in
                  List.iter
                    (fun fact ->
                      if
                        List.for_all
                          (fun (i, e) -> Fact.arg fact i = e)
                          pinned
                      then
                        match unify pivot fact init with
                        | Some binding ->
                            if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                            go emit rest binding
                        | None ->
                            if !Obs.metrics_on then begin
                              Obs.Metrics.incr c_unify;
                              Obs.Metrics.incr c_backtracks
                            end)
                    (List.rev !dfacts)))
        atoms

(* Early exit via a [ref] and a locally-caught [Exit]: the exception never
   crosses the module boundary, so a caller callback's own exceptions
   (including [Exit], per the [iter_all] contract) can't be misread as a
   match. *)
let find ?ordered ?(init = Term.Var_map.empty) target atoms =
  let result = ref None in
  (try
     iter_all ?ordered ~init target atoms (fun b ->
         result := Some b;
         raise Exit)
   with Exit -> ());
  !result

let exists ?ordered ?init target atoms =
  Option.is_some (find ?ordered ?init target atoms)

(* Count homomorphisms (used by tests and benches; beware of blowup). *)
let count ?ordered ?init target atoms =
  let n = ref 0 in
  iter_all ?ordered ?init target atoms (fun _ -> incr n);
  !n

(* --- Structure-to-structure homomorphisms --------------------------- *)

(* View a structure as a conjunction of atoms: element [e] becomes variable
   ["e<e>"] unless it interprets a constant, in which case it stays that
   constant (homomorphisms fix constants, Section II.A). *)
let var_of_elem e = Printf.sprintf "h%d" e

let atoms_of_structure src =
  let term_of e =
    match Structure.constant_name src e with
    | Some c -> Term.Cst c
    | None -> Term.Var (var_of_elem e)
  in
  Structure.fold_facts src
    (fun f acc ->
      Atom.make (Fact.sym f) (List.map term_of (Fact.elements f)) :: acc)
    []

(* Find a homomorphism [src -> target]; the result maps each element of
   [src] to an element of [target].  Isolated (fact-less) non-constant
   elements of [src] are sent to an arbitrary element of [target] when one
   exists. *)
let between ?(init = []) src target =
  let init_binding =
    List.fold_left
      (fun acc (e, e') -> Term.Var_map.add (var_of_elem e) e' acc)
      Term.Var_map.empty init
  in
  match find ~init:init_binding target (atoms_of_structure src) with
  | None -> None
  | Some binding ->
      let default =
        match Structure.elems target with e :: _ -> Some e | [] -> None
      in
      let table = Hashtbl.create 64 in
      Structure.iter_elems src (fun e ->
          let image =
            match Structure.constant_name src e with
            | Some c -> Structure.constant_opt target c
            | None -> (
                match Term.Var_map.find_opt (var_of_elem e) binding with
                | Some e' -> Some e'
                | None -> default)
          in
          match image with
          | Some e' -> Hashtbl.replace table e e'
          | None -> ());
      Some (fun e -> Hashtbl.find_opt table e)

let exists_between ?init src target = Option.is_some (between ?init src target)
