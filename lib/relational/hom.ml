(* Homomorphism search (Section II.A).

   The engine matches a conjunction of atoms (the pattern) against a
   structure, extending an optional initial binding.  This single engine
   powers conjunctive-query evaluation, TGD trigger detection, containment
   tests and core computation.

   The search is plain backtracking over a connectivity-greedy atom order;
   candidate facts for an atom with at least one bound argument are drawn
   from the structure's per-element index, otherwise from the per-symbol
   index.

   Two evaluators share that strategy.  The interpreted one below works on
   boxed [Fact.t] lists and persistent [Var_map] bindings and re-derives
   the atom order on every call; [Plan] compiles a body once into an
   array-of-slots program over the structure's dense-id arena and is the
   default ([iter_all ~compiled:true]).  Both enumerate the exact same
   bindings in the exact same order and tick the same counters — the
   interpreted path is the executable specification the property tests
   hold [Plan] against. *)

type binding = int Term.Var_map.t

let c_candidates = Obs.Metrics.counter "hom.candidates_scanned"
let c_unify = Obs.Metrics.counter "hom.unify_attempts"
let c_backtracks = Obs.Metrics.counter "hom.backtracks"

(* Order atoms so that each atom (after the first) shares a variable with an
   earlier one when possible; ties broken towards atoms with constants,
   which are the most selective.  [bound] seeds the variables considered
   already bound (the delta pivot's variables in semi-naive mode).

   The selected atom is removed *positionally*: a CQ body may repeat an
   atom (possibly the same physical value), and each occurrence must keep
   its slot in the match order. *)
let order_atoms ?(bound = Term.Var_set.empty) atoms =
  match atoms with
  | [] -> []
  | _ ->
      let score bound a =
        let vs = Atom.vars a in
        let shared = Term.Var_set.cardinal (Term.Var_set.inter vs bound) in
        let csts = List.length (Atom.constants a) in
        (shared * 4) + csts
      in
      (* index of the first best-scoring atom, mirroring the fold's
         strict-improvement tie-break *)
      let best_index bound = function
        | [] -> invalid_arg "Hom.order_atoms: empty"
        | a :: rest ->
            let rec go i best_i best_s = function
              | [] -> best_i
              | a :: rest ->
                  let s = score bound a in
                  if s > best_s then go (i + 1) i s rest
                  else go (i + 1) best_i best_s rest
            in
            go 1 0 (score bound a) rest
      in
      let rec remove_nth i = function
        | [] -> []
        | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest
      in
      let rec go bound remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            let i = best_index bound remaining in
            let a = List.nth remaining i in
            let remaining = remove_nth i remaining in
            go (Term.Var_set.union bound (Atom.vars a)) remaining (a :: acc)
      in
      go bound atoms []

(* Try to extend [binding] so that [atom] maps onto [fact]. *)
let unify atom fact binding =
  let args = Array.of_list (Atom.args atom) in
  let fargs = Fact.args fact in
  let n = Array.length args in
  if n <> Array.length fargs then None
  else
    let rec go i binding =
      if i >= n then Some binding
      else
        match args.(i) with
        | Term.Cst _ ->
            (* constants were resolved before candidate enumeration *)
            go (i + 1) binding
        | Term.Var x -> (
            match Term.Var_map.find_opt x binding with
            | Some e -> if e = fargs.(i) then go (i + 1) binding else None
            | None -> go (i + 1) (Term.Var_map.add x fargs.(i) binding))
    in
    go 0 binding

(* Resolve the constant arguments of [atom] against [target]; [None] if the
   target lacks one of the constants. *)
let resolved_constants target atom =
  let rec go i acc = function
    | [] -> Some (List.rev acc)
    | Term.Cst c :: rest -> (
        match Structure.constant_opt target c with
        | None -> None
        | Some e -> go (i + 1) ((i, e) :: acc) rest)
    | Term.Var _ :: rest -> go (i + 1) acc rest
  in
  go 0 [] (Atom.args atom)

let candidates target atom binding =
  match resolved_constants target atom with
  | None -> []
  | Some pinned -> (
      (* Pick one pinned position — a constant or a bound variable — and use
         the element index; fall back to the symbol index. *)
      let bound_positions =
        List.mapi
          (fun i t ->
            match t with
            | Term.Var x -> (
                match Term.Var_map.find_opt x binding with
                | Some e -> Some (i, e)
                | None -> None)
            | Term.Cst _ -> None)
          (Atom.args atom)
        |> List.filter_map Fun.id
      in
      let pins = pinned @ bound_positions in
      let sym = Atom.sym atom in
      let count (i, e) = Structure.pin_count target sym i e in
      match pins with
      | [] -> (
          match Structure.facts_with_sym target sym with
          | [] -> []
          | pool ->
              if !Obs.metrics_on then
                Obs.Metrics.add c_candidates (List.length pool);
              pool)
      | [ (i, e) ] ->
          (* A single pin needs no residual filter: its bucket is exact. *)
          let n = count (i, e) in
          if n = 0 then []
          else begin
            if !Obs.metrics_on then Obs.Metrics.add c_candidates n;
            Structure.facts_with_pin target sym i e
          end
      | first :: rest ->
          (* Use the most selective pin — the smallest (sym, pos, elem)
             bucket — then filter by the remaining pins. *)
          let best, best_n =
            List.fold_left
              (fun (bp, bn) p ->
                let n = count p in
                if n < bn then (p, n) else (bp, bn))
              (first, count first) rest
          in
          if best_n = 0 then []
          else
            let bi, be = best in
            let pool = Structure.facts_with_pin target sym bi be in
            if !Obs.metrics_on then Obs.Metrics.add c_candidates best_n;
            List.filter
              (fun f -> List.for_all (fun (i, e) -> Fact.arg f i = e) pins)
              pool)

(* The interpreted evaluator: the executable specification.  [Plan] below
   must stay bit-identical to this, bindings, order and counters included. *)
let iter_all_interp ~ordered ~init ?delta target atoms f =
  let rec go sink atoms binding =
    match atoms with
    | [] -> sink binding
    | atom :: rest ->
        let cands = candidates target atom binding in
        List.iter
          (fun fact ->
            match unify atom fact binding with
            | Some binding' ->
                if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                go sink rest binding'
            | None ->
                if !Obs.metrics_on then begin
                  Obs.Metrics.incr c_unify;
                  Obs.Metrics.incr c_backtracks
                end)
          cands
  in
  match delta with
  | None -> go f (if ordered then order_atoms atoms else atoms) init
  | Some delta_facts ->
      (* Index the delta by symbol once. *)
      let by_sym = Symbol.Tbl.create 16 in
      List.iter
        (fun fact ->
          let s = Fact.sym fact in
          match Symbol.Tbl.find_opt by_sym s with
          | Some r -> r := fact :: !r
          | None -> Symbol.Tbl.replace by_sym s (ref [ fact ]))
        delta_facts;
      (* The same homomorphism can be reached through several pivots;
         deduplicate on the full binding. *)
      let seen = Hashtbl.create 64 in
      let emit binding =
        let key = Term.Var_map.bindings binding in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          f binding
        end
      in
      List.iteri
        (fun j pivot ->
          match Symbol.Tbl.find_opt by_sym (Atom.sym pivot) with
          | None -> ()
          | Some dfacts -> (
              match resolved_constants target pivot with
              | None -> ()
              | Some pinned ->
                  let rest = List.filteri (fun k _ -> k <> j) atoms in
                  let rest =
                    if ordered then order_atoms ~bound:(Atom.vars pivot) rest
                    else rest
                  in
                  List.iter
                    (fun fact ->
                      if
                        List.for_all
                          (fun (i, e) -> Fact.arg fact i = e)
                          pinned
                      then
                        match unify pivot fact init with
                        | Some binding ->
                            if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                            go emit rest binding
                        | None ->
                            if !Obs.metrics_on then begin
                              Obs.Metrics.incr c_unify;
                              Obs.Metrics.incr c_backtracks
                            end)
                    (List.rev !dfacts)))
        atoms

(* --- Compiled join plans -------------------------------------------- *)

module Plan = struct
  let c_compilations = Obs.Metrics.counter "plan.compilations"

  (* A slot table: variable names interned to dense slots.  One table can
     be shared by the plans of a delta family, so a full match is the same
     [int array] no matter which pivot produced it — that array is the
     semi-naive deduplication key and the parallel-merge sort key. *)
  type vars = {
    tbl : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable n : int;
  }

  let vars_create () =
    { tbl = Hashtbl.create 16; names = Array.make 8 ""; n = 0 }

  let slot_of vars x =
    match Hashtbl.find_opt vars.tbl x with
    | Some i -> i
    | None ->
        let i = vars.n in
        if i >= Array.length vars.names then begin
          let a = Array.make (2 * Array.length vars.names) "" in
          Array.blit vars.names 0 a 0 vars.n;
          vars.names <- a
        end;
        vars.names.(i) <- x;
        Hashtbl.replace vars.tbl x i;
        vars.n <- i + 1;
        i

  (* One compiled atom: per position, either a variable slot or a constant
     name (resolved to an element once per evaluation). *)
  type patom = {
    psym : Symbol.t;
    arity : int;
    slot_of_pos : int array; (* position -> slot, or -1 at constants *)
    cst_of_pos : string array; (* position -> constant name, "" at vars *)
  }

  type t = { vars : vars; atoms : patom array (* evaluation order *) }

  type family = { fvars : vars; pivots : (patom * t) array }

  let compile_atom vars atom =
    let args = Array.of_list (Atom.args atom) in
    let n = Array.length args in
    let slots = Array.make n (-1) in
    let csts = Array.make n "" in
    Array.iteri
      (fun i t ->
        match t with
        | Term.Var x -> slots.(i) <- slot_of vars x
        | Term.Cst c -> csts.(i) <- c)
      args;
    { psym = Atom.sym atom; arity = n; slot_of_pos = slots; cst_of_pos = csts }

  let compile_with vars ?(ordered = true) ?(bound = Term.Var_set.empty) atoms =
    let atoms = if ordered then order_atoms ~bound atoms else atoms in
    if !Obs.metrics_on then Obs.Metrics.incr c_compilations;
    { vars; atoms = Array.of_list (List.map (compile_atom vars) atoms) }

  let compile ?ordered ?bound atoms =
    compile_with (vars_create ()) ?ordered ?bound atoms

  (* One compiled plan per pivot position, all sharing one slot table.
     Each rest-plan is ordered with the pivot's variables seeded as bound,
     exactly as the interpreted delta decomposition does. *)
  let compile_family ?(ordered = true) atoms =
    let vars = vars_create () in
    let pivots =
      List.mapi
        (fun j pivot ->
          let p = compile_atom vars pivot in
          let rest = List.filteri (fun k _ -> k <> j) atoms in
          let rest =
            if ordered then order_atoms ~bound:(Atom.vars pivot) rest else rest
          in
          (p, compile_with vars ~ordered:false rest))
        atoms
    in
    { fvars = vars; pivots = Array.of_list pivots }

  let nslots plan = plan.vars.n
  let slot plan x = Hashtbl.find_opt plan.vars.tbl x
  let var_name plan s = plan.vars.names.(s)
  let family_nslots fam = fam.fvars.n
  let family_slot fam x = Hashtbl.find_opt fam.fvars.tbl x

  (* Per-atom evaluation scratch, preallocated once per entry point: the
     chosen pins and the slots bound by the current candidate (for
     backtracking, since slots are mutated in place). *)
  type frame = {
    pin_pos : int array;
    pin_elem : int array;
    pin_pool : Intvec.t array;
    undo : int array;
  }

  (* The core evaluator.  [slots] is the shared mutable binding array
     (slot -> element, -1 unbound); the frames of a family evaluation must
     not alias, so every entry point builds its own.

     Counter and enumeration-order parity with the interpreted path:
     pools are scanned newest-first (the cons order of the former list
     buckets); [c_candidates] ticks per bucket entry before the residual
     pin filter, [c_unify] once per candidate surviving it, and
     [c_backtracks] when the bind/check pass fails. *)
  let eval plan target slots emit =
    let n = Array.length plan.atoms in
    (* Resolve symbols and constants against [target] once. *)
    let sids = Array.make n (-1) in
    let cst_elems = Array.make n [||] in
    let dead = Array.make n false in
    for i = 0 to n - 1 do
      let pa = plan.atoms.(i) in
      sids.(i) <- Structure.sym_id target pa.psym;
      let ce = Array.make pa.arity (-1) in
      Array.iteri
        (fun p c ->
          if c <> "" then
            match Structure.constant_opt target c with
            | Some e -> ce.(p) <- e
            | None -> dead.(i) <- true)
        pa.cst_of_pos;
      cst_elems.(i) <- ce
    done;
    let no_pool = Intvec.create () in
    let frames =
      Array.init n (fun i ->
          let a = plan.atoms.(i).arity in
          {
            pin_pos = Array.make a 0;
            pin_elem = Array.make a 0;
            pin_pool = Array.make a no_pool;
            undo = Array.make a 0;
          })
    in
    let rec go i =
      (* cooperative cancellation: a read-only scan may abort here (one
         disarmed ref read, the [Obs.metrics_on] overhead discipline) *)
      if !Resilience.Governor.Cancel.poll_on then
        Resilience.Governor.Cancel.poll ();
      if i >= n then emit slots
      else if dead.(i) then () (* an unresolved constant: no candidates *)
      else begin
        let pa = plan.atoms.(i) in
        let fr = frames.(i) in
        let ce = cst_elems.(i) in
        (* Collect the pins — constants first, then bound variables, each
           in position order: the interpreted [pinned @ bound_positions]. *)
        let np = ref 0 in
        for p = 0 to pa.arity - 1 do
          if ce.(p) >= 0 then begin
            fr.pin_pos.(!np) <- p;
            fr.pin_elem.(!np) <- ce.(p);
            incr np
          end
        done;
        for p = 0 to pa.arity - 1 do
          let s = pa.slot_of_pos.(p) in
          if s >= 0 && slots.(s) >= 0 then begin
            fr.pin_pos.(!np) <- p;
            fr.pin_elem.(!np) <- slots.(s);
            incr np
          end
        done;
        let n_pins = !np in
        let sid = sids.(i) in
        (* [skip] is the pin already enforced by the bucket choice. *)
        let try_candidate skip id =
          let ok = ref true in
          let p = ref 0 in
          while !ok && !p < n_pins do
            if
              !p <> skip
              && Structure.id_arg target id fr.pin_pos.(!p) <> fr.pin_elem.(!p)
            then ok := false;
            incr p
          done;
          if !ok then begin
            if !Obs.metrics_on then Obs.Metrics.incr c_unify;
            let nb = ref 0 in
            let fail = ref false in
            let q = ref 0 in
            while (not !fail) && !q < pa.arity do
              let s = pa.slot_of_pos.(!q) in
              if s >= 0 then begin
                let fa = Structure.id_arg target id !q in
                let v = slots.(s) in
                if v < 0 then begin
                  slots.(s) <- fa;
                  fr.undo.(!nb) <- s;
                  incr nb
                end
                else if v <> fa then fail := true
              end;
              incr q
            done;
            if !fail then begin
              if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
            end
            else go (i + 1);
            for b = 0 to !nb - 1 do
              slots.(fr.undo.(b)) <- -1
            done
          end
        in
        if n_pins = 0 then begin
          if sid >= 0 then begin
            let pool = Structure.ids_with_sym target sid in
            let len = Intvec.length pool in
            if len > 0 then begin
              if !Obs.metrics_on then Obs.Metrics.add c_candidates len;
              for k = len - 1 downto 0 do
                try_candidate (-1) (Intvec.unsafe_get pool k)
              done
            end
          end
        end
        else begin
          (* First strict minimum over the pins, like the interpreted
             fold.  Fetching the pools (their length is O(1)) instead of
             asking for counts saves the second hash lookup on the
             winner — half the pin-table traffic at the common single-pin
             joins. *)
          let best = ref 0 in
          let best_n = ref max_int in
          for p = 0 to n_pins - 1 do
            let pool =
              Structure.ids_with_pin target sid fr.pin_pos.(p) fr.pin_elem.(p)
            in
            fr.pin_pool.(p) <- pool;
            let c = Intvec.length pool in
            if c < !best_n then begin
              best := p;
              best_n := c
            end
          done;
          if !best_n > 0 then begin
            let pool = fr.pin_pool.(!best) in
            if !Obs.metrics_on then Obs.Metrics.add c_candidates !best_n;
            for k = !best_n - 1 downto 0 do
              try_candidate !best (Intvec.unsafe_get pool k)
            done
          end
        end
      end
    in
    go 0

  let seed_slots nslots init =
    let slots = Array.make (max nslots 1) (-1) in
    List.iter (fun (s, e) -> slots.(s) <- e) init;
    slots

  let iter_slots ?(init = []) plan target emit =
    eval plan target (seed_slots (nslots plan) init) emit

  let binding_of vars ~init slots =
    let b = ref init in
    for s = 0 to vars.n - 1 do
      let v = slots.(s) in
      if v >= 0 then b := Term.Var_map.add vars.names.(s) v !b
    done;
    !b

  let binding_of_slots ?(init = Term.Var_map.empty) plan slots =
    binding_of plan.vars ~init slots

  let family_binding_of_slots ?(init = Term.Var_map.empty) fam slots =
    binding_of fam.fvars ~init slots

  let init_slots_of_binding tbl init =
    Term.Var_map.fold
      (fun x e acc ->
        match Hashtbl.find_opt tbl x with
        | Some s -> (s, e) :: acc
        | None -> acc)
      init []

  let iter ?(init = Term.Var_map.empty) plan target f =
    let seed = init_slots_of_binding plan.vars.tbl init in
    iter_slots ~init:seed plan target (fun slots ->
        f (binding_of plan.vars ~init slots))

  (* Early exit via a locally-caught [Exit], as in [find] below. *)
  let find_slots ?init plan target =
    let result = ref None in
    (try
       iter_slots ?init plan target (fun slots ->
           result := Some (Array.copy slots);
           raise Exit)
     with Exit -> ());
    !result

  let exists_slots ?init plan target =
    Option.is_some (find_slots ?init plan target)

  let exists ?(init = Term.Var_map.empty) plan target =
    exists_slots ~init:(init_slots_of_binding plan.vars.tbl init) plan target

  (* Semi-naive family evaluation: for each pivot in turn, match it
     against the delta facts of its symbol (in delta order), then run the
     pivot's rest-plan over the full structure.  With [dedup] (default) a
     full match is emitted once, keyed on a copy of the slot array. *)
  let iter_family ?(init = []) ?(dedup = true) fam target delta_facts emit =
    let slots = seed_slots (family_nslots fam) init in
    let by_sym = Symbol.Tbl.create 16 in
    List.iter
      (fun fact ->
        let s = Fact.sym fact in
        match Symbol.Tbl.find_opt by_sym s with
        | Some r -> r := fact :: !r
        | None -> Symbol.Tbl.replace by_sym s (ref [ fact ]))
      delta_facts;
    let seen = Hashtbl.create (if dedup then 64 else 1) in
    let emit' slots =
      if not dedup then emit slots
      else begin
        let key = Array.copy slots in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          emit slots
        end
      end
    in
    Array.iter
      (fun (pivot, rest_plan) ->
        match Symbol.Tbl.find_opt by_sym pivot.psym with
        | None -> ()
        | Some dfacts ->
            let ce = Array.make pivot.arity (-1) in
            let dead = ref false in
            Array.iteri
              (fun p c ->
                if c <> "" then
                  match Structure.constant_opt target c with
                  | Some e -> ce.(p) <- e
                  | None -> dead := true)
              pivot.cst_of_pos;
            if not !dead then begin
              let undo = Array.make pivot.arity 0 in
              List.iter
                (fun fact ->
                  if !Resilience.Governor.Cancel.poll_on then
                    Resilience.Governor.Cancel.poll ();
                  let fargs = Fact.args fact in
                  (* constant filter, unmetered like the interpreted
                     pivot's [pinned] check *)
                  let ok = ref true in
                  for p = 0 to pivot.arity - 1 do
                    if ce.(p) >= 0 && fargs.(p) <> ce.(p) then ok := false
                  done;
                  if !ok then begin
                    if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                    let nb = ref 0 in
                    let fail = ref false in
                    let q = ref 0 in
                    while (not !fail) && !q < pivot.arity do
                      let s = pivot.slot_of_pos.(!q) in
                      if s >= 0 then begin
                        let fa = fargs.(!q) in
                        let v = slots.(s) in
                        if v < 0 then begin
                          slots.(s) <- fa;
                          undo.(!nb) <- s;
                          incr nb
                        end
                        else if v <> fa then fail := true
                      end;
                      incr q
                    done;
                    if !fail then begin
                      if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
                    end
                    else eval rest_plan target slots emit';
                    for b = 0 to !nb - 1 do
                      slots.(undo.(b)) <- -1
                    done
                  end)
                (List.rev !dfacts)
            end)
      fam.pivots

  let iter_family_bindings ?(init = Term.Var_map.empty) fam target delta_facts
      f =
    let seed = init_slots_of_binding fam.fvars.tbl init in
    iter_family ~init:seed fam target delta_facts (fun slots ->
        f (binding_of fam.fvars ~init slots))
end

(* Enumerate every homomorphism from [atoms] into [target] extending
   [init]; [f] is called on each complete binding.  Raise [Exit] from [f]
   to stop the enumeration.  [ordered:false] disables the
   connectivity-greedy atom ordering (exposed for the ablation bench);
   [compiled:false] selects the interpreted reference evaluator.

   [~delta] switches to the semi-naive mode: only the homomorphisms whose
   image uses at least one fact of [delta] are produced (each exactly
   once).  For each atom in turn, that atom is pinned to a delta fact and
   the remaining atoms are matched against the full structure — the
   standard delta-rule decomposition of semi-naive Datalog evaluation. *)
let iter_all ?(compiled = true) ?(ordered = true) ?(init = Term.Var_map.empty)
    ?delta target atoms f =
  if not compiled then iter_all_interp ~ordered ~init ?delta target atoms f
  else
    match delta with
    | None -> Plan.iter ~init (Plan.compile ~ordered atoms) target f
    | Some delta_facts ->
        Plan.iter_family_bindings ~init
          (Plan.compile_family ~ordered atoms)
          target delta_facts f

(* Early exit via a [ref] and a locally-caught [Exit]: the exception never
   crosses the module boundary, so a caller callback's own exceptions
   (including [Exit], per the [iter_all] contract) can't be misread as a
   match. *)
let find ?compiled ?ordered ?(init = Term.Var_map.empty) target atoms =
  let result = ref None in
  (try
     iter_all ?compiled ?ordered ~init target atoms (fun b ->
         result := Some b;
         raise Exit)
   with Exit -> ());
  !result

let exists ?compiled ?ordered ?init target atoms =
  Option.is_some (find ?compiled ?ordered ?init target atoms)

(* Count homomorphisms (used by tests and benches; beware of blowup). *)
let count ?compiled ?ordered ?init target atoms =
  let n = ref 0 in
  iter_all ?compiled ?ordered ?init target atoms (fun _ -> incr n);
  !n

(* --- Structure-to-structure homomorphisms --------------------------- *)

(* View a structure as a conjunction of atoms: element [e] becomes variable
   ["e<e>"] unless it interprets a constant, in which case it stays that
   constant (homomorphisms fix constants, Section II.A). *)
let var_of_elem e = Printf.sprintf "h%d" e

let atoms_of_structure src =
  let term_of e =
    match Structure.constant_name src e with
    | Some c -> Term.Cst c
    | None -> Term.Var (var_of_elem e)
  in
  Structure.fold_facts src
    (fun f acc ->
      Atom.make (Fact.sym f) (List.map term_of (Fact.elements f)) :: acc)
    []

(* Find a homomorphism [src -> target]; the result maps each element of
   [src] to an element of [target].  Isolated (fact-less) non-constant
   elements of [src] are sent to an arbitrary element of [target] when one
   exists. *)
let between ?(init = []) src target =
  let init_binding =
    List.fold_left
      (fun acc (e, e') -> Term.Var_map.add (var_of_elem e) e' acc)
      Term.Var_map.empty init
  in
  match find ~init:init_binding target (atoms_of_structure src) with
  | None -> None
  | Some binding ->
      let default =
        match Structure.elems target with e :: _ -> Some e | [] -> None
      in
      let table = Hashtbl.create 64 in
      Structure.iter_elems src (fun e ->
          let image =
            match Structure.constant_name src e with
            | Some c -> Structure.constant_opt target c
            | None -> (
                match Term.Var_map.find_opt (var_of_elem e) binding with
                | Some e' -> Some e'
                | None -> default)
          in
          match image with
          | Some e' -> Hashtbl.replace table e e'
          | None -> ());
      Some (fun e -> Hashtbl.find_opt table e)

let exists_between ?init src target = Option.is_some (between ?init src target)
