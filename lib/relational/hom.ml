(* Homomorphism search (Section II.A).

   The engine matches a conjunction of atoms (the pattern) against a
   structure, extending an optional initial binding.  This single engine
   powers conjunctive-query evaluation, TGD trigger detection, containment
   tests and core computation.

   The search is plain backtracking over a connectivity-greedy atom order;
   candidate facts for an atom with at least one bound argument are drawn
   from the structure's per-element index, otherwise from the per-symbol
   index.

   Two evaluators share that strategy.  The interpreted one below works on
   boxed [Fact.t] lists and persistent [Var_map] bindings and re-derives
   the atom order on every call; [Plan] compiles a body once into an
   array-of-slots program over the structure's dense-id arena and is the
   default ([iter_all ~compiled:true]).  Both enumerate the exact same
   bindings in the exact same order and tick the same counters — the
   interpreted path is the executable specification the property tests
   hold [Plan] against. *)

type binding = int Term.Var_map.t

let c_candidates = Obs.Metrics.counter "hom.candidates_scanned"
let c_unify = Obs.Metrics.counter "hom.unify_attempts"
let c_backtracks = Obs.Metrics.counter "hom.backtracks"

(* Order atoms so that each atom (after the first) shares a variable with an
   earlier one when possible; ties broken towards atoms with constants,
   which are the most selective.  [bound] seeds the variables considered
   already bound (the delta pivot's variables in semi-naive mode).

   The selected atom is removed *positionally*: a CQ body may repeat an
   atom (possibly the same physical value), and each occurrence must keep
   its slot in the match order. *)
let order_atoms ?(bound = Term.Var_set.empty) atoms =
  match atoms with
  | [] -> []
  | _ ->
      let score bound a =
        let vs = Atom.vars a in
        let shared = Term.Var_set.cardinal (Term.Var_set.inter vs bound) in
        let csts = List.length (Atom.constants a) in
        (shared * 4) + csts
      in
      (* index of the first best-scoring atom, mirroring the fold's
         strict-improvement tie-break *)
      let best_index bound = function
        | [] -> invalid_arg "Hom.order_atoms: empty"
        | a :: rest ->
            let rec go i best_i best_s = function
              | [] -> best_i
              | a :: rest ->
                  let s = score bound a in
                  if s > best_s then go (i + 1) i s rest
                  else go (i + 1) best_i best_s rest
            in
            go 1 0 (score bound a) rest
      in
      let rec remove_nth i = function
        | [] -> []
        | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest
      in
      let rec go bound remaining acc =
        match remaining with
        | [] -> List.rev acc
        | _ ->
            let i = best_index bound remaining in
            let a = List.nth remaining i in
            let remaining = remove_nth i remaining in
            go (Term.Var_set.union bound (Atom.vars a)) remaining (a :: acc)
      in
      go bound atoms []

(* Try to extend [binding] so that [atom] maps onto [fact]. *)
let unify atom fact binding =
  let args = Array.of_list (Atom.args atom) in
  let fargs = Fact.args fact in
  let n = Array.length args in
  if n <> Array.length fargs then None
  else
    let rec go i binding =
      if i >= n then Some binding
      else
        match args.(i) with
        | Term.Cst _ ->
            (* constants were resolved before candidate enumeration *)
            go (i + 1) binding
        | Term.Var x -> (
            match Term.Var_map.find_opt x binding with
            | Some e -> if e = fargs.(i) then go (i + 1) binding else None
            | None -> go (i + 1) (Term.Var_map.add x fargs.(i) binding))
    in
    go 0 binding

(* Resolve the constant arguments of [atom] against [target]; [None] if the
   target lacks one of the constants. *)
let resolved_constants target atom =
  let rec go i acc = function
    | [] -> Some (List.rev acc)
    | Term.Cst c :: rest -> (
        match Structure.constant_opt target c with
        | None -> None
        | Some e -> go (i + 1) ((i, e) :: acc) rest)
    | Term.Var _ :: rest -> go (i + 1) acc rest
  in
  go 0 [] (Atom.args atom)

let candidates target atom binding =
  match resolved_constants target atom with
  | None -> []
  | Some pinned -> (
      (* Pick one pinned position — a constant or a bound variable — and use
         the element index; fall back to the symbol index. *)
      let bound_positions =
        List.mapi
          (fun i t ->
            match t with
            | Term.Var x -> (
                match Term.Var_map.find_opt x binding with
                | Some e -> Some (i, e)
                | None -> None)
            | Term.Cst _ -> None)
          (Atom.args atom)
        |> List.filter_map Fun.id
      in
      let pins = pinned @ bound_positions in
      let sym = Atom.sym atom in
      let count (i, e) = Structure.pin_count target sym i e in
      match pins with
      | [] -> (
          match Structure.facts_with_sym target sym with
          | [] -> []
          | pool ->
              if !Obs.metrics_on then
                Obs.Metrics.add c_candidates (List.length pool);
              pool)
      | [ (i, e) ] ->
          (* A single pin needs no residual filter: its bucket is exact. *)
          let n = count (i, e) in
          if n = 0 then []
          else begin
            if !Obs.metrics_on then Obs.Metrics.add c_candidates n;
            Structure.facts_with_pin target sym i e
          end
      | first :: rest ->
          (* Use the most selective pin — the smallest (sym, pos, elem)
             bucket — then filter by the remaining pins. *)
          let best, best_n =
            List.fold_left
              (fun (bp, bn) p ->
                let n = count p in
                if n < bn then (p, n) else (bp, bn))
              (first, count first) rest
          in
          if best_n = 0 then []
          else
            let bi, be = best in
            let pool = Structure.facts_with_pin target sym bi be in
            if !Obs.metrics_on then Obs.Metrics.add c_candidates best_n;
            List.filter
              (fun f -> List.for_all (fun (i, e) -> Fact.arg f i = e) pins)
              pool)

(* The interpreted evaluator: the executable specification.  [Plan] below
   must stay bit-identical to this, bindings, order and counters included. *)
let iter_all_interp ~ordered ~init ?delta target atoms f =
  let rec go sink atoms binding =
    match atoms with
    | [] -> sink binding
    | atom :: rest ->
        let cands = candidates target atom binding in
        List.iter
          (fun fact ->
            match unify atom fact binding with
            | Some binding' ->
                if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                go sink rest binding'
            | None ->
                if !Obs.metrics_on then begin
                  Obs.Metrics.incr c_unify;
                  Obs.Metrics.incr c_backtracks
                end)
          cands
  in
  match delta with
  | None -> go f (if ordered then order_atoms atoms else atoms) init
  | Some delta_facts ->
      (* Index the delta by symbol once. *)
      let by_sym = Symbol.Tbl.create 16 in
      List.iter
        (fun fact ->
          let s = Fact.sym fact in
          match Symbol.Tbl.find_opt by_sym s with
          | Some r -> r := fact :: !r
          | None -> Symbol.Tbl.replace by_sym s (ref [ fact ]))
        delta_facts;
      (* The same homomorphism can be reached through several pivots;
         deduplicate on the full binding. *)
      let seen = Hashtbl.create 64 in
      let emit binding =
        let key = Term.Var_map.bindings binding in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          f binding
        end
      in
      List.iteri
        (fun j pivot ->
          match Symbol.Tbl.find_opt by_sym (Atom.sym pivot) with
          | None -> ()
          | Some dfacts -> (
              match resolved_constants target pivot with
              | None -> ()
              | Some pinned ->
                  let rest = List.filteri (fun k _ -> k <> j) atoms in
                  let rest =
                    if ordered then order_atoms ~bound:(Atom.vars pivot) rest
                    else rest
                  in
                  List.iter
                    (fun fact ->
                      if
                        List.for_all
                          (fun (i, e) -> Fact.arg fact i = e)
                          pinned
                      then
                        match unify pivot fact init with
                        | Some binding ->
                            if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                            go emit rest binding
                        | None ->
                            if !Obs.metrics_on then begin
                              Obs.Metrics.incr c_unify;
                              Obs.Metrics.incr c_backtracks
                            end)
                    (List.rev !dfacts)))
        atoms

(* --- Compiled join plans -------------------------------------------- *)

module Plan = struct
  let c_compilations = Obs.Metrics.counter "plan.compilations"
  let c_orderings = Obs.Metrics.counter "plan.cost_orderings"

  (* A slot table: variable names interned to dense slots.  One table can
     be shared by the plans of a delta family, so a full match is the same
     [int array] no matter which pivot produced it — that array is the
     semi-naive deduplication key and the parallel-merge sort key. *)
  type vars = {
    tbl : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable n : int;
  }

  let vars_create () =
    { tbl = Hashtbl.create 16; names = Array.make 8 ""; n = 0 }

  let slot_of vars x =
    match Hashtbl.find_opt vars.tbl x with
    | Some i -> i
    | None ->
        let i = vars.n in
        if i >= Array.length vars.names then begin
          let a = Array.make (2 * Array.length vars.names) "" in
          Array.blit vars.names 0 a 0 vars.n;
          vars.names <- a
        end;
        vars.names.(i) <- x;
        Hashtbl.replace vars.tbl x i;
        vars.n <- i + 1;
        i

  (* One compiled atom: per position, either a variable slot or a constant
     name (resolved to an element once per evaluation). *)
  type patom = {
    psym : Symbol.t;
    arity : int;
    slot_of_pos : int array; (* position -> slot, or -1 at constants *)
    cst_of_pos : string array; (* position -> constant name, "" at vars *)
  }

  (* Atom-ordering strategy.  [Fixed] is the reference: the
     connectivity-greedy order is frozen at compile time and the evaluator
     is bit-identical to the interpreted path (bindings, order, counters).
     [Cost] keeps the authored atom order at compile time and re-orders at
     every evaluation entry from live cardinalities (pin buckets, symbol
     buckets).  [Auto] is [Cost] plus a generic-join (worst-case-optimal)
     evaluator selected when the body is cyclic.  Cost-based orderings
     preserve the *set* of emitted bindings but not the enumeration order
     or the effort counters — callers comparing runs across modes must
     compare fact sets/journals/firings, never [hom.*] counters. *)
  type mode = Fixed | Cost | Auto

  type t = {
    vars : vars;
    atoms : patom array; (* evaluation order under [Fixed] *)
    mode : mode;
    cyclic : bool;
    ident : int array; (* the identity permutation, len = #atoms *)
    occ : (int * int) array array; (* slot -> (atom, position) occurrences *)
  }

  type family = { fvars : vars; pivots : (patom * t) array }

  (* A body is (conservatively) cyclic when some atom closes a loop in
     the variable-connectivity graph: union-find over slots, atom by
     atom; an atom whose distinct slots are already connected before it
     is merged in closes a cycle (triangles, grids, the rainworm chains'
     back-edges).  Acyclic (alpha-acyclic-or-simpler) bodies stay on the
     backtracking evaluator, which is optimal for them. *)
  let detect_cyclic (atoms : patom array) nslots =
    let parent = Array.init (max nslots 1) (fun i -> i) in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let cyclic = ref false in
    Array.iter
      (fun pa ->
        let ss =
          Array.to_list pa.slot_of_pos
          |> List.filter (fun s -> s >= 0)
          |> List.sort_uniq compare
        in
        match ss with
        | [] | [ _ ] -> ()
        | s0 :: rest ->
            List.iter
              (fun s ->
                let r0 = find s0 and r = find s in
                if r0 = r then cyclic := true else parent.(r) <- r0)
              rest)
      atoms;
    !cyclic

  (* slot -> ascending list of (atom index, position) occurrences; the
     generic join walks these to pick its next variable and to check
     cross-atom support for a candidate value. *)
  let occurrences (atoms : patom array) nslots =
    let occ = Array.make (max nslots 1) [] in
    Array.iteri
      (fun a pa ->
        for p = pa.arity - 1 downto 0 do
          let s = pa.slot_of_pos.(p) in
          if s >= 0 then occ.(s) <- (a, p) :: occ.(s)
        done)
      atoms;
    Array.map Array.of_list occ

  let compile_atom vars atom =
    let args = Array.of_list (Atom.args atom) in
    let n = Array.length args in
    let slots = Array.make n (-1) in
    let csts = Array.make n "" in
    Array.iteri
      (fun i t ->
        match t with
        | Term.Var x -> slots.(i) <- slot_of vars x
        | Term.Cst c -> csts.(i) <- c)
      args;
    { psym = Atom.sym atom; arity = n; slot_of_pos = slots; cst_of_pos = csts }

  (* Under [Fixed] the connectivity-greedy order is applied here, once;
     under [Cost]/[Auto] the authored order is kept and the evaluator
     re-orders at entry, when cardinalities are known. *)
  let compile_with vars ?(ordered = true) ?(bound = Term.Var_set.empty)
      ?(mode = Fixed) atoms =
    let atoms =
      if mode = Fixed && ordered then order_atoms ~bound atoms else atoms
    in
    if !Obs.metrics_on then Obs.Metrics.incr c_compilations;
    let patoms = Array.of_list (List.map (compile_atom vars) atoms) in
    {
      vars;
      atoms = patoms;
      mode;
      cyclic = detect_cyclic patoms vars.n;
      ident = Array.init (Array.length patoms) Fun.id;
      occ = occurrences patoms vars.n;
    }

  let compile ?ordered ?bound ?mode atoms =
    compile_with (vars_create ()) ?ordered ?bound ?mode atoms

  (* One compiled plan per pivot position, all sharing one slot table.
     Each rest-plan is ordered with the pivot's variables seeded as bound,
     exactly as the interpreted delta decomposition does (under [Fixed];
     cost modes defer ordering to evaluation). *)
  let compile_family ?(ordered = true) ?(mode = Fixed) atoms =
    let vars = vars_create () in
    let pivots =
      List.mapi
        (fun j pivot ->
          let p = compile_atom vars pivot in
          let rest = List.filteri (fun k _ -> k <> j) atoms in
          let rest =
            if mode = Fixed && ordered then
              order_atoms ~bound:(Atom.vars pivot) rest
            else rest
          in
          (p, compile_with vars ~ordered:false ~mode rest))
        atoms
    in
    { fvars = vars; pivots = Array.of_list pivots }

  let nslots plan = plan.vars.n
  let slot plan x = Hashtbl.find_opt plan.vars.tbl x
  let var_name plan s = plan.vars.names.(s)
  let family_nslots fam = fam.fvars.n
  let family_slot fam x = Hashtbl.find_opt fam.fvars.tbl x

  (* Per-atom evaluation scratch, preallocated once per entry point: the
     chosen pins and the slots bound by the current candidate (for
     backtracking, since slots are mutated in place). *)
  type frame = {
    pin_pos : int array;
    pin_elem : int array;
    pin_pool : Intvec.t array;
    undo : int array;
  }

  (* Resolve the plan's symbols and constants against [target] once per
     evaluation entry. *)
  let resolve plan target =
    let n = Array.length plan.atoms in
    let sids = Array.make n (-1) in
    let cst_elems = Array.make n [||] in
    let dead = Array.make n false in
    for i = 0 to n - 1 do
      let pa = plan.atoms.(i) in
      sids.(i) <- Structure.sym_id target pa.psym;
      let ce = Array.make pa.arity (-1) in
      Array.iteri
        (fun p c ->
          if c <> "" then
            match Structure.constant_opt target c with
            | Some e -> ce.(p) <- e
            | None -> dead.(i) <- true)
        pa.cst_of_pos;
      cst_elems.(i) <- ce
    done;
    (sids, cst_elems, dead)

  (* Greedy cost-based atom ordering computed at evaluation entry, from
     live cardinalities.  The estimate for a not-yet-placed atom is the
     smallest pin bucket over its constants and already-*valued* slots
     (exact — bucket lengths are O(1) field reads), else its symbol
     bucket; each pin on a slot that an earlier *placed* atom will have
     bound (value unknown here) divides the estimate by 4, a fixed
     selectivity guess.  Smallest estimate first, ties to the lowest
     original index — the ordering is a pure function of the bucket
     cardinalities, hence deterministic for a fixed structure. *)
  let cost_order plan target sids cst_elems dead ?(prebound = [||]) slots =
    if !Obs.metrics_on then Obs.Metrics.incr c_orderings;
    let n = Array.length plan.atoms in
    let order = Array.make n 0 in
    let used = Array.make n false in
    let simb = Array.make (max plan.vars.n 1) false in
    (* [prebound] marks slots that will hold values at evaluation entry
       whose values are unknown at ordering time (a family pivot's slots,
       hoisted once per stage): they earn the simulated-bound discount
       instead of an exact pin count. *)
    Array.iteri (fun s b -> if b then simb.(s) <- true) prebound;
    for k = 0 to n - 1 do
      let best = ref (-1) and best_cost = ref max_int in
      for i = n - 1 downto 0 do
        if not used.(i) then begin
          let cost =
            if dead.(i) || sids.(i) < 0 then 0
            else begin
              let pa = plan.atoms.(i) in
              let sid = sids.(i) in
              let ce = cst_elems.(i) in
              let c = ref (Intvec.length (Structure.ids_with_sym target sid)) in
              let sim = ref 0 in
              for p = 0 to pa.arity - 1 do
                if ce.(p) >= 0 then
                  c := min !c (Structure.pin_count_id target sid p ce.(p))
                else begin
                  let s = pa.slot_of_pos.(p) in
                  if s >= 0 then
                    if slots.(s) >= 0 then
                      c := min !c (Structure.pin_count_id target sid p slots.(s))
                    else if simb.(s) then incr sim
                end
              done;
              !c lsr (2 * min !sim 15)
            end
          in
          (* downward scan + [<=]: the first strict minimum in original
             index order wins *)
          if cost <= !best_cost then begin
            best := i;
            best_cost := cost
          end
        end
      done;
      order.(k) <- !best;
      used.(!best) <- true;
      Array.iter
        (fun s -> if s >= 0 then simb.(s) <- true)
        plan.atoms.(!best).slot_of_pos
    done;
    order

  (* The core evaluator.  [slots] is the shared mutable binding array
     (slot -> element, -1 unbound); the frames of a family evaluation must
     not alias, so every entry point builds its own.  [order] permutes the
     atoms (identity under [Fixed]); the atom whose *original* index is
     [skip] is left out entirely (the delta-pivot of {!exists_delta}).

     Counter and enumeration-order parity with the interpreted path (in
     [Fixed] mode): pools are scanned newest-first (the cons order of the
     former list buckets); [c_candidates] ticks per bucket entry before
     the residual pin filter, [c_unify] once per candidate surviving it,
     and [c_backtracks] when the bind/check pass fails. *)
  let no_pool = Intvec.create ()

  (* Per-atom scratch frames for one evaluation; reusable across
     consecutive calls on the same plan within one caller (a family
     evaluation hoists them out of its per-candidate loop). *)
  let frames_of plan =
    Array.init (Array.length plan.atoms) (fun i ->
        let a = plan.atoms.(i).arity in
        {
          pin_pos = Array.make a 0;
          pin_elem = Array.make a 0;
          pin_pool = Array.make a no_pool;
          undo = Array.make a 0;
        })

  let eval_core_in frames plan target sids cst_elems dead ~order ~skip slots
      emit =
    let n = Array.length plan.atoms in
    let rec go k =
      (* cooperative cancellation: a read-only scan may abort here (one
         disarmed ref read, the [Obs.metrics_on] overhead discipline) *)
      Resilience.Governor.Cancel.poll ();
      if k >= n then emit slots
      else begin
        let i = order.(k) in
        if i = skip then go (k + 1)
        else if dead.(i) then () (* an unresolved constant: no candidates *)
        else begin
          let pa = plan.atoms.(i) in
          let fr = frames.(i) in
          let ce = cst_elems.(i) in
        (* Collect the pins — constants first, then bound variables, each
           in position order: the interpreted [pinned @ bound_positions]. *)
        let np = ref 0 in
        for p = 0 to pa.arity - 1 do
          if ce.(p) >= 0 then begin
            fr.pin_pos.(!np) <- p;
            fr.pin_elem.(!np) <- ce.(p);
            incr np
          end
        done;
        for p = 0 to pa.arity - 1 do
          let s = pa.slot_of_pos.(p) in
          if s >= 0 && slots.(s) >= 0 then begin
            fr.pin_pos.(!np) <- p;
            fr.pin_elem.(!np) <- slots.(s);
            incr np
          end
        done;
        let n_pins = !np in
        let sid = sids.(i) in
        (* [pin_skip] is the pin already enforced by the bucket choice. *)
        let try_candidate pin_skip id =
          let ok = ref true in
          let p = ref 0 in
          while !ok && !p < n_pins do
            if
              !p <> pin_skip
              && Structure.id_arg target id fr.pin_pos.(!p) <> fr.pin_elem.(!p)
            then ok := false;
            incr p
          done;
          if !ok then begin
            if !Obs.metrics_on then Obs.Metrics.incr c_unify;
            let nb = ref 0 in
            let fail = ref false in
            let q = ref 0 in
            while (not !fail) && !q < pa.arity do
              let s = pa.slot_of_pos.(!q) in
              if s >= 0 then begin
                let fa = Structure.id_arg target id !q in
                let v = slots.(s) in
                if v < 0 then begin
                  slots.(s) <- fa;
                  fr.undo.(!nb) <- s;
                  incr nb
                end
                else if v <> fa then fail := true
              end;
              incr q
            done;
            if !fail then begin
              if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
            end
            else go (k + 1);
            for b = 0 to !nb - 1 do
              slots.(fr.undo.(b)) <- -1
            done
          end
        in
        if n_pins = 0 then begin
          if sid >= 0 then begin
            let pool = Structure.ids_with_sym target sid in
            let len = Intvec.length pool in
            if len > 0 then begin
              if !Obs.metrics_on then Obs.Metrics.add c_candidates len;
              for k = len - 1 downto 0 do
                try_candidate (-1) (Intvec.unsafe_get pool k)
              done
            end
          end
        end
        else begin
          (* First strict minimum over the pins, like the interpreted
             fold.  Fetching the pools (their length is O(1)) instead of
             asking for counts saves the second hash lookup on the
             winner — half the pin-table traffic at the common single-pin
             joins. *)
          let best = ref 0 in
          let best_n = ref max_int in
          for p = 0 to n_pins - 1 do
            let pool =
              Structure.ids_with_pin target sid fr.pin_pos.(p) fr.pin_elem.(p)
            in
            fr.pin_pool.(p) <- pool;
            let c = Intvec.length pool in
            if c < !best_n then begin
              best := p;
              best_n := c
            end
          done;
          if !best_n > 0 then begin
            let pool = fr.pin_pool.(!best) in
            if !Obs.metrics_on then Obs.Metrics.add c_candidates !best_n;
            for j = !best_n - 1 downto 0 do
              try_candidate !best (Intvec.unsafe_get pool j)
            done
          end
        end
        end
      end
    in
    go 0

  let eval_core plan target sids cst_elems dead ~order ~skip slots emit =
    eval_core_in (frames_of plan) plan target sids cst_elems dead ~order ~skip
      slots emit

  (* The generic-join evaluator, selected for cyclic bodies under [Auto]:
     variable-at-a-time instead of atom-at-a-time.  At each node the
     unbound slot with the smallest supporting candidate pool is chosen;
     the distinct values the pool offers for it are enumerated, kept only
     when every other atom containing the slot has a nonempty pin bucket
     for the value, and the full assignment is verified against every
     atom at the leaves.  On cyclic bodies (triangles, grid cells) this
     meets the worst-case-optimal join bound that every fixed atom order
     misses by a polynomial factor.  The emitted *set* of bindings equals
     the backtracking evaluators'; the enumeration order and the effort
     counters legitimately differ (and are never compared across plan
     modes). *)
  let eval_gj plan target sids cst_elems dead slots emit =
    let n = Array.length plan.atoms in
    let alive = ref true in
    for i = 0 to n - 1 do
      if dead.(i) || sids.(i) < 0 then alive := false
    done;
    if !alive then begin
      (* the smallest candidate pool of atom [i] under the current
         bindings: pin buckets from constants and valued slots, else the
         symbol bucket *)
      let pool_of i =
        let pa = plan.atoms.(i) in
        let sid = sids.(i) in
        let ce = cst_elems.(i) in
        let best = ref (Structure.ids_with_sym target sid) in
        for p = 0 to pa.arity - 1 do
          let e =
            if ce.(p) >= 0 then ce.(p)
            else
              let s = pa.slot_of_pos.(p) in
              if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
          in
          if e >= 0 then begin
            let b = Structure.ids_with_pin target sid p e in
            if Intvec.length b < Intvec.length !best then best := b
          end
        done;
        !best
      in
      (* does fact [id] agree with every bound position of atom [i]? *)
      let matches i id =
        let pa = plan.atoms.(i) in
        let ce = cst_elems.(i) in
        let ok = ref true in
        for p = 0 to pa.arity - 1 do
          if !ok then begin
            let e =
              if ce.(p) >= 0 then ce.(p)
              else
                let s = pa.slot_of_pos.(p) in
                if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
            in
            if e >= 0 && Structure.id_arg target id p <> e then ok := false
          end
        done;
        !ok
      in
      let atom_satisfiable i =
        let pool = pool_of i in
        let len = Intvec.length pool in
        if !Obs.metrics_on then Obs.Metrics.add c_candidates len;
        let ok = ref false in
        let k = ref (len - 1) in
        while (not !ok) && !k >= 0 do
          if matches i (Intvec.unsafe_get pool !k) then ok := true;
          decr k
        done;
        !ok
      in
      let occ = plan.occ in
      let nslots = Array.length occ in
      let rec go () =
        Resilience.Governor.Cancel.poll ();
        (* choose the unbound slot with the smallest supporting pool *)
        let best_s = ref (-1) and best_a = ref (-1) and best_p = ref (-1) in
        let best_n = ref max_int in
        for s = 0 to nslots - 1 do
          if slots.(s) < 0 then
            Array.iter
              (fun (a, p) ->
                let len = Intvec.length (pool_of a) in
                if len < !best_n then begin
                  best_n := len;
                  best_s := s;
                  best_a := a;
                  best_p := p
                end)
              occ.(s)
        done;
        if !best_s < 0 then begin
          (* all slots of the body bound: verify every atom, then emit *)
          let ok = ref true in
          for i = 0 to n - 1 do
            if !ok && not (atom_satisfiable i) then ok := false
          done;
          if !ok then emit slots
        end
        else begin
          let s = !best_s and a = !best_a and p = !best_p in
          let pool = pool_of a in
          let len = Intvec.length pool in
          if !Obs.metrics_on then Obs.Metrics.add c_candidates len;
          let seen = Hashtbl.create 16 in
          for k = len - 1 downto 0 do
            let id = Intvec.unsafe_get pool k in
            if matches a id then begin
              let e = Structure.id_arg target id p in
              if not (Hashtbl.mem seen e) then begin
                Hashtbl.replace seen e ();
                if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                (* the value needs support in every other atom containing
                   the slot *)
                let supported = ref true in
                Array.iter
                  (fun (a', p') ->
                    if
                      !supported && a' <> a
                      && Structure.pin_count_id target sids.(a') p' e = 0
                    then supported := false)
                  occ.(s);
                if !supported then begin
                  slots.(s) <- e;
                  go ();
                  slots.(s) <- -1
                end
                else if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
              end
            end
          done
        end
      in
      go ()
    end

  (* Dispatch on the plan's mode.  [skip >= 0] (the delta-pivot exclusion
     of {!exists_delta}) always runs the backtracking core — it is an
     existence check with early exit, where worst-case-optimality does
     not pay for the generic join's bookkeeping. *)
  let eval ?(skip = -1) plan target slots emit =
    let sids, cst_elems, dead = resolve plan target in
    if plan.mode = Auto && plan.cyclic && skip < 0 then
      eval_gj plan target sids cst_elems dead slots emit
    else begin
      let order =
        match plan.mode with
        | Fixed -> plan.ident
        | Cost | Auto -> cost_order plan target sids cst_elems dead slots
      in
      eval_core plan target sids cst_elems dead ~order ~skip slots emit
    end

  let seed_slots nslots init =
    let slots = Array.make (max nslots 1) (-1) in
    List.iter (fun (s, e) -> slots.(s) <- e) init;
    slots

  let iter_slots ?(init = []) plan target emit =
    eval plan target (seed_slots (nslots plan) init) emit

  let binding_of vars ~init slots =
    let b = ref init in
    for s = 0 to vars.n - 1 do
      let v = slots.(s) in
      if v >= 0 then b := Term.Var_map.add vars.names.(s) v !b
    done;
    !b

  let binding_of_slots ?(init = Term.Var_map.empty) plan slots =
    binding_of plan.vars ~init slots

  let family_binding_of_slots ?(init = Term.Var_map.empty) fam slots =
    binding_of fam.fvars ~init slots

  let init_slots_of_binding tbl init =
    Term.Var_map.fold
      (fun x e acc ->
        match Hashtbl.find_opt tbl x with
        | Some s -> (s, e) :: acc
        | None -> acc)
      init []

  let iter ?(init = Term.Var_map.empty) plan target f =
    let seed = init_slots_of_binding plan.vars.tbl init in
    iter_slots ~init:seed plan target (fun slots ->
        f (binding_of plan.vars ~init slots))

  (* Early exit via a locally-caught [Exit], as in [find] below. *)
  let find_slots ?init plan target =
    let result = ref None in
    (try
       iter_slots ?init plan target (fun slots ->
           result := Some (Array.copy slots);
           raise Exit)
     with Exit -> ());
    !result

  let exists_slots ?init plan target =
    Option.is_some (find_slots ?init plan target)

  let exists ?(init = Term.Var_map.empty) plan target =
    exists_slots ~init:(init_slots_of_binding plan.vars.tbl init) plan target

  (* Is there a match of [plan] (extending the [init] slot seeds) whose
     image uses at least one fact with id >= [min_id]?  Exact, and much
     cheaper than a full [exists_slots] when the tail of new facts is
     small: each atom in turn plays the *delta pivot*, its candidates
     restricted to the new tail of its best constant/seed pin bucket
     (buckets are ascending by fact id, so the tail starts at a
     binary-searched lower bound); the remaining atoms run through the
     backtracking core against the full structure.

     The chase's apply-time re-check of condition (b) goes through this:
     a trigger that survived discovery was unwitnessed against the
     apply-start structure, and witnesses are monotone, so a witness
     exists now iff some witness uses a fact added during this apply
     pass. *)
  let exists_delta ~min_id ?(init = []) plan target =
    let n = Array.length plan.atoms in
    if n = 0 then false
    else begin
      let sids, cst_elems, dead = resolve plan target in
      let alive = ref true in
      for i = 0 to n - 1 do
        if dead.(i) || sids.(i) < 0 then alive := false
      done;
      !alive
      && begin
           let slots = seed_slots (nslots plan) init in
           let order =
             match plan.mode with
             | Fixed -> plan.ident
             | Cost | Auto -> cost_order plan target sids cst_elems dead slots
           in
           let found = ref false in
           (try
              for j = 0 to n - 1 do
                let pa = plan.atoms.(j) in
                let sid = sids.(j) in
                let ce = cst_elems.(j) in
                (* best bucket among the constant/seed pins, by length of
                   its new tail *)
                let best_pool = ref (Structure.ids_with_sym target sid) in
                let best_lb = ref (Intvec.lower_bound !best_pool min_id) in
                let best_n = ref (Intvec.length !best_pool - !best_lb) in
                for p = 0 to pa.arity - 1 do
                  let e =
                    if ce.(p) >= 0 then ce.(p)
                    else
                      let s = pa.slot_of_pos.(p) in
                      if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
                  in
                  if e >= 0 then begin
                    let b = Structure.ids_with_pin target sid p e in
                    let lb = Intvec.lower_bound b min_id in
                    let tail = Intvec.length b - lb in
                    if tail < !best_n then begin
                      best_pool := b;
                      best_lb := lb;
                      best_n := tail
                    end
                  end
                done;
                let pool = !best_pool in
                let len = Intvec.length pool in
                if !best_n > 0 && !Obs.metrics_on then
                  Obs.Metrics.add c_candidates !best_n;
                let undo = Array.make (max pa.arity 1) 0 in
                for k = !best_lb to len - 1 do
                  Resilience.Governor.Cancel.poll ();
                  let id = Intvec.unsafe_get pool k in
                  (* every constant and every seeded slot must agree *)
                  let ok = ref true in
                  for p = 0 to pa.arity - 1 do
                    if !ok then begin
                      let e =
                        if ce.(p) >= 0 then ce.(p)
                        else
                          let s = pa.slot_of_pos.(p) in
                          if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
                      in
                      if e >= 0 && Structure.id_arg target id p <> e then
                        ok := false
                    end
                  done;
                  if !ok then begin
                    if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                    (* bind the pivot's slots with undo *)
                    let nb = ref 0 in
                    let fail = ref false in
                    for q = 0 to pa.arity - 1 do
                      if not !fail then begin
                        let s = pa.slot_of_pos.(q) in
                        if s >= 0 then begin
                          let fa = Structure.id_arg target id q in
                          let v = slots.(s) in
                          if v < 0 then begin
                            slots.(s) <- fa;
                            undo.(!nb) <- s;
                            incr nb
                          end
                          else if v <> fa then fail := true
                        end
                      end
                    done;
                    if not !fail then
                      eval_core plan target sids cst_elems dead ~order ~skip:j
                        slots (fun _ ->
                          found := true;
                          raise Exit);
                    for b = 0 to !nb - 1 do
                      slots.(undo.(b)) <- -1
                    done
                  end
                done
              done
            with Exit -> ());
           !found
         end
    end

  (* The apply-time re-check, one resolve pass.  Valid ONLY under the
     caller's invariant that no match lies wholly inside the [< min_id]
     prefix — the chase's condition (b) re-check has it: the trigger
     survived discovery against exactly that structure, and witnesses
     are monotone.  Under the invariant a match exists iff a match using
     a fact >= [min_id] exists, so both sides of the dispatch below are
     exact and only wall-clock moves:

     - every atom's best-bucket new tail is empty: no match — the
       overwhelmingly common case, a few binary searches;
     - the summed tails are small ([<= cutoff]): the delta-pivot scan of
       {!exists_delta}, reusing the tails just measured;
     - otherwise: the plain pin-driven backtracking search, which beats
       tail scanning once half a stage's firings sit in every tail. *)
  let exists_since ~min_id ~cutoff ?(init = []) plan target =
    let n = Array.length plan.atoms in
    if n = 0 then false
    else begin
      let sids, cst_elems, dead = resolve plan target in
      let alive = ref true in
      for i = 0 to n - 1 do
        if dead.(i) || sids.(i) < 0 then alive := false
      done;
      !alive
      && begin
           let slots = seed_slots (nslots plan) init in
           let bpool = Array.make n no_pool in
           let blb = Array.make n 0 in
           let total = ref 0 in
           for j = 0 to n - 1 do
             let pa = plan.atoms.(j) in
             let sid = sids.(j) in
             let ce = cst_elems.(j) in
             let pool = Structure.ids_with_sym target sid in
             let lb = Intvec.lower_bound pool min_id in
             let best_pool = ref pool in
             let best_lb = ref lb in
             let best_n = ref (Intvec.length pool - lb) in
             for p = 0 to pa.arity - 1 do
               let e =
                 if ce.(p) >= 0 then ce.(p)
                 else
                   let s = pa.slot_of_pos.(p) in
                   if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
               in
               if e >= 0 then begin
                 let b = Structure.ids_with_pin target sid p e in
                 let blb' = Intvec.lower_bound b min_id in
                 let tail = Intvec.length b - blb' in
                 if tail < !best_n then begin
                   best_pool := b;
                   best_lb := blb';
                   best_n := tail
                 end
               end
             done;
             bpool.(j) <- !best_pool;
             blb.(j) <- !best_lb;
             total := !total + !best_n
           done;
           if !total = 0 then false
           else if !total > cutoff then begin
             (* full seeded search, exact under the caller's invariant *)
             let found = ref false in
             (try
                if plan.mode = Auto && plan.cyclic then
                  eval_gj plan target sids cst_elems dead slots (fun _ ->
                      found := true;
                      raise Exit)
                else begin
                  let order =
                    match plan.mode with
                    | Fixed -> plan.ident
                    | Cost | Auto ->
                        cost_order plan target sids cst_elems dead slots
                  in
                  eval_core plan target sids cst_elems dead ~order ~skip:(-1)
                    slots (fun _ ->
                      found := true;
                      raise Exit)
                end
              with Exit -> ());
             !found
           end
           else begin
             let order =
               match plan.mode with
               | Fixed -> plan.ident
               | Cost | Auto -> cost_order plan target sids cst_elems dead slots
             in
             let found = ref false in
             (try
                for j = 0 to n - 1 do
                  let pa = plan.atoms.(j) in
                  let ce = cst_elems.(j) in
                  let pool = bpool.(j) in
                  let len = Intvec.length pool in
                  if len > blb.(j) && !Obs.metrics_on then
                    Obs.Metrics.add c_candidates (len - blb.(j));
                  let undo = Array.make (max pa.arity 1) 0 in
                  for k = blb.(j) to len - 1 do
                    Resilience.Governor.Cancel.poll ();
                    let id = Intvec.unsafe_get pool k in
                    let ok = ref true in
                    for p = 0 to pa.arity - 1 do
                      if !ok then begin
                        let e =
                          if ce.(p) >= 0 then ce.(p)
                          else
                            let s = pa.slot_of_pos.(p) in
                            if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
                        in
                        if e >= 0 && Structure.id_arg target id p <> e then
                          ok := false
                      end
                    done;
                    if !ok then begin
                      if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                      let nb = ref 0 in
                      let fail = ref false in
                      for q = 0 to pa.arity - 1 do
                        if not !fail then begin
                          let s = pa.slot_of_pos.(q) in
                          if s >= 0 then begin
                            let fa = Structure.id_arg target id q in
                            let v = slots.(s) in
                            if v < 0 then begin
                              slots.(s) <- fa;
                              undo.(!nb) <- s;
                              incr nb
                            end
                            else if v <> fa then fail := true
                          end
                        end
                      done;
                      if not !fail then
                        eval_core plan target sids cst_elems dead ~order
                          ~skip:j slots (fun _ ->
                            found := true;
                            raise Exit);
                      for b = 0 to !nb - 1 do
                        slots.(undo.(b)) <- -1
                      done
                    end
                  done
                done
              with Exit -> ());
             !found
           end
         end
    end

  (* How much would {!exists_delta} scan?  The sum over atoms of the new
     tail of each atom's best constant/seed pin bucket — the pivot
     candidate count.  [0] means no match can use a fact >= [min_id]
     (some atom has an empty tail is NOT enough — every atom must be a
     possible pivot, so the sum is 0 only when every tail is empty), so
     [exists_delta] is trivially false.  A caller holding an invariant
     that no match over the old facts exists (the chase's apply-time
     re-check: the trigger survived discovery against exactly the
     [< min_id] structure) can use a large weight to switch to the plain
     seeded [exists_slots], which is exact under that invariant and
     pin-driven rather than tail-driven. *)
  let delta_weight ~min_id ?(init = []) plan target =
    let n = Array.length plan.atoms in
    if n = 0 then 0
    else begin
      let sids, cst_elems, dead = resolve plan target in
      let alive = ref true in
      for i = 0 to n - 1 do
        if dead.(i) || sids.(i) < 0 then alive := false
      done;
      if not !alive then 0
      else begin
        let slots = seed_slots (nslots plan) init in
        let total = ref 0 in
        for j = 0 to n - 1 do
          let pa = plan.atoms.(j) in
          let sid = sids.(j) in
          let ce = cst_elems.(j) in
          let pool = Structure.ids_with_sym target sid in
          let best = ref (Intvec.length pool - Intvec.lower_bound pool min_id) in
          for p = 0 to pa.arity - 1 do
            let e =
              if ce.(p) >= 0 then ce.(p)
              else
                let s = pa.slot_of_pos.(p) in
                if s >= 0 && slots.(s) >= 0 then slots.(s) else -1
            in
            if e >= 0 then begin
              let b = Structure.ids_with_pin target sid p e in
              let tail = Intvec.length b - Intvec.lower_bound b min_id in
              if tail < !best then best := tail
            end
          done;
          total := !total + !best
        done;
        !total
      end
    end

  (* A stage delta as a dense per-symbol index: interned symbol id ->
     ascending fact ids.  Built once per stage by the chase and shared by
     every dependency's family evaluation — no boxed [Fact.t list] delta
     and no per-family [Symbol.Tbl] rebuild on the parallel hot path. *)
  type delta_index = Intvec.t array

  let no_ids = Intvec.create ~capacity:1 ()

  let delta_index_of target ~lo ~hi : delta_index =
    let idx = Array.make (max (Structure.n_sym_ids target) 1) no_ids in
    for id = lo to hi - 1 do
      if Structure.live_id target id then begin
      let sid = Structure.id_sym target id in
      let v =
        if idx.(sid) == no_ids then begin
          let v = Intvec.create () in
          idx.(sid) <- v;
          v
        end
        else idx.(sid)
      in
      Intvec.push v id
      end
    done;
    idx

  (* Semi-naive family evaluation: for each pivot in turn, match it
     against the delta facts of its symbol (in delta order), then run the
     pivot's rest-plan over the full structure.  With [dedup] (default) a
     full match is emitted once, keyed on a copy of the slot array. *)
  let iter_family ?(init = []) ?(dedup = true) fam target delta_facts emit =
    let slots = seed_slots (family_nslots fam) init in
    let by_sym = Symbol.Tbl.create 16 in
    List.iter
      (fun fact ->
        let s = Fact.sym fact in
        match Symbol.Tbl.find_opt by_sym s with
        | Some r -> r := fact :: !r
        | None -> Symbol.Tbl.replace by_sym s (ref [ fact ]))
      delta_facts;
    let seen = Hashtbl.create (if dedup then 64 else 1) in
    let emit' slots =
      if not dedup then emit slots
      else begin
        let key = Array.copy slots in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          emit slots
        end
      end
    in
    Array.iter
      (fun (pivot, rest_plan) ->
        match Symbol.Tbl.find_opt by_sym pivot.psym with
        | None -> ()
        | Some dfacts ->
            let ce = Array.make pivot.arity (-1) in
            let dead = ref false in
            Array.iteri
              (fun p c ->
                if c <> "" then
                  match Structure.constant_opt target c with
                  | Some e -> ce.(p) <- e
                  | None -> dead := true)
              pivot.cst_of_pos;
            if not !dead then begin
              let undo = Array.make pivot.arity 0 in
              List.iter
                (fun fact ->
                  Resilience.Governor.Cancel.poll ();
                  let fargs = Fact.args fact in
                  (* constant filter, unmetered like the interpreted
                     pivot's [pinned] check *)
                  let ok = ref true in
                  for p = 0 to pivot.arity - 1 do
                    if ce.(p) >= 0 && fargs.(p) <> ce.(p) then ok := false
                  done;
                  if !ok then begin
                    if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                    let nb = ref 0 in
                    let fail = ref false in
                    let q = ref 0 in
                    while (not !fail) && !q < pivot.arity do
                      let s = pivot.slot_of_pos.(!q) in
                      if s >= 0 then begin
                        let fa = fargs.(!q) in
                        let v = slots.(s) in
                        if v < 0 then begin
                          slots.(s) <- fa;
                          undo.(!nb) <- s;
                          incr nb
                        end
                        else if v <> fa then fail := true
                      end;
                      incr q
                    done;
                    if !fail then begin
                      if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
                    end
                    else eval rest_plan target slots emit';
                    for b = 0 to !nb - 1 do
                      slots.(undo.(b)) <- -1
                    done
                  end)
                (List.rev !dfacts)
            end)
      fam.pivots

  let iter_family_bindings ?(init = Term.Var_map.empty) fam target delta_facts
      f =
    let seed = init_slots_of_binding fam.fvars.tbl init in
    iter_family ~init:seed fam target delta_facts (fun slots ->
        f (binding_of fam.fvars ~init slots))

  (* Semi-naive family evaluation over a dense {!delta_index}: the
     id-level counterpart of {!iter_family}, same pivot decomposition and
     same deduplication, but pivot candidates come straight off the index
     bucket (ascending id = delta order) with no boxed fact list in
     sight.  [lo]/[hi) further restrict the pivot ids to a sub-range —
     the work-stealing chunks of the parallel collector; the default is
     the whole index. *)
  let iter_family_ids ?(init = []) ?(dedup = true) ?(lo = 0) ?(hi = max_int)
      fam target (dix : delta_index) emit =
    let slots = seed_slots (family_nslots fam) init in
    let seen = Hashtbl.create (if dedup then 64 else 1) in
    let emit' slots =
      if not dedup then emit slots
      else begin
        let key = Array.copy slots in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          emit slots
        end
      end
    in
    Array.iter
      (fun (pivot, rest_plan) ->
        let sid = Structure.sym_id target pivot.psym in
        if sid >= 0 && sid < Array.length dix then begin
          let bucket = dix.(sid) in
          let len = Intvec.length bucket in
          if len > 0 then begin
            let ce = Array.make pivot.arity (-1) in
            let dead = ref false in
            Array.iteri
              (fun p c ->
                if c <> "" then
                  match Structure.constant_opt target c with
                  | Some e -> ce.(p) <- e
                  | None -> dead := true)
              pivot.cst_of_pos;
            if not !dead then begin
              (* Hoisted per-pivot evaluation state: the structure is
                 frozen during a discovery scan, so the rest-plan's
                 symbol/constant resolution, its cost ordering (pivot
                 slots prebound — their values change per candidate, so
                 they take the simulated-bound discount) and its scratch
                 frames are all computed once per stage instead of once
                 per pivot candidate. *)
              let rsids, rcst, rdead = resolve rest_plan target in
              let rframes = frames_of rest_plan in
              let use_gj = rest_plan.mode = Auto && rest_plan.cyclic in
              let rorder =
                match rest_plan.mode with
                | Fixed -> rest_plan.ident
                | Cost | Auto ->
                    let prebound =
                      Array.make (max rest_plan.vars.n 1) false
                    in
                    Array.iter
                      (fun s -> if s >= 0 then prebound.(s) <- true)
                      pivot.slot_of_pos;
                    cost_order rest_plan target rsids rcst rdead ~prebound
                      slots
              in
              let eval_rest () =
                if use_gj then
                  eval_gj rest_plan target rsids rcst rdead slots emit'
                else
                  eval_core_in rframes rest_plan target rsids rcst rdead
                    ~order:rorder ~skip:(-1) slots emit'
              in
              let undo = Array.make (max pivot.arity 1) 0 in
              let k = ref (if lo <= 0 then 0 else Intvec.lower_bound bucket lo) in
              let continue = ref true in
              while !continue && !k < len do
                let id = Intvec.unsafe_get bucket !k in
                if id >= hi then continue := false
                else begin
                  Resilience.Governor.Cancel.poll ();
                  (* constant filter (unmetered, like [iter_family]) *)
                  let ok = ref true in
                  for p = 0 to pivot.arity - 1 do
                    if ce.(p) >= 0 && Structure.id_arg target id p <> ce.(p)
                    then ok := false
                  done;
                  if !ok then begin
                    if !Obs.metrics_on then Obs.Metrics.incr c_unify;
                    let nb = ref 0 in
                    let fail = ref false in
                    let q = ref 0 in
                    while (not !fail) && !q < pivot.arity do
                      let s = pivot.slot_of_pos.(!q) in
                      if s >= 0 then begin
                        let fa = Structure.id_arg target id !q in
                        let v = slots.(s) in
                        if v < 0 then begin
                          slots.(s) <- fa;
                          undo.(!nb) <- s;
                          incr nb
                        end
                        else if v <> fa then fail := true
                      end;
                      incr q
                    done;
                    if !fail then begin
                      if !Obs.metrics_on then Obs.Metrics.incr c_backtracks
                    end
                    else eval_rest ();
                    for b = 0 to !nb - 1 do
                      slots.(undo.(b)) <- -1
                    done
                  end
                end;
                incr k
              done
            end
          end
        end)
      fam.pivots
end

(* Enumerate every homomorphism from [atoms] into [target] extending
   [init]; [f] is called on each complete binding.  Raise [Exit] from [f]
   to stop the enumeration.  [ordered:false] disables the
   connectivity-greedy atom ordering (exposed for the ablation bench);
   [compiled:false] selects the interpreted reference evaluator.

   [~delta] switches to the semi-naive mode: only the homomorphisms whose
   image uses at least one fact of [delta] are produced (each exactly
   once).  For each atom in turn, that atom is pinned to a delta fact and
   the remaining atoms are matched against the full structure — the
   standard delta-rule decomposition of semi-naive Datalog evaluation. *)
let iter_all ?(compiled = true) ?(ordered = true) ?(init = Term.Var_map.empty)
    ?delta target atoms f =
  if not compiled then iter_all_interp ~ordered ~init ?delta target atoms f
  else
    match delta with
    | None -> Plan.iter ~init (Plan.compile ~ordered atoms) target f
    | Some delta_facts ->
        Plan.iter_family_bindings ~init
          (Plan.compile_family ~ordered atoms)
          target delta_facts f

(* Early exit via a [ref] and a locally-caught [Exit]: the exception never
   crosses the module boundary, so a caller callback's own exceptions
   (including [Exit], per the [iter_all] contract) can't be misread as a
   match. *)
let find ?compiled ?ordered ?(init = Term.Var_map.empty) target atoms =
  let result = ref None in
  (try
     iter_all ?compiled ?ordered ~init target atoms (fun b ->
         result := Some b;
         raise Exit)
   with Exit -> ());
  !result

let exists ?compiled ?ordered ?init target atoms =
  Option.is_some (find ?compiled ?ordered ?init target atoms)

(* Count homomorphisms (used by tests and benches; beware of blowup). *)
let count ?compiled ?ordered ?init target atoms =
  let n = ref 0 in
  iter_all ?compiled ?ordered ?init target atoms (fun _ -> incr n);
  !n

(* --- Structure-to-structure homomorphisms --------------------------- *)

(* View a structure as a conjunction of atoms: element [e] becomes variable
   ["e<e>"] unless it interprets a constant, in which case it stays that
   constant (homomorphisms fix constants, Section II.A). *)
let var_of_elem e = Printf.sprintf "h%d" e

let atoms_of_structure src =
  let term_of e =
    match Structure.constant_name src e with
    | Some c -> Term.Cst c
    | None -> Term.Var (var_of_elem e)
  in
  Structure.fold_facts src
    (fun f acc ->
      Atom.make (Fact.sym f) (List.map term_of (Fact.elements f)) :: acc)
    []

(* Find a homomorphism [src -> target]; the result maps each element of
   [src] to an element of [target].  Isolated (fact-less) non-constant
   elements of [src] are sent to an arbitrary element of [target] when one
   exists. *)
let between ?(init = []) src target =
  let init_binding =
    List.fold_left
      (fun acc (e, e') -> Term.Var_map.add (var_of_elem e) e' acc)
      Term.Var_map.empty init
  in
  match find ~init:init_binding target (atoms_of_structure src) with
  | None -> None
  | Some binding ->
      let default =
        match Structure.elems target with e :: _ -> Some e | [] -> None
      in
      let table = Hashtbl.create 64 in
      Structure.iter_elems src (fun e ->
          let image =
            match Structure.constant_name src e with
            | Some c -> Structure.constant_opt target c
            | None -> (
                match Term.Var_map.find_opt (var_of_elem e) binding with
                | Some e' -> Some e'
                | None -> default)
          in
          match image with
          | Some e' -> Hashtbl.replace table e e'
          | None -> ());
      Some (fun e -> Hashtbl.find_opt table e)

let exists_between ?init src target = Option.is_some (between ?init src target)
