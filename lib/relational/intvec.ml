(* Growable vectors of unboxed ints: the backbone of the fact arena and
   of every index bucket on the homomorphism hot path.

   A bucket used to be a [Fact.t list ref] — one boxed cons cell and one
   pointer chase per entry.  An [Intvec.t] stores the same information as
   a contiguous [int array] slice: appends are amortized O(1), scans are
   cache-linear, and the length is a field read.

   Entries are appended in insertion order, so a bucket of fact ids is
   automatically sorted ascending — the property the parallel merge and
   the delta journal rely on. *)

type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 4) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Intvec.get";
  Array.unsafe_get t.data i

(* Unchecked read for the join inner loop; caller guarantees [i < len]. *)
let unsafe_get t i = Array.unsafe_get t.data i

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

(* Newest-first iteration: the order the list-based buckets used to
   present (they consed), preserved so enumeration orders — and therefore
   [Hom.find] results — are bit-identical across the representation
   change. *)
let iter_rev f t =
  for i = t.len - 1 downto 0 do
    f (Array.unsafe_get t.data i)
  done

(* First index whose entry is >= [x], assuming the entries are sorted
   ascending — which bucket vectors are, since fact ids are appended in
   allocation order.  Returns [length t] when every entry is below [x].
   This is how the delta-restricted scans (apply-time head re-checks,
   chunked parallel discovery) find the tail of new facts in O(log n). *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if Array.unsafe_get t.data mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Remove one occurrence of [x] from a sorted vector, preserving the
   ascending order of the survivors: binary search, then shift the tail
   left by one.  Returns [false] when [x] is absent.  This is the
   retraction path of the index buckets — removal keeps every invariant
   the hot paths rely on ([lower_bound] tails, newest-first enumeration),
   it only makes the retracted id invisible. *)
let remove_sorted t x =
  let i = lower_bound t x in
  if i < t.len && Array.unsafe_get t.data i = x then begin
    Array.blit t.data (i + 1) t.data i (t.len - i - 1);
    t.len <- t.len - 1;
    true
  end
  else false

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (get t i :: acc) in
  go (t.len - 1) []

(* Oldest entry first becomes head-last: the newest-first list shape of
   the former cons-built buckets. *)
let to_list_rev t =
  let rec go i acc = if i >= t.len then acc else go (i + 1) (get t i :: acc) in
  go 0 []
