(** A minimal fork-join pool over OCaml 5 domains.

    Used by the parallel trigger-discovery mode: workers enumerate body
    matches over disjoint delta shards (read-only on the structure), and
    the caller merges their results sequentially.  Results always come
    back in index order, so the observable shape is independent of
    scheduling. *)

(** [Domain.recommended_domain_count], at least 1. *)
val default_jobs : unit -> int

(** [run ~jobs n f] evaluates [f 0 … f (n-1)] on up to [jobs] domains
    (inline when [jobs <= 1] or [n <= 1]) and returns the results in
    index order.  [f] must not mutate state shared with other tasks.
    Ticks the [par.shards] counter with the worker count used.  If any
    task raises, every domain is joined first and one of the exceptions
    is re-raised. *)
val run : jobs:int -> int -> (int -> 'a) -> 'a array

(** As {!run}, but with work stealing: each worker owns a contiguous
    range of task indices behind an atomic cursor and claims tasks from
    the other ranges once its own is drained, so one skewed task no
    longer serializes the pool.  Every index runs exactly once; results
    come back in index order, so the observable shape is still
    scheduling-independent.  Ticks [par.shards] with the worker count
    and [par.steals] with the number of stolen tasks; [steals], when
    given, accumulates the same steal count for callers that surface it
    in their stats. *)
val run_stealing : ?steals:int ref -> jobs:int -> int -> (int -> 'a) -> 'a array
