(** Terms of conjunctive queries and TGDs: variables and constants.

    Constants are interpreted by structures as dedicated elements shared
    by name; homomorphisms fix them (Section II.A). *)

type t =
  | Var of string  (** a variable *)
  | Cst of string  (** a constant of the signature *)

val var : string -> t
val cst : string -> t

val is_var : t -> bool
val is_cst : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Sets and maps over plain variable names, used for free-variable
    bookkeeping throughout the query and TGD layers. *)
module Var_set : Set.S with type elt = string

module Var_map : Map.S with type key = string

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
