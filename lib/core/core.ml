(* Red Spider Meets a Rainworm — umbrella library.

   Re-exports every layer of the reproduction of Gogacz & Marcinkowski,
   "Red Spider Meets a Rainworm: Conjunctive Query Finite Determinacy Is
   Undecidable" (PODS 2016), plus a small high-level API mirroring the
   paper's headline statements.

   Layer map (bottom to top):

     Relational   finite structures, homomorphisms, green/red painting
     Cq           conjunctive queries, evaluation, containment, cores
     Tgd          TGDs, the chase, green-red TGDs T_Q (Section IV)
     Thue         semi-Thue rewriting (Section VIII.A's formalism)
     Rainworm     rainworm machines, Turing machines, the TM compiler
     Spider       Level 0: spiders, spider queries, the ♣ algebra
     Swarm        Level 1: swarms, L₁ rules, compile/decompile
     Greengraph   Level 2: green graphs, L₂ rules, Precompile, PG words
     Separating   Section VII: T∞, T□, grids, Theorem 14
     Reduction    Section VIII: ∆ → T_M, finite models, Theorem 5
     Determinacy  CQDP/CQfDP instances and solvers
     Ef           Ehrenfeucht–Fraïssé games and Theorem 2
     Oracle       differential-testing and invariant-audit harness
     Resilience   resource governor, checkpoint/resume, failpoints
     Serve        redspiderd: the preemptive job daemon + client
     Campaign     crash-tolerant sharded oracle campaigns + chaos gate
     Obs          monotonic clock, metrics registry, span tracing *)

module Obs = Obs
module Resilience = Resilience
module Relational = Relational
module Cq = Cq
module Tgd = Tgd
module Thue = Thue
module Rainworm = Rainworm
module Lgraph = Lgraph
module Spider = Spider
module Swarm = Swarm
module Greengraph = Greengraph
module Separating = Separating
module Reduction = Reduction
module Determinacy = Determinacy
module Ef = Ef
module Oracle = Oracle
module Serve = Serve
module Campaign = Campaign

(* --- the paper's headline statements, as runnable functions ----------- *)

(* Theorem 5 / Theorem 1: the reduction from rainworm halting to CQfDP.
   [reduce_machine machine] yields the CQfDP instance (Q, Q0) such that Q
   finitely determines Q0 iff the rainworm creeps forever. *)
let reduce_machine machine =
  let p = Reduction.Pipeline.of_machine machine in
  ( Determinacy.Instance.make
      ~views:p.Reduction.Pipeline.level0.Greengraph.Precompile.queries
      ~q0:p.Reduction.Pipeline.q0,
    p )

(* Theorem 14: the separating rule set T (finitely leads to the red
   spider, does not lead to it) as green-graph rules. *)
let separating_rules = Separating.Tbox.t_full

(* Bounded determinacy solvers (Section IV).  Both are necessarily
   incomplete: Theorem 1 says CQfDP is undecidable, and [GM15] says CQDP
   is too. *)
let unrestricted_determinacy = Determinacy.Solver.unrestricted
let finite_determinacy = Determinacy.Solver.finite
