(* Precompile (Definition 9): translate a set T ⊆ L₂ of green-graph rules
   into swarm rules of L₁.

   The three base rules bootstrap the full red spider from a 1-2 pattern
   (footnote 10); each green-graph rule number i ≥ 2 contributes two swarm
   rules whose lower indices 2i+1, 2i+2 tie the two halves of the
   simulated equivalence together (Remark 10). *)

let f = Spider.Query.f

let base_rules =
  [
    Swarm.Rule.amp (f ~upper:1 ~lower:1 ()) (f ~upper:2 ~lower:2 ());
    Swarm.Rule.amp (f ~upper:3 ~lower:1 ()) (f ~upper:4 ~lower:2 ());
    Swarm.Rule.amp (f ~upper:3 ()) (f ~upper:4 ~lower:3 ());
  ]

let rule_pair i (r : Rule.t) =
  let lo1 = (2 * i) + 1 and lo2 = (2 * i) + 2 in
  let mk conn u1 u2 =
    let q1 = f ?upper:u1 ~lower:lo1 () and q2 = f ?upper:u2 ~lower:lo2 () in
    match conn with
    | Rule.Amp -> Swarm.Rule.amp q1 q2
    | Rule.Slash -> Swarm.Rule.slash q1 q2
  in
  [ mk r.Rule.conn r.Rule.l1 r.Rule.l2; mk r.Rule.conn r.Rule.r1 r.Rule.r2 ]

let precompile (rules : Rule.t list) =
  base_rules @ List.concat (List.mapi (fun idx r -> rule_pair (idx + 2) r) rules)

(* The leg count s needed to express [rules] at Levels 1 and 0: all upper
   labels, the reserved 1–4, and the numbering range. *)
let required_s (rules : Rule.t list) =
  let labels =
    List.concat_map
      (fun (r : Rule.t) ->
        List.filter_map Fun.id [ r.Rule.l1; r.Rule.l2; r.Rule.r1; r.Rule.r2 ])
      rules
  in
  let k = List.length rules + 1 in
  List.fold_left max ((2 * k) + 2) (4 :: labels)

(* The operation "precompile" on structures (Definition 36): a green graph
   D that models T becomes a swarm model of Precompile(T) by adding the
   red witnesses one chase stage demands — and nothing else (Lemma 32(ii),
   for minimal models without a 1-2 pattern). *)
let precompile_graph rules d =
  let sw = Graph.to_swarm d in
  let _ = Swarm.Rule.chase ~max_stages:1 (precompile rules) sw in
  sw

(* The full pipeline of Lemma 12: a set of L₂ rules down to conjunctive
   queries over the spider signature Σ (and their green-red TGDs). *)
type level0 = {
  ctx : Spider.Ctx.t;
  swarm_rules : Swarm.Rule.t list;
  binaries : Spider.Query.binary list;
  queries : (string * Cq.Query.t) list;
  tgds : Tgd.Dep.t list;
}

let to_level0 ?s (rules : Rule.t list) =
  let s = match s with Some s -> s | None -> required_s rules in
  let ctx = Spider.Ctx.create s in
  let swarm_rules = precompile rules in
  let binaries = Swarm.Rule.compile_set swarm_rules in
  let queries = Spider.Query.queries_of_binaries ctx binaries in
  let tgds = Spider.Query.tgds_of_binaries ctx binaries in
  { ctx; swarm_rules; binaries; queries; tgds }
