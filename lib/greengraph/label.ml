(* Labels of green-graph edges: S̄ = S ∪ {∅} (Section VI).  A label [Some
   i] stands for the spider I^{i}; [None] for the full green spider I.

   The labels 1 and 2 form the 1-2 pattern (they may appear in rules — the
   grid rules of Section VII produce them); 3 and 4 are reserved for the
   red-spider bootstrap of Precompile and must never occur in a rule set,
   which [check_user] enforces. *)

type t = int option

let empty : t = None
let l i : t = Some i

let reserved = [ 3; 4 ]

let is_reserved = function Some i -> List.mem i reserved | None -> false

let check_user = function
  | Some i when List.mem i reserved ->
      invalid_arg (Printf.sprintf "green-graph label %d is reserved" i)
  | _ -> ()

let compare : t -> t -> int = Stdlib.compare
let equal (a : t) (b : t) = a = b

(* The ideal spider a label denotes (the bijection A2 ≃ S̄). *)
let to_ideal (t : t) = Spider.Ideal.make ?upper:t Relational.Symbol.Green

let of_ideal s =
  if
    Spider.Ideal.is_green s && Spider.Ideal.lower s = None
  then Some (Spider.Ideal.upper s : t)
  else None

let pp ppf = function
  | None -> Fmt.string ppf "∅"
  | Some i -> Fmt.int ppf i
