(* Parity Glasses and the word language of a green graph
   (Definitions 15 and 16).

   PG(M) removes the ∅-labelled edges and reverses the edges with odd
   labels; words(M) collects the words of paths(PG(M), a, a) and
   paths(PG(M), a, b), where a word belongs to paths(·, s, t) iff the
   graph, read as an NFA with initial state s and accepting state t,
   accepts it but accepts none of its nonempty proper prefixes. *)

type arrow = { lab : int; src : int; dst : int }

(* The PG view: reversal of odd edges, ∅ edges dropped. *)
let arrows g =
  List.filter_map
    (fun (e : Graph.edge) ->
      match e.Graph.label with
      | None -> None
      | Some i ->
          if i mod 2 = 1 then Some { lab = i; src = e.Graph.dst; dst = e.Graph.src }
          else Some { lab = i; src = e.Graph.src; dst = e.Graph.dst })
    (Graph.edges g)

(* NFA subset step over the PG view. *)
let step_states arrows states lab =
  List.filter_map
    (fun ar -> if ar.lab = lab && List.mem ar.src states then Some ar.dst else None)
    arrows
  |> List.sort_uniq compare

(* Does [word] belong to paths(PG(g), s, t)? *)
let in_paths g ~s ~t word =
  let ars = arrows g in
  let rec go states = function
    | [] -> states = [] |> not && List.mem t states
    | lab :: rest ->
        (* a nonempty proper prefix must not be accepted *)
        let states' = step_states ars states lab in
        if states' = [] then false
        else if rest <> [] && List.mem t states' then false
        else go states' rest
  in
  match word with [] -> false | _ -> go [ s ] word

(* Membership in words(g) (Definition 16) for a graph containing D_I. *)
let in_words g ~a ~b word = in_paths g ~s:a ~t:a word || in_paths g ~s:a ~t:b word

(* Bounded enumeration of words(g): depth-first over concrete PG paths
   from [a], filtered through [in_words] for the prefix condition. *)
let words_upto g ~a ~b ~max_len =
  let ars = arrows g in
  let out = Hashtbl.create 64 in
  let rec dfs v word len =
    if len > 0 && (v = a || v = b) then begin
      let w = List.rev word in
      if (not (Hashtbl.mem out w)) && in_words g ~a ~b w then
        Hashtbl.replace out w ()
    end;
    if len < max_len then
      List.iter
        (fun ar -> if ar.src = v then dfs ar.dst (ar.lab :: word) (len + 1))
        ars
  in
  dfs a [] 0;
  Hashtbl.fold (fun w () acc -> w :: acc) out []

(* αβ-paths (Section VII): words of the form α(β1β0)^k, given the integer
   codes of α, β0 and β1. *)
let is_alpha_beta_word ~alpha ~beta0 ~beta1 word =
  match word with
  | a :: rest when a = alpha ->
      let rec go expect_beta1 = function
        | [] -> true
        | x :: rest ->
            x = (if expect_beta1 then beta1 else beta0)
            && go (not expect_beta1) rest
      in
      go true rest
  | _ -> false

let pp_word ppf w = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ".") Fmt.int) w
