(* Green graphs as relational structures, and L₂ rules as generic TGDs.

   Like Swarm.Bridge one level up: lets the generic chase/model-check
   machinery run on green graphs, for cross-validation of the dedicated
   engine. *)

open Relational

let symbol_of (lab : Label.t) =
  match lab with
  | None -> Symbol.make "H_o" 2
  | Some i -> Symbol.make (Printf.sprintf "H_%d" i) 2

let label_of_symbol sym : Label.t option =
  let name = Symbol.name sym in
  if name = "H_o" then Some None
  else if String.length name > 2 && String.sub name 0 2 = "H_" then
    int_of_string_opt (String.sub name 2 (String.length name - 2))
    |> Option.map (fun i -> Some i)
  else None

let to_structure g =
  let st = Structure.create () in
  List.iter
    (fun v ->
      Structure.reserve st v;
      Structure.set_name st v (Graph.name g v))
    (List.sort compare (Graph.vertices g));
  Graph.iter_edges g (fun e ->
      Structure.add2 st (symbol_of e.Graph.label) e.Graph.src e.Graph.dst);
  st

let of_structure st =
  let g = Graph.create () in
  List.iter
    (fun v ->
      Graph.register g v;
      Graph.set_name g v (Structure.name st v))
    (Structure.elems st);
  Structure.iter_facts st (fun f ->
      match label_of_symbol (Fact.sym f) with
      | Some lab -> ignore (Graph.add_edge g lab (Fact.arg f 0) (Fact.arg f 1))
      | None -> ());
  g

(* An L₂ equivalence as two generic TGDs. *)
let tgds_of_rule (r : Rule.t) =
  let v = Term.var in
  let edge lab x y = Atom.app2 (symbol_of lab) (v x) (v y) in
  let pair (a, b) shared x x' =
    match r.Rule.conn with
    | Rule.Amp -> [ edge a x shared; edge b x' shared ]
    | Rule.Slash -> [ edge a shared x; edge b shared x' ]
  in
  [
    Tgd.Dep.make ~name:(Fmt.str "%a:>" Rule.pp r)
      ~body:(pair (r.Rule.l1, r.Rule.l2) "y" "x" "x'")
      ~head:(pair (r.Rule.r1, r.Rule.r2) "y'" "x" "x'")
      ();
    Tgd.Dep.make ~name:(Fmt.str "%a:<" Rule.pp r)
      ~body:(pair (r.Rule.r1, r.Rule.r2) "y" "x" "x'")
      ~head:(pair (r.Rule.l1, r.Rule.l2) "y'" "x" "x'")
      ();
  ]

let tgds_of_rules rules = List.concat_map tgds_of_rule rules
