(** Green-graph rewriting rules — the set L₂ of Section VI — and their
    chase.  [I1 &·· I2 ] I3 &·· I4] is the equivalence
    [∀x,x' (∃y H(I1,x,y) ∧ H(I2,x',y)) ⇔ (∃y H(I3,x,y) ∧ H(I4,x',y))];
    [/··] shares sources instead. *)

type conn = Amp | Slash

type t = {
  conn : conn;
  l1 : Label.t;
  l2 : Label.t;
  r1 : Label.t;
  r2 : Label.t;
  name : string;
}

(** @raise Invalid_argument on reserved labels or I1 = I3 / I2 = I4
    (unless [check:false]). *)
val make : ?name:string -> ?check:bool -> conn -> Label.t * Label.t -> Label.t * Label.t -> t

val amp : ?name:string -> Label.t * Label.t -> Label.t * Label.t -> t
val slash : ?name:string -> Label.t * Label.t -> Label.t * Label.t -> t

val pp : Format.formatter -> t -> unit

(** Canonical 128-bit digest of a rule list: connector + label pairs in
    rule order, names excluded.  Order-sensitive, because firing order
    determines fresh-vertex identity. *)
val digest_hex : t list -> string

(** {1 Semantics} *)

val shared_of : conn -> Graph.edge -> int
val free_of : conn -> Graph.edge -> int

(** Is a pair of edges with the given labels anchored at (x, x')
    present? *)
val pair_present : Graph.t -> conn -> Label.t * Label.t -> int * int -> bool

(** Active triggers of one direction: lhs pair present, rhs pair absent. *)
val directed_triggers :
  Graph.t ->
  conn ->
  Label.t * Label.t ->
  Label.t * Label.t ->
  ((Label.t * int) * (Label.t * int)) list

(** Both directions of the equivalence. *)
val triggers : t -> Graph.t -> ((Label.t * int) * (Label.t * int)) list

val fire : t -> Graph.t -> (Label.t * int) * (Label.t * int) -> unit

val models : t list -> Graph.t -> bool

val find_violation :
  t list -> Graph.t -> (t * ((Label.t * int) * (Label.t * int))) option

type stats = {
  stages : int;
  applications : int;
  triggers_considered : int;
  fixpoint : bool;  (** [outcome = Fixpoint], kept for existing callers *)
  outcome : Resilience.Governor.outcome;  (** how the run ended *)
}

val pp_stats : Format.formatter -> stats -> unit

(** Trigger-discovery engines, mirroring {!Tgd.Chase.engine}: [`Stage]
    rescans the whole graph each stage; [`Seminaive] (the default) only
    examines lhs pairs using at least one edge added since the previous
    stage — equivalent (both trigger conditions are monotone) and
    asymptotically cheaper; [`Par] cuts the delta into chunk tasks
    drained by a work-stealing domain pool and merges candidates in
    canonical sort order (at [jobs:1] with no armed failpoints it runs
    a sequential fast path over a packed-int dedup table instead — same
    output, no pool).  All engines fire a stage's triggers in the same
    canonical order, so they build identical graphs, fresh vertex ids
    included.  [`Par] firing re-checks freshness against a table of the
    stage's own fired pairs (every new edge touches its firing's fresh
    vertex, so four packed keys per firing decide the re-check exactly)
    rather than probing the graph per trigger; ["par.shards"] and
    ["par.steals"] count the fan-out and stealing traffic.

    Under the ["par.shard"] failpoint a marked [`Par] worker dies before
    scanning its shard; the scan is retried once, then degrades to one
    sequential scan of the whole delta — both rungs feed the same
    canonical merge, so the run stays bit-identical to [`Seminaive]. *)
type engine = [ `Stage | `Seminaive | `Par ]

(** A resumable graph-chase snapshot: the graph (a
    journal-order-preserving Marshal clone), the semi-naive watermark and
    the counters; the graph chase keeps no cross-stage dedup state.
    [gsnap_stage] is the last completed stage.  Closure-free, so
    [Resilience.Checkpoint.save]/[load] round-trips it exactly. *)
type snapshot = {
  gsnap_engine : engine;
  gsnap_stage : int;
  gsnap_wm : int;
  gsnap_considered : int;
  gsnap_applications : int;
  gsnap_rules : t list;
  gsnap_graph : Graph.t;
}

(** [jobs] bounds the [`Par] engine's worker count (default
    [Relational.Pool.default_jobs ()]; ignored by other engines).  The
    [governor] (default [Resilience.Governor.unlimited]) adds a
    deadline, stage/element/edge budgets and cooperative cancellation —
    checked at stage boundaries (cancellation also inside the read-only
    scans), so a governed run cut short is the bit-identical prefix of
    the ungoverned one; the verdict is [stats.outcome].  When
    [on_snapshot] is given, a resumable {!snapshot} is delivered every
    [snapshot_every] (default 1) completed stages and at the final stage
    of a cleanly-ended run.  [from] resumes a snapshot (used by
    {!resume}). *)
val chase :
  ?engine:engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Graph.t -> bool) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  ?from:snapshot ->
  t list ->
  Graph.t ->
  stats

(** Continue a checkpointed graph chase in place on the snapshot's own
    graph (clone the snapshot first if it must stay reusable); the engine
    is the snapshot's.  Prefix + resume is bit-identical — edges, fresh
    vertex ids and stats — to one uninterrupted run with the same
    absolute [max_stages] and budgets.  Raises [Invalid_argument] if the
    rule list differs from the snapshot's. *)
val resume :
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?stop:(Graph.t -> bool) ->
  ?snapshot_every:int ->
  ?on_snapshot:(snapshot -> unit) ->
  t list ->
  snapshot ->
  stats * Graph.t

(** Definition 11 for L₂, bounded: chase D_I and watch for the 1-2
    pattern. *)
val leads_to_red_spider :
  ?max_stages:int ->
  t list ->
  [ `Leads of stats * Graph.t
  | `Does_not_lead of stats * Graph.t
  | `Unknown of stats * Graph.t ]

(** {1 Incremental maintenance}

    The graph mirror of [Tgd.Chase.Maint]: a chased green graph kept as a
    universal model of its base edges under edit scripts.  Counting
    support tracking handles the common case; retractions that cut a
    firing's lhs witness run DRed-style over-delete / re-derive through
    the chase's fresh vertices (the graph analog of existential nulls),
    re-adding recorded product edges so surviving fresh vertices keep
    their identity, then one semi-naive continuation restores the
    fixpoint.  The maintained graph is hom-equivalent to the from-scratch
    chase of the edited base, and [models] holds at fixpoint. *)
module Maint : sig
  type rule := t

  (** Maintenance state owning its graph. *)
  type t

  type op =
    | Insert of Label.t * int * int  (** base edge (label, src, dst) *)
    | Retract of Label.t * int * int

  type edit_stats = {
    e_retracted : int;  (** base edges removed *)
    e_inserted : int;  (** base edges added (and not already present) *)
    e_killed : int;  (** edges over-deleted by the cascade *)
    e_refired : int;  (** killed records re-derived with their vertex *)
    e_rewithheld : int;  (** killed records that re-withheld instead *)
    e_run : stats;  (** the semi-naive continuation *)
  }

  (** Chase [g] to the fixpoint (or the governor's cut), tracking
      derivation support.  Current edges of [g] become the base. *)
  val create :
    ?governor:Resilience.Governor.t ->
    ?max_stages:int ->
    rule list ->
    Graph.t ->
    t * stats

  val graph : t -> Graph.t

  (** [true] after a governor-cut run; finish with {!continue_} before
      the next {!apply_edit}. *)
  val pending : t -> bool

  val continue_ :
    ?governor:Resilience.Governor.t -> ?max_stages:int -> t -> stats

  (** Apply a batch of base-edge edits and restore the fixpoint.  Within
      a batch the last op on an edge wins.  Raises [Invalid_argument] if
      a continuation is pending. *)
  val apply_edit :
    ?governor:Resilience.Governor.t ->
    ?max_stages:int ->
    t ->
    op list ->
    edit_stats

  (** Internal-consistency audit: support of live edges, liveness of
      base and recorded edges.  Empty = consistent. *)
  val check : t -> string list
end
