(** Green-graph rewriting rules — the set L₂ of Section VI — and their
    chase.  [I1 &·· I2 ] I3 &·· I4] is the equivalence
    [∀x,x' (∃y H(I1,x,y) ∧ H(I2,x',y)) ⇔ (∃y H(I3,x,y) ∧ H(I4,x',y))];
    [/··] shares sources instead. *)

type conn = Amp | Slash

type t = {
  conn : conn;
  l1 : Label.t;
  l2 : Label.t;
  r1 : Label.t;
  r2 : Label.t;
  name : string;
}

(** @raise Invalid_argument on reserved labels or I1 = I3 / I2 = I4
    (unless [check:false]). *)
val make : ?name:string -> ?check:bool -> conn -> Label.t * Label.t -> Label.t * Label.t -> t

val amp : ?name:string -> Label.t * Label.t -> Label.t * Label.t -> t
val slash : ?name:string -> Label.t * Label.t -> Label.t * Label.t -> t

val pp : Format.formatter -> t -> unit

(** {1 Semantics} *)

val shared_of : conn -> Graph.edge -> int
val free_of : conn -> Graph.edge -> int

(** Is a pair of edges with the given labels anchored at (x, x')
    present? *)
val pair_present : Graph.t -> conn -> Label.t * Label.t -> int * int -> bool

(** Active triggers of one direction: lhs pair present, rhs pair absent. *)
val directed_triggers :
  Graph.t ->
  conn ->
  Label.t * Label.t ->
  Label.t * Label.t ->
  ((Label.t * int) * (Label.t * int)) list

(** Both directions of the equivalence. *)
val triggers : t -> Graph.t -> ((Label.t * int) * (Label.t * int)) list

val fire : t -> Graph.t -> (Label.t * int) * (Label.t * int) -> unit

val models : t list -> Graph.t -> bool

val find_violation :
  t list -> Graph.t -> (t * ((Label.t * int) * (Label.t * int))) option

type stats = {
  stages : int;
  applications : int;
  triggers_considered : int;
  fixpoint : bool;
}

val pp_stats : Format.formatter -> stats -> unit

(** Trigger-discovery engines, mirroring {!Tgd.Chase.engine}: [`Stage]
    rescans the whole graph each stage; [`Seminaive] (the default) only
    examines lhs pairs using at least one edge added since the previous
    stage — equivalent (both trigger conditions are monotone) and
    asymptotically cheaper; [`Par] shards the delta over a domain pool
    and merges candidates in canonical sort order.  All engines fire a
    stage's triggers in the same canonical order, so they build identical
    graphs, fresh vertex ids included. *)
type engine = [ `Stage | `Seminaive | `Par ]

(** [jobs] bounds the [`Par] engine's worker count (default
    [Relational.Pool.default_jobs ()]; ignored by other engines). *)
val chase :
  ?engine:engine ->
  ?jobs:int ->
  ?max_stages:int ->
  ?stop:(Graph.t -> bool) ->
  t list ->
  Graph.t ->
  stats

(** Definition 11 for L₂, bounded: chase D_I and watch for the 1-2
    pattern. *)
val leads_to_red_spider :
  ?max_stages:int ->
  t list ->
  [ `Leads of stats * Graph.t
  | `Does_not_lead of stats * Graph.t
  | `Unknown of stats * Graph.t ]
