(** Labels of green-graph edges: S̄ = S ∪ {∅} (Section VI).  [Some i]
    stands for the spider I^{i}, [None] for the full green spider I.
    Labels 1 and 2 form the 1-2 pattern; 3 and 4 are reserved for
    Precompile's red-spider bootstrap and may not occur in rule sets. *)

type t = int option

val empty : t
val l : int -> t

(** The rule-forbidden labels [3; 4]. *)
val reserved : int list

val is_reserved : t -> bool

(** @raise Invalid_argument on a reserved label. *)
val check_user : t -> unit

val compare : t -> t -> int
val equal : t -> t -> bool

(** The ideal spider denoted (the bijection A2 ≃ S̄). *)
val to_ideal : t -> Spider.Ideal.t

(** Back from a green upper-only ideal spider, if it is one. *)
val of_ideal : Spider.Ideal.t -> t option

val pp : Format.formatter -> t -> unit
