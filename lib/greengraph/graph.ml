(* Green graphs (Section VI): edge-labelled digraphs over S̄. *)

include Lgraph.Make (Label)

(* D_I (Section VII, Step 1): vertices a, b and the single edge H∅(a,b).
   a and b act as the constants of the construction. *)
let d_i () =
  let t = create () in
  let a = fresh ~name:"a" t and b = fresh ~name:"b" t in
  ignore (add_edge t Label.empty a b);
  (t, a, b)

(* The 1-2 pattern (Definition 11): edges H1(x,y) and H2(x',y) sharing
   their target. *)
let has_12_pattern t =
  List.exists
    (fun (e1 : edge) ->
      Label.equal e1.label (Label.l 1)
      && List.exists
           (fun (e2 : edge) -> Label.equal e2.label (Label.l 2))
           (in_edges t e1.dst))
    (with_label t (Label.l 1))

let find_12_pattern t =
  List.find_map
    (fun (e1 : edge) ->
      if not (Label.equal e1.label (Label.l 1)) then None
      else
        List.find_map
          (fun (e2 : edge) ->
            if Label.equal e2.label (Label.l 2) then Some (e1, e2) else None)
          (in_edges t e1.dst))
    (with_label t (Label.l 1))

(* The swarm a green graph denotes: each edge H(I^i, x, y). *)
let to_swarm t =
  let g = Swarm.Graph.create () in
  List.iter (fun v ->
      Swarm.Graph.register g v;
      Swarm.Graph.set_name g v (name t v))
    (vertices t);
  iter_edges t (fun e ->
      ignore (Swarm.Graph.add_edge g (Label.to_ideal e.label) e.src e.dst));
  g

(* deprecompile (Definition 35): keep only the swarm edges that are valid
   green-graph edges — full or upper-lame green spiders. *)
let of_swarm g =
  let t = create () in
  List.iter (fun v ->
      register t v;
      set_name t v (Swarm.Graph.name g v))
    (Swarm.Graph.vertices g);
  Swarm.Graph.iter_edges g (fun e ->
      match Label.of_ideal e.Swarm.Graph.label with
      | Some lab -> ignore (add_edge t lab e.Swarm.Graph.src e.Swarm.Graph.dst)
      | None -> ());
  t
