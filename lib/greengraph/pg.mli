(** Parity Glasses and the word language of a green graph
    (Definitions 15–16): PG(M) drops ∅-edges and reverses odd-labelled
    ones; [words(M)] collects the words of paths(PG(M), a, a) ∪
    paths(PG(M), a, b), where a word counts only if no nonempty proper
    prefix already reaches the target. *)

type arrow = { lab : int; src : int; dst : int }

(** The PG view of the graph's edges. *)
val arrows : Graph.t -> arrow list

(** NFA subset step over the PG view. *)
val step_states : arrow list -> int list -> int -> int list

(** [in_paths g ~s ~t w]: w ∈ paths(PG(g), s, t)? *)
val in_paths : Graph.t -> s:int -> t:int -> int list -> bool

(** Membership in words(g) (Definition 16). *)
val in_words : Graph.t -> a:int -> b:int -> int list -> bool

(** Bounded enumeration of words(g). *)
val words_upto : Graph.t -> a:int -> b:int -> max_len:int -> int list list

(** Words of the shape α(β1β0)^k, given the label codes. *)
val is_alpha_beta_word : alpha:int -> beta0:int -> beta1:int -> int list -> bool

val pp_word : Format.formatter -> int list -> unit
