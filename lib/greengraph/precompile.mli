(** Precompile (Definition 9): L₂ rules into L₁ swarm rules, and the full
    Lemma 12 pipeline down to conjunctive queries over Σ. *)

(** The three bootstrap rules that turn a 1-2 pattern into the full red
    spider in three steps (footnote 10). *)
val base_rules : Swarm.Rule.t list

(** The two swarm rules simulating green-graph rule number [i ≥ 2]
    (Remark 10), with lower indices 2i+1, 2i+2. *)
val rule_pair : int -> Rule.t -> Swarm.Rule.t list

val precompile : Rule.t list -> Swarm.Rule.t list

(** The leg count s needed at Levels 1 and 0: max of the labels, the
    reserved 1–4 and the numbering range 2(k+1)+2. *)
val required_s : Rule.t list -> int

(** Definition 36: a green graph becomes a swarm by adding the red
    witnesses of one Precompile chase stage (Lemma 32(ii)). *)
val precompile_graph : Rule.t list -> Graph.t -> Swarm.Graph.t

(** A fully materialized Level-0 image of a Level-2 rule set. *)
type level0 = {
  ctx : Spider.Ctx.t;
  swarm_rules : Swarm.Rule.t list;
  binaries : Spider.Query.binary list;
  queries : (string * Cq.Query.t) list;  (** Q = Compile(Precompile(T)) *)
  tgds : Tgd.Dep.t list;                 (** T_Q *)
}

val to_level0 : ?s:int -> Rule.t list -> level0
