(* Green-graph rewriting rules — the set L₂ of Section VI.

   I1 &·· I2 ] I3 &·· I4 is the equivalence
     ∀x,x' [∃y H(I1,x,y) ∧ H(I2,x',y)] ⇔ [∃y H(I3,x,y) ∧ H(I4,x',y)]
   and I1 /·· I2 ] I3 /·· I4 the same with shared sources.  The paper
   requires I1 ≠ I3 and I2 ≠ I4 and that labels 3, 4 never occur. *)

type conn = Amp | Slash

type t = {
  conn : conn;
  l1 : Label.t;
  l2 : Label.t;  (* left-hand side pair *)
  r1 : Label.t;
  r2 : Label.t;  (* right-hand side pair *)
  name : string;
}

let make ?(name = "") ?(check = true) conn (l1, l2) (r1, r2) =
  if check then begin
    List.iter Label.check_user [ l1; l2; r1; r2 ];
    if Label.equal l1 r1 || Label.equal l2 r2 then
      invalid_arg "Greengraph.Rule.make: requires I1 ≠ I3 and I2 ≠ I4"
  end;
  { conn; l1; l2; r1; r2; name }

let amp ?name (l1, l2) (r1, r2) = make ?name Amp (l1, l2) (r1, r2)
let slash ?name (l1, l2) (r1, r2) = make ?name Slash (l1, l2) (r1, r2)

let pp ppf t =
  let c = match t.conn with Amp -> "&··" | Slash -> "/··" in
  Fmt.pf ppf "%s%a %s %a ] %a %s %a"
    (if t.name = "" then "" else t.name ^ ": ")
    Label.pp t.l1 c Label.pp t.l2 Label.pp t.r1 c Label.pp t.r2

(* Canonical ruleset digest, mirroring [Tgd.Dep.digest_hex]: connector
   and label pairs in rule order, names excluded (renamed rulesets
   rewrite identically).  Order-sensitive — firing order determines
   fresh-vertex identity. *)
let digest_hex rules =
  let dg = Relational.Digest128.create () in
  List.iter
    (fun r ->
      Relational.Digest128.feed_int dg
        (match r.conn with Amp -> 0 | Slash -> 1);
      List.iter
        (fun l ->
          Relational.Digest128.feed_string dg
            (Format.asprintf "%a" Label.pp l))
        [ r.l1; r.l2; r.r1; r.r2 ])
    rules;
  Relational.Digest128.hex ~salt:[ List.length rules ] dg

(* --- semantics -------------------------------------------------------- *)

let shared_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.dst | Slash -> e.Graph.src

let free_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.src | Slash -> e.Graph.dst

(* The edges with a given free endpoint and label (the shared-endpoint
   candidates follow from the connector), read off the (vertex, label)
   index. *)
let edges_at_free_with g conn x lab =
  match conn with
  | Amp -> Graph.out_edges_with g x lab
  | Slash -> Graph.in_edges_with g x lab

let edges_at_shared_with g conn y lab =
  match conn with
  | Amp -> Graph.in_edges_with g y lab
  | Slash -> Graph.out_edges_with g y lab

let c_considered = Obs.Metrics.counter "graph.triggers_considered"
let c_firings = Obs.Metrics.counter "graph.firings"
let c_pair_checks = Obs.Metrics.counter "graph.pair_checks"
let h_delta = Obs.Metrics.histogram "graph.delta_size"

(* A pair (x, x') matching labels (a, b) under [conn]: the two edges share
   their joint endpoint.  The partner edge is fully determined by e1's
   shared endpoint, so one set-membership test replaces a scan of every
   edge at that (possibly high-degree) vertex. *)
let pair_present g conn (a, b) (x, x') =
  if !Obs.metrics_on then Obs.Metrics.incr c_pair_checks;
  List.exists
    (fun (e1 : Graph.edge) ->
      let y = shared_of conn e1 in
      let e2 : Graph.edge =
        match conn with
        | Amp -> { label = b; src = x'; dst = y }
        | Slash -> { label = b; src = y; dst = x' }
      in
      Graph.mem_edge g e2)
    (edges_at_free_with g conn x a)

(* Active triggers of one direction: lhs pair present at (x,x'), rhs pair
   absent.  Each rule is an equivalence, so [triggers] covers both
   directions. *)
let directed_triggers g conn (a, b) (c, d) =
  let hits = ref [] in
  List.iter
    (fun (e1 : Graph.edge) ->
      List.iter
        (fun (e2 : Graph.edge) ->
          let x = free_of conn e1 and x' = free_of conn e2 in
          if not (pair_present g conn (c, d) (x, x')) then
            hits := ((c, x), (d, x')) :: !hits)
        (edges_at_shared_with g conn (shared_of conn e1) b))
    (Graph.with_label g a);
  List.rev !hits

let triggers rule g =
  directed_triggers g rule.conn (rule.l1, rule.l2) (rule.r1, rule.r2)
  @ directed_triggers g rule.conn (rule.r1, rule.r2) (rule.l1, rule.l2)

let fire rule g ((c, x), (d, x')) =
  let v = Graph.fresh g in
  match rule.conn with
  | Amp ->
      ignore (Graph.add_edge g c x v);
      ignore (Graph.add_edge g d x' v)
  | Slash ->
      ignore (Graph.add_edge g c v x);
      ignore (Graph.add_edge g d v x')

let models rules g = List.for_all (fun r -> triggers r g = []) rules

let find_violation rules g =
  List.find_map
    (fun r -> match triggers r g with [] -> None | t :: _ -> Some (r, t))
    rules

module G = Resilience.Governor

type stats = {
  stages : int;
  applications : int;
  triggers_considered : int;
  fixpoint : bool; (* outcome = Fixpoint, kept for callers *)
  outcome : G.outcome;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "stages=%d applications=%d triggers_considered=%d fixpoint=%b outcome=%a"
    s.stages s.applications s.triggers_considered s.fixpoint G.pp_outcome
    s.outcome

(* Trigger-discovery engines, mirroring [Tgd.Chase]: [`Stage] rescans
   every label bucket each stage; [`Seminaive] (default) only examines
   lhs pairs using at least one edge added since the previous stage;
   [`Par] is semi-naive with the delta sharded over a domain pool and a
   canonical sorted merge, still bit-identical.
   Both conditions of a trigger are monotone (lhs pairs and rhs pairs are
   never removed), so a pair wholly inside old edges was examined at an
   earlier stage and either fired (its rhs pair now exists) or was
   dropped because the rhs pair existed — inactive forever either way. *)
type engine = [ `Stage | `Seminaive | `Par ]

(* A stage's delta, indexed by label once, so the per-rule loops below
   look their candidate edges up instead of rescanning the whole delta
   for each of the 2·|rules| directions. *)
let index_delta delta_edges =
  let tbl = Graph.Label_tbl.create 16 in
  List.iter
    (fun (e : Graph.edge) ->
      let r =
        match Graph.Label_tbl.find_opt tbl e.Graph.label with
        | Some r -> r
        | None ->
            let r = ref [] in
            Graph.Label_tbl.replace tbl e.Graph.label r;
            r
      in
      r := e :: !r)
    delta_edges;
  tbl

let delta_with tbl lab =
  match Graph.Label_tbl.find_opt tbl lab with Some r -> !r | None -> []

(* Collect one stage's triggers: for each rule and direction, the
   deduplicated (x, x') pairs with an lhs pair present (through at least
   one delta edge in semi-naive mode) and the rhs pair absent, sorted into
   the canonical firing order (rule, direction, x, x') shared by both
   engines so their fresh vertices coincide. *)
let collect_stage ?delta ~considered rules g =
  let out = ref [] in
  List.iteri
    (fun ri rule ->
      List.iteri
        (fun dir ((a, b), (c, d)) ->
          let seen = Hashtbl.create 32 in
          let consider x x' =
            (* cooperative cancellation: the scan is read-only here *)
            G.Cancel.poll ();
            if not (Hashtbl.mem seen (x, x')) then begin
              Hashtbl.replace seen (x, x') ();
              incr considered;
              if !Obs.metrics_on then Obs.Metrics.incr c_considered;
              if not (pair_present g rule.conn (c, d) (x, x')) then
                out := (ri, dir, x, x', rule, (c, d)) :: !out
            end
          in
          let join_from (e1 : Graph.edge) =
            List.iter
              (fun (e2 : Graph.edge) ->
                consider (free_of rule.conn e1) (free_of rule.conn e2))
              (edges_at_shared_with g rule.conn (shared_of rule.conn e1) b)
          in
          match delta with
          | None -> List.iter join_from (Graph.with_label g a)
          | Some dix ->
              (* lhs pairs with the first edge in the delta … *)
              List.iter join_from (delta_with dix a);
              (* … and with the second edge in the delta *)
              List.iter
                (fun (e2 : Graph.edge) ->
                  List.iter
                    (fun (e1 : Graph.edge) ->
                      consider (free_of rule.conn e1) (free_of rule.conn e2))
                    (edges_at_shared_with g rule.conn (shared_of rule.conn e2)
                       a))
                (delta_with dix b))
        [
          ((rule.l1, rule.l2), (rule.r1, rule.r2));
          ((rule.r1, rule.r2), (rule.l1, rule.l2));
        ])
    rules;
  List.sort
    (fun (r1, d1, x1, y1, _, _) (r2, d2, x2, y2, _, _) ->
      compare (r1, d1, x1, y1) (r2, d2, x2, y2))
    !out
  |> List.map (fun (_, _, x, x', rule, (c, d)) -> (rule, ((c, x), (d, x'))))

(* One direction's delta-restricted candidate pairs: lhs pairs using at
   least one delta edge, in the same join order as [collect_stage]'s
   [Some dix] branch.  Shared by the par engine's sequential and stolen
   scans. *)
let iter_delta_pairs g conn ~dix (a, b) consider =
  (* lhs pairs with the first edge in the delta … *)
  List.iter
    (fun (e1 : Graph.edge) ->
      List.iter
        (fun (e2 : Graph.edge) ->
          consider (free_of conn e1) (free_of conn e2))
        (edges_at_shared_with g conn (shared_of conn e1) b))
    (delta_with dix a);
  (* … and with the second edge in the delta *)
  List.iter
    (fun (e2 : Graph.edge) ->
      List.iter
        (fun (e1 : Graph.edge) ->
          consider (free_of conn e1) (free_of conn e2))
        (edges_at_shared_with g conn (shared_of conn e2) a))
    (delta_with dix b)

(* Packed integer keys for the par engine's hot tables.  A label's code
   is [None -> 0 | Some i -> i + 1]; vertex ids are bounded by
   [Graph.next_vertex] (every registered id is below it, and triggers
   only mention stage-start vertices).  Structural hashing of tuple keys
   was measured to cost more than the work the tables save, so the par
   paths pack their keys into one tagged int when the bounds fit and
   fall back to the structural-key paths (identical results) when they
   would overflow. *)
let lab_code : Label.t -> int = function None -> 0 | Some i -> i + 1

(* [1 + max code] over the rule set's labels, or [0] when some code is
   negative (user labels are nonnegative, but [make ~check:false] does
   not enforce it) — [0] means "don't pack". *)
let lab_bound rules =
  List.fold_left
    (fun m r ->
      List.fold_left
        (fun m l ->
          let c = lab_code l in
          if c < 0 || m < 0 then -1 else max m (c + 1))
        m
        [ r.l1; r.l2; r.r1; r.r2 ])
    1 rules
  |> max 0

(* As [collect_stage ~delta] but with the per-direction (x, x') dedup
   key packed into one int.  Candidate order, counts, surviving triggers
   and the canonical sort are unchanged, so the result is the
   [collect_stage] one bit for bit. *)
let collect_stage_packed ~dix ~considered rules g =
  let n0 = Graph.next_vertex g in
  if n0 <= 0 || n0 > 1 lsl 30 then collect_stage ~delta:dix ~considered rules g
  else begin
    let out = ref [] in
    List.iteri
      (fun ri rule ->
        List.iteri
          (fun dir ((a, b), (c, d)) ->
            let seen = Hashtbl.create 32 in
            let consider x x' =
              G.Cancel.poll ();
              let key = (x * n0) + x' in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                incr considered;
                if !Obs.metrics_on then Obs.Metrics.incr c_considered;
                if not (pair_present g rule.conn (c, d) (x, x')) then
                  out := (ri, dir, x, x', rule, (c, d)) :: !out
              end
            in
            iter_delta_pairs g rule.conn ~dix (a, b) consider)
          [
            ((rule.l1, rule.l2), (rule.r1, rule.r2));
            ((rule.r1, rule.r2), (rule.l1, rule.l2));
          ])
      rules;
    List.sort
      (fun (r1, d1, x1, y1, _, _) (r2, d2, x2, y2, _, _) ->
        compare (r1, d1, x1, y1) (r2, d2, x2, y2))
      !out
    |> List.map (fun (_, _, x, x', rule, (c, d)) -> (rule, ((c, x), (d, x'))))
  end

(* The parallel collector: the delta is indexed by label once (shared,
   read-only), and each (rule, direction) scan becomes a task on a
   work-stealing pool; workers enumerate raw lhs-pair candidates
   (x, x') through the index without deduplication or rhs checks
   (reading the graph only), and the merge sorts the candidates into
   the canonical (rule, direction, x, x') order, deduplicates, counts
   and rhs-checks sequentially.  The deduplicated candidate set equals
   the sequential semi-naive one, so stats, surviving triggers and the
   firing order are bit-identical to [`Seminaive].  With one worker and
   no active failpoints the pipeline collapses to the sequential
   indexed scan — no pool, no merge. *)
let c_merge_ms = Obs.Metrics.counter "par.merge_ms"
let c_shards = Obs.Metrics.counter "par.shards"
let c_par_retries = Obs.Metrics.counter "resilience.par_retries"
let c_par_degraded = Obs.Metrics.counter "resilience.par_degraded"

let collect_stage_par ~jobs ~considered rules g delta_edges =
  if jobs <= 1 && not (Resilience.Failpoint.active ()) then begin
    (* one worker: the stage is its own single shard *)
    if !Obs.metrics_on then Obs.Metrics.incr c_shards;
    collect_stage_packed ~dix:(index_delta delta_edges) ~considered rules g
  end
  else begin
    let dix = index_delta delta_edges in
    let dirs =
      List.concat
        (List.mapi
           (fun ri rule ->
             [
               (ri, 0, rule, (rule.l1, rule.l2), (rule.r1, rule.r2));
               (ri, 1, rule, (rule.r1, rule.r2), (rule.l1, rule.l2));
             ])
           rules)
    in
    let dira = Array.of_list dirs in
    let ndirs = Array.length dira in
    (* One direction's raw candidates off the delta index — the unit of
       work-stealing. *)
    let scan_dir (ri, dir, rule, (a, b), _) =
      let acc = ref [] in
      iter_delta_pairs g rule.conn ~dix (a, b) (fun x x' ->
          acc := (ri, dir, x, x') :: !acc);
      List.rev !acc
    in
    (* Per-task "par.shard" fault decisions are drawn before the workers
       spawn (the decision stream must not be raced across domains); a
       faulted scan is retried once, then degrades to the sequential
       indexed collection.  Both rungs produce the semi-naive candidate
       set, so the stage stays bit-identical to [`Seminaive]. *)
    let scan_stolen () =
      let faults = Array.make ndirs false in
      if Resilience.Failpoint.active () then
        for w = 0 to ndirs - 1 do
          faults.(w) <- Resilience.Failpoint.fire "par.shard"
        done;
      Relational.Pool.run_stealing ?steals:None ~jobs:(min jobs ndirs) ndirs
        (fun w ->
          if faults.(w) then raise (Resilience.Failpoint.Injected "par.shard");
          scan_dir dira.(w))
    in
    match
      (try Some (scan_stolen ()) with
      | Resilience.Failpoint.Injected "par.shard" -> (
          if !Obs.metrics_on then Obs.Metrics.incr c_par_retries;
          try Some (scan_stolen ()) with
          | Resilience.Failpoint.Injected "par.shard" ->
              if !Obs.metrics_on then Obs.Metrics.incr c_par_degraded;
              None))
    with
    | None -> collect_stage ~delta:dix ~considered rules g
    | Some raw ->
        let t0 = Obs.Clock.now_s () in
        let all = List.sort compare (List.concat (Array.to_list raw)) in
        let seen = Hashtbl.create 64 in
        let out = ref [] in
        List.iter
          (fun ((ri, dir, x, x') as key) ->
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              incr considered;
              if !Obs.metrics_on then Obs.Metrics.incr c_considered;
              let _, _, rule, _, (c, d) = dira.((ri * 2) + dir) in
              if not (pair_present g rule.conn (c, d) (x, x')) then
                out := (rule, ((c, x), (d, x'))) :: !out
            end)
          all;
        if !Obs.metrics_on then
          Obs.Metrics.add c_merge_ms
            (int_of_float ((Obs.Clock.now_s () -. t0) *. 1000.));
        List.rev !out
  end

(* A resumable graph-chase snapshot.  The graph chase keeps no persistent
   dedup state across stages (its trigger dedup is per stage), so a
   snapshot is the graph (a journal-order-preserving Marshal clone), the
   watermark and the counters.  [gsnap_stage] is the last completed
   stage; resuming continues at [gsnap_stage + 1] with absolute stage
   numbering. *)
type snapshot = {
  gsnap_engine : engine;
  gsnap_stage : int;
  gsnap_wm : int;
  gsnap_considered : int;
  gsnap_applications : int;
  gsnap_rules : t list; (* plain data; compared to reject mismatched resumes *)
  gsnap_graph : Graph.t;
}

let chase ?(engine = `Seminaive) ?jobs ?(governor = G.unlimited)
    ?(max_stages = max_int) ?(stop = fun _ -> false) ?(snapshot_every = 1)
    ?on_snapshot ?from rules g =
  (match from with
  | Some s ->
      if s.gsnap_rules <> rules then
        invalid_arg "Rule.resume: rule list differs from the snapshot's"
  | None -> ());
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Relational.Pool.default_jobs ()
  in
  let start_stage, wm0, considered0, apps0 =
    match from with
    | Some s -> (s.gsnap_stage, s.gsnap_wm, s.gsnap_considered, s.gsnap_applications)
    | None -> (0, 0, 0, 0)
  in
  let applications = ref apps0 in
  let considered = ref considered0 in
  let wm = ref wm0 in
  let last_snap = ref (-1) in
  let emit_snapshot i =
    match on_snapshot with
    | Some f when i > !last_snap ->
        last_snap := i;
        f
          {
            gsnap_engine = engine;
            gsnap_stage = i;
            gsnap_wm = !wm;
            gsnap_considered = !considered;
            gsnap_applications = !applications;
            gsnap_rules = rules;
            gsnap_graph = Resilience.Checkpoint.clone g;
          }
    | _ -> ()
  in
  let finish ?(snap = true) i outcome =
    if snap then emit_snapshot i;
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      fixpoint = (outcome = G.Fixpoint);
      outcome;
    }
  in
  let max_stages = min max_stages governor.G.max_stages in
  let rec go i =
    match G.interrupted governor with
    | Some o -> finish (i - 1) o
    | None ->
        if i > max_stages then finish (i - 1) (G.Budget G.Stages)
        else begin
          (* collect the triggers against the stage-start graph, then fire
             those still active (mirroring the chase of Section II.C) *)
          let n_triggers = ref 0 and fired = ref 0 in
          let step () =
            let collected =
              G.with_scope governor (fun () ->
                  match engine with
                  | `Stage ->
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (Graph.size g);
                      collect_stage ~considered rules g
                  | `Seminaive ->
                      let d = Graph.delta_since g !wm in
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (List.length d);
                      let c =
                        collect_stage ~delta:(index_delta d) ~considered rules
                          g
                      in
                      (* advance only after a completed scan: a cancelled
                         scan must not move the watermark past the last
                         resumable boundary *)
                      wm := Graph.watermark g;
                      c
                  | `Par ->
                      let d = Graph.delta_since g !wm in
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (List.length d);
                      let c = collect_stage_par ~jobs ~considered rules g d in
                      wm := Graph.watermark g;
                      c)
            in
            n_triggers := List.length collected;
            match engine with
            | `Stage | `Seminaive ->
                List.iter
                  (fun (rule, ((c, x), (d, x'))) ->
                    if not (pair_present g rule.conn (c, d) (x, x')) then begin
                      fire rule g ((c, x), (d, x'));
                      if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                      incr fired
                    end)
                  collected
            | `Par ->
                (* The fire-time re-check, O(1) per trigger.  Every
                   collected trigger's rhs pair was absent against the
                   stage-start graph, and a [fire] only adds edges
                   touching its own fresh vertex, which no older edge
                   reaches — so a pair at fire time is either wholly old
                   (absent: it was checked at collection) or wholly among
                   the two edges of one single firing this stage.  A
                   table of the pairs derivable from each firing's edge
                   pair {c: x~v, d: x'~v} therefore decides the re-check
                   exactly: present iff probed.  Bit-identical outcomes
                   to the reference [pair_present] re-check. *)
                (* Keys are packed ints when the label/vertex bounds fit
                   in a tagged word (they do on every realistic rule
                   set); otherwise structural 5-tuples — same decisions,
                   only the hashing cost differs.  [n0] is taken before
                   any firing, so every trigger vertex is below it. *)
                let n0 = Graph.next_vertex g in
                let lb = lab_bound rules in
                let packed =
                  lb > 0 && n0 > 0
                  && float_of_int lb *. float_of_int lb *. float_of_int n0
                     *. float_of_int n0 *. 2.
                     < 4.0e18
                in
                if packed then begin
                  let fired_pairs = Hashtbl.create 64 in
                  let pk conn c x d x' =
                    let cb = match conn with Amp -> 0 | Slash -> 1 in
                    ((((((cb * lb) + lab_code c) * lb) + lab_code d) * n0 + x)
                     * n0)
                    + x'
                  in
                  List.iter
                    (fun (rule, ((c, x), (d, x'))) ->
                      if not (Hashtbl.mem fired_pairs (pk rule.conn c x d x'))
                      then begin
                        fire rule g ((c, x), (d, x'));
                        Hashtbl.replace fired_pairs (pk rule.conn c x d x') ();
                        Hashtbl.replace fired_pairs (pk rule.conn d x' c x) ();
                        Hashtbl.replace fired_pairs (pk rule.conn c x c x) ();
                        Hashtbl.replace fired_pairs (pk rule.conn d x' d x') ();
                        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                        incr fired
                      end)
                    collected
                end
                else begin
                  let fired_pairs = Hashtbl.create 64 in
                  List.iter
                    (fun (rule, ((c, x), (d, x'))) ->
                      if not (Hashtbl.mem fired_pairs (rule.conn, c, x, d, x'))
                      then begin
                        fire rule g ((c, x), (d, x'));
                        List.iter
                          (fun k -> Hashtbl.replace fired_pairs k ())
                          [
                            (rule.conn, c, x, d, x');
                            (rule.conn, d, x', c, x);
                            (rule.conn, c, x, c, x);
                            (rule.conn, d, x', d, x');
                          ];
                        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                        incr fired
                      end)
                    collected
                end
          in
          match
            Obs.Trace.with_span "graph.stage"
              ~args:(fun () ->
                [ ("stage", i); ("triggers", !n_triggers); ("fired", !fired) ])
              (fun () ->
                try Ok (step ()) with
                | G.Cancel.Cancelled -> Error `Cancelled
                | Resilience.Failpoint.Injected site -> Error (`Faulted site))
          with
          | Error `Cancelled -> finish ~snap:false (i - 1) G.Cancelled
          | Error (`Faulted site) -> finish ~snap:false (i - 1) (G.Faulted site)
          | Ok () ->
              applications := !applications + !fired;
              if !fired = 0 then finish i G.Fixpoint
              else begin
                if (i - start_stage) mod snapshot_every = 0 then
                  emit_snapshot i;
                match
                  (* vertex/edge counts are O(n) on graphs: only pay for
                     them under a real governor *)
                  if G.is_unlimited governor || not (G.has_size_budget governor)
                  then None
                  else
                    G.over_budget governor
                      ~elems:(List.length (Graph.vertices g))
                      ~facts:(Graph.size g)
                with
                | Some o -> finish i o
                | None ->
                    if stop g then finish i (G.Budget G.Stop) else go (i + 1)
              end
        end
  in
  Obs.Trace.with_span
    (match engine with
    | `Stage -> "graph.chase(stage)"
    | `Seminaive -> "graph.chase(seminaive)"
    | `Par -> "graph.chase(par)")
    (fun () -> go (start_stage + 1))

(* Continue a checkpointed graph chase on the snapshot's own graph (clone
   the snapshot first to keep it reusable): prefix + resume is
   bit-identical to one uninterrupted run with the same absolute
   [max_stages]. *)
let resume ?jobs ?governor ?max_stages ?stop ?snapshot_every ?on_snapshot
    rules snap =
  let g = snap.gsnap_graph in
  let stats =
    chase ~engine:snap.gsnap_engine ?jobs ?governor ?max_stages ?stop
      ?snapshot_every ?on_snapshot ~from:snap rules g
  in
  (stats, g)

(* Definition 11 for L₂, bounded: chase D_I and watch for a 1-2 pattern. *)
let leads_to_red_spider ?(max_stages = 16) rules =
  let g, _, _ = Graph.d_i () in
  let stats = chase ~max_stages ~stop:Graph.has_12_pattern rules g in
  if Graph.has_12_pattern g then `Leads (stats, g)
  else if stats.fixpoint then `Does_not_lead (stats, g)
  else `Unknown (stats, g)

(* Incremental maintenance of a chased green graph under base-edge edits,
   mirroring [Tgd.Chase.Maint]: counting support tracking for the common
   case, DRed-style over-delete / re-derive through the chase's fresh
   vertices (the graph analog of existential nulls) for retractions.

   A trigger key is (rule index, direction, x, x').  A FIRED record keeps
   one lhs witness pair, its fresh vertex and the two edges it added; a
   WITHHELD record keeps the rhs pair that witnessed the key.  Both
   trigger conditions are monotone while no edge is removed, so a key
   with an alive record is settled and discovery skips it; retraction
   kills records through the [uses] index, over-deletes unsupported
   product edges, re-examines the killed keys in canonical order —
   re-adding the recorded product edges so surviving fresh vertices keep
   their identity — and one semi-naive continuation restores the
   fixpoint.  The result is a universal model of the edited base:
   hom-equivalent to the from-scratch chase, with [models] true. *)
module Maint = struct
  type rule = t
  type key = int * int * int * int

  type record = {
    k : key;
    mutable witness : Graph.edge list; (* lhs pair of a fired record *)
    mutable products : Graph.edge list; (* the two edges the firing added *)
    mutable vertex : int; (* its fresh vertex, -1 for withheld *)
    mutable rhs_wit : Graph.edge list; (* rhs pair of a withheld record *)
    mutable fired : bool;
    mutable alive : bool;
  }

  type t = {
    m_rules : rule array;
    m_g : Graph.t;
    m_recs : (key, record) Hashtbl.t;
    m_supports : record list ref Graph.Edge_tbl.t;
    m_uses : record list ref Graph.Edge_tbl.t;
    m_base : unit Graph.Edge_tbl.t;
    mutable m_stage : int;
    mutable m_wm : int;
    mutable m_considered : int;
    mutable m_applications : int;
    mutable m_pending : bool;
    mutable m_grave : int; (* records evicted from [m_recs], not yet swept *)
  }

  type edit_stats = {
    e_retracted : int;
    e_inserted : int;
    e_killed : int;
    e_refired : int;
    e_rewithheld : int;
    e_run : stats;
  }

  let graph t = t.m_g
  let pending t = t.m_pending

  let sides (r : rule) dir =
    if dir = 0 then ((r.l1, r.l2), (r.r1, r.r2))
    else ((r.r1, r.r2), (r.l1, r.l2))

  (* [pair_present], but returning the witnessing pair. *)
  let find_pair g conn (a, b) (x, x') =
    List.find_map
      (fun (e1 : Graph.edge) ->
        let y = shared_of conn e1 in
        let e2 : Graph.edge =
          match conn with
          | Amp -> { label = b; src = x'; dst = y }
          | Slash -> { label = b; src = y; dst = x' }
        in
        if Graph.mem_edge g e2 then Some (e1, e2) else None)
      (edges_at_free_with g conn x a)

  let add_edge_rec tbl e r =
    match Graph.Edge_tbl.find_opt tbl e with
    | Some rs -> if not (List.memq r !rs) then rs := r :: !rs
    | None -> Graph.Edge_tbl.replace tbl e (ref [ r ])

  let supported t e =
    match Graph.Edge_tbl.find_opt t.m_supports e with
    | Some rs -> List.exists (fun r -> r.alive && r.fired) !rs
    | None -> false

  (* Same amortized graveyard sweep as [Tgd.Chase.Maint.compact]: a
     record evicted from [m_recs] by a newer firing of its key is
     unrevivable, but it lingers in the per-edge support/use lists and
     makes every cascade walk pay for the whole edit history.  Once the
     graveyard outgrows the live population, rebuild both tables keeping
     only records still current for their key. *)
  let current t r =
    match Hashtbl.find_opt t.m_recs r.k with
    | Some r' -> r' == r
    | None -> false

  let compact t =
    if t.m_grave > 64 + Hashtbl.length t.m_recs then begin
      let sweep tbl =
        let empty = ref [] in
        Graph.Edge_tbl.iter
          (fun e rs ->
            let rs' = List.filter (current t) !rs in
            if rs' = [] then empty := e :: !empty else rs := rs')
          tbl;
        List.iter (Graph.Edge_tbl.remove tbl) !empty
      in
      sweep t.m_supports;
      sweep t.m_uses;
      t.m_grave <- 0
    end

  let record_withheld t k (w1, w2) =
    let r =
      {
        k;
        witness = [];
        products = [];
        vertex = -1;
        rhs_wit = [ w1; w2 ];
        fired = false;
        alive = true;
      }
    in
    if Hashtbl.mem t.m_recs k then t.m_grave <- t.m_grave + 1;
    Hashtbl.replace t.m_recs k r;
    add_edge_rec t.m_uses w1 r;
    add_edge_rec t.m_uses w2 r

  let record_fired t k ~witness ~vertex ~products =
    let r =
      {
        k;
        witness;
        products;
        vertex;
        rhs_wit = [];
        fired = true;
        alive = true;
      }
    in
    if Hashtbl.mem t.m_recs k then t.m_grave <- t.m_grave + 1;
    Hashtbl.replace t.m_recs k r;
    List.iter (fun e -> add_edge_rec t.m_uses e r) witness;
    List.iter (fun e -> add_edge_rec t.m_supports e r) products;
    r

  let product_edges conn (c, d) (x, x') v : Graph.edge list =
    match conn with
    | Amp -> [ { label = c; src = x; dst = v }; { label = d; src = x'; dst = v } ]
    | Slash -> [ { label = c; src = v; dst = x }; { label = d; src = v; dst = x' } ]

  (* One semi-naive maintenance run to the fixpoint (or the governor's
     cut): delta discovery skips keys with an alive record — both
     trigger conditions are monotone during a run, so settled keys stay
     settled — and every examination leaves a record behind. *)
  let run_loop ?(governor = G.unlimited) ?(max_stages = max_int) t =
    let g = t.m_g in
    let finish i outcome =
      t.m_stage <- max t.m_stage i;
      t.m_pending <- outcome <> G.Fixpoint;
      {
        stages = i;
        applications = t.m_applications;
        triggers_considered = t.m_considered;
        fixpoint = (outcome = G.Fixpoint);
        outcome;
      }
    in
    let abs_max =
      if max_stages = max_int then max_int else t.m_stage + max_stages
    in
    let abs_max = min abs_max governor.G.max_stages in
    let rec go i =
      match G.interrupted governor with
      | Some o -> finish (i - 1) o
      | None ->
          if i > abs_max then finish (i - 1) (G.Budget G.Stages)
          else begin
            let fired = ref 0 in
            let step () =
              let out = ref [] in
              G.with_scope governor (fun () ->
                  let delta = Graph.delta_since g t.m_wm in
                  let dix = index_delta delta in
                  Array.iteri
                    (fun ri rule ->
                      List.iter
                        (fun dir ->
                          let (a, b), (c, d) = sides rule dir in
                          let seen = Hashtbl.create 32 in
                          let consider (e1 : Graph.edge) (e2 : Graph.edge) =
                            G.Cancel.poll ();
                            let x = free_of rule.conn e1
                            and x' = free_of rule.conn e2 in
                            let k = (ri, dir, x, x') in
                            if not (Hashtbl.mem seen k) then begin
                              Hashtbl.replace seen k ();
                              match Hashtbl.find_opt t.m_recs k with
                              | Some r when r.alive -> ()
                              | _ -> (
                                  t.m_considered <- t.m_considered + 1;
                                  if !Obs.metrics_on then
                                    Obs.Metrics.incr c_considered;
                                  match find_pair g rule.conn (c, d) (x, x') with
                                  | Some w -> record_withheld t k w
                                  | None ->
                                      out :=
                                        (k, rule, (c, d), (e1, e2)) :: !out)
                            end
                          in
                          List.iter
                            (fun (e1 : Graph.edge) ->
                              List.iter
                                (fun e2 -> consider e1 e2)
                                (edges_at_shared_with g rule.conn
                                   (shared_of rule.conn e1) b))
                            (delta_with dix a);
                          List.iter
                            (fun (e2 : Graph.edge) ->
                              List.iter
                                (fun e1 -> consider e1 e2)
                                (edges_at_shared_with g rule.conn
                                   (shared_of rule.conn e2) a))
                            (delta_with dix b))
                        [ 0; 1 ])
                    t.m_rules;
                  (* advance only after a completed scan *)
                  t.m_wm <- Graph.watermark g);
              let triggers =
                List.sort (fun (k1, _, _, _) (k2, _, _, _) -> compare k1 k2)
                  !out
              in
              List.iter
                (fun (k, rule, (c, d), (e1, e2)) ->
                  let _, _, x, x' = k in
                  (* fire-time re-check: an earlier firing this stage may
                     have witnessed the rhs *)
                  match find_pair g rule.conn (c, d) (x, x') with
                  | Some w -> record_withheld t k w
                  | None ->
                      let v = Graph.fresh g in
                      let products = product_edges rule.conn (c, d) (x, x') v in
                      List.iter
                        (fun (e : Graph.edge) ->
                          ignore (Graph.add_edge g e.label e.src e.dst))
                        products;
                      ignore
                        (record_fired t k ~witness:[ e1; e2 ] ~vertex:v
                           ~products);
                      if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                      incr fired)
                triggers
            in
            match
              (try Ok (step ()) with
              | G.Cancel.Cancelled -> Error `Cancelled
              | Resilience.Failpoint.Injected site -> Error (`Faulted site))
            with
            | Error `Cancelled -> finish (i - 1) G.Cancelled
            | Error (`Faulted site) -> finish (i - 1) (G.Faulted site)
            | Ok () ->
                t.m_applications <- t.m_applications + !fired;
                if !fired = 0 then finish i G.Fixpoint
                else begin
                  match
                    if
                      G.is_unlimited governor
                      || not (G.has_size_budget governor)
                    then None
                    else
                      G.over_budget governor
                        ~elems:(List.length (Graph.vertices g))
                        ~facts:(Graph.size g)
                  with
                  | Some o -> finish i o
                  | None -> go (i + 1)
                end
          end
    in
    go (t.m_stage + 1)

  let create ?governor ?max_stages rules g =
    let t =
      {
        m_rules = Array.of_list rules;
        m_g = g;
        m_recs = Hashtbl.create 256;
        m_supports = Graph.Edge_tbl.create 256;
        m_uses = Graph.Edge_tbl.create 256;
        m_base = Graph.Edge_tbl.create 64;
        m_stage = 0;
        m_wm = 0;
        m_considered = 0;
        m_applications = 0;
        m_pending = false;
        m_grave = 0;
      }
    in
    Graph.iter_edges g (fun e -> Graph.Edge_tbl.replace t.m_base e ());
    let stats = run_loop ?governor ?max_stages t in
    (t, stats)

  let continue_ ?governor ?max_stages t = run_loop ?governor ?max_stages t

  type op = Insert of Label.t * int * int | Retract of Label.t * int * int

  let apply_edit ?governor ?max_stages t ops =
    if t.m_pending then
      invalid_arg "Rule.Maint.apply_edit: continuation pending (continue_)";
    compact t;
    let g = t.m_g in
    let net = Graph.Edge_tbl.create 16 in
    List.iter
      (fun op ->
        let e, v =
          match op with
          | Insert (l, s, d) -> (({ label = l; src = s; dst = d } : Graph.edge), true)
          | Retract (l, s, d) -> ({ label = l; src = s; dst = d }, false)
        in
        Graph.Edge_tbl.replace net e v)
      ops;
    let part want =
      Graph.Edge_tbl.fold
        (fun e v acc -> if v = want then e :: acc else acc)
        net []
      |> List.sort Graph.edge_compare
    in
    let retracts = part false and inserts = part true in
    (* counting cascade *)
    let killq = Queue.create () in
    let n_retracted = ref 0 and n_killed = ref 0 in
    let reexam = ref [] in
    List.iter
      (fun (e : Graph.edge) ->
        if Graph.Edge_tbl.mem t.m_base e then begin
          Graph.Edge_tbl.remove t.m_base e;
          incr n_retracted
        end;
        if Graph.mem_edge g e && not (supported t e) then Queue.add e killq)
      retracts;
    while not (Queue.is_empty killq) do
      let e = Queue.pop killq in
      if
        Graph.mem_edge g e
        && (not (Graph.Edge_tbl.mem t.m_base e))
        && not (supported t e)
      then begin
        ignore (Graph.remove_edge g e.label e.src e.dst);
        incr n_killed;
        match Graph.Edge_tbl.find_opt t.m_uses e with
        | None -> ()
        | Some rs ->
            List.iter
              (fun r ->
                if r.alive then begin
                  r.alive <- false;
                  reexam := r :: !reexam;
                  if r.fired then
                    List.iter
                      (fun (p : Graph.edge) ->
                        if
                          Graph.mem_edge g p
                          && (not (Graph.Edge_tbl.mem t.m_base p))
                          && not (supported t p)
                        then Queue.add p killq)
                      r.products
                end)
              !rs
      end
    done;
    (* DRed re-exam in canonical key order: re-withhold, re-fire (the
       recorded fresh vertex keeps its identity), or leave dead. *)
    let reexam =
      List.sort (fun r1 r2 -> compare r1.k r2.k) !reexam
    in
    let n_refired = ref 0 and n_rewithheld = ref 0 in
    List.iter
      (fun r ->
        if Hashtbl.find_opt t.m_recs r.k = Some r && not r.alive then begin
          let ri, dir, x, x' = r.k in
          let rule = t.m_rules.(ri) in
          let (a, b), (c, d) = sides rule dir in
          match find_pair g rule.conn (a, b) (x, x') with
          | None -> () (* inactive: stays dead *)
          | Some (w1, w2) -> (
              match find_pair g rule.conn (c, d) (x, x') with
              | Some (h1, h2) ->
                  r.fired <- false;
                  r.rhs_wit <- [ h1; h2 ];
                  r.alive <- true;
                  incr n_rewithheld;
                  add_edge_rec t.m_uses h1 r;
                  add_edge_rec t.m_uses h2 r
              | None ->
                  (if r.vertex < 0 then begin
                     let v = Graph.fresh g in
                     r.vertex <- v;
                     r.products <- product_edges rule.conn (c, d) (x, x') v
                   end);
                  List.iter
                    (fun (p : Graph.edge) ->
                      ignore (Graph.add_edge g p.label p.src p.dst))
                    r.products;
                  r.fired <- true;
                  r.alive <- true;
                  r.witness <- [ w1; w2 ];
                  incr n_refired;
                  List.iter (fun p -> add_edge_rec t.m_supports p r) r.products;
                  add_edge_rec t.m_uses w1 r;
                  add_edge_rec t.m_uses w2 r)
        end)
      reexam;
    (* fresh vertices of records that stayed dead leave the graph once
       isolated *)
    List.iter
      (fun r ->
        if (not r.alive) && r.vertex >= 0 then
          ignore (Graph.remove_vertex g r.vertex))
      reexam;
    (* A record still dead after re-exam has no lhs pair left — its key
       can never fire again as recorded (a later re-fire goes through
       the engine and builds a fresh record anyway).  Drop it from
       [m_recs] so the key table tracks the live instance, not the
       whole edit history, and count it into the graveyard so the
       support lists get swept too. *)
    List.iter
      (fun r ->
        if not r.alive then begin
          (match Hashtbl.find_opt t.m_recs r.k with
          | Some r' when r' == r -> Hashtbl.remove t.m_recs r.k
          | _ -> ());
          t.m_grave <- t.m_grave + 1
        end)
      reexam;
    (* insertions land past the pre-edit watermark *)
    let n_inserted = ref 0 in
    List.iter
      (fun (e : Graph.edge) ->
        Graph.Edge_tbl.replace t.m_base e ();
        if Graph.add_edge g e.label e.src e.dst then incr n_inserted)
      inserts;
    let run = run_loop ?governor ?max_stages t in
    {
      e_retracted = !n_retracted;
      e_inserted = !n_inserted;
      e_killed = !n_killed;
      e_refired = !n_refired;
      e_rewithheld = !n_rewithheld;
      e_run = run;
    }

  (* Internal-consistency audit for the tests. *)
  let check t =
    let g = t.m_g in
    let bad = ref [] in
    let fail fmt = Format.kasprintf (fun s -> bad := s :: !bad) fmt in
    Graph.iter_edges g (fun e ->
        if (not (Graph.Edge_tbl.mem t.m_base e)) && not (supported t e) then
          fail "unsupported live edge %a(%d->%d)" Label.pp e.label e.src e.dst);
    Graph.Edge_tbl.iter
      (fun (e : Graph.edge) () ->
        if not (Graph.mem_edge g e) then
          fail "base edge not live %a(%d->%d)" Label.pp e.label e.src e.dst)
      t.m_base;
    Hashtbl.iter
      (fun _ r ->
        if r.alive then
          List.iter
            (fun (e : Graph.edge) ->
              if not (Graph.mem_edge g e) then
                fail "dead recorded edge of alive record %a(%d->%d)" Label.pp
                  e.label e.src e.dst)
            (if r.fired then r.witness @ r.products else r.rhs_wit))
      t.m_recs;
    List.rev !bad
end
