(* Green-graph rewriting rules — the set L₂ of Section VI.

   I1 &·· I2 ] I3 &·· I4 is the equivalence
     ∀x,x' [∃y H(I1,x,y) ∧ H(I2,x',y)] ⇔ [∃y H(I3,x,y) ∧ H(I4,x',y)]
   and I1 /·· I2 ] I3 /·· I4 the same with shared sources.  The paper
   requires I1 ≠ I3 and I2 ≠ I4 and that labels 3, 4 never occur. *)

type conn = Amp | Slash

type t = {
  conn : conn;
  l1 : Label.t;
  l2 : Label.t;  (* left-hand side pair *)
  r1 : Label.t;
  r2 : Label.t;  (* right-hand side pair *)
  name : string;
}

let make ?(name = "") ?(check = true) conn (l1, l2) (r1, r2) =
  if check then begin
    List.iter Label.check_user [ l1; l2; r1; r2 ];
    if Label.equal l1 r1 || Label.equal l2 r2 then
      invalid_arg "Greengraph.Rule.make: requires I1 ≠ I3 and I2 ≠ I4"
  end;
  { conn; l1; l2; r1; r2; name }

let amp ?name (l1, l2) (r1, r2) = make ?name Amp (l1, l2) (r1, r2)
let slash ?name (l1, l2) (r1, r2) = make ?name Slash (l1, l2) (r1, r2)

let pp ppf t =
  let c = match t.conn with Amp -> "&··" | Slash -> "/··" in
  Fmt.pf ppf "%s%a %s %a ] %a %s %a"
    (if t.name = "" then "" else t.name ^ ": ")
    Label.pp t.l1 c Label.pp t.l2 Label.pp t.r1 c Label.pp t.r2

(* --- semantics -------------------------------------------------------- *)

let shared_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.dst | Slash -> e.Graph.src

let free_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.src | Slash -> e.Graph.dst

(* The edges with a given free endpoint and label (the shared-endpoint
   candidates follow from the connector), read off the (vertex, label)
   index. *)
let edges_at_free_with g conn x lab =
  match conn with
  | Amp -> Graph.out_edges_with g x lab
  | Slash -> Graph.in_edges_with g x lab

let edges_at_shared_with g conn y lab =
  match conn with
  | Amp -> Graph.in_edges_with g y lab
  | Slash -> Graph.out_edges_with g y lab

let c_considered = Obs.Metrics.counter "graph.triggers_considered"
let c_firings = Obs.Metrics.counter "graph.firings"
let c_pair_checks = Obs.Metrics.counter "graph.pair_checks"
let h_delta = Obs.Metrics.histogram "graph.delta_size"

(* A pair (x, x') matching labels (a, b) under [conn]: the two edges share
   their joint endpoint.  The partner edge is fully determined by e1's
   shared endpoint, so one set-membership test replaces a scan of every
   edge at that (possibly high-degree) vertex. *)
let pair_present g conn (a, b) (x, x') =
  if !Obs.metrics_on then Obs.Metrics.incr c_pair_checks;
  List.exists
    (fun (e1 : Graph.edge) ->
      let y = shared_of conn e1 in
      let e2 : Graph.edge =
        match conn with
        | Amp -> { label = b; src = x'; dst = y }
        | Slash -> { label = b; src = y; dst = x' }
      in
      Graph.mem_edge g e2)
    (edges_at_free_with g conn x a)

(* Active triggers of one direction: lhs pair present at (x,x'), rhs pair
   absent.  Each rule is an equivalence, so [triggers] covers both
   directions. *)
let directed_triggers g conn (a, b) (c, d) =
  let hits = ref [] in
  List.iter
    (fun (e1 : Graph.edge) ->
      List.iter
        (fun (e2 : Graph.edge) ->
          let x = free_of conn e1 and x' = free_of conn e2 in
          if not (pair_present g conn (c, d) (x, x')) then
            hits := ((c, x), (d, x')) :: !hits)
        (edges_at_shared_with g conn (shared_of conn e1) b))
    (Graph.with_label g a);
  List.rev !hits

let triggers rule g =
  directed_triggers g rule.conn (rule.l1, rule.l2) (rule.r1, rule.r2)
  @ directed_triggers g rule.conn (rule.r1, rule.r2) (rule.l1, rule.l2)

let fire rule g ((c, x), (d, x')) =
  let v = Graph.fresh g in
  match rule.conn with
  | Amp ->
      ignore (Graph.add_edge g c x v);
      ignore (Graph.add_edge g d x' v)
  | Slash ->
      ignore (Graph.add_edge g c v x);
      ignore (Graph.add_edge g d v x')

let models rules g = List.for_all (fun r -> triggers r g = []) rules

let find_violation rules g =
  List.find_map
    (fun r -> match triggers r g with [] -> None | t :: _ -> Some (r, t))
    rules

module G = Resilience.Governor

type stats = {
  stages : int;
  applications : int;
  triggers_considered : int;
  fixpoint : bool; (* outcome = Fixpoint, kept for callers *)
  outcome : G.outcome;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "stages=%d applications=%d triggers_considered=%d fixpoint=%b outcome=%a"
    s.stages s.applications s.triggers_considered s.fixpoint G.pp_outcome
    s.outcome

(* Trigger-discovery engines, mirroring [Tgd.Chase]: [`Stage] rescans
   every label bucket each stage; [`Seminaive] (default) only examines
   lhs pairs using at least one edge added since the previous stage;
   [`Par] is semi-naive with the delta sharded over a domain pool and a
   canonical sorted merge, still bit-identical.
   Both conditions of a trigger are monotone (lhs pairs and rhs pairs are
   never removed), so a pair wholly inside old edges was examined at an
   earlier stage and either fired (its rhs pair now exists) or was
   dropped because the rhs pair existed — inactive forever either way. *)
type engine = [ `Stage | `Seminaive | `Par ]

(* A stage's delta, indexed by label once, so the per-rule loops below
   look their candidate edges up instead of rescanning the whole delta
   for each of the 2·|rules| directions. *)
let index_delta delta_edges =
  let tbl = Graph.Label_tbl.create 16 in
  List.iter
    (fun (e : Graph.edge) ->
      let r =
        match Graph.Label_tbl.find_opt tbl e.Graph.label with
        | Some r -> r
        | None ->
            let r = ref [] in
            Graph.Label_tbl.replace tbl e.Graph.label r;
            r
      in
      r := e :: !r)
    delta_edges;
  tbl

let delta_with tbl lab =
  match Graph.Label_tbl.find_opt tbl lab with Some r -> !r | None -> []

(* Collect one stage's triggers: for each rule and direction, the
   deduplicated (x, x') pairs with an lhs pair present (through at least
   one delta edge in semi-naive mode) and the rhs pair absent, sorted into
   the canonical firing order (rule, direction, x, x') shared by both
   engines so their fresh vertices coincide. *)
let collect_stage ?delta ~considered rules g =
  let out = ref [] in
  List.iteri
    (fun ri rule ->
      List.iteri
        (fun dir ((a, b), (c, d)) ->
          let seen = Hashtbl.create 32 in
          let consider x x' =
            (* cooperative cancellation: the scan is read-only here *)
            if !G.Cancel.poll_on then G.Cancel.poll ();
            if not (Hashtbl.mem seen (x, x')) then begin
              Hashtbl.replace seen (x, x') ();
              incr considered;
              if !Obs.metrics_on then Obs.Metrics.incr c_considered;
              if not (pair_present g rule.conn (c, d) (x, x')) then
                out := (ri, dir, x, x', rule, (c, d)) :: !out
            end
          in
          let join_from (e1 : Graph.edge) =
            List.iter
              (fun (e2 : Graph.edge) ->
                consider (free_of rule.conn e1) (free_of rule.conn e2))
              (edges_at_shared_with g rule.conn (shared_of rule.conn e1) b)
          in
          match delta with
          | None -> List.iter join_from (Graph.with_label g a)
          | Some dix ->
              (* lhs pairs with the first edge in the delta … *)
              List.iter join_from (delta_with dix a);
              (* … and with the second edge in the delta *)
              List.iter
                (fun (e2 : Graph.edge) ->
                  List.iter
                    (fun (e1 : Graph.edge) ->
                      consider (free_of rule.conn e1) (free_of rule.conn e2))
                    (edges_at_shared_with g rule.conn (shared_of rule.conn e2)
                       a))
                (delta_with dix b))
        [
          ((rule.l1, rule.l2), (rule.r1, rule.r2));
          ((rule.r1, rule.r2), (rule.l1, rule.l2));
        ])
    rules;
  List.sort
    (fun (r1, d1, x1, y1, _, _) (r2, d2, x2, y2, _, _) ->
      compare (r1, d1, x1, y1) (r2, d2, x2, y2))
    !out
  |> List.map (fun (_, _, x, x', rule, (c, d)) -> (rule, ((c, x), (d, x'))))

(* One direction's delta-restricted candidate pairs: lhs pairs using at
   least one delta edge, in the same join order as [collect_stage]'s
   [Some dix] branch.  Shared by the par engine's sequential and stolen
   scans. *)
let iter_delta_pairs g conn ~dix (a, b) consider =
  (* lhs pairs with the first edge in the delta … *)
  List.iter
    (fun (e1 : Graph.edge) ->
      List.iter
        (fun (e2 : Graph.edge) ->
          consider (free_of conn e1) (free_of conn e2))
        (edges_at_shared_with g conn (shared_of conn e1) b))
    (delta_with dix a);
  (* … and with the second edge in the delta *)
  List.iter
    (fun (e2 : Graph.edge) ->
      List.iter
        (fun (e1 : Graph.edge) ->
          consider (free_of conn e1) (free_of conn e2))
        (edges_at_shared_with g conn (shared_of conn e2) a))
    (delta_with dix b)

(* Packed integer keys for the par engine's hot tables.  A label's code
   is [None -> 0 | Some i -> i + 1]; vertex ids are bounded by
   [Graph.next_vertex] (every registered id is below it, and triggers
   only mention stage-start vertices).  Structural hashing of tuple keys
   was measured to cost more than the work the tables save, so the par
   paths pack their keys into one tagged int when the bounds fit and
   fall back to the structural-key paths (identical results) when they
   would overflow. *)
let lab_code : Label.t -> int = function None -> 0 | Some i -> i + 1

(* [1 + max code] over the rule set's labels, or [0] when some code is
   negative (user labels are nonnegative, but [make ~check:false] does
   not enforce it) — [0] means "don't pack". *)
let lab_bound rules =
  List.fold_left
    (fun m r ->
      List.fold_left
        (fun m l ->
          let c = lab_code l in
          if c < 0 || m < 0 then -1 else max m (c + 1))
        m
        [ r.l1; r.l2; r.r1; r.r2 ])
    1 rules
  |> max 0

(* As [collect_stage ~delta] but with the per-direction (x, x') dedup
   key packed into one int.  Candidate order, counts, surviving triggers
   and the canonical sort are unchanged, so the result is the
   [collect_stage] one bit for bit. *)
let collect_stage_packed ~dix ~considered rules g =
  let n0 = Graph.next_vertex g in
  if n0 <= 0 || n0 > 1 lsl 30 then collect_stage ~delta:dix ~considered rules g
  else begin
    let out = ref [] in
    List.iteri
      (fun ri rule ->
        List.iteri
          (fun dir ((a, b), (c, d)) ->
            let seen = Hashtbl.create 32 in
            let consider x x' =
              if !G.Cancel.poll_on then G.Cancel.poll ();
              let key = (x * n0) + x' in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                incr considered;
                if !Obs.metrics_on then Obs.Metrics.incr c_considered;
                if not (pair_present g rule.conn (c, d) (x, x')) then
                  out := (ri, dir, x, x', rule, (c, d)) :: !out
              end
            in
            iter_delta_pairs g rule.conn ~dix (a, b) consider)
          [
            ((rule.l1, rule.l2), (rule.r1, rule.r2));
            ((rule.r1, rule.r2), (rule.l1, rule.l2));
          ])
      rules;
    List.sort
      (fun (r1, d1, x1, y1, _, _) (r2, d2, x2, y2, _, _) ->
        compare (r1, d1, x1, y1) (r2, d2, x2, y2))
      !out
    |> List.map (fun (_, _, x, x', rule, (c, d)) -> (rule, ((c, x), (d, x'))))
  end

(* The parallel collector: the delta is indexed by label once (shared,
   read-only), and each (rule, direction) scan becomes a task on a
   work-stealing pool; workers enumerate raw lhs-pair candidates
   (x, x') through the index without deduplication or rhs checks
   (reading the graph only), and the merge sorts the candidates into
   the canonical (rule, direction, x, x') order, deduplicates, counts
   and rhs-checks sequentially.  The deduplicated candidate set equals
   the sequential semi-naive one, so stats, surviving triggers and the
   firing order are bit-identical to [`Seminaive].  With one worker and
   no active failpoints the pipeline collapses to the sequential
   indexed scan — no pool, no merge. *)
let c_merge_ms = Obs.Metrics.counter "par.merge_ms"
let c_shards = Obs.Metrics.counter "par.shards"
let c_par_retries = Obs.Metrics.counter "resilience.par_retries"
let c_par_degraded = Obs.Metrics.counter "resilience.par_degraded"

let collect_stage_par ~jobs ~considered rules g delta_edges =
  if jobs <= 1 && not (Resilience.Failpoint.active ()) then begin
    (* one worker: the stage is its own single shard *)
    if !Obs.metrics_on then Obs.Metrics.incr c_shards;
    collect_stage_packed ~dix:(index_delta delta_edges) ~considered rules g
  end
  else begin
    let dix = index_delta delta_edges in
    let dirs =
      List.concat
        (List.mapi
           (fun ri rule ->
             [
               (ri, 0, rule, (rule.l1, rule.l2), (rule.r1, rule.r2));
               (ri, 1, rule, (rule.r1, rule.r2), (rule.l1, rule.l2));
             ])
           rules)
    in
    let dira = Array.of_list dirs in
    let ndirs = Array.length dira in
    (* One direction's raw candidates off the delta index — the unit of
       work-stealing. *)
    let scan_dir (ri, dir, rule, (a, b), _) =
      let acc = ref [] in
      iter_delta_pairs g rule.conn ~dix (a, b) (fun x x' ->
          acc := (ri, dir, x, x') :: !acc);
      List.rev !acc
    in
    (* Per-task "par.shard" fault decisions are drawn before the workers
       spawn (the decision stream must not be raced across domains); a
       faulted scan is retried once, then degrades to the sequential
       indexed collection.  Both rungs produce the semi-naive candidate
       set, so the stage stays bit-identical to [`Seminaive]. *)
    let scan_stolen () =
      let faults = Array.make ndirs false in
      if Resilience.Failpoint.active () then
        for w = 0 to ndirs - 1 do
          faults.(w) <- Resilience.Failpoint.fire "par.shard"
        done;
      Relational.Pool.run_stealing ?steals:None ~jobs:(min jobs ndirs) ndirs
        (fun w ->
          if faults.(w) then raise (Resilience.Failpoint.Injected "par.shard");
          scan_dir dira.(w))
    in
    match
      (try Some (scan_stolen ()) with
      | Resilience.Failpoint.Injected "par.shard" -> (
          if !Obs.metrics_on then Obs.Metrics.incr c_par_retries;
          try Some (scan_stolen ()) with
          | Resilience.Failpoint.Injected "par.shard" ->
              if !Obs.metrics_on then Obs.Metrics.incr c_par_degraded;
              None))
    with
    | None -> collect_stage ~delta:dix ~considered rules g
    | Some raw ->
        let t0 = Obs.Clock.now_s () in
        let all = List.sort compare (List.concat (Array.to_list raw)) in
        let seen = Hashtbl.create 64 in
        let out = ref [] in
        List.iter
          (fun ((ri, dir, x, x') as key) ->
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              incr considered;
              if !Obs.metrics_on then Obs.Metrics.incr c_considered;
              let _, _, rule, _, (c, d) = dira.((ri * 2) + dir) in
              if not (pair_present g rule.conn (c, d) (x, x')) then
                out := (rule, ((c, x), (d, x'))) :: !out
            end)
          all;
        if !Obs.metrics_on then
          Obs.Metrics.add c_merge_ms
            (int_of_float ((Obs.Clock.now_s () -. t0) *. 1000.));
        List.rev !out
  end

(* A resumable graph-chase snapshot.  The graph chase keeps no persistent
   dedup state across stages (its trigger dedup is per stage), so a
   snapshot is the graph (a journal-order-preserving Marshal clone), the
   watermark and the counters.  [gsnap_stage] is the last completed
   stage; resuming continues at [gsnap_stage + 1] with absolute stage
   numbering. *)
type snapshot = {
  gsnap_engine : engine;
  gsnap_stage : int;
  gsnap_wm : int;
  gsnap_considered : int;
  gsnap_applications : int;
  gsnap_rules : t list; (* plain data; compared to reject mismatched resumes *)
  gsnap_graph : Graph.t;
}

let chase ?(engine = `Seminaive) ?jobs ?(governor = G.unlimited)
    ?(max_stages = max_int) ?(stop = fun _ -> false) ?(snapshot_every = 1)
    ?on_snapshot ?from rules g =
  (match from with
  | Some s ->
      if s.gsnap_rules <> rules then
        invalid_arg "Rule.resume: rule list differs from the snapshot's"
  | None -> ());
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Relational.Pool.default_jobs ()
  in
  let start_stage, wm0, considered0, apps0 =
    match from with
    | Some s -> (s.gsnap_stage, s.gsnap_wm, s.gsnap_considered, s.gsnap_applications)
    | None -> (0, 0, 0, 0)
  in
  let applications = ref apps0 in
  let considered = ref considered0 in
  let wm = ref wm0 in
  let last_snap = ref (-1) in
  let emit_snapshot i =
    match on_snapshot with
    | Some f when i > !last_snap ->
        last_snap := i;
        f
          {
            gsnap_engine = engine;
            gsnap_stage = i;
            gsnap_wm = !wm;
            gsnap_considered = !considered;
            gsnap_applications = !applications;
            gsnap_rules = rules;
            gsnap_graph = Resilience.Checkpoint.clone g;
          }
    | _ -> ()
  in
  let finish ?(snap = true) i outcome =
    if snap then emit_snapshot i;
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      fixpoint = (outcome = G.Fixpoint);
      outcome;
    }
  in
  let max_stages = min max_stages governor.G.max_stages in
  let rec go i =
    match G.interrupted governor with
    | Some o -> finish (i - 1) o
    | None ->
        if i > max_stages then finish (i - 1) (G.Budget G.Stages)
        else begin
          (* collect the triggers against the stage-start graph, then fire
             those still active (mirroring the chase of Section II.C) *)
          let n_triggers = ref 0 and fired = ref 0 in
          let step () =
            let collected =
              G.with_scope governor (fun () ->
                  match engine with
                  | `Stage ->
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (Graph.size g);
                      collect_stage ~considered rules g
                  | `Seminaive ->
                      let d = Graph.delta_since g !wm in
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (List.length d);
                      let c =
                        collect_stage ~delta:(index_delta d) ~considered rules
                          g
                      in
                      (* advance only after a completed scan: a cancelled
                         scan must not move the watermark past the last
                         resumable boundary *)
                      wm := Graph.watermark g;
                      c
                  | `Par ->
                      let d = Graph.delta_since g !wm in
                      if !Obs.metrics_on then
                        Obs.Metrics.observe h_delta (List.length d);
                      let c = collect_stage_par ~jobs ~considered rules g d in
                      wm := Graph.watermark g;
                      c)
            in
            n_triggers := List.length collected;
            match engine with
            | `Stage | `Seminaive ->
                List.iter
                  (fun (rule, ((c, x), (d, x'))) ->
                    if not (pair_present g rule.conn (c, d) (x, x')) then begin
                      fire rule g ((c, x), (d, x'));
                      if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                      incr fired
                    end)
                  collected
            | `Par ->
                (* The fire-time re-check, O(1) per trigger.  Every
                   collected trigger's rhs pair was absent against the
                   stage-start graph, and a [fire] only adds edges
                   touching its own fresh vertex, which no older edge
                   reaches — so a pair at fire time is either wholly old
                   (absent: it was checked at collection) or wholly among
                   the two edges of one single firing this stage.  A
                   table of the pairs derivable from each firing's edge
                   pair {c: x~v, d: x'~v} therefore decides the re-check
                   exactly: present iff probed.  Bit-identical outcomes
                   to the reference [pair_present] re-check. *)
                (* Keys are packed ints when the label/vertex bounds fit
                   in a tagged word (they do on every realistic rule
                   set); otherwise structural 5-tuples — same decisions,
                   only the hashing cost differs.  [n0] is taken before
                   any firing, so every trigger vertex is below it. *)
                let n0 = Graph.next_vertex g in
                let lb = lab_bound rules in
                let packed =
                  lb > 0 && n0 > 0
                  && float_of_int lb *. float_of_int lb *. float_of_int n0
                     *. float_of_int n0 *. 2.
                     < 4.0e18
                in
                if packed then begin
                  let fired_pairs = Hashtbl.create 64 in
                  let pk conn c x d x' =
                    let cb = match conn with Amp -> 0 | Slash -> 1 in
                    ((((((cb * lb) + lab_code c) * lb) + lab_code d) * n0 + x)
                     * n0)
                    + x'
                  in
                  List.iter
                    (fun (rule, ((c, x), (d, x'))) ->
                      if not (Hashtbl.mem fired_pairs (pk rule.conn c x d x'))
                      then begin
                        fire rule g ((c, x), (d, x'));
                        Hashtbl.replace fired_pairs (pk rule.conn c x d x') ();
                        Hashtbl.replace fired_pairs (pk rule.conn d x' c x) ();
                        Hashtbl.replace fired_pairs (pk rule.conn c x c x) ();
                        Hashtbl.replace fired_pairs (pk rule.conn d x' d x') ();
                        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                        incr fired
                      end)
                    collected
                end
                else begin
                  let fired_pairs = Hashtbl.create 64 in
                  List.iter
                    (fun (rule, ((c, x), (d, x'))) ->
                      if not (Hashtbl.mem fired_pairs (rule.conn, c, x, d, x'))
                      then begin
                        fire rule g ((c, x), (d, x'));
                        List.iter
                          (fun k -> Hashtbl.replace fired_pairs k ())
                          [
                            (rule.conn, c, x, d, x');
                            (rule.conn, d, x', c, x);
                            (rule.conn, c, x, c, x);
                            (rule.conn, d, x', d, x');
                          ];
                        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
                        incr fired
                      end)
                    collected
                end
          in
          match
            Obs.Trace.with_span "graph.stage"
              ~args:(fun () ->
                [ ("stage", i); ("triggers", !n_triggers); ("fired", !fired) ])
              (fun () ->
                try Ok (step ()) with
                | G.Cancel.Cancelled -> Error `Cancelled
                | Resilience.Failpoint.Injected site -> Error (`Faulted site))
          with
          | Error `Cancelled -> finish ~snap:false (i - 1) G.Cancelled
          | Error (`Faulted site) -> finish ~snap:false (i - 1) (G.Faulted site)
          | Ok () ->
              applications := !applications + !fired;
              if !fired = 0 then finish i G.Fixpoint
              else begin
                if (i - start_stage) mod snapshot_every = 0 then
                  emit_snapshot i;
                match
                  (* vertex/edge counts are O(n) on graphs: only pay for
                     them under a real governor *)
                  if G.is_unlimited governor || not (G.has_size_budget governor)
                  then None
                  else
                    G.over_budget governor
                      ~elems:(List.length (Graph.vertices g))
                      ~facts:(Graph.size g)
                with
                | Some o -> finish i o
                | None ->
                    if stop g then finish i (G.Budget G.Stop) else go (i + 1)
              end
        end
  in
  Obs.Trace.with_span
    (match engine with
    | `Stage -> "graph.chase(stage)"
    | `Seminaive -> "graph.chase(seminaive)"
    | `Par -> "graph.chase(par)")
    (fun () -> go (start_stage + 1))

(* Continue a checkpointed graph chase on the snapshot's own graph (clone
   the snapshot first to keep it reusable): prefix + resume is
   bit-identical to one uninterrupted run with the same absolute
   [max_stages]. *)
let resume ?jobs ?governor ?max_stages ?stop ?snapshot_every ?on_snapshot
    rules snap =
  let g = snap.gsnap_graph in
  let stats =
    chase ~engine:snap.gsnap_engine ?jobs ?governor ?max_stages ?stop
      ?snapshot_every ?on_snapshot ~from:snap rules g
  in
  (stats, g)

(* Definition 11 for L₂, bounded: chase D_I and watch for a 1-2 pattern. *)
let leads_to_red_spider ?(max_stages = 16) rules =
  let g, _, _ = Graph.d_i () in
  let stats = chase ~max_stages ~stop:Graph.has_12_pattern rules g in
  if Graph.has_12_pattern g then `Leads (stats, g)
  else if stats.fixpoint then `Does_not_lead (stats, g)
  else `Unknown (stats, g)
