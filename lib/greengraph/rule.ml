(* Green-graph rewriting rules — the set L₂ of Section VI.

   I1 &·· I2 ] I3 &·· I4 is the equivalence
     ∀x,x' [∃y H(I1,x,y) ∧ H(I2,x',y)] ⇔ [∃y H(I3,x,y) ∧ H(I4,x',y)]
   and I1 /·· I2 ] I3 /·· I4 the same with shared sources.  The paper
   requires I1 ≠ I3 and I2 ≠ I4 and that labels 3, 4 never occur. *)

type conn = Amp | Slash

type t = {
  conn : conn;
  l1 : Label.t;
  l2 : Label.t;  (* left-hand side pair *)
  r1 : Label.t;
  r2 : Label.t;  (* right-hand side pair *)
  name : string;
}

let make ?(name = "") ?(check = true) conn (l1, l2) (r1, r2) =
  if check then begin
    List.iter Label.check_user [ l1; l2; r1; r2 ];
    if Label.equal l1 r1 || Label.equal l2 r2 then
      invalid_arg "Greengraph.Rule.make: requires I1 ≠ I3 and I2 ≠ I4"
  end;
  { conn; l1; l2; r1; r2; name }

let amp ?name (l1, l2) (r1, r2) = make ?name Amp (l1, l2) (r1, r2)
let slash ?name (l1, l2) (r1, r2) = make ?name Slash (l1, l2) (r1, r2)

let pp ppf t =
  let c = match t.conn with Amp -> "&··" | Slash -> "/··" in
  Fmt.pf ppf "%s%a %s %a ] %a %s %a"
    (if t.name = "" then "" else t.name ^ ": ")
    Label.pp t.l1 c Label.pp t.l2 Label.pp t.r1 c Label.pp t.r2

(* --- semantics -------------------------------------------------------- *)

let shared_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.dst | Slash -> e.Graph.src

let free_of conn (e : Graph.edge) =
  match conn with Amp -> e.Graph.src | Slash -> e.Graph.dst

(* The edges with a given free endpoint (the shared-endpoint candidates
   follow from the connector). *)
let edges_at_free g conn x =
  match conn with Amp -> Graph.out_edges g x | Slash -> Graph.in_edges g x

let edges_at_shared g conn y =
  match conn with Amp -> Graph.in_edges g y | Slash -> Graph.out_edges g y

(* A pair (x, x') matching labels (a, b) under [conn]: the two edges share
   their joint endpoint. *)
let pair_present g conn (a, b) (x, x') =
  List.exists
    (fun (e1 : Graph.edge) ->
      Label.equal e1.Graph.label a
      && List.exists
           (fun (e2 : Graph.edge) ->
             Label.equal e2.Graph.label b && free_of conn e2 = x')
           (edges_at_shared g conn (shared_of conn e1)))
    (edges_at_free g conn x)

(* Active triggers of one direction: lhs pair present at (x,x'), rhs pair
   absent.  Each rule is an equivalence, so [triggers] covers both
   directions. *)
let directed_triggers g conn (a, b) (c, d) =
  let hits = ref [] in
  List.iter
    (fun (e1 : Graph.edge) ->
      List.iter
        (fun (e2 : Graph.edge) ->
          if Label.equal e2.Graph.label b then begin
            let x = free_of conn e1 and x' = free_of conn e2 in
            if not (pair_present g conn (c, d) (x, x')) then
              hits := ((c, x), (d, x')) :: !hits
          end)
        (edges_at_shared g conn (shared_of conn e1)))
    (Graph.with_label g a);
  List.rev !hits

let triggers rule g =
  directed_triggers g rule.conn (rule.l1, rule.l2) (rule.r1, rule.r2)
  @ directed_triggers g rule.conn (rule.r1, rule.r2) (rule.l1, rule.l2)

let fire rule g ((c, x), (d, x')) =
  let v = Graph.fresh g in
  match rule.conn with
  | Amp ->
      ignore (Graph.add_edge g c x v);
      ignore (Graph.add_edge g d x' v)
  | Slash ->
      ignore (Graph.add_edge g c v x);
      ignore (Graph.add_edge g d v x')

let models rules g = List.for_all (fun r -> triggers r g = []) rules

let find_violation rules g =
  List.find_map
    (fun r -> match triggers r g with [] -> None | t :: _ -> Some (r, t))
    rules

type stats = { stages : int; applications : int; fixpoint : bool }

let chase ?(max_stages = max_int) ?(stop = fun _ -> false) rules g =
  let applications = ref 0 in
  let rec go i =
    if i > max_stages then
      { stages = i - 1; applications = !applications; fixpoint = false }
    else begin
      (* collect all triggers against the stage-start graph, then fire
         those still active (mirroring the chase of Section II.C) *)
      let collected =
        List.concat_map (fun rule -> List.map (fun t -> (rule, t)) (triggers rule g)) rules
      in
      let fired = ref 0 in
      List.iter
        (fun (rule, ((c, x), (d, x'))) ->
          if not (pair_present g rule.conn (c, d) (x, x')) then begin
            fire rule g ((c, x), (d, x'));
            incr fired
          end)
        collected;
      applications := !applications + !fired;
      if !fired = 0 then
        { stages = i; applications = !applications; fixpoint = true }
      else if stop g then
        { stages = i; applications = !applications; fixpoint = false }
      else go (i + 1)
    end
  in
  go 1

(* Definition 11 for L₂, bounded: chase D_I and watch for a 1-2 pattern. *)
let leads_to_red_spider ?(max_stages = 16) rules =
  let g, _, _ = Graph.d_i () in
  let stats = chase ~max_stages ~stop:Graph.has_12_pattern rules g in
  if Graph.has_12_pattern g then `Leads (stats, g)
  else if stats.fixpoint then `Does_not_lead (stats, g)
  else `Unknown (stats, g)
