(* The incremental-maintenance oracle: seeded random edit scripts,
   bit-diffed against the from-scratch chase.

   Per case: a random instance (Gen.instance) is chased under
   maintenance tracking; a seeded script of base-fact insertions and
   retractions is pushed through [Tgd.Chase.Maint.apply_edit]; after
   every script the maintained structure must (a) pass the internal
   support audit, (b) model the dependencies, and (c) be hom-equivalent
   — with the generated base elements pinned — to a from-scratch chase
   of the edited base with the same engine.  A graph twin does the same
   for [Greengraph.Rule.Maint] over random rule sets.

   Random dependency sets routinely diverge; runs cut by the stage
   budget are counted [incomparable] and skipped, not diffed — a capped
   maintained run and a capped scratch run need not align stage for
   stage.  Cases alternate between the two delta engines. *)

open Relational

type report = {
  seed : int;
  cases : int;
  scripts : int;        (* edit scripts actually diffed *)
  edits : int;          (* individual ops across those scripts *)
  incomparable : int;   (* cases skipped: no fixpoint within budget *)
  violations : (int * string list) list;
}

let fail violations fmt =
  Format.kasprintf (fun s -> violations := s :: !violations) fmt

(* --- scripts over a generated instance --------------------------------- *)

(* An op over the generated base: retract one of the original facts, or
   insert a fresh random fact over the instance's own elements (ids
   [0 .. n_elems + #consts), allocated before any chase null — inserted
   facts never collide with invented elements). *)
let random_op r (inst : Gen.instance) pool =
  let n = inst.Gen.n_elems + List.length inst.Gen.consts in
  if Gen.bool r && pool <> [] then Tgd.Chase.Maint.Retract (Gen.pick r pool)
  else
    let sym = Gen.pick r inst.Gen.signature in
    let args = Array.init (Symbol.arity sym) (fun _ -> Gen.int r n) in
    let f = Fact.make sym args in
    if Gen.bool r then Tgd.Chase.Maint.Insert f
    else Tgd.Chase.Maint.Retract f

let random_script r inst pool =
  List.init (Gen.range r 1 4) (fun _ -> random_op r inst pool)

(* The base fact set after a script, for the scratch replay: last op on
   a fact wins. *)
let replay_ops d ops =
  List.iter
    (function
      | Tgd.Chase.Maint.Insert f -> ignore (Structure.add_fact d f)
      | Tgd.Chase.Maint.Retract f -> ignore (Structure.retract_fact d f))
    ops

(* Hom-equivalence with the generated elements pinned (they exist on
   both sides by construction; retraction may garbage-collect one, so
   pin only those still present in both). *)
let equiv ~base a b =
  let init =
    List.filter_map
      (fun el ->
        if
          Structure.elem_stage a el <> None && Structure.elem_stage b el <> None
        then Some (el, el)
        else None)
      (Structure.elems base)
  in
  Hom.exists_between ~init a b && Hom.exists_between ~init b a

(* --- one TGD case ------------------------------------------------------- *)

(* Divergent dep sets are routine; cut them early with both stage fuel
   and size budgets (the Diff oracle's shape).  A fresh governor per run
   — deadlines and budgets are per-run state. *)
let max_stages = 8

let gov () =
  Resilience.Governor.make ~max_stages ~max_elems:120 ~max_facts:400 ()

let tgd_case r ~engine violations counters =
  let scripts, edits, incomparable = counters in
  let inst = Gen.instance r in
  let base = Gen.build inst in
  let m, s0 =
    Tgd.Chase.Maint.create ~engine ~governor:(gov ()) inst.Gen.deps
      (Structure.copy base)
  in
  if not s0.Tgd.Chase.fixpoint then incr incomparable
  else begin
    let n_scripts = Gen.range r 1 3 in
    let applied = ref [] in
    (try
       for si = 0 to n_scripts - 1 do
         let pool =
           List.filter
             (fun f -> Structure.mem (Tgd.Chase.Maint.structure m) f)
             (Tgd.Chase.Maint.base_facts m)
         in
         let script = random_script r inst pool in
         let st = Tgd.Chase.Maint.apply_edit ~governor:(gov ()) m script in
         applied := !applied @ script;
         if not st.Tgd.Chase.Maint.e_run.Tgd.Chase.fixpoint then begin
           incr incomparable;
           raise Exit
         end;
         incr scripts;
         edits := !edits + List.length script;
         List.iter
           (fun v -> fail violations "[tgd %d] audit: %s" si v)
           (Tgd.Chase.Maint.check m);
         let d = Tgd.Chase.Maint.structure m in
         if not (Tgd.Chase.models inst.Gen.deps d) then
           fail violations "[tgd %d] maintained structure violates deps" si;
         let scr = Structure.copy base in
         replay_ops scr !applied;
         let ss =
           Tgd.Chase.run
             ~engine:(engine :> Tgd.Chase.engine)
             ~governor:(gov ()) inst.Gen.deps scr
         in
         if not ss.Tgd.Chase.fixpoint then begin
           incr incomparable;
           raise Exit
         end;
         if not (equiv ~base d scr) then
           fail violations
             "[tgd %d] maintained structure not hom-equivalent to scratch \
              (%d facts vs %d)"
             si (Structure.size d) (Structure.size scr)
       done
     with Exit -> ())
  end

(* --- one graph case ----------------------------------------------------- *)

module GG = Greengraph.Graph
module GR = Greengraph.Rule

let graph_equiv ~base a b =
  let sa = Greengraph.Bridge.to_structure a
  and sb = Greengraph.Bridge.to_structure b in
  let init =
    List.filter_map
      (fun v ->
        if
          Structure.elem_stage sa v <> None && Structure.elem_stage sb v <> None
        then Some (v, v)
        else None)
      (GG.vertices base)
  in
  Hom.exists_between ~init sa sb && Hom.exists_between ~init sb sa

(* Inserted endpoints come from the pristine base's own vertices — a
   raw id range could collide with a chase-invented vertex on the
   maintained side while naming a plain new vertex on the scratch side,
   making the "same" edit mean two different things. *)
let random_graph_op r (case : Gen.graph_case) base_vertices pool =
  let labels =
    List.concat_map
      (fun (ru : GR.t) -> [ ru.GR.l1; ru.GR.l2; ru.GR.r1; ru.GR.r2 ])
      case.Gen.rules
    |> List.sort_uniq Greengraph.Label.compare
  in
  if Gen.bool r && pool <> [] then
    let (e : GG.edge) = Gen.pick r pool in
    GR.Maint.Retract (e.GG.label, e.GG.src, e.GG.dst)
  else
    let l = Gen.pick r labels in
    let s = Gen.pick r base_vertices and d = Gen.pick r base_vertices in
    if Gen.bool r then GR.Maint.Insert (l, s, d) else GR.Maint.Retract (l, s, d)

let graph_case r violations counters =
  let scripts, edits, incomparable = counters in
  let case = Gen.graph_case r in
  let base = Gen.build_graph case in
  let base_vertices = List.sort compare (GG.vertices base) in
  let engine = if Gen.bool r then `Seminaive else `Par in
  let m, s0 = GR.Maint.create ~governor:(gov ()) case.Gen.rules (GG.copy base) in
  if not s0.GR.fixpoint then incr incomparable
  else begin
    let n_scripts = Gen.range r 1 3 in
    let applied = ref [] in
    (try
       for si = 0 to n_scripts - 1 do
         let pool =
           List.filter (GG.mem_edge (GR.Maint.graph m)) (GG.edges base)
         in
         let script =
           List.init (Gen.range r 1 4) (fun _ ->
               random_graph_op r case base_vertices pool)
         in
         let st = GR.Maint.apply_edit ~governor:(gov ()) m script in
         applied := !applied @ script;
         if not st.GR.Maint.e_run.GR.fixpoint then begin
           incr incomparable;
           raise Exit
         end;
         incr scripts;
         edits := !edits + List.length script;
         List.iter
           (fun v -> fail violations "[graph %d] audit: %s" si v)
           (GR.Maint.check m);
         let g = GR.Maint.graph m in
         if not (GR.models case.Gen.rules g) then
           fail violations "[graph %d] maintained graph violates rules" si;
         let scr = GG.copy base in
         List.iter
           (function
             | GR.Maint.Insert (l, s, d) -> ignore (GG.add_edge scr l s d)
             | GR.Maint.Retract (l, s, d) -> ignore (GG.remove_edge scr l s d))
           !applied;
         let ss = GR.chase ~engine ~governor:(gov ()) case.Gen.rules scr in
         if not ss.GR.fixpoint then begin
           incr incomparable;
           raise Exit
         end;
         if not (graph_equiv ~base g scr) then
           fail violations
             "[graph %d] maintained graph not hom-equivalent to scratch \
              (%d edges vs %d)"
             si (GG.size g) (GG.size scr)
       done
     with Exit -> ())
  end

(* --- the campaign ------------------------------------------------------- *)

let run_cases ?(from_case = 0) ~seed ~cases () =
  let scripts = ref 0 and edits = ref 0 and incomparable = ref 0 in
  let all_violations = ref [] in
  for case = from_case to from_case + cases - 1 do
    let r = Gen.case_rng ~seed ~case in
    let violations = ref [] in
    let engine = if case mod 2 = 0 then `Seminaive else `Par in
    let counters = (scripts, edits, incomparable) in
    tgd_case r ~engine violations counters;
    graph_case r violations counters;
    if !violations <> [] then
      all_violations := (case, List.rev !violations) :: !all_violations
  done;
  {
    seed;
    cases;
    scripts = !scripts;
    edits = !edits;
    incomparable = !incomparable;
    violations = List.rev !all_violations;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>incr oracle: seed %d, %d cases, %d scripts (%d edits), %d \
     incomparable, %d violating cases@,%a@]"
    r.seed r.cases r.scripts r.edits r.incomparable (List.length r.violations)
    (Fmt.list ~sep:Fmt.cut (fun ppf (c, vs) ->
         Fmt.pf ppf "case %d:@,  %a" c
           (Fmt.list ~sep:Fmt.cut Fmt.string)
           vs))
    r.violations
