(* The differential runner (see diff.mli).

   The stage/semi-naive equivalence claimed by the chase engines is
   *bit-identity*: equal fact sets including fresh element ids, equal
   journals in insertion order, and equal firing sequences.  The diff
   below checks exactly that, so any future divergence — a dedup-table
   bug, a firing-order change, a delta leak — is caught on a random
   instance and shrunk to a small witness. *)

open Relational

let fail violations fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt

(* --- budgets ------------------------------------------------------------ *)

type budget = { max_stages : int; max_elems : int; max_facts : int }

let default_budget = { max_stages = 6; max_elems = 150; max_facts = 500 }

(* --- single-engine runs -------------------------------------------------- *)

type outcome = Fixpoint | Budget_exceeded | Faulted

(* Collapse the engines' structured verdict onto the oracle's outcome:
   every budget-like ending (stage fuel, element/fact budgets, the stop
   predicate, a deadline, cancellation) is [Budget_exceeded]; an injected
   fault is its own class. *)
let outcome_of_chase (s : Tgd.Chase.stats) =
  match s.Tgd.Chase.outcome with
  | Resilience.Governor.Fixpoint -> Fixpoint
  | Resilience.Governor.Faulted _ -> Faulted
  | _ -> Budget_exceeded

let outcome_of_graph (s : Greengraph.Rule.stats) =
  match s.Greengraph.Rule.outcome with
  | Resilience.Governor.Fixpoint -> Fixpoint
  | Resilience.Governor.Faulted _ -> Faulted
  | _ -> Budget_exceeded

let pp_outcome ppf o =
  Fmt.string ppf
    (match o with
    | Fixpoint -> "fixpoint"
    | Budget_exceeded -> "budget_exceeded"
    | Faulted -> "faulted")

type firing = { at_stage : int; dep : string; frontier : (string * int) list }

type engine_run = {
  engine : Tgd.Chase.engine;
  outcome : outcome;
  stats : Tgd.Chase.stats;
  result : Structure.t;
  firings : firing list;
}

let run_tgd ?tuning budget engine inst =
  let d = Gen.build inst in
  let firings = ref [] in
  let on_fire ~stage dep fb =
    firings :=
      { at_stage = stage; dep = Tgd.Dep.name dep;
        frontier = Term.Var_map.bindings fb }
      :: !firings
  in
  let stop d =
    Structure.card d > budget.max_elems || Structure.size d > budget.max_facts
  in
  let stats =
    Tgd.Chase.run ~engine ?tuning ~max_stages:budget.max_stages ~stop ~on_fire
      inst.Gen.deps d
  in
  {
    engine;
    outcome = outcome_of_chase stats;
    stats;
    result = d;
    firings = List.rev !firings;
  }

(* --- the five-engine diff ------------------------------------------------- *)

let pp_firing ppf f =
  Fmt.pf ppf "stage %d: %s(%a)" f.at_stage f.dep
    (Fmt.list ~sep:Fmt.comma (fun ppf (x, e) -> Fmt.pf ppf "%s=%d" x e))
    f.frontier

let first_mismatch l1 l2 =
  let rec go i = function
    | [], [] -> None
    | x :: _, [] | [], x :: _ -> Some (i, x)
    | x :: xs, y :: ys -> if x = y then go (i + 1) (xs, ys) else Some (i, x)
  in
  go 0 (l1, l2)

let diff_tgd budget inst =
  let violations = ref [] in
  let incomparable = ref 0 in
  let st = run_tgd budget `Stage inst in
  let sn = run_tgd budget `Seminaive inst in
  let ob = run_tgd budget `Oblivious inst in
  let pr = run_tgd budget `Par inst in
  (* the parallel engine again, with staged (two-phase, arena-partitioned)
     firing forced on — the default only stages when jobs > 1 *)
  let pf =
    run_tgd
      ~tuning:{ Tgd.Chase.default_tuning with Tgd.Chase.par_fire = `Staged }
      budget `Par inst
  in
  (* A pair of runs is bit-compared only when both ended the same way.
     Mixed endings (one engine cut by a budget/deadline, the other at its
     fixpoint; or a faulted run) are *incomparable* — counted, never
     reported as a spurious bit-identity violation. *)
  let comparable a b =
    if a.outcome = b.outcome then true
    else begin
      incr incomparable;
      false
    end
  in
  (* bit-identity of the lazy engines *)
  if comparable st sn then begin
    if not (Structure.equal_sets st.result sn.result) then
      fail violations "stage/seminaive structures differ: %d vs %d facts"
        (Structure.size st.result) (Structure.size sn.result);
    let j1 = Structure.delta_since st.result 0 in
    let j2 = Structure.delta_since sn.result 0 in
    (match first_mismatch j1 j2 with
    | Some (i, f) ->
        fail violations "stage/seminaive journals diverge at entry %d (%a)" i
          (Fact.pp ()) f
    | None -> ());
    (match first_mismatch st.firings sn.firings with
    | Some (i, f) ->
        fail violations
          "stage/seminaive firing sequences diverge at firing %d (%a)" i
          pp_firing f
    | None -> ());
    let s1 = st.stats and s2 = sn.stats in
    if s1.Tgd.Chase.applications <> s2.Tgd.Chase.applications then
      fail violations "applications differ: stage %d, seminaive %d"
        s1.Tgd.Chase.applications s2.Tgd.Chase.applications;
    if s1.Tgd.Chase.stages <> s2.Tgd.Chase.stages then
      fail violations "stages differ: stage %d, seminaive %d"
        s1.Tgd.Chase.stages s2.Tgd.Chase.stages;
    if s2.Tgd.Chase.triggers_considered > s1.Tgd.Chase.triggers_considered then
      fail violations
        "seminaive considered more triggers than stage (%d > %d): delta leak"
        s2.Tgd.Chase.triggers_considered s1.Tgd.Chase.triggers_considered;
    if s2.Tgd.Chase.body_matches > s1.Tgd.Chase.body_matches then
      fail violations
        "seminaive enumerated more body matches than stage (%d > %d)"
        s2.Tgd.Chase.body_matches s1.Tgd.Chase.body_matches
  end;
  (* The parallel engine is sharded semi-naive: bit-identical structures
     and firings, and — the merge restoring the sequential dedup — equal
     match/consideration counts.  Both par variants (default and forced
     staged firing) are held to the same contract.  These are *facts and
     journal and firings* diffs plus the plan-independent stats fields;
     hom-effort counters ([hom.*] Obs metrics) are never compared here —
     cost-ordered and generic-join plans visit candidates in different
     orders, so effort differs while the emitted match set (and hence
     everything below) is identical. *)
  let check_vs_sn name pr =
    if comparable sn pr then begin
      if not (Structure.equal_sets sn.result pr.result) then
        fail violations "seminaive/%s structures differ: %d vs %d facts" name
          (Structure.size sn.result) (Structure.size pr.result);
      (match
         first_mismatch
           (Structure.delta_since sn.result 0)
           (Structure.delta_since pr.result 0)
       with
      | Some (i, f) ->
          fail violations "seminaive/%s journals diverge at entry %d (%a)" name
            i (Fact.pp ()) f
      | None -> ());
      (match first_mismatch sn.firings pr.firings with
      | Some (i, f) ->
          fail violations
            "seminaive/%s firing sequences diverge at firing %d (%a)" name i
            pp_firing f
      | None -> ());
      let s2 = sn.stats and sp = pr.stats in
      if sp.Tgd.Chase.applications <> s2.Tgd.Chase.applications then
        fail violations "applications differ: seminaive %d, %s %d"
          s2.Tgd.Chase.applications name sp.Tgd.Chase.applications;
      if sp.Tgd.Chase.stages <> s2.Tgd.Chase.stages then
        fail violations "stages differ: seminaive %d, %s %d"
          s2.Tgd.Chase.stages name sp.Tgd.Chase.stages;
      if sp.Tgd.Chase.triggers_considered <> s2.Tgd.Chase.triggers_considered
      then
        fail violations "%s considered %d triggers, seminaive %d" name
          sp.Tgd.Chase.triggers_considered s2.Tgd.Chase.triggers_considered;
      if sp.Tgd.Chase.body_matches <> s2.Tgd.Chase.body_matches then
        fail violations "%s enumerated %d body matches, seminaive %d" name
          sp.Tgd.Chase.body_matches s2.Tgd.Chase.body_matches
    end
  in
  check_vs_sn "par" pr;
  check_vs_sn "par(staged)" pf;
  (* Per-run invariants.  A budget-exceeded run can overshoot the fact
     budget within its final stage (stop is checked between stages), so
     the quadratic audits and the full trigger rescans are only run on
     results within a small slack of the budget — a fixpoint result is
     always within budget, so the interesting checks are never skipped. *)
  let small r =
    Structure.size r.result <= 4 * budget.max_facts
    && Structure.card r.result <= 4 * budget.max_elems
  in
  List.iter
    (fun r ->
      let name = Format.asprintf "%a" Tgd.Chase.pp_engine r.engine in
      if List.length r.firings <> r.stats.Tgd.Chase.applications then
        fail violations "[%s] %d firings recorded but %d applications counted"
          name (List.length r.firings) r.stats.Tgd.Chase.applications;
      if small r then begin
        List.iter
          (fun v -> fail violations "[%s chase output] %s" name v)
          (Audit.structure ~provenance:true r.result);
        (* a fixpoint is a model; and the global trigger scan must agree
           with [models]/[find_violation] either way *)
        let m = Tgd.Chase.models inst.Gen.deps r.result in
        let viol = Tgd.Chase.find_violation inst.Gen.deps r.result in
        let active = Tgd.Chase.active_triggers inst.Gen.deps r.result in
        if r.outcome = Fixpoint && not m then
          fail violations "[%s] reached a fixpoint that is not a model" name;
        if m <> (active = []) then
          fail violations "[%s] models=%b but %d active triggers" name m
            (List.length active);
        if m <> (viol = None) then
          fail violations "[%s] models=%b but find_violation=%s" name m
            (match viol with
            | None -> "None"
            | Some (dep, _) -> Tgd.Dep.name dep)
      end)
    [ st; sn; ob; pr; pf ];
  (List.rev !violations, [ st; sn; ob; pr; pf ], !incomparable)

(* --- green-graph diff ----------------------------------------------------- *)

let run_graph budget engine gc =
  let module G = Greengraph.Graph in
  let g = Gen.build_graph gc in
  let stop g = G.size g > budget.max_facts || G.order g > budget.max_elems in
  let stats =
    Greengraph.Rule.chase ~engine ~max_stages:budget.max_stages ~stop
      gc.Gen.rules g
  in
  let outcome = outcome_of_graph stats in
  (g, stats, outcome)

let diff_graph budget gc =
  let module G = Greengraph.Graph in
  let violations = ref [] in
  let incomparable = ref 0 in
  let g1, s1, o1 = run_graph budget `Stage gc in
  let g2, s2, o2 = run_graph budget `Seminaive gc in
  let g3, s3, o3 = run_graph budget `Par gc in
  let comparable oa ob =
    if oa = ob then true
    else begin
      incr incomparable;
      false
    end
  in
  if comparable o1 o2 then begin
    if not (G.equal g1 g2) then
      fail violations "stage/seminaive graphs differ: %d vs %d edges"
        (G.size g1) (G.size g2);
    (match first_mismatch (G.delta_since g1 0) (G.delta_since g2 0) with
    | Some (i, (e : G.edge)) ->
        fail violations
          "stage/seminaive edge journals diverge at entry %d (%a %d->%d)" i
          Greengraph.Label.pp e.G.label e.G.src e.G.dst
    | None -> ());
    if s1.Greengraph.Rule.applications <> s2.Greengraph.Rule.applications then
      fail violations "graph applications differ: stage %d, seminaive %d"
        s1.Greengraph.Rule.applications s2.Greengraph.Rule.applications;
    if s1.Greengraph.Rule.stages <> s2.Greengraph.Rule.stages then
      fail violations "graph stages differ: stage %d, seminaive %d"
        s1.Greengraph.Rule.stages s2.Greengraph.Rule.stages;
    if
      s2.Greengraph.Rule.triggers_considered
      > s1.Greengraph.Rule.triggers_considered
    then
      fail violations
        "graph seminaive considered more pairs than stage (%d > %d)"
        s2.Greengraph.Rule.triggers_considered
        s1.Greengraph.Rule.triggers_considered
  end;
  if comparable o2 o3 then begin
    if not (G.equal g2 g3) then
      fail violations "seminaive/par graphs differ: %d vs %d edges" (G.size g2)
        (G.size g3);
    (match first_mismatch (G.delta_since g2 0) (G.delta_since g3 0) with
    | Some (i, (e : G.edge)) ->
        fail violations
          "seminaive/par edge journals diverge at entry %d (%a %d->%d)" i
          Greengraph.Label.pp e.G.label e.G.src e.G.dst
    | None -> ());
    if
      s3.Greengraph.Rule.applications <> s2.Greengraph.Rule.applications
      || s3.Greengraph.Rule.stages <> s2.Greengraph.Rule.stages
      || s3.Greengraph.Rule.triggers_considered
         <> s2.Greengraph.Rule.triggers_considered
    then
      fail violations "graph par stats differ from seminaive: %a vs %a"
        Greengraph.Rule.pp_stats s3 Greengraph.Rule.pp_stats s2
  end;
  List.iter
    (fun (g, which) ->
      (* same overshoot guard as diff_tgd: the label × vertex bucket audit
         is quadratic, so skip it on runs that blew far past the budget *)
      if G.size g <= 4 * budget.max_facts && G.order g <= 4 * budget.max_elems
      then
        List.iter
          (fun v -> fail violations "[%s graph output] %s" which v)
          (Audit.graph g))
    [ (g1, "stage"); (g2, "seminaive"); (g3, "par") ];
  (* a graph fixpoint is a model of the rules *)
  if s1.Greengraph.Rule.fixpoint && not (Greengraph.Rule.models gc.Gen.rules g1)
  then fail violations "graph fixpoint is not a model of its rules";
  (List.rev !violations, [ (s1, o1); (s2, o2); (s3, o3) ], !incomparable)

(* --- CQ cross-checks ------------------------------------------------------ *)

let core_of fold q =
  let rec go fuel q =
    if fuel = 0 then q
    else match fold q with None -> q | Some q' -> go (fuel - 1) q'
  in
  go 64 q

(* The core-related violation of a query under [fold], if any; factored
   out so failures can be shrunk against the same predicate. *)
let core_violation fold q =
  let c = core_of fold q in
  if not (Cq.Containment.equivalent q c) then
    Some (Format.asprintf "core not equivalent to input: %a" Cq.Query.pp c)
  else if Option.is_some (Audit.fold_witness c) then
    Some
      (Format.asprintf
         "core output %a still folds (independent witness found)" Cq.Query.pp c)
  else if List.length (Cq.Query.body c) > List.length (Cq.Query.body q) then
    Some (Format.asprintf "core grew the body: %a" Cq.Query.pp c)
  else None

let cq_checks ?(fold = Cq.Containment.fold_step) r sg d =
  let violations = ref [] in
  (* Chandra–Merlin: q1 ⊆ q2 iff the frozen free tuple of q1 is an answer
     of q2 on A[q1] *)
  let q1 = Gen.query r sg in
  let q2 = Gen.query ~arity:(Cq.Query.arity q1) r sg in
  if Cq.Query.arity q1 = Cq.Query.arity q2 then begin
    let claimed = Cq.Containment.contained_in q1 q2 in
    let canon1, elem1 = Cq.Query.canonical q1 in
    let tuple =
      Array.of_list
        (List.filter_map (fun x -> elem1 x) (Cq.Query.free q1))
    in
    if Array.length tuple = Cq.Query.arity q1 then begin
      let truth = Cq.Eval.holds_at q2 canon1 tuple in
      if claimed <> truth then
        fail violations
          "contained_in %a %a = %b, but evaluation on the canonical database \
           says %b"
          Cq.Query.pp q1 Cq.Query.pp q2 claimed truth;
      (* containment must be monotone over the random instance *)
      if claimed then begin
        let a1 = Cq.Eval.answers q1 d and a2 = Cq.Eval.answers q2 d in
        if not (Cq.Eval.Tuple_set.subset a1 a2) then
          fail violations
            "claimed containment %a ⊆ %a violated on a random instance (%d vs \
             %d answers)"
            Cq.Query.pp q1 Cq.Query.pp q2
            (Cq.Eval.Tuple_set.cardinal a1)
            (Cq.Eval.Tuple_set.cardinal a2)
      end
    end
  end;
  (* cores: equivalent, minimal by the independent witness, idempotent *)
  let q = Gen.query r sg in
  (match core_violation fold q with
  | None -> ()
  | Some _ ->
      let q' =
        Gen.shrink Gen.shrink_query
          (fun q -> Option.is_some (core_violation fold q))
          q
      in
      let msg = Option.get (core_violation fold q') in
      fail violations "core audit failed on %a: %s" Cq.Query.pp q' msg);
  !violations |> List.rev

(* --- the audit harness ---------------------------------------------------- *)

type report = {
  seed : int;
  cases : int;
  engine_runs : int;
  budget_exceeded : int;
  incomparable : int;
      (* engine pairs whose outcomes differed, so bit-identity was not
         checked — counted, not a violation *)
  violations : (int * string list) list;
}

let pp_instance ppf (inst : Gen.instance) =
  Fmt.pf ppf "@[<v>%d elements%s;@ facts: %a;@ deps: %a@]" inst.Gen.n_elems
    (match inst.Gen.consts with [] -> "" | cs -> " + " ^ String.concat "," cs)
    (Fmt.list ~sep:Fmt.comma (Fact.pp ()))
    inst.Gen.facts
    (Fmt.list ~sep:(Fmt.any ";@ ") Tgd.Dep.pp)
    inst.Gen.deps

let run_cases ?(budget = default_budget) ?fold ?(from_case = 0) ~seed ~cases ()
    =
  let engine_runs = ref 0 in
  let budget_exceeded = ref 0 in
  let incomparable = ref 0 in
  let all_violations = ref [] in
  for case = from_case to from_case + cases - 1 do
    let r = Gen.case_rng ~seed ~case in
    let violations = ref [] in
    (* 1. generated instance: audit the seed structure itself *)
    let inst = Gen.instance r in
    List.iter
      (fun v -> fail violations "[seed structure] %s" v)
      (Audit.structure ~provenance:true (Gen.build inst));
    (* 2. four-engine differential, shrunk on failure *)
    let dv, runs, dinc = diff_tgd budget inst in
    engine_runs := !engine_runs + List.length runs;
    incomparable := !incomparable + dinc;
    List.iter
      (fun r -> if r.outcome = Budget_exceeded then incr budget_exceeded)
      runs;
    (if dv <> [] then
       let inst' =
         Gen.shrink Gen.shrink_instance
           (fun i ->
             let v, _, _ = diff_tgd budget i in
             v <> [])
           inst
       in
       let dv', _, _ = diff_tgd budget inst' in
       List.iter
         (fun v ->
           fail violations "[tgd diff, shrunk to %a] %s" pp_instance inst' v)
         (if dv' = [] then dv else dv'));
    (* 3. CQ containment/core cross-checks over the same signature *)
    List.iter
      (fun v -> violations := v :: !violations)
      (cq_checks ?fold r inst.Gen.signature (Gen.build inst));
    (* 4. green-graph differential, shrunk on failure *)
    let gc = Gen.graph_case r in
    let gv, gruns, ginc = diff_graph budget gc in
    engine_runs := !engine_runs + List.length gruns;
    incomparable := !incomparable + ginc;
    List.iter
      (fun (_, o) -> if o = Budget_exceeded then incr budget_exceeded)
      gruns;
    (if gv <> [] then
       let gc' =
         Gen.shrink Gen.shrink_graph_case
           (fun c ->
             let v, _, _ = diff_graph budget c in
             v <> [])
           gc
       in
       let gv', _, _ = diff_graph budget gc' in
       List.iter
         (fun v ->
           fail violations "[graph diff, %d rules %d edges] %s"
             (List.length gc'.Gen.rules)
             (List.length gc'.Gen.edges)
             v)
         (if gv' = [] then gv else gv'));
    if !violations <> [] then
      all_violations := (case, List.rev !violations) :: !all_violations
  done;
  {
    seed;
    cases;
    engine_runs = !engine_runs;
    budget_exceeded = !budget_exceeded;
    incomparable = !incomparable;
    violations = List.rev !all_violations;
  }

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>audit: seed=%d cases=%d engine_runs=%d budget_exceeded=%d (%.1f%%) \
     incomparable=%d violations=%d@,%a@]"
    r.seed r.cases r.engine_runs r.budget_exceeded
    (if r.engine_runs = 0 then 0.
     else 100. *. float_of_int r.budget_exceeded /. float_of_int r.engine_runs)
    r.incomparable
    (List.length r.violations)
    (Fmt.list ~sep:Fmt.cut (fun ppf (case, vs) ->
         Fmt.pf ppf "case %d:@;<1 2>%a" case
           (Fmt.list ~sep:(Fmt.any "@;<1 2>") Fmt.string)
           vs))
    r.violations
