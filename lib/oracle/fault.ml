(* The seeded fault-injection campaign (experiment E18).

   Each case replays one generated instance three ways:

   1. an un-faulted [`Seminaive] baseline;
   2. a [`Par] run with the failpoint spec armed — a ["par.shard"] fault
      must be absorbed by the retry/degrade ladder (the run stays
      bit-identical to the baseline), an ["arena.grow"] fault must end
      the run with the structured [Faulted] verdict and nothing else;
   3. a checkpoint pass: run-until-k, resume, and demand bit-identity
      with the baseline; then exercise [Checkpoint.save] under the
      ["checkpoint.write"] failpoint and demand write-then-rename
      atomicity — a failed save must leave the previous file loadable.

   Anything that slips through those buckets — a faulted run that
   silently diverged, a resumed run that drifted, a torn checkpoint that
   still loads — is a *corruption*, the one count that must stay zero. *)

open Relational
module FP = Resilience.Failpoint
module CK = Resilience.Checkpoint

type report = {
  seed : int;
  cases : int;
  spec : string;
  injected : int;
  recovered : int;
  faulted : int;
  retried : int;
  degraded : int;
  checkpoint_roundtrips : int;
  checkpoint_saves : int;
  checkpoint_write_faults : int;
  corruptions : (int * string) list;
}

let default_spec =
  "par.shard=0.4,par.fire=0.4,arena.grow=0.02,checkpoint.write=0.5"

(* Bit-identity of two engine runs: fact sets with element ids, journal
   order, firing sequences and the comparable stats.  Returns the first
   discrepancy, phrased for the corruption log. *)
let compare_runs ~what (a : Diff.engine_run) (b : Diff.engine_run) =
  let sa = a.Diff.stats and sb = b.Diff.stats in
  if not (Structure.equal_sets a.Diff.result b.Diff.result) then
    Some
      (Fmt.str "%s: structures differ (%d vs %d facts)" what
         (Structure.size a.Diff.result)
         (Structure.size b.Diff.result))
  else if
    Structure.delta_since a.Diff.result 0
    <> Structure.delta_since b.Diff.result 0
  then Some (Fmt.str "%s: journals diverge" what)
  else if a.Diff.firings <> b.Diff.firings then
    Some (Fmt.str "%s: firing sequences diverge" what)
  else if
    sa.Tgd.Chase.applications <> sb.Tgd.Chase.applications
    || sa.Tgd.Chase.stages <> sb.Tgd.Chase.stages
    || sa.Tgd.Chase.triggers_considered <> sb.Tgd.Chase.triggers_considered
    || sa.Tgd.Chase.body_matches <> sb.Tgd.Chase.body_matches
    || sa.Tgd.Chase.outcome <> sb.Tgd.Chase.outcome
  then
    Some
      (Fmt.str "%s: stats differ (%a vs %a)" what Tgd.Chase.pp_stats sa
         Tgd.Chase.pp_stats sb)
  else None

(* Replay of {!Diff.run_tgd}'s instrumentation for runs we drive
   ourselves (prefix / resume). *)
let recorder () =
  let firings = ref [] in
  let on_fire ~stage dep fb =
    firings :=
      {
        Diff.at_stage = stage;
        dep = Tgd.Dep.name dep;
        frontier = Term.Var_map.bindings fb;
      }
      :: !firings
  in
  (firings, on_fire)

let stop_of (budget : Diff.budget) d =
  Structure.card d > budget.Diff.max_elems
  || Structure.size d > budget.Diff.max_facts

(* run-until-k + resume ≡ uninterrupted, on the case's own instance.
   A one-stage baseline has no interior stage to interrupt at (resuming
   a fixpoint snapshot necessarily re-scans, shifting the stage count),
   so those cases are skipped rather than verified. *)
let checkpoint_roundtrip budget (baseline : Diff.engine_run) inst =
  let n = baseline.Diff.stats.Tgd.Chase.stages in
  if n < 2 then Ok `Skipped
  else
  let k = n / 2 in
  let stop = stop_of budget in
  let firings, on_fire = recorder () in
  let last = ref None in
  let d = Gen.build inst in
  let _prefix_stats =
    Tgd.Chase.run ~engine:`Seminaive ~max_stages:k ~stop ~on_fire
      ~snapshot_every:1
      ~on_snapshot:(fun s -> last := Some s)
      inst.Gen.deps d
  in
  match !last with
  | None -> Error "prefix run emitted no snapshot"
  | Some snap -> (
      let snap = CK.clone snap in
      let stats, d' =
        Tgd.Chase.resume ~max_stages:budget.Diff.max_stages ~stop ~on_fire
          inst.Gen.deps snap
      in
      let resumed =
        {
          Diff.engine = `Seminaive;
          outcome = Diff.outcome_of_chase stats;
          stats;
          result = d';
          firings = List.rev !firings;
        }
      in
      match compare_runs ~what:"checkpoint resume" baseline resumed with
      | Some v -> Error v
      | None -> Ok `Verified)

(* Save/load the prefix snapshot through a real file, with the
   ["checkpoint.write"] failpoint possibly killing the write mid-payload.
   Returns [`Saved] (save + load verified), [`Write_fault] (save failed
   but the previously-saved file is intact), or an error string. *)
let checkpoint_file_pass ~spec ~seed inst =
  let d = Gen.build inst in
  let snap = ref None in
  let _ =
    Tgd.Chase.run ~engine:`Seminaive ~max_stages:2 ~snapshot_every:1
      ~on_snapshot:(fun s -> snap := Some s)
      inst.Gen.deps d
  in
  match !snap with
  | None -> Error "no snapshot to save"
  | Some s -> (
      let path = Filename.temp_file "redspider-fault" ".ckpt" in
      let finish r =
        (try Sys.remove path with Sys_error _ -> ());
        (try Sys.remove (path ^ ".tmp") with Sys_error _ -> ());
        r
      in
      (* first save runs un-faulted so a later torn write has a previous
         good file to preserve *)
      FP.clear ();
      let first = CK.save ~kind:"tgd-chase" path s in
      FP.configure_exn ~seed spec;
      match first with
      | Error e -> finish (Error ("un-faulted save failed: " ^ e))
      | Ok () -> (
          match CK.save ~kind:"tgd-chase" path s with
          | Ok () -> (
              match (CK.load ~kind:"tgd-chase" path : (Tgd.Chase.snapshot, string) result) with
              | Ok _ -> finish (Ok `Saved)
              | Error e -> finish (Error ("saved checkpoint fails to load: " ^ e)))
          | Error _ -> (
              (* the write was killed: rename must not have happened *)
              if Sys.file_exists (path ^ ".tmp") then
                finish (Error "torn write left its temp file behind")
              else
                match (CK.load ~kind:"tgd-chase" path : (Tgd.Chase.snapshot, string) result) with
                | Ok _ -> finish (Ok `Write_fault)
                | Error e ->
                    finish
                      (Error ("failed save corrupted the previous file: " ^ e)))))

let run_campaign ?(budget = Diff.default_budget) ?(spec = default_spec)
    ?(from_case = 0) ~seed ~cases () =
  let injected = ref 0 in
  let recovered = ref 0 in
  let faulted = ref 0 in
  let checkpoint_roundtrips = ref 0 in
  let checkpoint_saves = ref 0 in
  let checkpoint_write_faults = ref 0 in
  let corruptions = ref [] in
  let corrupt case msg = corruptions := (case, msg) :: !corruptions in
  let retries0 = Obs.Metrics.value (Obs.Metrics.counter "resilience.par_retries")
  and degraded0 =
    Obs.Metrics.value (Obs.Metrics.counter "resilience.par_degraded")
  in
  let metrics_was = !Obs.metrics_on in
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () ->
      FP.clear ();
      Obs.set_metrics metrics_was)
    (fun () ->
      for case = from_case to from_case + cases - 1 do
        let r = Gen.case_rng ~seed ~case in
        let inst = Gen.instance r in
        (* 1. un-faulted baseline *)
        FP.clear ();
        let baseline = Diff.run_tgd budget `Seminaive inst in
        (* 2. faulted [`Par] run *)
        FP.configure_exn ~seed:((seed * 1_000_003) + case) spec;
        let faulted_run =
          try Ok (Diff.run_tgd budget `Par inst)
          with e -> Error (Printexc.to_string e)
        in
        let inj = FP.injected_total () in
        injected := !injected + inj;
        FP.clear ();
        (match faulted_run with
        | Error e -> corrupt case ("fault escaped the harness: " ^ e)
        | Ok run -> (
            match run.Diff.outcome with
            | Diff.Faulted -> incr faulted
            | Diff.Fixpoint | Diff.Budget_exceeded -> (
                match compare_runs ~what:"faulted par run" baseline run with
                | Some v -> corrupt case v
                | None -> if inj > 0 then incr recovered)));
        (* 3a. checkpoint/resume bit-identity, un-faulted *)
        (match checkpoint_roundtrip budget baseline inst with
        | Ok `Verified -> incr checkpoint_roundtrips
        | Ok `Skipped -> ()
        | Error v -> corrupt case v);
        (* 3b. checkpoint file writes under the failpoint *)
        (match
           checkpoint_file_pass ~spec ~seed:((seed * 7_368_787) + case) inst
         with
        | Ok `Saved -> incr checkpoint_saves
        | Ok `Write_fault -> incr checkpoint_write_faults
        | Error v -> corrupt case v);
        FP.clear ()
      done;
      let retries =
        Obs.Metrics.value (Obs.Metrics.counter "resilience.par_retries")
        - retries0
      and degraded =
        Obs.Metrics.value (Obs.Metrics.counter "resilience.par_degraded")
        - degraded0
      in
      {
        seed;
        cases;
        spec;
        injected = !injected;
        recovered = !recovered;
        faulted = !faulted;
        retried = retries;
        degraded;
        checkpoint_roundtrips = !checkpoint_roundtrips;
        checkpoint_saves = !checkpoint_saves;
        checkpoint_write_faults = !checkpoint_write_faults;
        corruptions = List.rev !corruptions;
      })

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>fault campaign: seed=%d cases=%d spec=%S@,\
     injected=%d recovered=%d faulted=%d retried=%d degraded=%d@,\
     checkpoints: roundtrips=%d saves=%d write_faults=%d@,\
     corruptions=%d%a@]"
    r.seed r.cases r.spec r.injected r.recovered r.faulted r.retried r.degraded
    r.checkpoint_roundtrips r.checkpoint_saves r.checkpoint_write_faults
    (List.length r.corruptions)
    (Fmt.list ~sep:Fmt.nop (fun ppf (case, v) ->
         Fmt.pf ppf "@,case %d: %s" case v))
    r.corruptions
