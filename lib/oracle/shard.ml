(* The shared shard runner: one seed-range slice of an oracle campaign,
   executed case by case so a supervisor can heartbeat between cases.
   Everything here is plain data — no JSON — because both lib/campaign
   (ledger records) and lib/serve (job results) consume shards and each
   owns its own encoding. *)

module FP = Resilience.Failpoint

type family = Audit | Faults | Incr

let all_families = [ Audit; Faults; Incr ]

let family_name = function
  | Audit -> "audit"
  | Faults -> "faults"
  | Incr -> "incr"

let family_of_name = function
  | "audit" -> Some Audit
  | "faults" -> Some Faults
  | "incr" -> Some Incr
  | _ -> None

type entry = { e_case : int; e_kind : string; e_desc : string list }

type outcome = {
  o_family : family;
  o_seed : int;
  o_lo : int;
  o_n : int;
  o_counters : (string * int) list;
  o_corpus : entry list;
}

let sort_counters cs = List.sort (fun (a, _) (b, _) -> compare a b) cs

let sort_corpus es =
  List.sort
    (fun a b -> compare (a.e_case, a.e_kind) (b.e_case, b.e_kind))
    es

let counters_add a b =
  let bump acc (k, v) =
    match List.assoc_opt k acc with
    | Some v0 -> (k, v0 + v) :: List.remove_assoc k acc
    | None -> (k, v) :: acc
  in
  sort_counters (List.fold_left bump a b)

let entries_of_violations kind vs =
  List.map (fun (case, desc) -> { e_case = case; e_kind = kind; e_desc = desc }) vs

(* [Fault.run_campaign] owns the process-global failpoint registry and
   reads global metric deltas, so two faults shards interleaving would
   scramble each other's fault schedules.  This lock serializes them
   against each other; keeping them exclusive of *all* concurrent
   oracle work in the process (an armed registry perturbs even plain
   audit shards running `Par engines) is the supervisor's job. *)
let faults_lock = Mutex.create ()

let case_results ?(budget = Diff.default_budget) family ~seed ~case =
  match family with
  | Audit ->
      let r = Diff.run_cases ~budget ~from_case:case ~seed ~cases:1 () in
      ( [
          ("budget_exceeded", r.Diff.budget_exceeded);
          ("cases", 1);
          ("engine_runs", r.Diff.engine_runs);
          ("incomparable", r.Diff.incomparable);
          ("violations", List.length r.Diff.violations);
        ],
        entries_of_violations "violation" r.Diff.violations )
  | Incr ->
      let r = Incr.run_cases ~from_case:case ~seed ~cases:1 () in
      ( [
          ("cases", 1);
          ("edits", r.Incr.edits);
          ("incomparable", r.Incr.incomparable);
          ("scripts", r.Incr.scripts);
          ("violations", List.length r.Incr.violations);
        ],
        entries_of_violations "violation" r.Incr.violations )
  | Faults ->
      Mutex.lock faults_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock faults_lock)
        (fun () ->
          let r = Fault.run_campaign ~budget ~from_case:case ~seed ~cases:1 () in
          (* retried/degraded are deltas of process-global metrics and
             are perturbed by unrelated concurrent work, so they are
             not per-case deterministic and stay out of the coverage
             counters that must be bit-identical across schedules. *)
          ( [
              ("cases", 1);
              ("checkpoint_roundtrips", r.Fault.checkpoint_roundtrips);
              ("checkpoint_saves", r.Fault.checkpoint_saves);
              ("checkpoint_write_faults", r.Fault.checkpoint_write_faults);
              ("corruptions", List.length r.Fault.corruptions);
              ("faulted", r.Fault.faulted);
              ("injected", r.Fault.injected);
              ("recovered", r.Fault.recovered);
            ],
            List.map
              (fun (case, msg) ->
                { e_case = case; e_kind = "corruption"; e_desc = [ msg ] })
              r.Fault.corruptions ))

let run_case ?budget family ~seed ~case =
  (* chaos probe: an armed ["shard.case"] kills the worker right here,
     before the case runs — the mid-shard crash of the chaos ladder *)
  FP.hit "shard.case";
  case_results ?budget family ~seed ~case

let run ?budget ?on_case family ~seed ~lo ~n =
  let counters = ref [] and corpus = ref [] in
  for case = lo to lo + n - 1 do
    let cs, es = run_case ?budget family ~seed ~case in
    counters := counters_add !counters cs;
    corpus := es @ !corpus;
    match on_case with Some f -> f case | None -> ()
  done;
  {
    o_family = family;
    o_seed = seed;
    o_lo = lo;
    o_n = n;
    o_counters = sort_counters !counters;
    o_corpus = sort_corpus !corpus;
  }

let try_case ?budget family ~seed ~case =
  (* no ["shard.case"] probe: quarantine probing must see the shard's
     own behaviour, not the chaos ladder's *)
  match case_results ?budget family ~seed ~case with
  | _ -> Ok ()
  | exception e -> Error (Printexc.to_string e)

let instance_desc (inst : Gen.instance) =
  let open Relational in
  Fmt.str "signature: %a"
    (Fmt.list ~sep:Fmt.comma Symbol.pp_short)
    inst.Gen.signature
  :: Fmt.str "elems: %d, consts: %a" inst.Gen.n_elems
       (Fmt.list ~sep:Fmt.comma Fmt.string)
       inst.Gen.consts
  :: List.map (fun f -> Fmt.str "fact: %a" (Fact.pp ()) f) inst.Gen.facts
  @ List.map (fun d -> Fmt.str "dep: %a" Tgd.Dep.pp d) inst.Gen.deps

let minimize ?(budget = Diff.default_budget) family ~seed ~case =
  let raises f =
    match f () with () -> false | exception _ -> true
  in
  match family with
  | Audit ->
      let inst = Gen.instance (Gen.case_rng ~seed ~case) in
      let crashes i = raises (fun () -> ignore (Diff.diff_tgd budget i)) in
      if crashes inst then
        "shrunk crashing instance:"
        :: instance_desc (Gen.shrink Gen.shrink_instance crashes inst)
      else [ "not reproducible without injected faults" ]
  | Incr | Faults -> [ "not minimized (only audit instances shrink)" ]

let pp_family ppf f = Fmt.string ppf (family_name f)

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%a shard seed %d cases [%d, %d): %a%a@]" pp_family
    o.o_family o.o_seed o.o_lo (o.o_lo + o.o_n)
    (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
    o.o_counters
    (Fmt.list ~sep:Fmt.nop (fun ppf e ->
         Fmt.pf ppf "@,%s case %d: %a" e.e_kind e.e_case
           (Fmt.list ~sep:Fmt.sp Fmt.string)
           e.e_desc))
    o.o_corpus
