(** The seeded fault-injection campaign (experiment E18).

    Per case: an un-faulted [`Seminaive] baseline; a [`Par] run with the
    failpoint spec armed, which must either stay bit-identical to the
    baseline (a ["par.shard"] or ["par.fire"] fault absorbed by the
    respective retry/degrade ladder) or end with the structured
    [Faulted] verdict (an ["arena.grow"] fault cleanly reported); an un-faulted
    run-until-k/resume round-trip that must be bit-identical to the
    baseline; and a [Checkpoint.save] pass under the
    ["checkpoint.write"] failpoint, where a killed write must leave the
    previously-saved file loadable.  Any other behaviour is a
    {e corruption} — the count that must stay zero. *)

type report = {
  seed : int;
  cases : int;
  spec : string;             (** the failpoint spec armed for faulted runs *)
  injected : int;            (** faults actually injected across the campaign *)
  recovered : int;
      (** faulted [`Par] runs that saw ≥1 injection yet stayed
          bit-identical to the baseline *)
  faulted : int;             (** runs ending with the [Faulted] verdict *)
  retried : int;
      (** par shard scans / staged firing passes retried after a fault *)
  degraded : int;
      (** par scans/firings degraded to the sequential path *)
  checkpoint_roundtrips : int;
      (** run-until-k + resume passes verified bit-identical *)
  checkpoint_saves : int;    (** file saves that survived and load-verified *)
  checkpoint_write_faults : int;
      (** saves killed by the failpoint with the previous file intact *)
  corruptions : (int * string) list;
      (** (case, description) — silent divergence; must be empty *)
}

val default_spec : string

(** Run the campaign over cases [[from_case, from_case+cases)] (default
    [from_case = 0]).  Deterministic in [(seed, case, spec)]: the
    failpoint RNG for each case is derived from the campaign seed and
    the {e absolute} case index, so a shard reproduces exactly the
    faults the same range would see in a single monolithic run.
    Temporarily enables the metrics switch (to count retries/degrades)
    and always clears the failpoint registry on exit.  Because the run
    reconfigures the process-global failpoint registry per case, shards
    of this family must never run concurrently with any other oracle
    work in the same process — {!Shard} serializes them. *)
val run_campaign :
  ?budget:Diff.budget ->
  ?spec:string ->
  ?from_case:int ->
  seed:int ->
  cases:int ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit
