(** Deterministic seeded generation of random signatures, finite
    structures, conjunctive queries, TGD sets and green-graph rule sets
    for the differential-testing oracle, with greedy shrinking of failing
    cases.

    The PRNG is a self-contained splitmix64: case [i] of seed [s] is the
    same sequence on every run, OCaml version and platform, so a failing
    case is fully named by [(seed, i)] and can be replayed with
    [redspider audit]. *)

open Relational

(** {1 PRNG} *)

type rng

(** A fresh generator from an integer seed. *)
val rng : int -> rng

(** The generator for case [case] of run seed [seed] — independent of how
    much randomness other cases consumed. *)
val case_rng : seed:int -> case:int -> rng

(** Uniform in [\[0, n)]; [0] if [n <= 0]. *)
val int : rng -> int -> int

(** Uniform in [\[lo, hi\]] (inclusive). *)
val range : rng -> int -> int -> int

val bool : rng -> bool

(** Uniform pick.  @raise Invalid_argument on an empty list. *)
val pick : rng -> 'a list -> 'a

(** {1 Relational instances} *)

(** A generated chase instance as pure data, so shrinking can rebuild a
    smaller copy: element ids [0 .. n_elems-1] are plain elements,
    followed by one element per constant name, in order. *)
type instance = {
  signature : Symbol.t list;
  n_elems : int;
  consts : string list;
  facts : Fact.t list;
  deps : Tgd.Dep.t list;
}

(** A random signature: 1–3 symbols of arity 1–3. *)
val signature : rng -> Symbol.t list

(** A random instance over a random signature: a small seed structure and
    1–3 single-head-or-double-head TGDs with existential variables. *)
val instance : rng -> instance

(** Realize the instance as a fresh structure (deterministic element
    allocation: plain elements first, then constants). *)
val build : instance -> Structure.t

(** All one-step shrink candidates: drop one dependency, drop one seed
    fact (dependencies and facts are never both touched in one step). *)
val shrink_instance : instance -> instance list

(** {1 Conjunctive queries} *)

(** A random CQ over the signature with 1–4 atoms, occasional constants,
    and a free-variable prefix of the requested arity (clamped to the
    variables actually used; [?arity] random when omitted). *)
val query : ?arity:int -> rng -> Symbol.t list -> Cq.Query.t

(** One-step shrink candidates of a query: drop one body atom, keeping
    the query well-formed (free variables must survive). *)
val shrink_query : Cq.Query.t -> Cq.Query.t list

(** {1 Green-graph rule sets} *)

(** A graph case as pure data: edges over vertices [0 .. n_vertices-1];
    vertex 0 is [a], vertex 1 is [b] of D_I, and the D_I edge
    [H∅(a, b)] is always present. *)
type graph_case = {
  rules : Greengraph.Rule.t list;
  n_vertices : int;
  edges : (Greengraph.Label.t * int * int) list;
}

val graph_case : rng -> graph_case

(** Realize the case as a fresh green graph. *)
val build_graph : graph_case -> Greengraph.Graph.t

(** Drop one rule or one seed edge (never the D_I edge). *)
val shrink_graph_case : graph_case -> graph_case list

(** {1 Shrinking} *)

(** [shrink candidates fails x] greedily descends to a locally minimal
    failing value: while some one-step candidate of the current value
    still satisfies [fails], move to it. *)
val shrink : ('a -> 'a list) -> ('a -> bool) -> 'a -> 'a
