(** Invariant audits: cross-check a structure's (or green graph's)
    incremental indices — pin buckets, symbol/element buckets, delta
    journal, watermark — against ground-truth recomputation from the
    plain fact (edge) set, plus provenance-stage monotonicity for
    chase-produced structures.

    Every check returns human-readable violation descriptions; an empty
    list means the audit passed.  The audits deliberately recompute
    everything naively — they are the ground truth the fast indices are
    measured against, in the same spirit as the paper's hand proofs
    being re-checked mechanically on bounded instances. *)

open Relational

(** Audit a structure's indices: facts/size coherence, the
    (symbol, position, element) pin index and its O(1) counts, the
    per-symbol and per-element buckets, the dense-id arena view
    ([id_fact]/[id_sym]/[id_arg] must mirror the boxed facts, the
    [ids_with_sym]/[ids_with_pin] vectors must be the id images of the
    boxed buckets, and [delta_ids] must span exactly the journal tail),
    the delta journal ([delta_since 0] must replay the fact set in
    insertion order without duplicates) and the watermark.  With
    [~provenance:true] (for chase outputs; default false) additionally
    require journal stages to be non-decreasing and every fact's stage to
    be at least the birth stage of each of its elements. *)
val structure : ?provenance:bool -> Structure.t -> string list

(** Audit a green graph's indices: edge/vertex coherence, the out/in
    adjacency buckets, the label buckets, the (vertex, label) pin
    buckets, the edge journal and the watermark. *)
val graph : Greengraph.Graph.t -> string list

(** An independent minimality witness: a proper endomorphism of A[q]
    fixing the free variables pointwise, whose image (together with the
    constants' elements, counted as a set) misses at least one element —
    ground truth for [Containment.core]/[is_core].  [None] means [q] is
    a core. *)
val fold_witness : Cq.Query.t -> Relational.Hom.binding option
