(** The incremental-maintenance oracle: seeded random edit scripts over
    random instances and rule sets, with the maintained structure
    bit-diffed (audit, models, pinned hom-equivalence) against a
    from-scratch chase after every script.  Cases whose runs exhaust the
    stage budget are counted incomparable and skipped — capped runs need
    not align — so a clean report means: every comparable script
    preserved universal-model equivalence, on both the TGD and the
    green-graph maintenance layers, across both delta engines. *)

type report = {
  seed : int;
  cases : int;
  scripts : int;  (** edit scripts actually diffed *)
  edits : int;  (** individual ops across those scripts *)
  incomparable : int;  (** runs skipped: no fixpoint within budget *)
  violations : (int * string list) list;
      (** failing cases: (case index, violation descriptions) *)
}

(** Deterministic: case [i] depends only on [(seed, i)], so the range
    [[from_case, from_case+cases)] (default [from_case = 0]) is a shard
    whose report is independent of how the rest of the campaign is
    split — the property campaign sharding relies on. *)
val run_cases : ?from_case:int -> seed:int -> cases:int -> unit -> report

val pp_report : Format.formatter -> report -> unit
