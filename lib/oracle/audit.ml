(* Ground-truth recomputation audits (see audit.mli).

   Style note: every check here is written against the *slow, obvious*
   definition — list filters over [Structure.facts] / [Graph.edges] —
   and never against the indices it is auditing.  Redundancy is the
   point. *)

open Relational

let fail violations fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt

(* --- structures --------------------------------------------------------- *)

module Key = struct
  type t = Symbol.t * int * int

  let compare (s1, p1, e1) (s2, p2, e2) =
    let c = Symbol.compare s1 s2 in
    if c <> 0 then c
    else
      let c = Int.compare p1 p2 in
      if c <> 0 then c else Int.compare e1 e2
end

module Key_map = Map.Make (Key)
module Int_set = Set.Make (Int)

let sorted_facts fs = List.sort Fact.compare fs

let structure ?(provenance = false) d =
  let violations = ref [] in
  let facts = Structure.facts d in
  let n = List.length facts in
  (* size / card coherence *)
  if Structure.size d <> n then
    fail violations "size=%d but %d facts enumerate" (Structure.size d) n;
  let elems = Int_set.of_list (Structure.elems d) in
  if Structure.card d <> Int_set.cardinal elems then
    fail violations "card=%d but %d elements enumerate" (Structure.card d)
      (Int_set.cardinal elems);
  List.iter
    (fun f ->
      List.iter
        (fun e ->
          if not (Int_set.mem e elems) then
            fail violations "fact %a uses unregistered element %d" (Fact.pp ()) f e)
        (Fact.elements f))
    facts;
  (* constants resolve to registered elements and back *)
  List.iter
    (fun c ->
      match Structure.constant_opt d c with
      | None -> fail violations "constant %s lost its element" c
      | Some e ->
          if not (Int_set.mem e elems) then
            fail violations "constant %s -> unregistered element %d" c e;
          if Structure.constant_name d e <> Some c then
            fail violations "constant %s -> %d does not resolve back" c e)
    (Structure.constants d);
  (* ground-truth pin table: (sym, pos, elem) -> facts *)
  let truth =
    List.fold_left
      (fun acc f ->
        let sym = Fact.sym f in
        snd
          (Array.fold_left
             (fun (i, acc) e ->
               let key = (sym, i, e) in
               let prev = Option.value ~default:[] (Key_map.find_opt key acc) in
               (i + 1, Key_map.add key (f :: prev) acc))
             (0, acc) (Fact.args f)))
      Key_map.empty facts
  in
  Key_map.iter
    (fun (sym, pos, e) expected ->
      let got = Structure.facts_with_pin d sym pos e in
      if sorted_facts got <> sorted_facts expected then
        fail violations "pin bucket (%a,%d,%d): %d facts indexed, %d expected"
          Symbol.pp sym pos e (List.length got) (List.length expected);
      let cnt = Structure.pin_count d sym pos e in
      if cnt <> List.length expected then
        fail violations "pin count (%a,%d,%d)=%d, expected %d" Symbol.pp sym pos
          e cnt (List.length expected))
    truth;
  (* per-symbol buckets *)
  List.iter
    (fun sym ->
      let expected = List.filter (fun f -> Symbol.equal (Fact.sym f) sym) facts in
      let got = Structure.facts_with_sym d sym in
      if sorted_facts got <> sorted_facts expected then
        fail violations "symbol bucket %a: %d facts indexed, %d expected"
          Symbol.pp sym (List.length got) (List.length expected))
    (Structure.symbols d);
  (* symbols list covers exactly the symbols with facts *)
  let sym_truth =
    List.sort_uniq Symbol.compare (List.map Fact.sym facts)
  in
  if List.sort Symbol.compare (Structure.symbols d) <> sym_truth then
    fail violations "symbols: %d listed, %d with facts"
      (List.length (Structure.symbols d))
      (List.length sym_truth);
  (* per-element buckets *)
  Int_set.iter
    (fun e ->
      let expected =
        List.filter (fun f -> List.mem e (Fact.elements f)) facts
      in
      let got = Structure.facts_with_elem d e in
      if sorted_facts got <> sorted_facts expected then
        fail violations "element bucket %d: %d facts indexed, %d expected" e
          (List.length got) (List.length expected))
    elems;
  (* the dense-id arena view agrees with the boxed facts.  With
     retractions the journal keeps dead entries: the id bound is the
     live count plus the retraction count, and dead ids are excluded
     from the bucket ground truth below. *)
  let nretr = Structure.retraction_count d in
  if Structure.nfacts d <> n + nretr then
    fail violations "nfacts=%d but %d facts enumerate (+%d retracted)"
      (Structure.nfacts d) n nretr;
  for id = 0 to Structure.nfacts d - 1 do
    if Structure.live_id d id then begin
      let f = Structure.id_fact d id in
      let sym = Fact.sym f in
      let sid = Structure.sym_id d sym in
      if sid < 0 then
        fail violations "fact %d's symbol %a is not interned" id Symbol.pp sym
      else if Structure.id_sym d id <> sid then
        fail violations "id_sym %d=%d but sym_id %a=%d" id
          (Structure.id_sym d id) Symbol.pp sym sid;
      Array.iteri
        (fun pos e ->
          if Structure.id_arg d id pos <> e then
            fail violations "arena arg (%d,%d)=%d but fact %a has %d" id pos
              (Structure.id_arg d id pos) (Fact.pp ()) f e)
        (Fact.args f)
    end
  done;
  (* the retraction journal names exactly the dead ids *)
  let retr = Structure.retractions d in
  if List.length retr <> nretr then
    fail violations "retraction journal has %d entries, count says %d"
      (List.length retr) nretr;
  List.iter
    (fun (id, f) ->
      if id < 0 || id >= Structure.nfacts d then
        fail violations "retracted id %d outside the journal" id
      else if Structure.live_id d id then
        fail violations "retracted id %d still live" id
      else if not (Fact.equal (Structure.id_fact d id) f) then
        fail violations "retracted id %d holds %a, journal says %a" id
          (Fact.pp ()) (Structure.id_fact d id) (Fact.pp ()) f)
    retr;
  (* dense-id buckets are the id images of the boxed buckets (live ids
     only: a resurrected fact's dead former id must not count) *)
  let ids_of fs =
    List.sort Int.compare
      (List.concat_map
         (fun f ->
           List.filteri
             (fun id _ ->
               Structure.live_id d id
               && Fact.equal (Structure.id_fact d id) f)
             (List.init (Structure.nfacts d) Fun.id))
         fs)
  in
  List.iter
    (fun sym ->
      let sid = Structure.sym_id d sym in
      let got =
        List.sort Int.compare (Intvec.to_list (Structure.ids_with_sym d sid))
      in
      if got <> ids_of (Structure.facts_with_sym d sym) then
        fail violations "ids_with_sym %a disagrees with facts_with_sym"
          Symbol.pp sym)
    (Structure.symbols d);
  Key_map.iter
    (fun (sym, pos, e) expected ->
      let sid = Structure.sym_id d sym in
      let got =
        List.sort Int.compare
          (Intvec.to_list (Structure.ids_with_pin d sid pos e))
      in
      if got <> ids_of expected then
        fail violations "ids_with_pin (%a,%d,%d) disagrees with ground truth"
          Symbol.pp sym pos e;
      if Structure.pin_count_id d sid pos e <> List.length expected then
        fail violations "pin_count_id (%a,%d,%d)=%d, expected %d" Symbol.pp sym
          pos e
          (Structure.pin_count_id d sid pos e)
          (List.length expected))
    truth;
  (* journal and watermark *)
  if Structure.watermark d <> n + nretr then
    fail violations "watermark=%d but size=%d (+%d retracted)"
      (Structure.watermark d) n nretr;
  let lo, hi = Structure.delta_ids d (Structure.watermark d) in
  if lo <> hi then
    fail violations "delta_ids at the watermark is nonempty: [%d, %d)" lo hi;
  (let lo, hi = Structure.delta_ids d 0 in
   if lo <> 0 || hi <> n + nretr then
     fail violations "delta_ids 0 = [%d, %d), expected [0, %d)" lo hi (n + nretr));
  let journal = Structure.delta_since d 0 in
  if List.length journal <> n then
    fail violations "journal has %d entries for %d facts" (List.length journal) n;
  if sorted_facts journal <> sorted_facts facts then
    fail violations "journal is not a permutation of the fact set";
  let seen = Fact.Tbl.create 64 in
  List.iter
    (fun f ->
      if Fact.Tbl.mem seen f then
        fail violations "journal repeats fact %a" (Fact.pp ()) f
      else Fact.Tbl.replace seen f ())
    journal;
  (* provenance (chase outputs only): every fact and element is stamped,
     journal stages never decrease, and a fact is never older than the
     elements it mentions *)
  if provenance then begin
    let last = ref min_int in
    List.iter
      (fun f ->
        match Structure.fact_stage d f with
        | None -> fail violations "fact %a has no stage" (Fact.pp ()) f
        | Some s ->
            if s < !last then
              fail violations
                "journal stage drops from %d to %d at %a (provenance not \
                 monotone)"
                !last s (Fact.pp ()) f;
            last := max !last s;
            List.iter
              (fun e ->
                match Structure.elem_stage d e with
                | None -> fail violations "element %d has no birth stage" e
                | Some b ->
                    if b > s then
                      fail violations
                        "fact %a at stage %d mentions element %d born later \
                         (stage %d)"
                        (Fact.pp ()) f s e b)
              (Fact.elements f))
      journal
  end;
  List.rev !violations

(* --- green graphs -------------------------------------------------------- *)

let graph g =
  let module G = Greengraph.Graph in
  let violations = ref [] in
  let edges = G.edges g in
  let n = List.length edges in
  if G.size g <> n then
    fail violations "graph size=%d but %d edges enumerate" (G.size g) n;
  let vertices = Int_set.of_list (G.vertices g) in
  if G.order g <> Int_set.cardinal vertices then
    fail violations "graph order=%d but %d vertices enumerate" (G.order g)
      (Int_set.cardinal vertices);
  let sorted es = List.sort compare es in
  let check_bucket what expected got =
    if sorted got <> sorted expected then
      fail violations "%s: %d edges indexed, %d expected" what (List.length got)
        (List.length expected)
  in
  Int_set.iter
    (fun v ->
      check_bucket
        (Printf.sprintf "out-bucket of %d" v)
        (List.filter (fun (e : G.edge) -> e.G.src = v) edges)
        (G.out_edges g v);
      check_bucket
        (Printf.sprintf "in-bucket of %d" v)
        (List.filter (fun (e : G.edge) -> e.G.dst = v) edges)
        (G.in_edges g v))
    vertices;
  List.iter
    (fun (e : G.edge) ->
      if not (Int_set.mem e.G.src vertices && Int_set.mem e.G.dst vertices) then
        fail violations "edge endpoints (%d, %d) not registered" e.G.src e.G.dst)
    edges;
  (* label buckets and the (vertex, label) pin buckets, over the labels
     that actually occur *)
  let labels =
    List.sort_uniq Greengraph.Label.compare
      (List.map (fun (e : G.edge) -> e.G.label) edges)
  in
  List.iter
    (fun lab ->
      check_bucket
        (Format.asprintf "label bucket %a" Greengraph.Label.pp lab)
        (List.filter (fun (e : G.edge) -> Greengraph.Label.equal e.G.label lab) edges)
        (G.with_label g lab);
      Int_set.iter
        (fun v ->
          check_bucket
            (Format.asprintf "(%d, %a) out-pin" v Greengraph.Label.pp lab)
            (List.filter
               (fun (e : G.edge) ->
                 e.G.src = v && Greengraph.Label.equal e.G.label lab)
               edges)
            (G.out_edges_with g v lab);
          check_bucket
            (Format.asprintf "(%d, %a) in-pin" v Greengraph.Label.pp lab)
            (List.filter
               (fun (e : G.edge) ->
                 e.G.dst = v && Greengraph.Label.equal e.G.label lab)
               edges)
            (G.in_edges_with g v lab))
        vertices)
    labels;
  (* journal and watermark *)
  if G.watermark g <> n then
    fail violations "graph watermark=%d but size=%d" (G.watermark g) n;
  let journal = G.delta_since g 0 in
  if List.length journal <> n then
    fail violations "edge journal has %d entries for %d edges"
      (List.length journal) n;
  if sorted journal <> sorted edges then
    fail violations "edge journal is not a permutation of the edge set";
  List.rev !violations

(* --- independent core-minimality witness ---------------------------------- *)

let fold_witness q =
  let canon, elem = Cq.Query.canonical q in
  let init =
    List.fold_left
      (fun acc x ->
        match elem x with Some e -> Term.Var_map.add x e acc | None -> acc)
      Term.Var_map.empty (Cq.Query.free q)
  in
  let n = Structure.card canon in
  let fixed =
    Int_set.of_list
      (List.filter_map (Structure.constant_opt canon) (Structure.constants canon))
  in
  let witness = ref None in
  (try
     Hom.iter_all ~init canon (Cq.Query.body q) (fun binding ->
         let image =
           Term.Var_map.fold (fun _ e acc -> Int_set.add e acc) binding fixed
         in
         if Int_set.cardinal image < n then begin
           witness := Some binding;
           raise Exit
         end)
   with Exit -> ());
  !witness
