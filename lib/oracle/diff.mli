(** The differential runner: chase the same generated instance under
    [`Stage], [`Seminaive], [`Oblivious], [`Par] and [`Par] with staged
    firing forced on, with fuel and element budgets, then diff
    structures, firing sequences and stats; cross-check CQ containment
    and cores against independent semantics; and audit every produced
    structure/graph with {!Audit}.

    Bit-identity is compared on facts, journals and firing sequences —
    never on the [hom.*] effort counters, which legitimately differ
    across plan orderings (cost-ordered and generic-join plans visit
    candidates in different orders while emitting the same match set).
    Stats-record fields ([applications], [stages], [triggers_considered],
    [body_matches]) are plan-independent and are compared.

    A run that exhausts its budget ends in the graceful
    {!outcome.Budget_exceeded} instead of diverging — the oblivious
    baseline diverges often (condition ­ is exactly what keeps the lazy
    chase tame), so budget exhaustion is an expected outcome, reported in
    the {!report} rate, not a failure. *)

open Relational

(** {1 Budgets} *)

type budget = {
  max_stages : int;  (** chase fuel: stages before cutting a run *)
  max_elems : int;   (** element budget, checked after every stage *)
  max_facts : int;   (** fact budget (edge budget for graph cases) *)
}

val default_budget : budget

(** {1 Single-engine runs} *)

(** How a governed run ended, collapsed for comparison purposes:
    [Budget_exceeded] covers every budget-like ending (stage fuel,
    element/fact budgets, deadline, cancellation); [Faulted] is an
    injected failpoint that was reported rather than recovered. *)
type outcome = Fixpoint | Budget_exceeded | Faulted

val pp_outcome : Format.formatter -> outcome -> unit

(** Collapse an engine's structured verdict onto {!outcome}. *)
val outcome_of_chase : Tgd.Chase.stats -> outcome

val outcome_of_graph : Greengraph.Rule.stats -> outcome

(** One firing of the chase, as recorded through [Chase.run ~on_fire]. *)
type firing = { at_stage : int; dep : string; frontier : (string * int) list }

type engine_run = {
  engine : Tgd.Chase.engine;
  outcome : outcome;
  stats : Tgd.Chase.stats;
  result : Structure.t;
  firings : firing list;
}

(** Chase a fresh realization of the instance under one engine, within
    the budget.  [tuning] selects the parallel engine's plan/firing
    knobs (ignored by the others). *)
val run_tgd :
  ?tuning:Tgd.Chase.par_tuning ->
  budget ->
  Tgd.Chase.engine ->
  Gen.instance ->
  engine_run

(** Diff the instance across all five runs: [`Stage], [`Seminaive],
    [`Par] and [`Par] with staged firing forced on must agree
    bit-for-bit (equal fact sets with equal element ids, equal journals
    in insertion order, equal firing sequences, equal
    applications/stages/fixpoint; delta-restriction never considering
    more than stage, and the sharded merge considering exactly what
    semi-naive does), every result must pass the structure audit, and a
    run that reached its fixpoint must model the dependencies.

    A pair of engines whose outcomes differ (one hit a budget where the
    other reached fixpoint, or one faulted) is {e incomparable}: its
    bit-identity diffs are skipped and the pair is counted in the third
    component instead of producing a spurious violation.  Returns the
    violations, the five runs and the incomparable-pair count. *)
val diff_tgd : budget -> Gen.instance -> string list * engine_run list * int

(** Same for a green-graph case under [`Stage] vs [`Seminaive] vs
    [`Par]; the third component again counts incomparable engine
    pairs. *)
val diff_graph :
  budget ->
  Gen.graph_case ->
  string list * (Greengraph.Rule.stats * outcome) list * int

(** {1 CQ cross-checks} *)

(** Check containment/core primitives over the signature against
    independent semantics: [contained_in q1 q2] must equal evaluating
    [q2] on the canonical database of [q1] (Chandra–Merlin), claimed
    containments must be monotone on a random instance, and [fold]'s
    iterated core must be equivalent to the input and minimal by
    {!Audit.fold_witness}.  [fold] defaults to
    [Cq.Containment.fold_step]; tests re-inject buggy legacy
    implementations through it to prove the harness catches them. *)
val cq_checks :
  ?fold:(Cq.Query.t -> Cq.Query.t option) ->
  Gen.rng ->
  Symbol.t list ->
  Structure.t ->
  string list

(** {1 The audit harness} *)

type report = {
  seed : int;
  cases : int;
  engine_runs : int;          (** chase runs executed across all cases *)
  budget_exceeded : int;      (** runs cut by fuel or element budgets *)
  incomparable : int;
      (** engine pairs with differing outcomes, skipped rather than
          diffed — not violations *)
  violations : (int * string list) list;
      (** failing cases: (case index, shrunk violation descriptions) *)
}

(** Run [cases] generated cases from [seed], starting at absolute case
    index [from_case] (default 0): per case, a seed-structure audit, the
    five-run TGD differential (shrunk on failure), the CQ cross-checks
    and a green-graph differential.  Deterministic: case [i] depends
    only on [(seed, i)] — never on other cases — so the range
    [[from_case, from_case+cases)] is a {e shard} whose report does not
    depend on how the remaining cases are split or ordered (the
    property campaign sharding relies on). *)
val run_cases :
  ?budget:budget ->
  ?fold:(Cq.Query.t -> Cq.Query.t option) ->
  ?from_case:int ->
  seed:int ->
  cases:int ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit
