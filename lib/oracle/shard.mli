(** The shared shard runner for sharded oracle campaigns.

    A {e shard} is a contiguous seed-range slice
    [[lo, lo+n)] of one oracle family's case space.  Because every
    family's case [i] depends only on [(seed, i)], a shard's outcome is
    independent of how the rest of the campaign is split, ordered or
    scheduled; summing shard counters therefore reproduces the
    monolithic run bit-for-bit.  That invariance is what lets a
    campaign supervisor re-run a shard after a crash, a vanished worker
    or an expired lease and still account every case {e exactly once in
    effect}.

    Outcomes are plain data — no JSON — because both [lib/campaign]
    (ledger records) and [lib/serve] (job results) consume shards, each
    with its own encoding. *)

(** The three campaignable oracle families. *)
type family = Audit | Faults | Incr

val all_families : family list
val family_name : family -> string
val family_of_name : string -> family option

(** A counterexample-corpus entry: the absolute case index, the entry
    kind (["violation"], ["corruption"] or ["quarantine"]) and its
    (already shrunk, where the family shrinks) description lines. *)
type entry = { e_case : int; e_kind : string; e_desc : string list }

(** A completed shard: canonical counters (sorted by name) and corpus
    entries (sorted by case then kind), so equal coverage compares as
    structural equality. *)
type outcome = {
  o_family : family;
  o_seed : int;
  o_lo : int;
  o_n : int;
  o_counters : (string * int) list;
  o_corpus : entry list;
}

(** Pointwise sum of two canonical counter lists, canonically sorted. *)
val counters_add :
  (string * int) list -> (string * int) list -> (string * int) list

val sort_corpus : entry list -> entry list

(** Run one case.  Probes the ["shard.case"] failpoint first — the
    chaos ladder's kill-worker-mid-shard site — then dispatches on the
    family.  [Faults] cases serialize behind a module-global lock
    (they reconfigure the process-global failpoint registry); keeping
    them exclusive of all other concurrent oracle work is the
    caller's job.  @raise Resilience.Failpoint.Injected under chaos. *)
val run_case :
  ?budget:Diff.budget ->
  family ->
  seed:int ->
  case:int ->
  (string * int) list * entry list

(** Run the whole shard, invoking [on_case] after each completed case —
    the campaign supervisor's lease heartbeat. *)
val run :
  ?budget:Diff.budget ->
  ?on_case:(int -> unit) ->
  family ->
  seed:int ->
  lo:int ->
  n:int ->
  outcome

(** Quarantine probe: run one case with no ["shard.case"] probe,
    catching any escaping exception.  [Ok ()] means the case is clean —
    the shard's earlier failures were injected or environmental. *)
val try_case :
  ?budget:Diff.budget -> family -> seed:int -> case:int -> (unit, string) result

(** Minimize a reproducibly crashing case for the quarantine corpus:
    for [Audit], greedily shrink the generated instance with
    {!Gen.shrink} under the predicate "the differential still raises"
    and describe the shrunk instance; other families (and
    non-reproducible cases) get a one-line explanation instead. *)
val minimize : ?budget:Diff.budget -> family -> seed:int -> case:int -> string list

val pp_family : Format.formatter -> family -> unit
val pp_outcome : Format.formatter -> outcome -> unit
