(* Deterministic seeded generation for the oracle (see gen.mli).

   Everything generated here is pure data first (instance / graph_case
   recipes) and realized into mutable structures by [build] — that is
   what makes shrinking possible: a failing case is rebuilt from a
   smaller recipe and re-run, instead of mutating a structure that the
   chase has already grown. *)

open Relational

(* --- splitmix64 -------------------------------------------------------- *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let case_rng ~seed ~case =
  let r = rng seed in
  let mixed = Int64.add (next r) (Int64.mul (Int64.of_int (case + 1)) 0xBF58476D1CE4E5B9L) in
  let r' = { state = mixed } in
  ignore (next r');
  r'

let int r n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int n))

let range r lo hi = lo + int r (hi - lo + 1)
let bool r = int r 2 = 0

let pick r = function
  | [] -> invalid_arg "Oracle.Gen.pick: empty list"
  | l -> List.nth l (int r (List.length l))

(* --- signatures and instances ------------------------------------------ *)

type instance = {
  signature : Symbol.t list;
  n_elems : int;
  consts : string list;
  facts : Fact.t list;
  deps : Tgd.Dep.t list;
}

let signature r =
  let n = range r 1 3 in
  List.init n (fun i -> Symbol.make (Printf.sprintf "R%d" i) (range r 1 3))

(* Element pool of a recipe: plain elements 0..n-1, then the constants'
   elements in list order (matching [build]'s allocation order). *)
let pool n_elems consts =
  List.init (n_elems + List.length consts) (fun i -> i)

let random_fact r sg po =
  let sym = pick r sg in
  Fact.make sym (Array.init (Symbol.arity sym) (fun _ -> pick r po))

(* TGDs: bodies over {x, y, z}, heads over the body's variables plus the
   existential pool {u, v} — at least one frontier variable whenever the
   body has any, so the dependency is a genuine glueing rule rather than
   a disconnected head factory. *)
let random_dep r sg i =
  let body_vars = [ "x"; "y"; "z" ] in
  let atom pool_vars =
    let sym = pick r sg in
    Atom.make sym
      (List.init (Symbol.arity sym) (fun _ -> Term.var (pick r pool_vars)))
  in
  let body = List.init (range r 1 2) (fun _ -> atom body_vars) in
  let bvs = Term.Var_set.elements (Atom.vars_of_list body) in
  let head_pool = bvs @ [ "u"; "v" ] in
  let head = List.init (range r 1 2) (fun _ -> atom head_pool) in
  Tgd.Dep.make ~name:(Printf.sprintf "d%d" i) ~body ~head ()

let instance r =
  let sg = signature r in
  let n_elems = range r 1 4 in
  let consts = if int r 3 = 0 then [ "c" ] else [] in
  let po = pool n_elems consts in
  let n_facts = range r 1 6 in
  let facts =
    (* dedup, preserving first-occurrence order, so journal-vs-facts
       audits see the exact insertion sequence *)
    let seen = Hashtbl.create 8 in
    List.filter
      (fun f ->
        if Hashtbl.mem seen f then false
        else begin
          Hashtbl.replace seen f ();
          true
        end)
      (List.init n_facts (fun _ -> random_fact r sg po))
  in
  let deps = List.init (range r 1 3) (fun i -> random_dep r sg i) in
  { signature = sg; n_elems; consts; facts; deps }

let build inst =
  let d = Structure.create () in
  for _ = 1 to inst.n_elems do
    ignore (Structure.fresh d)
  done;
  List.iter (fun c -> ignore (Structure.constant d c)) inst.consts;
  List.iter (fun f -> ignore (Structure.add_fact d f)) inst.facts;
  d

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink_instance inst =
  let fewer_deps =
    if List.length inst.deps <= 1 then []
    else List.mapi (fun i _ -> { inst with deps = drop_nth inst.deps i }) inst.deps
  in
  let fewer_facts =
    List.mapi (fun i _ -> { inst with facts = drop_nth inst.facts i }) inst.facts
  in
  fewer_deps @ fewer_facts

(* --- conjunctive queries ------------------------------------------------ *)

let query ?arity r sg =
  let vars = [ "x"; "y"; "z"; "w" ] in
  let term () = if int r 6 = 0 then Term.cst "c" else Term.var (pick r vars) in
  let body =
    List.init (range r 1 4) (fun _ ->
        let sym = pick r sg in
        Atom.make sym (List.init (Symbol.arity sym) (fun _ -> term ())))
  in
  let used = Term.Var_set.elements (Atom.vars_of_list body) in
  let want = match arity with Some a -> a | None -> range r 0 2 in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  Cq.Query.make ~free:(take (min want (List.length used)) used) body

let shrink_query q =
  let free = Cq.Query.free q in
  let body = Cq.Query.body q in
  if List.length body <= 1 then []
  else
    List.filter_map Fun.id
      (List.mapi
         (fun i _ ->
           let body' = drop_nth body i in
           let used = Atom.vars_of_list body' in
           if List.for_all (fun x -> Term.Var_set.mem x used) free then
             Some (Cq.Query.make ~free body')
           else None)
         body)

(* --- green-graph rule sets ---------------------------------------------- *)

type graph_case = {
  rules : Greengraph.Rule.t list;
  n_vertices : int;
  edges : (Greengraph.Label.t * int * int) list;
}

let labels = [ Greengraph.Label.empty; Greengraph.Label.l 0; Greengraph.Label.l 1;
               Greengraph.Label.l 2; Greengraph.Label.l 5 ]

let random_label r = pick r labels

let distinct_label r a =
  let rec go () =
    let b = random_label r in
    if Greengraph.Label.equal a b then go () else b
  in
  go ()

let random_rule r i =
  let conn = if bool r then Greengraph.Rule.Amp else Greengraph.Rule.Slash in
  let l1 = random_label r in
  let l2 = random_label r in
  Greengraph.Rule.make ~name:(Printf.sprintf "g%d" i) conn (l1, l2)
    (distinct_label r l1, distinct_label r l2)

let graph_case r =
  let rules = List.init (range r 1 3) (fun i -> random_rule r i) in
  let n_vertices = range r 2 5 in
  let n_edges = range r 0 4 in
  let edges =
    List.init n_edges (fun _ ->
        (random_label r, int r n_vertices, int r n_vertices))
  in
  { rules; n_vertices; edges }

let build_graph gc =
  let module G = Greengraph.Graph in
  let g, _a, _b = G.d_i () in
  (* d_i allocates vertices 0 (a) and 1 (b); extend to n_vertices *)
  for _ = 2 to gc.n_vertices - 1 do
    ignore (G.fresh g)
  done;
  List.iter (fun (lab, s, t) -> ignore (G.add_edge g lab s t)) gc.edges;
  g

let shrink_graph_case gc =
  let fewer_rules =
    if List.length gc.rules <= 1 then []
    else List.mapi (fun i _ -> { gc with rules = drop_nth gc.rules i }) gc.rules
  in
  let fewer_edges =
    List.mapi (fun i _ -> { gc with edges = drop_nth gc.edges i }) gc.edges
  in
  fewer_rules @ fewer_edges

(* --- greedy shrinking ---------------------------------------------------- *)

let rec shrink candidates fails x =
  match List.find_opt fails (candidates x) with
  | Some x' -> shrink candidates fails x'
  | None -> x
