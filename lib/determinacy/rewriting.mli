(** View-based rewriting (Section I.B) by chase & backchase: when a
    conjunctive rewriting of Q0 over the views exists, the universal plan
    (the canonical view instance of A[Q0], read back as a query) is one.
    Theorem 2 shows finitely determined queries need not have any FO
    rewriting at all. *)

(** Expand a query over the view schema into the base schema (view atoms
    replaced by view bodies, existentials freshened per occurrence).
    @raise Invalid_argument on an unknown view name. *)
val expand : views:(string * Cq.Query.t) list -> Cq.Query.t -> Cq.Query.t

(** The universal plan, when the canonical view instance is nonempty. *)
val universal_plan : views:(string * Cq.Query.t) list -> Cq.Query.t -> Cq.Query.t option

type result =
  | Rewriting of Cq.Query.t   (** an exact CQ rewriting over the views *)
  | No_conjunctive_rewriting

(** Decide whether the universal plan is an exact rewriting. *)
val conjunctive : views:(string * Cq.Query.t) list -> Cq.Query.t -> result

val pp_result : Format.formatter -> result -> unit
