(* View-based rewriting (Section I.B).

   When Q determines Q0 in the unrestricted sense, [NSV07] guarantees an
   FO-rewriting of Q0 over the view schema; when a *conjunctive* rewriting
   exists, the classic chase & backchase recipe finds it:

     1. take the canonical database A[Q0];
     2. evaluate the views on it — the canonical view instance;
     3. read the view instance back as a CQ over the view schema, freeing
        the images of Q0's free variables (the universal plan);
     4. accept if its expansion (replacing each view atom by the view's
        body with fresh existentials) is equivalent to Q0.

   Theorem 2 of the paper shows this cannot always succeed for *finitely*
   determined queries — there are Q, Q0 with no FO (a fortiori no CQ)
   rewriting at all. *)

open Relational

(* Expand a query over the view schema into one over the base schema. *)
let expand ~views q =
  let counter = ref 0 in
  let body =
    List.concat_map
      (fun atom ->
        let name = Symbol.name (Atom.sym atom) in
        match List.assoc_opt name views with
        | None ->
            invalid_arg
              (Printf.sprintf "Rewriting.expand: unknown view %s" name)
        | Some view ->
            incr counter;
            let prefix = Printf.sprintf "x%d_" !counter in
            (* view free variables are substituted by the atom's arguments;
               existentials are freshened per occurrence *)
            let subst =
              List.fold_left2
                (fun acc v arg -> Term.Var_map.add v arg acc)
                Term.Var_map.empty (Cq.Query.free view) (Atom.args atom)
            in
            let freshen_then_substitute a =
              Atom.substitute subst
                (Atom.rename
                   (fun x ->
                     if List.mem x (Cq.Query.free view) then x else prefix ^ x)
                   a)
            in
            List.map freshen_then_substitute (Cq.Query.body view))
      (Cq.Query.body q)
  in
  Cq.Query.make ~free:(Cq.Query.free q) body

(* The universal plan: the canonical view instance of A[Q0], read back as
   a query over the view schema. *)
let universal_plan ~views q0 =
  let canon, elem = Cq.Query.canonical q0 in
  let view_inst = Cq.Eval.view_structure views canon in
  if Structure.size view_inst = 0 then None
  else
    let free_elems = List.filter_map elem (Cq.Query.free q0) in
    (* name elements after their canonical variables so the plan is
       readable *)
    let plan = Cq.Query.of_structure ~free:free_elems view_inst in
    Some plan

type result =
  | Rewriting of Cq.Query.t   (* an exact CQ rewriting over the views *)
  | No_conjunctive_rewriting  (* the universal plan is inexact or empty *)

let conjunctive ~views q0 =
  match universal_plan ~views q0 with
  | None -> No_conjunctive_rewriting
  | Some plan ->
      let expansion = expand ~views plan in
      if Cq.Containment.equivalent expansion q0 then
        Rewriting (Cq.Containment.core plan)
      else No_conjunctive_rewriting

let pp_result ppf = function
  | Rewriting q -> Fmt.pf ppf "rewriting: %a" Cq.Query.pp q
  | No_conjunctive_rewriting -> Fmt.string ppf "no conjunctive rewriting"
