(* An instance of the Conjunctive Query (finite) Determinacy Problem
   (Section I): a set Q of named view queries and a query Q0. *)

type t = {
  views : (string * Cq.Query.t) list;
  q0 : Cq.Query.t;
}

let make ~views ~q0 =
  if views = [] then invalid_arg "Instance.make: empty view set";
  { views; q0 }

let views t = t.views
let q0 t = t.q0

let tgds t = Tgd.Dep.t_q t.views

let pp ppf t =
  Fmt.pf ppf "@[<v>views:@,%a@,Q0: %a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (n, q) -> Fmt.pf ppf "  %s: %a" n Cq.Query.pp q))
    t.views Cq.Query.pp t.q0
