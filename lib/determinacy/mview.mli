(** Maintained views: [chase(T_Q, green(D))] kept incremental under base
    edits (Section IV read as view exchange).

    The red Q0-answers of the chased structure over the elements of the
    base [D] are the certain answers of Q0 given the view image Q(D);
    maintaining the chase with [Tgd.Chase.Maint] makes those answers
    available after every edit without a from-scratch re-run. *)

open Relational

type t

(** One edit on the plain base database; painting green happens
    inside. *)
type op = Insert of Fact.t | Retract of Fact.t

(** Chase [green(base)] under the instance's T_Q with maintenance
    tracking.  [base] itself is not mutated. *)
val create :
  ?engine:[ `Seminaive | `Par ] ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  Instance.t ->
  Structure.t ->
  t * Tgd.Chase.stats

val instance : t -> Instance.t

(** The maintained two-colored structure (do not mutate). *)
val structure : t -> Structure.t

(** The underlying maintenance state, for audits. *)
val maint : t -> Tgd.Chase.Maint.t

(** [true] after a governor-cut run; finish with {!continue_} before the
    next {!apply_edit}. *)
val pending : t -> bool

val continue_ :
  ?governor:Resilience.Governor.t -> ?max_stages:int -> t -> Tgd.Chase.stats

(** Push a batch of base edits through the maintenance layer and restore
    the chase fixpoint. *)
val apply_edit :
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  t ->
  op list ->
  Tgd.Chase.Maint.edit_stats

(** The certain answers of [q] under view exchange: red answers of the
    maintained chase, restricted to tuples over base elements. *)
val certain_answers : t -> Cq.Query.t -> Cq.Eval.Tuple_set.t

(** {!certain_answers} of the instance's Q0. *)
val certain_answers_q0 : t -> Cq.Eval.Tuple_set.t

(** The materialized view image Q(D) over the live base, as a structure
    on the view signature. *)
val view_image : t -> Structure.t
