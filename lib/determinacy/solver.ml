(* Determinacy solvers.

   Unrestricted determinacy is r.e.: Q determines Q0 iff red(Q0) is true
   in the single universal structure chase(T_Q, green(Q0)) (Section IV).
   Finite determinacy is co-r.e.: non-determinacy is certified by one
   finite two-colored structure D with D ⊨ T_Q whose green Q0-answers
   are not all red Q0-answers (CQfDP.3).  Since the problem is
   undecidable (Theorem 1), both procedures are necessarily bounded
   semi-decisions. *)

open Relational

type verdict =
  | Determined of Tgd.Chase.stats      (* certificate: chase proof *)
  | Not_determined of Structure.t      (* certificate: counterexample *)
  | Unknown of string

let pp_verdict ppf = function
  | Determined s -> Fmt.pf ppf "determined (%a)" Tgd.Chase.pp_stats s
  | Not_determined d ->
      Fmt.pf ppf "not determined (counterexample: %a)" Structure.pp_stats d
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

(* --- unrestricted case (Section IV, via the universal chase) ---------- *)

let unrestricted ?engine ?jobs ?governor ?(max_stages = 64) (inst : Instance.t) =
  match
    Tgd.Greenred.unrestricted_determinacy ?engine ?jobs ?governor ~max_stages
      (Instance.views inst) (Instance.q0 inst)
  with
  | `Determined (stats, _) -> Determined stats
  | `Not_determined (_, d) -> Not_determined d
  | `Unknown _ -> Unknown "chase budget exhausted"

(* --- finite case ------------------------------------------------------ *)

(* Certify a purported finite counterexample: D ⊨ T_Q and some green
   Q0-answer is not a red Q0-answer. *)
let certify_counterexample (inst : Instance.t) d =
  Tgd.Greenred.is_finite_counterexample (Instance.views inst) (Instance.q0 inst) d

(* Exhaustive search for a finite counterexample over tiny domains: every
   two-colored structure with at most [max_elems] elements over the
   signature of the instance.  Feasible only for small signatures (the
   slot count is capped); the counterexamples of the classic non-determined
   instances (e.g. P2 vs E) live at 2 elements. *)
let signature_symbols (inst : Instance.t) =
  let syms_of q =
    List.map (fun a -> Symbol.dalt (Atom.sym a)) (Cq.Query.body q)
  in
  List.concat_map (fun (_, q) -> syms_of q) (Instance.views inst)
  @ syms_of (Instance.q0 inst)
  |> List.sort_uniq Symbol.compare

let rec tuples n k =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.init n (fun e -> e :: rest))
      (tuples n (k - 1))

let exhaustive ?(max_slots = 20) (inst : Instance.t) ~max_elems =
  let syms = signature_symbols inst in
  let rec try_n n =
    if n > max_elems then None
    else
      let slots =
        List.concat_map
          (fun sym ->
            List.concat_map
              (fun color ->
                List.map
                  (fun args ->
                    Fact.make (Symbol.paint color sym) (Array.of_list args))
                  (tuples n (Symbol.arity sym)))
              [ Symbol.Green; Symbol.Red ])
          syms
      in
      let k = List.length slots in
      if k > max_slots then None
      else
        let slots = Array.of_list slots in
        let total = 1 lsl k in
        let rec scan mask =
          if mask >= total then try_n (n + 1)
          else begin
            let d = Structure.create () in
            for e = 0 to n - 1 do
              Structure.reserve d e
            done;
            for i = 0 to k - 1 do
              if mask land (1 lsl i) <> 0 then ignore (Structure.add_fact d slots.(i))
            done;
            if certify_counterexample inst d then Some d else scan (mask + 1)
          end
        in
        scan 1
  in
  try_n 1

(* Bounded search for a finite counterexample. *)
let finite ?engine ?jobs ?governor ?(max_stages = 8) ?(max_elems = 2)
    (inst : Instance.t) =
  (* A positive unrestricted verdict settles the finite case too:
     unrestricted determinacy implies finite determinacy. *)
  match unrestricted ?engine ?jobs ?governor ~max_stages inst with
  | Determined s -> Determined s
  | Unknown _ | Not_determined _ -> (
      match exhaustive inst ~max_elems with
      | Some d -> Not_determined d
      | None -> Unknown "no counterexample found within budget")
