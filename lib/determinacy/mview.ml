(* Maintained views: the chase side of Section IV kept incremental.

   For an instance (Q, Q0) and a plain base database D, the structure
   chase(T_Q, green(D)) answers queries under view exchange: its red
   Q0-answers over the elements of D are exactly the certain answers of
   Q0 given the view image Q(D).  Instead of re-running that chase on
   every change to D, we keep it as a [Tgd.Chase.Maint] instance and
   push base edits through the maintenance layer — the view then answers
   from the maintained structure with plain CQ evaluation. *)

open Relational

type op = Insert of Fact.t | Retract of Fact.t

type t = {
  inst : Instance.t;
  maint : Tgd.Chase.Maint.t;
  (* elements of the (current) base — certain answers may only mention
     these, never the chase's nulls *)
  base_elems : (int, unit) Hashtbl.t;
}

let paint_fact f =
  Fact.make (Symbol.green (Fact.sym f)) (Array.copy (Fact.args f))

let note_elems t f = Array.iter (fun e -> Hashtbl.replace t.base_elems e ()) (Fact.args f)

let create ?engine ?jobs ?governor ?max_stages inst base =
  let d = Structure.paint Symbol.Green base in
  let maint, stats =
    Tgd.Chase.Maint.create ?engine ?jobs ?governor ?max_stages
      (Instance.tgds inst) d
  in
  let t = { inst; maint; base_elems = Hashtbl.create 64 } in
  Structure.iter_facts base (fun f -> note_elems t f);
  Structure.iter_elems base (fun e -> Hashtbl.replace t.base_elems e ());
  (t, stats)

let instance t = t.inst
let structure t = Tgd.Chase.Maint.structure t.maint
let maint t = t.maint
let pending t = Tgd.Chase.Maint.pending t.maint

let continue_ ?governor ?max_stages t =
  Tgd.Chase.Maint.continue_ ?governor ?max_stages t.maint

let apply_edit ?governor ?max_stages t ops =
  let ops' =
    List.map
      (function
        | Insert f ->
            note_elems t f;
            Tgd.Chase.Maint.Insert (paint_fact f)
        | Retract f -> Tgd.Chase.Maint.Retract (paint_fact f))
      ops
  in
  Tgd.Chase.Maint.apply_edit ?governor ?max_stages t.maint ops'

(* The certain answers of [q] under view exchange: red answers of the
   maintained chase whose elements all lie in the base — a tuple through
   a null is witnessed only by the chase's invented elements and is not
   certain. *)
let certain_answers t q =
  let d = structure t in
  let red_q = Cq.Query.paint Symbol.Red q in
  Cq.Eval.Tuple_set.filter
    (fun tup -> Array.for_all (fun e -> Hashtbl.mem t.base_elems e) tup)
    (Cq.Eval.answers red_q d)

let certain_answers_q0 t = certain_answers t (Instance.q0 t.inst)

(* The materialized view image Q(D) itself, off the green side of the
   maintained structure (green facts of base elements = the live base). *)
let view_image t =
  let d = structure t in
  let base =
    Structure.filter
      (fun f ->
        Symbol.is_green (Fact.sym f)
        && Array.for_all (fun e -> Hashtbl.mem t.base_elems e) (Fact.args f))
      d
  in
  Cq.Eval.view_structure
    (List.map
       (fun (n, q) -> (n, Cq.Query.paint Symbol.Green q))
       (Instance.views t.inst))
    base
