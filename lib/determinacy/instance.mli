(** An instance of the Conjunctive Query (finite) Determinacy Problem
    (Section I): named view queries Q and a query Q0. *)

type t

(** @raise Invalid_argument on an empty view set. *)
val make : views:(string * Cq.Query.t) list -> q0:Cq.Query.t -> t

val views : t -> (string * Cq.Query.t) list
val q0 : t -> Cq.Query.t

(** T_Q of the instance's views (Definition 3). *)
val tgds : t -> Tgd.Dep.t list

val pp : Format.formatter -> t -> unit
