(** Determinacy solvers — bounded semi-decisions with certificates.
    Unrestricted determinacy is r.e. (the universal chase, Section IV);
    finite determinacy is co-r.e. (finite counterexamples).  Theorem 1
    says no complete procedure exists. *)

open Relational

type verdict =
  | Determined of Tgd.Chase.stats   (** certificate: the chase proof *)
  | Not_determined of Structure.t   (** certificate: a counterexample *)
  | Unknown of string

val pp_verdict : Format.formatter -> verdict -> unit

(** [chase(T_Q, green(Q0)) ⊨ red(Q0)]? *)
val unrestricted :
  ?engine:Tgd.Chase.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  Instance.t ->
  verdict

(** Certify a purported finite counterexample: D ⊨ T_Q and some green
    Q0-answer is not red. *)
val certify_counterexample : Instance.t -> Structure.t -> bool

(** The colored signature symbols of the instance. *)
val signature_symbols : Instance.t -> Symbol.t list

(** Exhaustive counterexample search over all two-colored structures with
    at most [max_elems] elements (slot count capped by [max_slots]). *)
val exhaustive : ?max_slots:int -> Instance.t -> max_elems:int -> Structure.t option

(** Chase first (unrestricted determinacy implies finite), then search for
    a small certified counterexample. *)
val finite :
  ?engine:Tgd.Chase.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  ?max_elems:int ->
  Instance.t ->
  verdict
