(* Observability substrate: monotonic clock, metrics registry, span
   tracing with Chrome trace-event export.

   Everything here is designed around one contract: when the switches are
   off, an instrumentation hook in a hot path costs a single [bool ref]
   check.  The instrumented libraries create their counters/histograms at
   module toplevel (creation is idempotent per name), so the per-event
   cost is only the guarded update. *)

let metrics_on = ref false
let trace_on = ref false

(* --- clock ------------------------------------------------------------ *)

module Clock = struct
  (* CLOCK_MONOTONIC via a C stub (see clock_stubs.c).  Arbitrary epoch;
     immune to NTP steps, so deadline arithmetic and span durations can
     never see time move backwards. *)
  external monotonic_s : unit -> float = "redspider_clock_monotonic_s"

  let raw_s = monotonic_s

  (* The wall clock.  Kept only for epoch stamps in exported artifacts
     (trace files, job manifests); never used for durations or
     deadlines. *)
  let wall_s = Unix.gettimeofday

  (* Clamp a possibly non-monotonic sampler to its running maximum: a
     backwards clock step reads as a 0-length interval instead of a
     negative one.  With [raw_s] on CLOCK_MONOTONIC this is belt and
     braces (the stub's wall-clock fallback is the one path that could
     still step). *)
  let monotonize sample =
    let last = ref neg_infinity in
    fun () ->
      let t = sample () in
      if t < !last then !last
      else begin
        last := t;
        t
      end

  let now_s = monotonize raw_s
end

(* --- JSON rendering helpers ------------------------------------------- *)

(* The names we emit are code-controlled identifiers, but escape anyway so
   a stray quote cannot corrupt the output. *)
let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* --- metrics ---------------------------------------------------------- *)

module Metrics = struct
  type counter = { c_name : string; mutable count : int }

  (* Log-scale histogram: bucket 0 counts observations <= 0, bucket i >= 1
     counts values in [2^(i-1), 2^i).  62 buckets cover every positive
     OCaml int. *)
  type histogram = {
    h_name : string;
    buckets : int array;
    mutable n : int;
    mutable sum : int;
    mutable max : int;
  }

  let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
  let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

  let counter name =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; count = 0 } in
        Hashtbl.replace counters name c;
        c

  let histogram name =
    match Hashtbl.find_opt histograms name with
    | Some h -> h
    | None ->
        let h =
          { h_name = name; buckets = Array.make 63 0; n = 0; sum = 0; max = 0 }
        in
        Hashtbl.replace histograms name h;
        h

  let incr c = if !metrics_on then c.count <- c.count + 1
  let add c n = if !metrics_on then c.count <- c.count + n

  let bucket_of v =
    if v <= 0 then 0
    else
      let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
      go 0 v

  let observe h v =
    if !metrics_on then begin
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.n <- h.n + 1;
      h.sum <- h.sum + (if v > 0 then v else 0);
      if v > h.max then h.max <- v
    end

  let value c = c.count

  let snapshot () =
    Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) counters []
    |> List.sort compare

  let diff before after =
    let old = Hashtbl.create 16 in
    List.iter (fun (k, v) -> Hashtbl.replace old k v) before;
    List.filter_map
      (fun (k, v) ->
        let v0 = Option.value (Hashtbl.find_opt old k) ~default:0 in
        if v = v0 then None else Some (k, v - v0))
      after

  let reset () =
    Hashtbl.iter (fun _ c -> c.count <- 0) counters;
    Hashtbl.iter
      (fun _ h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.n <- 0;
        h.sum <- 0;
        h.max <- 0)
      histograms

  (* Non-empty buckets of a histogram as (bucket lower bound, count). *)
  let hist_rows h =
    let rows = ref [] in
    Array.iteri
      (fun i n ->
        if n > 0 then
          rows := ((if i = 0 then 0 else 1 lsl (i - 1)), n) :: !rows)
      h.buckets;
    List.rev !rows

  let sorted_hists () =
    Hashtbl.fold (fun _ h acc -> h :: acc) histograms []
    |> List.sort (fun h1 h2 -> compare h1.h_name h2.h_name)

  let to_json () =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"counters\": {";
    let first = ref true in
    List.iter
      (fun (name, v) ->
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b "\n    ";
        json_string b name;
        Buffer.add_string b (Printf.sprintf ": %d" v))
      (snapshot ());
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    let first = ref true in
    List.iter
      (fun h ->
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b "\n    ";
        json_string b h.h_name;
        Buffer.add_string b
          (Printf.sprintf ": {\"count\": %d, \"sum\": %d, \"max\": %d, \"buckets\": [" h.n
             h.sum h.max);
        Buffer.add_string b
          (String.concat ", "
             (List.map
                (fun (lo, n) -> Printf.sprintf "[%d, %d]" lo n)
                (hist_rows h)));
        Buffer.add_string b "]}")
      (sorted_hists ());
    Buffer.add_string b "\n  }\n}\n";
    Buffer.contents b

  let pp_summary ppf () =
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun (name, v) ->
        if v <> 0 then Format.fprintf ppf "%-34s %12d@," name v)
      (snapshot ());
    List.iter
      (fun h ->
        if h.n > 0 then
          Format.fprintf ppf "%-34s n=%d sum=%d max=%d mean=%.1f@," h.h_name
            h.n h.sum h.max
            (float_of_int h.sum /. float_of_int h.n))
      (sorted_hists ());
    Format.fprintf ppf "@]"
end

(* --- tracing ---------------------------------------------------------- *)

module Trace = struct
  type event = {
    name : string;
    ts_s : float; (* absolute, Clock.now_s *)
    dur_s : float;
    args : (string * int) list;
  }

  (* Events are buffered most-recent-first and reversed at export; the
     epoch (zero point of the exported timestamps) is stamped when tracing
     is first enabled. *)
  let buffer : event list ref = ref []
  let count = ref 0
  let epoch = ref nan

  (* The wall-clock time at which the (monotonic) epoch was stamped: the
     one place wall time enters a trace, so exported (relative,
     monotonic) timestamps can be anchored to civil time. *)
  let epoch_wall = ref nan

  let stamp_epoch () =
    if Float.is_nan !epoch then begin
      epoch := Clock.now_s ();
      epoch_wall := Clock.wall_s ()
    end

  let with_span name ?args f =
    if not !trace_on then f ()
    else begin
      let t0 = Clock.now_s () in
      let finish () =
        (* tracing may have been turned off mid-span; record anyway so
           spans never dangle *)
        let dur_s = Clock.now_s () -. t0 in
        let args = match args with None -> [] | Some g -> g () in
        buffer := { name; ts_s = t0; dur_s; args } :: !buffer;
        incr count
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let events () = !count

  let clear () =
    buffer := [];
    count := 0

  (* Chrome trace-event format: a JSON array of complete ("X") events.
     Timestamps are microseconds from the trace epoch; nesting on the
     single pid/tid track is implied by interval containment. *)
  let to_json () =
    let b = Buffer.create 4096 in
    let epoch = if Float.is_nan !epoch then 0. else !epoch in
    Buffer.add_string b "[";
    let first = ref true in
    (* Anchor event: the wall-clock time of the trace epoch, as an
       instant at ts 0.  Every other timestamp is monotonic-relative. *)
    if not (Float.is_nan !epoch_wall) then begin
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"name\": \"trace_epoch\", \"cat\": \"redspider\", \"ph\": \
            \"I\", \"pid\": 1, \"tid\": 1, \"ts\": 0.000, \"args\": \
            {\"wall_s\": %d, \"wall_us\": %d}}"
           (int_of_float !epoch_wall)
           (int_of_float (Float.rem !epoch_wall 1. *. 1e6)))
    end;
    List.iter
      (fun e ->
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b "\n{";
        Buffer.add_string b "\"name\": ";
        json_string b e.name;
        Buffer.add_string b
          (Printf.sprintf
             ", \"cat\": \"redspider\", \"ph\": \"X\", \"pid\": 1, \"tid\": \
              1, \"ts\": %.3f, \"dur\": %.3f"
             ((e.ts_s -. epoch) *. 1e6)
             (e.dur_s *. 1e6));
        if e.args <> [] then begin
          Buffer.add_string b ", \"args\": {";
          let afirst = ref true in
          List.iter
            (fun (k, v) ->
              if not !afirst then Buffer.add_string b ", ";
              afirst := false;
              json_string b k;
              Buffer.add_string b (Printf.sprintf ": %d" v))
            e.args;
          Buffer.add_char b '}'
        end;
        Buffer.add_char b '}')
      (List.rev !buffer);
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  let export file =
    let oc = open_out file in
    output_string oc (to_json ());
    close_out oc
end

(* --- switches --------------------------------------------------------- *)

let set_metrics v = metrics_on := v

let set_tracing v =
  if v then Trace.stamp_epoch ();
  trace_on := v

let disable_all () =
  metrics_on := false;
  trace_on := false
