(** Observability: monotonic clock, metrics registry, span tracing.

    Zero-dependency (stdlib + unix) substrate shared by every execution
    layer.  The overhead contract: with both switches off, every hook in
    the instrumented hot paths reduces to a single [bool ref] check — no
    allocation, no system call, no formatting.  Enabling metrics turns the
    counter/histogram hooks into plain mutable-field updates; enabling
    tracing additionally timestamps spans and buffers trace events in
    memory until {!Trace.export}. *)

(** Metrics switch.  Hot-path hooks read this ref directly; prefer
    {!set_metrics} to flip it. *)
val metrics_on : bool ref

(** Tracing switch.  Span hooks read this ref directly; prefer
    {!set_tracing} to flip it (it also stamps the trace epoch). *)
val trace_on : bool ref

val set_metrics : bool -> unit

(** [set_tracing true] also stamps the trace epoch (the zero point of
    exported timestamps) if it is not already set. *)
val set_tracing : bool -> unit

(** Both switches off; buffered trace events and registered metric values
    are retained. *)
val disable_all : unit -> unit

(** {1 Clock} *)

module Clock : sig
  (** The raw monotonic clock (CLOCK_MONOTONIC via a C stub, seconds
      from an arbitrary epoch).  Immune to NTP steps: deadlines compared
      against it cannot fire early and span durations cannot go
      negative. *)
  val raw_s : unit -> float

  (** The wall clock ([Unix.gettimeofday]).  Non-monotonic — NTP steps
      can move it backwards — so it is used only for epoch fields of
      exported artifacts (trace files, job manifests), never for
      durations or deadline arithmetic. *)
  val wall_s : unit -> float

  (** [monotonize sample] wraps a possibly non-monotonic sampler into a
      non-decreasing one: a sample below the running maximum is clamped
      to that maximum (so deltas are never negative, at the price of
      reading 0 across a backwards step). *)
  val monotonize : (unit -> float) -> unit -> float

  (** The process-wide monotonic clock, in seconds (monotonized as belt
      and braces around the stub's wall-clock fallback).  All obs
      timestamps, governor deadlines and bench timings go through
      this. *)
  val now_s : unit -> float
end

(** {1 Metrics}

    A process-global registry of named counters and log-scale histograms.
    Creation is idempotent per name and cheap enough for module-toplevel
    use; updates are dropped while {!metrics_on} is false. *)

module Metrics : sig
  type counter
  type histogram

  (** Find-or-create; one instance per name process-wide. *)
  val counter : string -> counter

  (** Find-or-create.  Histograms bucket observations by [log2]: bucket
      [i >= 1] counts values in [[2^(i-1), 2^i)], bucket 0 counts
      non-positive and zero values. *)
  val histogram : string -> histogram

  val incr : counter -> unit
  val add : counter -> int -> unit
  val observe : histogram -> int -> unit

  val value : counter -> int

  (** All counters with their current values, sorted by name. *)
  val snapshot : unit -> (string * int) list

  (** [diff before after] — the counters of [after] minus their values in
      [before], zero deltas dropped. *)
  val diff : (string * int) list -> (string * int) list -> (string * int) list

  (** Zero every counter and histogram (registrations survive). *)
  val reset : unit -> unit

  (** The whole registry as a JSON object:
      [{"counters": {..}, "histograms": {..}}]. *)
  val to_json : unit -> string

  (** Human-readable dump of every non-zero counter and histogram. *)
  val pp_summary : Format.formatter -> unit -> unit
end

(** {1 Tracing}

    Hierarchical spans buffered as Chrome trace-event "X" (complete)
    events; nesting is implied by timestamp containment on the single
    track, which is how the Chrome/Perfetto viewers render it. *)

module Trace : sig
  (** [with_span name ?args f] runs [f] inside a span.  With tracing off
      this is a single flag check around [f ()].  [args] is evaluated at
      span end (tracing on only), so it can read counters [f] filled in. *)
  val with_span :
    string -> ?args:(unit -> (string * int) list) -> (unit -> 'a) -> 'a

  (** Buffered event count. *)
  val events : unit -> int

  val clear : unit -> unit

  (** Write the buffered events to [file] as a Chrome trace-event JSON
      array (load via chrome://tracing or ui.perfetto.dev). *)
  val export : string -> unit

  (** The trace as a JSON string (what {!export} writes). *)
  val to_json : unit -> string
end
