/* Monotonic clock stub.

   Obs.Clock.now_s must never move backwards: the governor compares
   absolute deadlines against it and the span/bench timers subtract
   consecutive samples, so an NTP step on the wall clock would fire
   deadlines early or produce negative durations.  CLOCK_MONOTONIC is
   immune to clock_settime/NTP jumps (it is subject only to gradual
   NTP rate slewing, which cannot run it backwards). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value redspider_clock_monotonic_s(value unit)
{
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
  /* No monotonic clock (should not happen on any supported target):
     fall back to the wall clock; the OCaml-side monotonize wrapper
     still clamps backwards steps. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
