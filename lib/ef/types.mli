(** Rank-l (Hintikka) types: an independent decision procedure for ≡_l,
    cross-checking the game solver of {!Game}.  A ≡_l B iff the empty
    tuples have equal rank-l types. *)

open Relational

(** The atomic type of a pebble sequence (constants implicitly pebbled):
    pebble equalities and all fully-pebbled facts, by pebble index. *)
val atomic_type :
  Structure.t -> int list -> (int * int) list * (string * int list) list

(** Canonical rank-l types: atomic type plus the set of types of the
    one-point extensions. *)
type t = T of ((int * int) list * (string * int list) list) * t list

(** The canonical rank-l type of a pebble sequence. *)
val rank_type : Structure.t -> rank:int -> int list -> t

(** ≡_l via type equality. *)
val equivalent : rank:int -> Structure.t -> Structure.t -> bool

val distinguishing_rank : max_rank:int -> Structure.t -> Structure.t -> int option
