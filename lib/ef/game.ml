(* Ehrenfeucht–Fraïssé games on finite relational structures (Section IX).

   Duplicator wins the l-round game on (A, B) iff A and B agree on all
   first-order sentences of quantifier rank l.  The solver is the direct
   recursive definition: at each round Spoiler picks an element on either
   side, Duplicator answers on the other; the chosen pairs (plus the
   constants, which are implicitly pebbled) must remain a partial
   isomorphism.  Exponential, as it must be — use on small structures. *)

open Relational

(* The pebbled pairs, including the implicit constant pebbles. *)
let with_constants a b pairs =
  List.fold_left
    (fun acc c ->
      match Structure.constant_opt a c, Structure.constant_opt b c with
      | Some x, Some y -> (x, y) :: acc
      | _ -> acc)
    pairs (Structure.constants a)

(* Is the pairing a partial isomorphism?  Functionality + injectivity +
   preservation of all atoms whose arguments are fully pebbled, in both
   directions. *)
let partial_iso a b pairs =
  let pairs = with_constants a b pairs in
  let functional ps =
    let tbl = Hashtbl.create 8 in
    List.for_all
      (fun (x, y) ->
        match Hashtbl.find_opt tbl x with
        | Some y' -> y = y'
        | None ->
            Hashtbl.replace tbl x y;
            true)
      ps
  in
  let flip ps = List.map (fun (x, y) -> (y, x)) ps in
  let preserved src dst ps =
    Structure.fold_facts src
      (fun f ok ->
        ok
        &&
        let args = Fact.elements f in
        if List.for_all (fun e -> List.mem_assoc e ps) args then
          let mapped = List.map (fun e -> List.assoc e ps) args in
          Structure.mem dst (Fact.make (Fact.sym f) (Array.of_list mapped))
        else true)
      true
  in
  functional pairs && functional (flip pairs)
  && preserved a b pairs
  && preserved b a (flip pairs)

(* Duplicator wins the l-round game from position [pairs]. *)
let rec duplicator_wins ?(pairs = []) ~rounds a b =
  if not (partial_iso a b pairs) then false
  else if rounds = 0 then true
  else
    let elems_a = Structure.elems a and elems_b = Structure.elems b in
    let answer_on side =
      (* Spoiler plays x on [side]; Duplicator must answer on the other *)
      let spoiler_elems, dup_elems, mk =
        match side with
        | `A -> (elems_a, elems_b, fun x y -> (x, y))
        | `B -> (elems_b, elems_a, fun x y -> (y, x))
      in
      List.for_all
        (fun x ->
          List.exists
            (fun y ->
              duplicator_wins ~pairs:(mk x y :: pairs) ~rounds:(rounds - 1) a b)
            dup_elems)
        spoiler_elems
    in
    answer_on `A && answer_on `B

let equivalent ~rounds a b = duplicator_wins ~rounds a b

(* The least l ≤ max_rounds at which Spoiler wins, if any. *)
let distinguishing_rounds ~max_rounds a b =
  let rec go l =
    if l > max_rounds then None
    else if not (equivalent ~rounds:l a b) then Some l
    else go (l + 1)
  in
  go 0
