(** Ehrenfeucht–Fraïssé games on finite structures (Section IX):
    Duplicator wins the l-round game on (A, B) iff A and B agree on every
    FO sentence of quantifier rank l.  Constants are implicitly pebbled.
    The solver is the direct recursive definition — exponential, for small
    structures. *)

open Relational

(** Is the pairing (plus constants) a partial isomorphism? *)
val partial_iso : Structure.t -> Structure.t -> (int * int) list -> bool

(** Does Duplicator win the [rounds]-round game from the position? *)
val duplicator_wins : ?pairs:(int * int) list -> rounds:int -> Structure.t -> Structure.t -> bool

(** ≡_l equivalence. *)
val equivalent : rounds:int -> Structure.t -> Structure.t -> bool

(** The least l ≤ max_rounds at which Spoiler wins, if any. *)
val distinguishing_rounds : max_rounds:int -> Structure.t -> Structure.t -> int option
