(** The structures of Theorem 2 (Section IX): Q∞ = Compile(Precompile(T∞))
    and the pair D_y / D_n — Q0 = ∃*dalt(I) separates them, their Q∞-views
    do not (at any fixed FO quantifier rank, once the scale is large). *)

open Relational

type t = {
  ctx : Spider.Ctx.t;
  queries : (string * Cq.Query.t) list;  (** Q∞, named as in §IX.A *)
  tgds : Tgd.Dep.t list;
  q0 : Cq.Query.t;                        (** ∃* dalt(I) *)
}

val q_infinity : unit -> t

(** The seed: a full green spider between the constants a and b. *)
val seed : t -> Structure.t

(** chase_i(T_Q∞, I). *)
val chase_i : t -> int -> Structure.t

(** The late fragment chase^L_{2i}: atoms added at stages i+1..2i. *)
val late_fragment : t -> int -> Structure.t

(** Restrict to a color, then daltonise — what one girl sees. *)
val shadow : Symbol.color -> Structure.t -> Structure.t

(** The H_7/H_9 shadows Ruby needs at (a,b) (§IX.B, last paragraph). *)
val ruby_patch : t -> Structure.t

(** D_y and D_n at chase depth [i] with [copies] late-fragment copies. *)
val d_pair : t -> i:int -> copies:int -> Structure.t * Structure.t

(** The views Q∞(D) as one structure (Section I.B). *)
val views : t -> Structure.t -> Structure.t

(** Section IX.A's "Attempt 1": the views of the green and red fragments
    of one chase prefix, plus the size of their symmetric difference (the
    paper: "differ by just one atom"). *)
val attempt1 : t -> int -> Structure.t * Structure.t * int

type report = {
  q0_on_dy : bool;
  q0_on_dn : bool;
  view_distinguishing_rounds : int option;
}

val report : ?max_rounds:int -> t -> i:int -> copies:int -> report
