(* Rank-l types: an independent decision procedure for ≡_l.

   The rank-l type of a tuple ā in A is its atomic type together with the
   set of rank-(l-1) types of its one-point extensions; A ≡_l B iff the
   empty tuples have equal rank-l types — equivalently, iff A and B
   realize the same set of rank-(l-1) 1-tuple types, recursively.  This is
   the classic Hintikka/Fraïssé characterization and serves as a
   cross-check of the game solver in Game. *)

open Relational

(* The atomic type of a pebble sequence: equalities among pebbles and
   constants, plus all facts over pebbled elements, with elements replaced
   by pebble indices.  Constants are implicitly pebbled first (in sorted
   name order) so that they must correspond. *)
let atomic_type st pebbles =
  let consts =
    List.sort compare (Structure.constants st)
    |> List.filter_map (Structure.constant_opt st)
  in
  let pebbles = consts @ pebbles in
  let index_of e =
    let rec go i = function
      | [] -> None
      | x :: rest -> if x = e then Some i else go (i + 1) rest
    in
    go 0 pebbles
  in
  let equalities =
    List.concat_map
      (fun (i, x) ->
        List.filter_map
          (fun (j, y) -> if i < j && x = y then Some (i, j) else None)
          (List.mapi (fun j y -> (j, y)) pebbles))
      (List.mapi (fun i x -> (i, x)) pebbles)
  in
  let facts =
    Structure.fold_facts st
      (fun f acc ->
        match
          List.fold_right
            (fun e acc ->
              match acc, index_of e with
              | Some rest, Some i -> Some (i :: rest)
              | _ -> None)
            (Fact.elements f) (Some [])
        with
        | Some idxs -> (Fmt.str "%a" Symbol.pp (Fact.sym f), idxs) :: acc
        | None -> acc)
      []
    |> List.sort compare
  in
  (List.sort compare equalities, facts)

(* The rank-l type, as a canonical (comparable) tree. *)
type t =
  | T of ((int * int) list * (string * int list) list) * t list

let rec rank_type st ~rank pebbles =
  let atomic = atomic_type st pebbles in
  if rank = 0 then T (atomic, [])
  else
    let extensions =
      List.map (fun e -> rank_type st ~rank:(rank - 1) (pebbles @ [ e ]))
        (List.sort compare (Structure.elems st))
      |> List.sort_uniq compare
    in
    T (atomic, extensions)

(* A ≡_l B via type equality of the empty tuple. *)
let equivalent ~rank a b =
  rank_type a ~rank [] = rank_type b ~rank []

let distinguishing_rank ~max_rank a b =
  let rec go l =
    if l > max_rank then None
    else if not (equivalent ~rank:l a b) then Some l
    else go (l + 1)
  in
  go 0
