(* The structures of Theorem 2 (Section IX): Q∞ = Compile(Precompile(T∞))
   and the FO-indistinguishable pair D_y / D_n.

   Grace watches dalt(chase_i(T_Q∞, I) ↾ G), Ruby watches the daltonised
   red fragment; D_y and D_n pad these with i copies of the "late"
   fragments chase^L_{2i} of both colors (Section IX.B).  D_y contains a
   copy of dalt(I) (the seed spider is wholly green); D_n does not —
   every red spider of the chase has at least one inherited green calf,
   which the ↾R restriction removes.

   The paper's abstraction: answering the views of Q∞, the two girls see
   collections of long path-like shadows differing only at far-apart
   ends, so no fixed-quantifier-rank sentence over the views separates
   them once i is large.  [views] computes the view structures and
   [Game.equivalent] plays the game on them. *)

open Relational

type t = {
  ctx : Spider.Ctx.t;
  queries : (string * Cq.Query.t) list;
  tgds : Tgd.Dep.t list;
  q0 : Cq.Query.t; (* ∃* dalt(I) *)
}

(* Q∞ with the paper's query names (Section IX.A): Precompile numbers
   T∞'s three rules 2, 3, 4, giving lower indices (5,6), (7,8), (9,10). *)
let q_infinity () =
  let p = Greengraph.Precompile.to_level0 Separating.Tinf.rules in
  let names =
    [ "base1"; "base2"; "base3"; "IA"; "IB"; "IIA"; "IIB"; "IIIA"; "IIIB" ]
  in
  let queries =
    List.map2
      (fun name (_, q) -> (name, q))
      names p.Greengraph.Precompile.queries
  in
  {
    ctx = p.Greengraph.Precompile.ctx;
    queries;
    tgds = p.Greengraph.Precompile.tgds;
    q0 =
      Cq.Query.close
        (Spider.Query.to_cq p.Greengraph.Precompile.ctx (Spider.Query.f ()));
  }

(* The seed: a full green spider whose tail and antenna are the constants
   a and b (Section IX treats a, b as constants belonging to all copies). *)
let seed t =
  let st = Structure.create () in
  let a = Structure.constant st "a" and b = Structure.constant st "b" in
  ignore (Spider.Real.realize t.ctx st ~tail:a ~antenna:b Spider.Ideal.full_green);
  st

(* chase_i(T_Q∞, I). *)
let chase_i t i =
  let st = seed t in
  let _ = Tgd.Chase.run ~max_stages:i t.tgds st in
  st

(* The late fragment chase^L_{2i}: atoms added at stages i+1 .. 2i,
   together with the elements involved (constants survive). *)
let late_fragment t i =
  let st = chase_i t (2 * i) in
  Structure.filter
    (fun f ->
      match Structure.fact_stage st f with
      | Some stage -> stage > i
      | None -> false)
    st

(* One girl's fragment: restrict to a color, then daltonise. *)
let shadow color st = Structure.dalt (Structure.restrict_color color st)

(* The H_7 / H_9 shadows Ruby needs at (a, b) (Section IX.B, last
   paragraph): the red fragments of real spiders H_7 and H_9 anchored at
   the constants. *)
let ruby_patch t =
  let st = Structure.create () in
  let a = Structure.constant st "a" and b = Structure.constant st "b" in
  ignore (Spider.Real.realize t.ctx st ~tail:a ~antenna:b (Spider.Ideal.red ~lower:7 ()));
  ignore (Spider.Real.realize t.ctx st ~tail:a ~antenna:b (Spider.Ideal.red ~lower:9 ()));
  shadow Symbol.Red st

(* D_y and D_n (Section IX.B): [i] controls the chase depth, [copies] the
   number of late-fragment copies (the paper takes copies = i). *)
let d_pair t ~i ~copies =
  let main = chase_i t i in
  let late = late_fragment t i in
  let late_g = shadow Symbol.Green late and late_r = shadow Symbol.Red late in
  let pad = List.concat_map (fun g -> List.init copies (fun _ -> g)) [ late_g; late_r ] in
  let d_y, _ = Structure.disjoint_union (shadow Symbol.Green main :: pad) in
  let d_n, _ =
    Structure.disjoint_union ((shadow Symbol.Red main :: ruby_patch t :: pad))
  in
  (d_y, d_n)

(* The views Q∞(D) as one relational structure (Section I.B). *)
let views t d = Cq.Eval.view_structure t.queries d

(* Section IX.A, "Attempt 1": what Grace and Ruby see on the two color
   fragments of one chase prefix.  The paper observes the two view
   structures "will always differ by just one atom" — the last firing's
   unbalanced production.  [attempt1] returns both views and the size of
   their symmetric difference, letting tests and benches track it. *)
let attempt1 t i =
  let st = chase_i t i in
  let v_g = views t (shadow Symbol.Green st) in
  let v_n = views t (shadow Symbol.Red st) in
  let diff a b =
    Structure.fold_facts a
      (fun f acc -> if Structure.mem b f then acc else f :: acc)
      []
  in
  let only_g = diff v_g v_n and only_r = diff v_n v_g in
  (v_g, v_n, List.length only_g + List.length only_r)

(* The headline data of Theorem 2 at chase depth [i]: Q0 separates D_y
   from D_n, while the l-round EF game on the views does not, for l up to
   the reported bound. *)
type report = {
  q0_on_dy : bool;
  q0_on_dn : bool;
  view_distinguishing_rounds : int option;
}

let report ?(max_rounds = 2) t ~i ~copies =
  let d_y, d_n = d_pair t ~i ~copies in
  let v_y = views t d_y and v_n = views t d_n in
  {
    q0_on_dy = Cq.Eval.holds t.q0 d_y;
    q0_on_dn = Cq.Eval.holds t.q0 d_n;
    view_distinguishing_rounds = Game.distinguishing_rounds ~max_rounds v_y v_n;
  }
