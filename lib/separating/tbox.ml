(* T□ (Section VII, Step 2): the 41 green-graph rewriting rules that
   detect two αβ-paths of different lengths sharing both endpoints, by
   building the grid of Figures 2–3 and producing a 1-2 pattern exactly
   when the grid's north-western corner misses the diagonal.

   One deviation from the printed rules: the last rule of the eastern
   strip appears in the paper as
       α &·· ⟨w,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,α,d̄,b̄⟩
   whose left component repeats on the right; every other eastern-strip
   rule is the n↔w / s↔e mirror of its southern counterpart, so we take
   the mirrored form
       α &·· ⟨e,β,d̄,b⟩ ] ⟨w,β,d̄,b⟩ &·· ⟨n,α,d̄,b̄⟩
   (the southern counterpart being α&··⟨s,β,d̄,b⟩ ] ⟨n,β,d̄,b⟩&··⟨w,α,d̄,b̄⟩).
   The behavioral tests of Lemmas 17/18 confirm this reading. *)

open Labels

let lab gl = grid gl
let sp i = label i

(* The grid triggering rule: builds the south-eastern corner tile. *)
let triggering =
  Greengraph.Rule.amp ~name:"trigger" (sp beta0, sp beta0)
    (lab (g ~diag:true ~border:true N Tb), lab (g ~diag:true ~border:true W Tb))

(* The strip of tiles adjacent to the southern border. *)
let southern =
  [
    Greengraph.Rule.slash ~name:"s1"
      (sp beta1, lab (g ~diag:true ~border:true N Tb))
      (lab (g ~border:true S Tb), lab (g ~diag:true E Tb));
    Greengraph.Rule.amp ~name:"s2"
      (sp beta0, lab (g ~border:true S Tb))
      (lab (g ~border:true N Tb), lab (g W Tb));
    Greengraph.Rule.slash ~name:"s3"
      (sp beta1, lab (g ~border:true N Tb))
      (lab (g ~border:true S Tb), lab (g E Tb));
    Greengraph.Rule.amp ~name:"s4"
      (sp alpha, lab (g ~border:true S Tb))
      (lab (g ~border:true N Tb), lab (g W Ta));
  ]

(* The strip adjacent to the eastern border (the n↔w, s↔e mirror). *)
let eastern =
  [
    Greengraph.Rule.slash ~name:"e1"
      (sp beta1, lab (g ~diag:true ~border:true W Tb))
      (lab (g ~border:true E Tb), lab (g ~diag:true S Tb));
    Greengraph.Rule.amp ~name:"e2"
      (sp beta0, lab (g ~border:true E Tb))
      (lab (g ~border:true W Tb), lab (g N Tb));
    Greengraph.Rule.slash ~name:"e3"
      (sp beta1, lab (g ~border:true W Tb))
      (lab (g ~border:true E Tb), lab (g S Tb));
    Greengraph.Rule.amp ~name:"e4"
      (sp alpha, lab (g ~border:true E Tb))
      (lab (g ~border:true W Tb), lab (g N Ta));
  ]

(* The 32 interior rules: two schemes over X,Y ∈ {d,d̄}, Θ,Ω ∈ {α,β}. *)
let interior =
  List.concat_map
    (fun x ->
      List.concat_map
        (fun y ->
          List.concat_map
            (fun th ->
              List.map
                (fun om ->
                  [
                    Greengraph.Rule.amp ~name:"iA"
                      (lab (g ~diag:x E th), lab (g ~diag:y S om))
                      (lab (g ~diag:x N om), lab (g ~diag:y W th));
                    Greengraph.Rule.slash ~name:"iB"
                      (lab (g ~diag:x W th), lab (g ~diag:y N om))
                      (lab (g ~diag:x S om), lab (g ~diag:y E th));
                  ])
                [ Ta; Tb ])
            [ Ta; Tb ])
        [ true; false ])
    [ true; false ]
  |> List.concat

let rules = (triggering :: southern) @ eastern @ interior

let size = List.length rules

(* T = T∞ ∪ T□ — the separating example of Theorem 14. *)
let t_full = Tinf.rules @ rules
