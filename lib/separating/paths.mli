(** αβ-paths and the collision scenario of Figure 2. *)

type t = {
  start : int;
  b_vertices : int list;  (** b1, b2, … in path order *)
  a_vertices : int list;  (** a1, a2, … *)
  stop : int;             (** the final b vertex *)
}

(** Build an αβ-path with [k] β1β0-pairs from [start]; [stop] forces the
    final vertex (collisions).
    @raise Invalid_argument when k < 1. *)
val build : Greengraph.Graph.t -> start:int -> ?stop:int -> int -> t

(** Figure 2: two αβ-paths of lengths t and t' sharing start and end. *)
val collision : t:int -> t':int -> Greengraph.Graph.t * t * t

(** A single αβ-path (the Figure 4 scenario). *)
val single : t:int -> Greengraph.Graph.t * t
