(* αβ-paths and the collapse scenario of Figure 2.

   An αβ-path of k β-pairs mirrors the shape of chase(T∞, D_I): concrete
   edges  α(start→b1), β1(a1→b1), β0(a1→b2), β1(a2→b2), β0(a2→b3) … — in
   Parity Glasses this reads as the word α(β1β0)^k from [start] to the
   final b-vertex. *)

type t = {
  start : int;
  b_vertices : int list; (* b1 … b_k+? in path order *)
  a_vertices : int list; (* a1 … *)
  stop : int;            (* the last b vertex *)
}

(* Build an αβ-path with [k] β1β0-pairs into [g], starting at [start].
   [stop] optionally forces the final vertex (used to make two paths
   collide as in Figure 2). *)
let build g ~start ?stop k =
  if k < 1 then invalid_arg "Paths.build: need k ≥ 1";
  let fresh name = Greengraph.Graph.fresh ~name g in
  let add lab src dst = ignore (Greengraph.Graph.add_edge g (Some lab) src dst) in
  let b1 = fresh "b1" in
  add Labels.alpha start b1;
  let rec go i prev_b bs als =
    (* add β1(a_i → prev_b) and β0(a_i → next_b) *)
    let a = fresh (Printf.sprintf "a%d" i) in
    add Labels.beta1 a prev_b;
    let next_b =
      if i = k then match stop with Some v -> v | None -> fresh (Printf.sprintf "b%d" (i + 1))
      else fresh (Printf.sprintf "b%d" (i + 1))
    in
    add Labels.beta0 a next_b;
    if i = k then
      {
        start;
        b_vertices = List.rev (next_b :: bs);
        a_vertices = List.rev (a :: als);
        stop = next_b;
      }
    else go (i + 1) next_b (next_b :: bs) (a :: als)
  in
  go 1 b1 [ b1 ] []

(* Figure 2: two αβ-paths of lengths t and t' sharing both their start
   and their final vertex — the inevitable situation in a finite model of
   T∞ (h(b_t) = h(b_t')). *)
let collision ~t ~t' =
  let g = Greengraph.Graph.create () in
  let start = Greengraph.Graph.fresh ~name:"h(a)" g in
  let p1 = build g ~start t in
  let p2 = build g ~start ~stop:p1.stop t' in
  (g, p1, p2)

(* The single-path scenario of Figure 4 / Section VII Step 3: one αβ-path
   (the grid triggering rule self-pairs on its β0 edges). *)
let single ~t =
  let g = Greengraph.Graph.create () in
  let start = Greengraph.Graph.fresh ~name:"h(a)" g in
  let p = build g ~start t in
  (g, p)
