(** Theorem 14, made executable: T = T∞ ∪ T□ does not lead to the red
    spider but finitely leads to it. *)

(** Bounded evidence for the unrestricted side: chase T from D_I and
    report (no-pattern?, graph). *)
val chase_prefix_clean :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  stages:int ->
  unit ->
  bool * Greengraph.Graph.t

(** The finite-side mechanism (Lemma 17): grid a fold of two αβ-paths. *)
val collision_outcome :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  t:int ->
  t':int ->
  unit ->
  bool * Greengraph.Rule.stats * Greengraph.Graph.t

(** Lemma 18's intuition: a single path grids into M_t harmlessly. *)
val single_path_outcome :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  t:int ->
  unit ->
  bool * Greengraph.Rule.stats * Greengraph.Graph.t
