(* Integer codes for the symbolic labels of Section VII.

   The paper requires α, β0, η0 even and β1, η1 odd (so that Parity
   Glasses orient αβ-paths correctly), and identifies the grid labels
   ⟨n,α,d̄,b̄⟩ with 1 and ⟨w,α,d̄,b̄⟩ with 2 — the 1-2 pattern.  Codes 3 and
   4 are reserved by Precompile.  Codes 6–14 cover the special symbols
   (including Section VIII's η11, γ0, γ1, ω0); the remaining 30 grid
   labels live at 16–45; machine symbols of Section VIII are allocated
   from 100 upwards (even/odd split preserved). *)

let alpha = 6    (* even *)
let beta1 = 7    (* odd *)
let beta0 = 8    (* even *)
let eta1 = 9     (* odd *)
let eta0 = 10    (* even *)
let eta11 = 11   (* odd *)
let gamma0 = 12  (* even *)
let gamma1 = 13  (* odd *)
let omega0 = 14  (* even *)

(* --- grid labels ⟨n|e|s|w, α|β, d|d̄, b|b̄⟩ (Section VII, Step 2) ------- *)

type dir = N | E | S | W
type theta = Ta | Tb (* α | β *)

type grid = { dir : dir; theta : theta; diag : bool; border : bool }

let g ?(diag = false) ?(border = false) dir theta = { dir; theta; diag; border }

let grid_code gl =
  match gl with
  | { dir = N; theta = Ta; diag = false; border = false } -> 1
  | { dir = W; theta = Ta; diag = false; border = false } -> 2
  | _ ->
      let d = match gl.dir with N -> 0 | E -> 1 | S -> 2 | W -> 3 in
      let t = match gl.theta with Ta -> 0 | Tb -> 1 in
      let di = if gl.diag then 1 else 0 in
      let bo = if gl.border then 1 else 0 in
      16 + (d * 8) + (t * 4) + (di * 2) + bo

let grid gl : Greengraph.Label.t = Some (grid_code gl)

let pp_dir ppf d =
  Fmt.string ppf (match d with N -> "n" | E -> "e" | S -> "s" | W -> "w")

let pp_grid ppf gl =
  Fmt.pf ppf "⟨%a,%s,%s,%s⟩" pp_dir gl.dir
    (match gl.theta with Ta -> "α" | Tb -> "β")
    (if gl.diag then "d" else "d̄")
    (if gl.border then "b" else "b̄")

(* every grid label has a distinct code, disjoint from the specials *)
let all_grid_labels =
  List.concat_map
    (fun dir ->
      List.concat_map
        (fun theta ->
          List.concat_map
            (fun diag ->
              List.map (fun border -> { dir; theta; diag; border })
                [ true; false ])
            [ true; false ])
        [ Ta; Tb ])
    [ N; E; S; W ]

let label i : Greengraph.Label.t = Some i
