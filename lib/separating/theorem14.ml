(* Theorem 14, made executable.

   T = T∞ ∪ T□ does not lead to the red spider — chase(T, D_I) never
   contains a 1-2 pattern (we certify bounded prefixes) — but finitely
   leads to it: in any finite model the infinite αβ-path must fold,
   producing two αβ-paths of different lengths with shared endpoints, and
   then T□ grids them into a 1-2 pattern. *)

(* Bounded evidence for "does not lead": chase T for [stages] stages from
   D_I and report whether a 1-2 pattern appeared (Theorem 14 says it never
   does). *)
let chase_prefix_clean ?engine ?jobs ?governor ~stages () =
  let g, _, _ = Greengraph.Graph.d_i () in
  let _ =
    Greengraph.Rule.chase ?engine ?jobs ?governor ~max_stages:stages
      ~stop:Greengraph.Graph.has_12_pattern Tbox.t_full g
  in
  (not (Greengraph.Graph.has_12_pattern g), g)

(* The finite-leads mechanism (Lemma 17): fold two αβ-paths of lengths t
   and t' onto shared endpoints and chase T□. *)
let collision_outcome ?engine ?jobs ?governor ?(max_stages = 64) ~t ~t' () =
  let g, _, _ = Paths.collision ~t ~t' in
  let stats =
    Greengraph.Rule.chase ?engine ?jobs ?governor ~max_stages
      ~stop:Greengraph.Graph.has_12_pattern Tbox.rules g
  in
  (Greengraph.Graph.has_12_pattern g, stats, g)

(* Lemma 18 intuition: a single path grids into M_t without a 1-2
   pattern. *)
let single_path_outcome ?engine ?jobs ?governor ?(max_stages = 64) ~t () =
  let g, _ = Paths.single ~t in
  let stats =
    Greengraph.Rule.chase ?engine ?jobs ?governor ~max_stages
      ~stop:Greengraph.Graph.has_12_pattern Tbox.rules g
  in
  (Greengraph.Graph.has_12_pattern g, stats, g)
