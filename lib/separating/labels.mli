(** Integer codes for the symbolic labels of Sections VII–VIII.

    α, β0, η0 (and γ0, ω0) are even; β1, η1 (and η11, γ1) are odd — the
    Parity Glasses depend on it.  The grid labels ⟨n,α,d̄,b̄⟩ and
    ⟨w,α,d̄,b̄⟩ are the 1-2 pattern labels 1 and 2. *)

val alpha : int
val beta1 : int
val beta0 : int
val eta1 : int
val eta0 : int
val eta11 : int
val gamma0 : int
val gamma1 : int
val omega0 : int

(** {1 Grid labels ⟨n|e|s|w, α|β, d|d̄, b|b̄⟩ (Section VII, Step 2)} *)

type dir = N | E | S | W

type theta = Ta | Tb  (** α | β *)

type grid = { dir : dir; theta : theta; diag : bool; border : bool }

val g : ?diag:bool -> ?border:bool -> dir -> theta -> grid

(** The integer code; ⟨n,α,d̄,b̄⟩ ↦ 1 and ⟨w,α,d̄,b̄⟩ ↦ 2, the rest in
    16–47, avoiding the reserved 3 and 4. *)
val grid_code : grid -> int

val grid : grid -> Greengraph.Label.t

val pp_dir : Format.formatter -> dir -> unit
val pp_grid : Format.formatter -> grid -> unit

(** All 32 grid labels. *)
val all_grid_labels : grid list

val label : int -> Greengraph.Label.t
