(* T∞ (Section VII, Step 1): three green-graph rules whose chase from D_I
   is the infinite quasi-path of Figure 1 — αβ-paths of unbounded length
   and no 1-2 pattern.

     (I)   ∅ &·· ∅  ]  α &·· η1
     (II)  ∅ /·· η1 ]  η0 /·· β1
     (III) ∅ &·· η0 ]  η1 &·· β0    *)

let rules =
  [
    Greengraph.Rule.amp ~name:"I" (None, None)
      (Labels.label Labels.alpha, Labels.label Labels.eta1);
    Greengraph.Rule.slash ~name:"II" (None, Labels.label Labels.eta1)
      (Labels.label Labels.eta0, Labels.label Labels.beta1);
    Greengraph.Rule.amp ~name:"III" (None, Labels.label Labels.eta0)
      (Labels.label Labels.eta1, Labels.label Labels.beta0);
  ]

(* chase(T∞, D_I) up to a stage bound; returns the graph and the
   constants a, b. *)
let chase ?engine ?jobs ?governor ~stages () =
  let g, a, b = Greengraph.Graph.d_i () in
  let stats =
    Greengraph.Rule.chase ?engine ?jobs ?governor ~max_stages:stages rules g
  in
  (g, a, b, stats)

(* The two word families of the Example after Definition 16:
   α(β1β0)^k η1  and  α(β1β0)^k β1 η0. *)
let word_family_1 k =
  (Labels.alpha
  :: List.concat (List.init k (fun _ -> [ Labels.beta1; Labels.beta0 ])))
  @ [ Labels.eta1 ]

let word_family_2 k =
  (Labels.alpha
  :: List.concat (List.init k (fun _ -> [ Labels.beta1; Labels.beta0 ])))
  @ [ Labels.beta1; Labels.eta0 ]

(* A pure αβ-word α(β1β0)^k. *)
let alpha_beta_word k =
  Labels.alpha
  :: List.concat (List.init k (fun _ -> [ Labels.beta1; Labels.beta0 ]))
