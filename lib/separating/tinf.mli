(** T∞ (Section VII, Step 1): three rules whose chase from D_I is the
    infinite quasi-path of Figure 1 — unbounded αβ-paths, no 1-2
    pattern. *)

(** (I) ∅&··∅ ] α&··η1, (II) ∅/··η1 ] η0/··β1, (III) ∅&··η0 ] η1&··β0. *)
val rules : Greengraph.Rule.t list

(** Bounded chase(T∞, D_I); returns graph, a, b and stats.  [engine]
    selects the rule-chase engine (default semi-naive). *)
val chase :
  ?engine:Greengraph.Rule.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  stages:int ->
  unit ->
  Greengraph.Graph.t * int * int * Greengraph.Rule.stats

(** α(β1β0)^k η1 *)
val word_family_1 : int -> int list

(** α(β1β0)^k β1 η0 *)
val word_family_2 : int -> int list

(** α(β1β0)^k *)
val alpha_beta_word : int -> int list
