(** T□ (Section VII, Step 2): the 41 rules that grid two colliding
    αβ-paths (Figures 2–3) and produce a 1-2 pattern exactly when the
    grid's north-western corner misses the diagonal.  See the file header
    for the one documented deviation from the printed eastern-strip
    rules. *)

val triggering : Greengraph.Rule.t
val southern : Greengraph.Rule.t list
val eastern : Greengraph.Rule.t list
val interior : Greengraph.Rule.t list

(** All 41 rules. *)
val rules : Greengraph.Rule.t list

val size : int

(** T = T∞ ∪ T□, the separating example of Theorem 14. *)
val t_full : Greengraph.Rule.t list
