(* Single-tape Turing machines over a right-infinite tape.

   This is the "textbook" computation model behind Lemma 21: the halting
   problem for these machines is undecidable, and [Tm_compiler] translates
   any of them into a rainworm machine that creeps forever iff the TM runs
   forever.  A machine halts when δ is undefined at the current (state,
   symbol) pair; moving left at cell 0 is a crash (our compiled machines
   treat it as a halt as well). *)

type dir = Left | Right

type t = {
  name : string;
  blank : string;
  start : string;
  transitions : ((string * string) * (string * string * dir)) list;
      (* ((state, read), (state', write, move)) *)
}

let make ~name ~blank ~start transitions =
  let lhss = List.map fst transitions in
  let rec distinct = function
    | [] -> true
    | l :: rest -> (not (List.mem l rest)) && distinct rest
  in
  if not (distinct lhss) then
    invalid_arg "Turing.make: nondeterministic transition table";
  { name; blank; start; transitions }

let delta t q a = List.assoc_opt (q, a) t.transitions

let states t =
  List.concat_map (fun ((q, _), (q', _, _)) -> [ q; q' ]) t.transitions
  |> List.cons t.start
  |> List.sort_uniq String.compare

let alphabet t =
  List.concat_map (fun ((_, a), (_, a', _)) -> [ a; a' ]) t.transitions
  |> List.cons t.blank
  |> List.sort_uniq String.compare

module Int_map = Map.Make (Int)

type config = { tape : string Int_map.t; head : int; state : string }

let initial_config t = { tape = Int_map.empty; head = 0; state = t.start }

let read t c = Option.value (Int_map.find_opt c.head c.tape) ~default:t.blank

type halt_reason = No_transition | Fell_off_left

type outcome =
  | Halted of halt_reason * config
  | Running of config

let step t c =
  match delta t c.state (read t c) with
  | None -> Error No_transition
  | Some (q', a', move) ->
      let tape = Int_map.add c.head a' c.tape in
      let head = match move with Left -> c.head - 1 | Right -> c.head + 1 in
      if head < 0 then Error Fell_off_left
      else Ok { tape; head; state = q' }

let run ?(max_steps = 10_000) t =
  let rec go n c =
    if n >= max_steps then (n, Running c)
    else
      match step t c with
      | Error reason -> (n, Halted (reason, c))
      | Ok c' -> go (n + 1) c'
  in
  go 0 (initial_config t)

let halts ?max_steps t =
  match run ?max_steps t with
  | _, Halted _ -> true
  | _, Running _ -> false

(* The tape contents as a list over cells 0..max written/visited cell. *)
let tape_list t c =
  let hi =
    Int_map.fold (fun i _ acc -> max i acc) c.tape c.head
  in
  List.init (hi + 1) (fun i ->
      Option.value (Int_map.find_opt i c.tape) ~default:t.blank)

let pp_config t ppf c =
  let cells = tape_list t c in
  List.iteri
    (fun i a ->
      if i = c.head then Fmt.pf ppf "[%s:%s] " c.state a else Fmt.pf ppf "%s " a)
    cells;
  if c.head >= List.length cells then Fmt.pf ppf "[%s:%s]" c.state t.blank
