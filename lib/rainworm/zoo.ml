(* A zoo of rainworm machines and Turing machines used by tests, examples
   and benchmarks. *)

(* The minimal eternal creeper, handcrafted: a single tape letter, one
   state per sweep role.  Twelve instructions, one per ♦-form.  This is
   the worm analogue of the paper's "η0 and η1 calling each other in an
   infinite loop" (Section VIII intro). *)
let eternal_creeper =
  Machine.make ~name:"eternal-creeper"
    [
      Instruction.d1 ();
      Instruction.d2 ~b:"b";
      Instruction.d3 ~q:"e";
      Instruction.d4 ~b':"b" ~q:"e" ~q':"e" ~b:"b";
      Instruction.d4' ~b:"b" ~q':"e" ~q:"e" ~b':"b";
      Instruction.d5 ~q:"e" ~q':"g";
      Instruction.d5' ~q:"e" ~q':"g";
      Instruction.d6 ~q:"g" ~b:"b" ~q':"r";
      Instruction.d6' ~q:"g" ~b:"b" ~q':"r";
      Instruction.d7 ~q':"r" ~b:"b" ~b':"b" ~q:"r";
      Instruction.d7' ~q:"r" ~b':"b" ~b:"b" ~q':"r";
      Instruction.d8 ~q:"r" ~b:"b";
    ]

(* A handcrafted worm that halts: like the eternal creeper, but the right
   sweep has no ♦8 rule — the very first cycle never completes. *)
let stillborn =
  Machine.make ~name:"stillborn"
    [
      Instruction.d1 ();
      Instruction.d2 ~b:"b";
      Instruction.d3 ~q:"e";
      Instruction.d4' ~b:"b" ~q':"e" ~q:"e" ~b':"b";
      Instruction.d5 ~q:"e" ~q':"g";
      Instruction.d6' ~q:"g" ~b:"b" ~q':"r";
    ]

(* A worm that creeps for a while and halts: driven by a halting TM below. *)

(* --- Turing machines -------------------------------------------------- *)

(* Halts immediately: no transitions at all. *)
let tm_halt_now = Turing.make ~name:"halt-now" ~blank:"_" ~start:"q0" []

(* Writes k marks moving right, then halts.  [k] small. *)
let tm_write_k k =
  let transitions =
    List.init k (fun i ->
        ((Printf.sprintf "q%d" i, "_"),
         (Printf.sprintf "q%d" (i + 1), "x", Turing.Right)))
  in
  Turing.make ~name:(Printf.sprintf "write-%d" k) ~blank:"_" ~start:"q0"
    transitions

(* Moves right forever over blanks: diverges. *)
let tm_right_forever =
  Turing.make ~name:"right-forever" ~blank:"_" ~start:"q0"
    [ (("q0", "_"), ("q0", "x", Turing.Right)) ]

(* Zigzag: repeatedly writes two cells rightwards then steps back left —
   exercises the Pend_left machinery.  Diverges. *)
let tm_zigzag =
  Turing.make ~name:"zigzag" ~blank:"_" ~start:"r1"
    [
      (("r1", "_"), ("r2", "a", Turing.Right));
      (("r1", "a"), ("r2", "a", Turing.Right));
      (("r1", "b"), ("r2", "b", Turing.Right));
      (("r2", "_"), ("l", "b", Turing.Right));
      (("r2", "a"), ("l", "a", Turing.Right));
      (("r2", "b"), ("l", "b", Turing.Right));
      (("l", "_"), ("r1", "_", Turing.Left));
      (("l", "a"), ("r1", "a", Turing.Left));
      (("l", "b"), ("r1", "b", Turing.Left));
    ]

(* A binary counter incrementing forever: writes a wall at cell 0, then
   repeatedly increments the little-endian binary number to its right
   (flip 1→0 moving right while carrying, write the final 1, return to
   the wall).  Diverges with heavy tape rewriting — the stress machine
   for the compiler. *)
let tm_binary_counter =
  Turing.make ~name:"binary-counter" ~blank:"_" ~start:"q0"
    [
      (("q0", "_"), ("inc", "w", Turing.Right));
      (("inc", "1"), ("inc", "0", Turing.Right));
      (("inc", "0"), ("ret", "1", Turing.Left));
      (("inc", "_"), ("ret", "1", Turing.Left));
      (("ret", "0"), ("ret", "0", Turing.Left));
      (("ret", "1"), ("ret", "1", Turing.Left));
      (("ret", "w"), ("inc", "w", Turing.Right));
    ]

(* A unary counter that bounces between a left wall it builds and the
   right frontier; halts after it has counted to [k] by marking cells.
   Exercises both sweep directions and halting after substantial work. *)
let tm_bouncer k =
  (* write "w" then bounce: go right to first blank, mark it, come back to
     "w", repeat k times (counting in states), halt. *)
  let t = ref [] in
  let add lhs rhs = t := (lhs, rhs) :: !t in
  add ("q0", "_") ("go1", "w", Turing.Right);
  for i = 1 to k do
    let go = Printf.sprintf "go%d" i and back = Printf.sprintf "back%d" i in
    add (go, "x") (go, "x", Turing.Right);
    (if i = k then add (go, "_") ("done", "x", Turing.Right)
     else add (go, "_") (back, "x", Turing.Left));
    if i < k then begin
      add (back, "x") (back, "x", Turing.Left);
      add (back, "w") (Printf.sprintf "go%d" (i + 1), "w", Turing.Right)
    end
  done;
  Turing.make ~name:(Printf.sprintf "bouncer-%d" k) ~blank:"_" ~start:"q0"
    (List.rev !t)
