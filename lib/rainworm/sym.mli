(** Symbols of a rainworm machine (Section VIII.A).

    The tape alphabet A = A0 ⊎ A1 ⊎ {α, β0, β1, γ0, γ1, ω0}; the state set
    Q = Q0 ⊎ Q̄0 ⊎ Q1 ⊎ Q̄1 ⊎ Qγ0 ⊎ Qγ1 ⊎ {η11, η0, η1}.  Members of the
    open classes carry a string identifier. *)

type t =
  | Alpha
  | Beta0
  | Beta1
  | Gamma0
  | Gamma1
  | Omega0
  | A0 of string      (** even tape letters *)
  | A1 of string      (** odd tape letters *)
  | Eta11
  | Eta0
  | Eta1
  | Q0 of string      (** even right-sweep states *)
  | Q1 of string      (** odd right-sweep states *)
  | Q0bar of string   (** even left-sweep states (Q̄0) *)
  | Q1bar of string   (** odd left-sweep states (Q̄1) *)
  | Qg0 of string     (** even rear-marker states (Qγ0) *)
  | Qg1 of string     (** odd rear-marker states (Qγ1) *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_state : t -> bool
val is_letter : t -> bool

(** Parity (Definition 19): even and odd symbols alternate in every
    configuration. *)
val is_even : t -> bool

val is_odd : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_word : Format.formatter -> t list -> unit
