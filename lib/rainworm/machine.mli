(** A rainworm machine: a finite instruction set ∆ that is a partial
    function on left-hand sides (footnote 16 — determinism).

    Large machines produced by the TM compiler are represented lazily by
    an {!oracle}; {!recording_oracle} materializes the finite sub-machine
    that a run exercises. *)

(** Left-hand-side dispatch: [expand] answers the 1-symbol rules (♦1–♦3),
    [swap] the 2-symbol rules (♦4–♦8). *)
type oracle = {
  expand : Sym.t -> (Sym.t * Sym.t) option;
  swap : Sym.t -> Sym.t -> (Sym.t * Sym.t) option;
}

type t

(** @raise Invalid_argument on an invalid instruction or duplicate lhs. *)
val make : name:string -> Instruction.t list -> t

val name : t -> string
val rules : t -> Instruction.t list
val size : t -> int

(** Lookup-table oracle for an explicit machine. *)
val oracle : t -> oracle

(** Wrap an oracle so every answered rule is recorded; the thunk returns
    the rules seen so far, in first-use order. *)
val recording_oracle : oracle -> oracle * (unit -> Instruction.t list)

(** The machine as a generic semi-Thue system (Section VIII.A). *)
val to_thue : t -> Sym.t Thue.System.t

val pp : Format.formatter -> t -> unit
