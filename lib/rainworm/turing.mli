(** Single-tape Turing machines over a right-infinite tape — the textbook
    model behind Lemma 21.  A machine halts when δ is undefined; moving
    left at cell 0 is a crash. *)

type dir = Left | Right

type t = {
  name : string;
  blank : string;
  start : string;
  transitions : ((string * string) * (string * string * dir)) list;
      (** ((state, read), (state', write, move)) *)
}

(** @raise Invalid_argument on duplicate (state, read) pairs. *)
val make :
  name:string ->
  blank:string ->
  start:string ->
  ((string * string) * (string * string * dir)) list ->
  t

val delta : t -> string -> string -> (string * string * dir) option
val states : t -> string list
val alphabet : t -> string list

module Int_map : Map.S with type key = int

type config = { tape : string Int_map.t; head : int; state : string }

val initial_config : t -> config

(** The symbol under the head. *)
val read : t -> config -> string

type halt_reason = No_transition | Fell_off_left

type outcome = Halted of halt_reason * config | Running of config

val step : t -> config -> (config, halt_reason) result

(** Run from the initial configuration; returns (steps, outcome). *)
val run : ?max_steps:int -> t -> int * outcome

val halts : ?max_steps:int -> t -> bool

(** The tape as a list over cells 0..max visited. *)
val tape_list : t -> config -> string list

val pp_config : t -> Format.formatter -> config -> unit
