(** Rainworm machine instructions: the forms ♦1–♦8 of Section VIII.A,
    with side conditions enforced. *)

(** The twelve instruction shapes. *)
type form =
  | F1   (** η11 → γ1 η0 *)
  | F2   (** η0 → b η1, b ∈ A0 *)
  | F3   (** η1 → q ω0, q ∈ Q̄1 *)
  | F4   (** b' q → q' b (left sweep over A1) *)
  | F4'  (** b q' → q b' (left sweep over A0) *)
  | F5   (** γ1 q → β1 q' (rear marker, odd) *)
  | F5'  (** γ0 q → β0 q' (rear marker, even) *)
  | F6   (** q b → γ1 q' (eat the rear cell, write γ1) *)
  | F6'  (** q b → γ0 q' *)
  | F7   (** q' b → b' q (right sweep over A0) *)
  | F7'  (** q b' → b q' (right sweep over A1) *)
  | F8   (** q ω0 → b η0 (write the new front cell) *)

val pp_form : Format.formatter -> form -> unit

type t

val lhs : t -> Sym.t list
val rhs : t -> Sym.t list

(** The ♦-form of the rewrite pair, if it fits one. *)
val classify : t -> form option

(** @raise Invalid_argument if the pair fits no ♦-form. *)
val make : Sym.t list -> Sym.t list -> t

(** {1 Smart constructors, one per form} *)

val d1 : unit -> t
val d2 : b:string -> t
val d3 : q:string -> t
val d4 : b':string -> q:string -> q':string -> b:string -> t
val d4' : b:string -> q':string -> q:string -> b':string -> t
val d5 : q:string -> q':string -> t
val d5' : q:string -> q':string -> t
val d6 : q:string -> b:string -> q':string -> t
val d6' : q:string -> b:string -> q':string -> t
val d7 : q':string -> b:string -> b':string -> q:string -> t
val d7' : q:string -> b':string -> b:string -> q':string -> t
val d8 : q:string -> b:string -> t

val pp : Format.formatter -> t -> unit

(** Structural parity soundness of the rewrite (used by tests): both sides
    alternate and agree at the boundaries. *)
val parity_sound : t -> bool
