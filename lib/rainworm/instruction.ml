(* Rainworm machine instructions: the forms ♦1–♦8 of Section VIII.A,
   with their side conditions enforced by [classify]. *)

type form =
  | F1   (* η11 → γ1 η0 *)
  | F2   (* η0 → b η1,               b ∈ A0 *)
  | F3   (* η1 → q ω0,               q ∈ Q̄1 *)
  | F4   (* b' q → q' b,             q ∈ Q̄0, q' ∈ Q̄1, b ∈ A0, b' ∈ A1 *)
  | F4'  (* b q' → q b',             q ∈ Q̄0, q' ∈ Q̄1, b ∈ A0, b' ∈ A1 *)
  | F5   (* γ1 q → β1 q',            q ∈ Q̄0, q' ∈ Qγ0 *)
  | F5'  (* γ0 q → β0 q',            q ∈ Q̄1, q' ∈ Qγ1 *)
  | F6   (* q b → γ1 q',             q ∈ Qγ1, q' ∈ Q0, b ∈ A0 *)
  | F6'  (* q b → γ0 q',             q ∈ Qγ0, q' ∈ Q1, b ∈ A1 *)
  | F7   (* q' b → b' q,             q ∈ Q0, q' ∈ Q1, b ∈ A0, b' ∈ A1 *)
  | F7'  (* q b' → b q',             q ∈ Q0, q' ∈ Q1, b ∈ A0, b' ∈ A1 *)
  | F8   (* q ω0 → b η0,             q ∈ Q1, b ∈ A1 *)

let pp_form ppf f =
  Fmt.string ppf
    (match f with
    | F1 -> "♦1" | F2 -> "♦2" | F3 -> "♦3" | F4 -> "♦4" | F4' -> "♦4'"
    | F5 -> "♦5" | F5' -> "♦5'" | F6 -> "♦6" | F6' -> "♦6'" | F7 -> "♦7"
    | F7' -> "♦7'" | F8 -> "♦8")

type t = { lhs : Sym.t list; rhs : Sym.t list }

let lhs t = t.lhs
let rhs t = t.rhs

(* Identify the ♦-form of an lhs → rhs pair, or [None] if it fits none. *)
let classify t =
  match t.lhs, t.rhs with
  | [ Sym.Eta11 ], [ Sym.Gamma1; Sym.Eta0 ] -> Some F1
  | [ Sym.Eta0 ], [ Sym.A0 _; Sym.Eta1 ] -> Some F2
  | [ Sym.Eta1 ], [ Sym.Q1bar _; Sym.Omega0 ] -> Some F3
  | [ Sym.A1 _; Sym.Q0bar _ ], [ Sym.Q1bar _; Sym.A0 _ ] -> Some F4
  | [ Sym.A0 _; Sym.Q1bar _ ], [ Sym.Q0bar _; Sym.A1 _ ] -> Some F4'
  | [ Sym.Gamma1; Sym.Q0bar _ ], [ Sym.Beta1; Sym.Qg0 _ ] -> Some F5
  | [ Sym.Gamma0; Sym.Q1bar _ ], [ Sym.Beta0; Sym.Qg1 _ ] -> Some F5'
  | [ Sym.Qg1 _; Sym.A0 _ ], [ Sym.Gamma1; Sym.Q0 _ ] -> Some F6
  | [ Sym.Qg0 _; Sym.A1 _ ], [ Sym.Gamma0; Sym.Q1 _ ] -> Some F6'
  | [ Sym.Q1 _; Sym.A0 _ ], [ Sym.A1 _; Sym.Q0 _ ] -> Some F7
  | [ Sym.Q0 _; Sym.A1 _ ], [ Sym.A0 _; Sym.Q1 _ ] -> Some F7'
  | [ Sym.Q1 _; Sym.Omega0 ], [ Sym.A1 _; Sym.Eta0 ] -> Some F8
  | _ -> None

let make lhs rhs =
  let t = { lhs; rhs } in
  match classify t with
  | Some _ -> t
  | None ->
      invalid_arg
        (Fmt.str "Instruction.make: %a → %a fits no ♦-form" Sym.pp_word lhs
           Sym.pp_word rhs)

(* Smart constructors, one per form. *)
let d1 () = make [ Sym.Eta11 ] [ Sym.Gamma1; Sym.Eta0 ]
let d2 ~b = make [ Sym.Eta0 ] [ Sym.A0 b; Sym.Eta1 ]
let d3 ~q = make [ Sym.Eta1 ] [ Sym.Q1bar q; Sym.Omega0 ]
let d4 ~b' ~q ~q' ~b = make [ Sym.A1 b'; Sym.Q0bar q ] [ Sym.Q1bar q'; Sym.A0 b ]
let d4' ~b ~q' ~q ~b' = make [ Sym.A0 b; Sym.Q1bar q' ] [ Sym.Q0bar q; Sym.A1 b' ]
let d5 ~q ~q' = make [ Sym.Gamma1; Sym.Q0bar q ] [ Sym.Beta1; Sym.Qg0 q' ]
let d5' ~q ~q' = make [ Sym.Gamma0; Sym.Q1bar q ] [ Sym.Beta0; Sym.Qg1 q' ]
let d6 ~q ~b ~q' = make [ Sym.Qg1 q; Sym.A0 b ] [ Sym.Gamma1; Sym.Q0 q' ]
let d6' ~q ~b ~q' = make [ Sym.Qg0 q; Sym.A1 b ] [ Sym.Gamma0; Sym.Q1 q' ]
let d7 ~q' ~b ~b' ~q = make [ Sym.Q1 q'; Sym.A0 b ] [ Sym.A1 b'; Sym.Q0 q ]
let d7' ~q ~b' ~b ~q' = make [ Sym.Q0 q; Sym.A1 b' ] [ Sym.A0 b; Sym.Q1 q' ]
let d8 ~q ~b = make [ Sym.Q1 q; Sym.Omega0 ] [ Sym.A1 b; Sym.Eta0 ]

let pp ppf t =
  Fmt.pf ppf "@[<h>%a: %a → %a@]"
    (Fmt.option pp_form ~none:(Fmt.any "?"))
    (classify t) Sym.pp_word t.lhs Sym.pp_word t.rhs

(* Every instruction preserves the even/odd alternation requirement: both
   sides read as parity-alternating words starting with the same parity.
   This is a structural fact we expose for tests. *)
let parity_sound t =
  let alternates = function
    | [] -> true
    | x :: rest ->
        fst
          (List.fold_left
             (fun (ok, prev) s -> (ok && Sym.is_even s <> Sym.is_even prev, s))
             (true, x) rest)
  in
  let starts_same =
    match t.lhs, t.rhs with
    | x :: _, y :: _ -> Sym.is_even x = Sym.is_even y
    | _ -> false
  in
  let len_grows = List.length t.rhs >= List.length t.lhs in
  let ends_same =
    (* 2 → 2 rewrites must also agree on the final parity *)
    match List.rev t.lhs, List.rev t.rhs with
    | x :: _, y :: _ ->
        List.length t.lhs <> List.length t.rhs
        || Sym.is_even x = Sym.is_even y
    | _ -> false
  in
  alternates t.lhs && alternates t.rhs && starts_same && len_grows && ends_same
