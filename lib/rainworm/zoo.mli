(** A zoo of rainworm machines and Turing machines used by tests,
    examples and benchmarks. *)

(** The minimal eternal creeper: one tape letter, one state per sweep
    role, twelve instructions — creeps forever. *)
val eternal_creeper : Machine.t

(** A worm with no ♦8 rule: halts before completing its first cycle. *)
val stillborn : Machine.t

(** TM with no transitions: halts immediately. *)
val tm_halt_now : Turing.t

(** Writes k marks moving right, then halts. *)
val tm_write_k : int -> Turing.t

(** Moves right forever: diverges. *)
val tm_right_forever : Turing.t

(** Two right, one left, forever: exercises the staged left moves. *)
val tm_zigzag : Turing.t

(** Increments a little-endian binary counter forever: diverges with
    heavy tape rewriting. *)
val tm_binary_counter : Turing.t

(** Bounces between a wall and the frontier k times, then halts. *)
val tm_bouncer : int -> Turing.t
