(** Backward analysis of rainworm machines (Lemmas 22 and 23): bounded
    predecessor fan-in and the finite backward closure of a halting
    machine's final configuration. *)

(** All one-step predecessors: rhs occurrences replaced by the lhs. *)
val predecessors : Machine.t -> Config.t -> Config.t list

(** Lemma 22(3)'s constant c_M: an upper bound on predecessor fan-in. *)
val c_m : Machine.t -> int

(** The set {w : w ⤳^{≤depth} u}, capped at [max_size] words. *)
val backward_closure : ?max_size:int -> depth:int -> Machine.t -> Config.t -> Config.t list

(** For a halting machine: (u_M, k_M, {w : w ⤳* u_M}); [None] if it does
    not halt within the budget. *)
val halting_analysis : ?max_steps:int -> Machine.t -> (Config.t * int * Config.t list) option
