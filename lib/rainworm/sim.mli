(** Creeping: the operational semantics of rainworm machines.

    On valid configurations at most one rewrite applies (Lemma 22(2));
    {!step} exploits this by trying only the redexes adjacent to the
    unique state symbol. *)

type outcome =
  | Halted of Config.t   (** no rule applicable: the worm stops *)
  | Running of Config.t  (** budget exhausted, still creeping *)

type trace = {
  steps : int;            (** rewriting steps performed *)
  cycles : int;           (** completed creep cycles (♦8 firings) *)
  outcome : outcome;
  verdict : Resilience.Governor.outcome;
      (** how the creep ended: [Fixpoint] iff halted, [Budget Steps] on
          step/cycle fuel, [Deadline]/[Cancelled] from the governor *)
  max_length : int;       (** longest configuration seen *)
  history : Config.t list;(** chronological; kept only on request *)
}

val final_config : trace -> Config.t
val halted : trace -> bool

(** One rewriting step, or [None] when the machine halts. *)
val step : Machine.oracle -> Config.t -> Config.t option

(** Creep from [from] (default α·η11) for at most [max_steps] rewritings
    or [max_cycles] cycles.  [validate] re-checks Definition 19 at every
    step (Lemma 20) and fails loudly on violation.  [keep_history] records
    every configuration.  The [governor] (default unlimited) is polled
    every step: its step fuel caps [max_steps], and cancellation or an
    expired deadline end the creep with the matching [verdict]. *)
val creep :
  ?from:Config.t ->
  ?max_steps:int ->
  ?max_cycles:int ->
  ?validate:bool ->
  ?keep_history:bool ->
  ?governor:Resilience.Governor.t ->
  Machine.oracle ->
  trace

val creep_machine :
  ?from:Config.t ->
  ?max_steps:int ->
  ?max_cycles:int ->
  ?validate:bool ->
  ?keep_history:bool ->
  ?governor:Resilience.Governor.t ->
  Machine.t ->
  trace

(** All configurations reachable within the budget, in order. *)
val reachable_configs : ?max_steps:int -> Machine.oracle -> Config.t list
