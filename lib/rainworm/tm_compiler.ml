(* Turing machine → rainworm machine (the construction behind Lemma 21).

   Each creep cycle of a rainworm appends one fresh cell at the front
   (♦2/♦8), consumes one cell at the rear (♦6), and sweeps the head twice
   across the worm (♦4 leftwards, ♦7 rightwards), rewriting every cell.
   We exploit the sweeps to simulate one TM step per cycle:

   * every worm cell carries a [content]: a simulated tape symbol plus an
     optional head mark; the freshly appended cell carries [Seed], which
     the sweeps convert into a blank tape cell — the simulated tape grows
     one blank per cycle;
   * the rear cell consumed by ♦6 is the simulated tape's cell 0; its
     content re-enters the computation as the initial carry of the right
     sweep, which writes each cell's carry into the next cell — a shift
     that exactly compensates the rear consumption, so cell 0 is never
     lost;
   * the TM transition fires when the right sweep reads the marked cell:
     a right move drops the mark on the next cell read; a left move stages
     a [Pend_left] token that the *next* left sweep (which scans
     right-to-left and hence meets the left neighbour afterwards) resolves;
     a right move off the last cell is staged as [Pend_right] and resolved
     by the next right sweep;
   * the mark is injected at the unique cycle in which the worm consumes a
     swept seed (the first cycle, when the worm is one cell long);
   * when δ is undefined at the marked cell, no rainworm instruction
     applies and the worm stops creeping.

   Hence: the TM halts iff the compiled rainworm machine halts, and the
   worm's creeping (slime trail growth) is eternal iff the TM diverges. *)

type mark =
  | No_mark
  | Mark of string          (* the TM head, in the given state *)
  | Pend_left of string     (* head moved left; resolved by the left sweep *)
  | Pend_right of string    (* head moved right off this cell; resolved by
                               the right sweep *)

type content =
  | Seed          (* appended by ♦2, not yet swept *)
  | Seed_swept    (* seed after the left sweep; becomes a blank tape cell *)
  | Cell of string * mark

(* --- encodings into the flat strings of [Sym] ------------------------- *)

let enc_mark = function
  | No_mark -> "c"
  | Mark q -> "m|" ^ q
  | Pend_left q -> "pl|" ^ q
  | Pend_right q -> "pr|" ^ q

let enc_content = function
  | Seed -> "seed"
  | Seed_swept -> "seed1"
  | Cell (a, m) -> enc_mark m ^ "|" ^ a

let dec_content s =
  match s with
  | "seed" -> Some Seed
  | "seed1" -> Some Seed_swept
  | _ -> (
      match String.split_on_char '|' s with
      | [ "c"; a ] -> Some (Cell (a, No_mark))
      | [ "m"; q; a ] -> Some (Cell (a, Mark q))
      | [ "pl"; q; a ] -> Some (Cell (a, Pend_left q))
      | [ "pr"; q; a ] -> Some (Cell (a, Pend_right q))
      | _ -> None)

(* Left-sweep states carry a pending mark drop; right-sweep states carry
   the shift carry plus a pending drop.  State payloads use ';' as the
   outer separator so content encodings nest safely. *)
let enc_lstate drop = match drop with None -> "L" | Some q -> "L;" ^ q

let dec_lstate s =
  match String.split_on_char ';' s with
  | [ "L" ] -> Some None
  | [ "L"; q ] -> Some (Some q)
  | _ -> None

let enc_rstate carry drop =
  "R;" ^ enc_content carry ^ (match drop with None -> "" | Some q -> ";" ^ q)

let dec_rstate s =
  match String.split_on_char ';' s with
  | [ "R"; c ] -> Option.map (fun c -> (c, None)) (dec_content c)
  | [ "R"; c; q ] -> Option.map (fun c -> (c, Some q)) (dec_content c)
  | _ -> None

(* --- sweep semantics -------------------------------------------------- *)

(* Attach a pending drop to a plain cell; a drop can never coexist with
   another mark (the TM has a single head). *)
let with_drop content drop =
  match content, drop with
  | c, None -> Some (c, None)
  | Cell (a, No_mark), Some q -> Some (Cell (a, Mark q), None)
  | _, Some _ -> None

(* Left sweep: content-preserving, except that seeds mature and pending
   left-moves are resolved one cell later (i.e. one cell further left). *)
let lprocess content drop =
  match content with
  | Seed -> if drop = None then Some (Seed_swept, None) else None
  | Seed_swept -> None (* a swept seed never survives to another left sweep *)
  | Cell (a, Pend_left q) ->
      if drop = None then Some (Cell (a, No_mark), Some q) else None
  | Cell (_, No_mark) -> with_drop content drop
  | Cell (_, (Mark _ | Pend_right _)) ->
      if drop = None then Some (content, None) else None

(* Right sweep: seeds become blanks, pending right-moves resolve into a
   drop, and the TM transition fires at the marked cell. *)
let rprocess tm content drop =
  match content with
  | Seed -> None (* unreachable: ♦2's seed is swept before the right sweep *)
  | Seed_swept -> with_drop (Cell (tm.Turing.blank, No_mark)) drop
  | Cell (_, No_mark) -> with_drop content drop
  | Cell (a, Pend_right q) ->
      if drop = None then Some (Cell (a, No_mark), Some q) else None
  | Cell (_, Pend_left _) -> None (* resolved by the left sweep, never read *)
  | Cell (a, Mark q) -> (
      if drop <> None then None
      else
        match Turing.delta tm q a with
        | None -> None (* the TM halts: the worm stops creeping *)
        | Some (q', a', Turing.Right) -> Some (Cell (a', No_mark), Some q')
        | Some (q', a', Turing.Left) -> Some (Cell (a', Pend_left q'), None))

(* Consuming the rear cell (♦6): its processed content becomes the initial
   carry of the right sweep.  Eating a swept seed happens exactly once —
   on the first cycle — and injects the TM head in its start state. *)
let eat tm content =
  match content with
  | Seed_swept -> Some (Cell (tm.Turing.blank, Mark tm.Turing.start), None)
  | _ -> rprocess tm content None

(* The final ♦8 write: the last carry becomes the new front cell; a still
   pending drop is staged as [Pend_right]. *)
let finish carry drop =
  match carry, drop with
  | c, None -> Some c
  | Cell (a, No_mark), Some q -> Some (Cell (a, Pend_right q))
  | _, Some _ -> None

(* --- the compiled machine, as an oracle ------------------------------- *)

let oracle (tm : Turing.t) : Machine.oracle =
  let expand = function
    | Sym.Eta11 -> Some (Sym.Gamma1, Sym.Eta0)
    | Sym.Eta0 -> Some (Sym.A0 (enc_content Seed), Sym.Eta1)
    | Sym.Eta1 -> Some (Sym.Q1bar (enc_lstate None), Sym.Omega0)
    | _ -> None
  in
  let lstep c s =
    match dec_content c, dec_lstate s with
    | Some content, Some drop ->
        Option.map
          (fun (c', drop') -> (enc_content c', enc_lstate drop'))
          (lprocess content drop)
    | _ -> None
  in
  let rstep s c =
    match dec_rstate s, dec_content c with
    | Some (carry, drop), Some content ->
        Option.map
          (fun (c', drop') -> (enc_content carry, enc_rstate c' drop'))
          (rprocess tm content drop)
    | _ -> None
  in
  let swap a b =
    match a, b with
    (* ♦4 / ♦4': the left sweep *)
    | Sym.A1 c, Sym.Q0bar s ->
        Option.map (fun (c', s') -> (Sym.Q1bar s', Sym.A0 c')) (lstep c s)
    | Sym.A0 c, Sym.Q1bar s ->
        Option.map (fun (c', s') -> (Sym.Q0bar s', Sym.A1 c')) (lstep c s)
    (* ♦5 / ♦5': rear marker consumed; a pending drop here means the TM fell
       off the left end — no rule, the worm halts *)
    | Sym.Gamma1, Sym.Q0bar s when dec_lstate s = Some None ->
        Some (Sym.Beta1, Sym.Qg0 "G")
    | Sym.Gamma0, Sym.Q1bar s when dec_lstate s = Some None ->
        Some (Sym.Beta0, Sym.Qg1 "G")
    (* ♦6 / ♦6': eat the rear cell, start the right sweep *)
    | Sym.Qg1 _, Sym.A0 c ->
        Option.bind (dec_content c) (fun content ->
            Option.map
              (fun (carry, drop) -> (Sym.Gamma1, Sym.Q0 (enc_rstate carry drop)))
              (eat tm content))
    | Sym.Qg0 _, Sym.A1 c ->
        Option.bind (dec_content c) (fun content ->
            Option.map
              (fun (carry, drop) -> (Sym.Gamma0, Sym.Q1 (enc_rstate carry drop)))
              (eat tm content))
    (* ♦7 / ♦7': the right sweep *)
    | Sym.Q1 s, Sym.A0 c ->
        Option.map (fun (c', s') -> (Sym.A1 c', Sym.Q0 s')) (rstep s c)
    | Sym.Q0 s, Sym.A1 c ->
        Option.map (fun (c', s') -> (Sym.A0 c', Sym.Q1 s')) (rstep s c)
    (* ♦8: write the carry as the new front cell *)
    | Sym.Q1 s, Sym.Omega0 ->
        Option.bind (dec_rstate s) (fun (carry, drop) ->
            Option.map
              (fun content -> (Sym.A1 (enc_content content), Sym.Eta0))
              (finish carry drop))
    | _ -> None
  in
  { Machine.expand; swap }

(* Materialize the instructions a bounded run actually uses, as an
   explicit (finite, valid) machine. *)
let materialize ?(max_steps = 10_000) tm =
  let o, collected = Machine.recording_oracle (oracle tm) in
  let _trace = Sim.creep ~max_steps o in
  Machine.make ~name:("rw:" ^ tm.Turing.name) (collected ())

(* --- decoding a configuration back into a TM tape --------------------- *)

(* Reconstruct the simulated tape from a rainworm configuration: the worm's
   cell letters in order, with the carry inserted at the head position when
   the worm is mid-right-sweep.  Seeds are dropped (they are tape cells not
   yet born).  Returns the cell contents, left to right. *)
let decode_tape (w : Config.t) =
  let worm = Config.worm w in
  let contents =
    List.concat_map
      (fun s ->
        match s with
        | Sym.A0 c | Sym.A1 c -> (
            match dec_content c with Some ct -> [ ct ] | None -> [])
        | Sym.Q0 s | Sym.Q1 s -> (
            match dec_rstate s with
            | Some (carry, _) -> [ carry ]
            | None -> [])
        | _ -> [])
      worm
  in
  List.filter_map
    (function
      | Cell (a, m) -> Some (a, m)
      | Seed | Seed_swept -> None)
    contents
