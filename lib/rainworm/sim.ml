(* Creeping: the operational semantics of rainworm machines.

   A single computation step is a single semi-Thue rewriting.  On valid
   configurations at most one rewrite applies (Lemma 22(2), a consequence
   of ∆ being a partial function and the configuration having exactly one
   state symbol); [step] exploits this by locating the state symbol and
   trying the adjacent redexes only. *)

let c_steps = Obs.Metrics.counter "worm.steps"
let c_cycles = Obs.Metrics.counter "worm.cycles"
let h_config_len = Obs.Metrics.histogram "worm.config_len"

module G = Resilience.Governor

type outcome =
  | Halted of Config.t       (* no rule applicable: the worm stops *)
  | Running of Config.t      (* budget exhausted, still creeping *)

type trace = {
  steps : int;                   (* rewriting steps performed *)
  cycles : int;                  (* full creep cycles (♦8 firings) *)
  outcome : outcome;
  verdict : G.outcome;           (* the structured way the creep ended *)
  max_length : int;              (* longest configuration seen *)
  history : Config.t list;       (* chronological, possibly truncated *)
}

let final_config t = match t.outcome with Halted c | Running c -> c
let halted t = match t.outcome with Halted _ -> true | Running _ -> false

(* One rewriting step via the oracle.  The redex always involves the state
   symbol: single-lhs rules (♦1–♦3) rewrite the state itself, double-lhs
   rules (♦4–♦8) rewrite the state together with its left or right
   neighbour. *)
let step (o : Machine.oracle) (w : Config.t) : Config.t option =
  let rec go before rest =
    match rest with
    | [] -> None
    | s :: after when Sym.is_state s -> (
        (* try: expand s | swap (prev, s) | swap (s, next) *)
        match o.Machine.expand s with
        | Some (x, y) -> Some (List.rev_append before (x :: y :: after))
        | None -> (
            let left =
              match before with
              | p :: before' -> (
                  match o.Machine.swap p s with
                  | Some (x, y) ->
                      Some (List.rev_append before' (x :: y :: after))
                  | None -> None)
              | [] -> None
            in
            match left with
            | Some _ as r -> r
            | None -> (
                match after with
                | n :: after' -> (
                    match o.Machine.swap s n with
                    | Some (x, y) ->
                        Some (List.rev_append before (x :: y :: after'))
                    | None -> None)
                | [] -> None)))
    | s :: after -> go (s :: before) after
  in
  go [] w

(* Creep for at most [max_steps] rewritings (or [max_cycles] full cycles),
   starting from [from] (default: the initial configuration α·η11).
   [validate] re-checks Definition 19 at every step (Lemma 20).  The
   [governor] is polled every step: its step fuel caps [max_steps], and
   cancellation/deadline end the creep with a [Running] configuration and
   the matching verdict — worm state is a plain configuration, so unlike
   the chase there is nothing to tear. *)
let creep ?(from = Config.initial) ?(max_steps = 10_000) ?max_cycles
    ?(validate = false) ?(keep_history = false)
    ?(governor = G.unlimited) (o : Machine.oracle) =
  let cycle_budget = Option.value max_cycles ~default:max_int in
  let max_steps = min max_steps governor.G.max_steps in
  let rec go n cycles maxlen w history =
    let history = if keep_history then w :: history else history in
    if validate && not (Config.is_valid w) then
      failwith
        (Fmt.str "Sim.creep: invalid configuration reached: %a" Config.pp w);
    match G.interrupted governor with
    | Some v ->
        {
          steps = n;
          cycles;
          outcome = Running w;
          verdict = v;
          max_length = maxlen;
          history = List.rev history;
        }
    | None ->
    if n >= max_steps || cycles >= cycle_budget then
      {
        steps = n;
        cycles;
        outcome = Running w;
        verdict = G.Budget G.Steps;
        max_length = maxlen;
        history = List.rev history;
      }
    else
      match step o w with
      | None ->
          {
            steps = n;
            cycles;
            outcome = Halted w;
            verdict = G.Fixpoint;
            max_length = maxlen;
            history = List.rev history;
          }
      | Some w' ->
          (* a cycle completes when ♦8 fires: ω0 turns back into η0 *)
          let completed =
            match List.rev w, List.rev w' with
            | Sym.Omega0 :: _, Sym.Eta0 :: _ -> true
            | _ -> false
          in
          let len' = List.length w' in
          if !Obs.metrics_on then begin
            Obs.Metrics.incr c_steps;
            if completed then Obs.Metrics.incr c_cycles;
            Obs.Metrics.observe h_config_len len'
          end;
          go (n + 1)
            (if completed then cycles + 1 else cycles)
            (max maxlen len')
            w' history
  in
  let out_steps = ref 0 and out_cycles = ref 0 and out_maxlen = ref 0 in
  Obs.Trace.with_span "worm.creep"
    ~args:(fun () ->
      [ ("steps", !out_steps); ("cycles", !out_cycles);
        ("max_length", !out_maxlen) ])
    (fun () ->
      let t = go 0 0 (List.length from) from [] in
      out_steps := t.steps;
      out_cycles := t.cycles;
      out_maxlen := t.max_length;
      t)

let creep_machine ?from ?max_steps ?max_cycles ?validate ?keep_history
    ?governor m =
  creep ?from ?max_steps ?max_cycles ?validate ?keep_history ?governor
    (Machine.oracle m)

(* All configurations w with αη11 ⤳* w within a step budget: the slime
   words among them feed Lemma 25's check. *)
let reachable_configs ?(max_steps = 1000) o =
  let t = creep ~max_steps ~keep_history:true o in
  t.history
