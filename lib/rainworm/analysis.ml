(* Backward analysis of rainworm machines (Lemmas 22 and 23).

   Lemma 22: (2) at most one forward step from any word with one state
   symbol; (3) at most c_M backward steps into it.  Lemma 23: when the
   machine terminates in u_M after k_M steps, the set {w : w ⤳* u_M} is
   finite and equals {w : w ⤳*! αη11} — "to reach any vertex of a tree
   from a leaf, it is enough to go up to the root and then down". *)

(* All predecessors of [w] under the machine's instructions: occurrences
   of a rule's rhs in [w], replaced by its lhs. *)
let predecessors machine (w : Config.t) =
  let rec strip_prefix p rest =
    match p, rest with
    | [], rest -> Some rest
    | x :: p', y :: rest' -> if Sym.equal x y then strip_prefix p' rest' else None
    | _ :: _, [] -> None
  in
  let preds = ref [] in
  List.iter
    (fun instr ->
      let lhs = Instruction.lhs instr and rhs = Instruction.rhs instr in
      let rec at before rest =
        (match strip_prefix rhs rest with
        | Some tail ->
            let p = List.rev_append before (lhs @ tail) in
            if not (List.mem p !preds) then preds := p :: !preds
        | None -> ());
        match rest with [] -> () | x :: rest' -> at (x :: before) rest'
      in
      at [] w)
    (Machine.rules machine);
  List.rev !preds

(* The constant c_M of Lemma 22(3): an upper bound on the number of
   predecessors of any word — one per (rule, occurrence), and since the
   rhs contains the state symbol, at most one occurrence per rule. *)
let c_m machine = Machine.size machine

(* Backward closure from a configuration, bounded: the set
   {w : w ⤳^{≤depth} u}. *)
let backward_closure ?(max_size = 100_000) ~depth machine u =
  let seen = Hashtbl.create 256 in
  Hashtbl.replace seen u ();
  let frontier = ref [ u ] in
  (try
     for _ = 1 to depth do
       let next = ref [] in
       List.iter
         (fun w ->
           List.iter
             (fun p ->
               if not (Hashtbl.mem seen p) then begin
                 Hashtbl.replace seen p ();
                 if Hashtbl.length seen > max_size then raise Exit;
                 next := p :: !next
               end)
             (predecessors machine w))
         !frontier;
       frontier := !next;
       if !next = [] then raise Exit
     done
   with Exit -> ());
  Hashtbl.fold (fun w () acc -> w :: acc) seen []

(* For a halting machine: (final configuration, steps, the full set
   {w : w ⤳* u_M}).  The closure is finite (Lemma 23(4)); [None] if the
   machine does not halt within the budget. *)
let halting_analysis ?(max_steps = 50_000) machine =
  let trace = Sim.creep_machine ~max_steps machine in
  match trace.Sim.outcome with
  | Sim.Running _ -> None
  | Sim.Halted u_m ->
      let closure =
        backward_closure ~depth:(trace.Sim.steps + 1) machine u_m
      in
      Some (u_m, trace.Sim.steps, closure)
