(* Rainworm configurations (Definition 19): words from (A + Q)* subject to
   the four structural conditions.  The initial configuration is α·η11. *)

type t = Sym.t list

let initial : t = [ Sym.Alpha; Sym.Eta11 ]

let pp = Sym.pp_word

(* Condition 1: w ∈ A+ Q A* — exactly one state symbol, after at least one
   letter. *)
let cond1 (w : t) =
  match w with
  | [] -> false
  | first :: _ ->
      Sym.is_letter first
      && (let states = List.filter Sym.is_state w in
          List.length states = 1)

(* Condition 2: the last symbol is one of η11, η0, η1, ω0. *)
let cond2 (w : t) =
  match List.rev w with
  | last :: _ -> (
      match last with
      | Sym.Eta11 | Sym.Eta0 | Sym.Eta1 | Sym.Omega0 -> true
      | _ -> false)
  | [] -> false

(* Condition 3: odd and even symbols alternate. *)
let cond3 (w : t) =
  match w with
  | [] -> true
  | x :: rest ->
      fst
        (List.fold_left
           (fun (ok, prev) s -> (ok && Sym.is_even s <> Sym.is_even prev, s))
           (true, x) rest)

(* Condition 4: w = w1 · w2 with w1 ∈ α(β1β0)* or α(β1β0)*β1 (the slime
   trail), w2 beginning with γ0, γ1 or a Qγ state (the rainworm), and no
   α/β in w2.  We also accept the degenerate initial tail η11 (the paper's
   initial configuration α·η11 precedes the first γ). *)
let split_slime (w : t) =
  match w with
  | Sym.Alpha :: rest ->
      (* consume the maximal α(β1β0)*(β1?) prefix *)
      let rec go acc rest =
        match rest with
        | Sym.Beta1 :: Sym.Beta0 :: rest' ->
            go (Sym.Beta0 :: Sym.Beta1 :: acc) rest'
        | Sym.Beta1 :: rest' -> (List.rev (Sym.Beta1 :: acc), rest')
        | _ -> (List.rev acc, rest)
      in
      let s, worm = go [ Sym.Alpha ] rest in
      Some (s, worm)
  | _ -> None

let cond4 (w : t) =
  match split_slime w with
  | None -> false
  | Some (_, worm) -> (
      let no_alpha_beta =
        List.for_all
          (function Sym.Alpha | Sym.Beta0 | Sym.Beta1 -> false | _ -> true)
          worm
      in
      no_alpha_beta
      &&
      match worm with
      | (Sym.Gamma0 | Sym.Gamma1 | Sym.Qg0 _ | Sym.Qg1 _) :: _ -> true
      | [ Sym.Eta11 ] | [ Sym.Eta0 ] | [ Sym.Eta1 ] -> true (* pre-first-γ *)
      | _ -> false)

let is_valid w = cond1 w && cond2 w && cond3 w && cond4 w

(* The slime trail (w1) and the rainworm proper (w2) of Definition 19(4). *)
let slime w = match split_slime w with Some (s, _) -> s | None -> []
let worm w = match split_slime w with Some (_, r) -> r | None -> w

let length = List.length

(* The slime trail as an αβ-word — what Section VIII's reduction matches
   against αβ-paths in the green graph. *)
let slime_word w = slime w
