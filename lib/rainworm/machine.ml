(* A rainworm machine: a finite set ∆ of instructions that is a partial
   function (two different instructions have different left-hand sides,
   footnote 16 — this is what makes the machine deterministic).

   Large machines produced by the TM compiler are represented *lazily* by
   an oracle — a function from left-hand sides to right-hand sides — from
   which an explicit instruction list can be materialized by collecting the
   rules a bounded run actually uses. *)

type oracle = {
  expand : Sym.t -> (Sym.t * Sym.t) option;
  (* 1-symbol lhs: the ♦1/♦2/♦3 family and nothing else *)
  swap : Sym.t -> Sym.t -> (Sym.t * Sym.t) option;
  (* 2-symbol lhs: ♦4–♦8 *)
}

type t = { name : string; rules : Instruction.t list }

let make ~name rules =
  List.iter
    (fun r ->
      match Instruction.classify r with
      | Some _ -> ()
      | None ->
          invalid_arg (Fmt.str "Machine.make: invalid instruction %a" Instruction.pp r))
    rules;
  let lhss = List.map Instruction.lhs rules in
  let rec distinct = function
    | [] -> true
    | l :: rest -> (not (List.mem l rest)) && distinct rest
  in
  if not (distinct lhss) then
    invalid_arg "Machine.make: ∆ is not a partial function (duplicate lhs)";
  { name; rules }

let name t = t.name
let rules t = t.rules
let size t = List.length t.rules

(* Lookup-table oracle for an explicit machine. *)
let oracle t =
  let singles = Hashtbl.create 8 and pairs = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match Instruction.lhs r, Instruction.rhs r with
      | [ a ], [ x; y ] -> Hashtbl.replace singles a (x, y)
      | [ a; b ], [ x; y ] -> Hashtbl.replace pairs (a, b) (x, y)
      | _ -> assert false)
    t.rules;
  {
    expand = (fun a -> Hashtbl.find_opt singles a);
    swap = (fun a b -> Hashtbl.find_opt pairs (a, b));
  }

(* Record every oracle answer, so that the finite sub-machine a run
   exercises can be materialized afterwards. *)
let recording_oracle o =
  let seen = Hashtbl.create 64 in
  let collected = ref [] in
  let remember lhs rhs =
    if not (Hashtbl.mem seen lhs) then begin
      Hashtbl.replace seen lhs ();
      collected := Instruction.make lhs rhs :: !collected
    end
  in
  let o' =
    {
      expand =
        (fun a ->
          match o.expand a with
          | Some (x, y) as r ->
              remember [ a ] [ x; y ];
              r
          | None -> None);
      swap =
        (fun a b ->
          match o.swap a b with
          | Some (x, y) as r ->
              remember [ a; b ] [ x; y ];
              r
          | None -> None);
    }
  in
  (o', fun () -> List.rev !collected)

(* View as a generic semi-Thue system (Section VIII.A formulates ∆ in the
   language of Thue semisystem rules). *)
let to_thue t =
  Thue.System.make ~equal:Sym.equal
    (List.map
       (fun r ->
         Thue.System.rule
           ~tag:(Fmt.str "%a" (Fmt.option Instruction.pp_form) (Instruction.classify r))
           (Instruction.lhs r) (Instruction.rhs r))
       t.rules)

let pp ppf t =
  Fmt.pf ppf "@[<v>machine %s (%d instructions):@,%a@]" t.name (size t)
    (Fmt.list ~sep:Fmt.cut Instruction.pp)
    t.rules
