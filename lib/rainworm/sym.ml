(* Symbols of a rainworm machine (Section VIII.A).

   The tape alphabet A is the disjoint union of A0, A1 and the special
   letters {α, β0, β1, γ0, γ1, ω0}; the state set Q is the disjoint union
   of Q0, Q̄0, Q1, Q̄1, Qγ0, Qγ1 and {η11, η0, η1}.  Members of the open
   classes are identified by strings. *)

type t =
  (* special letters *)
  | Alpha
  | Beta0
  | Beta1
  | Gamma0
  | Gamma1
  | Omega0
  (* tape letters *)
  | A0 of string
  | A1 of string
  (* special states *)
  | Eta11
  | Eta0
  | Eta1
  (* right-sweep states *)
  | Q0 of string
  | Q1 of string
  (* left-sweep states *)
  | Q0bar of string
  | Q1bar of string
  (* rear-marker states *)
  | Qg0 of string
  | Qg1 of string

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let is_state = function
  | Eta11 | Eta0 | Eta1 | Q0 _ | Q1 _ | Q0bar _ | Q1bar _ | Qg0 _ | Qg1 _ ->
      true
  | Alpha | Beta0 | Beta1 | Gamma0 | Gamma1 | Omega0 | A0 _ | A1 _ -> false

let is_letter s = not (is_state s)

(* Parity (Definition 19): even and odd symbols must alternate in a
   configuration.  ω0 patterns as even (it replaces η0-like positions). *)
let is_even = function
  | Alpha | Beta0 | Gamma0 | Eta0 | Omega0 | A0 _ | Q0 _ | Q0bar _ | Qg0 _ ->
      true
  | Beta1 | Gamma1 | Eta1 | Eta11 | A1 _ | Q1 _ | Q1bar _ | Qg1 _ -> false

let is_odd s = not (is_even s)

let pp ppf = function
  | Alpha -> Fmt.string ppf "α"
  | Beta0 -> Fmt.string ppf "β0"
  | Beta1 -> Fmt.string ppf "β1"
  | Gamma0 -> Fmt.string ppf "γ0"
  | Gamma1 -> Fmt.string ppf "γ1"
  | Omega0 -> Fmt.string ppf "ω0"
  | A0 b -> Fmt.pf ppf "%s₀" b
  | A1 b -> Fmt.pf ppf "%s₁" b
  | Eta11 -> Fmt.string ppf "η11"
  | Eta0 -> Fmt.string ppf "η0"
  | Eta1 -> Fmt.string ppf "η1"
  | Q0 q -> Fmt.pf ppf "[%s]₀" q
  | Q1 q -> Fmt.pf ppf "[%s]₁" q
  | Q0bar q -> Fmt.pf ppf "[%s]̄₀" q
  | Q1bar q -> Fmt.pf ppf "[%s]̄₁" q
  | Qg0 q -> Fmt.pf ppf "[%s]γ₀" q
  | Qg1 q -> Fmt.pf ppf "[%s]γ₁" q

let to_string s = Fmt.str "%a" pp s

let pp_word ppf w = Fmt.pf ppf "@[<h>%a@]" (Fmt.list ~sep:Fmt.sp pp) w
