(** Turing machine → rainworm machine: the construction behind Lemma 21.

    One TM step is simulated per creep cycle: worm cells carry tape
    symbols with optional head marks; the right sweep shifts the simulated
    tape one cell rightwards (compensating the rear consumption) and fires
    the TM transition at the marked cell; left moves and boundary right
    moves are staged as pending tokens resolved by the next sweep.  The
    worm halts iff the TM halts (verified lock-step by the test suite,
    including final-tape agreement). *)

(** The head annotation of a simulated tape cell. *)
type mark =
  | No_mark
  | Mark of string         (** the TM head, in the given state *)
  | Pend_left of string    (** staged left move *)
  | Pend_right of string   (** staged boundary right move *)

(** Simulated cell contents. *)
type content =
  | Seed        (** appended by ♦2, not yet swept *)
  | Seed_swept  (** seed after the left sweep; becomes a blank cell *)
  | Cell of string * mark

val enc_content : content -> string
val dec_content : string -> content option

(** The compiled machine, as a lazily-evaluated rule oracle. *)
val oracle : Turing.t -> Machine.oracle

(** Materialize the instructions a bounded run actually uses as an
    explicit, valid rainworm machine. *)
val materialize : ?max_steps:int -> Turing.t -> Machine.t

(** Reconstruct the simulated tape from a configuration: cell contents
    left to right, marks included (the carry is inserted at the head
    position mid-sweep). *)
val decode_tape : Config.t -> (string * mark) list
