(** Rainworm configurations (Definition 19): words over A + Q subject to
    four structural conditions.  Lemma 20: every word reachable from the
    initial configuration α·η11 satisfies them. *)

type t = Sym.t list

(** α·η11 *)
val initial : t

val pp : Format.formatter -> t -> unit

(** Condition 1: w ∈ A⁺ Q A* (one state symbol, after at least one
    letter). *)
val cond1 : t -> bool

(** Condition 2: the last symbol is η11, η0, η1 or ω0. *)
val cond2 : t -> bool

(** Condition 3: even and odd symbols alternate. *)
val cond3 : t -> bool

(** Condition 4: w = slime · worm with slime ∈ α(β1β0)*(β1?) and the worm
    starting with a γ marker (degenerate pre-first-γ tails allowed). *)
val cond4 : t -> bool

val is_valid : t -> bool

(** The slime trail w1 of Definition 19(4) — an αβ-word. *)
val slime : t -> Sym.t list

(** The rainworm proper w2. *)
val worm : t -> Sym.t list

val length : t -> int
val slime_word : t -> Sym.t list
