(** A Datalog-style concrete syntax for conjunctive queries:

    {v
    q(x, y) :- E(x, z), E(z, y)      a binary query
    :- E(x, x)                        a boolean query
    q(x) :- Visited(x, 'paris')       'quoted' arguments are constants
    v} *)

exception Syntax_error of string

(** Parse one rule; the head name is dropped. *)
val query : string -> (Query.t, string) result

(** Parse one rule, keeping the head name (["q"] for boolean rules). *)
val named_query : string -> (string * Query.t, string) result

(** Parse one rule per line; blank lines and ['%'] comments are skipped. *)
val program : string -> ((string * Query.t) list, string) result

(** @raise Invalid_argument on parse errors. *)
val query_exn : string -> Query.t
