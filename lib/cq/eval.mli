(** Conjunctive-query evaluation: the view [Q(D) = { ā : D ⊨ Q(ā) }]
    (Section II.A). *)

open Relational

module Tuple : sig
  type t = int array

  val compare : t -> t -> int
  val pp : ?elem:(Format.formatter -> int -> unit) -> unit -> Format.formatter -> t -> unit
end

module Tuple_set : Set.S with type elt = Tuple.t

(** All answers of [q] over [d], optionally under an initial binding. *)
val answers : ?init:Hom.binding -> Query.t -> Structure.t -> Tuple_set.t

(** [holds_at q d ā] is [D ⊨ Q(ā)].
    @raise Invalid_argument on arity mismatch. *)
val holds_at : Query.t -> Structure.t -> int array -> bool

(** [holds q d] is [D ⊨ Q] with all free variables implicitly
    existentially quantified. *)
val holds : Query.t -> Structure.t -> bool

val count_answers : Query.t -> Structure.t -> int

(** The view instance Q(D) for a named set of queries, as one structure
    over the view signature — one k-ary relation per k-ary query
    (Section I.B).  Elements keep their identities from [d]; constants
    stay constants. *)
val view_structure : (string * Query.t) list -> Structure.t -> Structure.t

(** [same_views qs d1 d2]: do all views agree?  Meaningful when [d1] and
    [d2] share their element identities (the single two-colored instance
    of CQfDP.2). *)
val same_views : (string * Query.t) list -> Structure.t -> Structure.t -> bool
