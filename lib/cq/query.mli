(** Conjunctive queries (Section II.A).

    A CQ is a conjunction of atoms with a designated tuple of free
    variables; the remaining variables are existentially quantified.  The
    paper works with the canonical structure A[Ψ] of the quantifier-free
    part throughout; {!canonical} realizes it. *)

open Relational

type t

(** [make ~free body] is the query with the given free variables (in
    order) and body.
    @raise Invalid_argument if a free variable does not occur in the body
    or is repeated. *)
val make : free:string list -> Atom.t list -> t

(** A boolean query: all variables existentially quantified. *)
val boolean : Atom.t list -> t

val free : t -> string list
val body : t -> Atom.t list

(** Number of free variables. *)
val arity : t -> int

val vars : t -> Term.Var_set.t
val existential_vars : t -> Term.Var_set.t
val constants : t -> string list

(** [close q] quantifies all free variables — the notation [D ⊨ Q] of
    Section II.A. *)
val close : t -> t

(** Paint every body atom (Definition 3 uses G(Q) and R(Q)). *)
val paint : Symbol.color -> t -> t

(** Erase colors from the body. *)
val dalt : t -> t

(** Rename every variable (free list included) through the function. *)
val rename_vars : (string -> string) -> t -> t

(** The canonical structure A[Ψ]: one element per variable, constants
    becoming structure constants.  Also returns the variable-to-element
    map. *)
val canonical : t -> Structure.t * (string -> int option)

(** The converse (used by the paper after Section II.A): read a structure
    back as the unique CQ with that canonical structure, freeing the given
    elements.
    @raise Invalid_argument if a freed element is a constant. *)
val of_structure : ?free:int list -> Structure.t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
