(* A small concrete syntax for conjunctive queries, Datalog style:

     q(x, y) :- E(x, z), E(z, y)       a binary query
     :- E(x, x)                         a boolean query
     q(x) :- Visited(x, 'paris')        'quoted' arguments are constants

   Identifiers are [A-Za-z0-9_]+; plain arguments are variables.  The head
   name is ignored by [query] (views are named externally) but checked for
   well-formedness. *)

type token =
  | Ident of string
  | Quoted of string
  | Lpar
  | Rpar
  | Comma
  | Turnstile

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | ':' ->
          if i + 1 < n && s.[i + 1] = '-' then go (i + 2) (Turnstile :: acc)
          else fail "expected ':-' at offset %d" i
      | '\'' ->
          let j = ref (i + 1) in
          while !j < n && s.[!j] <> '\'' do
            incr j
          done;
          if !j >= n then fail "unterminated quote at offset %d" i
          else go (!j + 1) (Quoted (String.sub s (i + 1) (!j - i - 1)) :: acc)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < n && is_ident_char s.[!j] do
            incr j
          done;
          go !j (Ident (String.sub s i (!j - i)) :: acc)
      | c -> fail "unexpected character %c at offset %d" c i
  in
  go 0 []

(* atom := ident ( term, ... ) *)
let parse_atom tokens =
  match tokens with
  | Ident name :: Lpar :: rest ->
      let rec args acc = function
        | Ident x :: Comma :: rest -> args (Relational.Term.var x :: acc) rest
        | Quoted c :: Comma :: rest -> args (Relational.Term.cst c :: acc) rest
        | Ident x :: Rpar :: rest ->
            (List.rev (Relational.Term.var x :: acc), rest)
        | Quoted c :: Rpar :: rest ->
            (List.rev (Relational.Term.cst c :: acc), rest)
        | _ -> fail "malformed argument list of %s" name
      in
      let terms, rest = args [] rest in
      let sym = Relational.Symbol.make name (List.length terms) in
      (Relational.Atom.make sym terms, rest)
  | Ident name :: _ -> fail "expected '(' after %s" name
  | _ -> fail "expected an atom"

let parse_atoms tokens =
  let rec go acc tokens =
    let atom, rest = parse_atom tokens in
    match rest with
    | Comma :: rest -> go (atom :: acc) rest
    | [] -> List.rev (atom :: acc)
    | _ -> fail "expected ',' or end of input after an atom"
  in
  go [] tokens

(* A full rule: [name, free vars, body].  The head's arguments must be
   distinct variables occurring in the body. *)
let parse_rule s =
  match tokenize s with
  | Turnstile :: rest -> ("q", Query.boolean (parse_atoms rest))
  | tokens -> (
      let head, rest = parse_atom tokens in
      match rest with
      | Turnstile :: rest ->
          let free =
            List.map
              (function
                | Relational.Term.Var x -> x
                | Relational.Term.Cst _ ->
                    fail "constants cannot appear in a rule head")
              (Relational.Atom.args head)
          in
          let name = Relational.Symbol.name (Relational.Atom.sym head) in
          (name, Query.make ~free (parse_atoms rest))
      | _ -> fail "expected ':-' after the head")

(* Parse a query, named or boolean. *)
let query s =
  try Ok (snd (parse_rule s)) with
  | Syntax_error m -> Error m
  | Invalid_argument m -> Error m

let named_query s =
  try Ok (parse_rule s) with
  | Syntax_error m -> Error m
  | Invalid_argument m -> Error m

(* Parse several rules, one per line; '%' starts a comment. *)
let program s =
  let lines = String.split_on_char '\n' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if line = "" || (String.length line > 0 && line.[0] = '%') then
          go acc rest
        else (
          match named_query line with
          | Ok named -> go (named :: acc) rest
          | Error m -> Error (Printf.sprintf "%s (in %S)" m line))
  in
  go [] lines

let query_exn s =
  match query s with Ok q -> q | Error m -> invalid_arg ("Cq.Parse: " ^ m)
