(* Containment, equivalence and cores of conjunctive queries.

   By the Chandra–Merlin homomorphism theorem (cited in the paper via
   [JK82]/[CR97]), Q1 ⊆ Q2 iff there is a homomorphism from A[Q2] to A[Q1]
   fixing the free variables pointwise.  The core machinery is used by the
   test suite to keep handcrafted queries minimal and by the determinacy
   examples. *)

open Relational

(* Freeze [q]'s canonical structure; free variables are frozen by a fixed
   initial binding rather than constants, keeping the signature intact. *)
let contained_in q1 q2 =
  if Query.arity q1 <> Query.arity q2 then false
  else
    let canon1, elem1 = Query.canonical q1 in
    let init =
      List.fold_left2
        (fun acc x2 x1 ->
          match elem1 x1 with
          | Some e -> Term.Var_map.add x2 e acc
          | None -> acc)
        Term.Var_map.empty (Query.free q2) (Query.free q1)
    in
    Hom.exists ~init canon1 (Query.body q2)

let equivalent q1 q2 = contained_in q1 q2 && contained_in q2 q1

(* An endomorphism of A[Q] fixing the free variables whose image misses at
   least one element witnesses that Q is not a core.  [fold_step] finds one
   and returns the folded (smaller, equivalent) query. *)
let fold_step q =
  let canon, elem = Query.canonical q in
  let init =
    List.fold_left
      (fun acc x ->
        match elem x with Some e -> Term.Var_map.add x e acc | None -> acc)
      Term.Var_map.empty (Query.free q)
  in
  let n_elems = Structure.card canon in
  (* Elements the endomorphism cannot drop: the constants' interpretations
     are fixed points, so the image of A[Q] is image(binding) ∪ constants —
     as a *set*, since a variable may map onto a constant's element.
     Counting [|image| + |constants|] instead would double-count exactly
     those folds and miss them. *)
  let const_elems =
    List.filter_map (Structure.constant_opt canon) (Structure.constants canon)
  in
  let result = ref None in
  (try
     Hom.iter_all ~init canon (Query.body q) (fun binding ->
         let image =
           Term.Var_map.fold
             (fun _ e acc -> if List.mem e acc then acc else e :: acc)
             binding const_elems
         in
         if List.length image < n_elems then begin
           result := Some binding;
           raise Exit
         end)
   with Exit -> ());
  match !result with
  | None -> None
  | Some binding ->
      (* Rewrite the body through the endomorphism: replace each variable by
         a representative of its image element — the constant itself when
         the image element interprets a constant, a representative variable
         otherwise. *)
      let repr = Hashtbl.create 16 in
      Term.Var_map.iter
        (fun x e -> if not (Hashtbl.mem repr e) then Hashtbl.replace repr e x)
        binding;
      (* Free variables take priority as representatives. *)
      List.iter
        (fun x ->
          match Term.Var_map.find_opt x binding with
          | Some e -> Hashtbl.replace repr e x
          | None -> ())
        (Query.free q);
      let subst =
        Term.Var_map.mapi
          (fun x e ->
            match Structure.constant_name canon e with
            | Some c -> Term.Cst c
            | None -> (
                match Hashtbl.find_opt repr e with
                | Some y -> Term.Var y
                | None -> Term.Var x))
          binding
      in
      let body =
        List.sort_uniq Atom.compare
          (List.map (Atom.substitute subst) (Query.body q))
      in
      Some (Query.make ~free:(Query.free q) body)

(* The core of a query: iterate folding until a fixpoint.  The result is
   equivalent to [q] and minimal. *)
let rec core q = match fold_step q with None -> q | Some q' -> core q'

let is_core q = Option.is_none (fold_step q)
