(** Containment, equivalence and cores of conjunctive queries, via the
    Chandra–Merlin homomorphism theorem. *)

(** [contained_in q1 q2] is [q1 ⊆ q2]: every answer of [q1] is an answer
    of [q2], over all databases.  Decided by a homomorphism from A[q2] to
    A[q1] fixing the free variables pointwise (positionally). *)
val contained_in : Query.t -> Query.t -> bool

val equivalent : Query.t -> Query.t -> bool

(** One folding step: an endomorphism of A[q] fixing the free variables
    with a smaller image, if any, applied to [q]. *)
val fold_step : Query.t -> Query.t option

(** The core: fold until minimal.  The result is equivalent to the
    input. *)
val core : Query.t -> Query.t

val is_core : Query.t -> bool
