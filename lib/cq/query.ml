(* Conjunctive queries (Section II.A).

   A CQ is a conjunction of atoms with a designated tuple of free
   variables; the remaining variables are existentially quantified.  The
   paper works with the canonical structure A[Ψ] of the quantifier-free
   part throughout; [canonical] realizes it. *)

open Relational

type t = { free : string list; body : Atom.t list }

let make ~free body =
  let vs = Atom.vars_of_list body in
  List.iter
    (fun x ->
      if not (Term.Var_set.mem x vs) then
        invalid_arg (Printf.sprintf "Query.make: free variable %s not in body" x))
    free;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun x ->
      if Hashtbl.mem seen x then
        invalid_arg (Printf.sprintf "Query.make: duplicate free variable %s" x);
      Hashtbl.replace seen x ())
    free;
  { free; body }

let boolean body = { free = []; body }

let free t = t.free
let body t = t.body
let arity t = List.length t.free

let vars t = Atom.vars_of_list t.body

let existential_vars t =
  List.fold_left (fun acc x -> Term.Var_set.remove x acc) (vars t) t.free

let constants t =
  List.concat_map Atom.constants t.body |> List.sort_uniq String.compare

(* Close a query: quantify all free variables existentially, giving the
   boolean query ∃* Q (notation D ⊨ Q of Section II.A). *)
let close t = { t with free = [] }

let paint c t = { t with body = List.map (Atom.paint c) t.body }
let dalt t = { t with body = List.map Atom.dalt t.body }

let rename_vars f t =
  { free = List.map f t.free; body = List.map (Atom.rename f) t.body }

(* The canonical structure A[Ψ] (Section II.A): one element per variable
   (constants become the structure's constants).  Returns the structure and
   the variable-to-element map. *)
let canonical t =
  let s = Structure.create () in
  let table = Hashtbl.create 16 in
  let elem_of_var x =
    match Hashtbl.find_opt table x with
    | Some e -> e
    | None ->
        let e = Structure.fresh ~name:x s in
        Hashtbl.replace table x e;
        e
  in
  let elem_of_term = function
    | Term.Var x -> elem_of_var x
    | Term.Cst c -> Structure.constant s c
  in
  List.iter
    (fun a ->
      let args = Array.of_list (List.map elem_of_term (Atom.args a)) in
      ignore (Structure.add_fact s (Fact.make (Atom.sym a) args)))
    t.body;
  (* make sure free variables exist even if the body has no atoms *)
  List.iter (fun x -> ignore (elem_of_var x)) t.free;
  (s, fun x -> Hashtbl.find_opt table x)

(* The converse direction used by the paper ("for a finite structure D and
   V ⊆ Dom(D) there is a unique CQ with D = A[Q] and free variables V"):
   read a structure back as a query, freeing the given elements. *)
let of_structure ?(free = []) s =
  let term_of e =
    match Structure.constant_name s e with
    | Some c -> Term.Cst c
    | None -> Term.Var (Structure.name s e)
  in
  let body =
    Structure.fold_facts s
      (fun f acc -> Atom.make (Fact.sym f) (List.map term_of (Fact.elements f)) :: acc)
      []
  in
  let free =
    List.map
      (fun e ->
        match Structure.constant_name s e with
        | Some _ -> invalid_arg "Query.of_structure: constant cannot be free"
        | None -> Structure.name s e)
      free
  in
  make ~free body

let compare a b =
  let c = List.compare String.compare a.free b.free in
  if c <> 0 then c
  else
    List.compare Atom.compare
      (List.sort Atom.compare a.body)
      (List.sort Atom.compare b.body)

let equal a b = compare a b = 0

let pp ppf t =
  let ex = Term.Var_set.elements (existential_vars t) in
  Fmt.pf ppf "@[<h>(%a) <- %a%a@]"
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    t.free
    (fun ppf -> function
      | [] -> Fmt.nop ppf ()
      | ex -> Fmt.pf ppf "∃%a. " (Fmt.list ~sep:Fmt.comma Fmt.string) ex)
    ex
    (Fmt.list ~sep:(Fmt.any " ∧ ") Atom.pp)
    t.body
