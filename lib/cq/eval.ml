(* Conjunctive-query evaluation: the view Q(D) = { ā : D ⊨ Q(ā) }
   (Section II.A, "the most fundamental definition of this paper"). *)

open Relational

module Tuple = struct
  type t = int array

  let compare (a : t) (b : t) = Stdlib.compare a b

  let pp ?(elem = Fmt.int) () ppf t =
    Fmt.pf ppf "(%a)" (Fmt.array ~sep:Fmt.comma elem) t
end

module Tuple_set = Set.Make (Tuple)

let project free binding =
  Array.of_list
    (List.map
       (fun x ->
         match Relational.Term.Var_map.find_opt x binding with
         | Some e -> e
         | None -> invalid_arg "Eval.project: unbound free variable")
       free)

(* All answers of [q] over [d].  Free variables that do not occur in any
   atom cannot arise ([Query.make] rejects them). *)
let answers ?init q d =
  let acc = ref Tuple_set.empty in
  Hom.iter_all ?init d (Query.body q) (fun binding ->
      acc := Tuple_set.add (project (Query.free q) binding) !acc);
  !acc

(* D ⊨ Q(ā) for a specific tuple. *)
let holds_at q d tuple =
  let free = Query.free q in
  if List.length free <> Array.length tuple then
    invalid_arg "Eval.holds_at: arity mismatch";
  let init =
    List.fold_left2
      (fun acc x e -> Term.Var_map.add x e acc)
      Term.Var_map.empty free (Array.to_list tuple)
  in
  Hom.exists ~init d (Query.body q)

(* D ⊨ Q with all free variables implicitly existentially quantified. *)
let holds q d = Hom.exists d (Query.body q)

let count_answers q d = Tuple_set.cardinal (answers q d)

(* The view instance Q(D) for a named set of queries: a structure over the
   view signature, with one k-ary relation per k-ary query (Section I.B).
   The view structure shares its domain naming with [d] so that view
   structures of different databases are comparable. *)
let view_structure named_queries d =
  (* Elements of the view keep the identities they have in [d], so the
     views of a single two-colored instance (CQfDP.2) line up directly;
     constants of [d] stay constants of the view. *)
  let v = Structure.like d in
  List.iter
    (fun (name, q) ->
      let sym = Symbol.make name (Query.arity q) in
      Tuple_set.iter
        (fun tuple -> ignore (Structure.add_fact v (Fact.make sym tuple)))
        (answers q d))
    named_queries;
  v

(* Q(D1) = Q(D2) for every Q in the list — the condition of CQfDP. *)
let same_views named_queries d1 d2 =
  List.for_all
    (fun (_, q) -> Tuple_set.equal (answers q d1) (answers q d2))
    named_queries
