(* The green-red machinery of Section IV.

   CQfDP is restated (CQfDP.2 / CQfDP.3) over one two-colored structure:
   Q determines Q0 iff every (finite) D with D ⊨ T_Q and D ⊨ G(Q0)(ā)
   also has D ⊨ R(Q0)(ā). *)

open Relational

(* Lemma 4, left-to-right as a decision on a concrete finite D:
   condition ¶ — (G(Q))(D) = (R(Q))(D) for each Q ∈ Q. *)
let condition_views_agree named_queries d =
  List.for_all
    (fun (_, q) ->
      let g = Cq.Query.paint Symbol.Green q and r = Cq.Query.paint Symbol.Red q in
      Cq.Eval.Tuple_set.equal (Cq.Eval.answers g d) (Cq.Eval.answers r d))
    named_queries

(* Lemma 4, right-hand side: D ⊨ T_Q. *)
let condition_tq named_queries d = Chase.models (Dep.t_q named_queries) d

(* Condition · of CQfDP.3 on a concrete finite structure: for every ā with
   D ⊨ G(Q0)(ā), also D ⊨ R(Q0)(ā). *)
let transfers q0 d =
  let g = Cq.Query.paint Symbol.Green q0 and r = Cq.Query.paint Symbol.Red q0 in
  Cq.Eval.Tuple_set.subset (Cq.Eval.answers g d) (Cq.Eval.answers r d)

(* A finite counterexample to "Q finitely determines Q0": D ⊨ T_Q but the
   green answer set of Q0 is not included in the red one. *)
let is_finite_counterexample named_queries q0 d =
  condition_tq named_queries d && not (transfers q0 d)

(* green(Q0): the canonical structure of Q0 painted green, with the free
   variables frozen (kept as named, trackable elements).  Returns the
   structure and the frozen tuple. *)
let green_canonical q0 =
  let canon, elem = Cq.Query.canonical (Cq.Query.paint Symbol.Green q0) in
  let tuple =
    Array.of_list
      (List.map (fun x -> Option.get (elem x)) (Cq.Query.free q0))
  in
  (canon, tuple)

(* Observation 6: for D over Σ_G, dalt(chase(T_Q, D)) maps homomorphically
   into dalt(D).  [observation6_check] verifies it on a chased structure. *)
let observation6_check ~original ~chased =
  Hom.exists_between (Structure.dalt chased) (Structure.dalt original)

(* Semi-decision of *unrestricted* determinacy (Section I.A / IV): Q
   determines Q0 iff chase(T_Q, green(Q0)) ⊨ red(Q0) at the frozen tuple.
   The chase may diverge; [max_stages] bounds the attempt.

   Returns [`Determined stats] when the red query appears (a positive
   certificate), [`Not_determined stats] when the chase reached its
   fixpoint without it (a negative certificate), and [`Unknown stats] when
   the stage budget ran out. *)
let unrestricted_determinacy ?engine ?jobs ?governor ?(max_stages = 64)
    named_queries q0 =
  let d, tuple = green_canonical q0 in
  let deps = Dep.t_q named_queries in
  let red_q0 = Cq.Query.paint Symbol.Red q0 in
  let found d = Cq.Eval.holds_at red_q0 d tuple in
  let stats =
    Chase.run ?engine ?jobs ?governor ~max_stages ~stop:found deps d
  in
  if found d then `Determined (stats, d)
  else if stats.Chase.fixpoint then `Not_determined (stats, d)
  else `Unknown (stats, d)
