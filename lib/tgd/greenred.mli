(** The green-red machinery of Section IV: CQfDP restated over one
    two-colored structure. *)

open Relational

(** Condition ¶ of CQfDP.2: [(G(Q))(D) = (R(Q))(D)] for each view Q. *)
val condition_views_agree : (string * Cq.Query.t) list -> Structure.t -> bool

(** The equivalent condition of Lemma 4: [D ⊨ T_Q]. *)
val condition_tq : (string * Cq.Query.t) list -> Structure.t -> bool

(** Condition · of CQfDP.3: every green Q0-answer is a red Q0-answer. *)
val transfers : Cq.Query.t -> Structure.t -> bool

(** A certified finite counterexample to "Q finitely determines Q0":
    [D ⊨ T_Q] and some green Q0-answer is not red. *)
val is_finite_counterexample :
  (string * Cq.Query.t) list -> Cq.Query.t -> Structure.t -> bool

(** green(Q0): the canonical structure of Q0 painted green, with the
    frozen free tuple. *)
val green_canonical : Cq.Query.t -> Structure.t * int array

(** Observation 6: [dalt(chase(T_Q, D))] maps homomorphically into
    [dalt(D)]; verified on a chased structure. *)
val observation6_check : original:Structure.t -> chased:Structure.t -> bool

(** Semi-decision of unrestricted determinacy via the universal chase
    (Section IV): Q determines Q0 iff [chase(T_Q, green(Q0)) ⊨ red(Q0)]
    at the frozen tuple.  Bounded by [max_stages]; the returned structure
    is the chased instance (a counterexample when [`Not_determined]). *)
val unrestricted_determinacy :
  ?engine:Chase.engine ->
  ?jobs:int ->
  ?governor:Resilience.Governor.t ->
  ?max_stages:int ->
  (string * Cq.Query.t) list ->
  Cq.Query.t ->
  [ `Determined of Chase.stats * Structure.t
  | `Not_determined of Chase.stats * Structure.t
  | `Unknown of Chase.stats * Structure.t ]
