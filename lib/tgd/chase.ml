(* The chase (Section II.C).

   The paper's chase is "lazy": a pair (T, b̄) fires only when the body
   matches at b̄ (condition ¬) and no head witness exists yet (condition ­),
   both checked against the *current* structure.  [chase_stage] performs one
   pass of the stage procedure of Section II.C: it enumerates the pairs
   (T, b̄) over the stage-start structure, then applies the surviving
   triggers in order, re-checking ­ as the structure grows.

   Two trigger-discovery engines implement that stage semantics:

     [`Stage]     re-enumerates every body homomorphism of every TGD
                  against the whole structure at every stage;
     [`Seminaive] (default) matches each body only against homomorphisms
                  using at least one fact added since the previous stage
                  (the delta), exactly like semi-naive Datalog evaluation.

   Delta-restriction is sound for the lazy chase because both conditions
   are monotone in the structure: a body match wholly inside old facts was
   already discovered at an earlier stage, where it either fired (so its
   head witness now exists) or was withheld because condition ­ held (and
   head witnesses never disappear).  Either way it is inactive forever,
   so only delta-touching matches can yield new triggers.  Within a stage
   both engines apply the surviving triggers in the same canonical order
   (TGD index, then frontier tuple), so they build identical structures,
   fresh element ids included. *)

open Relational

let c_matches = Obs.Metrics.counter "tgd.body_matches"
let c_considered = Obs.Metrics.counter "tgd.triggers_considered"
let c_firings = Obs.Metrics.counter "tgd.firings"
let c_head_checks = Obs.Metrics.counter "tgd.head_checks"
let h_delta = Obs.Metrics.histogram "tgd.delta_size"

type stats = {
  stages : int;              (* stages executed *)
  applications : int;        (* TGD firings *)
  triggers_considered : int; (* distinct (TGD, frontier) pairs examined *)
  body_matches : int;        (* raw body matches, before frontier dedup *)
  fixpoint : bool;           (* no trigger was active at the last stage *)
}

let pp_stats ppf s =
  Fmt.pf ppf
    "stages=%d applications=%d triggers_considered=%d body_matches=%d \
     fixpoint=%b"
    s.stages s.applications s.triggers_considered s.body_matches s.fixpoint

(* Restrict a body binding to the frontier of the TGD: the b̄ of the paper. *)
let frontier_binding dep binding =
  let fr = Dep.frontier dep in
  Term.Var_map.filter (fun x _ -> Term.Var_set.mem x fr) binding

(* Condition ­: D ⊨ ∃z̄ Ψ(z̄, b̄). *)
let head_satisfied d dep fb =
  if !Obs.metrics_on then Obs.Metrics.incr c_head_checks;
  Hom.exists ~init:fb d (Dep.head dep)

(* Fire (T, b̄): create a fresh copy of A[Ψ] identified with D along b̄. *)
let apply d dep fb =
  let fresh_names = Hashtbl.create 8 in
  let elem_of = function
    | Term.Cst c -> Structure.constant d c
    | Term.Var x -> (
        match Term.Var_map.find_opt x fb with
        | Some e -> e
        | None -> (
            match Hashtbl.find_opt fresh_names x with
            | Some e -> e
            | None ->
                let e = Structure.fresh d in
                Hashtbl.replace fresh_names x e;
                e))
  in
  List.iter
    (fun atom ->
      let args = Array.of_list (List.map elem_of (Atom.args atom)) in
      ignore (Structure.add_fact d (Fact.make (Atom.sym atom) args)))
    (Dep.head dep)

module Binding_key = struct
  (* Canonical key for a frontier binding, to deduplicate triggers:
     [Var_map.bindings] already yields the pairs in ascending variable
     order, so no extra sort is needed. *)
  let of_binding fb = Term.Var_map.bindings fb
end

(* Sort a stage's surviving triggers into the canonical firing order
   (TGD index, then frontier key), shared by both engines so their fresh
   elements coincide. *)
let sort_triggers triggers =
  List.sort
    (fun (i1, _, k1) (i2, _, k2) ->
      let c = Int.compare i1 i2 in
      if c <> 0 then c else compare k1 k2)
    triggers

(* Collect the stage's triggers: deduplicate body matches per TGD by
   frontier key, drop those whose head is already witnessed (condition ­),
   and sort canonically.  [delta] restricts discovery to matches using a
   new fact; [seen_of] supplies the per-TGD dedup table (persistent across
   stages for the semi-naive engine).  [considered] counts first-time
   frontier keys; [matches] counts every body match before dedup — the
   paper enumerates pairs (T, b̄), so two matches differing only in their
   existential witnesses are one consideration but two matches. *)
let collect_triggers ?delta ~seen_of ~considered ~matches deps d =
  let out = ref [] in
  List.iteri
    (fun di dep ->
      let seen = seen_of di dep in
      Hom.iter_all ?delta d (Dep.body dep) (fun binding ->
          incr matches;
          if !Obs.metrics_on then Obs.Metrics.incr c_matches;
          let fb = frontier_binding dep binding in
          let key = Binding_key.of_binding fb in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            incr considered;
            if !Obs.metrics_on then Obs.Metrics.incr c_considered;
            if not (head_satisfied d dep fb) then out := (di, dep, key) :: !out
          end))
    deps;
  List.map
    (fun (_, dep, key) ->
      (dep, List.fold_left (fun m (x, e) -> Term.Var_map.add x e m)
              Term.Var_map.empty key))
    (sort_triggers !out)

(* Collect the active pairs (T, b̄) of the current structure. *)
let active_triggers deps d =
  let considered = ref 0 and matches = ref 0 in
  collect_triggers
    ~seen_of:(fun _ _ -> Hashtbl.create 64)
    ~considered ~matches deps d

(* The active pairs of one dependency, without materialising the other
   dependencies' triggers. *)
let active_triggers_of dep d =
  active_triggers [ dep ] d |> List.map snd

(* Does [dep] have at least one active trigger?  Short-circuits on the
   first one instead of materialising the trigger list. *)
let has_active_trigger dep d =
  let seen = Hashtbl.create 64 in
  let found = ref false in
  (try
     Hom.iter_all d (Dep.body dep) (fun binding ->
         let fb = frontier_binding dep binding in
         let key = Binding_key.of_binding fb in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.replace seen key ();
           if not (head_satisfied d dep fb) then begin
             found := true;
             raise Exit
           end
         end)
   with Exit -> ());
  !found

(* Apply the surviving triggers in order, re-checking condition ­ against
   the evolving structure; returns the number of firings.  [on_fire] sees
   each firing as it happens, in order. *)
let apply_triggers ?(on_fire = fun _ _ -> ()) triggers d =
  let fired = ref 0 in
  List.iter
    (fun (dep, fb) ->
      if not (head_satisfied d dep fb) then begin
        on_fire dep fb;
        apply d dep fb;
        if !Obs.metrics_on then Obs.Metrics.incr c_firings;
        incr fired
      end)
    triggers;
  !fired

(* One stage of the chase procedure; returns the number of firings. *)
let chase_stage deps d = apply_triggers (active_triggers deps d) d

(* Run the chase in place for at most [max_stages] stages, or until the
   fixpoint, or until [stop] holds (checked after every stage).  Stage
   numbers stamp provenance into the structure: facts added at stage i
   belong to chase_i.

   [~seen_of] and [~delta_of] abstract the two engines: the stage engine
   uses fresh dedup tables and no delta each stage; the semi-naive engine
   keeps one dedup table per TGD for the whole run and restricts matching
   to the facts added since the previous stage. *)
let run_engine ~span ~max_stages ~stop ~on_fire ~seen_of ~delta_of deps d =
  let applications = ref 0 in
  let considered = ref 0 in
  let matches = ref 0 in
  let finish i fixpoint =
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint;
    }
  in
  let rec go i =
    if i > max_stages then finish (i - 1) false
    else begin
      Structure.set_stage d i;
      let delta = delta_of () in
      if !Obs.metrics_on then
        Obs.Metrics.observe h_delta
          (match delta with Some l -> List.length l | None -> Structure.size d);
      let n_triggers = ref 0 and n_fired = ref 0 in
      Obs.Trace.with_span "tgd.stage"
        ~args:(fun () ->
          [ ("stage", i); ("triggers", !n_triggers); ("fired", !n_fired) ])
        (fun () ->
          let triggers =
            collect_triggers ?delta ~seen_of ~considered ~matches deps d
          in
          n_triggers := List.length triggers;
          n_fired := apply_triggers ~on_fire:(on_fire ~stage:i) triggers d);
      applications := !applications + !n_fired;
      if !n_fired = 0 then finish i true
      else if stop d then finish i false
      else go (i + 1)
    end
  in
  Obs.Trace.with_span span (fun () -> go 1)

let no_fire ~stage:_ _ _ = ()

let run_stage ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  run_engine ~span:"tgd.chase(stage)" ~max_stages ~stop ~on_fire
    ~seen_of:(fun _ _ -> Hashtbl.create 64)
    ~delta_of:(fun () -> None)
    deps d

let run_seminaive ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let tables = Hashtbl.create 8 in
  let seen_of di _ =
    match Hashtbl.find_opt tables di with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 64 in
        Hashtbl.replace tables di t;
        t
  in
  (* Watermark of the previous stage's start; the first delta is the whole
     initial structure. *)
  let wm = ref 0 in
  let delta_of () =
    let delta = Structure.delta_since d !wm in
    wm := Structure.watermark d;
    Some delta
  in
  run_engine ~span:"tgd.chase(seminaive)" ~max_stages ~stop ~on_fire ~seen_of
    ~delta_of deps d

(* The semi-oblivious (skolem) chase: every pair (T, b̄) fires exactly
   once, whether or not the head is already satisfied.  It diverges more
   often than the paper's lazy chase — condition ­ is exactly what keeps
   chase(T_Q, ·) tame — and exists here as the ablation baseline. *)
let run_oblivious ?(max_stages = max_int) ?(stop = fun _ -> false)
    ?(on_fire = no_fire) deps d =
  let fired = Hashtbl.create 256 in
  let applications = ref 0 in
  let considered = ref 0 in
  let matches = ref 0 in
  let finish i fixpoint =
    {
      stages = i;
      applications = !applications;
      triggers_considered = !considered;
      body_matches = !matches;
      fixpoint;
    }
  in
  let rec go i =
    if i > max_stages then finish (i - 1) false
    else begin
      Structure.set_stage d i;
      let n = ref 0 in
      Obs.Trace.with_span "tgd.stage"
        ~args:(fun () -> [ ("stage", i); ("fired", !n) ])
        (fun () ->
          let triggers = ref [] in
          List.iter
            (fun dep ->
              Hom.iter_all d (Dep.body dep) (fun binding ->
                  incr matches;
                  if !Obs.metrics_on then Obs.Metrics.incr c_matches;
                  let fb = frontier_binding dep binding in
                  let key = (Dep.name dep, Binding_key.of_binding fb) in
                  if not (Hashtbl.mem fired key) then begin
                    Hashtbl.replace fired key ();
                    incr considered;
                    if !Obs.metrics_on then Obs.Metrics.incr c_considered;
                    triggers := (dep, fb) :: !triggers
                  end))
            deps;
          n := List.length !triggers;
          List.iter
            (fun (dep, fb) ->
              on_fire ~stage:i dep fb;
              apply d dep fb;
              if !Obs.metrics_on then Obs.Metrics.incr c_firings)
            (List.rev !triggers));
      applications := !applications + !n;
      if !n = 0 then finish i true
      else if stop d then finish i false
      else go (i + 1)
    end
  in
  Obs.Trace.with_span "tgd.chase(oblivious)" (fun () -> go 1)

type engine = [ `Stage | `Seminaive | `Oblivious ]

let pp_engine ppf e =
  Fmt.string ppf
    (match e with
    | `Stage -> "stage"
    | `Seminaive -> "seminaive"
    | `Oblivious -> "oblivious")

(* The engine front door.  Semi-naive is the default: it implements the
   same lazy stage semantics as [`Stage] (equal structures, equal firing
   sequence) with per-stage work proportional to the delta rather than to
   the whole structure. *)
let run ?(engine = `Seminaive) ?max_stages ?stop ?on_fire deps d =
  match engine with
  | `Stage -> run_stage ?max_stages ?stop ?on_fire deps d
  | `Seminaive -> run_seminaive ?max_stages ?stop ?on_fire deps d
  | `Oblivious -> run_oblivious ?max_stages ?stop ?on_fire deps d

(* Does D satisfy all the dependencies?  Short-circuits on the first
   active trigger instead of materialising every dependency's trigger
   list. *)
let models deps d = not (List.exists (fun dep -> has_active_trigger dep d) deps)

(* The first violated dependency in the order of [deps], with its least
   active frontier binding — deterministic, and cheap on satisfied
   prefixes because each dependency is first probed with the
   short-circuiting check. *)
let find_violation deps d =
  List.find_map
    (fun dep ->
      if not (has_active_trigger dep d) then None
      else
        match active_triggers_of dep d with
        | fb :: _ -> Some (dep, fb)
        | [] -> None)
    deps
